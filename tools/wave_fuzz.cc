// wave_fuzz — seeded differential fuzzing campaigns over the grammar
// generator of src/testing (ISSUE 5).
//
//   wave_fuzz --seed-start=1 --time-budget=300 --out-dir=fuzz-artifacts
//
// generates one (spec, property) case per seed and cross-checks WAVE's
// verdict along every oracle axis (explicit first-cut baseline, jobs=1 vs
// jobs=N, RunBatch vs Run, cold vs warm ResultCache, identifier renaming,
// rule reordering — see docs/FUZZING.md). Each case emits one JSON line
// of campaign stats; a disagreement is minimized by the delta-debugging
// shrinker and written to the artifact directory as a standalone
// reproducer:
//
//   <out-dir>/seed_<N>.spec       the full failing case
//   <out-dir>/seed_<N>.min.spec   the minimized reproducer
//   <out-dir>/seed_<N>.json       the oracle report + shrink stats
//
// Every artifact write is atomic (temp + rename, common/io), so a killed
// campaign never leaves truncated reproducers. Any logged case regenerates
// from its seed alone: `wave_fuzz --seed-start=N --seed-count=1` with the
// same generator flags replays it exactly, on any platform (the draw
// stream is pinned — see src/testing/rng.h).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "common/status.h"
#include "obs/json.h"
#include "testing/oracle.h"
#include "testing/shrink.h"
#include "testing/spec_gen.h"

namespace wave {
namespace {

using testing::AxisCheck;
using testing::CheckCase;
using testing::FuzzCase;
using testing::GenerateCase;
using testing::GeneratorConfig;
using testing::OracleDisagreementPredicate;
using testing::OracleOptions;
using testing::OracleReport;
using testing::ReasonProbe;
using testing::ShrinkResult;

constexpr char kUsage[] = R"(usage: wave_fuzz [options]

Differential fuzzing campaign: generates seeded random specs/properties
and cross-checks WAVE against the explicit first-cut baseline, jobs=N,
RunBatch, the persistent result cache and two metamorphic transforms
(see docs/FUZZING.md). One JSON line of stats per case; disagreements
are minimized and written to --out-dir as standalone reproducers.

options:
  --seed-start=N        first seed (default 1)
  --seed-count=N        number of seeds; 0 = until the time budget runs
                        out (default 0)
  --time-budget=SECS    wall-clock budget for the campaign (default 60;
                        0 = unlimited, requires --seed-count)
  --out-dir=PATH        artifact directory for reproducers (created if
                        missing; default: no artifacts written)
  --cache-dir=PATH      enable the cold/warm ResultCache axis, sharing
                        PATH across the campaign (default: axis skipped;
                        with --out-dir and no --cache-dir, OUT/cache)
  --jobs=N              worker count of the jobs axis (default 3)
  --timeout=SECS        WAVE budget per engine run (default 30)
  --baseline-timeout=S  first-cut budget per case (default 10)
  --max-pages=N         generator: pages per spec, 2..N (default 3)
  --max-constants=N     generator: data constants, 2..N, pool of 4
                        (default 3)
  --property-depth=N    generator: max LTL skeleton depth (default 3)
  --no-shrink           report disagreements without minimizing them
  --no-metamorphic      skip the rename/reorder axes
  --probe-reasons       also probe every UnknownReason under starved
                        budgets and report per-reason coverage
  --inject-flip         TEST-ONLY: arm the `oracle.flip_verdict` fault
                        (common/fault.h) so every decided reference
                        verdict is flipped, to self-test the disagreement
                        + shrink machinery
  --quiet               JSON lines only (no per-case stderr summary)
exit status: 0 campaign clean, 1 usage/setup error, 3 disagreements (or
an uncovered --probe-reasons reason) found
)";

struct CliOptions {
  uint64_t seed_start = 1;
  uint64_t seed_count = 0;
  double time_budget_seconds = 60;
  std::string out_dir;
  std::string cache_dir;
  bool shrink = true;
  bool probe_reasons = false;
  bool inject_flip = false;
  bool quiet = false;
  GeneratorConfig generator;
  OracleOptions oracle;
};

bool ParseArgs(int argc, char** argv, CliOptions* out, std::string* error) {
  auto value_of = [](const char* arg, const char* flag) -> const char* {
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if ((v = value_of(arg, "--seed-start")) != nullptr) {
      out->seed_start = std::strtoull(v, nullptr, 10);
    } else if ((v = value_of(arg, "--seed-count")) != nullptr) {
      out->seed_count = std::strtoull(v, nullptr, 10);
    } else if ((v = value_of(arg, "--time-budget")) != nullptr) {
      out->time_budget_seconds = std::atof(v);
    } else if ((v = value_of(arg, "--out-dir")) != nullptr) {
      out->out_dir = v;
    } else if ((v = value_of(arg, "--cache-dir")) != nullptr) {
      out->cache_dir = v;
    } else if ((v = value_of(arg, "--jobs")) != nullptr) {
      out->oracle.jobs = std::atoi(v);
    } else if ((v = value_of(arg, "--timeout")) != nullptr) {
      out->oracle.verify.timeout_seconds = std::atof(v);
    } else if ((v = value_of(arg, "--baseline-timeout")) != nullptr) {
      out->oracle.baseline.timeout_seconds = std::atof(v);
    } else if ((v = value_of(arg, "--max-pages")) != nullptr) {
      out->generator.max_pages = std::atoi(v);
    } else if ((v = value_of(arg, "--max-constants")) != nullptr) {
      out->generator.max_constants = std::atoi(v);
    } else if ((v = value_of(arg, "--property-depth")) != nullptr) {
      out->generator.max_property_depth = std::atoi(v);
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      out->shrink = false;
    } else if (std::strcmp(arg, "--no-metamorphic") == 0) {
      out->oracle.run_metamorphic = false;
    } else if (std::strcmp(arg, "--probe-reasons") == 0) {
      out->probe_reasons = true;
    } else if (std::strcmp(arg, "--inject-flip") == 0) {
      out->inject_flip = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      out->quiet = true;
    } else {
      *error = std::string("unknown option: ") + arg;
      return false;
    }
  }
  if (out->seed_count == 0 && out->time_budget_seconds <= 0) {
    *error = "--time-budget=0 needs an explicit --seed-count";
    return false;
  }
  if (out->cache_dir.empty() && !out->out_dir.empty()) {
    out->cache_dir = out->out_dir + "/cache";
  }
  out->oracle.cache_dir = out->cache_dir;
  return true;
}

/// Writes one reproducer artifact; failures are reported but do not stop
/// the campaign (the seed in the log is always enough to regenerate).
void WriteArtifact(const std::string& path, const std::string& content) {
  Status written = AtomicWriteFile(path, content);
  if (!written.ok()) {
    std::fprintf(stderr, "wave_fuzz: %s\n", written.ToString().c_str());
  }
}

int Main(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, &cli, &error)) {
    std::fprintf(stderr, "wave_fuzz: %s\n%s", error.c_str(), kUsage);
    return 1;
  }
  if (!cli.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "wave_fuzz: cannot create %s: %s\n",
                   cli.out_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  if (Status armed = fault::ArmFromEnv(); !armed.ok()) {
    std::fprintf(stderr, "wave_fuzz: WAVE_FAULT_SPEC: %s\n",
                 armed.ToString().c_str());
    return 1;
  }
  if (cli.inject_flip) {
    fault::Plan plan;
    fault::Rule rule;
    rule.site = "oracle.flip_verdict";
    rule.kind = fault::Kind::kFlip;
    plan.rules.push_back(std::move(rule));
    fault::Arm(std::move(plan));
  }

  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  uint64_t cases = 0, disagreements = 0, invalid = 0;
  uint64_t holds = 0, violated = 0, undecided = 0;
  uint64_t compared[6] = {0, 0, 0, 0, 0, 0};
  double axis_seconds[6] = {0, 0, 0, 0, 0, 0};
  double reference_seconds = 0;

  uint64_t seed = cli.seed_start;
  for (;; ++seed) {
    if (cli.seed_count > 0 && seed - cli.seed_start >= cli.seed_count) break;
    if (cli.time_budget_seconds > 0 && elapsed() >= cli.time_budget_seconds) {
      break;
    }
    FuzzCase c = GenerateCase(seed, cli.generator);
    OracleReport report = CheckCase(c, cli.oracle);
    ++cases;
    if (!report.valid) ++invalid;
    switch (report.reference) {
      case Verdict::kHolds: ++holds; break;
      case Verdict::kViolated: ++violated; break;
      case Verdict::kUnknown: ++undecided; break;
    }
    for (const AxisCheck& check : report.axes) {
      if (check.compared) ++compared[static_cast<int>(check.axis)];
      axis_seconds[static_cast<int>(check.axis)] += check.seconds;
    }
    reference_seconds += report.reference_seconds;

    obs::Json line = report.ToJson();
    line.Set("spec_lines", obs::Json::Int(c.SpecLineCount()));

    if (!report.ok()) {
      ++disagreements;
      std::fprintf(stderr, "wave_fuzz: FAILURE %s\n",
                   report.Summary().c_str());
      if (report.valid && cli.shrink) {
        // Shrink against the first disagreeing axis only — a probe then
        // costs one axis, not six.
        const AxisCheck* bad = nullptr;
        for (const AxisCheck& check : report.axes) {
          if (!check.agreed) {
            bad = &check;
            break;
          }
        }
        ShrinkResult shrunk = testing::Minimize(
            c, OracleDisagreementPredicate(cli.oracle, bad->axis));
        obs::Json sj = obs::Json::Object();
        sj.Set("axis", obs::Json::Str(testing::OracleAxisName(bad->axis)));
        sj.Set("probes", obs::Json::Int(shrunk.stats.probes));
        sj.Set("accepted", obs::Json::Int(shrunk.stats.accepted));
        sj.Set("initial_lines", obs::Json::Int(shrunk.stats.initial_lines));
        sj.Set("final_lines", obs::Json::Int(shrunk.stats.final_lines));
        line.Set("shrink", std::move(sj));
        std::fprintf(stderr,
                     "wave_fuzz: seed %llu minimized %d -> %d spec lines "
                     "(%d probes)\n",
                     static_cast<unsigned long long>(seed),
                     shrunk.stats.initial_lines, shrunk.stats.final_lines,
                     shrunk.stats.probes);
        if (!cli.out_dir.empty()) {
          std::string base =
              cli.out_dir + "/seed_" + std::to_string(seed);
          WriteArtifact(base + ".spec", c.Text());
          WriteArtifact(base + ".min.spec", shrunk.minimized.Text());
          WriteArtifact(base + ".json", line.Dump(2) + "\n");
        }
      } else if (!cli.out_dir.empty()) {
        std::string base = cli.out_dir + "/seed_" + std::to_string(seed);
        WriteArtifact(base + ".spec", c.Text());
        WriteArtifact(base + ".json", line.Dump(2) + "\n");
      }
    } else if (!cli.quiet) {
      std::fprintf(stderr, "wave_fuzz: %s\n", report.Summary().c_str());
    }
    std::printf("%s\n", line.Dump().c_str());
    std::fflush(stdout);
  }

  bool probes_uncovered = false;
  if (cli.probe_reasons) {
    std::vector<ReasonProbe> probes =
        testing::ProbeUnknownReasons(cli.generator, cli.seed_start,
                                     /*max_seeds=*/50);
    obs::Json pj = obs::Json::Array();
    for (const ReasonProbe& probe : probes) {
      if (!probe.covered) probes_uncovered = true;
      std::fprintf(stderr, "wave_fuzz: reason %-19s %s (%s)\n",
                   UnknownReasonName(probe.reason),
                   probe.covered ? "covered" : "NOT COVERED",
                   probe.detail.c_str());
      obs::Json one = obs::Json::Object();
      one.Set("reason", obs::Json::Str(UnknownReasonName(probe.reason)));
      one.Set("covered", obs::Json::Bool(probe.covered));
      if (probe.covered) {
        one.Set("seed", obs::Json::Int(static_cast<int64_t>(probe.seed)));
      }
      one.Set("detail", obs::Json::Str(probe.detail));
      pj.Append(std::move(one));
    }
    obs::Json line = obs::Json::Object();
    line.Set("reason_probes", std::move(pj));
    std::printf("%s\n", line.Dump().c_str());
  }

  obs::Json summary = obs::Json::Object();
  summary.Set("campaign", obs::Json::Bool(true));
  summary.Set("seed_start", obs::Json::Int(static_cast<int64_t>(cli.seed_start)));
  summary.Set("cases", obs::Json::Int(static_cast<int64_t>(cases)));
  summary.Set("invalid", obs::Json::Int(static_cast<int64_t>(invalid)));
  summary.Set("disagreements",
              obs::Json::Int(static_cast<int64_t>(disagreements)));
  summary.Set("holds", obs::Json::Int(static_cast<int64_t>(holds)));
  summary.Set("violated", obs::Json::Int(static_cast<int64_t>(violated)));
  summary.Set("undecided", obs::Json::Int(static_cast<int64_t>(undecided)));
  obs::Json cj = obs::Json::Object();
  for (int axis = 0; axis < 6; ++axis) {
    cj.Set(testing::OracleAxisName(static_cast<testing::OracleAxis>(axis)),
           obs::Json::Int(static_cast<int64_t>(compared[axis])));
  }
  summary.Set("compared", std::move(cj));
  // Per-axis wall time across the campaign, so a slow oracle axis is
  // visible in the JSON-lines output rather than buried in the total.
  obs::Json tj = obs::Json::Object();
  tj.Set("reference", obs::Json::Number(reference_seconds));
  for (int axis = 0; axis < 6; ++axis) {
    tj.Set(testing::OracleAxisName(static_cast<testing::OracleAxis>(axis)),
           obs::Json::Number(axis_seconds[axis]));
  }
  summary.Set("axis_seconds", std::move(tj));
  summary.Set("seconds", obs::Json::Number(elapsed()));
  std::printf("%s\n", summary.Dump().c_str());
  std::fprintf(stderr,
               "wave_fuzz: %llu cases in %.1fs: %llu holds, %llu violated, "
               "%llu undecided, %llu invalid, %llu disagreements\n",
               static_cast<unsigned long long>(cases), elapsed(),
               static_cast<unsigned long long>(holds),
               static_cast<unsigned long long>(violated),
               static_cast<unsigned long long>(undecided),
               static_cast<unsigned long long>(invalid),
               static_cast<unsigned long long>(disagreements));

  return disagreements > 0 || probes_uncovered ? 3 : 0;
}

}  // namespace
}  // namespace wave

int main(int argc, char** argv) { return wave::Main(argc, argv); }
