// wave_load — concurrency/latency harness for the wave_serve daemon
// (ISSUE 9). N client connections fire a mix of cold, warm and batch
// requests over the bundled E1–E4 specs, every response is checked
// against the specs' `expect` annotations, and the latency distribution
// lands in `BENCH_serve.json` using the same record schema the
// `wave_bench --compare` gate consumes (records `serve/cold`,
// `serve/warm`, `serve/batch`; counters responses/wrong/dropped).
//
//   wave_load --spawn --clients=8 --requests=400     # own daemon, Unix socket
//   wave_load --port=7333 --clients=16               # against a live daemon
//
// Exit status: 0 all responses present and correct AND warm traffic hit
// the session/cache layers; 1 usage/connect/spawn error; 2 wrong or
// dropped responses, or a warm phase that never reused a session.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/stopwatch.h"
#include "obs/json.h"
#include "parser/parser.h"
#include "serve/protocol.h"

#ifndef WAVE_SERVE_BIN
#define WAVE_SERVE_BIN ""
#endif
#ifndef WAVE_SPECS_DIR
#define WAVE_SPECS_DIR ""
#endif

namespace wave {
namespace {

constexpr char kUsage[] = R"(usage: wave_load [options]

options:
  --socket=PATH     connect to a daemon on this Unix socket
  --port=N          connect to a daemon on 127.0.0.1:N
  --spawn           fork a private wave_serve (Unix socket + fresh cache
                    in a temp dir), load it, then SIGTERM-drain it
  --clients=N       concurrent client connections (default 8)
  --requests=N      warm-phase requests per client (default 50)
  --specs-dir=PATH  directory with e1..e4 .spec files (default: built-in)
  --out=PATH        latency record file (default BENCH_serve.json)
)";

struct CliOptions {
  std::string socket_path;
  int port = 0;
  bool spawn = false;
  int clients = 8;
  int requests_per_client = 50;
  std::string specs_dir = WAVE_SPECS_DIR;
  std::string out_path = "BENCH_serve.json";
};

struct SpecInfo {
  std::string name;
  std::string text;
  std::vector<std::string> property_names;
  std::vector<bool> expected;  // expect annotation per property
};

bool ParseArgs(int argc, char** argv, CliOptions* out, std::string* error) {
  auto value_of = [](const char* arg, const char* flag) -> const char* {
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if ((v = value_of(arg, "--socket")) != nullptr) {
      out->socket_path = v;
    } else if ((v = value_of(arg, "--port")) != nullptr) {
      out->port = std::atoi(v);
    } else if (std::strcmp(arg, "--spawn") == 0) {
      out->spawn = true;
    } else if ((v = value_of(arg, "--clients")) != nullptr) {
      out->clients = std::atoi(v);
    } else if ((v = value_of(arg, "--requests")) != nullptr) {
      out->requests_per_client = std::atoi(v);
    } else if ((v = value_of(arg, "--specs-dir")) != nullptr) {
      out->specs_dir = v;
    } else if ((v = value_of(arg, "--out")) != nullptr) {
      out->out_path = v;
    } else {
      *error = std::string("unknown option: ") + arg;
      return false;
    }
  }
  int modes = (out->spawn ? 1 : 0) + (!out->socket_path.empty() ? 1 : 0) +
              (out->port != 0 ? 1 : 0);
  if (modes != 1) {
    *error = "pick exactly one of --spawn, --socket, --port";
    return false;
  }
  if (out->clients < 1 || out->requests_per_client < 1) {
    *error = "--clients and --requests must be >= 1";
    return false;
  }
  return true;
}

int ConnectTo(const std::string& socket_path, int port) {
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) return -1;
    ::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(static_cast<uint16_t>(port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One blocking request/response client over a line-framed socket.
class Client {
 public:
  bool Connect(const std::string& socket_path, int port) {
    fd_ = ConnectTo(socket_path, port);
    return fd_ >= 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool SendLine(const std::string& frame) {
    size_t off = 0;
    while (off < frame.size()) {
      ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Aggregates one phase's outcomes across client threads.
struct Tally {
  std::mutex mu;
  std::vector<double> latencies;
  int64_t sent = 0;
  int64_t received = 0;
  int64_t wrong = 0;
  int64_t prepass_reuses = 0;
  int64_t cache_hits = 0;
};

int64_t StatInt(const obs::Json& response, const char* field) {
  const obs::Json* stats = response.Find("stats");
  if (stats == nullptr) return 0;
  const obs::Json* v = stats->Find(field);
  return v != nullptr && v->is_number() ? v->AsInt() : 0;
}

/// Sends one envelope, waits for its response, verifies the verdict(s).
/// Returns false when the response never arrived (a drop).
bool RoundTrip(Client& client, const SpecInfo& spec,
               const serve::RequestEnvelope& envelope, Tally* tally,
               std::vector<double>* latencies_out) {
  Stopwatch watch;
  {
    std::lock_guard<std::mutex> lock(tally->mu);
    ++tally->sent;
  }
  if (!client.SendLine(serve::FrameLine(serve::RequestEnvelopeToJson(envelope)))) {
    return false;
  }
  std::string line;
  if (!client.ReadLine(&line)) return false;
  double latency = watch.ElapsedSeconds();

  StatusOr<serve::ResponseEnvelope> response = serve::ParseResponseLine(line);
  std::lock_guard<std::mutex> lock(tally->mu);
  ++tally->received;
  latencies_out->push_back(latency);
  if (!response.ok() || !response->ok) {
    ++tally->wrong;
    return true;
  }

  auto check_verdict = [&](const obs::Json& body, size_t property_index) {
    const obs::Json* verdict = body.Find("verdict");
    const char* want = spec.expected[property_index] ? "holds" : "violated";
    if (verdict == nullptr || !verdict->is_string() ||
        verdict->AsString() != want) {
      ++tally->wrong;
    }
    tally->prepass_reuses += StatInt(body, "prepass_reuses");
    tally->cache_hits += StatInt(body, "cache_hits");
  };

  if (envelope.verb == serve::Verb::kBatch) {
    const obs::Json* responses = response->response.Find("responses");
    if (responses == nullptr || !responses->is_array() ||
        responses->size() != spec.property_names.size()) {
      ++tally->wrong;
      return true;
    }
    for (size_t i = 0; i < responses->size(); ++i) {
      check_verdict(responses->items()[i], i);
    }
  } else {
    // The verify envelope's request carries the property name; recover
    // its catalog index for the expectation check.
    const obs::Json* name = envelope.request.Find("property");
    size_t index = 0;
    for (size_t i = 0; i < spec.property_names.size(); ++i) {
      if (name != nullptr && spec.property_names[i] == name->AsString()) {
        index = i;
      }
    }
    check_verdict(response->response, index);
  }
  return true;
}

serve::RequestEnvelope VerifyEnvelope(const SpecInfo& spec,
                                      size_t property_index,
                                      const std::string& id) {
  serve::RequestEnvelope envelope;
  envelope.id = id;
  envelope.verb = serve::Verb::kVerify;
  envelope.spec_text = spec.text;
  envelope.request = obs::Json::Object();
  envelope.request.Set(
      "property", obs::Json::Str(spec.property_names[property_index]));
  return envelope;
}

serve::RequestEnvelope BatchEnvelope(const SpecInfo& spec,
                                     const std::string& id) {
  serve::RequestEnvelope envelope;
  envelope.id = id;
  envelope.verb = serve::Verb::kBatch;
  envelope.spec_text = spec.text;
  envelope.request = obs::Json::Object();  // empty = whole catalog
  return envelope;
}

obs::Json Record(const char* name, const CliOptions& cli, Tally& tally,
                 std::vector<double> latencies) {
  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double q) -> double {
    if (latencies.empty()) return 0;
    double pos = q * (latencies.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, latencies.size() - 1);
    double frac = pos - lo;
    return latencies[lo] * (1 - frac) + latencies[hi] * frac;
  };
  obs::Json params = obs::Json::Object();
  params.Set("suite", obs::Json::Str("serve"));
  params.Set("clients", obs::Json::Int(cli.clients));
  params.Set("prepass_reuses", obs::Json::Int(tally.prepass_reuses));
  params.Set("cache_hits", obs::Json::Int(tally.cache_hits));
  params.Set("p50_s", obs::Json::Number(quantile(0.5)));
  params.Set("p99_s", obs::Json::Number(quantile(0.99)));
  obs::Json counters = obs::Json::Object();
  counters.Set("responses", obs::Json::Int(tally.received));
  counters.Set("wrong", obs::Json::Int(tally.wrong));
  counters.Set("dropped", obs::Json::Int(tally.sent - tally.received));
  return bench::TimingRecord(name, std::move(params), std::move(latencies),
                             std::move(counters));
}

int Main(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, &cli, &error)) {
    std::fprintf(stderr, "wave_load: %s\n%s", error.c_str(), kUsage);
    return 1;
  }

  // Load + locally parse the four bundled specs (names and expectations).
  const char* files[] = {"e1_shopping.spec", "e2_motogp.spec",
                         "e3_airline.spec", "e4_bookstore.spec"};
  std::vector<SpecInfo> specs;
  for (const char* file : files) {
    SpecInfo info;
    info.name = file;
    StatusOr<std::string> text =
        ReadFileToString(cli.specs_dir + "/" + file);
    if (!text.ok()) {
      std::fprintf(stderr, "wave_load: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    info.text = std::move(*text);
    ParseResult parsed = ParseSpec(info.text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "wave_load: %s does not parse\n", file);
      return 1;
    }
    for (const ParsedProperty& p : parsed.properties) {
      info.property_names.push_back(p.property.name);
      info.expected.push_back(p.expected);
    }
    specs.push_back(std::move(info));
  }

  // --spawn: a private daemon on a Unix socket with a fresh cache dir.
  pid_t daemon_pid = -1;
  char scratch[] = "/tmp/wave_load_XXXXXX";
  if (cli.spawn) {
    if (::mkdtemp(scratch) == nullptr) {
      std::fprintf(stderr, "wave_load: mkdtemp failed\n");
      return 1;
    }
    cli.socket_path = std::string(scratch) + "/serve.sock";
    std::string cache_dir = std::string(scratch) + "/cache";
    std::string bin = WAVE_SERVE_BIN;
    if (bin.empty()) {
      std::fprintf(stderr, "wave_load: built without WAVE_SERVE_BIN\n");
      return 1;
    }
    // One executor per client: the load run measures engine + protocol
    // latency, not queueing behind an undersized default fleet.
    std::vector<std::string> args = {bin, "--socket=" + cli.socket_path,
                                     "--cache-dir=" + cache_dir,
                                     "--executors=" + std::to_string(cli.clients)};
    daemon_pid = ::fork();
    if (daemon_pid < 0) {
      std::fprintf(stderr, "wave_load: fork failed\n");
      return 1;
    }
    if (daemon_pid == 0) {
      std::freopen("/dev/null", "w", stdout);
      std::vector<char*> child_argv;
      for (std::string& a : args) child_argv.push_back(a.data());
      child_argv.push_back(nullptr);
      ::execv(bin.c_str(), child_argv.data());
      std::fprintf(stderr, "wave_load: exec %s failed\n", bin.c_str());
      ::_exit(127);
    }
    // Wait for the listener (the socket file appears, then accepts).
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
      int fd = ConnectTo(cli.socket_path, 0);
      if (fd >= 0) {
        ::close(fd);
        up = true;
      } else {
        struct timespec nap = {0, 50 * 1000 * 1000};
        ::nanosleep(&nap, nullptr);
      }
    }
    if (!up) {
      std::fprintf(stderr, "wave_load: daemon never came up\n");
      ::kill(daemon_pid, SIGKILL);
      return 1;
    }
  }

  // Phase 1 — cold: one sequential client touches every (spec, property)
  // pair once, so the cold latencies measure parse + first verification
  // and the whole warm phase below consists of genuine repeats.
  Tally cold;
  std::vector<double> cold_latencies;
  {
    Client client;
    if (!client.Connect(cli.socket_path, cli.port)) {
      std::fprintf(stderr, "wave_load: cannot connect\n");
      if (daemon_pid > 0) ::kill(daemon_pid, SIGKILL);
      return 1;
    }
    for (size_t s = 0; s < specs.size(); ++s) {
      for (size_t p = 0; p < specs[s].property_names.size(); ++p) {
        RoundTrip(client, specs[s],
                  VerifyEnvelope(specs[s], p,
                                 "cold-" + std::to_string(s) + "-" +
                                     std::to_string(p)),
                  &cold, &cold_latencies);
      }
    }
  }

  // Phase 2 — warm mix: N concurrent clients, each its own connection,
  // interleaving per-property verifies with occasional whole-catalog
  // batches across all four specs.
  Tally warm;
  Tally batch;
  std::vector<std::vector<double>> warm_lat(cli.clients);
  std::vector<std::vector<double>> batch_lat(cli.clients);
  std::atomic<bool> connect_failed{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < cli.clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect(cli.socket_path, cli.port)) {
        connect_failed.store(true);
        return;
      }
      for (int r = 0; r < cli.requests_per_client; ++r) {
        const SpecInfo& spec = specs[(c + r) % specs.size()];
        std::string id = "c" + std::to_string(c) + "-" + std::to_string(r);
        // An occasional whole-catalog batch rides along (~1 in 13); a
        // batch holds its spec's session lease for tens of ms, so a
        // heavier share would measure lease queueing, not the warm path.
        if (r % 13 == 5) {
          if (!RoundTrip(client, spec, BatchEnvelope(spec, id), &batch,
                         &batch_lat[c])) {
            return;  // dropped tail shows up as sent - received
          }
        } else {
          size_t property = static_cast<size_t>(r) %
                            spec.property_names.size();
          if (!RoundTrip(client, spec, VerifyEnvelope(spec, property, id),
                         &warm, &warm_lat[c])) {
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<double> warm_latencies;
  std::vector<double> batch_latencies;
  for (int c = 0; c < cli.clients; ++c) {
    warm_latencies.insert(warm_latencies.end(), warm_lat[c].begin(),
                          warm_lat[c].end());
    batch_latencies.insert(batch_latencies.end(), batch_lat[c].begin(),
                           batch_lat[c].end());
  }

  // --spawn: graceful SIGTERM drain must exit 0.
  int drain_failed = 0;
  if (daemon_pid > 0) {
    ::kill(daemon_pid, SIGTERM);
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "wave_load: daemon did not drain cleanly\n");
      drain_failed = 1;
    }
    ::unlink(cli.socket_path.c_str());
  }

  obs::Json cold_record = Record("serve/cold", cli, cold, cold_latencies);
  obs::Json warm_record = Record("serve/warm", cli, warm, warm_latencies);
  obs::Json batch_record = Record("serve/batch", cli, batch, batch_latencies);
  {
    std::string out = cold_record.Dump() + "\n" + warm_record.Dump() + "\n" +
                      batch_record.Dump() + "\n";
    Status written = AtomicWriteFile(cli.out_path, out);
    if (!written.ok()) {
      std::fprintf(stderr, "wave_load: %s\n", written.ToString().c_str());
      return 1;
    }
  }

  auto print_phase = [](const char* name, const Tally& tally,
                        const obs::Json& record) {
    const obs::Json* params = record.Find("params");
    double p50 = params->Find("p50_s")->AsDouble();
    double p99 = params->Find("p99_s")->AsDouble();
    std::printf(
        "%-12s sent=%lld received=%lld wrong=%lld dropped=%lld "
        "p50=%.4fs p99=%.4fs prepass_reuses=%lld cache_hits=%lld\n",
        name, static_cast<long long>(tally.sent),
        static_cast<long long>(tally.received),
        static_cast<long long>(tally.wrong),
        static_cast<long long>(tally.sent - tally.received), p50, p99,
        static_cast<long long>(tally.prepass_reuses),
        static_cast<long long>(tally.cache_hits));
  };
  print_phase("serve/cold", cold, cold_record);
  print_phase("serve/warm", warm, warm_record);
  print_phase("serve/batch", batch, batch_record);
  std::printf("records -> %s\n", cli.out_path.c_str());

  if (connect_failed.load()) {
    std::fprintf(stderr, "wave_load: a client failed to connect\n");
    return 1;
  }
  int64_t wrong = cold.wrong + warm.wrong + batch.wrong;
  int64_t dropped = (cold.sent - cold.received) + (warm.sent - warm.received) +
                    (batch.sent - batch.received);
  bool warmed = warm.prepass_reuses + warm.cache_hits +
                    batch.prepass_reuses + batch.cache_hits >
                0;
  if (wrong > 0 || dropped > 0 || !warmed || drain_failed != 0) {
    std::fprintf(stderr,
                 "wave_load: FAILED (wrong=%lld dropped=%lld warmed=%s%s)\n",
                 static_cast<long long>(wrong),
                 static_cast<long long>(dropped), warmed ? "yes" : "NO",
                 drain_failed ? " drain=FAILED" : "");
    return 2;
  }
  std::printf("wave_load: OK\n");
  return 0;
}

}  // namespace
}  // namespace wave

int main(int argc, char** argv) { return wave::Main(argc, argv); }
