// wave_crash — kill-point recovery harness for the multi-process
// ResultCache (ISSUE 7).
//
// The crash-consistency claim under test: no matter where a writer dies,
// the cache directory always recovers to a consistent state, and a warm
// re-run over the survivor returns verdicts identical to a cold run.
// SIGKILL is the harshest version of "where a writer dies" — no
// destructors, no atexit, no flushes — so that is what we rehearse:
//
//   round:  pick a crash-applicable fault site and a hit index N from a
//           pinned RNG, export WAVE_FAULT_SPEC="<site>=crash@<N>", fork
//           and exec a child `wave_verify --cache-dir=<shared>` over one
//           of the E1–E4 specs, and wait. The child SIGKILLs itself at
//           the Nth hit of that site (or finishes normally when the site
//           is hit fewer than N times).
//   check:  re-open the cache (ResultCache::Open heals crash debris:
//           stray temp files, unpublished generations, a torn store) and
//           run `AuditCacheDir`: the directory must be consistent and
//           clean, and the quarantine must stay EMPTY — a SIGKILL cannot
//           tear an atomically-renamed file, so any CRC-failing
//           manifested entry would be a real bug, not bad luck.
//   final:  warm-vs-cold differential. For each spec, one run over the
//           hammered cache and one over a fresh directory, both with
//           identical deterministic budgets; every property's verdict
//           must match (via --stats-json).
//
// The fleet of kill-points is drawn from the registered site inventory
// (fault::KnownSites), so a new cache/io site automatically joins the
// rotation. Once all specs verify cleanly in a row the cache is fully
// warm and stores (hence store-path kill-points) stop firing — the
// harness then wipes the directory and keeps hammering from cold.
//
// Used by tests/cache_concurrency_test.cc (smoke), scripts/check.sh
// --faults (short budget) and the ISSUE-7 acceptance run (--kills=200).
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "common/status.h"
#include "obs/json.h"
#include "verifier/cache.h"

#ifndef WAVE_VERIFY_BIN
#define WAVE_VERIFY_BIN ""
#endif
#ifndef WAVE_SPECS_DIR
#define WAVE_SPECS_DIR ""
#endif

namespace wave {
namespace {

namespace fs = std::filesystem;

constexpr char kUsage[] = R"(usage: wave_crash [options]

SIGKILLs child wave_verify runs at randomized armed crash-points during
cache store/load and proves the cache directory always recovers: every
round must audit consistent, and warm re-run verdicts must equal cold
runs (see docs/ROBUSTNESS.md).

options:
  --verify-bin=PATH   wave_verify binary (default: the build-time path)
  --specs-dir=PATH    directory holding e1..e4 specs (default: in-tree)
  --work-dir=PATH     scratch directory (default ./wave_crash.work; the
                      hammered cache lives at WORK/cache)
  --kills=N           SIGKILL deaths to collect (default 200)
  --max-rounds=N      bound on total child runs (default 8*kills)
  --seed=N            RNG seed for site/hit selection (default 1)
  --keep-going        report every inconsistency instead of stopping
  --quiet             suppress per-round lines
exit status: 0 cache always consistent + verdicts identical, 1 setup
error, 4 inconsistency or verdict divergence detected
)";

struct CliOptions {
  std::string verify_bin = WAVE_VERIFY_BIN;
  std::string specs_dir = WAVE_SPECS_DIR;
  std::string work_dir = "wave_crash.work";
  int kills = 200;
  int max_rounds = 0;  // 0 -> 8 * kills
  uint64_t seed = 1;
  bool keep_going = false;
  bool quiet = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* out, std::string* error) {
  auto value_of = [](const char* arg, const char* flag) -> const char* {
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if ((v = value_of(arg, "--verify-bin")) != nullptr) {
      out->verify_bin = v;
    } else if ((v = value_of(arg, "--specs-dir")) != nullptr) {
      out->specs_dir = v;
    } else if ((v = value_of(arg, "--work-dir")) != nullptr) {
      out->work_dir = v;
    } else if ((v = value_of(arg, "--kills")) != nullptr) {
      out->kills = std::atoi(v);
    } else if ((v = value_of(arg, "--max-rounds")) != nullptr) {
      out->max_rounds = std::atoi(v);
    } else if ((v = value_of(arg, "--seed")) != nullptr) {
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--keep-going") == 0) {
      out->keep_going = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      out->quiet = true;
    } else {
      *error = std::string("unknown option: ") + arg;
      return false;
    }
  }
  if (out->max_rounds <= 0) out->max_rounds = 8 * out->kills;
  return true;
}

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Crash-applicable kill-points on the cache store/load paths, drawn
/// from the registered inventory so new sites join automatically.
std::vector<std::string> CrashSites() {
  std::vector<std::string> sites;
  for (const fault::SiteInfo& info : fault::KnownSites()) {
    std::string_view site = info.site;
    if (!info.Supports(fault::Kind::kCrash)) continue;
    if (site.substr(0, 6) == "cache." || site.substr(0, 9) == "io.write.") {
      sites.emplace_back(site);
    }
  }
  return sites;
}

/// Runs one child wave_verify and returns its wait status (-1 on
/// fork/exec trouble). `fault_spec` empty = unarmed run.
int RunChild(const CliOptions& cli, const std::string& spec_path,
             const std::string& cache_dir, const std::string& fault_spec,
             const std::string& stats_path) {
  std::vector<std::string> args = {
      cli.verify_bin, spec_path, "--cache-dir=" + cache_dir,
      // Default budgets decide every E1-E4 property quickly and
      // deterministically; a generous timeout keeps slow CI machines from
      // introducing wall-clock-dependent unknowns into the differential.
      "--timeout=120", "--keep-going"};
  if (!stats_path.empty()) args.push_back("--stats-json=" + stats_path);

  pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    if (fault_spec.empty()) {
      ::unsetenv("WAVE_FAULT_SPEC");
    } else {
      ::setenv("WAVE_FAULT_SPEC", fault_spec.c_str(), 1);
    }
    // The kill rounds' stdout is noise; keep stderr (warnings matter).
    std::freopen("/dev/null", "w", stdout);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(cli.verify_bin.c_str(), argv.data());
    std::fprintf(stderr, "wave_crash: exec %s failed\n",
                 cli.verify_bin.c_str());
    ::_exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) return -1;
  return status;
}

/// property -> verdict, from a --stats-json file; nullopt on any
/// missing/odd file (the caller treats that as a harness failure).
std::optional<std::map<std::string, std::string>> ReadVerdicts(
    const std::string& stats_path) {
  StatusOr<std::string> text = ReadFileToString(stats_path);
  if (!text.ok()) return std::nullopt;
  std::optional<obs::Json> doc = obs::Json::Parse(*text);
  if (!doc.has_value() || !doc->is_object()) return std::nullopt;
  const obs::Json* runs = doc->Find("runs");
  if (runs == nullptr || !runs->is_array()) return std::nullopt;
  std::map<std::string, std::string> verdicts;
  for (const obs::Json& run : runs->items()) {
    const obs::Json* property = run.Find("property");
    const obs::Json* verdict = run.Find("verdict");
    if (property == nullptr || !property->is_string() || verdict == nullptr ||
        !verdict->is_string()) {
      return std::nullopt;
    }
    verdicts[property->AsString()] = verdict->AsString();
  }
  return verdicts;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, &cli, &error)) {
    std::fprintf(stderr, "wave_crash: %s\n%s", error.c_str(), kUsage);
    return 1;
  }
  std::vector<std::string> specs;
  for (const char* name : {"e1_shopping.spec", "e2_motogp.spec",
                           "e3_airline.spec", "e4_bookstore.spec"}) {
    std::string path = cli.specs_dir + "/" + name;
    std::error_code ec;
    if (!fs::is_regular_file(path, ec)) {
      std::fprintf(stderr, "wave_crash: no spec at %s (--specs-dir?)\n",
                   path.c_str());
      return 1;
    }
    specs.push_back(std::move(path));
  }
  {
    std::error_code ec;
    if (!fs::is_regular_file(cli.verify_bin, ec)) {
      std::fprintf(stderr, "wave_crash: no wave_verify at %s (--verify-bin?)\n",
                   cli.verify_bin.c_str());
      return 1;
    }
    fs::remove_all(cli.work_dir, ec);
    fs::create_directories(cli.work_dir, ec);
    if (ec) {
      std::fprintf(stderr, "wave_crash: cannot create %s: %s\n",
                   cli.work_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  const std::string cache_dir = cli.work_dir + "/cache";
  const std::vector<std::string> sites = CrashSites();
  if (sites.empty()) {
    std::fprintf(stderr, "wave_crash: no crash-applicable sites registered\n");
    return 1;
  }

  uint64_t rng = cli.seed;
  int rounds = 0, kills = 0, clean_runs = 0, failures = 0, wipes = 0;
  int consecutive_clean = 0;
  std::map<std::string, int> kills_by_site;

  while (kills < cli.kills && rounds < cli.max_rounds) {
    const std::string& spec = specs[rounds % specs.size()];
    const std::string& site = sites[SplitMix64Next(&rng) % sites.size()];
    const int nth = 1 + static_cast<int>(SplitMix64Next(&rng) % 12);
    const std::string fault_spec =
        site + "=crash@" + std::to_string(nth);
    ++rounds;

    int status = RunChild(cli, spec, cache_dir, fault_spec, "");
    bool killed = status >= 0 && WIFSIGNALED(status) &&
                  WTERMSIG(status) == SIGKILL;
    if (killed) {
      ++kills;
      ++kills_by_site[site];
      consecutive_clean = 0;
    } else {
      ++clean_runs;
      ++consecutive_clean;
    }

    // Recovery + audit after EVERY round: Open heals whatever the crash
    // left behind, then the directory must check out completely.
    {
      StatusOr<std::unique_ptr<ResultCache>> healed =
          ResultCache::Open(cache_dir);
      if (!healed.ok()) {
        std::fprintf(stderr, "wave_crash: round %d (%s): recovery open: %s\n",
                     rounds, fault_spec.c_str(),
                     healed.status().ToString().c_str());
        ++failures;
        if (!cli.keep_going) break;
      }
    }
    CacheAudit audit = AuditCacheDir(cache_dir);
    if (!audit.consistent() || !audit.clean() ||
        audit.quarantined_files != 0) {
      std::fprintf(stderr,
                   "wave_crash: round %d (%s): INCONSISTENT after recovery "
                   "(torn=%lld missing=%lld orphans=%lld tmp=%lld "
                   "quarantined=%lld)\n",
                   rounds, fault_spec.c_str(),
                   static_cast<long long>(audit.torn_entries),
                   static_cast<long long>(audit.missing_entries),
                   static_cast<long long>(audit.orphan_files),
                   static_cast<long long>(audit.tmp_files),
                   static_cast<long long>(audit.quarantined_files));
      for (const std::string& p : audit.problems) {
        std::fprintf(stderr, "wave_crash:   %s\n", p.c_str());
      }
      ++failures;
      if (!cli.keep_going) break;
    }
    if (!cli.quiet && (rounds % 25 == 0 || kills == cli.kills)) {
      std::fprintf(stderr,
                   "wave_crash: %d rounds, %d/%d kills, %d clean, "
                   "%lld cached entries\n",
                   rounds, kills, cli.kills, clean_runs,
                   static_cast<long long>(audit.manifested_entries));
    }

    // All specs verified without a single kill-point firing: the cache is
    // fully warm, store-path kill-points are starved. Wipe and re-hammer
    // from cold.
    if (consecutive_clean >= static_cast<int>(specs.size())) {
      std::error_code ec;
      fs::remove_all(cache_dir, ec);
      consecutive_clean = 0;
      ++wipes;
    }
  }

  // Warm-vs-cold differential over whatever survived the massacre: the
  // hammered cache must produce exactly the verdicts a fresh one does.
  int diffs = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const std::string warm_stats =
        cli.work_dir + "/warm_" + std::to_string(i) + ".json";
    const std::string cold_stats =
        cli.work_dir + "/cold_" + std::to_string(i) + ".json";
    const std::string cold_cache =
        cli.work_dir + "/cold_cache_" + std::to_string(i);
    int warm = RunChild(cli, specs[i], cache_dir, "", warm_stats);
    int cold = RunChild(cli, specs[i], cold_cache, "", cold_stats);
    if (warm < 0 || cold < 0 || !WIFEXITED(warm) || !WIFEXITED(cold)) {
      std::fprintf(stderr, "wave_crash: differential runs failed for %s\n",
                   specs[i].c_str());
      ++failures;
      continue;
    }
    auto warm_verdicts = ReadVerdicts(warm_stats);
    auto cold_verdicts = ReadVerdicts(cold_stats);
    if (!warm_verdicts.has_value() || !cold_verdicts.has_value()) {
      std::fprintf(stderr, "wave_crash: cannot read stats JSON for %s\n",
                   specs[i].c_str());
      ++failures;
      continue;
    }
    if (*warm_verdicts != *cold_verdicts) {
      std::fprintf(stderr,
                   "wave_crash: VERDICT DIVERGENCE on %s (warm cache after "
                   "%d kills vs cold):\n",
                   specs[i].c_str(), kills);
      for (const auto& [property, verdict] : *cold_verdicts) {
        auto it = warm_verdicts->find(property);
        std::string warm_v = it == warm_verdicts->end() ? "<absent>"
                                                        : it->second;
        if (warm_v != verdict) {
          std::fprintf(stderr, "wave_crash:   %s: cold=%s warm=%s\n",
                       property.c_str(), verdict.c_str(), warm_v.c_str());
        }
      }
      ++diffs;
    }
  }

  std::fprintf(stderr,
               "wave_crash: %d rounds, %d kills (%d clean runs, %d cache "
               "wipes), %d audit failures, %d verdict divergences\n",
               rounds, kills, clean_runs, wipes, failures, diffs);
  if (!cli.quiet) {
    for (const auto& [site, count] : kills_by_site) {
      std::fprintf(stderr, "wave_crash:   killed at %-24s x%d\n",
                   site.c_str(), count);
    }
  }
  if (kills < cli.kills) {
    std::fprintf(stderr,
                 "wave_crash: only %d/%d kills within %d rounds (harness "
                 "budget too tight?)\n",
                 kills, cli.kills, rounds);
  }
  if (failures > 0 || diffs > 0) return 4;
  // An unreached kill target alone is a budget problem, not a
  // consistency violation — report it but do not fail the gate when the
  // rounds that DID run all audited clean.
  std::error_code ec;
  fs::remove_all(cli.work_dir, ec);
  return 0;
}

}  // namespace
}  // namespace wave

int main(int argc, char** argv) { return wave::Main(argc, argv); }
