// wave_serve — the long-lived verification daemon (ISSUE 9). Speaks the
// line-delimited JSON protocol of src/serve/protocol.h over a Unix-domain
// or loopback TCP socket:
//
//   wave_serve --socket=/tmp/wave.sock --cache-dir=/var/cache/wave
//   wave_serve --port=0 --executors=4        # prints the resolved port
//
// Many clients connect concurrently; requests multiplex onto the
// executor fleet with admission control and per-client round-robin
// fairness, repeat specs hit the hot `SessionPool` (warm pre-pass memo),
// and decided verdicts persist in one shared `ResultCache` directory.
// SIGTERM/SIGINT drains gracefully: in-flight requests finish, queued
// ones are answered with a typed SHUTTING_DOWN. See docs/SERVING.md.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/fault.h"
#include "serve/server.h"

namespace wave {
namespace {

constexpr char kUsage[] = R"(usage: wave_serve [options]

options:
  --socket=PATH          listen on a Unix-domain socket (replaces a stale
                         socket file at PATH)
  --port=N               listen on TCP 127.0.0.1:N (0 = ephemeral; the
                         resolved port is printed; default when no
                         --socket is given)
  --cache-dir=PATH       shared persistent result cache for all requests
                         (created if missing; default: no cache)
  --executors=N          request-executor threads (default 2)
  --session-capacity=N   hot specs kept by the LRU session pool (default 8)
  --queue-capacity=N     admission bound on queued requests (default 64)
  --max-jobs=N           clamp per-request worker counts to [1, N]
                         (default 4)

Protocol: one JSON object per line (docs/SERVING.md). SIGTERM/SIGINT
drain gracefully. Exit status: 0 clean shutdown, 1 usage/bind error.
)";

struct CliOptions {
  serve::ServerOptions server;
};

bool ParseArgs(int argc, char** argv, CliOptions* out, std::string* error) {
  auto value_of = [](const char* arg, const char* flag) -> const char* {
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if ((v = value_of(arg, "--socket")) != nullptr) {
      out->server.socket_path = v;
    } else if ((v = value_of(arg, "--port")) != nullptr) {
      out->server.port = std::atoi(v);
    } else if ((v = value_of(arg, "--cache-dir")) != nullptr) {
      out->server.cache_dir = v;
    } else if ((v = value_of(arg, "--executors")) != nullptr) {
      out->server.executors = std::atoi(v);
    } else if ((v = value_of(arg, "--session-capacity")) != nullptr) {
      out->server.session_capacity = std::atoi(v);
    } else if ((v = value_of(arg, "--queue-capacity")) != nullptr) {
      out->server.queue_capacity = std::atoi(v);
    } else if ((v = value_of(arg, "--max-jobs")) != nullptr) {
      out->server.max_jobs = std::atoi(v);
    } else {
      *error = std::string("unknown option: ") + arg;
      return false;
    }
  }
  return true;
}

/// SIGTERM/SIGINT handlers may only do an async-signal-safe store; the
/// main thread polls the flag and runs the actual drain.
serve::Server* g_server = nullptr;

extern "C" void HandleShutdownSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Main(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, &cli, &error)) {
    std::fprintf(stderr, "wave_serve: %s\n%s", error.c_str(), kUsage);
    return 1;
  }
  if (Status armed = fault::ArmFromEnv(); !armed.ok()) {
    std::fprintf(stderr, "wave_serve: WAVE_FAULT_SPEC: %s\n",
                 armed.ToString().c_str());
    return 1;
  }

  StatusOr<std::unique_ptr<serve::Server>> server =
      serve::Server::Start(cli.server);
  if (!server.ok()) {
    std::fprintf(stderr, "wave_serve: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // The "listening" line is the handshake harnesses wait for; flush so a
  // pipe-captured stdout delivers it immediately.
  if (!(*server)->socket_path().empty()) {
    std::printf("wave_serve: listening on %s\n",
                (*server)->socket_path().c_str());
  } else {
    std::printf("wave_serve: listening on 127.0.0.1:%d\n", (*server)->port());
  }
  std::fflush(stdout);

  // All real work happens on the server's threads; this thread only waits
  // for a drain request.
  while (!(*server)->shutdown_requested()) {
    struct timespec nap = {0, 50 * 1000 * 1000};  // 50ms
    ::nanosleep(&nap, nullptr);
  }
  std::fprintf(stderr, "wave_serve: draining...\n");
  (*server)->Shutdown();
  g_server = nullptr;
  std::fprintf(stderr, "wave_serve: shut down cleanly\n");
  return 0;
}

}  // namespace
}  // namespace wave

int main(int argc, char** argv) { return wave::Main(argc, argv); }
