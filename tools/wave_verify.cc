// wave_verify — command-line front end for the verifier with the full
// observability surface of src/obs (ISSUE 1) and the resilient runtime of
// ISSUE 2 wired up:
//
//   wave_verify specs/e1_shopping.spec --property=P1
//       --trace=out.json --stats-json=stats.json
//
// emits a Chrome trace-event file (open in chrome://tracing or
// https://ui.perfetto.dev) with nested prepare/search/validate spans, and
// a machine-readable stats file carrying every VerifyStats field plus the
// verify.*/trie.*/gpvw.*/prepared.* metrics. `--heartbeat=SECONDS` prints
// periodic progress lines so long verifications are never silent.
//
// Robustness (ISSUE 2): output files are written atomically (temp +
// rename), SIGINT cancels the running search cooperatively and still
// emits the partial stats JSON, `--keep-going` isolates per-property
// failures, and `--retry-ladder` climbs the budget-escalation ladder of
// verifier/retry.h instead of a single fixed-budget attempt.
//
// Parallel search (ISSUE 3): `--jobs=N` fans the (assignment, core) shard
// space out over N worker threads via the unified VerifyRequest API; the
// verdict is bit-identical to --jobs=1 (see docs/PARALLELISM.md).
//
// Sessions and caching (ISSUE 4): `--all-properties` verifies the whole
// catalog as ONE `Verifier::RunBatch` call — the spec pre-pass runs once
// and every property's shards share the worker pool — and `--cache-dir=P`
// persists decided verdicts across runs keyed by a fingerprint of
// spec + property + semantics-affecting options, so a re-run with an
// unchanged spec skips the search entirely (see docs/API.md).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "api/wire.h"
#include "common/fault.h"
#include "common/io.h"
#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "parser/parser.h"
#include "verifier/cache.h"
#include "verifier/governor.h"
#include "verifier/validate.h"
#include "verifier/verifier.h"

namespace wave {
namespace {

constexpr char kUsage[] = R"(usage: wave_verify <spec-file> [options]

Verifies LTL-FO properties of a Web application spec (see docs/DSL.md).
Without --property, every property block of the file is verified.

options:
  --property=NAME       verify only this property (repeatable)
  --all-properties      verify the whole catalog as one batch call: the
                        spec pre-pass runs once and all properties share
                        the worker pool (cannot combine with --property
                        or --validated; see docs/API.md)
  --cache-dir=PATH      persist decided verdicts under PATH, keyed by
                        spec+property+options fingerprint; later runs with
                        an unchanged spec report them as cache hits and
                        skip the search (created if missing)
  --request=FILE.json   run a wire-schema request fixture (api/wire.h,
                        docs/SERVING.md) against the spec's catalog —
                        exactly what the wave_serve daemon would run
  --response-json=PATH  with --request: write the wire-schema response
                        JSON (atomic; the daemon's over-the-wire bytes)
  --audit-cache         read-only integrity audit of --cache-dir (no spec
                        needed): prints the AuditCacheDir report as JSON,
                        exits 0 iff the directory is safe to serve reads
  --list                list the file's properties and exit
  --trace=PATH          write a Chrome trace-event JSON file (chrome://tracing, Perfetto)
  --stats-json=PATH     write verdicts + VerifyStats + metrics as JSON (atomic)
  --summary             print the aggregated phase-time table after each run
  --heartbeat=SECONDS   print progress lines every SECONDS (default off)
  --jobs=N              search (assignment, core) shards on N worker threads
                        (default 1; 0 = one per hardware thread; verdicts
                        are identical at any N — see docs/PARALLELISM.md)
  --timeout=SECONDS     wall-clock budget per property (default 120)
  --max-expansions=N    expansion budget per property (default unlimited)
  --max-candidates=N    candidate-tuple budget (default 20)
  --max-memory-mb=N     approximate memory ceiling for trie+stacks (default unlimited)
  --keep-going          verify remaining properties after an undecided or
                        missing one (default: stop at the first failure)
  --retry-ladder        escalate budgets on budget-limited unknowns
                        (tight -> base -> exhaustive; see docs/ROBUSTNESS.md)
  --validated           replay candidate counterexamples as genuine runs
                        (the Section 7 incomplete-verifier loop)
  --no-heuristic1       disable core pruning
  --no-heuristic2       disable extension pruning
  --exhaustive          enumerate equality patterns among fresh C-exists values
exit status: 0 all verdicts decided, 1 usage/load error, 2 some verdict
unknown, 130 interrupted (SIGINT; partial stats JSON is still written)
)";

struct CliOptions {
  std::string spec_path;
  std::vector<std::string> properties;
  bool all_properties = false;
  std::string cache_dir;
  std::string request_path;
  std::string response_json_path;
  bool audit_cache = false;
  bool list = false;
  std::string trace_path;
  std::string stats_path;
  bool summary = false;
  double heartbeat_seconds = 0;
  bool validated = false;
  bool keep_going = false;
  bool retry_ladder = false;
  int jobs = 1;
  VerifyOptions verify;
};

bool ParseArgs(int argc, char** argv, CliOptions* out, std::string* error) {
  auto value_of = [](const char* arg, const char* flag) -> const char* {
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (arg[0] != '-') {
      if (!out->spec_path.empty()) {
        *error = "multiple spec files given";
        return false;
      }
      out->spec_path = arg;
    } else if ((v = value_of(arg, "--property")) != nullptr) {
      out->properties.push_back(v);
    } else if (std::strcmp(arg, "--all-properties") == 0) {
      out->all_properties = true;
    } else if ((v = value_of(arg, "--cache-dir")) != nullptr) {
      out->cache_dir = v;
    } else if ((v = value_of(arg, "--request")) != nullptr) {
      out->request_path = v;
    } else if ((v = value_of(arg, "--response-json")) != nullptr) {
      out->response_json_path = v;
    } else if (std::strcmp(arg, "--audit-cache") == 0) {
      out->audit_cache = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      out->list = true;
    } else if ((v = value_of(arg, "--trace")) != nullptr) {
      out->trace_path = v;
    } else if ((v = value_of(arg, "--stats-json")) != nullptr) {
      out->stats_path = v;
    } else if (std::strcmp(arg, "--summary") == 0) {
      out->summary = true;
    } else if ((v = value_of(arg, "--heartbeat")) != nullptr) {
      out->heartbeat_seconds = std::atof(v);
    } else if ((v = value_of(arg, "--jobs")) != nullptr) {
      out->jobs = std::atoi(v);
    } else if ((v = value_of(arg, "--timeout")) != nullptr) {
      out->verify.timeout_seconds = std::atof(v);
    } else if ((v = value_of(arg, "--max-expansions")) != nullptr) {
      out->verify.max_expansions = std::atoll(v);
    } else if ((v = value_of(arg, "--max-candidates")) != nullptr) {
      out->verify.max_candidates = std::atoi(v);
    } else if ((v = value_of(arg, "--max-memory-mb")) != nullptr) {
      out->verify.max_memory_bytes = std::atoll(v) * 1024 * 1024;
    } else if (std::strcmp(arg, "--keep-going") == 0) {
      out->keep_going = true;
    } else if (std::strcmp(arg, "--retry-ladder") == 0) {
      out->retry_ladder = true;
    } else if (std::strcmp(arg, "--validated") == 0) {
      out->validated = true;
    } else if (std::strcmp(arg, "--no-heuristic1") == 0) {
      out->verify.heuristic1 = false;
    } else if (std::strcmp(arg, "--no-heuristic2") == 0) {
      out->verify.heuristic2 = false;
    } else if (std::strcmp(arg, "--exhaustive") == 0) {
      out->verify.exhaustive_existential = true;
    } else {
      *error = std::string("unknown option: ") + arg;
      return false;
    }
  }
  if (out->audit_cache) {
    if (out->cache_dir.empty()) {
      *error = "--audit-cache needs --cache-dir";
      return false;
    }
    return true;  // no spec file involved
  }
  if (out->spec_path.empty()) {
    *error = "no spec file given";
    return false;
  }
  if (!out->request_path.empty() &&
      (out->all_properties || out->validated || out->retry_ladder ||
       !out->properties.empty())) {
    *error = "--request carries its own selection and policy; drop "
             "--property/--all-properties/--validated/--retry-ladder";
    return false;
  }
  if (!out->response_json_path.empty() && out->request_path.empty()) {
    *error = "--response-json needs --request";
    return false;
  }
  if (out->retry_ladder && out->validated) {
    *error = "--retry-ladder and --validated cannot be combined";
    return false;
  }
  if (out->all_properties && out->validated) {
    *error = "--all-properties and --validated cannot be combined";
    return false;
  }
  if (out->all_properties && !out->properties.empty()) {
    *error = "--all-properties verifies the whole catalog; drop --property";
    return false;
  }
  return true;
}

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "violated";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

/// SIGINT lands here: a single lock-free atomic store the search observes
/// at its next governor poll. The handler itself does no I/O.
CancellationToken g_interrupt;

extern "C" void HandleSigint(int) { g_interrupt.Cancel(); }

/// --audit-cache: the read-only integrity report, no locks taken, nothing
/// healed. Exit 0 iff the directory is safe to serve reads from as-is.
int RunAuditCache(const std::string& dir) {
  CacheAudit audit = AuditCacheDir(dir);
  obs::Json doc = obs::Json::Object();
  doc.Set("dir", obs::Json::Str(dir));
  doc.Set("manifest_present", obs::Json::Bool(audit.manifest_present));
  doc.Set("manifest_ok", obs::Json::Bool(audit.manifest_ok));
  doc.Set("manifested_entries", obs::Json::Int(audit.manifested_entries));
  doc.Set("torn_entries", obs::Json::Int(audit.torn_entries));
  doc.Set("missing_entries", obs::Json::Int(audit.missing_entries));
  doc.Set("orphan_files", obs::Json::Int(audit.orphan_files));
  doc.Set("tmp_files", obs::Json::Int(audit.tmp_files));
  doc.Set("legacy_files", obs::Json::Int(audit.legacy_files));
  doc.Set("quarantined_files", obs::Json::Int(audit.quarantined_files));
  doc.Set("consistent", obs::Json::Bool(audit.consistent()));
  doc.Set("clean", obs::Json::Bool(audit.clean()));
  obs::Json problems = obs::Json::Array();
  for (const std::string& p : audit.problems) {
    problems.Append(obs::Json::Str(p));
  }
  doc.Set("problems", std::move(problems));
  std::printf("%s\n", doc.Dump(2).c_str());
  return audit.consistent() ? 0 : 2;
}

/// --request=FILE.json: run one wire-schema request fixture against the
/// spec's catalog — byte-for-byte what wave_serve executes, minus the
/// socket — and optionally write the wire-schema response.
int RunWireRequest(const CliOptions& cli, const ParseResult& parsed,
                   Verifier& verifier, ResultCache* cache) {
  StatusOr<std::string> text = ReadFileToString(cli.request_path);
  if (!text.ok()) {
    std::fprintf(stderr, "wave_verify: %s\n", text.status().ToString().c_str());
    return 1;
  }
  std::string parse_error;
  std::optional<obs::Json> doc = obs::Json::Parse(*text, &parse_error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "wave_verify: %s: %s\n", cli.request_path.c_str(),
                 parse_error.c_str());
    return 1;
  }

  std::vector<Property> catalog;
  catalog.reserve(parsed.properties.size());
  for (const ParsedProperty& p : parsed.properties) {
    catalog.push_back(p.property);
  }

  auto fail = [](const Status& status) {
    std::fprintf(stderr, "wave_verify: %s\n", status.ToString().c_str());
    return 1;
  };

  obs::Json response_json;
  int undecided = 0;
  const bool is_batch = doc->Find("properties") != nullptr ||
                        doc->Find("property_indices") != nullptr;
  if (is_batch) {
    StatusOr<api::WireBatchRequest> request = api::BatchRequestFromJson(*doc);
    if (!request.ok()) return fail(request.status());
    Status bound = api::BindBatchRequest(&*request, catalog);
    if (!bound.ok()) return fail(bound);
    request->request.cache = cache;
    request->request.options.cancellation = &g_interrupt;
    StatusOr<BatchResponse> response = verifier.RunBatch(request->request);
    if (!response.ok()) return fail(response.status());
    const std::vector<int>& indices = request->request.property_indices;
    for (size_t i = 0; i < response->responses.size(); ++i) {
      const VerifyResponse& r = response->responses[i];
      if (r.verdict == Verdict::kUnknown) ++undecided;
      size_t catalog_index = indices.empty() ? i
                                             : static_cast<size_t>(indices[i]);
      std::printf("%-8s %-9s %8.3fs  expansions=%lld%s\n",
                  catalog[catalog_index].name.c_str(), VerdictName(r.verdict),
                  r.stats.seconds,
                  static_cast<long long>(r.stats.num_expansions),
                  r.stats.cache_hits > 0 ? "  (cached)" : "");
    }
    response_json = api::BatchResponseToJson(*response, *parsed.spec);
  } else {
    StatusOr<VerifyRequest> request = api::RequestFromJson(*doc);
    if (!request.ok()) return fail(request.status());
    request->properties = &catalog;
    request->cache = cache;
    request->options.cancellation = &g_interrupt;
    StatusOr<VerifyResponse> response = verifier.Run(*request);
    if (!response.ok()) return fail(response.status());
    if (response->verdict == Verdict::kUnknown) ++undecided;
    std::printf("%-8s %-9s %8.3fs  expansions=%lld%s\n",
                request->property_name.empty() ? "request"
                                               : request->property_name.c_str(),
                VerdictName(response->verdict), response->stats.seconds,
                static_cast<long long>(response->stats.num_expansions),
                response->stats.cache_hits > 0 ? "  (cached)" : "");
    response_json = api::ResponseToJson(*response, *parsed.spec);
  }

  if (!cli.response_json_path.empty()) {
    Status written = AtomicWriteFile(cli.response_json_path,
                                     response_json.Dump(2) + "\n");
    if (!written.ok()) return fail(written);
    std::fprintf(stderr, "response written to %s\n",
                 cli.response_json_path.c_str());
  }
  return undecided > 0 ? 2 : 0;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, &cli, &error)) {
    std::fprintf(stderr, "wave_verify: %s\n%s", error.c_str(), kUsage);
    return 1;
  }

  // Deterministic fault injection (ISSUE 7): WAVE_FAULT_SPEC in the
  // environment arms a scenario for this whole process — how
  // tools/wave_crash drives its kill-points through us.
  if (Status armed = fault::ArmFromEnv(); !armed.ok()) {
    std::fprintf(stderr, "wave_verify: WAVE_FAULT_SPEC: %s\n",
                 armed.ToString().c_str());
    return 1;
  }

  if (cli.audit_cache) return RunAuditCache(cli.cache_dir);

  StatusOr<ParseResult> loaded = ParseSpecFile(cli.spec_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "wave_verify: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  ParseResult parsed = std::move(loaded).value();
  if (!parsed.ok()) {
    std::fprintf(stderr, "wave_verify: %s does not parse:\n%s\n",
                 cli.spec_path.c_str(), parsed.ErrorText().c_str());
    return 1;
  }

  if (cli.list) {
    for (const ParsedProperty& p : parsed.properties) {
      std::printf("%-8s %-5s expect %s\n", p.property.name.c_str(),
                  p.property.type_code.c_str(),
                  !p.has_expected ? "?" : p.expected ? "true" : "false");
    }
    return 0;
  }

  std::vector<const ParsedProperty*> selected;
  bool load_failures = false;
  if (cli.properties.empty()) {
    for (const ParsedProperty& p : parsed.properties) selected.push_back(&p);
    if (selected.empty()) {
      std::fprintf(stderr, "wave_verify: %s declares no properties\n",
                   cli.spec_path.c_str());
      return 1;
    }
  } else {
    for (const std::string& name : cli.properties) {
      const ParsedProperty* found = nullptr;
      for (const ParsedProperty& p : parsed.properties) {
        if (p.property.name == name) found = &p;
      }
      if (found == nullptr) {
        std::fprintf(stderr,
                     "wave_verify: no property '%s' in %s (try --list)\n",
                     name.c_str(), cli.spec_path.c_str());
        if (!cli.keep_going) return 1;
        load_failures = true;
        continue;
      }
      selected.push_back(found);
    }
    if (selected.empty()) return 1;
  }

  std::optional<obs::Tracer> tracer;
  if (!cli.trace_path.empty() || cli.summary) tracer.emplace();
  obs::MetricsRegistry metrics;

  VerifyOptions options = cli.verify;
  options.tracer = tracer ? &*tracer : nullptr;
  options.metrics = &metrics;
  options.cancellation = &g_interrupt;
  if (cli.heartbeat_seconds > 0) {
    options.heartbeat_interval_seconds = cli.heartbeat_seconds;
    options.heartbeat = [](const HeartbeatSnapshot& hb) {
      std::fprintf(stderr,
                   "  [%7.1fs] expansions=%lld successors=%lld cores=%lld "
                   "assignments=%lld trie=%d\n",
                   hb.elapsed_seconds,
                   static_cast<long long>(hb.num_expansions),
                   static_cast<long long>(hb.num_successors),
                   static_cast<long long>(hb.num_cores),
                   static_cast<long long>(hb.num_assignments), hb.trie_size);
    };
  }

  std::signal(SIGINT, HandleSigint);

  StatusOr<std::unique_ptr<Verifier>> verifier_or =
      Verifier::Create(parsed.spec.get());
  if (!verifier_or.ok()) {
    std::fprintf(stderr, "wave_verify: %s\n",
                 verifier_or.status().ToString().c_str());
    return 1;
  }
  Verifier& verifier = **verifier_or;

  std::unique_ptr<ResultCache> cache;
  if (!cli.cache_dir.empty()) {
    StatusOr<std::unique_ptr<ResultCache>> opened =
        ResultCache::Open(cli.cache_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "wave_verify: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    cache = std::move(*opened);
  }

  if (!cli.request_path.empty()) {
    return RunWireRequest(cli, parsed, verifier, cache.get());
  }

  // --all-properties: one RunBatch call over the whole catalog. The spec
  // pre-pass runs once, every property's shards share the worker pool,
  // and the responses come back in catalog order for the shared printing
  // loop below.
  std::optional<BatchResponse> batch;
  std::vector<Property> catalog;  // must outlive RunBatch
  if (cli.all_properties) {
    catalog.reserve(parsed.properties.size());
    for (const ParsedProperty& p : parsed.properties) {
      catalog.push_back(p.property);
    }
    BatchRequest request;
    request.properties = &catalog;
    request.options = options;
    request.retry.enabled = cli.retry_ladder;
    request.jobs = cli.jobs;
    request.cache = cache.get();
    StatusOr<BatchResponse> response = verifier.RunBatch(request);
    if (!response.ok()) {
      std::fprintf(stderr, "wave_verify: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    batch = std::move(*response);
  }

  obs::Json runs = obs::Json::Array();
  int undecided = 0;
  bool interrupted = false;
  for (size_t index = 0; index < selected.size(); ++index) {
    const ParsedProperty* p = selected[index];
    if (!batch.has_value() && g_interrupt.cancelled()) {
      // Remaining properties are skipped: the user asked us to stop. (A
      // batch already holds a response for every property — cancelled
      // ones report kUnknown/kCancelled — so printing continues.)
      interrupted = true;
      break;
    }
    VerifyResult r;
    obs::Json attempts;
    if (batch.has_value()) {
      VerifyResponse& response = batch->responses[index];
      if (cli.retry_ladder) attempts = response.AttemptsJson();
      r = std::move(static_cast<VerifyResult&>(response));
    } else if (cli.validated) {
      // The Section 7 loop installs its own candidate filter, so it keeps
      // its dedicated entry point (which routes through Run internally).
      r = VerifyValidated(&verifier, parsed.spec.get(), p->property, options,
                          cli.jobs);
    } else {
      VerifyRequest request;
      request.property = &p->property;
      request.options = options;
      request.retry.enabled = cli.retry_ladder;
      request.jobs = cli.jobs;
      request.cache = cache.get();
      StatusOr<VerifyResponse> response = verifier.Run(request);
      if (!response.ok()) {
        std::fprintf(stderr, "wave_verify: %s: %s\n", p->property.name.c_str(),
                     response.status().ToString().c_str());
        if (!cli.keep_going) return 1;
        load_failures = true;
        continue;
      }
      if (cli.retry_ladder) attempts = response->AttemptsJson();
      r = std::move(static_cast<VerifyResult&>(*response));
    }
    if (r.unknown_reason == UnknownReason::kCancelled) interrupted = true;
    if (r.verdict == Verdict::kUnknown) ++undecided;
    std::printf("%-8s %-9s %8.3fs  expansions=%lld trie=%d buchi=%d%s%s%s\n",
                p->property.name.c_str(), VerdictName(r.verdict),
                r.stats.seconds, static_cast<long long>(r.stats.num_expansions),
                r.stats.max_trie_size, r.stats.buchi_states,
                r.stats.cache_hits > 0 ? "  (cached)" : "",
                r.failure_reason.empty() ? "" : "  — ",
                r.failure_reason.c_str());
    if (r.verdict == Verdict::kViolated) {
      std::printf("%s", r.CounterexampleString(*parsed.spec).c_str());
    }

    obs::Json run = obs::Json::Object();
    run.Set("property", obs::Json::Str(p->property.name));
    run.Set("type", obs::Json::Str(p->property.type_code));
    run.Set("verdict", obs::Json::Str(VerdictName(r.verdict)));
    if (p->has_expected) run.Set("expected_holds", obs::Json::Bool(p->expected));
    if (!r.failure_reason.empty()) {
      run.Set("failure_reason", obs::Json::Str(r.failure_reason));
    }
    if (r.verdict == Verdict::kUnknown) {
      run.Set("unknown_reason",
              obs::Json::Str(UnknownReasonName(r.unknown_reason)));
    }
    if (cli.retry_ladder) run.Set("attempts", std::move(attempts));
    run.Set("stats", r.stats.ToJson());
    runs.Append(std::move(run));

    // Per-property fault isolation: without --keep-going an undecided
    // property stops the run (its partial results are still reported and
    // written). Cancellation stops the loop regardless. A batch already
    // paid for every verdict, so all of them are reported.
    if (batch.has_value()) continue;
    if (interrupted) break;
    if (r.verdict == Verdict::kUnknown && !cli.keep_going) break;
  }

  if (batch.has_value()) {
    const VerifyStats& m = batch->merged;
    std::printf("batch    %zu properties %8.3fs  cache_hits=%lld "
                "prepass_reuses=%lld\n",
                batch->responses.size(), m.seconds,
                static_cast<long long>(m.cache_hits),
                static_cast<long long>(m.prepass_reuses));
  }

  // Silent-corruption fix (ISSUE 7 satellite): a cache that quarantined
  // or merely detected corrupt entries says so out loud — the records
  // are preserved under <cache>/quarantine/ for postmortem, and the
  // counts ride in the verify.cache.* metrics of the stats JSON.
  if (cache != nullptr && cache->health().corrupt > 0) {
    std::fprintf(stderr,
                 "wave_verify: warning: %lld corrupt cache entr%s detected "
                 "(%lld moved to %s/quarantine); re-verified from scratch\n",
                 static_cast<long long>(cache->health().corrupt),
                 cache->health().corrupt == 1 ? "y" : "ies",
                 static_cast<long long>(cache->health().quarantined),
                 cache->dir().c_str());
  }

  if (cli.summary && tracer) {
    std::printf("\n%s", tracer->PhaseSummary().c_str());
    std::printf("\n%s", metrics.Summary().c_str());
  }

  // Output files are written even after SIGINT — a cancelled run's partial
  // stats are exactly what a user who interrupted a hung property wants.
  // AtomicWriteFile stages to `<path>.tmp` + rename, so a reader (or a
  // second interrupt mid-write) never sees a truncated file.
  int exit_code = undecided > 0 ? 2 : 0;
  if (load_failures) exit_code = 1;
  if (interrupted) exit_code = 130;  // 128 + SIGINT

  if (!cli.trace_path.empty()) {
    Status written = AtomicWriteFile(cli.trace_path,
                                     tracer->ToChromeTraceJson());
    if (!written.ok()) {
      std::fprintf(stderr, "wave_verify: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s (%zu events)\n",
                 cli.trace_path.c_str(), tracer->events().size());
  }

  if (!cli.stats_path.empty()) {
    // Armed fault tallies ride in the stats JSON (fault.hits.* /
    // fault.injected.*), so harnesses can assert a site actually fired.
    fault::ExportMetrics(&metrics);
    obs::Json doc = obs::Json::Object();
    doc.Set("spec", obs::Json::Str(cli.spec_path));
    doc.Set("app", obs::Json::Str(parsed.spec->name));
    doc.Set("interrupted", obs::Json::Bool(interrupted));
    if (batch.has_value()) doc.Set("batch", batch->merged.ToJson());
    doc.Set("runs", std::move(runs));
    doc.Set("metrics", metrics.ToJson());
    Status written = AtomicWriteFile(cli.stats_path, doc.Dump(2) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "wave_verify: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "stats written to %s\n", cli.stats_path.c_str());
  }

  return exit_code;
}

}  // namespace
}  // namespace wave

int main(int argc, char** argv) { return wave::Main(argc, argv); }
