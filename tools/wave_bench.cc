// wave_bench — the suite-registry bench runner and regression gate
// (ISSUE 6). Runs one registered suite (e1..e4, or "verify" = all four)
// with warmup + min-of-N timing, writes schema-versioned JSON-lines
// records, and optionally gates against a committed baseline:
//
//   wave_bench --suite e1                       # run, write BENCH_e1.json
//   wave_bench --suite verify --out BENCH_verify.json
//   wave_bench --suite e1 --compare bench/baselines/BENCH_verify.json
//   wave_bench --suite e1 --compare ... --slowdown=2   # must exit 3
//
// Exit codes: 0 ok; 1 usage / I/O error; 2 verdict mismatch vs the
// bundle's expected verdicts; 3 regression vs the baseline.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wave_bench_lib.h"
#include "obs/json.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: wave_bench --suite NAME [options]\n"
      "       wave_bench --list\n"
      "\n"
      "options:\n"
      "  --suite NAME           suite to run (--list shows the registry)\n"
      "  --warmup N             discarded runs per property (default 1)\n"
      "  --repeat N             timed runs per property (default 3)\n"
      "  --jobs N               engine worker count (default 1)\n"
      "  --timeout SECONDS      per-property budget (default 120)\n"
      "  --out PATH             JSON-lines output (default BENCH_<suite>.json)\n"
      "  --compare BASELINE     gate this run against a baseline file\n"
      "  --threshold-time F     relative time regression bound (default 0.75)\n"
      "  --threshold-counter F  relative counter drift bound (default 0: exact)\n"
      "  --min-time-ms F        noise floor for time gating (default 5)\n"
      "  --slowdown F           multiply measured times by F (gate self-test)\n"
      "  --quiet                suppress the per-property table\n");
}

bool ParseValue(int argc, char** argv, int* i, const char* flag,
                std::string* out) {
  size_t flag_len = std::strlen(flag);
  const char* arg = argv[*i];
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (std::strcmp(arg, flag) == 0) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "wave_bench: %s needs a value\n", flag);
      std::exit(1);
    }
    *out = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite;
  std::string out_path;
  std::string compare_path;
  wave::bench::BenchConfig config;
  wave::bench::CompareThresholds thresholds;
  bool quiet = false;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseValue(argc, argv, &i, "--suite", &value)) {
      suite = value;
    } else if (ParseValue(argc, argv, &i, "--warmup", &value)) {
      config.warmup = std::atoi(value.c_str());
    } else if (ParseValue(argc, argv, &i, "--repeat", &value)) {
      config.repeat = std::atoi(value.c_str());
    } else if (ParseValue(argc, argv, &i, "--jobs", &value)) {
      config.jobs = std::atoi(value.c_str());
    } else if (ParseValue(argc, argv, &i, "--timeout", &value)) {
      config.timeout_seconds = std::atof(value.c_str());
    } else if (ParseValue(argc, argv, &i, "--out", &value)) {
      out_path = value;
    } else if (ParseValue(argc, argv, &i, "--compare", &value)) {
      compare_path = value;
    } else if (ParseValue(argc, argv, &i, "--threshold-time", &value)) {
      thresholds.time_frac = std::atof(value.c_str());
    } else if (ParseValue(argc, argv, &i, "--threshold-counter", &value)) {
      thresholds.counter_frac = std::atof(value.c_str());
    } else if (ParseValue(argc, argv, &i, "--min-time-ms", &value)) {
      thresholds.min_time_s = std::atof(value.c_str()) / 1000.0;
    } else if (ParseValue(argc, argv, &i, "--slowdown", &value)) {
      config.slowdown = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "wave_bench: unknown flag '%s'\n", argv[i]);
      PrintUsage();
      return 1;
    }
  }

  if (list) {
    for (const std::string& name : wave::bench::BenchSuiteNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (suite.empty()) {
    PrintUsage();
    return 1;
  }
  if (config.warmup < 0 || config.repeat < 1 || config.slowdown <= 0) {
    std::fprintf(stderr, "wave_bench: invalid --warmup/--repeat/--slowdown\n");
    return 1;
  }

  std::vector<wave::obs::Json> records;
  std::string error;
  int mismatches = wave::bench::RunBenchSuite(suite, config, &records, &error,
                                              /*verbose=*/!quiet);
  if (mismatches < 0) {
    std::fprintf(stderr, "wave_bench: %s\n", error.c_str());
    return 1;
  }

  if (out_path.empty()) {
    out_path = "BENCH_" + wave::bench::SanitizeBenchName(suite) + ".json";
  }
  {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "wave_bench: cannot write %s\n", out_path.c_str());
      return 1;
    }
    for (const wave::obs::Json& r : records) out << r.Dump() << "\n";
  }
  if (!quiet) {
    std::printf("wrote %zu record(s) -> %s\n", records.size(),
                out_path.c_str());
  }

  int exit_code = 0;
  if (mismatches > 0) {
    std::fprintf(stderr, "wave_bench: %d verdict mismatch(es)\n", mismatches);
    exit_code = 2;
  }

  if (!compare_path.empty()) {
    std::vector<wave::obs::Json> baseline;
    if (!wave::bench::LoadJsonLines(compare_path, &baseline, &error)) {
      std::fprintf(stderr, "wave_bench: %s\n", error.c_str());
      return 1;
    }
    wave::bench::CompareResult cmp =
        wave::bench::CompareRecords(baseline, records, thresholds);
    std::printf("%s", cmp.Summary().c_str());
    if (!cmp.ok() && exit_code == 0) exit_code = 3;
  }
  return exit_code;
}
