// Shared helpers for the experiment harnesses.
#ifndef WAVE_BENCH_BENCH_UTIL_H_
#define WAVE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <fstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "obs/json.h"
#include "verifier/verifier.h"

namespace wave::bench {

// --- JSON-lines perf records (ISSUE 1) ---------------------------------------
// Every bench binary can persist its measurements machine-readably next to
// its text output: one `BENCH_<name>.json` file per binary, one JSON object
// per line. This is the perf-trajectory format future PRs diff against.

/// Version stamped on every emitted record (ISSUE 6). History:
///   1 — implicit (PR 1 records carried no version field);
///   2 — `schema_version` on every record; wave_bench suite records add
///       min/median-of-N timing, counters and env/git-sha capture.
inline constexpr int kBenchSchemaVersion = 2;

/// `"e1 table"` → `"e1_table"` (safe file-name component).
inline std::string SanitizeBenchName(const std::string& name) {
  std::string out;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Builds the canonical timing record: {"name": ..., "params": ...,
/// "n", "median_s", "p90_s", "min_s", "max_s", "counters": ...}.
/// `times_seconds` may hold a single sample (median == the sample).
inline obs::Json TimingRecord(const std::string& name, obs::Json params,
                              std::vector<double> times_seconds,
                              obs::Json counters) {
  std::sort(times_seconds.begin(), times_seconds.end());
  auto quantile = [&](double q) -> double {
    if (times_seconds.empty()) return 0;
    double pos = q * (times_seconds.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, times_seconds.size() - 1);
    double frac = pos - lo;
    return times_seconds[lo] * (1 - frac) + times_seconds[hi] * frac;
  };
  obs::Json record = obs::Json::Object();
  record.Set("schema_version", obs::Json::Int(kBenchSchemaVersion));
  record.Set("name", obs::Json::Str(name));
  record.Set("params", std::move(params));
  record.Set("n", obs::Json::Int(static_cast<int64_t>(times_seconds.size())));
  record.Set("median_s", obs::Json::Number(quantile(0.5)));
  record.Set("p90_s", obs::Json::Number(quantile(0.9)));
  record.Set("min_s",
             obs::Json::Number(times_seconds.empty() ? 0 : times_seconds.front()));
  record.Set("max_s",
             obs::Json::Number(times_seconds.empty() ? 0 : times_seconds.back()));
  record.Set("counters", std::move(counters));
  return record;
}

/// Appends compact JSON records, one per line, to `BENCH_<name>.json` in
/// the working directory (truncated per construction, i.e. per bench run).
class JsonLinesEmitter {
 public:
  explicit JsonLinesEmitter(const std::string& bench_name)
      : out_("BENCH_" + SanitizeBenchName(bench_name) + ".json",
             std::ios::trunc) {}

  void Emit(const obs::Json& record) {
    if (!out_) return;  // unwritable directory: benches still print text
    out_ << record.Dump() << "\n";
    out_.flush();
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
};


/// All bench harness verification goes through the unified VerifyRequest
/// API; `jobs` selects the worker count of the parallel search engine.
inline VerifyResult RunProperty(Verifier& verifier, const Property& property,
                                VerifyOptions options = {}, int jobs = 1) {
  VerifyRequest request;
  request.property = &property;
  request.options = std::move(options);
  request.jobs = jobs;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  if (!response.ok()) {
    std::fprintf(stderr, "bench: %s: %s\n", property.name.c_str(),
                 response.status().ToString().c_str());
    std::abort();
  }
  return std::move(static_cast<VerifyResult&>(*response));
}

/// Verifies every property of `bundle` and prints the paper's table
/// columns: property, type, verdict, time, max pseudorun length, max trie
/// size. Returns the number of verdict mismatches (0 expected).
inline int RunSuite(const char* title, AppBundle* bundle,
                    double timeout_seconds = 120, int jobs = 1) {
  std::printf("==== %s ====\n", title);
  std::printf("spec: %s\n\n", bundle->spec->StatsString().c_str());
  std::printf("%-5s %-5s %-18s %9s %12s %10s %8s\n", "prop", "type",
              "verdict (expected)", "time[s]", "max run len", "trie max",
              "buchi");
  Verifier verifier(bundle->spec.get());
  JsonLinesEmitter emitter(title);
  int mismatches = 0;
  double min_time = 1e9, max_time = 0;
  int min_len = 1 << 30, max_len = 0, min_trie = 1 << 30, max_trie = 0;
  for (const ParsedProperty& p : bundle->properties) {
    VerifyOptions options;
    options.timeout_seconds = timeout_seconds;
    VerifyResult r = RunProperty(verifier, p.property, options, jobs);
    bool ok = r.verdict != Verdict::kUnknown &&
              (r.verdict == Verdict::kHolds) == p.expected;
    if (!ok) ++mismatches;
    std::string verdict =
        std::string(r.verdict == Verdict::kHolds      ? "true"
                    : r.verdict == Verdict::kViolated ? "false"
                                                      : "unknown") +
        " (" + (p.expected ? "true" : "false") + ")" + (ok ? "" : "  !!");
    std::printf("%-5s %-5s %-18s %9.3f %12d %10d %8d\n",
                p.property.name.c_str(), p.property.type_code.c_str(),
                verdict.c_str(), r.stats.seconds,
                r.stats.max_pseudorun_length, r.stats.max_trie_size,
                r.stats.buchi_states);
    min_time = std::min(min_time, r.stats.seconds);
    max_time = std::max(max_time, r.stats.seconds);
    min_len = std::min(min_len, r.stats.max_pseudorun_length);
    max_len = std::max(max_len, r.stats.max_pseudorun_length);
    min_trie = std::min(min_trie, r.stats.max_trie_size);
    max_trie = std::max(max_trie, r.stats.max_trie_size);

    obs::Json params = obs::Json::Object();
    params.Set("suite", obs::Json::Str(title));
    params.Set("type", obs::Json::Str(p.property.type_code));
    params.Set("verdict", obs::Json::Str(r.verdict == Verdict::kHolds
                                             ? "holds"
                                             : r.verdict == Verdict::kViolated
                                                   ? "violated"
                                                   : "unknown"));
    emitter.Emit(TimingRecord(p.property.name, std::move(params),
                              {r.stats.seconds}, r.stats.ToJson()));
  }
  std::printf(
      "\nsummary: %zu properties; times %.3f-%.3f s; pseudorun lengths "
      "%d-%d; trie sizes %d-%d\n\n",
      bundle->properties.size(), min_time, max_time, min_len, max_len,
      min_trie, max_trie);
  return mismatches;
}

}  // namespace wave::bench

#endif  // WAVE_BENCH_BENCH_UTIL_H_
