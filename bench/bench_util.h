// Shared helpers for the experiment harnesses.
#ifndef WAVE_BENCH_BENCH_UTIL_H_
#define WAVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "apps/apps.h"
#include "verifier/verifier.h"

namespace wave::bench {

/// Verifies every property of `bundle` and prints the paper's table
/// columns: property, type, verdict, time, max pseudorun length, max trie
/// size. Returns the number of verdict mismatches (0 expected).
inline int RunSuite(const char* title, AppBundle* bundle,
                    double timeout_seconds = 120) {
  std::printf("==== %s ====\n", title);
  std::printf("spec: %s\n\n", bundle->spec->StatsString().c_str());
  std::printf("%-5s %-5s %-18s %9s %12s %10s %8s\n", "prop", "type",
              "verdict (expected)", "time[s]", "max run len", "trie max",
              "buchi");
  Verifier verifier(bundle->spec.get());
  int mismatches = 0;
  double min_time = 1e9, max_time = 0;
  int min_len = 1 << 30, max_len = 0, min_trie = 1 << 30, max_trie = 0;
  for (const ParsedProperty& p : bundle->properties) {
    VerifyOptions options;
    options.timeout_seconds = timeout_seconds;
    VerifyResult r = verifier.Verify(p.property, options);
    bool ok = r.verdict != Verdict::kUnknown &&
              (r.verdict == Verdict::kHolds) == p.expected;
    if (!ok) ++mismatches;
    std::string verdict =
        std::string(r.verdict == Verdict::kHolds      ? "true"
                    : r.verdict == Verdict::kViolated ? "false"
                                                      : "unknown") +
        " (" + (p.expected ? "true" : "false") + ")" + (ok ? "" : "  !!");
    std::printf("%-5s %-5s %-18s %9.3f %12d %10d %8d\n",
                p.property.name.c_str(), p.property.type_code.c_str(),
                verdict.c_str(), r.stats.seconds,
                r.stats.max_pseudorun_length, r.stats.max_trie_size,
                r.stats.buchi_states);
    min_time = std::min(min_time, r.stats.seconds);
    max_time = std::max(max_time, r.stats.seconds);
    min_len = std::min(min_len, r.stats.max_pseudorun_length);
    max_len = std::max(max_len, r.stats.max_pseudorun_length);
    min_trie = std::min(min_trie, r.stats.max_trie_size);
    max_trie = std::max(max_trie, r.stats.max_trie_size);
  }
  std::printf(
      "\nsummary: %zu properties; times %.3f-%.3f s; pseudorun lengths "
      "%d-%d; trie sizes %d-%d\n\n",
      bundle->properties.size(), min_time, max_time, min_len, max_len,
      min_trie, max_trie);
  return mismatches;
}

}  // namespace wave::bench

#endif  // WAVE_BENCH_BENCH_UTIL_H_
