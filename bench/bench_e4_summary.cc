// Experiment: "Verification results for E4" (Section 5) — the bookstore
// application ("the results obtained were similar, omitted due to space
// limitations" — reported in full here).
#include "bench/bench_util.h"

int main() {
  wave::AppBundle e4 = wave::BuildE4();
  return wave::bench::RunSuite("E4: online bookstore (Section 5)", &e4);
}
