#include "bench/wave_bench_lib.h"

#include <sys/utsname.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "verifier/verifier.h"

namespace wave::bench {
namespace {

struct SuiteEntry {
  const char* name;
  AppBundle (*build)();
};

// The registry: every entry is one of the paper's Section 5 workloads.
// "verify" (the committed-baseline suite) is the union of all of them.
constexpr SuiteEntry kSuites[] = {
    {"e1", &BuildE1},
    {"e2", &BuildE2},
    {"e3", &BuildE3},
    {"e4", &BuildE4},
};

const char* VerdictString(Verdict v) {
  switch (v) {
    case Verdict::kHolds:
      return "holds";
    case Verdict::kViolated:
      return "violated";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

/// `git rev-parse HEAD` of the working directory; "" when not a repo
/// (bench results are still valid, just unpinned).
std::string GitSha() {
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buf[128];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  // A sha is 40 hex chars; anything else (error text) is noise.
  if (out.size() != 40) return "";
  return out;
}

/// Only the deterministic search counters go into the compared
/// `counters` block: per the PR-3 determinism contract these are
/// run-to-run stable at jobs=1 (the bench default), so the gate can
/// require exact equality. Times, trie hit rates and telemetry live in
/// the full `--stats-json` payload, not here.
obs::Json DeterministicCounters(const VerifyStats& stats) {
  obs::Json counters = obs::Json::Object();
  counters.Set("num_assignments", obs::Json::Int(stats.num_assignments));
  counters.Set("num_cores", obs::Json::Int(stats.num_cores));
  counters.Set("num_expansions", obs::Json::Int(stats.num_expansions));
  counters.Set("num_successors", obs::Json::Int(stats.num_successors));
  counters.Set("buchi_states", obs::Json::Int(stats.buchi_states));
  counters.Set("max_trie_size", obs::Json::Int(stats.max_trie_size));
  counters.Set("max_pseudorun_length",
               obs::Json::Int(stats.max_pseudorun_length));
  return counters;
}

/// One sub-suite (one AppBundle) of a run; returns verdict mismatches.
int RunOneBundle(const char* suite_name, AppBundle bundle,
                 const BenchConfig& config, const obs::Json& env,
                 std::vector<obs::Json>* records, bool verbose) {
  Verifier verifier(bundle.spec.get());
  int mismatches = 0;
  for (const ParsedProperty& p : bundle.properties) {
    VerifyOptions options;
    options.timeout_seconds = config.timeout_seconds;
    // Warmup runs prime the session's pre-pass memoization so the timed
    // runs measure the steady state, like any repeated `Run` call would.
    for (int i = 0; i < config.warmup; ++i) {
      RunProperty(verifier, p.property, options, config.jobs);
    }
    std::vector<double> times;
    VerifyResult last;
    for (int i = 0; i < config.repeat; ++i) {
      Stopwatch watch;
      last = RunProperty(verifier, p.property, options, config.jobs);
      times.push_back(watch.ElapsedSeconds() * config.slowdown);
    }
    bool expected_ok = last.verdict != Verdict::kUnknown &&
                       (last.verdict == Verdict::kHolds) == p.expected;
    if (!expected_ok) ++mismatches;

    obs::Json params = obs::Json::Object();
    params.Set("jobs", obs::Json::Int(config.jobs));
    obs::Json record =
        TimingRecord(std::string(suite_name) + "/" + p.property.name,
                     std::move(params), times,
                     DeterministicCounters(last.stats));
    record.Set("suite", obs::Json::Str(suite_name));
    record.Set("warmup", obs::Json::Int(config.warmup));
    record.Set("verdict", obs::Json::Str(VerdictString(last.verdict)));
    record.Set("expected_ok", obs::Json::Bool(expected_ok));
    record.Set("env", env);
    if (verbose) {
      std::printf("%-10s %-8s min %8.3fs  median %8.3fs  (n=%zu)%s\n",
                  record.Find("name")->AsString().c_str(),
                  VerdictString(last.verdict),
                  record.Find("min_s")->AsDouble(),
                  record.Find("median_s")->AsDouble(), times.size(),
                  expected_ok ? "" : "  !! verdict mismatch");
    }
    records->push_back(std::move(record));
  }
  return mismatches;
}

double NumberOr(const obs::Json* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

}  // namespace

std::vector<std::string> BenchSuiteNames() {
  std::vector<std::string> names;
  for (const SuiteEntry& s : kSuites) names.push_back(s.name);
  names.push_back("verify");
  return names;
}

bool IsBenchSuite(const std::string& name) {
  if (name == "verify") return true;
  for (const SuiteEntry& s : kSuites) {
    if (name == s.name) return true;
  }
  return false;
}

obs::Json BenchEnvJson() {
  obs::Json env = obs::Json::Object();
  env.Set("git_sha", obs::Json::Str(GitSha()));
  struct utsname uts = {};
  if (::uname(&uts) == 0) {
    env.Set("host", obs::Json::Str(uts.nodename));
    env.Set("os", obs::Json::Str(std::string(uts.sysname) + " " +
                                 uts.release + " " + uts.machine));
  }
  env.Set("cpus",
          obs::Json::Int(static_cast<int64_t>(
              std::thread::hardware_concurrency())));
#if defined(__clang__)
  env.Set("compiler", obs::Json::Str("clang " __clang_version__));
#elif defined(__GNUC__)
  env.Set("compiler", obs::Json::Str("gcc " __VERSION__));
#else
  env.Set("compiler", obs::Json::Str("unknown"));
#endif
#ifdef NDEBUG
  env.Set("build", obs::Json::Str("release"));
#else
  env.Set("build", obs::Json::Str("debug"));
#endif
  return env;
}

int RunBenchSuite(const std::string& suite, const BenchConfig& config,
                  std::vector<obs::Json>* records, std::string* error,
                  bool verbose) {
  if (!IsBenchSuite(suite)) {
    if (error != nullptr) {
      std::string known;
      for (const std::string& n : BenchSuiteNames()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      *error = "unknown suite '" + suite + "' (known: " + known + ")";
    }
    return -1;
  }
  obs::Json env = BenchEnvJson();
  int mismatches = 0;
  for (const SuiteEntry& s : kSuites) {
    if (suite != "verify" && suite != s.name) continue;
    mismatches +=
        RunOneBundle(s.name, s.build(), config, env, records, verbose);
  }
  return mismatches;
}

bool LoadJsonLines(const std::string& path, std::vector<obs::Json>* records,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate blank lines and trailing whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string parse_error;
    std::optional<obs::Json> record = obs::Json::Parse(line, &parse_error);
    if (!record.has_value()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": " + parse_error;
      }
      return false;
    }
    records->push_back(std::move(*record));
  }
  return true;
}

std::string CompareResult::Summary() const {
  std::ostringstream out;
  out << "compared " << compared_records << " record(s); "
      << regressions.size() << " regression(s)";
  if (!missing.empty()) {
    out << "; " << missing.size() << " baseline record(s) missing from run";
  }
  out << "\n";
  for (const std::string& r : regressions) out << "  REGRESSION " << r << "\n";
  for (const std::string& m : missing) out << "  missing: " << m << "\n";
  return out.str();
}

CompareResult CompareRecords(const std::vector<obs::Json>& baseline,
                             const std::vector<obs::Json>& current,
                             const CompareThresholds& thresholds) {
  CompareResult result;

  // Index the run by record name; note which suites it actually ran so
  // a single-suite run can gate against the all-suite baseline.
  std::map<std::string, const obs::Json*> by_name;
  std::set<std::string> current_suites;
  for (const obs::Json& r : current) {
    const obs::Json* name = r.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    by_name[name->AsString()] = &r;
    const obs::Json* suite = r.Find("suite");
    if (suite != nullptr && suite->is_string()) {
      current_suites.insert(suite->AsString());
    }
  }

  auto add_delta = [&](const std::string& name, const std::string& metric,
                       double base, double cur, bool regressed,
                       std::string detail) {
    MetricDelta d;
    d.name = name;
    d.metric = metric;
    d.baseline = base;
    d.current = cur;
    d.regressed = regressed;
    d.detail = std::move(detail);
    if (regressed) {
      result.regressions.push_back(name + " " + metric + ": " + d.detail);
    }
    result.deltas.push_back(std::move(d));
  };

  for (const obs::Json& base : baseline) {
    const obs::Json* name_field = base.Find("name");
    if (name_field == nullptr || !name_field->is_string()) continue;
    const std::string& name = name_field->AsString();
    const obs::Json* suite = base.Find("suite");
    if (suite != nullptr && suite->is_string() &&
        current_suites.find(suite->AsString()) == current_suites.end()) {
      continue;  // suite not run this time — not comparable, not missing
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      result.missing.push_back(name);
      continue;
    }
    const obs::Json& cur = *it->second;
    ++result.compared_records;

    // Verdict flips are always regressions, no threshold.
    const obs::Json* base_verdict = base.Find("verdict");
    const obs::Json* cur_verdict = cur.Find("verdict");
    if (base_verdict != nullptr && cur_verdict != nullptr &&
        base_verdict->is_string() && cur_verdict->is_string() &&
        base_verdict->AsString() != cur_verdict->AsString()) {
      add_delta(name, "verdict", 0, 0, true,
                base_verdict->AsString() + " -> " + cur_verdict->AsString());
    }

    // Wall time: relative, gated only above the noise floor.
    for (const char* metric : {"min_s", "median_s"}) {
      double base_t = NumberOr(base.Find(metric), -1);
      double cur_t = NumberOr(cur.Find(metric), -1);
      if (base_t < 0 || cur_t < 0) continue;
      if (base_t < thresholds.min_time_s) {
        add_delta(name, metric, base_t, cur_t, false,
                  "below noise floor, not gated");
        continue;
      }
      double limit = base_t * (1.0 + thresholds.time_frac);
      bool regressed = cur_t > limit;
      char detail[128];
      std::snprintf(detail, sizeof(detail),
                    "%.3fs -> %.3fs (%+.0f%%, limit %+.0f%%)", base_t, cur_t,
                    (cur_t / base_t - 1.0) * 100.0,
                    thresholds.time_frac * 100.0);
      add_delta(name, metric, base_t, cur_t, regressed, detail);
    }

    // Counters: exact (or within counter_frac when relaxed).
    const obs::Json* base_counters = base.Find("counters");
    const obs::Json* cur_counters = cur.Find("counters");
    if (base_counters != nullptr && base_counters->is_object() &&
        cur_counters != nullptr && cur_counters->is_object()) {
      for (const auto& member : base_counters->members()) {
        if (!member.second.is_number()) continue;
        const obs::Json* cur_v = cur_counters->Find(member.first);
        if (cur_v == nullptr || !cur_v->is_number()) continue;
        double base_c = member.second.AsDouble();
        double cur_c = cur_v->AsDouble();
        double slack = thresholds.counter_frac * std::fabs(base_c);
        bool regressed = std::fabs(cur_c - base_c) > slack;
        char detail[128];
        std::snprintf(detail, sizeof(detail), "%.0f -> %.0f%s", base_c,
                      cur_c, thresholds.counter_frac == 0
                                 ? " (exact match required)"
                                 : "");
        add_delta(name, std::string("counters.") + member.first, base_c,
                  cur_c, regressed, detail);
      }
    }
  }
  return result;
}

}  // namespace wave::bench
