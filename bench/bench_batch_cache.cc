// Experiment: batch verification and persistent result caching (PR 4).
//
// Three regimes per bundled application, all at jobs=1 so the deltas
// isolate the session/cache machinery rather than parallel speedup:
//
//   * sequential  — one Verifier, N independent Run calls: each call
//     pays its own property plan + assignment prepass (the spec prepass
//     is still session-cached inside the Verifier).
//   * batch_cold  — one RunBatch over the same N properties: the spec
//     prepass runs once, plans and GPVW skeletons dedupe across
//     properties, and all searches share one fused shard stream.
//   * cache_warm  — RunBatch against a persistent ResultCache populated
//     by a prior cold batch: every verdict is served from disk, so the
//     wall time bounds the fingerprint + lookup overhead.
//
// Every regime asserts verdict identity against the sequential baseline
// before recording. BENCH_batch.json carries one row per (app, regime)
// with {properties, cache_hits, prepass_reuses} in the counters, so the
// cold-vs-warm trajectory stays diffable across machines.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "bench_util.h"
#include "verifier/cache.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

struct App {
  const char* label;
  AppBundle (*build)();
};

std::vector<Property> CatalogOf(const AppBundle& bundle) {
  std::vector<Property> catalog;
  for (const ParsedProperty& p : bundle.properties) {
    catalog.push_back(p.property);
  }
  return catalog;
}

// Each bundle's symbol table accumulates minted witnesses, so every
// timed run gets a freshly built bundle: regime comparisons then start
// from identical state.
BatchResponse RunBatchOrDie(const App& app, ResultCache* cache) {
  AppBundle bundle = app.build();
  std::vector<Property> catalog = CatalogOf(bundle);
  Verifier verifier(bundle.spec.get());
  BatchRequest request;
  request.properties = &catalog;
  request.options.timeout_seconds = 300;
  request.jobs = 1;
  request.cache = cache;
  StatusOr<BatchResponse> batch = verifier.RunBatch(request);
  if (!batch.ok()) {
    std::fprintf(stderr, "bench: %s: %s\n", app.label,
                 batch.status().ToString().c_str());
    std::abort();
  }
  return *std::move(batch);
}

}  // namespace

int main() {
  std::printf("batch verification + persistent result cache (jobs=1)\n\n");
  std::printf("%-4s %12s %12s %12s %10s %10s\n", "app", "seq[s]", "cold[s]",
              "warm[s]", "hits", "reuses");

  bench::JsonLinesEmitter emitter("batch");
  const std::vector<App> apps = {
      {"e1", BuildE1}, {"e2", BuildE2}, {"e3", BuildE3}, {"e4", BuildE4}};
  const int kSamples = 3;
  int failures = 0;

  for (const App& app : apps) {
    // Sequential baseline: one timed pass, verdicts kept for the
    // equivalence check below.
    std::vector<Verdict> baseline;
    double sequential_s = 0;
    {
      AppBundle bundle = app.build();
      std::vector<Property> catalog = CatalogOf(bundle);
      Verifier verifier(bundle.spec.get());
      for (const Property& p : catalog) {
        VerifyOptions options;
        options.timeout_seconds = 300;
        VerifyResult r = bench::RunProperty(verifier, p, options, 1);
        baseline.push_back(r.verdict);
        sequential_s += r.stats.seconds;
      }
    }

    auto check = [&](const char* regime, const BatchResponse& batch) {
      for (size_t i = 0; i < baseline.size(); ++i) {
        if (batch.responses[i].verdict != baseline[i]) {
          std::fprintf(stderr, "FAIL %s/%s: verdict drift at property %zu\n",
                       app.label, regime, i);
          ++failures;
        }
      }
    };

    std::vector<double> cold_times, warm_times;
    BatchResponse cold, warm;
    std::filesystem::path cache_dir =
        std::filesystem::temp_directory_path() /
        ("wave_bench_batch_cache_" + std::string(app.label));
    for (int i = 0; i < kSamples; ++i) {
      // Cold batch: no cache, prepass amortization only.
      cold = RunBatchOrDie(app, nullptr);
      cold_times.push_back(cold.merged.seconds);

      // Warm batch: populate a fresh cache dir, then time the all-hit
      // pass. The populate run is not timed (it matches cold modulo
      // store I/O).
      std::filesystem::remove_all(cache_dir);
      StatusOr<std::unique_ptr<ResultCache>> cache =
          ResultCache::Open(cache_dir.string());
      if (!cache.ok()) {
        std::fprintf(stderr, "bench: %s: %s\n", app.label,
                     cache.status().ToString().c_str());
        return 1;
      }
      RunBatchOrDie(app, cache->get());
      warm = RunBatchOrDie(app, cache->get());
      warm_times.push_back(warm.merged.seconds);
    }
    std::filesystem::remove_all(cache_dir);
    check("batch_cold", cold);
    check("cache_warm", warm);

    std::sort(cold_times.begin(), cold_times.end());
    std::sort(warm_times.begin(), warm_times.end());
    std::printf("%-4s %12.3f %12.3f %12.3f %10lld %10lld\n", app.label,
                sequential_s, cold_times[cold_times.size() / 2],
                warm_times[warm_times.size() / 2],
                static_cast<long long>(warm.merged.cache_hits),
                static_cast<long long>(cold.merged.prepass_reuses));

    auto emit = [&](const char* regime, std::vector<double> times,
                    const BatchResponse& batch) {
      obs::Json params = obs::Json::Object();
      params.Set("app", obs::Json::Str(app.label));
      params.Set("regime", obs::Json::Str(regime));
      params.Set("jobs", obs::Json::Int(1));
      params.Set("properties",
                 obs::Json::Int(static_cast<int64_t>(baseline.size())));
      emitter.Emit(bench::TimingRecord(std::string(app.label) + "_" + regime,
                                       std::move(params), std::move(times),
                                       batch.merged.ToJson()));
    };
    obs::Json seq_params = obs::Json::Object();
    seq_params.Set("app", obs::Json::Str(app.label));
    seq_params.Set("regime", obs::Json::Str("sequential"));
    seq_params.Set("jobs", obs::Json::Int(1));
    seq_params.Set("properties",
                   obs::Json::Int(static_cast<int64_t>(baseline.size())));
    emitter.Emit(bench::TimingRecord(std::string(app.label) + "_sequential",
                                     std::move(seq_params), {sequential_s},
                                     obs::Json::Object()));
    emit("batch_cold", std::move(cold_times), cold);
    emit("cache_warm", std::move(warm_times), warm);
  }

  std::printf(
      "\nexpectation: cold <= sequential (the shared prepass saving is "
      "bounded by prepare+dataflow time, so search-dominated apps show "
      "parity), warm << cold (hits skip search entirely)\n");
  return failures == 0 ? 0 : 1;
}
