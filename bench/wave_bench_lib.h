// The wave_bench regression-gating harness (ISSUE 6).
//
// A suite registry over the paper's E1–E4 workloads (apps/apps.h): each
// suite verifies every property of one bundle with `--warmup` discarded
// runs followed by `--repeat` timed runs, and emits one schema-versioned
// JSON-lines record per property (min/median/max-of-N wall time, the
// deterministic search counters, the verdict, and an env/git-sha capture
// block). `CompareRecords` diffs a fresh run against a committed baseline
// file (bench/baselines/BENCH_verify.json) under configurable
// thresholds:
//
//   * times compare relatively (`time_frac`), but only for records whose
//     baseline min time clears `min_time_s` — sub-floor records are
//     noise-dominated on small hosts and compare counters only;
//   * counters (expansions, cores, successors, trie/automaton sizes) are
//     deterministic per the PR-3 contract and compare exactly by
//     default (`counter_frac` relaxes them);
//   * a verdict change is always a regression.
//
// The library is test-facing on purpose: tests/bench_gate_test.cc drives
// RunBenchSuite + CompareRecords hermetically (self-baseline must pass,
// a synthetic `slowdown` of 2 must trip the gate) — the same code path
// `tools/wave_bench --compare` and `scripts/check.sh --bench` run.
#ifndef WAVE_BENCH_WAVE_BENCH_LIB_H_
#define WAVE_BENCH_WAVE_BENCH_LIB_H_

#include <string>
#include <vector>

#include "obs/json.h"

namespace wave::bench {

/// Knobs of one suite run.
struct BenchConfig {
  int warmup = 1;       // discarded runs per property
  int repeat = 3;       // timed runs per property (min/median over these)
  int jobs = 1;         // worker count handed to the engine
  double timeout_seconds = 120;
  /// Synthetic multiplier applied to every *measured* time before it is
  /// recorded — the regression-gate self-test hook (`--slowdown=2` must
  /// make `--compare` against a fresh baseline exit non-zero). 1 = off.
  double slowdown = 1.0;
};

/// Registered suite names: "e1".."e4" plus "verify" (all four — the
/// committed bench/baselines/BENCH_verify.json baseline).
std::vector<std::string> BenchSuiteNames();
bool IsBenchSuite(const std::string& name);

/// Host/build capture stamped on every record: git sha (when the working
/// directory is a repo), hostname/OS, hardware thread count, compiler.
obs::Json BenchEnvJson();

/// Runs one registered suite. Appends one record per property to
/// `records`:
///   {"schema_version": 2, "suite": "e1", "name": "e1/P1",
///    "n": R, "warmup": W, "jobs": J,
///    "min_s": ..., "median_s": ..., "max_s": ...,
///    "verdict": "holds", "expected_ok": true,
///    "counters": {...deterministic search counters...},
///    "env": {...BenchEnvJson()...}}
/// Returns the number of verdict mismatches vs the bundle's expected
/// verdicts (0 on a healthy tree), or -1 for an unknown suite name
/// (`error` explains).
int RunBenchSuite(const std::string& suite, const BenchConfig& config,
                  std::vector<obs::Json>* records, std::string* error,
                  bool verbose = false);

/// Reads a JSON-lines file (one record per line, blank lines ignored).
/// False on I/O or parse failure (`error` explains, with line number).
bool LoadJsonLines(const std::string& path, std::vector<obs::Json>* records,
                   std::string* error);

/// Regression thresholds of `CompareRecords`.
struct CompareThresholds {
  /// Relative wall-time regression bound: current min_s (and median_s)
  /// may grow to baseline * (1 + time_frac) before gating.
  double time_frac = 0.75;
  /// Relative counter drift bound; 0 (default) = counters must match
  /// exactly. Values differing by more than baseline * counter_frac
  /// (with an absolute slack of 0 — integers compare directly) regress.
  double counter_frac = 0.0;
  /// Absolute floor below which baseline times are considered
  /// noise-dominated and not compared (counters still are).
  double min_time_s = 0.005;
};

/// One compared metric of one record pair.
struct MetricDelta {
  std::string name;    // record name, e.g. "e1/P4"
  std::string metric;  // "min_s", "median_s", "counters.num_expansions", ...
  double baseline = 0;
  double current = 0;
  bool regressed = false;
  std::string detail;  // human form, e.g. "+123% (limit +75%)"
};

/// Outcome of one baseline/current diff.
struct CompareResult {
  std::vector<MetricDelta> deltas;       // every compared metric
  std::vector<std::string> regressions;  // human lines, one per regression
  /// Baseline records (of suites present in `current`) with no current
  /// counterpart — renamed/dropped benchmarks. Reported, not gated.
  std::vector<std::string> missing;
  int compared_records = 0;

  bool ok() const { return regressions.empty(); }
  /// Multi-line human summary (always non-empty).
  std::string Summary() const;
};

/// Diffs `current` against `baseline`. Records pair by their "name"
/// field; baseline records whose suite was not run are ignored (so a
/// single-suite run can gate against the all-suite committed baseline).
CompareResult CompareRecords(const std::vector<obs::Json>& baseline,
                             const std::vector<obs::Json>& current,
                             const CompareThresholds& thresholds);

}  // namespace wave::bench

#endif  // WAVE_BENCH_WAVE_BENCH_LIB_H_
