// Experiment: the paper's main table (Section 5, "Verification results for
// E1") — all 17 properties P1..P17 of the computer shopping application,
// reporting verdict, verification time, maximum pseudorun length and
// maximum trie size.
//
// Paper reference values (Pentium 4 2.4GHz, JDK 1.4.2): times 0.02-4 s,
// max run lengths 1-15, trie sizes 0-268; 8 properties true, 9 false.
#include "bench/bench_util.h"

int main() {
  wave::AppBundle e1 = wave::BuildE1();
  return wave::bench::RunSuite("E1: online computer shopping (paper Table, "
                               "Section 5)",
                               &e1);
}
