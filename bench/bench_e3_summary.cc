// Experiment: "Verification results for E3" (Section 5) — 14 properties on
// the airline reservation site.
//
// Paper reference: times 0.68-4 s (13 of 14); max pseudorun lengths 12-51;
// trie sizes 32-302.
#include "bench/bench_util.h"

int main() {
  wave::AppBundle e3 = wave::BuildE3();
  return wave::bench::RunSuite("E3: airline reservation site (Section 5)",
                               &e3);
}
