// Experiment: "Verification results for E2" (Section 5) — 13 properties on
// the Motorcycle Grand Prix browsing site.
//
// Paper reference: times 20 ms - 1 s; max pseudorun lengths 12-68; trie
// sizes 35-102.
#include "bench/bench_util.h"

int main() {
  wave::AppBundle e2 = wave::BuildE2();
  return wave::bench::RunSuite("E2: Motorcycle Grand Prix site (Section 5)",
                               &e2);
}
