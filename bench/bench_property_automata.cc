// Experiment: property-automaton sizes (Section 5 discusses P4, chosen
// "because of its size (12 G and 12 X operators), to study the impact of
// the size of the property automaton (30 states) on the running time").
// Prints the Büchi automaton size for the negation of every property of
// every application, before and after simplification.
#include <cstdio>

#include "apps/apps.h"
#include "buchi/gpvw.h"
#include "ltl/abstraction.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

void Report(const char* app_name, AppBundle* bundle) {
  std::printf("---- %s ----\n", app_name);
  std::printf("%-6s %6s %10s %12s %12s\n", "prop", "comps", "raw states",
              "simplified", "transitions");
  for (const ParsedProperty& p : bundle->properties) {
    LtlPtr negated = LtlFormula::Not(p.property.body);
    Abstraction raw_abs = AbstractLtl(negated, bundle->spec->symbols());
    GpvwOptions raw;
    raw.simplify = false;
    BuchiAutomaton tableau =
        LtlToBuchi(&raw_abs.arena, raw_abs.root,
                   static_cast<int>(raw_abs.components.size()), raw);
    Abstraction abs = AbstractLtl(negated, bundle->spec->symbols());
    BuchiAutomaton simplified =
        LtlToBuchi(&abs.arena, abs.root,
                   static_cast<int>(abs.components.size()));
    std::printf("%-6s %6zu %10d %12d %12d\n", p.property.name.c_str(),
                abs.components.size(), tableau.NumStates(),
                simplified.NumStates(), simplified.NumTransitions());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  AppBundle e1 = BuildE1();
  AppBundle e2 = BuildE2();
  AppBundle e3 = BuildE3();
  AppBundle e4 = BuildE4();
  Report("E1 (paper: P4's automaton has 30 states)", &e1);
  Report("E2", &e2);
  Report("E3", &e3);
  Report("E4", &e4);
  return 0;
}
