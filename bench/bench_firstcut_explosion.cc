// Experiment: "Failure of Classical Tools — SPIN" (Section 5). The paper
// modeled the first-cut algorithm (explicitly enumerate every database
// over the fixed domain, then search genuine runs) in Promela and watched
// SPIN time out "even for the simplest properties". This harness runs our
// implementation of that first-cut algorithm head-to-head with WAVE:
//   * on the full E1 application it cannot even start (the database space
//     is doubly exponential);
//   * on a micro application it finishes but degrades brutally as the
//     domain grows, while WAVE's pseudorun search is flat.
#include <cstdio>

#include "apps/apps.h"
#include "baseline/firstcut.h"
#include "bench_util.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

constexpr char kMicro[] = R"(
app micro
database reg(x)
state flag()
state seen(x)
input pick(x)
input button(b)
home A
page A {
  input button
  input pick
  rule button(b) <- b = "go" | b = "stay"
  rule pick(x) <- reg(x)
  state +seen(x) <- pick(x) & button("go")
  state +flag() <- exists x: pick(x) & button("go")
  target B <- (exists x: pick(x)) & button("go")
}
page B {
  input button
  rule button(b) <- b = "back"
  state -flag() <- button("back")
  target A <- button("back")
}
property reach type T9 expect true { F [at A] }
)";

}  // namespace

int main() {
  // --- E1 with the first-cut algorithm: dead on arrival ---------------------
  {
    AppBundle e1 = BuildE1();
    FirstCutVerifier baseline(e1.spec.get());
    FirstCutOptions options;
    options.extra_domain_values = 1;
    options.timeout_seconds = 10;
    FirstCutResult r = baseline.Verify(e1.properties[0].property, options);
    std::printf("E1 + P1 (simplest property), first-cut/SPIN-style:\n");
    std::printf("  verdict: %s\n  %s\n",
                r.verdict == Verdict::kUnknown ? "UNKNOWN (gave up)" : "?",
                r.stats.db_tuple_candidates > 0 && !r.failure_reason.empty()
                    ? r.failure_reason.c_str()
                    : "");
    std::printf("  (paper: \"explosion lead to a timeout of the experiment "
                "even for the simplest properties\")\n\n");

    Verifier wave_verifier(e1.spec.get());
    VerifyResult w = bench::RunProperty(wave_verifier, e1.properties[0].property);
    std::printf("E1 + P1, WAVE (pseudoruns + heuristics): %s in %.3f s, "
                "%lld pseudoconfigurations\n\n",
                w.holds() ? "true" : "false", w.stats.seconds,
                static_cast<long long>(w.stats.num_expansions));
  }

  // --- scaling on the micro app ------------------------------------------------
  std::printf("micro application, property 'reach', growing fresh-domain "
              "size:\n");
  std::printf("%-8s %12s %14s %14s %12s\n", "domain", "databases",
              "firstcut[s]", "expansions", "wave[s]");
  for (int extra = 1; extra <= 5; ++extra) {
    ParseResult parsed = ParseSpec(kMicro);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.ErrorText().c_str());
      return 1;
    }
    FirstCutVerifier baseline(parsed.spec.get());
    FirstCutOptions options;
    options.extra_domain_values = extra;
    options.timeout_seconds = 60;
    FirstCutResult r =
        baseline.Verify(parsed.properties[0].property, options);

    Verifier wave_verifier(parsed.spec.get());
    VerifyResult w = bench::RunProperty(wave_verifier, parsed.properties[0].property);

    std::printf("%-8d %12lld %14.3f %14lld %12.3f%s\n",
                r.stats.domain_size,
                static_cast<long long>(r.stats.num_databases),
                r.stats.seconds,
                static_cast<long long>(r.stats.num_expansions),
                w.stats.seconds,
                r.verdict == Verdict::kUnknown ? "   (firstcut timed out)"
                                               : "");
  }
  std::printf("\n(The first-cut explores 2^|dom| representative databases "
              "times all runs on each; WAVE's pseudorun\n search is "
              "independent of the domain size — the paper's central "
              "claim.)\n");
  return 0;
}
