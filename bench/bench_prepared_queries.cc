// Ablation: the prepared-statement optimization of Section 4. The paper
// translates each rule to a parameterized SQL statement once and re-binds
// parameters per step, "avoiding to repeatedly incur the overhead of
// sending a query to the database server and having it parsed, optimized
// and compiled to a query plan". Our analogue: PreparedFormula::Prepare
// once + evaluate many, versus re-preparing on every evaluation.
#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "fo/prepared.h"
#include "parser/parser.h"
#include "spec/runtime.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

struct Fixture {
  Fixture() : bundle(BuildE1()) {
    std::vector<std::string> errors;
    // The LSP option rule body — a three-way join on criteria.
    formula = ParseFormula(
        "criteria(\"laptop\", \"ram\", r) & criteria(\"laptop\", \"hdd\", h) "
        "& criteria(\"laptop\", \"display\", d)",
        bundle.spec.get(), &errors);
    config.page = 0;
    config.data = Instance(&bundle.spec->catalog());
    config.previous = Instance(&bundle.spec->catalog());
    // Toy-sized tables — the paper: "each individual configuration
    // typically corresponds to tables with very few tuples", which is why
    // re-preparation overhead dominates.
    SymbolTable& symbols = bundle.spec->symbols();
    SymbolId laptop = symbols.Intern("laptop");
    for (const char* attr : {"ram", "hdd", "display"}) {
      config.data.relation("criteria")
          .Insert({laptop, symbols.Intern(attr),
                   symbols.Intern(std::string(attr) + "0")});
    }
    domain = config.data.ActiveDomain();
  }

  AppBundle bundle;
  FormulaPtr formula;
  Configuration config;
  std::vector<SymbolId> domain;
};

void BM_PreparedOnceEvalMany(benchmark::State& state) {
  Fixture fixture;
  PreparedFormula prepared = PreparedFormula::Prepare(
      fixture.formula, fixture.bundle.spec->catalog(), {"r", "h", "d"});
  ConfigurationAdapter view(&fixture.config);
  for (auto _ : state) {
    std::vector<Tuple> out;
    prepared.EnumerateSatisfying(view, fixture.domain, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PreparedOnceEvalMany);

void BM_ReprepareEveryEval(benchmark::State& state) {
  Fixture fixture;
  ConfigurationAdapter view(&fixture.config);
  for (auto _ : state) {
    PreparedFormula prepared = PreparedFormula::Prepare(
        fixture.formula, fixture.bundle.spec->catalog(), {"r", "h", "d"});
    std::vector<Tuple> out;
    prepared.EnumerateSatisfying(view, fixture.domain, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReprepareEveryEval);

}  // namespace

BENCHMARK_MAIN();
