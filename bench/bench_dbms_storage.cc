// Experiment: the DBMS microbenchmark of Section 4 ("Picking the right
// DBMS") — the average time to insert and delete a database core, on the
// schema of 4 tables with arities 2, 3, 5 and 7, comparing the main-memory
// table store against a disk-persistent one.
//
// Paper reference: ~500 microseconds (HSQLDB, main memory) versus ~50
// milliseconds (Oracle, disk) — two orders of magnitude.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "relational/schema.h"
#include "relational/table_store.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

Catalog MakeCatalog() {
  // The paper's microbenchmark schema: arities 2, 3, 5 and 7 (E1's
  // database schema).
  Catalog catalog;
  catalog.Declare({"t2", 2, RelationKind::kDatabase, {}});
  catalog.Declare({"t3", 3, RelationKind::kDatabase, {}});
  catalog.Declare({"t5", 5, RelationKind::kDatabase, {}});
  catalog.Declare({"t7", 7, RelationKind::kDatabase, {}});
  return catalog;
}

/// Builds the i-th core: up to 6 tuples per table, as in the paper's
/// "all subsets of 6 tuples for each table" (sampled by the benchmark
/// iteration index rather than exhausted — 2^24 cores do not fit a
/// benchmark run).
std::vector<std::pair<RelationId, Tuple>> MakeCore(const Catalog& catalog,
                                                   uint64_t seed) {
  std::vector<std::pair<RelationId, Tuple>> core;
  for (RelationId id = 0; id < catalog.size(); ++id) {
    int arity = catalog.schema(id).arity;
    for (int t = 0; t < 6; ++t) {
      if (((seed >> (id * 6 + t)) & 1) == 0) continue;
      Tuple tuple(arity);
      for (int a = 0; a < arity; ++a) {
        tuple[a] = static_cast<SymbolId>(t * 31 + a);
      }
      core.emplace_back(id, tuple);
    }
  }
  return core;
}

void InsertAndDeleteCore(TableStore* store,
                         const std::vector<std::pair<RelationId, Tuple>>& core) {
  for (const auto& [relation, tuple] : core) store->Insert(relation, tuple);
  for (const auto& [relation, tuple] : core) store->Delete(relation, tuple);
}

void BM_MainMemoryStore(benchmark::State& state) {
  Catalog catalog = MakeCatalog();
  MemoryTableStore store(&catalog);
  uint64_t seed = 1;
  for (auto _ : state) {
    InsertAndDeleteCore(&store, MakeCore(catalog, seed++));
  }
  state.SetLabel("paper: ~500us (HSQLDB)");
}
BENCHMARK(BM_MainMemoryStore);

void BM_DiskPersistentStore(benchmark::State& state) {
  Catalog catalog = MakeCatalog();
  std::string log = "/tmp/wave_bench_store.log";
  DurableTableStore store(&catalog, log, /*sync_every_op=*/true);
  uint64_t seed = 1;
  for (auto _ : state) {
    InsertAndDeleteCore(&store, MakeCore(catalog, seed++));
  }
  state.SetLabel("paper: ~50ms (Oracle, disk)");
  std::remove(log.c_str());
}
BENCHMARK(BM_DiskPersistentStore);

}  // namespace

BENCHMARK_MAIN();
