// Experiment: Figure 1 of the paper — the Büchi automaton for
// phi_aux = P1 U P2 (the propositional abstraction of the negated
// pay-before-confirm property of Example 3.1).
//
// Expected shape: two states — a start state with a P1 self-loop and a P2
// edge into an accepting state carrying a `true` self-loop.
#include <cstdio>
#include <string>

#include "buchi/gpvw.h"
#include "buchi/prop_ltl.h"

int main() {
  wave::PropArena arena;
  wave::PropId f = arena.U(arena.Prop(0), arena.Prop(1));
  auto name = [](int p) { return "P" + std::to_string(p + 1); };

  std::printf("formula: %s\n", arena.ToString(f, name).c_str());

  wave::GpvwOptions raw;
  raw.simplify = false;
  wave::BuchiAutomaton tableau = wave::LtlToBuchi(&arena, f, 2, raw);
  std::printf("raw GPVW tableau: %d states, %d transitions\n",
              tableau.NumStates(), tableau.NumTransitions());

  wave::BuchiAutomaton automaton = wave::LtlToBuchi(&arena, f, 2);
  std::printf("simplified automaton: %d states, %d transitions\n",
              automaton.NumStates(), automaton.NumTransitions());
  std::printf("(paper Figure 1: 2 states)\n\n%s",
              automaton.ToDot(name).c_str());

  bool matches_figure = automaton.NumStates() == 2;
  std::printf("\nshape matches Figure 1: %s\n",
              matches_figure ? "yes" : "NO");
  return matches_figure ? 0 : 1;
}
