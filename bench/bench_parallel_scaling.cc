// Experiment: parallel core-sharded search scaling (PR 3).
//
// Measures wall-clock speedup of the work-stealing (assignment, core)
// shard engine as --jobs grows, on two contrasting workloads:
//
//   * e1_p7_exhaustive — E1's P7 under exhaustive equality-pattern
//     enumeration: 30 independent assignments, the shape the shard
//     queue was built for. This is the scaling headline: on a machine
//     with >= 4 hardware threads, jobs=4 is expected to finish >= 2x
//     faster than jobs=1.
//   * e1_p4 — a single-shard property (1 assignment x 1 core): nothing
//     to parallelize, so its numbers bound the engine's overhead (pool
//     spawn + prepared-spec copies) rather than its speedup.
//
// Every run asserts verdict identity against the jobs=1 baseline (the
// determinism contract of docs/PARALLELISM.md) before recording. The
// emitted BENCH_parallel.json carries {jobs, median_s, speedup_vs_j1,
// hardware_threads} per row, so perf trajectories across machines stay
// interpretable: on a single-core container every speedup is ~1x by
// construction, and the record says so.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "bench_util.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

struct Workload {
  const char* label;
  const char* property;
  bool exhaustive;
};

const Property* FindProperty(const AppBundle& bundle, const char* name) {
  for (const ParsedProperty& p : bundle.properties) {
    if (p.property.name == name) return &p.property;
  }
  return nullptr;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("parallel shard-engine scaling (hardware threads: %u)\n\n", hw);

  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  bench::JsonLinesEmitter emitter("parallel");

  const std::vector<Workload> workloads = {
      {"e1_p7_exhaustive", "P7", true},
      {"e1_p4", "P4", false},
  };
  const std::vector<int> job_counts = {1, 2, 4, 8};
  const int kSamples = 3;

  int failures = 0;
  for (const Workload& w : workloads) {
    const Property* property = FindProperty(e1, w.property);
    if (property == nullptr) {
      std::fprintf(stderr, "no property %s in E1\n", w.property);
      return 1;
    }
    std::printf("== %s\n", w.label);
    std::printf("%-6s %10s %10s %12s %10s\n", "jobs", "median[s]", "min[s]",
                "expansions", "speedup");

    Verdict baseline_verdict = Verdict::kUnknown;
    double baseline_median = 0;
    for (int jobs : job_counts) {
      std::vector<double> times;
      VerifyResult last;
      for (int i = 0; i < kSamples; ++i) {
        VerifyOptions options;
        options.timeout_seconds = 300;
        options.exhaustive_existential = w.exhaustive;
        last = bench::RunProperty(verifier, *property, options, jobs);
        times.push_back(last.stats.seconds);
      }
      if (jobs == 1) {
        baseline_verdict = last.verdict;
      } else if (last.verdict != baseline_verdict) {
        // The determinism contract: any verdict drift across job counts
        // is a bug, and a scaling number for a wrong answer is useless.
        std::fprintf(stderr, "FAIL %s: verdict at jobs=%d differs from jobs=1\n",
                     w.label, jobs);
        ++failures;
        continue;
      }

      std::vector<double> sorted = times;
      std::sort(sorted.begin(), sorted.end());
      double median = sorted[sorted.size() / 2];
      if (jobs == 1) baseline_median = median;
      double speedup = median > 0 ? baseline_median / median : 0;
      std::printf("%-6d %10.3f %10.3f %12lld %9.2fx\n", jobs, median,
                  sorted.front(),
                  static_cast<long long>(last.stats.num_expansions), speedup);

      obs::Json params = obs::Json::Object();
      params.Set("workload", obs::Json::Str(w.label));
      params.Set("jobs", obs::Json::Int(jobs));
      params.Set("hardware_threads", obs::Json::Int(hw));
      obs::Json counters = last.stats.ToJson();
      counters.Set("speedup_vs_j1", obs::Json::Number(speedup));
      emitter.Emit(bench::TimingRecord(w.label, std::move(params),
                                       std::move(times), std::move(counters)));
    }
    std::printf("\n");
  }

  if (hw >= 4) {
    std::printf("expectation on this host (%u threads): jobs=4 on the "
                "sharded workload should be >= 2x jobs=1\n", hw);
  } else {
    std::printf("note: only %u hardware thread(s) — speedup is bounded at "
                "~1x here; the record still tracks engine overhead\n", hw);
  }
  return failures == 0 ? 0 : 1;
}
