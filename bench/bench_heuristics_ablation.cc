// Experiment: Examples 3.4 / 3.5 / 3.7 — the impact of Heuristics 1 and 2
// on the number of database cores and extensions for the E1 application
// and the pay-before-confirm property (Property (1) / Example 3.1).
//
// Paper reference: without the heuristics, at least
// 2^(29^2 + 29^3 + 29^5 + 29^7) = 2^17,270,412,688 cores and about
// 2^29,046,208,721 extensions; with them, 8 cores and a single extension
// at page LSP.
#include <cmath>
#include <cstdio>

#include "analysis/candidates.h"
#include "analysis/dataflow.h"
#include "apps/apps.h"
#include "parser/parser.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

double CoreTupleCount(WebAppSpec* spec, PageDomains* domains,
                      const ComparisonAnalysis* analysis,
                      const std::vector<FormulaPtr>* components,
                      const std::set<SymbolId>& universe, bool heuristic1) {
  CandidateOptions options;
  options.heuristic1 = heuristic1;
  CandidateBuilder builder(spec, domains, analysis, components, universe,
                           options);
  return builder.CoreCandidates().approx_tuple_count;
}

}  // namespace

int main() {
  AppBundle e1 = BuildE1();
  WebAppSpec* spec = e1.spec.get();

  // Property (1) of Example 3.1, instantiated: the 7 universally
  // quantified variables become fresh constants in C∃.
  std::vector<std::string> errors;
  std::map<std::string, SymbolId> c_exists;
  for (const char* v : {"p", "c", "n", "r", "h", "d", "pr"}) {
    c_exists[v] = spec->symbols().MintFresh(std::string("free.") + v);
  }
  FormulaPtr lhs = ParseFormula(
      "at UPP & button(\"submit\") & cart(p, pr) & "
      "products(p, c, n, r, h, d, pr)",
      spec, &errors);
  FormulaPtr rhs =
      ParseFormula("conf(p, c, n, r, h, d, pr)", spec, &errors);
  if (lhs == nullptr || rhs == nullptr) {
    std::fprintf(stderr, "property parse failed\n");
    return 1;
  }
  std::vector<FormulaPtr> components = {lhs->SubstituteConstants(c_exists),
                                        rhs->SubstituteConstants(c_exists)};

  std::set<SymbolId> universe = spec->SpecConstants();
  for (const FormulaPtr& c : components) {
    std::set<SymbolId> cs = c->Constants();
    universe.insert(cs.begin(), cs.end());
  }
  std::printf("|C| = |CW ∪ C∃| = %zu constants "
              "(paper: 29 spec constants + 7 in C∃)\n\n",
              universe.size());

  ComparisonAnalysis analysis(*spec, components);
  PageDomains domains(spec);

  // --- cores (Example 3.4 vs 3.5) -------------------------------------------
  double with_h1 = CoreTupleCount(spec, &domains, &analysis, &components,
                                  universe, true);
  double without_h1 = CoreTupleCount(spec, &domains, &analysis, &components,
                                     universe, false);
  std::printf("cores:   #cores = 2^(candidate tuples)\n");
  std::printf("  Heuristic 1 OFF: %.0f candidate tuples -> 2^%.0f cores "
              "(paper: 2^17,270,412,688)\n",
              without_h1, without_h1);
  std::printf("  Heuristic 1 ON : %.0f candidate tuples -> %.0f cores "
              "(paper: 8)\n\n",
              with_h1, std::exp2(with_h1));

  // --- extensions at LSP (Example 3.7) ---------------------------------------
  int lsp = spec->PageIndex("LSP");
  int cp = spec->PageIndex("CP");
  for (bool heuristic2 : {false, true}) {
    CandidateOptions options;
    options.heuristic2 = heuristic2;
    CandidateBuilder builder(spec, &domains, &analysis, &components,
                             universe, options);
    const CandidateSet& ext = builder.ExtensionCandidates(lsp, cp);
    if (heuristic2) {
      std::printf("  Heuristic 2 ON : %.0f candidate tuples at page LSP -> "
                  "%.0f extensions (paper: 1)\n",
                  ext.approx_tuple_count,
                  std::exp2(ext.approx_tuple_count));
    } else {
      std::printf("extensions at page LSP:\n");
      std::printf("  Heuristic 2 OFF: %.3g candidate tuples -> 2^%.3g "
                  "extensions (paper: ~2^29,046,208,721 over all pages)\n",
                  ext.approx_tuple_count, ext.approx_tuple_count);
    }
  }
  std::printf(
      "\n(Our Heuristic 2 additionally keeps option-support witness tuples "
      "so pages whose options derive\n from database tuples stay reachable; "
      "see DESIGN.md. The count stays within a few tuples of the paper's.)\n");
  return 0;
}
