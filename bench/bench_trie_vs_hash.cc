// Ablation: the visited-configuration trie of Section 4 ("stored in a trie
// data structure which allows updates and membership tests in time linear
// in the size of the bitmap") against tree/hash set baselines, on the
// actual key distribution produced by an E1 verification run.
#include <benchmark/benchmark.h>

#include <set>
#include <unordered_set>

#include "apps/apps.h"
#include "verifier/encode.h"
#include "verifier/trie.h"

namespace {

using namespace wave;  // NOLINT: experiment harness

/// Visited keys harvested from synthetic configurations of the E1 catalog
/// (pages, inputs and small states varied like a real run does).
std::vector<std::vector<uint8_t>> MakeKeys() {
  AppBundle e1 = BuildE1();
  const Catalog& catalog = e1.spec->catalog();
  std::vector<std::vector<uint8_t>> keys;
  Configuration config;
  config.data = Instance(&catalog);
  config.previous = Instance(&catalog);
  RelationId button = catalog.Find("button");
  RelationId cart = catalog.Find("cart");
  for (int page = 0; page < e1.spec->num_pages(); ++page) {
    config.page = page;
    for (SymbolId b = 0; b < 12; ++b) {
      config.data.relation(button).Clear();
      config.data.relation(button).Insert({b});
      for (SymbolId c = 0; c < 6; ++c) {
        config.data.relation(cart).Clear();
        config.data.relation(cart).Insert({c, c + 1});
        for (int state = 0; state < 3; ++state) {
          for (int flag = 0; flag < 2; ++flag) {
            keys.push_back(EncodeVisitedKey(flag, state, config));
          }
        }
      }
    }
  }
  return keys;
}

const std::vector<std::vector<uint8_t>>& Keys() {
  static const auto& keys = *new std::vector<std::vector<uint8_t>>(MakeKeys());
  return keys;
}

void BM_VisitedTrie(benchmark::State& state) {
  const auto& keys = Keys();
  for (auto _ : state) {
    VisitedTrie trie;
    int hits = 0;
    for (const auto& key : keys) {
      if (!trie.Insert(key)) ++hits;
      if (trie.Contains(key)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(std::to_string(Keys().size()) + " keys");
}
BENCHMARK(BM_VisitedTrie);

void BM_StdSet(benchmark::State& state) {
  const auto& keys = Keys();
  for (auto _ : state) {
    std::set<std::vector<uint8_t>> visited;
    int hits = 0;
    for (const auto& key : keys) {
      if (!visited.insert(key).second) ++hits;
      if (visited.count(key) > 0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_StdSet);

struct ByteVectorHash {
  size_t operator()(const std::vector<uint8_t>& v) const {
    size_t h = 14695981039346656037ull;
    for (uint8_t b : v) h = (h ^ b) * 1099511628211ull;
    return h;
  }
};

void BM_StdUnorderedSet(benchmark::State& state) {
  const auto& keys = Keys();
  for (auto _ : state) {
    std::unordered_set<std::vector<uint8_t>, ByteVectorHash> visited;
    int hits = 0;
    for (const auto& key : keys) {
      if (!visited.insert(key).second) ++hits;
      if (visited.count(key) > 0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_StdUnorderedSet);

}  // namespace

BENCHMARK_MAIN();
