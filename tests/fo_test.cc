// FO module tests: AST utilities, NNF, input-boundedness, and the prepared
// evaluator — including a randomized differential test against a naive
// reference evaluator.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "fo/formula.h"
#include "fo/input_bounded.h"
#include "fo/nnf.h"
#include "fo/prepared.h"
#include "relational/instance.h"
#include "spec/runtime.h"

namespace wave {
namespace {

Term V(const std::string& name) { return Term::Var(name); }
Term C(SymbolId value) { return Term::Const(value); }

class FoTest : public ::testing::Test {
 protected:
  FoTest() {
    catalog_.Declare({"R", 2, RelationKind::kDatabase, {}});
    catalog_.Declare({"S", 1, RelationKind::kState, {}});
    catalog_.Declare({"I", 1, RelationKind::kInput, {}});
    catalog_.Declare({"A", 1, RelationKind::kAction, {}});
    config_.page = 0;
    config_.data = Instance(&catalog_);
    config_.previous = Instance(&catalog_);
  }

  bool Eval(const FormulaPtr& f) {
    PreparedFormula prepared = PreparedFormula::Prepare(
        f, catalog_, {}, [](const std::string&) { return 0; });
    ConfigurationAdapter view(&config_);
    std::vector<SymbolId> regs = prepared.MakeRegisters();
    return prepared.EvalClosed(view, domain_, &regs);
  }

  std::vector<Tuple> Satisfying(const FormulaPtr& f,
                                const std::vector<std::string>& free_order) {
    PreparedFormula prepared = PreparedFormula::Prepare(
        f, catalog_, free_order, [](const std::string&) { return 0; });
    ConfigurationAdapter view(&config_);
    std::vector<Tuple> out;
    prepared.EnumerateSatisfying(view, domain_, &out);
    std::sort(out.begin(), out.end());
    return out;
  }

  Catalog catalog_;
  Configuration config_;
  std::vector<SymbolId> domain_ = {0, 1, 2};
};

TEST_F(FoTest, FreeVariablesInFirstOccurrenceOrder) {
  FormulaPtr f = Formula::And(
      Formula::Atom("R", {V("y"), V("x")}),
      Formula::Exists({"z"}, Formula::Atom("I", {V("z")})));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"y", "x"}));
}

TEST_F(FoTest, QuantifierShadowingInFreeVariables) {
  // x is bound inside but free outside.
  FormulaPtr f = Formula::And(
      Formula::Exists({"x"}, Formula::Atom("I", {V("x")})),
      Formula::Atom("S", {V("x")}));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"x"}));
}

TEST_F(FoTest, SubstituteConstantsRespectsBinding) {
  FormulaPtr f = Formula::Exists(
      {"x"}, Formula::And(Formula::Atom("I", {V("x")}),
                          Formula::Atom("R", {V("x"), V("y")})));
  FormulaPtr g = f->SubstituteConstants({{"y", 7}, {"x", 9}});
  EXPECT_TRUE(g->FreeVariables().empty());
  // The bound x must not have been substituted.
  SymbolTable symbols;
  for (int i = 0; i < 10; ++i) symbols.Intern("c" + std::to_string(i));
  EXPECT_NE(g->ToString(symbols).find("x"), std::string::npos);
}

TEST_F(FoTest, NnfRemovesImplicationsAndPushesNegation) {
  FormulaPtr f = Formula::Not(Formula::Implies(
      Formula::Atom("S", {C(1)}), Formula::Atom("A", {C(2)})));
  FormulaPtr g = ToNNF(f);
  // !(a -> b) == a & !b
  EXPECT_EQ(g->kind(), Formula::Kind::kAnd);
  EXPECT_EQ(g->left()->kind(), Formula::Kind::kAtom);
  EXPECT_EQ(g->right()->kind(), Formula::Kind::kNot);
}

TEST_F(FoTest, NnfSwapsQuantifiers) {
  FormulaPtr f =
      Formula::Not(Formula::Forall({"x"}, Formula::Atom("I", {V("x")})));
  FormulaPtr g = ToNNF(f);
  EXPECT_EQ(g->kind(), Formula::Kind::kExists);
  EXPECT_EQ(g->body()->kind(), Formula::Kind::kNot);
}

TEST_F(FoTest, EvalGroundAtoms) {
  config_.data.relation("R").Insert({1, 2});
  EXPECT_TRUE(Eval(Formula::Atom("R", {C(1), C(2)})));
  EXPECT_FALSE(Eval(Formula::Atom("R", {C(2), C(1)})));
  EXPECT_TRUE(Eval(Formula::Not(Formula::Atom("R", {C(2), C(1)}))));
}

TEST_F(FoTest, EvalPreviousInput) {
  config_.previous.relation("I").Insert({1});
  EXPECT_TRUE(Eval(Formula::Atom("I", {C(1)}, /*previous=*/true)));
  EXPECT_FALSE(Eval(Formula::Atom("I", {C(1)}, /*previous=*/false)));
}

TEST_F(FoTest, EvalQuantifiers) {
  config_.data.relation("I").Insert({1});
  config_.data.relation("R").Insert({1, 2});
  // ∃x I(x) ∧ R(x, 2)
  FormulaPtr ex = Formula::Exists(
      {"x"}, Formula::And(Formula::Atom("I", {V("x")}),
                          Formula::Atom("R", {V("x"), C(2)})));
  EXPECT_TRUE(Eval(ex));
  // ∀x I(x) → R(x, 0): fails since R(1,0) absent.
  FormulaPtr fa = Formula::Forall(
      {"x"}, Formula::Implies(Formula::Atom("I", {V("x")}),
                              Formula::Atom("R", {V("x"), C(0)})));
  EXPECT_FALSE(Eval(fa));
  // ∀x I(x) → R(x, 2): holds (the only input is 1 and R(1,2) present).
  FormulaPtr fa2 = Formula::Forall(
      {"x"}, Formula::Implies(Formula::Atom("I", {V("x")}),
                              Formula::Atom("R", {V("x"), C(2)})));
  EXPECT_TRUE(fa2 != nullptr && Eval(fa2));
}

TEST_F(FoTest, EvalVacuousUniversal) {
  // Empty input: ∀x I(x) → false  holds vacuously.
  FormulaPtr fa = Formula::Forall(
      {"x"}, Formula::Implies(Formula::Atom("I", {V("x")}),
                              Formula::False()));
  EXPECT_TRUE(Eval(fa));
}

TEST_F(FoTest, SatisfyingAssignmentsFromAtoms) {
  config_.data.relation("R").Insert({0, 1});
  config_.data.relation("R").Insert({1, 2});
  std::vector<Tuple> out =
      Satisfying(Formula::Atom("R", {V("x"), V("y")}), {"x", "y"});
  EXPECT_EQ(out, (std::vector<Tuple>{{0, 1}, {1, 2}}));
}

TEST_F(FoTest, SatisfyingAssignmentsWithRepeatedVariable) {
  config_.data.relation("R").Insert({1, 1});
  config_.data.relation("R").Insert({1, 2});
  std::vector<Tuple> out =
      Satisfying(Formula::Atom("R", {V("x"), V("x")}), {"x"});
  EXPECT_EQ(out, (std::vector<Tuple>{{1}}));
}

TEST_F(FoTest, SatisfyingAssignmentsForNegation) {
  config_.data.relation("S").Insert({1});
  // !S(x): satisfied by domain values not in S.
  std::vector<Tuple> out =
      Satisfying(Formula::Not(Formula::Atom("S", {V("x")})), {"x"});
  EXPECT_EQ(out, (std::vector<Tuple>{{0}, {2}}));
}

TEST_F(FoTest, UnconstrainedFreeVariableRangesOverDomain) {
  config_.data.relation("S").Insert({1});
  // S(1) & (y unconstrained): every domain value for y.
  std::vector<Tuple> out =
      Satisfying(Formula::Atom("S", {C(1)}), {"y"});
  EXPECT_EQ(out, (std::vector<Tuple>{{0}, {1}, {2}}));
}

TEST_F(FoTest, DisjunctionDeduplicates) {
  config_.data.relation("S").Insert({1});
  config_.data.relation("I").Insert({1});
  std::vector<Tuple> out = Satisfying(
      Formula::Or(Formula::Atom("S", {V("x")}), Formula::Atom("I", {V("x")})),
      {"x"});
  EXPECT_EQ(out, (std::vector<Tuple>{{1}}));
}

TEST_F(FoTest, EqualityBindsBothDirections) {
  std::vector<Tuple> out = Satisfying(
      Formula::And(Formula::Equals(V("x"), C(2)),
                   Formula::Equals(V("y"), V("x"))),
      {"x", "y"});
  EXPECT_EQ(out, (std::vector<Tuple>{{2, 2}}));
}

// --- input-boundedness ---------------------------------------------------------

TEST_F(FoTest, InputBoundedAcceptsGuardedQuantifiers) {
  FormulaPtr ok = Formula::Exists(
      {"x"}, Formula::And(Formula::Atom("I", {V("x")}),
                          Formula::Atom("R", {V("x"), C(1)})));
  EXPECT_TRUE(
      CheckInputBounded(ok, catalog_, FormulaRole::kRule, "t").empty());
}

TEST_F(FoTest, InputBoundedRejectsUnguardedExistential) {
  FormulaPtr bad =
      Formula::Exists({"x"}, Formula::Atom("R", {V("x"), C(1)}));
  EXPECT_FALSE(
      CheckInputBounded(bad, catalog_, FormulaRole::kRule, "t").empty());
}

TEST_F(FoTest, InputBoundedRejectsQuantifiedVarInStateAtom) {
  FormulaPtr bad = Formula::Exists(
      {"x"}, Formula::And(Formula::Atom("I", {V("x")}),
                          Formula::Atom("S", {V("x")})));
  EXPECT_FALSE(
      CheckInputBounded(bad, catalog_, FormulaRole::kRule, "t").empty());
}

TEST_F(FoTest, InputBoundedUniversalNeedsImplicationGuard) {
  FormulaPtr ok = Formula::Forall(
      {"x"}, Formula::Implies(Formula::Atom("I", {V("x")}),
                              Formula::Atom("R", {V("x"), C(1)})));
  EXPECT_TRUE(
      CheckInputBounded(ok, catalog_, FormulaRole::kRule, "t").empty());
  FormulaPtr bad = Formula::Forall({"x"}, Formula::Atom("R", {V("x"), C(1)}));
  EXPECT_FALSE(
      CheckInputBounded(bad, catalog_, FormulaRole::kRule, "t").empty());
}

TEST_F(FoTest, InputBoundednessSurvivesNegation) {
  // ¬∃x(I(x) ∧ φ) is ∀x(I(x) → ¬φ): still input bounded.
  FormulaPtr f = Formula::Not(Formula::Exists(
      {"x"}, Formula::And(Formula::Atom("I", {V("x")}),
                          Formula::Atom("R", {V("x"), C(1)}))));
  EXPECT_TRUE(
      CheckInputBounded(f, catalog_, FormulaRole::kRule, "t").empty());
}

TEST_F(FoTest, OptionRulesAllowFreeExistentialsButNoUniversals) {
  FormulaPtr free_exists =
      Formula::Exists({"x"}, Formula::Atom("R", {V("x"), V("y")}));
  EXPECT_TRUE(CheckInputBounded(free_exists, catalog_,
                                FormulaRole::kInputOptionRule, "t")
                  .empty());
  FormulaPtr universal = Formula::Forall(
      {"x"}, Formula::Implies(Formula::Atom("I", {V("x")}),
                              Formula::Atom("R", {V("x"), C(1)})));
  EXPECT_FALSE(CheckInputBounded(universal, catalog_,
                                 FormulaRole::kInputOptionRule, "t")
                   .empty());
  FormulaPtr nonground_state = Formula::Atom("S", {V("y")});
  EXPECT_FALSE(CheckInputBounded(nonground_state, catalog_,
                                 FormulaRole::kInputOptionRule, "t")
                   .empty());
}

// --- randomized differential test vs a naive evaluator ------------------------

/// Reference semantics: direct recursion over valuations.
bool NaiveEval(const FormulaPtr& f, const ConfigurationView& view,
               const Catalog& catalog, const std::vector<SymbolId>& domain,
               std::map<std::string, SymbolId>* valuation) {
  auto term_value = [&](const Term& t) {
    return t.is_variable() ? valuation->at(t.variable) : t.constant;
  };
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kFalse:
      return false;
    case Formula::Kind::kPage:
      return view.current_page() == 0;
    case Formula::Kind::kAtom: {
      Tuple t(f->args().size());
      for (size_t i = 0; i < t.size(); ++i) t[i] = term_value(f->args()[i]);
      return view.Get(catalog.Find(f->relation()), f->previous()).Contains(t);
    }
    case Formula::Kind::kEquals:
      return term_value(f->args()[0]) == term_value(f->args()[1]);
    case Formula::Kind::kNot:
      return !NaiveEval(f->body(), view, catalog, domain, valuation);
    case Formula::Kind::kAnd:
      return NaiveEval(f->left(), view, catalog, domain, valuation) &&
             NaiveEval(f->right(), view, catalog, domain, valuation);
    case Formula::Kind::kOr:
      return NaiveEval(f->left(), view, catalog, domain, valuation) ||
             NaiveEval(f->right(), view, catalog, domain, valuation);
    case Formula::Kind::kImplies:
      return !NaiveEval(f->left(), view, catalog, domain, valuation) ||
             NaiveEval(f->right(), view, catalog, domain, valuation);
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      bool is_exists = f->kind() == Formula::Kind::kExists;
      // Enumerate all assignments of the quantified variables.
      std::vector<std::string> vars = f->vars();
      std::vector<size_t> idx(vars.size(), 0);
      std::map<std::string, SymbolId> saved = *valuation;
      while (true) {
        for (size_t i = 0; i < vars.size(); ++i) {
          (*valuation)[vars[i]] = domain[idx[i]];
        }
        bool v = NaiveEval(f->body(), view, catalog, domain, valuation);
        if (is_exists && v) {
          *valuation = saved;
          return true;
        }
        if (!is_exists && !v) {
          *valuation = saved;
          return false;
        }
        size_t i = 0;
        while (i < idx.size() && ++idx[i] == domain.size()) {
          idx[i] = 0;
          ++i;
        }
        if (i == idx.size()) break;
      }
      *valuation = saved;
      return !is_exists;
    }
  }
  return false;
}

FormulaPtr RandomTermFormula(std::mt19937* rng, int depth,
                             const std::vector<std::string>& vars) {
  auto term = [&]() {
    if ((*rng)() % 2 == 0) return Term::Var(vars[(*rng)() % vars.size()]);
    return Term::Const(static_cast<SymbolId>((*rng)() % 3));
  };
  std::uniform_int_distribution<int> dist(0, depth <= 0 ? 3 : 9);
  switch (dist(*rng)) {
    case 0:
      return Formula::Atom("R", {term(), term()});
    case 1:
      return Formula::Atom("S", {term()});
    case 2:
      return Formula::Atom("I", {term()}, /*previous=*/(*rng)() % 2 == 0);
    case 3:
      return Formula::Equals(term(), term());
    case 4:
      return Formula::Not(RandomTermFormula(rng, depth - 1, vars));
    case 5:
      return Formula::And(RandomTermFormula(rng, depth - 1, vars),
                          RandomTermFormula(rng, depth - 1, vars));
    case 6:
      return Formula::Or(RandomTermFormula(rng, depth - 1, vars),
                         RandomTermFormula(rng, depth - 1, vars));
    case 7:
      return Formula::Implies(RandomTermFormula(rng, depth - 1, vars),
                              RandomTermFormula(rng, depth - 1, vars));
    case 8: {
      std::string v = "q" + std::to_string((*rng)() % 2);
      std::vector<std::string> inner = vars;
      inner.push_back(v);
      return Formula::Exists({v}, RandomTermFormula(rng, depth - 1, inner));
    }
    default: {
      std::string v = "q" + std::to_string((*rng)() % 2);
      std::vector<std::string> inner = vars;
      inner.push_back(v);
      return Formula::Forall({v}, RandomTermFormula(rng, depth - 1, inner));
    }
  }
}

class PreparedDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PreparedDifferentialTest, MatchesNaiveEvaluator) {
  std::mt19937 rng(GetParam());
  Catalog catalog;
  catalog.Declare({"R", 2, RelationKind::kDatabase, {}});
  catalog.Declare({"S", 1, RelationKind::kState, {}});
  catalog.Declare({"I", 1, RelationKind::kInput, {}});
  std::vector<SymbolId> domain = {0, 1, 2};

  for (int trial = 0; trial < 20; ++trial) {
    // Random configuration.
    Configuration config;
    config.page = 0;
    config.data = Instance(&catalog);
    config.previous = Instance(&catalog);
    for (SymbolId a : domain) {
      for (SymbolId b : domain) {
        if (rng() % 3 == 0) config.data.relation("R").Insert({a, b});
      }
      if (rng() % 3 == 0) config.data.relation("S").Insert({a});
      if (rng() % 3 == 0) config.data.relation("I").Insert({a});
      if (rng() % 3 == 0) config.previous.relation("I").Insert({a});
    }
    ConfigurationAdapter view(&config);

    std::vector<std::string> free_vars = {"x", "y"};
    FormulaPtr f = RandomTermFormula(&rng, 3, free_vars);
    PreparedFormula prepared = PreparedFormula::Prepare(
        f, catalog, free_vars, [](const std::string&) { return 0; });

    // Compare EvalClosed for every free-variable assignment, and cross-
    // check EnumerateSatisfying against the positives.
    std::vector<Tuple> enumerated;
    prepared.EnumerateSatisfying(view, domain, &enumerated);
    std::set<Tuple> enumerated_set(enumerated.begin(), enumerated.end());
    EXPECT_EQ(enumerated.size(), enumerated_set.size()) << "duplicates";
    for (SymbolId x : domain) {
      for (SymbolId y : domain) {
        std::map<std::string, SymbolId> valuation = {{"x", x}, {"y", y}};
        bool expected = NaiveEval(f, view, catalog, domain, &valuation);
        std::vector<SymbolId> regs = prepared.MakeRegisters();
        regs[0] = x;
        regs[1] = y;
        bool actual = prepared.EvalClosed(view, domain, &regs);
        SymbolTable symbols;
        for (int i = 0; i < 3; ++i) symbols.Intern("c" + std::to_string(i));
        ASSERT_EQ(actual, expected)
            << "seed " << GetParam() << " trial " << trial << " x=" << x
            << " y=" << y << " formula " << f->ToString(symbols);
        ASSERT_EQ(enumerated_set.count({x, y}) > 0, expected)
            << "EnumerateSatisfying disagrees; formula "
            << f->ToString(symbols);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreparedDifferentialTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace wave
