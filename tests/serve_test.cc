// Daemon tests (ISSUE 9, ctest label `serve`): the in-process
// serve::Server driven over real loopback sockets.
//
// Covered here:
//   * protocol basics — ping, metrics, malformed lines (typed error
//     envelope, connection survives), unknown verbs;
//   * concurrent correctness — N client threads, every verdict matches
//     the E1 suite's expected annotations, ids echo back intact;
//   * warm-path observability — a repeat spec is served by the hot
//     session (stats.prepass_reuses > 0 on the wire);
//   * per-client fairness — a light client's request does not queue
//     behind a saturating client's flood (round-robin admission);
//   * graceful drain — in-flight requests finish, queued ones are
//     answered with a typed SHUTTING_DOWN, never silently dropped;
//   * the serve.* fault sites (fault::KnownSites) — each fires and
//     degrades the advertised way: refused/dropped connections and
//     typed error envelopes, with the daemon alive throughout.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "common/fault.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/json.h"
#include "parser/parser.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace wave {
namespace {

using serve::RequestEnvelope;
using serve::ResponseEnvelope;
using serve::Server;
using serve::ServerOptions;
using serve::Verb;

// --- a tiny blocking line-protocol client -----------------------------------

class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool SendLine(const std::string& line) {
    size_t sent = 0;
    while (sent < line.size()) {
      ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one newline-terminated frame; false on EOF/error. A torn
  /// frame (EOF mid-line) is reported as failure, which is exactly what
  /// the serve.write test asserts never leaks data.
  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// One request/response round trip.
  bool Call(const RequestEnvelope& envelope, ResponseEnvelope* out) {
    if (!SendLine(serve::FrameLine(serve::RequestEnvelopeToJson(envelope))))
      return false;
    std::string line;
    if (!ReadLine(&line)) return false;
    StatusOr<ResponseEnvelope> parsed = serve::ParseResponseLine(line);
    if (!parsed.ok()) return false;
    *out = std::move(*parsed);
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// --- fixtures ---------------------------------------------------------------

RequestEnvelope Ping(const std::string& id) {
  RequestEnvelope e;
  e.id = id;
  e.verb = Verb::kPing;
  return e;
}

RequestEnvelope VerifyOne(const std::string& id, const std::string& spec,
                          const std::string& property) {
  RequestEnvelope e;
  e.id = id;
  e.verb = Verb::kVerify;
  e.spec_text = spec;
  e.request = obs::Json::Object();
  e.request.Set("property", obs::Json::Str(property));
  return e;
}

/// The E1 property suite with its expected verdicts, parsed once.
struct Suite {
  std::string spec_text;
  std::vector<std::string> names;
  std::vector<bool> expected;  // true = holds
};

const Suite& E1Suite() {
  static const Suite* suite = [] {
    auto* s = new Suite;
    s->spec_text = E1SpecText();
    ParseResult parsed = ParseSpec(s->spec_text);
    WAVE_CHECK(parsed.ok());
    for (const ParsedProperty& p : parsed.properties) {
      WAVE_CHECK(p.has_expected);
      s->names.push_back(p.property.name);
      s->expected.push_back(p.expected);
    }
    return s;
  }();
  return *suite;
}

std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
  options.port = 0;  // ephemeral
  StatusOr<std::unique_ptr<Server>> server = Server::Start(options);
  WAVE_CHECK_MSG(server.ok(), server.status().ToString());
  return std::move(*server);
}

std::string VerdictOf(const ResponseEnvelope& response) {
  const obs::Json* v = response.response.Find("verdict");
  return v != nullptr && v->is_string() ? v->AsString() : "";
}

int64_t StatOf(const ResponseEnvelope& response, const char* key) {
  const obs::Json* stats = response.response.Find("stats");
  if (stats == nullptr) return -1;
  const obs::Json* v = stats->Find(key);
  return v != nullptr ? v->AsInt() : -1;
}

// --- protocol basics --------------------------------------------------------

TEST(ServeProtocolTest, PingPong) {
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));
  ResponseEnvelope response;
  ASSERT_TRUE(client.Call(Ping("p1"), &response));
  EXPECT_EQ(response.id, "p1");
  EXPECT_TRUE(response.ok);
  const obs::Json* pong = response.response.Find("pong");
  ASSERT_NE(pong, nullptr);
  EXPECT_TRUE(pong->AsBool());
}

TEST(ServeProtocolTest, MalformedLineGetsTypedErrorAndConnectionSurvives) {
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));

  ASSERT_TRUE(client.SendLine("this is not json\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  StatusOr<ResponseEnvelope> error = serve::ParseResponseLine(line);
  ASSERT_TRUE(error.ok());
  EXPECT_FALSE(error->ok);
  EXPECT_EQ(error->id, "");  // no id was recoverable
  EXPECT_EQ(error->status.code(), StatusCode::kInvalidArgument);

  // One bad frame must not poison the connection.
  ResponseEnvelope response;
  ASSERT_TRUE(client.Call(Ping("after"), &response));
  EXPECT_TRUE(response.ok);
}

TEST(ServeProtocolTest, VerifyWithoutSpecIsRejected) {
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));
  // Hand-built frame: a verify envelope with neither spec nor spec_path.
  ASSERT_TRUE(client.SendLine(
      "{\"schema_version\":1,\"id\":\"x\",\"verb\":\"verify\","
      "\"request\":{}}\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  StatusOr<ResponseEnvelope> response = serve::ParseResponseLine(line);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, NewerSchemaVersionIsRejected) {
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));
  ASSERT_TRUE(client.SendLine(
      "{\"schema_version\":99,\"id\":\"v99\",\"verb\":\"ping\"}\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  StatusOr<ResponseEnvelope> response = serve::ParseResponseLine(line);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, MetricsVerbDumpsTheRegistry) {
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));
  ResponseEnvelope pong;
  ASSERT_TRUE(client.Call(Ping("p"), &pong));

  ResponseEnvelope metrics;
  RequestEnvelope request;
  request.id = "m1";
  request.verb = Verb::kMetrics;
  ASSERT_TRUE(client.Call(request, &metrics));
  EXPECT_TRUE(metrics.ok);
  ASSERT_NE(metrics.response.Find("metrics"), nullptr);
  ASSERT_NE(metrics.response.Find("sessions"), nullptr);
  ASSERT_NE(metrics.response.Find("queue_depth"), nullptr);
}

// --- correctness under concurrency ------------------------------------------

TEST(ServeConcurrencyTest, ManyClientsGetCorrectVerdicts) {
  const Suite& suite = E1Suite();
  std::unique_ptr<Server> server = StartServer([] {
    ServerOptions o;
    o.executors = 4;
    return o;
  }());

  constexpr int kClients = 6;
  constexpr int kRequests = 8;
  std::vector<int> wrong(kClients, 0);
  std::vector<int> dropped(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client;
      if (!client.Connect(server->port())) {
        dropped[c] = kRequests;
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        size_t p = static_cast<size_t>(c + r) % suite.names.size();
        std::string id = "c" + std::to_string(c) + "-r" + std::to_string(r);
        ResponseEnvelope response;
        if (!client.Call(VerifyOne(id, suite.spec_text, suite.names[p]),
                         &response)) {
          ++dropped[c];
          continue;
        }
        std::string want = suite.expected[p] ? "holds" : "violated";
        if (response.id != id || !response.ok || VerdictOf(response) != want)
          ++wrong[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(wrong[c], 0) << "client " << c;
    EXPECT_EQ(dropped[c], 0) << "client " << c;
  }
}

TEST(ServeConcurrencyTest, RepeatSpecHitsTheHotSession) {
  const Suite& suite = E1Suite();
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));

  ResponseEnvelope first;
  ASSERT_TRUE(client.Call(VerifyOne("cold", suite.spec_text, suite.names[0]),
                          &first));
  ASSERT_TRUE(first.ok);

  ResponseEnvelope second;
  ASSERT_TRUE(client.Call(VerifyOne("warm", suite.spec_text, suite.names[0]),
                          &second));
  ASSERT_TRUE(second.ok);
  // The warm request reuses memoized pre-pass layers instead of
  // rebuilding them — the signal wave_load gates on.
  EXPECT_GT(StatOf(second, "prepass_reuses"), 0);
  EXPECT_EQ(server->sessions().stats().misses, 1);
  EXPECT_GE(server->sessions().stats().hits, 1);
}

TEST(ServeConcurrencyTest, BatchVerbVerifiesTheWholeCatalog) {
  const Suite& suite = E1Suite();
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));

  RequestEnvelope request;
  request.id = "b1";
  request.verb = Verb::kBatch;
  request.spec_text = suite.spec_text;
  request.request = obs::Json::Object();  // empty selector = whole catalog
  ResponseEnvelope response;
  ASSERT_TRUE(client.Call(request, &response));
  ASSERT_TRUE(response.ok) << response.status.ToString();

  const obs::Json* responses = response.response.Find("responses");
  ASSERT_NE(responses, nullptr);
  ASSERT_EQ(responses->size(), suite.names.size());
  for (size_t i = 0; i < suite.names.size(); ++i) {
    const obs::Json* v = responses->items()[i].Find("verdict");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->AsString(), suite.expected[i] ? "holds" : "violated")
        << suite.names[i];
  }
}

// --- fairness ---------------------------------------------------------------

// A light client's single request must not queue behind a saturating
// client's flood: admission is round-robin across connections, so with
// one executor the light job runs after at most one more heavy job, not
// after the whole flood.
TEST(ServeFairnessTest, LightClientDoesNotQueueBehindAFlood) {
  const Suite& suite = E1Suite();
  std::unique_ptr<Server> server = StartServer([] {
    ServerOptions o;
    o.executors = 1;  // force queueing so fairness is observable
    o.queue_capacity = 64;
    o.session_capacity = 4;
    return o;
  }());

  // Every heavy request carries a distinct spec text (a unique comment
  // line), so each one pays a full parse + pre-pass under a 10ms
  // injected delay — long enough for a deterministic queue.
  fault::Plan plan;
  fault::Rule rule;
  rule.site = "session.prepass.build";
  rule.kind = fault::Kind::kDelay;
  rule.delay_seconds = 0.01;
  rule.probability = 1;
  plan.rules.push_back(rule);
  fault::ScopedPlan armed(std::move(plan));

  // Pre-warm the light client's spec so its request skips the pre-pass
  // (and with it the injected delay).
  TestClient light;
  ASSERT_TRUE(light.Connect(server->port()));
  ResponseEnvelope warmup;
  ASSERT_TRUE(light.Call(VerifyOne("warmup", suite.spec_text, suite.names[0]),
                         &warmup));
  ASSERT_TRUE(warmup.ok);

  constexpr int kFlood = 12;
  TestClient heavy;
  ASSERT_TRUE(heavy.Connect(server->port()));
  Stopwatch heavy_clock;
  for (int i = 0; i < kFlood; ++i) {
    std::string spec = suite.spec_text + "\n# flood " + std::to_string(i);
    ASSERT_TRUE(heavy.SendLine(serve::FrameLine(serve::RequestEnvelopeToJson(
        VerifyOne("h" + std::to_string(i), spec, suite.names[0])))));
  }

  // Give the flood a head start so the queue is genuinely deep.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  Stopwatch light_clock;
  ResponseEnvelope light_response;
  ASSERT_TRUE(light.Call(VerifyOne("light", suite.spec_text, suite.names[0]),
                         &light_response));
  double light_seconds = light_clock.ElapsedSeconds();
  ASSERT_TRUE(light_response.ok);

  int heavy_ok = 0;
  for (int i = 0; i < kFlood; ++i) {
    std::string line;
    ASSERT_TRUE(heavy.ReadLine(&line));
    StatusOr<ResponseEnvelope> response = serve::ParseResponseLine(line);
    ASSERT_TRUE(response.ok());
    if (response->ok) ++heavy_ok;
  }
  double heavy_seconds = heavy_clock.ElapsedSeconds();
  EXPECT_EQ(heavy_ok, kFlood);

  // FIFO admission would park the light request behind ~9 queued heavy
  // jobs (>= 90ms); round-robin runs it after at most one job finishes.
  // The /3 margin absorbs scheduler noise without admitting FIFO.
  EXPECT_LT(light_seconds, heavy_seconds / 3)
      << "light=" << light_seconds << "s heavy_total=" << heavy_seconds
      << "s";
}

// --- graceful drain ---------------------------------------------------------

TEST(ServeDrainTest, InFlightFinishesQueuedGetsTypedShutdown) {
  const Suite& suite = E1Suite();
  std::unique_ptr<Server> server = StartServer([] {
    ServerOptions o;
    o.executors = 1;
    o.queue_capacity = 64;
    o.session_capacity = 4;
    return o;
  }());

  // 10ms pre-pass delay (unique spec per request) keeps the executor
  // busy long enough that Shutdown provably races a non-empty queue.
  fault::Plan plan;
  fault::Rule rule;
  rule.site = "session.prepass.build";
  rule.kind = fault::Kind::kDelay;
  rule.delay_seconds = 0.01;
  rule.probability = 1;
  plan.rules.push_back(rule);
  fault::ScopedPlan armed(std::move(plan));

  constexpr int kPipelined = 24;
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));
  for (int i = 0; i < kPipelined; ++i) {
    std::string spec = suite.spec_text + "\n# drain " + std::to_string(i);
    ASSERT_TRUE(client.SendLine(serve::FrameLine(serve::RequestEnvelopeToJson(
        VerifyOne("d" + std::to_string(i), spec, suite.names[0])))));
  }
  // Let the first request reach an executor, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->Shutdown();

  // Every request gets exactly one response: either a finished verdict
  // (in-flight work completes) or a typed SHUTTING_DOWN — never silence.
  int finished = 0;
  int shut_down = 0;
  std::string line;
  std::vector<bool> answered(kPipelined, false);
  while (client.ReadLine(&line)) {
    StatusOr<ResponseEnvelope> response = serve::ParseResponseLine(line);
    ASSERT_TRUE(response.ok()) << line;
    ASSERT_EQ(response->id[0], 'd');
    int index = std::stoi(response->id.substr(1));
    EXPECT_FALSE(answered[index]) << "duplicate response " << response->id;
    answered[index] = true;
    if (response->ok) {
      ++finished;
    } else {
      EXPECT_EQ(response->status.code(), StatusCode::kShuttingDown)
          << response->status.ToString();
      ++shut_down;
    }
  }
  EXPECT_EQ(finished + shut_down, kPipelined);
  EXPECT_GE(finished, 1) << "the in-flight request must finish";
  EXPECT_GE(shut_down, 1) << "the drain must catch a queued request";

  // Shutdown is idempotent.
  server->Shutdown();
}

TEST(ServeDrainTest, RequestShutdownIsObservable) {
  std::unique_ptr<Server> server = StartServer();
  EXPECT_FALSE(server->shutdown_requested());
  server->RequestShutdown();
  EXPECT_TRUE(server->shutdown_requested());
  server->Shutdown();
}

TEST(ServeDrainTest, QueueOverflowIsTypedResourceExhausted) {
  const Suite& suite = E1Suite();
  std::unique_ptr<Server> server = StartServer([] {
    ServerOptions o;
    o.executors = 1;
    o.queue_capacity = 2;
    o.session_capacity = 4;
    return o;
  }());

  fault::Plan plan;
  fault::Rule rule;
  rule.site = "session.prepass.build";
  rule.kind = fault::Kind::kDelay;
  rule.delay_seconds = 0.02;
  rule.probability = 1;
  plan.rules.push_back(rule);
  fault::ScopedPlan armed(std::move(plan));

  constexpr int kPipelined = 12;
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));
  for (int i = 0; i < kPipelined; ++i) {
    std::string spec = suite.spec_text + "\n# overflow " + std::to_string(i);
    ASSERT_TRUE(client.SendLine(serve::FrameLine(serve::RequestEnvelopeToJson(
        VerifyOne("q" + std::to_string(i), spec, suite.names[0])))));
  }

  int ok = 0;
  int exhausted = 0;
  for (int i = 0; i < kPipelined; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    StatusOr<ResponseEnvelope> response = serve::ParseResponseLine(line);
    ASSERT_TRUE(response.ok());
    if (response->ok) {
      ++ok;
    } else {
      EXPECT_EQ(response->status.code(), StatusCode::kResourceExhausted);
      ++exhausted;
    }
  }
  EXPECT_EQ(ok + exhausted, kPipelined);
  EXPECT_GE(exhausted, 1) << "a 2-deep queue must reject part of a 12-burst";
  EXPECT_GE(ok, 1);
}

// --- serve.* fault sites ----------------------------------------------------

fault::Plan OneShot(const std::string& site, fault::Kind kind) {
  fault::Plan plan;
  fault::Rule rule;
  rule.site = site;
  rule.kind = kind;
  rule.fail_nth = 1;
  plan.rules.push_back(rule);
  return plan;
}

TEST(ServeFaultTest, EnqueueFaultIsATypedErrorEnvelope) {
  const Suite& suite = E1Suite();
  std::unique_ptr<Server> server = StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server->port()));

  fault::ScopedPlan armed(OneShot("serve.enqueue", fault::Kind::kEio));
  ResponseEnvelope response;
  ASSERT_TRUE(client.Call(VerifyOne("f1", suite.spec_text, suite.names[0]),
                          &response));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status.message().find("fault-injected"),
            std::string::npos);

  // The fault consumed its one shot; the connection and daemon live on.
  ResponseEnvelope retry;
  ASSERT_TRUE(client.Call(VerifyOne("f2", suite.spec_text, suite.names[0]),
                          &retry));
  EXPECT_TRUE(retry.ok);
}

TEST(ServeFaultTest, ReadFaultDropsTheConnectionNotTheDaemon) {
  std::unique_ptr<Server> server = StartServer();
  TestClient doomed;
  ASSERT_TRUE(doomed.Connect(server->port()));

  fault::ScopedPlan armed(OneShot("serve.read", fault::Kind::kEio));
  // The read fault fires on the reader thread before any frame parses;
  // the client observes EOF, never a partial response.
  ASSERT_TRUE(doomed.SendLine(
      serve::FrameLine(serve::RequestEnvelopeToJson(Ping("doomed")))));
  std::string line;
  EXPECT_FALSE(doomed.ReadLine(&line));
  EXPECT_TRUE(line.empty());

  TestClient fresh;
  ASSERT_TRUE(fresh.Connect(server->port()));
  ResponseEnvelope response;
  ASSERT_TRUE(fresh.Call(Ping("alive"), &response));
  EXPECT_TRUE(response.ok);
}

TEST(ServeFaultTest, WriteFaultHangsUpNeverTearsAFrame) {
  std::unique_ptr<Server> server = StartServer();
  TestClient doomed;
  ASSERT_TRUE(doomed.Connect(server->port()));

  fault::ScopedPlan armed(
      OneShot("serve.write", fault::Kind::kShortWrite));
  ASSERT_TRUE(doomed.SendLine(
      serve::FrameLine(serve::RequestEnvelopeToJson(Ping("torn?")))));
  // The server detects the injected short write BEFORE sending anything,
  // so the client sees a clean EOF — a hang-up, not a torn frame.
  std::string line;
  EXPECT_FALSE(doomed.ReadLine(&line));
  EXPECT_TRUE(line.empty());

  TestClient fresh;
  ASSERT_TRUE(fresh.Connect(server->port()));
  ResponseEnvelope response;
  ASSERT_TRUE(fresh.Call(Ping("alive"), &response));
  EXPECT_TRUE(response.ok);
}

TEST(ServeFaultTest, AcceptFaultRefusesOneConnectionDaemonLives) {
  std::unique_ptr<Server> server = StartServer();

  fault::ScopedPlan armed(OneShot("serve.accept", fault::Kind::kEio));
  TestClient refused;
  // The TCP handshake may complete (the kernel accepted), but the server
  // closes the socket before a reader ever starts: first read is EOF.
  if (refused.Connect(server->port())) {
    std::string line;
    EXPECT_FALSE(refused.ReadLine(&line));
  }

  TestClient fresh;
  ASSERT_TRUE(fresh.Connect(server->port()));
  ResponseEnvelope response;
  ASSERT_TRUE(fresh.Call(Ping("alive"), &response));
  EXPECT_TRUE(response.ok);
}

}  // namespace
}  // namespace wave
