// Wire-schema tests (ISSUE 9): the api/wire.h JSON layer that
// wave_serve, wave_verify --request and future frontends all speak.
//
// What is pinned here:
//   * golden-file round-trips — the canonical serialized form of a
//     request / batch request / options / stats document is frozen in
//     tests/golden/api_wire/*.json; serializing the in-process value
//     must reproduce the file BYTE FOR BYTE (regenerate deliberately
//     when the schema version is bumped, never by accident);
//   * the schema_version policy — absent reads as 1, [1, kSchemaVersion]
//     accepted, newer is a typed InvalidArgument;
//   * unknown-field tolerance everywhere (forward compatibility);
//   * malformed input surfaces as a typed Status, never a crash;
//   * parse∘serialize is the identity on canonical documents, and
//     serialize∘parse is the identity on values (byte-stability).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/wire.h"
#include "apps/apps.h"
#include "common/io.h"
#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

namespace wave {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(WAVE_REPO_ROOT) + "/tests/golden/api_wire/" + name;
}

std::string ReadGolden(const std::string& name) {
  StatusOr<std::string> text = ReadFileToString(GoldenPath(name));
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.ok() ? *text : std::string();
}

/// Rewrites the golden file when WAVE_REGOLD is set in the environment —
/// the deliberate way to move a frozen form after a schema bump. Returns
/// true when it regenerated (the comparison should then be skipped).
bool MaybeRegold(const std::string& name, const std::string& bytes) {
  if (std::getenv("WAVE_REGOLD") == nullptr) return false;
  Status written = AtomicWriteFile(GoldenPath(name), bytes);
  EXPECT_TRUE(written.ok()) << written.ToString();
  return true;
}

obs::Json MustParse(const std::string& text) {
  std::string error;
  std::optional<obs::Json> doc = obs::Json::Parse(text, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.has_value() ? std::move(*doc) : obs::Json();
}

// --- schema_version policy --------------------------------------------------

TEST(WireSchemaTest, VersionIsOne) { EXPECT_EQ(api::kSchemaVersion, 1); }

TEST(WireSchemaTest, AbsentStampReadsAsVersionOne) {
  obs::Json doc = obs::Json::Object();
  EXPECT_TRUE(api::CheckSchemaVersion(doc).ok());
}

TEST(WireSchemaTest, CurrentStampAccepted) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema_version", obs::Json::Int(api::kSchemaVersion));
  EXPECT_TRUE(api::CheckSchemaVersion(doc).ok());
}

TEST(WireSchemaTest, NewerStampIsTypedInvalidArgument) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema_version", obs::Json::Int(api::kSchemaVersion + 1));
  Status s = api::CheckSchemaVersion(doc);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("schema_version"), std::string::npos);
}

TEST(WireSchemaTest, NonIntegerStampRejected) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema_version", obs::Json::Str("latest"));
  EXPECT_EQ(api::CheckSchemaVersion(doc).code(),
            StatusCode::kInvalidArgument);
}

// --- enum names -------------------------------------------------------------

TEST(WireEnumTest, VerdictNamesRoundTrip) {
  for (Verdict v : {Verdict::kHolds, Verdict::kViolated, Verdict::kUnknown}) {
    StatusOr<Verdict> back = api::ParseVerdict(api::VerdictName(v));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  EXPECT_EQ(api::ParseVerdict("maybe").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireEnumTest, StatusCodeNamesRoundTrip) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kShuttingDown}) {
    StatusOr<StatusCode> back = api::ParseStatusCode(StatusCodeName(c));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, c);
  }
  EXPECT_EQ(api::ParseStatusCode("EBADF").status().code(),
            StatusCode::kInvalidArgument);
}

// --- Status -----------------------------------------------------------------

TEST(WireStatusTest, RoundTripsCodeAndMessage) {
  Status original = Status::ShuttingDown("server draining");
  obs::Json j = api::StatusToJson(original);
  Status decoded;
  ASSERT_TRUE(api::StatusFromJson(j, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kShuttingDown);
  EXPECT_EQ(decoded.message(), "server draining");
}

TEST(WireStatusTest, MalformedIsTypedError) {
  Status decoded;
  EXPECT_EQ(api::StatusFromJson(obs::Json::Int(7), &decoded).code(),
            StatusCode::kInvalidArgument);
  obs::Json bad_code = obs::Json::Object();
  bad_code.Set("code", obs::Json::Str("NO_SUCH_CODE"));
  EXPECT_EQ(api::StatusFromJson(bad_code, &decoded).code(),
            StatusCode::kInvalidArgument);
  obs::Json wrong_type = obs::Json::Object();
  wrong_type.Set("code", obs::Json::Int(13));
  EXPECT_FALSE(api::StatusFromJson(wrong_type, &decoded).ok());
}

TEST(WireStatusTest, AbsentCodeReadsAsOk) {
  // A codeless status object is a valid wire form meaning OK.
  obs::Json no_code = obs::Json::Object();
  no_code.Set("message", obs::Json::Str(""));
  Status decoded = Status::NotFound("sentinel");
  ASSERT_TRUE(api::StatusFromJson(no_code, &decoded).ok());
  EXPECT_TRUE(decoded.ok());
}

// --- options / retry --------------------------------------------------------

VerifyOptions DistinctiveOptions() {
  VerifyOptions options;
  options.heuristic1 = false;
  options.exhaustive_existential = true;
  options.max_candidates = 7;
  options.timeout_seconds = 12.5;
  options.max_expansions = 4096;
  options.max_memory_bytes = 1 << 20;
  options.heartbeat_interval_seconds = 0.25;
  return options;
}

TEST(WireOptionsTest, SerializeParseIsIdentity) {
  VerifyOptions original = DistinctiveOptions();
  std::string wire = api::OptionsToJson(original).Dump();
  StatusOr<VerifyOptions> decoded = api::OptionsFromJson(MustParse(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Byte-stability: the decoded value re-serializes to the same bytes.
  EXPECT_EQ(api::OptionsToJson(*decoded).Dump(), wire);
  EXPECT_EQ(decoded->heuristic1, false);
  EXPECT_EQ(decoded->exhaustive_existential, true);
  EXPECT_EQ(decoded->max_candidates, 7);
  EXPECT_DOUBLE_EQ(decoded->timeout_seconds, 12.5);
  EXPECT_EQ(decoded->max_expansions, 4096);
  EXPECT_EQ(decoded->max_memory_bytes, 1 << 20);
}

TEST(WireOptionsTest, UnknownFieldsIgnored) {
  obs::Json j = api::OptionsToJson(DistinctiveOptions());
  j.Set("from_the_future", obs::Json::Str("hello"));
  StatusOr<VerifyOptions> decoded = api::OptionsFromJson(j);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->max_candidates, 7);
}

TEST(WireOptionsTest, GoldenFormIsFrozen) {
  std::string bytes = api::OptionsToJson(DistinctiveOptions()).Dump() + "\n";
  if (MaybeRegold("options.json", bytes)) return;
  std::string golden = ReadGolden("options.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(bytes, golden);
  // And parsing the golden reproduces it: parse∘serialize is the identity
  // on canonical documents.
  StatusOr<VerifyOptions> decoded = api::OptionsFromJson(MustParse(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(api::OptionsToJson(*decoded).Dump() + "\n", golden);
}

TEST(WireRetryTest, PolicyRoundTrips) {
  RetryPolicy retry;
  retry.enabled = true;
  retry.total_budget_seconds = 30.0;
  RetryRung rung;
  rung.name = "tight";
  rung.max_candidates = 5;
  rung.max_expansions = 1000;
  retry.ladder.push_back(rung);
  std::string wire = api::RetryPolicyToJson(retry).Dump();
  StatusOr<RetryPolicy> decoded = api::RetryPolicyFromJson(MustParse(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->enabled);
  EXPECT_DOUBLE_EQ(decoded->total_budget_seconds, 30.0);
  ASSERT_EQ(decoded->ladder.size(), 1u);
  EXPECT_EQ(decoded->ladder[0].name, "tight");
  EXPECT_EQ(decoded->ladder[0].max_candidates, 5);
  EXPECT_EQ(api::RetryPolicyToJson(*decoded).Dump(), wire);
}

// --- histograms (lossless sparse buckets) -----------------------------------

TEST(WireHistogramTest, SparseEncodingIsLossless) {
  obs::HistogramData h;
  for (double v : {0.001, 0.25, 1.0, 1.5, 64.0, 64.0, 100000.0}) h.Record(v);
  StatusOr<obs::HistogramData> back =
      api::HistogramFromJson(api::HistogramToJson(h));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->count, h.count);
  EXPECT_DOUBLE_EQ(back->sum, h.sum);
  EXPECT_DOUBLE_EQ(back->min, h.min);
  EXPECT_DOUBLE_EQ(back->max, h.max);
  EXPECT_EQ(back->buckets, h.buckets);  // exact, not a summary
}

TEST(WireHistogramTest, EmptyHistogramIsCompact) {
  obs::HistogramData h;
  obs::Json j = api::HistogramToJson(h);
  StatusOr<obs::HistogramData> back = api::HistogramFromJson(j);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->count, 0);
  EXPECT_TRUE(back->empty());
}

// --- stats ------------------------------------------------------------------

VerifyStats DistinctiveStats() {
  VerifyStats stats;
  stats.seconds = 1.25;
  stats.max_pseudorun_length = 9;
  stats.max_trie_size = 333;
  stats.buchi_states = 4;
  stats.num_assignments = 17;
  stats.num_cores = 5;
  stats.num_expansions = 1200;
  stats.num_successors = 2400;
  stats.prepare_seconds = 0.125;
  stats.search_seconds = 1.0;
  stats.trie_hits = 700;
  stats.trie_misses = 500;
  stats.peak_memory_bytes = 1 << 16;
  stats.cache_hits = 1;
  stats.prepass_reuses = 2;
  stats.trie_nodes = 4242;
  stats.alloc_bytes = 65536;
  stats.alloc_count = 128;
  stats.trie_depth.Record(3.0);
  stats.trie_depth.Record(5.0);
  stats.frontier_size.Record(11.0);
  return stats;
}

TEST(WireStatsTest, RoundTripIsLosslessAndByteStable) {
  VerifyStats original = DistinctiveStats();
  std::string wire = api::StatsToJson(original).Dump();
  StatusOr<VerifyStats> decoded = api::StatsFromJson(MustParse(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(api::StatsToJson(*decoded).Dump(), wire);
  EXPECT_EQ(decoded->num_expansions, 1200);
  EXPECT_EQ(decoded->cache_hits, 1);
  EXPECT_EQ(decoded->prepass_reuses, 2);
  EXPECT_EQ(decoded->trie_depth.count, 2);
  EXPECT_EQ(decoded->trie_depth.buckets, original.trie_depth.buckets);
}

TEST(WireStatsTest, GoldenFormIsFrozen) {
  std::string bytes = api::StatsToJson(DistinctiveStats()).Dump() + "\n";
  if (MaybeRegold("stats.json", bytes)) return;
  std::string golden = ReadGolden("stats.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(bytes, golden);
}

// --- requests ---------------------------------------------------------------

TEST(WireRequestTest, SelectorTravelsByName) {
  AppBundle bundle = BuildE1();
  VerifyRequest request;
  request.property = &bundle.properties[0].property;
  request.jobs = 2;
  request.options = DistinctiveOptions();
  obs::Json j = api::RequestToJson(request);

  StatusOr<VerifyRequest> decoded = api::RequestFromJson(j);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Pointers never travel: the receiver binds its own catalog.
  EXPECT_EQ(decoded->property, nullptr);
  EXPECT_EQ(decoded->properties, nullptr);
  EXPECT_EQ(decoded->property_name, bundle.properties[0].property.name);
  EXPECT_EQ(decoded->jobs, 2);
  EXPECT_EQ(decoded->options.max_candidates, 7);
}

TEST(WireRequestTest, IndexSelectorRoundTrips) {
  VerifyRequest request;
  request.property_index = 3;
  std::string wire = api::RequestToJson(request).Dump();
  StatusOr<VerifyRequest> decoded = api::RequestFromJson(MustParse(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->property_index, 3);
  EXPECT_EQ(api::RequestToJson(*decoded).Dump(), wire);
}

TEST(WireRequestTest, GoldenFormIsFrozen) {
  VerifyRequest request;
  request.property_name = "P1";
  request.jobs = 2;
  request.options = DistinctiveOptions();
  request.retry.enabled = true;
  request.retry.total_budget_seconds = 30.0;
  std::string bytes = api::RequestToJson(request).Dump() + "\n";
  if (MaybeRegold("request.json", bytes)) return;
  std::string golden = ReadGolden("request.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(bytes, golden);
  StatusOr<VerifyRequest> decoded = api::RequestFromJson(MustParse(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(api::RequestToJson(*decoded).Dump() + "\n", golden);
}

TEST(WireRequestTest, UnknownFieldsIgnored) {
  obs::Json j = MustParse(ReadGolden("request.json"));
  j.Set("shiny_new_feature", obs::Json::Bool(true));
  StatusOr<VerifyRequest> decoded = api::RequestFromJson(j);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->property_name, "P1");
}

TEST(WireRequestTest, MalformedIsTypedError) {
  EXPECT_EQ(api::RequestFromJson(obs::Json::Array()).status().code(),
            StatusCode::kInvalidArgument);
  obs::Json bad_jobs = obs::Json::Object();
  bad_jobs.Set("jobs", obs::Json::Str("many"));
  EXPECT_FALSE(api::RequestFromJson(bad_jobs).ok());
}

// --- batch requests ---------------------------------------------------------

TEST(WireBatchTest, NamesResolveAgainstCatalog) {
  AppBundle bundle = BuildE1();
  std::vector<Property> catalog;
  for (const ParsedProperty& p : bundle.properties)
    catalog.push_back(p.property);

  api::WireBatchRequest batch;
  batch.property_names = {catalog[1].name, catalog[0].name};
  std::string wire = api::BatchRequestToJson(batch).Dump();

  StatusOr<api::WireBatchRequest> decoded =
      api::BatchRequestFromJson(MustParse(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(api::BatchRequestToJson(*decoded).Dump(), wire);

  ASSERT_TRUE(api::BindBatchRequest(&*decoded, catalog).ok());
  EXPECT_EQ(decoded->request.properties, &catalog);
  ASSERT_EQ(decoded->request.property_indices.size(), 2u);
  EXPECT_EQ(decoded->request.property_indices[0], 1);
  EXPECT_EQ(decoded->request.property_indices[1], 0);
}

TEST(WireBatchTest, MissingNameIsNotFound) {
  AppBundle bundle = BuildE1();
  std::vector<Property> catalog;
  for (const ParsedProperty& p : bundle.properties)
    catalog.push_back(p.property);
  api::WireBatchRequest batch;
  batch.property_names = {"NoSuchProperty"};
  EXPECT_EQ(api::BindBatchRequest(&batch, catalog).code(),
            StatusCode::kNotFound);
}

TEST(WireBatchTest, GoldenFormIsFrozen) {
  api::WireBatchRequest batch;
  batch.property_names = {"P1", "P3"};
  batch.request.jobs = 4;
  batch.request.options = DistinctiveOptions();
  std::string bytes = api::BatchRequestToJson(batch).Dump() + "\n";
  if (MaybeRegold("batch_request.json", bytes)) return;
  std::string golden = ReadGolden("batch_request.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(bytes, golden);
  StatusOr<api::WireBatchRequest> decoded =
      api::BatchRequestFromJson(MustParse(golden));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(api::BatchRequestToJson(*decoded).Dump() + "\n", golden);
}

// --- responses (with a real counterexample) ---------------------------------

TEST(WireResponseTest, ViolatedResponseRoundTripsThroughSymbolNames) {
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());

  // Find a property the suite expects to be VIOLATED so the response
  // carries a counterexample (the hard part of the encoding: symbols by
  // name, re-interned on decode).
  const ParsedProperty* violated = nullptr;
  for (const ParsedProperty& p : bundle.properties)
    if (p.has_expected && !p.expected) violated = &p;
  ASSERT_NE(violated, nullptr) << "E1 suite lost its violated property";

  VerifyRequest request;
  request.property = &violated->property;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->verdict, Verdict::kViolated);
  ASSERT_FALSE(response->stick.empty() && response->candy.empty());

  std::string wire = api::ResponseToJson(*response, *bundle.spec).Dump();
  StatusOr<VerifyResponse> decoded =
      api::ResponseFromJson(MustParse(wire), bundle.spec.get());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->verdict, Verdict::kViolated);
  EXPECT_EQ(decoded->stick.size(), response->stick.size());
  EXPECT_EQ(decoded->candy.size(), response->candy.size());
  EXPECT_EQ(decoded->witness_binding.size(), response->witness_binding.size());
  // Byte-stability through a full decode/encode cycle.
  EXPECT_EQ(api::ResponseToJson(*decoded, *bundle.spec).Dump(), wire);
}

TEST(WireResponseTest, HoldsResponseRoundTrips) {
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());
  const ParsedProperty* holds = nullptr;
  for (const ParsedProperty& p : bundle.properties)
    if (p.has_expected && p.expected) holds = &p;
  ASSERT_NE(holds, nullptr);

  VerifyRequest request;
  request.property = &holds->property;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->verdict, Verdict::kHolds);

  std::string wire = api::ResponseToJson(*response, *bundle.spec).Dump();
  StatusOr<VerifyResponse> decoded =
      api::ResponseFromJson(MustParse(wire), bundle.spec.get());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->verdict, Verdict::kHolds);
  EXPECT_EQ(api::ResponseToJson(*decoded, *bundle.spec).Dump(), wire);
}

TEST(WireResponseTest, BatchResponseRoundTrips) {
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());
  std::vector<Property> catalog;
  for (const ParsedProperty& p : bundle.properties)
    catalog.push_back(p.property);

  BatchRequest request;
  request.properties = &catalog;
  request.property_indices = {0, 1};
  StatusOr<BatchResponse> batch = verifier.RunBatch(request);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  std::string wire = api::BatchResponseToJson(*batch, *bundle.spec).Dump();
  StatusOr<BatchResponse> decoded =
      api::BatchResponseFromJson(MustParse(wire), bundle.spec.get());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->responses.size(), batch->responses.size());
  for (size_t i = 0; i < decoded->responses.size(); ++i)
    EXPECT_EQ(decoded->responses[i].verdict, batch->responses[i].verdict);
  EXPECT_EQ(api::BatchResponseToJson(*decoded, *bundle.spec).Dump(), wire);
}

TEST(WireResponseTest, MalformedIsTypedError) {
  AppBundle bundle = BuildE1();
  EXPECT_FALSE(
      api::ResponseFromJson(obs::Json::Str("nope"), bundle.spec.get()).ok());
  obs::Json bad_verdict = obs::Json::Object();
  bad_verdict.Set("verdict", obs::Json::Str("perhaps"));
  EXPECT_EQ(
      api::ResponseFromJson(bad_verdict, bundle.spec.get()).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wave
