// Dataflow analysis and candidate-set tests — including the paper's
// Examples 3.5 / 3.6 / 3.7 scenarios on the E1 page LSP.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/candidates.h"
#include "analysis/dataflow.h"
#include "apps/apps.h"
#include "parser/parser.h"

namespace wave {
namespace {

AttrPos Pos(const WebAppSpec& spec, const std::string& relation, int column) {
  RelationId id = spec.catalog().Find(relation);
  EXPECT_NE(id, kInvalidRelation) << relation;
  return {id, column};
}

TEST(DataflowTest, ExplicitComparisonsAreFound) {
  // Paper Example 3.6 (explicit case): LSP's input rule compares the
  // attributes of `criteria` to constants like "laptop" and "ram".
  AppBundle e1 = BuildE1();
  ComparisonAnalysis analysis(*e1.spec, {});
  SymbolId laptop = e1.spec->symbols().Find("laptop");
  SymbolId ram = e1.spec->symbols().Find("ram");
  ASSERT_NE(laptop, kInvalidSymbol);
  const std::set<SymbolId>& cat = analysis.constants(Pos(*e1.spec, "criteria", 0));
  const std::set<SymbolId>& attr = analysis.constants(Pos(*e1.spec, "criteria", 1));
  EXPECT_TRUE(cat.count(laptop) > 0);
  EXPECT_TRUE(attr.count(ram) > 0);
}

TEST(DataflowTest, ThirdCriteriaAttributeHasNoConstantComparisons) {
  // Paper Example 3.5: "the third attribute of criteria, used on page LSP"
  // is compared to no constant whatsoever, so Heuristic 1 admits no core
  // tuples for criteria.
  AppBundle e1 = BuildE1();
  ComparisonAnalysis analysis(*e1.spec, {});
  EXPECT_TRUE(analysis.constants(Pos(*e1.spec, "criteria", 2)).empty());
}

TEST(DataflowTest, ImplicitComparisonFlowsThroughCopies) {
  // Paper Example 3.6 (implicit case): a property mentioning the ground
  // state atom userchoice("1GB","60GB","21in") induces a comparison of the
  // third attribute of criteria to those constants, because the input rule
  // copies criteria values into laptopsearch, and the state rule copies
  // laptopsearch into userchoice.
  AppBundle e1 = BuildE1();
  std::vector<std::string> errors;
  FormulaPtr property_atom = ParseFormula(
      "userchoice(\"1GB\", \"60GB\", \"21in\")", e1.spec.get(), &errors);
  ASSERT_NE(property_atom, nullptr) << (errors.empty() ? "" : errors[0]);
  ComparisonAnalysis analysis(*e1.spec, {property_atom});
  SymbolId gb1 = e1.spec->symbols().Find("1GB");
  SymbolId gb60 = e1.spec->symbols().Find("60GB");
  SymbolId in21 = e1.spec->symbols().Find("21in");
  const std::set<SymbolId>& value = analysis.constants(Pos(*e1.spec, "criteria", 2));
  EXPECT_TRUE(value.count(gb1) > 0);
  EXPECT_TRUE(value.count(gb60) > 0);
  EXPECT_TRUE(value.count(in21) > 0);
  // Without the property the set stays empty (previous test), so the flow
  // is attributable to the copy chain.
}

TEST(DataflowTest, InputLinksConnectDatabaseToInputs) {
  // E1 HP login: user(name, password) is compared to the uname/upass input
  // constants.
  AppBundle e1 = BuildE1();
  ComparisonAnalysis analysis(*e1.spec, {});
  const std::set<AttrPos>& links = analysis.input_links(Pos(*e1.spec, "user", 0));
  EXPECT_TRUE(links.count(Pos(*e1.spec, "uname", 0)) > 0);
}

TEST(CandidatesTest, Heuristic1PrunesCriteriaCores) {
  // Example 3.5: with Heuristic 1 and no property constants on products,
  // criteria/user/ordersdb contribute no core tuples.
  AppBundle e1 = BuildE1();
  ComparisonAnalysis analysis(*e1.spec, {});
  PageDomains domains(e1.spec.get());
  std::set<SymbolId> universe = e1.spec->SpecConstants();
  CandidateOptions options;
  CandidateBuilder builder(e1.spec.get(), &domains, &analysis, nullptr,
                           universe, options);
  const CandidateSet& core = builder.CoreCandidates();
  EXPECT_FALSE(core.overflow);
  RelationId criteria = e1.spec->catalog().Find("criteria");
  RelationId user = e1.spec->catalog().Find("user");
  for (const auto& [relation, tuple] : core.tuples) {
    EXPECT_NE(relation, criteria);
    EXPECT_NE(relation, user);
  }
}

TEST(CandidatesTest, Heuristic1OffExplodesAnalytically) {
  // Example 3.4: without Heuristic 1 the candidate count is the sum of
  // |C|^arity over the database relations — astronomically many cores.
  AppBundle e1 = BuildE1();
  ComparisonAnalysis analysis(*e1.spec, {});
  PageDomains domains(e1.spec.get());
  std::set<SymbolId> universe = e1.spec->SpecConstants();
  double c = static_cast<double>(universe.size());
  CandidateOptions options;
  options.heuristic1 = false;
  CandidateBuilder builder(e1.spec.get(), &domains, &analysis, nullptr,
                           universe, options);
  const CandidateSet& core = builder.CoreCandidates();
  EXPECT_TRUE(core.overflow);
  double expected = c * c + c * c * c + std::pow(c, 5) + std::pow(c, 7);
  EXPECT_NEAR(core.approx_tuple_count / expected, 1.0, 1e-9);
}

TEST(CandidatesTest, ExtensionsAtLspAreTiny) {
  // Example 3.7's regime: at page LSP only a handful of extension
  // candidates exist (the criteria witnesses for the search options and the
  // login-support user tuple), versus the astronomic count with
  // Heuristic 2 off.
  AppBundle e1 = BuildE1();
  ComparisonAnalysis analysis(*e1.spec, {});
  PageDomains domains(e1.spec.get());
  std::set<SymbolId> universe = e1.spec->SpecConstants();
  int lsp = e1.spec->PageIndex("LSP");
  int cp = e1.spec->PageIndex("CP");
  {
    CandidateOptions options;
    CandidateBuilder builder(e1.spec.get(), &domains, &analysis, nullptr,
                             universe, options);
    const CandidateSet& ext = builder.ExtensionCandidates(lsp, cp);
    EXPECT_FALSE(ext.overflow);
    EXPECT_LE(ext.tuples.size(), 8u);
    EXPECT_GE(ext.tuples.size(), 3u);  // the three criteria witnesses
  }
  {
    CandidateOptions options;
    options.heuristic2 = false;
    CandidateBuilder builder(e1.spec.get(), &domains, &analysis, nullptr,
                             universe, options);
    const CandidateSet& ext = builder.ExtensionCandidates(lsp, cp);
    EXPECT_TRUE(ext.overflow);
    EXPECT_GT(ext.approx_tuple_count, 1e9);
  }
}

TEST(CandidatesTest, ExtensionTuplesAlwaysContainAFreshValue) {
  AppBundle e1 = BuildE1();
  ComparisonAnalysis analysis(*e1.spec, {});
  PageDomains domains(e1.spec.get());
  std::set<SymbolId> universe = e1.spec->SpecConstants();
  CandidateOptions options;
  CandidateBuilder builder(e1.spec.get(), &domains, &analysis, nullptr,
                           universe, options);
  for (int page = 0; page < e1.spec->num_pages(); ++page) {
    const CandidateSet& ext = builder.ExtensionCandidates(page, -1);
    for (const auto& [relation, tuple] : ext.tuples) {
      bool fresh = false;
      for (SymbolId v : tuple) {
        if (universe.count(v) == 0) fresh = true;
      }
      EXPECT_TRUE(fresh) << "all-constant tuple belongs to the core";
    }
  }
}

TEST(PageDomainsTest, ValuesAreStableAndDistinct) {
  AppBundle e1 = BuildE1();
  PageDomains domains(e1.spec.get());
  int lsp = e1.spec->PageIndex("LSP");
  const PageDomain& first = domains.Get(lsp);
  size_t values = first.all_values.size();
  EXPECT_GT(values, 0u);
  // Re-fetching must not mint new symbols.
  const PageDomain& second = domains.Get(lsp);
  EXPECT_EQ(second.all_values.size(), values);
  EXPECT_EQ(&first, &second);
  // Witness accessor is stable too.
  SymbolId w1 = domains.Witness(lsp, "tag");
  SymbolId w2 = domains.Witness(lsp, "tag");
  EXPECT_EQ(w1, w2);
  EXPECT_NE(domains.Witness(lsp, "other"), w1);
}

}  // namespace
}  // namespace wave
