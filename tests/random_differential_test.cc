// Randomized end-to-end differential test: generate small random
// input-bounded specs and random LTL-FO properties, verify with WAVE's
// pseudorun search, and cross-check the verdict against the explicit
// first-cut baseline (which enumerates every database over its bounded
// domain). A disagreement would expose a soundness or completeness bug in
// the pseudorun machinery (Theorems 3.2 / 3.3 / 3.8).
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "baseline/firstcut.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

/// Builds a random two-page spec from safe rule templates. All generated
/// specs parse, validate and are input bounded.
std::string RandomSpecText(std::mt19937* rng) {
  auto coin = [&]() { return ((*rng)() & 1) != 0; };
  // Only a unary database relation: the explicit baseline enumerates
  // 2^(|dom|^arity) databases per relation, so binary relations make the
  // cross-check infeasible.
  std::string spec = R"(
app random
database r1(a)
database marked(a)
state s0()
state s1(a)
input pick(x)
input btn(x)
home A
)";
  // Page A.
  spec += "page A {\n  input pick\n  input btn\n";
  spec += coin() ? "  rule pick(x) <- r1(x)\n"
                 : "  rule pick(x) <- r1(x) & marked(x)\n";
  spec += "  rule btn(x) <- x = \"go\" | x = \"stay\"\n";
  if (coin()) spec += "  state +s1(x) <- pick(x) & btn(\"go\")\n";
  if (coin()) spec += "  state +s0() <- exists x: pick(x)\n";
  if (coin()) spec += "  state -s1(x) <- s1(x) & btn(\"stay\")\n";
  spec += coin() ? "  target B <- (exists x: pick(x)) & btn(\"go\")\n"
                 : "  target B <- btn(\"go\")\n";
  if (coin()) spec += "  target A <- btn(\"stay\")\n";
  spec += "}\n";
  // Page B.
  spec += "page B {\n  input btn\n";
  spec += "  rule btn(x) <- x = \"back\" | x = \"go\"\n";
  if (coin()) spec += "  state -s0() <- btn(\"go\")\n";
  if (coin()) spec += "  state +s1(x) <- prev pick(x) & btn(\"back\")\n";
  spec += "  target A <- btn(\"back\")\n";
  spec += "}\n";
  return spec;
}

/// One random property from a pool of parametric templates.
std::string RandomPropertyText(std::mt19937* rng) {
  static const char* kTemplates[] = {
      "property p expect false { F [at B] }",
      "property p expect false { G [!(at B)] }",
      "property p expect false { F [s0()] }",
      "property p expect false { G (F [at A]) }",
      "property p expect false { F (G [at A]) }",
      "property p expect false { forall v: F [s1(v)] -> F [at B] }",
      "property p expect false { forall v: F [pick(v)] -> F [s1(v)] }",
      "property p expect false { [at A & btn(\"go\")] B [at B] }",
      "property p expect false { G ([s0()] -> X [s0()]) }",
      "property p expect false { forall v: G ([s1(v)] -> F [!s1(v)]) }",
      "property p expect false { G ([at A] -> X ([at A] | [at B])) }",
      "property p expect false { forall v: [pick(v)] B [s1(v)] }",
  };
  return kTemplates[(*rng)() % (sizeof(kTemplates) / sizeof(kTemplates[0]))];
}

class RandomDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDifferentialTest, WaveAgreesWithExplicitBaseline) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 2; ++trial) {
    std::string spec_text = RandomSpecText(&rng);
    std::string property_text = RandomPropertyText(&rng);
    ParseResult parsed = ParseSpec(spec_text + property_text);
    ASSERT_TRUE(parsed.ok()) << parsed.ErrorText() << "\n" << spec_text;
    ASSERT_TRUE(parsed.spec->CheckInputBoundedness().empty()) << spec_text;

    Verifier wave_verifier(parsed.spec.get());
    VerifyOptions wave_options;
    wave_options.timeout_seconds = 60;
    VerifyResult wave_result =
        RunVerify(wave_verifier, parsed.properties[0].property, wave_options);
    ASSERT_NE(wave_result.verdict, Verdict::kUnknown)
        << wave_result.failure_reason << "\n" << spec_text << property_text;

    FirstCutVerifier baseline(parsed.spec.get());
    FirstCutOptions baseline_options;
    baseline_options.extra_domain_values = 1;
    baseline_options.timeout_seconds = 120;
    FirstCutResult baseline_result =
        baseline.Verify(parsed.properties[0].property, baseline_options);
    ASSERT_NE(baseline_result.verdict, Verdict::kUnknown)
        << baseline_result.failure_reason << "\n" << spec_text;

    // The baseline enumerates databases over a *bounded* domain, so it can
    // miss violations that need more fresh values — but with one extra
    // value beyond the property constants the templates above are all
    // decidable either way, and WAVE must agree exactly.
    EXPECT_EQ(wave_result.verdict, baseline_result.verdict)
        << "seed " << GetParam() << " trial " << trial << "\n"
        << spec_text << property_text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace wave
