// Randomized end-to-end differential sweep (ISSUE 5), rebuilt on the
// src/testing fuzzing library: a deterministic seeded run of 320
// generated (spec, property) cases, each cross-checked along every
// oracle axis —
//
//   pseudorun verdict vs the explicit first-cut enumeration
//     (Theorems 3.2 / 3.3 / 3.8 made executable),
//   jobs=1 vs jobs=N on the work-stealing pool,
//   RunBatch vs sequential Run,
//   cold vs warm persistent ResultCache,
//   identifier renaming and rule reordering (metamorphic invariances).
//
// The sweep is sharded so ctest can spread it over workers; any failure
// names its seed, and `wave_fuzz --seed-start=SEED --seed-count=1`
// reproduces the exact case (the generator draw stream is pinned — see
// src/testing/rng.h and the fingerprint test below).
//
// The harness itself is under test too: every `UnknownReason` is probed
// under starved budgets so decided-vs-decided comparison never silently
// becomes vacuous, and an intentionally injected verdict bug must be
// caught AND minimized to a reproducer under 30 spec lines.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "testing/oracle.h"
#include "testing/shrink.h"
#include "testing/spec_gen.h"
#include "verifier/governor.h"

namespace wave {
namespace {

constexpr int kShards = 16;
constexpr int kSeedsPerShard = 20;  // 16 × 20 = 320 cases

class RandomDifferentialSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomDifferentialSweep, AllAxesAgree) {
  const int shard = GetParam();
  testing::OracleOptions options;
  // Sharing one cache directory inside the shard exercises repeated
  // store/hit cycles; per-shard directories keep parallel ctest workers
  // independent.
  options.cache_dir =
      ::testing::TempDir() + "wave_rdt_cache_" + std::to_string(shard);

  int decided = 0;
  for (int i = 0; i < kSeedsPerShard; ++i) {
    const uint64_t seed =
        static_cast<uint64_t>(shard) * kSeedsPerShard + i + 1;
    testing::FuzzCase c = testing::GenerateCase(seed);
    testing::OracleReport report = testing::CheckCase(c, options);
    ASSERT_TRUE(report.valid)
        << "generator emitted an invalid case: " << report.Summary() << "\n"
        << c.Text();
    EXPECT_FALSE(report.disagreed()) << report.Summary() << "\n" << c.Text();
    EXPECT_EQ(report.axes.size(), 6u);
    if (report.reference != Verdict::kUnknown) ++decided;
  }
  // The sweep must not be vacuous: nearly every generated case decides
  // within the default budgets (empirically all of them do).
  EXPECT_GE(decided, kSeedsPerShard - 2);
}

INSTANTIATE_TEST_SUITE_P(Shards, RandomDifferentialSweep,
                         ::testing::Range(0, kShards));

// The "decided-vs-decided only" rule needs the undecided side exercised
// too: every UnknownReason must be reachable from generated cases under
// a starved budget, so a future regression that quietly turns the whole
// sweep into skipped comparisons cannot pass unnoticed.
TEST(RandomDifferentialTest, EveryUnknownReasonIsProbed) {
  std::vector<testing::ReasonProbe> probes =
      testing::ProbeUnknownReasons(testing::GeneratorConfig{}, /*seed_start=*/1,
                                   /*max_seeds=*/50);
  ASSERT_EQ(probes.size(), 6u);
  for (const testing::ReasonProbe& probe : probes) {
    EXPECT_TRUE(probe.covered)
        << UnknownReasonName(probe.reason) << ": " << probe.detail;
  }
}

// End-to-end self-test of the failure pipeline: inject a verdict bug
// (arm the `oracle.flip_verdict` fault, which flips every decided
// reference verdict), and the oracle must catch it, the shrinker must
// minimize it below 30 spec lines, and the minimized case must still be
// a valid reproducer. The flip fires unconditionally (no @N / :p
// schedule), so the shrinker's predicate stays deterministic across its
// many probe evaluations.
TEST(RandomDifferentialTest, InjectedVerdictBugIsCaughtAndMinimized) {
  testing::OracleOptions options;
  options.run_metamorphic = false;  // the baseline axis is the catcher

  fault::Plan plan;
  fault::Rule rule;
  rule.site = "oracle.flip_verdict";
  rule.kind = fault::Kind::kFlip;
  plan.rules.push_back(rule);
  fault::ScopedPlan armed(std::move(plan));

  bool caught = false;
  for (uint64_t seed = 1; seed <= 50 && !caught; ++seed) {
    testing::FuzzCase c = testing::GenerateCase(seed);
    testing::OracleReport report = testing::CheckCase(c, options);
    if (!report.flip_injected) continue;
    caught = true;

    EXPECT_TRUE(report.disagreed()) << report.Summary();
    const testing::AxisCheck* baseline =
        report.FindAxis(testing::OracleAxis::kBaseline);
    ASSERT_NE(baseline, nullptr);
    EXPECT_TRUE(baseline->compared);
    EXPECT_FALSE(baseline->agreed);

    testing::FailurePredicate still_fails = testing::OracleDisagreementPredicate(
        options, testing::OracleAxis::kBaseline);
    testing::ShrinkResult shrunk = testing::Minimize(c, still_fails);
    EXPECT_LT(shrunk.stats.final_lines, 30)
        << shrunk.minimized.SpecText();
    EXPECT_LE(shrunk.stats.final_lines, shrunk.stats.initial_lines);
    // The minimized case must itself still parse, validate, stay
    // input-bounded and disagree — the predicate enforces all four.
    EXPECT_TRUE(still_fails(shrunk.minimized)) << shrunk.minimized.Text();
  }
  EXPECT_TRUE(caught)
      << "no generated case in seeds 1..50 produced a decided reference";
}

// Reproducibility contract: the generator (and both metamorphic
// transforms) are pure functions of the seed with a platform-pinned draw
// stream, so a seed logged by any campaign regenerates byte-identical
// text anywhere. This fingerprint moves only when the grammar itself is
// deliberately changed (then: update the constant, and note that logged
// seeds from older campaigns no longer replay).
TEST(RandomDifferentialTest, GeneratorFingerprintIsPinned) {
  auto fnv1a = [](const std::string& s, uint64_t h) {
    for (unsigned char ch : s) {
      h ^= ch;
      h *= 1099511628211ull;
    }
    return h;
  };
  uint64_t h = 1469598103934665603ull;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    testing::FuzzCase c = testing::GenerateCase(seed);
    h = fnv1a(c.Text(), h);
    h = fnv1a(testing::RenameCase(c).Text(), h);
    h = fnv1a(testing::ReorderCase(c, 0x5eedf00dull).Text(), h);
  }
  EXPECT_EQ(h, 0x4252da856899b033ull);
}

}  // namespace
}  // namespace wave
