// Unit tests for the common module: symbol interning, dynamic bitsets and
// string helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/bitset.h"
#include "common/strings.h"
#include "common/symbol_table.h"

namespace wave {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.Intern("laptop");
  SymbolId b = table.Intern("desktop");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("laptop"), a);
  EXPECT_EQ(table.Name(a), "laptop");
  EXPECT_EQ(table.Name(b), "desktop");
  EXPECT_EQ(table.size(), 2);
}

TEST(SymbolTableTest, FindDoesNotIntern) {
  SymbolTable table;
  EXPECT_EQ(table.Find("missing"), kInvalidSymbol);
  EXPECT_EQ(table.size(), 0);
  SymbolId a = table.Intern("present");
  EXPECT_EQ(table.Find("present"), a);
}

TEST(SymbolTableTest, FreshSymbolsNeverCollide) {
  SymbolTable table;
  table.Intern("$x.0");  // adversarial: looks like a fresh name
  std::set<SymbolId> seen;
  for (int i = 0; i < 100; ++i) {
    SymbolId v = table.MintFresh("x");
    EXPECT_TRUE(seen.insert(v).second);
    EXPECT_TRUE(table.IsFresh(v));
  }
  EXPECT_FALSE(table.IsFresh(table.Intern("plain")));
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130);
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3);
  bits.Set(64, false);
  EXPECT_FALSE(bits.Test(64));
  bits.Reset();
  EXPECT_TRUE(bits.None());
}

TEST(BitsetTest, IncrementEnumeratesAllSubsets) {
  // The paper's core enumeration: the bitmap is a binary counter.
  DynamicBitset bits(4);
  std::set<std::string> seen = {bits.ToString()};
  while (bits.Increment()) {
    EXPECT_TRUE(seen.insert(bits.ToString()).second) << "duplicate subset";
  }
  EXPECT_EQ(seen.size(), 16u);  // 2^4
  EXPECT_TRUE(bits.None()) << "wrap-around must return to all-zero";
}

TEST(BitsetTest, IncrementOnEmptyBitsetTerminates) {
  DynamicBitset bits(0);
  EXPECT_FALSE(bits.Increment());
}

TEST(BitsetTest, AppendConcatenatesBits) {
  DynamicBitset a(3);
  a.Set(1);
  DynamicBitset b(2);
  b.Set(0);
  a.Append(b);
  EXPECT_EQ(a.ToString(), "01010");
}

TEST(BitsetTest, BytesAreCanonical) {
  DynamicBitset a(9), b(9);
  a.Set(8);
  b.Set(8);
  EXPECT_EQ(a.ToBytes(), b.ToBytes());
  b.Set(0);
  EXPECT_NE(a.ToBytes(), b.ToBytes());
  EXPECT_EQ(a.ToBytes().size(), 2u);
}

TEST(BitsetTest, HashDiffersAcrossContents) {
  DynamicBitset a(64), b(64);
  b.Set(17);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("\r\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

}  // namespace
}  // namespace wave
