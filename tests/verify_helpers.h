// Shared test-side entry point into the verifier: tests go through the
// unified VerifyRequest API (PR 3) via this helper, so the request-based
// code path gets the bulk of the coverage.
#ifndef WAVE_TESTS_VERIFY_HELPERS_H_
#define WAVE_TESTS_VERIFY_HELPERS_H_

#include <utility>

#include "common/check.h"
#include "verifier/verifier.h"

namespace wave {

/// Runs `property` through Verifier::Run and unwraps the response, dying
/// with the status message on a malformed request (tests that expect a
/// bad request use Run directly and inspect the Status).
inline VerifyResult RunVerify(Verifier& verifier, const Property& property,
                              VerifyOptions options = {}, int jobs = 1) {
  VerifyRequest request;
  request.property = &property;
  request.options = std::move(options);
  request.jobs = jobs;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  WAVE_CHECK_MSG(response.ok(), "RunVerify(" << property.name << "): "
                                             << response.status().message());
  return std::move(static_cast<VerifyResult&>(*response));
}

}  // namespace wave

#endif  // WAVE_TESTS_VERIFY_HELPERS_H_
