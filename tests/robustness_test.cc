// Robustness tests (ISSUE 2): the structured-error channel, the resource
// governor and cooperative cancellation, the budget-escalation retry
// ladder, and a fuzz-ish corpus of truncated/corrupted spec files that
// must produce positioned parse errors — never a crash.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <regex>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "common/io.h"
#include "common/status.h"
#include "parser/parser.h"
#include "verifier/governor.h"
#include "verifier/retry.h"
#include "verifier/trie.h"
#include "verifier/validate.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

// --- Status / StatusOr ------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, FactoriesSetCodeMessageAndLocation) {
  Status s = Status::InvalidArgument("bad spec", WAVE_LOC);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad spec");
  EXPECT_GT(s.location().line, 0);
  std::string text = s.ToString();
  EXPECT_NE(text.find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(text.find("bad spec"), std::string::npos);
  EXPECT_NE(text.find("robustness_test.cc"), std::string::npos);
}

TEST(StatusTest, EveryCodeHasAStableName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);

  StatusOr<int> bad = Status::NotFound("no such thing");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

StatusOr<int> ParsePositive(int raw) {
  if (raw <= 0) return Status::InvalidArgument("not positive");
  return raw;
}

Status UsePositive(int raw, int* out) {
  WAVE_ASSIGN_OR_RETURN(int value, ParsePositive(raw));
  WAVE_RETURN_IF_ERROR(Status::Ok());
  *out = value;
  return Status::Ok();
}

TEST(StatusOrTest, MacrosPropagateErrorsAndUnwrapValues) {
  int out = 0;
  EXPECT_TRUE(UsePositive(7, &out).ok());
  EXPECT_EQ(out, 7);
  Status s = UsePositive(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --- file I/O ---------------------------------------------------------------

TEST(IoTest, ReadFileToStringReportsNotFound) {
  StatusOr<std::string> r =
      ReadFileToString(::testing::TempDir() + "/wave_no_such_file.spec");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, AtomicWriteFileRoundTripsAndLeavesNoTempFile) {
  std::string path = ::testing::TempDir() + "/wave_atomic_io_test.json";
  ASSERT_TRUE(AtomicWriteFile(path, "{\"a\": 1}\n").ok());
  StatusOr<std::string> back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "{\"a\": 1}\n");
  // The temp file must have been renamed away.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  // Overwriting replaces the whole content.
  ASSERT_TRUE(AtomicWriteFile(path, "{}").ok());
  back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "{}");
  std::remove(path.c_str());
}

TEST(IoTest, AtomicWriteFileToMissingDirectoryFails) {
  Status s = AtomicWriteFile(
      ::testing::TempDir() + "/wave_no_such_dir/out.json", "x");
  EXPECT_FALSE(s.ok());
}

// --- spec-file loading ------------------------------------------------------

TEST(ParseSpecFileTest, MissingFileIsNotFound) {
  StatusOr<ParseResult> r = ParseSpecFile("/nonexistent/wave.spec");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ParseSpecFileTest, LoadsABundledSpec) {
  std::string path =
      std::string(WAVE_REPO_ROOT) + "/specs/e1_shopping.spec";
  StatusOr<ParseResult> r = ParseSpecFile(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ok()) << r->ErrorText();
  EXPECT_TRUE(r->status().ok());
  EXPECT_GT(r->properties.size(), 0u);
}

// --- fuzz-ish parser corpus -------------------------------------------------
//
// Every truncation and corruption of the bundled spec files must come
// back as a ParseResult whose errors carry a "line:col:" position — the
// parser must never abort, hang, or crash on malformed input.

const std::regex& ErrorPositionRegex() {
  static const std::regex kRe("^[0-9]+:[0-9]+: .+");
  return kRe;
}

void ExpectErrorsArePositioned(const ParseResult& result,
                               const std::string& what) {
  for (const std::string& error : result.errors) {
    EXPECT_TRUE(std::regex_search(error, ErrorPositionRegex()))
        << what << ": unpositioned error: " << error;
  }
}

class SpecCorpusTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::string Load() {
    std::string path =
        std::string(WAVE_REPO_ROOT) + "/specs/" + GetParam();
    StatusOr<std::string> text = ReadFileToString(path);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.ok() ? *text : std::string();
  }
};

TEST_P(SpecCorpusTest, TruncationsNeverCrashAndErrorsArePositioned) {
  std::string text = Load();
  ASSERT_FALSE(text.empty());
  size_t step = std::max<size_t>(1, text.size() / 61);
  for (size_t cut = 0; cut < text.size(); cut += step) {
    std::string prefix = text.substr(0, cut);
    ParseResult r = ParseSpec(prefix);
    if (!r.ok()) {
      ExpectErrorsArePositioned(
          r, std::string(GetParam()) + " truncated at " +
                 std::to_string(cut));
    }
    // The structured view must agree with the error list.
    EXPECT_EQ(r.status().ok(), r.ok());
  }
}

TEST_P(SpecCorpusTest, CorruptionsNeverCrashAndErrorsArePositioned) {
  std::string text = Load();
  ASSERT_FALSE(text.empty());
  const char junk[] = {'\0', '}', '"', '\x7f'};
  size_t step = std::max<size_t>(1, text.size() / 37);
  for (size_t pos = 0; pos < text.size(); pos += step) {
    for (char c : junk) {
      std::string mutated = text;
      mutated[pos] = c;
      ParseResult r = ParseSpec(mutated);
      if (!r.ok()) {
        ExpectErrorsArePositioned(
            r, std::string(GetParam()) + " corrupted at " +
                   std::to_string(pos));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecCorpusTest,
                         ::testing::Values("e1_shopping.spec",
                                           "e2_motogp.spec",
                                           "e3_airline.spec",
                                           "e4_bookstore.spec"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           return name.substr(0, name.find('.'));
                         });

// --- parser error quality ---------------------------------------------------

constexpr char kTinySpec[] = R"(
app tiny
database member(name)
state active()
input button(x)
home HP
page HP {
  input button
  rule button(x) <- x = "go" | x = "stay"
  state +active() <- button("go")
  target HP <- button("stay")
}
)";

TEST(ParserRobustnessTest, UnknownPageAtomInPropertyIsPositioned) {
  ParseResult spec = ParseSpec(kTinySpec);
  ASSERT_TRUE(spec.ok()) << spec.ErrorText();
  ParseResult r = ParseProperties(
      "property bad expect true { F [at NOWHERE] }", spec.spec.get());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.ErrorText().find("unknown page 'NOWHERE'"), std::string::npos)
      << r.ErrorText();
  ExpectErrorsArePositioned(r, "unknown page atom");
}

TEST(ParserRobustnessTest, PageDeclaredAfterReferenceIsAccepted) {
  // Page atoms resolve after the whole spec is read, so forward
  // references inside rules stay legal.
  std::string text = std::string(kTinySpec) +
                     "property fwd expect true { F [at HP] }\n";
  ParseResult r = ParseSpec(text);
  EXPECT_TRUE(r.ok()) << r.ErrorText();
}

TEST(ParserRobustnessTest, UnboundPropertyVariableIsReported) {
  ParseResult spec = ParseSpec(kTinySpec);
  ASSERT_TRUE(spec.ok()) << spec.ErrorText();
  ParseResult r = ParseProperties(
      "property loose expect true { F [member(n)] }", spec.spec.get());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.ErrorText().find("free variable 'n'"), std::string::npos)
      << r.ErrorText();
  ExpectErrorsArePositioned(r, "unbound property variable");
}

TEST(ParserRobustnessTest, ParseResultStatusCarriesEveryError) {
  ParseResult r = ParseSpec("app broken\npage P {\n");
  ASSERT_FALSE(r.ok());
  Status s = r.status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), r.ErrorText());
}

// --- property/spec validation (Status construction paths) -------------------

TEST(ValidateSpecTest, ValidateStatusIsOkOnAGoodSpec) {
  ParseResult r = ParseSpec(kTinySpec);
  ASSERT_TRUE(r.ok()) << r.ErrorText();
  EXPECT_TRUE(r.spec->ValidateStatus().ok());
}

TEST(ValidateSpecTest, VerifierCreateRejectsNullSpec) {
  StatusOr<std::unique_ptr<Verifier>> v = Verifier::Create(nullptr);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateSpecTest, VerifierCreateAcceptsAGoodSpec) {
  ParseResult r = ParseSpec(kTinySpec);
  ASSERT_TRUE(r.ok()) << r.ErrorText();
  StatusOr<std::unique_ptr<Verifier>> v = Verifier::Create(r.spec.get());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_NE(v->get(), nullptr);
}

TEST(ValidatePropertyTest, RejectsPropertyWithNoBody) {
  ParseResult r = ParseSpec(kTinySpec);
  ASSERT_TRUE(r.ok()) << r.ErrorText();
  Property empty;
  empty.name = "empty";
  Status s = ValidatePropertyForSpec(*r.spec, empty);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no body"), std::string::npos);
}

TEST(ValidatePropertyTest, RejectsPropertyAgainstForeignSpec) {
  // Parse properties against a spec where everything resolves, then
  // validate them against a spec missing the page and the relation —
  // the cross-spec misuse Run must catch instead of aborting.
  ParseResult home = ParseSpec(kTinySpec);
  ASSERT_TRUE(home.ok()) << home.ErrorText();
  ParseResult props = ParseProperties(
      "property page_ref expect true { F [at HP] }\n"
      "property rel_ref expect true { forall n: F [member(n)] }",
      home.spec.get());
  ASSERT_TRUE(props.ok()) << props.ErrorText();

  constexpr char kOtherSpec[] = R"(
app other
database member(a, b)
input button(x)
home Z
page Z {
  input button
  rule button(x) <- x = "z"
  target Z <- button("z")
}
)";
  ParseResult other = ParseSpec(kOtherSpec);
  ASSERT_TRUE(other.ok()) << other.ErrorText();

  Status page_status =
      ValidatePropertyForSpec(*other.spec, props.properties[0].property);
  ASSERT_FALSE(page_status.ok());
  EXPECT_NE(page_status.message().find("unknown page 'HP'"),
            std::string::npos)
      << page_status.ToString();

  // `member` exists in the other spec with arity 2, not 1.
  Status arity_status =
      ValidatePropertyForSpec(*other.spec, props.properties[1].property);
  ASSERT_FALSE(arity_status.ok());
  EXPECT_NE(arity_status.message().find("does not match declared arity"),
            std::string::npos)
      << arity_status.ToString();
}

TEST(ValidatePropertyTest, RejectsUnboundFreeVariable) {
  ParseResult home = ParseSpec(kTinySpec);
  ASSERT_TRUE(home.ok()) << home.ErrorText();
  ParseResult props = ParseProperties(
      "property bound expect true { forall n: F [member(n)] }",
      home.spec.get());
  ASSERT_TRUE(props.ok()) << props.ErrorText();
  Property loose = props.properties[0].property;
  loose.forall_vars.clear();
  Status s = ValidatePropertyForSpec(*home.spec, loose);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("free variable 'n'"), std::string::npos);
}

TEST(ValidatePropertyTest, RunReturnsStatusInsteadOfAborting) {
  ParseResult home = ParseSpec(kTinySpec);
  ASSERT_TRUE(home.ok()) << home.ErrorText();
  ParseResult props = ParseProperties(
      "property ok_prop expect true { F [at HP] }", home.spec.get());
  ASSERT_TRUE(props.ok()) << props.ErrorText();
  Verifier verifier(home.spec.get());

  VerifyRequest good_request;
  good_request.property = &props.properties[0].property;
  StatusOr<VerifyResponse> good = verifier.Run(good_request);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->verdict, Verdict::kHolds);

  Property bad = props.properties[0].property;
  bad.body = nullptr;
  VerifyRequest bad_request;
  bad_request.property = &bad;
  StatusOr<VerifyResponse> rejected = verifier.Run(bad_request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

// --- governor units ---------------------------------------------------------

TEST(GovernorTest, ZeroDeadlineTripsOnFirstTick) {
  GovernorLimits limits;
  limits.deadline_seconds = 0;
  ResourceGovernor governor(limits);
  EXPECT_EQ(governor.Tick(), UnknownReason::kTimeout);
  EXPECT_EQ(governor.trip_reason(), UnknownReason::kTimeout);
  EXPECT_NE(governor.trip_message().find("timeout"), std::string::npos);
  // Tripping latches: later ticks keep reporting the first reason.
  EXPECT_EQ(governor.Tick(), UnknownReason::kTimeout);
}

TEST(GovernorTest, ExpansionBudgetChecksOnEveryTick) {
  GovernorLimits limits;
  limits.max_expansions = 5;
  ResourceGovernor governor(limits);
  int64_t expansions = 0;
  governor.WatchExpansions(&expansions);
  // Burn the first (polling) tick, then stay inside the budget off-stride.
  EXPECT_EQ(governor.Tick(), UnknownReason::kNone);
  for (expansions = 1; expansions < 5; ++expansions) {
    EXPECT_EQ(governor.Tick(), UnknownReason::kNone) << expansions;
  }
  // The budget check must not wait for a stride boundary.
  EXPECT_EQ(governor.Tick(), UnknownReason::kExpansionBudget);
  EXPECT_NE(governor.trip_message().find("budget"), std::string::npos);
}

TEST(GovernorTest, CancellationObservedWithinOneTick) {
  CancellationToken token;
  GovernorLimits limits;
  limits.cancellation = &token;
  ResourceGovernor governor(limits);
  EXPECT_EQ(governor.Tick(), UnknownReason::kNone);
  token.Cancel();
  EXPECT_EQ(governor.Tick(), UnknownReason::kCancelled);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  // Already tripped — reset does not un-trip the governor.
  EXPECT_EQ(governor.trip_reason(), UnknownReason::kCancelled);
}

TEST(GovernorTest, MemoryCeilingTripsOnPoll) {
  GovernorLimits limits;
  limits.max_memory_bytes = 1000;
  ResourceGovernor governor(limits);
  governor.ReportMemory(500);
  EXPECT_EQ(governor.Poll(), UnknownReason::kNone);
  governor.ReportMemory(2000);
  governor.ReportMemory(800);  // peak stays at the high-water mark
  EXPECT_EQ(governor.Poll(), UnknownReason::kNone)
      << "current estimate is below the ceiling";
  governor.ReportMemory(1500);
  EXPECT_EQ(governor.Poll(), UnknownReason::kMemoryLimit);
  GovernorReadings readings = governor.readings();
  EXPECT_EQ(readings.memory_bytes, 1500);
  EXPECT_EQ(readings.peak_memory_bytes, 2000);
  EXPECT_GT(readings.polls, 0);
}

TEST(GovernorTest, ReasonNamesAndStatusMapping) {
  EXPECT_STREQ(UnknownReasonName(UnknownReason::kNone), "none");
  EXPECT_STREQ(UnknownReasonName(UnknownReason::kTimeout), "timeout");
  EXPECT_STREQ(UnknownReasonName(UnknownReason::kMemoryLimit),
               "memory_limit");
  EXPECT_STREQ(UnknownReasonName(UnknownReason::kCandidateBudget),
               "candidate_budget");
  EXPECT_STREQ(UnknownReasonName(UnknownReason::kExpansionBudget),
               "expansion_budget");
  EXPECT_STREQ(UnknownReasonName(UnknownReason::kCancelled), "cancelled");
  EXPECT_STREQ(UnknownReasonName(UnknownReason::kRejectedCandidates),
               "rejected_candidates");

  EXPECT_TRUE(IsBudgetLimited(UnknownReason::kCandidateBudget));
  EXPECT_TRUE(IsBudgetLimited(UnknownReason::kExpansionBudget));
  EXPECT_FALSE(IsBudgetLimited(UnknownReason::kTimeout));
  EXPECT_FALSE(IsBudgetLimited(UnknownReason::kMemoryLimit));
  EXPECT_FALSE(IsBudgetLimited(UnknownReason::kCancelled));
  EXPECT_FALSE(IsBudgetLimited(UnknownReason::kNone));

  EXPECT_EQ(UnknownReasonToStatus(UnknownReason::kNone, "").code(),
            StatusCode::kOk);
  EXPECT_EQ(UnknownReasonToStatus(UnknownReason::kTimeout, "t").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(UnknownReasonToStatus(UnknownReason::kCancelled, "c").code(),
            StatusCode::kCancelled);
  EXPECT_EQ(
      UnknownReasonToStatus(UnknownReason::kCandidateBudget, "b").code(),
      StatusCode::kResourceExhausted);
}

// --- trie memory accounting -------------------------------------------------

TEST(TrieMemoryTest, ApproxBytesGrowsWithInsertsAndResetsOnClear) {
  VisitedTrie trie;
  int64_t baseline = trie.approx_bytes();
  EXPECT_GT(baseline, 0);
  int64_t previous = baseline;
  for (uint8_t i = 0; i < 32; ++i) {
    trie.Insert({i, static_cast<uint8_t>(i * 3), 7, i});
    EXPECT_GE(trie.approx_bytes(), previous);
    previous = trie.approx_bytes();
  }
  EXPECT_GT(trie.approx_bytes(), baseline);
  trie.Clear();
  EXPECT_EQ(trie.approx_bytes(), baseline);
}

// --- every UnknownReason, end to end ----------------------------------------

const Property* FindProperty(const AppBundle& bundle, const char* name) {
  for (const ParsedProperty& p : bundle.properties) {
    if (p.property.name == name) return &p.property;
  }
  return nullptr;
}

TEST(UnknownReasonE2eTest, DecidedResultsCarryNoReason) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p1 = FindProperty(e1, "P1");
  ASSERT_NE(p1, nullptr);
  VerifyResult r = RunVerify(verifier, *p1);
  ASSERT_EQ(r.verdict, Verdict::kHolds) << r.failure_reason;
  EXPECT_EQ(r.unknown_reason, UnknownReason::kNone);
  EXPECT_GT(r.stats.peak_memory_bytes, 0);
  EXPECT_GT(r.stats.governor_polls, 0);
}

TEST(UnknownReasonE2eTest, TimeoutReason) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  VerifyOptions options;
  options.timeout_seconds = 0;
  VerifyResult r =
      RunVerify(verifier, e1.properties[0].property, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kTimeout);
}

TEST(UnknownReasonE2eTest, DeadlineGranularityIsMilliseconds) {
  // A 50ms deadline on a property whose full (exhaustive) search runs for
  // tens of seconds must come back within a comfortable fraction of a
  // second: the strided governor poll may lag the deadline only by
  // kPollStride expansions.
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p5 = FindProperty(e1, "P5");
  ASSERT_NE(p5, nullptr);
  VerifyOptions options;
  options.exhaustive_existential = true;
  options.timeout_seconds = 0.05;
  auto start = std::chrono::steady_clock::now();
  VerifyResult r = RunVerify(verifier, *p5, options);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kTimeout);
  EXPECT_LT(elapsed, 1.0) << "deadline overshot: " << elapsed << "s";
}

TEST(UnknownReasonE2eTest, ExpansionBudgetReason) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  VerifyOptions options;
  options.max_expansions = 1;
  VerifyResult r =
      RunVerify(verifier, e1.properties[0].property, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kExpansionBudget);
  EXPECT_NE(r.failure_reason.find("budget"), std::string::npos);
}

TEST(UnknownReasonE2eTest, CandidateBudgetReason) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p1 = FindProperty(e1, "P1");
  ASSERT_NE(p1, nullptr);
  VerifyOptions options;
  options.max_candidates = 6;  // P1 needs 10 candidate tuples at page HP
  VerifyResult r = RunVerify(verifier, *p1, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kCandidateBudget);
}

TEST(UnknownReasonE2eTest, MemoryLimitReason) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p1 = FindProperty(e1, "P1");
  ASSERT_NE(p1, nullptr);
  VerifyOptions options;
  options.max_memory_bytes = 1024;  // below one search's trie footprint
  VerifyResult r = RunVerify(verifier, *p1, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kMemoryLimit);
  EXPECT_NE(r.failure_reason.find("memory"), std::string::npos);
  EXPECT_GT(r.stats.peak_memory_bytes, 1024);
}

TEST(UnknownReasonE2eTest, PreCancelledTokenShortCircuits) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  CancellationToken token;
  token.Cancel();
  VerifyOptions options;
  options.cancellation = &token;
  VerifyResult r =
      RunVerify(verifier, e1.properties[0].property, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kCancelled);
}

TEST(UnknownReasonE2eTest, MidSearchCancellationKeepsPartialStats) {
  // Cancel from inside the search (via the heartbeat callback, the same
  // vantage point a watchdog thread or signal handler has) and check the
  // result still carries the progress made so far.
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p5 = FindProperty(e1, "P5");
  ASSERT_NE(p5, nullptr);
  CancellationToken token;
  VerifyOptions options;
  options.exhaustive_existential = true;  // P5's search then runs for tens
                                          // of seconds uncancelled
  options.cancellation = &token;
  options.heartbeat_interval_seconds = 0;  // fire on every budget check
  options.heartbeat = [&token](const HeartbeatSnapshot& hb) {
    if (hb.num_expansions >= 200) token.Cancel();
  };
  VerifyResult r = RunVerify(verifier, *p5, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kCancelled);
  EXPECT_NE(r.failure_reason.find("cancelled"), std::string::npos);
  EXPECT_GE(r.stats.num_expansions, 200);
  EXPECT_GT(r.stats.peak_memory_bytes, 0);
}

// The non-input-bounded promo site (see tests/validate_test.cc): on
// `shut`, every candidate counterexample the deterministic search
// produces mixes inconsistent promo assumptions, so the validated loop
// rejects all of them and must downgrade its exhausted search honestly.
constexpr char kPromoSiteSpec[] = R"(
app promo_site
database promo(code)
state unlocked()
input button(x)
home HP
page HP {
  input button
  rule button(x) <- x = "enter" | x = "reload"
  state +unlocked() <- (exists c: promo(c)) & button("enter")
  target VP <- (exists c: promo(c)) & button("enter")
  target HP <- button("reload")
}
page VP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}
property shut expect false { G [!(at VP)] }
)";

TEST(UnknownReasonE2eTest, RejectedCandidatesReason) {
  ParseResult parsed = ParseSpec(kPromoSiteSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.ErrorText();
  EXPECT_FALSE(parsed.spec->CheckInputBoundedness().empty())
      << "the spec must be non-input-bounded for spurious candidates";
  Verifier verifier(parsed.spec.get());
  VerifyResult r = VerifyValidated(&verifier, parsed.spec.get(),
                                   parsed.properties[0].property);
  ASSERT_EQ(r.verdict, Verdict::kUnknown) << r.failure_reason;
  EXPECT_EQ(r.unknown_reason, UnknownReason::kRejectedCandidates);
  EXPECT_GT(r.stats.num_rejected_candidates, 0);
}

// --- retry ladder -----------------------------------------------------------

TEST(RetryLadderTest, DefaultLadderEscalates) {
  VerifyOptions base;
  base.max_candidates = 20;
  std::vector<RetryRung> ladder = DefaultLadder(base);
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0].name, "tight");
  EXPECT_EQ(ladder[1].name, "base");
  EXPECT_EQ(ladder[2].name, "exhaustive");
  EXPECT_LT(ladder[0].max_candidates, ladder[1].max_candidates);
  EXPECT_LT(ladder[1].max_candidates, ladder[2].max_candidates);
  EXPECT_GE(ladder[0].max_expansions, 0)
      << "the tight rung must cap expansions";
  EXPECT_EQ(ladder[2].max_expansions, -1);
  EXPECT_FALSE(ladder[0].exhaustive_existential);
  EXPECT_TRUE(ladder[2].exhaustive_existential);
}

TEST(RetryLadderTest, FlipsACandidateBudgetUnknownToDecided) {
  // The ISSUE's acceptance bar: a property that is kUnknown under the
  // base budgets must come back decided through the ladder. E1's P1
  // overflows the candidate budget at max_candidates=6 and holds once the
  // exhaustive rung doubles it.
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p1 = FindProperty(e1, "P1");
  ASSERT_NE(p1, nullptr);
  VerifyOptions base;
  base.max_candidates = 6;

  VerifyResult plain = RunVerify(verifier, *p1, base);
  ASSERT_EQ(plain.verdict, Verdict::kUnknown);
  ASSERT_EQ(plain.unknown_reason, UnknownReason::kCandidateBudget);

  VerifyRequest request;
  request.property = p1;
  request.options = base;
  request.retry.enabled = true;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const VerifyResponse& laddered = *response;
  EXPECT_EQ(laddered.verdict, Verdict::kHolds) << laddered.failure_reason;
  ASSERT_GE(laddered.decided_rung, 0);
  ASSERT_EQ(laddered.attempts.size(),
            static_cast<size_t>(laddered.decided_rung) + 1);
  // Every attempt before the deciding one failed for a budget-limited
  // reason — that is the only thing escalation is allowed to cure.
  for (int k = 0; k < laddered.decided_rung; ++k) {
    EXPECT_EQ(laddered.attempts[k].verdict, Verdict::kUnknown);
    EXPECT_TRUE(IsBudgetLimited(laddered.attempts[k].unknown_reason))
        << UnknownReasonName(laddered.attempts[k].unknown_reason);
  }
  const AttemptRecord& last = laddered.attempts.back();
  EXPECT_EQ(last.verdict, Verdict::kHolds);
  EXPECT_GT(last.budget_seconds, 0);
  // The attempt history serialises (for --stats-json).
  std::string json = laddered.AttemptsJson().Dump();
  EXPECT_NE(json.find("\"rung_name\""), std::string::npos);
}

TEST(RetryLadderTest, NonBudgetReasonsEndTheLadder) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p5 = FindProperty(e1, "P5");
  ASSERT_NE(p5, nullptr);
  VerifyOptions base;
  base.exhaustive_existential = true;
  VerifyRequest request;
  request.property = p5;
  request.options = base;
  request.retry.enabled = true;
  request.retry.total_budget_seconds = 0.1;  // every rung's slice times out
  StatusOr<VerifyResponse> response = verifier.Run(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kUnknown);
  EXPECT_EQ(response->decided_rung, -1);
  ASSERT_FALSE(response->attempts.empty());
  EXPECT_EQ(response->attempts.back().unknown_reason, UnknownReason::kTimeout);
  EXPECT_LT(response->attempts.size(), 3u)
      << "a timeout must stop the ladder before the last rung";
}

// A pre-cancelled token must end the ladder after a single attempt —
// more candidate budget cannot cure cancellation.
TEST(RetryLadderTest, CancellationEndsTheLadder) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  CancellationToken token;
  token.Cancel();
  VerifyRequest request;
  request.property = &e1.properties[0].property;
  request.options.cancellation = &token;
  request.retry.enabled = true;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kUnknown);
  EXPECT_EQ(response->unknown_reason, UnknownReason::kCancelled);
  EXPECT_EQ(response->attempts.size(), 1u);
}

}  // namespace
}  // namespace wave
