// End-to-end smoke tests: parse a tiny spec, verify properties with known
// verdicts, inspect counterexamples.
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

// A two-page toy site: the user may log in with a name; after login the
// site moves to the member page and records the session; logout returns
// home. The `welcome` action fires on successful login.
constexpr char kTinySpec[] = R"(
app tiny

database user(name)
state session(name)
input button(x)
inputconst uname
action welcome(name)

home HP

page HP {
  input button
  input uname
  rule button(x) <- x = "login" | x = "stay"
  state +session(n) <- uname(n) & user(n) & button("login")
  action welcome(n) <- uname(n) & user(n) & button("login")
  target MP <- exists n: uname(n) & user(n) & button("login")
  target HP <- button("stay")
}

page MP {
  input button
  rule button(x) <- x = "logout"
  state -session(n) <- session(n) & button("logout")
  target HP <- button("logout")
}

property p_home_start type T9 expect true {
  F [at HP]
}

property p_welcome_registered type T10 expect true {
  forall n:
  G [welcome(n) -> user(n)]
}

property p_session_after_welcome type T1 expect true {
  forall n:
  [welcome(n)] B [at MP & session(n)]
}

property p_never_member expect false {
  G [!(at MP)]
}

property p_welcome_never expect false {
  forall n:
  G [!welcome(n)]
}
)";

class TinySpecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    result_ = ParseSpec(kTinySpec);
    ASSERT_TRUE(result_.ok()) << result_.ErrorText();
    ASSERT_EQ(result_.properties.size(), 5u);
    verifier_ = std::make_unique<Verifier>(result_.spec.get());
  }

  const Property& property(const std::string& name) {
    for (const ParsedProperty& p : result_.properties) {
      if (p.property.name == name) return p.property;
    }
    ADD_FAILURE() << "no property " << name;
    static Property dummy;
    return dummy;
  }

  ParseResult result_;
  std::unique_ptr<Verifier> verifier_;
};

TEST_F(TinySpecTest, SpecParsesAndValidates) {
  EXPECT_EQ(result_.spec->num_pages(), 2);
  EXPECT_TRUE(result_.spec->CheckInputBoundedness().empty());
}

TEST_F(TinySpecTest, HomeIsReachedInitially) {
  VerifyResult r = RunVerify(*verifier_, property("p_home_start"));
  EXPECT_EQ(r.verdict, Verdict::kHolds) << r.failure_reason;
}

TEST_F(TinySpecTest, WelcomeOnlyForRegisteredUsers) {
  VerifyResult r = RunVerify(*verifier_, property("p_welcome_registered"));
  EXPECT_EQ(r.verdict, Verdict::kHolds) << r.failure_reason;
}

TEST_F(TinySpecTest, MemberPageIsReachable) {
  VerifyResult r = RunVerify(*verifier_, property("p_never_member"));
  ASSERT_EQ(r.verdict, Verdict::kViolated) << r.failure_reason;
  // The counterexample must actually enter MP somewhere.
  bool enters_mp = false;
  int mp = result_.spec->PageIndex("MP");
  for (const CounterexampleStep& s : r.stick) {
    if (s.config.page == mp) enters_mp = true;
  }
  for (const CounterexampleStep& s : r.candy) {
    if (s.config.page == mp) enters_mp = true;
  }
  EXPECT_TRUE(enters_mp) << r.CounterexampleString(*result_.spec);
}

TEST_F(TinySpecTest, WelcomeCanFire) {
  VerifyResult r = RunVerify(*verifier_, property("p_welcome_never"));
  EXPECT_EQ(r.verdict, Verdict::kViolated) << r.failure_reason;
}

TEST_F(TinySpecTest, SessionRecordedBeforeMemberPage) {
  VerifyResult r = RunVerify(*verifier_, property("p_session_after_welcome"));
  EXPECT_EQ(r.verdict, Verdict::kHolds) << r.failure_reason;
}

}  // namespace
}  // namespace wave
