// Verification sessions and persistent result caching (ISSUE 4).
//
// Covers the three layers the batch API stands on:
//  - VerifierSession memoization: the spec pre-pass runs once per
//    verifier, property plans and assignment contexts are reused across
//    calls, and the GPVW translation is shared between properties with
//    the same propositional skeleton;
//  - Verifier::RunBatch: verdicts and counterexamples identical to N
//    sequential Run calls on E1–E4, at jobs 1, 2 and 8, with
//    prepass_reuses == N-1 proving the shared pre-pass;
//  - ResultCache: fingerprint keys move exactly when a
//    semantics-affecting option (or the spec/property) changes, decided
//    verdicts round-trip through disk including counterexamples, and any
//    corrupt record degrades to a miss, never an error.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "common/fingerprint.h"
#include "obs/metrics.h"
#include "verifier/cache.h"
#include "verifier/session.h"
#include "verifier/validate.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

const Property* FindProperty(const AppBundle& bundle, const char* name) {
  for (const ParsedProperty& p : bundle.properties) {
    if (p.property.name == name) return &p.property;
  }
  return nullptr;
}

std::vector<Property> CatalogOf(const AppBundle& bundle) {
  std::vector<Property> catalog;
  for (const ParsedProperty& p : bundle.properties) {
    catalog.push_back(p.property);
  }
  return catalog;
}

/// A unique empty temp directory under the gtest-provided scratch root.
std::string FreshCacheDir(const char* tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "wave_session_test_" + tag + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

// --- session memoization -----------------------------------------------------

TEST(SessionTest, SpecPrepassRunsOncePerVerifier) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p1 = FindProperty(e1, "P1");
  ASSERT_NE(p1, nullptr);

  RunVerify(verifier, *p1);
  const SessionStats after_first = verifier.session().stats();
  EXPECT_EQ(after_first.spec_builds, 1);
  EXPECT_EQ(after_first.plan_builds, 1);
  EXPECT_EQ(after_first.context_builds, 1);

  // The repeat run rebuilds nothing: every layer is served from the
  // session.
  RunVerify(verifier, *p1);
  const SessionStats after_second = verifier.session().stats();
  EXPECT_EQ(after_second.spec_builds, 1);
  EXPECT_EQ(after_second.plan_builds, 1);
  EXPECT_EQ(after_second.context_builds, 1);
  EXPECT_EQ(after_second.plan_reuses, after_first.plan_reuses + 1);
  EXPECT_EQ(after_second.context_reuses, after_first.context_reuses + 1);
}

TEST(SessionTest, PrepassCacheKeysOnSemanticsAffectingOptions) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p1 = FindProperty(e1, "P1");
  ASSERT_NE(p1, nullptr);

  VerifyOptions base;
  RunVerify(verifier, *p1, base);
  int64_t builds = verifier.session().stats().context_builds;

  // Candidate-enumeration options key new pre-pass entries...
  VerifyOptions wider = base;
  wider.max_candidates = base.max_candidates * 2;
  RunVerify(verifier, *p1, wider);
  EXPECT_EQ(verifier.session().stats().context_builds, builds + 1);

  VerifyOptions exhaustive = base;
  exhaustive.exhaustive_existential = true;
  RunVerify(verifier, *p1, exhaustive);
  EXPECT_EQ(verifier.session().stats().context_builds, builds + 2);

  // ...while observability and scheduling options do not.
  VerifyOptions observed = base;
  obs::MetricsRegistry metrics;
  observed.metrics = &metrics;
  RunVerify(verifier, *p1, observed);
  EXPECT_EQ(verifier.session().stats().context_builds, builds + 2);
}

TEST(SessionTest, GpvwTranslationSharedAcrossSameSkeletonProperties) {
  // E1's suite repeats temporal shapes (several G[...] and F[...]
  // properties differ only in their FO components), so translating all 17
  // must hit the propositional-skeleton cache at least once.
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  for (const ParsedProperty& p : e1.properties) {
    verifier.session().GetPlan(p.property, nullptr);
  }
  const SessionStats stats = verifier.session().stats();
  EXPECT_EQ(stats.plan_builds, static_cast<int64_t>(e1.properties.size()));
  EXPECT_GT(stats.gpvw_hits, 0);
  EXPECT_LT(stats.gpvw_misses, static_cast<int64_t>(e1.properties.size()));
}

// --- batch API ---------------------------------------------------------------

struct BatchCase {
  const char* name;
  AppBundle (*build)();
  int jobs;
};

class BatchEquivalenceTest : public ::testing::TestWithParam<BatchCase> {};

// One RunBatch over the whole catalog must agree with N sequential Run
// calls: same verdicts, and violated properties carry a genuine
// counterexample. At jobs=1 the counterexample is bit-identical to the
// sequential one (same shard order, same first claim).
TEST_P(BatchEquivalenceTest, MatchesSequentialRuns) {
  // Two independent bundles: witness symbols are minted lazily into the
  // spec's symbol table, so sequential and batch runs must each start
  // from a fresh table for the jobs=1 counterexamples to be
  // byte-identical (same minting order ⇒ same names).
  AppBundle seq_bundle = GetParam().build();
  std::vector<Property> seq_catalog = CatalogOf(seq_bundle);
  std::vector<VerifyResult> sequential;
  {
    Verifier verifier(seq_bundle.spec.get());
    for (const Property& p : seq_catalog) {
      VerifyOptions options;
      options.timeout_seconds = 120;
      sequential.push_back(RunVerify(verifier, p, options));
    }
  }

  AppBundle bundle = GetParam().build();
  std::vector<Property> catalog = CatalogOf(bundle);
  Verifier verifier(bundle.spec.get());
  BatchRequest request;
  request.properties = &catalog;
  request.options.timeout_seconds = 120;
  request.jobs = GetParam().jobs;
  StatusOr<BatchResponse> batch = verifier.RunBatch(request);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->responses.size(), catalog.size());

  // Batch and sequential runs agree on every verdict, and every batch
  // counterexample replays genuinely. The witness *values* may differ:
  // the batch pays all prepasses before any search, so an existential
  // witness can be enumerated from a differently-populated symbol table
  // than in interleaved sequential runs — both choices are genuine.
  for (size_t i = 0; i < catalog.size(); ++i) {
    const VerifyResponse& b = batch->responses[i];
    SCOPED_TRACE(std::string(GetParam().name) + "/" + catalog[i].name +
                 " jobs=" + std::to_string(GetParam().jobs));
    EXPECT_EQ(b.verdict, sequential[i].verdict) << b.failure_reason;
    if (b.verdict == Verdict::kViolated) {
      ValidationResult validation =
          ValidateCounterexample(bundle.spec.get(), catalog[i], b);
      EXPECT_TRUE(validation.genuine) << validation.reason;
    }
  }

  // At jobs=1 the batch itself is deterministic: a second batch from an
  // identically fresh bundle reproduces every counterexample byte for
  // byte (same prepass order ⇒ same minting order ⇒ same names).
  if (GetParam().jobs == 1) {
    AppBundle rerun_bundle = GetParam().build();
    std::vector<Property> rerun_catalog = CatalogOf(rerun_bundle);
    Verifier rerun_verifier(rerun_bundle.spec.get());
    BatchRequest rerun_request;
    rerun_request.properties = &rerun_catalog;
    rerun_request.options.timeout_seconds = 120;
    rerun_request.jobs = 1;
    StatusOr<BatchResponse> rerun = rerun_verifier.RunBatch(rerun_request);
    ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
    for (size_t i = 0; i < catalog.size(); ++i) {
      SCOPED_TRACE(std::string(GetParam().name) + "/" + catalog[i].name +
                   " determinism");
      EXPECT_EQ(rerun->responses[i].verdict, batch->responses[i].verdict);
      if (batch->responses[i].verdict == Verdict::kViolated) {
        EXPECT_EQ(rerun->responses[i].CounterexampleString(*rerun_bundle.spec),
                  batch->responses[i].CounterexampleString(*bundle.spec));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, BatchEquivalenceTest,
    ::testing::Values(BatchCase{"E1", BuildE1, 1}, BatchCase{"E1", BuildE1, 2},
                      BatchCase{"E1", BuildE1, 8}, BatchCase{"E2", BuildE2, 1},
                      BatchCase{"E2", BuildE2, 2}, BatchCase{"E2", BuildE2, 8},
                      BatchCase{"E3", BuildE3, 1}, BatchCase{"E3", BuildE3, 2},
                      BatchCase{"E3", BuildE3, 8}, BatchCase{"E4", BuildE4, 1},
                      BatchCase{"E4", BuildE4, 2},
                      BatchCase{"E4", BuildE4, 8}),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      return std::string(info.param.name) + "_jobs" +
             std::to_string(info.param.jobs);
    });

// The ISSUE's acceptance bar: a cold batch of N properties pays the spec
// pre-pass exactly once. Proof: verify.prepass.spec_builds == 1 for the
// whole batch, and the per-property prepass_reuses sum to N-1 (properties
// 1..N-1 each reused the spec artifacts property 0 built).
TEST(BatchTest, ColdBatchPaysSpecPrepassOnce) {
  AppBundle e1 = BuildE1();
  std::vector<Property> catalog = CatalogOf(e1);
  Verifier verifier(e1.spec.get());

  obs::MetricsRegistry metrics;
  BatchRequest request;
  request.properties = &catalog;
  request.options.metrics = &metrics;
  StatusOr<BatchResponse> batch = verifier.RunBatch(request);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  EXPECT_EQ(metrics.counter("verify.prepass.spec_builds")->value(), 1);
  EXPECT_EQ(metrics.counter("verify.prepass.spec_reuses")->value(),
            static_cast<int64_t>(catalog.size()) - 1);
  int64_t reuses = 0;
  for (const VerifyResponse& r : batch->responses) {
    reuses += r.stats.prepass_reuses;
  }
  EXPECT_EQ(reuses, static_cast<int64_t>(catalog.size()) - 1);
  EXPECT_EQ(batch->merged.prepass_reuses, reuses);

  // A second batch on the warm session rebuilds nothing at all.
  obs::MetricsRegistry warm_metrics;
  request.options.metrics = &warm_metrics;
  StatusOr<BatchResponse> warm = verifier.RunBatch(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm_metrics.counter("verify.prepass.spec_builds")->value(), 0);
  EXPECT_EQ(warm_metrics.counter("verify.prepass.plan_builds")->value(), 0);
  EXPECT_EQ(warm_metrics.counter("verify.prepass.context_builds")->value(), 0);
  EXPECT_EQ(warm_metrics.counter("verify.prepass.plan_reuses")->value(),
            static_cast<int64_t>(catalog.size()));
  for (size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(warm->responses[i].verdict, batch->responses[i].verdict)
        << catalog[i].name;
  }
}

TEST(BatchTest, PropertyIndicesSelectASubsetInRequestOrder) {
  AppBundle e1 = BuildE1();
  std::vector<Property> catalog = CatalogOf(e1);
  Verifier verifier(e1.spec.get());

  BatchRequest request;
  request.properties = &catalog;
  request.property_indices = {2, 0};
  StatusOr<BatchResponse> batch = verifier.RunBatch(request);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->responses.size(), 2u);

  VerifyResult direct2 = RunVerify(verifier, catalog[2]);
  VerifyResult direct0 = RunVerify(verifier, catalog[0]);
  EXPECT_EQ(batch->responses[0].verdict, direct2.verdict);
  EXPECT_EQ(batch->responses[1].verdict, direct0.verdict);

  request.property_indices = {99};
  EXPECT_EQ(verifier.RunBatch(request).status().code(),
            StatusCode::kInvalidArgument);
  request.property_indices.clear();
  request.properties = nullptr;
  EXPECT_EQ(verifier.RunBatch(request).status().code(),
            StatusCode::kInvalidArgument);
}

// --- persistent result cache -------------------------------------------------

TEST(ResultCacheKeyTest, MovesExactlyWithSemanticsAffectingOptions) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p1 = FindProperty(e1, "P1");
  ASSERT_NE(p1, nullptr);
  const Fingerprint spec_fp = verifier.session().SpecFingerprint();
  const SymbolTable& symbols = e1.spec->symbols();

  VerifyOptions base;
  Fingerprint key = ResultCacheKey(spec_fp, *p1, symbols, base);

  // Each semantics-affecting flip moves the key...
  for (auto flip : {+[](VerifyOptions* o) { o->heuristic1 = false; },
                    +[](VerifyOptions* o) { o->heuristic2 = false; },
                    +[](VerifyOptions* o) { o->exhaustive_existential = true; },
                    +[](VerifyOptions* o) { o->max_candidates += 1; },
                    +[](VerifyOptions* o) { o->max_expansions = 12345; }}) {
    VerifyOptions flipped = base;
    flip(&flipped);
    EXPECT_NE(ResultCacheKey(spec_fp, *p1, symbols, flipped), key);
  }

  // ...while budgets and observability hooks do not (a timeout changes
  // whether the search finishes, never what a finished search decides).
  VerifyOptions cosmetic = base;
  cosmetic.timeout_seconds = 1;
  cosmetic.heartbeat_interval_seconds = 0.5;
  obs::MetricsRegistry metrics;
  cosmetic.metrics = &metrics;
  EXPECT_EQ(ResultCacheKey(spec_fp, *p1, symbols, cosmetic), key);

  // Distinct properties get distinct keys; renaming a property does not
  // (the fingerprint is name-blind, so a rename keeps its warm cache).
  const Property* p2 = FindProperty(e1, "P2");
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(ResultCacheKey(spec_fp, *p2, symbols, base), key);
  Property renamed = *p1;
  renamed.name = "completely_different_name";
  EXPECT_EQ(ResultCacheKey(spec_fp, renamed, symbols, base), key);
}

TEST(ResultCacheTest, BatchRoundTripsThroughDisk) {
  std::string dir = FreshCacheDir("roundtrip");
  AppBundle e1 = BuildE1();
  std::vector<Property> catalog = CatalogOf(e1);

  StatusOr<std::unique_ptr<ResultCache>> cache = ResultCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  BatchRequest request;
  request.properties = &catalog;
  request.cache = cache->get();
  Verifier cold_verifier(e1.spec.get());
  StatusOr<BatchResponse> cold = cold_verifier.RunBatch(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->merged.cache_hits, 0);
  EXPECT_EQ((*cache)->stores(), static_cast<int64_t>(catalog.size()));

  // A fresh verifier (cold session) over the same spec: every verdict is
  // served from disk — cache_hits == N and zero search work.
  AppBundle again = BuildE1();
  std::vector<Property> catalog2 = CatalogOf(again);
  StatusOr<std::unique_ptr<ResultCache>> reopened = ResultCache::Open(dir);
  ASSERT_TRUE(reopened.ok());
  Verifier warm_verifier(again.spec.get());
  obs::MetricsRegistry metrics;
  BatchRequest warm_request;
  warm_request.properties = &catalog2;
  warm_request.options.metrics = &metrics;
  warm_request.cache = reopened->get();
  StatusOr<BatchResponse> warm = warm_verifier.RunBatch(warm_request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->merged.cache_hits, static_cast<int64_t>(catalog2.size()));
  EXPECT_EQ(metrics.counter("verify.cache.hits")->value(),
            static_cast<int64_t>(catalog2.size()));
  EXPECT_EQ(metrics.counter("verify.cache.misses")->value(), 0);
  // A hit restores the *stored* stats (so warm->merged.num_expansions
  // reports the cold run's work); the proof that the warm run itself did
  // no search is the live metrics registry staying at zero expansions.
  EXPECT_EQ(metrics.counter("verify.expansions")->value(), 0)
      << "warm hits must skip search";

  for (size_t i = 0; i < catalog2.size(); ++i) {
    SCOPED_TRACE(catalog2[i].name);
    EXPECT_EQ(warm->responses[i].verdict, cold->responses[i].verdict);
    if (cold->responses[i].verdict == Verdict::kViolated) {
      // Counterexamples survive the disk round trip symbol-for-symbol
      // (they are serialized by name and re-interned on load).
      EXPECT_EQ(warm->responses[i].CounterexampleString(*again.spec),
                cold->responses[i].CounterexampleString(*e1.spec));
      ValidationResult validation = ValidateCounterexample(
          again.spec.get(), catalog2[i], warm->responses[i]);
      EXPECT_TRUE(validation.genuine) << validation.reason;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, SemanticsOptionFlipMissesWarmCache) {
  std::string dir = FreshCacheDir("optflip");
  AppBundle e1 = BuildE1();
  std::vector<Property> catalog = CatalogOf(e1);
  StatusOr<std::unique_ptr<ResultCache>> cache = ResultCache::Open(dir);
  ASSERT_TRUE(cache.ok());

  BatchRequest request;
  request.properties = &catalog;
  request.cache = cache->get();
  {
    Verifier verifier(e1.spec.get());
    ASSERT_TRUE(verifier.RunBatch(request).ok());
  }

  // Same spec, same properties, but exhaustive_existential changes what
  // the search explores: every lookup must miss and re-verify.
  Verifier verifier(e1.spec.get());
  request.options.exhaustive_existential = true;
  request.options.timeout_seconds = 120;
  StatusOr<BatchResponse> flipped = verifier.RunBatch(request);
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_EQ(flipped->merged.cache_hits, 0);
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, CorruptRecordsDegradeToMisses) {
  std::string dir = FreshCacheDir("corrupt");
  AppBundle e1 = BuildE1();
  std::vector<Property> catalog = CatalogOf(e1);
  StatusOr<std::unique_ptr<ResultCache>> cache = ResultCache::Open(dir);
  ASSERT_TRUE(cache.ok());

  BatchRequest request;
  request.properties = &catalog;
  request.cache = cache->get();
  {
    Verifier verifier(e1.spec.get());
    ASSERT_TRUE(verifier.RunBatch(request).ok());
  }

  // Vandalize every stored entry (format v2: framed records under
  // entries/) a different way: garbage bytes, truncation, valid JSON of
  // the wrong shape, empty file. Every variant breaks the CRC frame.
  std::vector<std::filesystem::path> records;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/entries")) {
    records.push_back(entry.path());
  }
  ASSERT_EQ(records.size(), catalog.size());
  for (size_t i = 0; i < records.size(); ++i) {
    std::ofstream out(records[i], std::ios::trunc);
    switch (i % 4) {
      case 0: out << "not json at all {{{"; break;
      case 1: out << "{\"format\": 2, \"verdict\": \"viol"; break;  // truncated
      case 2: out << "{\"format\": 99, \"verdict\": \"holds\"}"; break;
      case 3: break;  // empty file
    }
  }

  Verifier verifier(e1.spec.get());
  obs::MetricsRegistry metrics;
  request.options.metrics = &metrics;
  request.options.timeout_seconds = 120;
  StatusOr<BatchResponse> reread = verifier.RunBatch(request);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread->merged.cache_hits, 0);
  EXPECT_EQ(metrics.counter("verify.cache.misses")->value(),
            static_cast<int64_t>(catalog.size()));
  // Corruption is detected (CRC/frame), counted, and QUARANTINED — not
  // silently re-missed forever (ISSUE 7 satellite).
  EXPECT_EQ(metrics.counter("verify.cache.corrupt")->value(),
            static_cast<int64_t>(catalog.size()));
  EXPECT_EQ((*cache)->health().quarantined,
            static_cast<int64_t>(catalog.size()));
  int64_t quarantined_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/quarantine")) {
    (void)entry;
    ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, static_cast<int64_t>(catalog.size()));
  // The re-verified verdicts overwrite the vandalized records...
  EXPECT_EQ(metrics.counter("verify.cache.stores")->value(),
            static_cast<int64_t>(catalog.size()));

  // ...so a third run hits for everything again.
  AppBundle again = BuildE1();
  std::vector<Property> catalog2 = CatalogOf(again);
  Verifier healed_verifier(again.spec.get());
  BatchRequest healed_request;
  healed_request.properties = &catalog2;
  healed_request.cache = cache->get();
  StatusOr<BatchResponse> healed = healed_verifier.RunBatch(healed_request);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->merged.cache_hits, static_cast<int64_t>(catalog2.size()));
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, UndecidedVerdictsAreNeverStored) {
  std::string dir = FreshCacheDir("undecided");
  AppBundle e1 = BuildE1();
  StatusOr<std::unique_ptr<ResultCache>> cache = ResultCache::Open(dir);
  ASSERT_TRUE(cache.ok());

  VerifyResponse unknown;
  unknown.verdict = Verdict::kUnknown;
  Fingerprint key;
  Status status = (*cache)->Store(key, *e1.spec, unknown);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // And through the driver: a budget-tripped batch stores nothing.
  std::vector<Property> catalog = CatalogOf(e1);
  Verifier verifier(e1.spec.get());
  BatchRequest request;
  request.properties = &catalog;
  request.cache = cache->get();
  request.options.timeout_seconds = 0;  // everything trips immediately
  StatusOr<BatchResponse> tripped = verifier.RunBatch(request);
  ASSERT_TRUE(tripped.ok());
  for (const VerifyResponse& r : tripped->responses) {
    EXPECT_EQ(r.verdict, Verdict::kUnknown);
  }
  EXPECT_EQ((*cache)->stores(), 0);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wave
