// Crash-safe, multi-process ResultCache (ISSUE 7).
//
// The v2 on-disk contract under test (see verifier/cache.h and
// docs/ROBUSTNESS.md):
//  - a store publishes an immutable generation file and atomically
//    renames the manifest, so readers never observe a torn entry;
//  - Open heals crash debris (stray temp files, unpublished
//    generations, un-migrated or junk legacy records) and quarantines —
//    never silently deletes — anything corrupt;
//  - the writer lock is advisory flock with bounded jittered backoff:
//    contention is counted, bounded, and auto-released by the kernel
//    when the holder dies;
//  - N concurrent wave_verify processes hammering ONE cache directory
//    finish with identical verdicts, zero corrupt entries, no leftover
//    temp files and no deadlock (the ISSUE-7 satellite ctest case);
//  - the tools/wave_crash kill-point harness (SIGKILLed children at
//    randomized armed crash-points) passes a smoke budget.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "common/backoff.h"
#include "common/io.h"
#include "obs/json.h"
#include "verifier/cache.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "wave_cache_conc_" + tag + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

const Property* FindP1(const AppBundle& bundle) {
  for (const ParsedProperty& p : bundle.properties) {
    if (p.property.name == "P1") return &p.property;
  }
  return nullptr;
}

/// Runs E1/P1 once through `cache`; returns the verdict.
Verdict VerifyP1(const AppBundle& e1, ResultCache* cache) {
  Verifier verifier(e1.spec.get());
  VerifyRequest request;
  request.property = FindP1(e1);
  request.cache = cache;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  WAVE_CHECK_MSG(response.ok(), response.status().message());
  return response->verdict;
}

// --- on-disk format v2 -------------------------------------------------------

TEST(CacheFormatTest, StorePublishesAManifestedCleanLayout) {
  const std::string dir = FreshDir("layout");
  AppBundle e1 = BuildE1();
  StatusOr<std::unique_ptr<ResultCache>> cache = ResultCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  Verdict cold = VerifyP1(e1, cache->get());
  ASSERT_NE(cold, Verdict::kUnknown);
  EXPECT_EQ((*cache)->stores(), 1);

  CacheAudit audit = AuditCacheDir(dir);
  EXPECT_TRUE(audit.manifest_present);
  EXPECT_TRUE(audit.manifest_ok);
  EXPECT_EQ(audit.manifested_entries, 1);
  EXPECT_TRUE(audit.consistent());
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.quarantined_files, 0);

  // A second process (fresh handle) sees the published entry.
  StatusOr<std::unique_ptr<ResultCache>> peer = ResultCache::Open(dir);
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(VerifyP1(e1, peer->get()), cold);
  EXPECT_EQ((*peer)->hits(), 1);
  EXPECT_EQ((*peer)->stores(), 0);
}

TEST(CacheFormatTest, OpenHealsCrashDebrisAndQuarantinesJunk) {
  const std::string dir = FreshDir("heal");
  fs::create_directories(dir + "/entries");
  // Crash debris: interrupted atomic writes at both levels.
  std::ofstream(dir + "/MANIFEST.tmp") << "half a manifest";
  std::ofstream(dir + "/entries/aaaa.g3.json.tmp") << "half an entry";
  // A junk legacy-named record: migration must fail -> quarantine, not
  // silent deletion, not a crash.
  std::ofstream(dir + "/deadbeef.json") << "not a cache record at all";

  StatusOr<std::unique_ptr<ResultCache>> cache = ResultCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_GE((*cache)->health().recovered, 1);
  EXPECT_EQ((*cache)->health().corrupt, 1);
  EXPECT_EQ((*cache)->health().quarantined, 1);

  CacheAudit audit = AuditCacheDir(dir);
  EXPECT_TRUE(audit.consistent());
  EXPECT_EQ(audit.tmp_files, 0) << "temp debris must be removed";
  EXPECT_EQ(audit.legacy_files, 0);
  EXPECT_EQ(audit.quarantined_files, 1) << "the junk record, preserved";
  EXPECT_TRUE(fs::exists(dir + "/quarantine"));

  // The healed directory still works end to end.
  AppBundle e1 = BuildE1();
  EXPECT_NE(VerifyP1(e1, cache->get()), Verdict::kUnknown);
}

// --- advisory locking --------------------------------------------------------

TEST(CacheLockTest, ContentionIsBoundedCountedAndRecoverable) {
  const std::string dir = FreshDir("lock");
  CacheOptions options;
  options.lock_backoff.initial_seconds = 0.001;
  options.lock_backoff.max_delay_seconds = 0.005;
  options.lock_backoff.jitter = 0;
  options.lock_backoff.max_attempts = 4;
  options.lock_backoff.total_budget_seconds = 0.1;
  options.backoff_seed = 7;
  StatusOr<std::unique_ptr<ResultCache>> cache =
      ResultCache::Open(dir, options);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  // Hold the writer lock the way a peer process would (flock locks
  // attach to the open file description, so a second descriptor in this
  // process contends exactly like another process).
  int held = ::open((dir + "/.lock").c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(held, 0);
  ASSERT_EQ(::flock(held, LOCK_EX), 0);

  // The store inside this run cannot acquire the lock: it must back off
  // a bounded number of times, give up, and degrade (no stored entry) —
  // never deadlock and never corrupt anything.
  AppBundle e1 = BuildE1();
  Verdict contended = VerifyP1(e1, cache->get());
  ASSERT_NE(contended, Verdict::kUnknown);
  EXPECT_EQ((*cache)->stores(), 0) << "lock held: the store must give up";
  EXPECT_GE((*cache)->health().lock_waits, 1)
      << "bounded backoff must be counted";
  EXPECT_LE((*cache)->health().lock_waits, 4) << "and bounded";

  // Release: the next run stores and a fresh peer gets the hit.
  ASSERT_EQ(::flock(held, LOCK_UN), 0);
  ::close(held);
  EXPECT_EQ(VerifyP1(e1, cache->get()), contended);
  EXPECT_EQ((*cache)->stores(), 1);

  CacheAudit audit = AuditCacheDir(dir);
  EXPECT_TRUE(audit.consistent());
  EXPECT_TRUE(audit.clean());
}

// --- multi-process hammer (the ISSUE-7 satellite ctest case) -----------------

struct ChildProcess {
  pid_t pid = -1;
  std::string spec;
  std::string stats_path;
};

ChildProcess SpawnVerify(const std::string& spec, const std::string& cache_dir,
                         const std::string& stats_path) {
  ChildProcess child;
  child.spec = spec;
  child.stats_path = stats_path;
  std::vector<std::string> args = {WAVE_VERIFY_BIN,
                                   spec,
                                   "--cache-dir=" + cache_dir,
                                   "--stats-json=" + stats_path,
                                   "--timeout=120",
                                   "--keep-going"};
  child.pid = ::fork();
  if (child.pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  return child;
}

/// property -> verdict from a child's stats JSON.
std::optional<std::map<std::string, std::string>> ReadVerdicts(
    const std::string& stats_path) {
  StatusOr<std::string> text = ReadFileToString(stats_path);
  if (!text.ok()) return std::nullopt;
  std::optional<obs::Json> doc = obs::Json::Parse(*text);
  if (!doc.has_value()) return std::nullopt;
  const obs::Json* runs = doc->Find("runs");
  if (runs == nullptr || !runs->is_array()) return std::nullopt;
  std::map<std::string, std::string> verdicts;
  for (const obs::Json& run : runs->items()) {
    const obs::Json* property = run.Find("property");
    const obs::Json* verdict = run.Find("verdict");
    if (property == nullptr || verdict == nullptr) return std::nullopt;
    verdicts[property->AsString()] = verdict->AsString();
  }
  return verdicts;
}

TEST(CacheConcurrencyTest, ConcurrentVerifyProcessesShareOneCacheSafely) {
  const std::string dir = FreshDir("hammer");
  const std::string scratch = FreshDir("hammer_stats");
  fs::create_directories(scratch);
  const std::vector<std::string> specs = {
      std::string(WAVE_REPO_ROOT) + "/specs/e1_shopping.spec",
      std::string(WAVE_REPO_ROOT) + "/specs/e2_motogp.spec",
      std::string(WAVE_REPO_ROOT) + "/specs/e3_airline.spec",
      std::string(WAVE_REPO_ROOT) + "/specs/e4_bookstore.spec"};

  // Six children — every spec at least once, E1/E2 doubled so two
  // processes race on identical keys — all forked before any wait, all
  // sharing one cache directory.
  std::vector<ChildProcess> children;
  for (int i = 0; i < 6; ++i) {
    children.push_back(SpawnVerify(
        specs[i % specs.size()], dir,
        scratch + "/stats_" + std::to_string(i) + ".json"));
    ASSERT_GT(children.back().pid, 0);
  }
  for (const ChildProcess& child : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(child.pid, &status, 0), child.pid);
    ASSERT_TRUE(WIFEXITED(status)) << child.spec << ": killed by signal";
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << child.spec << ": some verdict undecided or load error";
  }

  // Identical verdicts: children that verified the same spec must agree
  // property by property.
  std::map<std::string, std::map<std::string, std::string>> by_spec;
  int64_t lock_waits = 0, corrupt = 0;
  for (const ChildProcess& child : children) {
    auto verdicts = ReadVerdicts(child.stats_path);
    ASSERT_TRUE(verdicts.has_value()) << child.stats_path;
    ASSERT_FALSE(verdicts->empty());
    auto [it, inserted] = by_spec.emplace(child.spec, *verdicts);
    if (!inserted) {
      EXPECT_EQ(it->second, *verdicts)
          << child.spec << ": concurrent runs disagreed";
    }
    std::optional<obs::Json> doc =
        obs::Json::Parse(*ReadFileToString(child.stats_path));
    ASSERT_TRUE(doc.has_value());
    const obs::Json* metrics = doc->Find("metrics");
    ASSERT_NE(metrics, nullptr) << "stats JSON must carry metrics";
    if (const obs::Json* w = metrics->Find("verify.cache.lock_waits")) {
      lock_waits += w->AsInt();
    }
    if (const obs::Json* c = metrics->Find("verify.cache.corrupt")) {
      corrupt += c->AsInt();
    }
  }
  EXPECT_EQ(corrupt, 0) << "no child may ever observe a corrupt entry";
  // lock_waits is contention-dependent; it only has to be well-formed
  // (non-negative), and the deterministic CacheLockTest above proves it
  // populates under real contention.
  EXPECT_GE(lock_waits, 0);

  // The shared directory: consistent, no leftover temp files, nothing
  // quarantined, and every property of every spec published.
  CacheAudit audit = AuditCacheDir(dir);
  EXPECT_TRUE(audit.consistent())
      << (audit.problems.empty() ? "" : audit.problems[0]);
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.tmp_files, 0);
  EXPECT_EQ(audit.quarantined_files, 0);
  int64_t total_properties = 0;
  for (const auto& [spec, verdicts] : by_spec) {
    total_properties += static_cast<int64_t>(verdicts.size());
  }
  EXPECT_EQ(audit.manifested_entries, total_properties);
}

// --- crash harness smoke -----------------------------------------------------

TEST(CacheConcurrencyTest, CrashHarnessSmokeBudgetPasses) {
  const std::string work = FreshDir("crash_smoke");
  std::string cmd = std::string(WAVE_CRASH_BIN) +
                    " --kills=3 --max-rounds=60 --seed=11 --quiet" +
                    " --work-dir=" + work + " 2>/dev/null";
  int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "wave_crash found an inconsistency or verdict divergence; re-run "
         "without --quiet: "
      << cmd;
}

}  // namespace
}  // namespace wave
