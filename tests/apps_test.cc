// Integration tests: the four experimental applications of Section 5
// verify with the verdicts the paper's experiments report (the expected
// verdicts are asserted in the embedded suites).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

struct AppCase {
  const char* name;
  AppBundle (*build)();
  int pages;
  int min_properties;
};

class AppsTest : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppsTest, SpecValidatesAndIsInputBounded) {
  AppBundle bundle = GetParam().build();
  EXPECT_EQ(bundle.spec->num_pages(), GetParam().pages);
  EXPECT_TRUE(bundle.spec->Validate().empty());
  std::vector<std::string> ib = bundle.spec->CheckInputBoundedness();
  EXPECT_TRUE(ib.empty()) << ib.front();
  EXPECT_GE(static_cast<int>(bundle.properties.size()),
            GetParam().min_properties);
}

TEST_P(AppsTest, AllPropertiesMatchExpectedVerdicts) {
  AppBundle bundle = GetParam().build();
  Verifier verifier(bundle.spec.get());
  for (const ParsedProperty& p : bundle.properties) {
    ASSERT_TRUE(p.has_expected) << p.property.name;
    VerifyOptions options;
    options.timeout_seconds = 120;
    VerifyResult r = RunVerify(verifier, p.property, options);
    ASSERT_NE(r.verdict, Verdict::kUnknown)
        << GetParam().name << "/" << p.property.name << ": "
        << r.failure_reason;
    EXPECT_EQ(r.verdict == Verdict::kHolds, p.expected)
        << GetParam().name << "/" << p.property.name;
    if (r.verdict == Verdict::kViolated) {
      EXPECT_FALSE(r.candy.empty())
          << "counterexamples are lassos; " << p.property.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppsTest,
    ::testing::Values(AppCase{"E1", BuildE1, 19, 17},
                      AppCase{"E2", BuildE2, 15, 13},
                      AppCase{"E3", BuildE3, 22, 14},
                      AppCase{"E4", BuildE4, 35, 12}),
    [](const ::testing::TestParamInfo<AppCase>& info) {
      return info.param.name;
    });

TEST(AppsStatsTest, E1MatchesPaperScale) {
  AppBundle e1 = BuildE1();
  const Catalog& catalog = e1.spec->catalog();
  EXPECT_EQ(catalog.IdsOfKind(RelationKind::kDatabase).size(), 4u);
  EXPECT_EQ(catalog.IdsOfKind(RelationKind::kState).size(), 10u);
  EXPECT_EQ(catalog.IdsOfKind(RelationKind::kInput).size(), 6u);
  EXPECT_EQ(catalog.IdsOfKind(RelationKind::kAction).size(), 5u);
  // Database arities 2..7 as in the paper.
  int max_arity = 0, min_arity = 99;
  for (RelationId id : catalog.IdsOfKind(RelationKind::kDatabase)) {
    max_arity = std::max(max_arity, catalog.schema(id).arity);
    min_arity = std::min(min_arity, catalog.schema(id).arity);
  }
  EXPECT_EQ(min_arity, 2);
  EXPECT_EQ(max_arity, 7);
}

TEST(AppsStatsTest, E2HasNoStateOrActions) {
  AppBundle e2 = BuildE2();
  const Catalog& catalog = e2.spec->catalog();
  EXPECT_EQ(catalog.IdsOfKind(RelationKind::kDatabase).size(), 7u);
  EXPECT_TRUE(catalog.IdsOfKind(RelationKind::kState).empty());
  EXPECT_TRUE(catalog.IdsOfKind(RelationKind::kAction).empty());
}

TEST(AppsStatsTest, E3E4MatchPaperScale) {
  AppBundle e3 = BuildE3();
  EXPECT_EQ(e3.spec->catalog().IdsOfKind(RelationKind::kDatabase).size(),
            12u);
  EXPECT_EQ(e3.spec->catalog().IdsOfKind(RelationKind::kState).size(), 11u);
  EXPECT_EQ(e3.spec->catalog().IdsOfKind(RelationKind::kAction).size(), 1u);
  AppBundle e4 = BuildE4();
  EXPECT_EQ(e4.spec->catalog().IdsOfKind(RelationKind::kDatabase).size(),
            22u);
  EXPECT_EQ(e4.spec->catalog().IdsOfKind(RelationKind::kState).size(), 7u);
  int max_arity = 0;
  for (RelationId id :
       e4.spec->catalog().IdsOfKind(RelationKind::kDatabase)) {
    max_arity = std::max(max_arity, e4.spec->catalog().schema(id).arity);
  }
  EXPECT_EQ(max_arity, 14);
}

}  // namespace
}  // namespace wave
