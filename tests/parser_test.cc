// Parser tests: lexing, spec parsing, property parsing, and diagnostics.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace wave {
namespace {

TEST(LexerTest, TokenizesPunctuationAndIdents) {
  std::vector<Token> tokens = Tokenize("rule R(x) <- x = \"a\" -> | & !");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kIdent, TokenKind::kLParen,
                TokenKind::kIdent, TokenKind::kRParen, TokenKind::kArrowLeft,
                TokenKind::kIdent, TokenKind::kEquals, TokenKind::kString,
                TokenKind::kArrowRight, TokenKind::kPipe, TokenKind::kAmp,
                TokenKind::kBang, TokenKind::kEnd}));
}

TEST(LexerTest, TracksLineAndColumn) {
  std::vector<Token> tokens = Tokenize("a\n  bb");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, CommentsAreSkipped) {
  std::vector<Token> tokens = Tokenize("a # comment til eol\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, UnterminatedStringIsAnError) {
  std::vector<Token> tokens = Tokenize("\"oops");
  // The error token is followed by a terminating kEnd so parsers always
  // see a finite stream.
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[tokens.size() - 2].kind, TokenKind::kError);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

constexpr char kMinimalSpec[] = R"(
app demo
database d(a, b)
state s(a)
input i(x)
inputconst t
action act(a)
home P1
page P1 {
  input i
  input t
  rule i(x) <- exists b: d(x, b)
  state +s(x) <- i(x)
  action act(x) <- i(x)
  target P2 <- exists x: i(x)
  target P1 <- true
}
page P2 {
  input i
  rule i(x) <- exists b: d(x, b)
  target P1 <- exists x: i(x)
}
property prop1 type T9 expect true { F [at P1] }
property prop2 expect false { forall v: G [!s(v)] }
)";

TEST(ParserTest, ParsesMinimalSpec) {
  ParseResult result = ParseSpec(kMinimalSpec);
  ASSERT_TRUE(result.ok()) << result.ErrorText();
  EXPECT_EQ(result.spec->name, "demo");
  EXPECT_EQ(result.spec->num_pages(), 2);
  EXPECT_EQ(result.spec->home_page(), result.spec->PageIndex("P1"));
  ASSERT_EQ(result.properties.size(), 2u);
  EXPECT_EQ(result.properties[0].property.name, "prop1");
  EXPECT_EQ(result.properties[0].property.type_code, "T9");
  EXPECT_TRUE(result.properties[0].expected);
  EXPECT_FALSE(result.properties[1].expected);
  EXPECT_EQ(result.properties[1].property.forall_vars,
            (std::vector<std::string>{"v"}));
  const PageSchema& p1 = result.spec->page(result.spec->PageIndex("P1"));
  EXPECT_EQ(p1.inputs.size(), 2u);
  EXPECT_EQ(p1.input_rules.size(), 1u);
  EXPECT_EQ(p1.state_rules.size(), 1u);
  EXPECT_EQ(p1.action_rules.size(), 1u);
  EXPECT_EQ(p1.target_rules.size(), 2u);
}

TEST(ParserTest, ForwardPageReferencesResolve) {
  // P1's target names P2 before P2 is declared — must resolve.
  ParseResult result = ParseSpec(kMinimalSpec);
  ASSERT_TRUE(result.ok());
  const PageSchema& p1 = result.spec->page(result.spec->PageIndex("P1"));
  EXPECT_EQ(p1.target_rules[0].target_page, result.spec->PageIndex("P2"));
}

TEST(ParserTest, ReportsUndeclaredRelation) {
  ParseResult result = ParseSpec(R"(
app x
home P
page P { target P <- nosuch("a") }
)");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.ErrorText().find("nosuch"), std::string::npos);
}

TEST(ParserTest, ReportsArityMismatch) {
  ParseResult result = ParseSpec(R"(
app x
database d(a, b)
home P
page P { target P <- exists q: d(q) }
)");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.ErrorText().find("arity"), std::string::npos);
}

TEST(ParserTest, ReportsUnknownTargetPage) {
  ParseResult result = ParseSpec(R"(
app x
input i(x)
home P
page P {
  input i
  rule i(x) <- x = "a"
  target QQQ <- exists x: i(x)
}
)");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.ErrorText().find("QQQ"), std::string::npos);
}

TEST(ParserTest, ReportsUnsafeRule) {
  // Head variable y unconstrained by the body.
  ParseResult result = ParseSpec(R"(
app x
database d(a)
state s(a, b)
input i(x)
home P
page P {
  input i
  rule i(x) <- d(x)
  state +s(x, y) <- i(x)
}
)");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.ErrorText().find("unconstrained"), std::string::npos);
}

TEST(ParserTest, ReportsOptionRuleReadingCurrentInput) {
  ParseResult result = ParseSpec(R"(
app x
input i(x)
input j(x)
home P
page P {
  input i
  input j
  rule i(x) <- j(x)
  rule j(x) <- x = "a"
}
)");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.ErrorText().find("prev"), std::string::npos);
}

TEST(ParserTest, PrevAtomsParse) {
  ParseResult result = ParseSpec(R"(
app x
input i(x)
home P
page P {
  input i
  rule i(x) <- prev i(x) | x = "seed"
  target P <- true
}
)");
  EXPECT_TRUE(result.ok()) << result.ErrorText();
}

TEST(ParserTest, RecoverySurfacesMultipleErrors) {
  ParseResult result = ParseSpec(R"(
app x
database d(a
state s(b)
home NOPAGE
)");
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.errors.size(), 2u);
}

TEST(ParserTest, ParsePropertiesAgainstExistingSpec) {
  ParseResult base = ParseSpec(kMinimalSpec);
  ASSERT_TRUE(base.ok());
  ParseResult extra = ParseProperties(
      "property later expect true { G ([at P1] -> X ([at P1] | [at P2])) }",
      base.spec.get());
  ASSERT_TRUE(extra.ok()) << extra.ErrorText();
  ASSERT_EQ(extra.properties.size(), 1u);
  EXPECT_EQ(extra.properties[0].property.name, "later");
}

TEST(ParserTest, ParseSingleFormula) {
  ParseResult base = ParseSpec(kMinimalSpec);
  ASSERT_TRUE(base.ok());
  std::vector<std::string> errors;
  FormulaPtr f = ParseFormula("exists x: i(x) & d(x, \"b\")",
                              base.spec.get(), &errors);
  ASSERT_NE(f, nullptr) << (errors.empty() ? "" : errors[0]);
  EXPECT_EQ(f->kind(), Formula::Kind::kExists);
  FormulaPtr bad = ParseFormula("exists x:", base.spec.get(), &errors);
  EXPECT_EQ(bad, nullptr);
  EXPECT_FALSE(errors.empty());
}

TEST(ParserTest, LtlPrecedenceAndTemporalOperators) {
  ParseResult base = ParseSpec(kMinimalSpec);
  ASSERT_TRUE(base.ok());
  ParseResult extra = ParseProperties(R"(
property mix expect false {
  [at P1] U [at P2] -> G (F [at P1] | X ! [at P2]) & ([s("a")] B [act("b")])
}
)",
                                      base.spec.get());
  ASSERT_TRUE(extra.ok()) << extra.ErrorText();
  const LtlPtr& body = extra.properties[0].property.body;
  // Top level must be the implication.
  EXPECT_EQ(body->kind(), LtlFormula::Kind::kImplies);
  EXPECT_EQ(body->left()->kind(), LtlFormula::Kind::kU);
}

TEST(ParserTest, AppsSpecsRoundTripThroughTheParser) {
  // The embedded app sources are themselves parser tests.
  for (const char* text :
       {E1SpecText(), E2SpecText(), E3SpecText(), E4SpecText()}) {
    ParseResult result = ParseSpec(text);
    EXPECT_TRUE(result.ok()) << result.ErrorText();
  }
}

}  // namespace
}  // namespace wave
