// Unit tests of the fuzzing library itself (ISSUE 5, src/testing):
//
//  - FuzzRng golden draw streams: the bounded mapping is pinned by
//    testing/rng.h (threshold rejection over std::mt19937_64), NOT by
//    std::uniform_int_distribution, whose mapping is
//    implementation-defined. These constants are the portability
//    contract — if they ever change, logged campaign seeds stop
//    replaying.
//  - Generator validity: every emitted case (and its renamed/reordered
//    metamorphic variants) parses, validates and is input-bounded, across
//    a seed sweep and across config corners.
//  - Shrinker correctness against synthetic predicates: minimized output
//    still satisfies the predicate, never grows, and a non-failing input
//    is returned untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "parser/parser.h"
#include "testing/oracle.h"
#include "testing/rng.h"
#include "testing/shrink.h"
#include "testing/spec_gen.h"

namespace wave {
namespace {

// --- FuzzRng ----------------------------------------------------------------

TEST(FuzzRngTest, BelowGoldenStreamIsPinned) {
  testing::FuzzRng rng(42);
  const uint64_t expected[] = {406, 824, 450, 662, 381, 428, 536, 144};
  for (uint64_t want : expected) EXPECT_EQ(rng.Below(1000), want);
}

TEST(FuzzRngTest, RangeGoldenStreamIsPinned) {
  testing::FuzzRng rng(7);
  const int expected[] = {-3, -3, 0, 3, -2, 0, 6, 10};
  for (int want : expected) EXPECT_EQ(rng.Range(-3, 11), want);
}

TEST(FuzzRngTest, ChanceGoldenStreamIsPinned) {
  testing::FuzzRng rng(99);
  const char* expected = "100000111001";
  for (const char* p = expected; *p != '\0'; ++p) {
    EXPECT_EQ(rng.Chance(1, 3), *p == '1');
  }
}

TEST(FuzzRngTest, SameSeedSameStream) {
  testing::FuzzRng a(123), b(123);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.Below(97), b.Below(97));
}

TEST(FuzzRngTest, BelowStaysInRangeAndHitsEveryResidue) {
  testing::FuzzRng rng(5);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 500; ++i) {
    uint64_t draw = rng.Below(7);
    ASSERT_LT(draw, 7u);
    ++seen[static_cast<int>(draw)];
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(FuzzRngTest, ShuffleIsAPermutation) {
  testing::FuzzRng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

// --- generator validity ----------------------------------------------------

void ExpectValid(const testing::FuzzCase& c, const std::string& label) {
  ParseResult parsed = ParseSpec(c.Text());
  ASSERT_TRUE(parsed.ok()) << label << " seed " << c.seed << ":\n"
                           << parsed.ErrorText() << "\n"
                           << c.Text();
  ASSERT_EQ(parsed.properties.size(), 1u) << label << " seed " << c.seed;
  EXPECT_TRUE(parsed.spec->Validate().empty())
      << label << " seed " << c.seed << ":\n"
      << parsed.spec->Validate()[0] << "\n"
      << c.Text();
  EXPECT_TRUE(parsed.spec->CheckInputBoundedness().empty())
      << label << " seed " << c.seed << ":\n"
      << parsed.spec->CheckInputBoundedness()[0] << "\n"
      << c.Text();
}

TEST(SpecGenTest, HundredSeedsAndVariantsAreValid) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    testing::FuzzCase c = testing::GenerateCase(seed);
    ExpectValid(c, "original");
    ExpectValid(testing::RenameCase(c), "renamed");
    ExpectValid(testing::ReorderCase(c, seed * 31), "reordered");
  }
}

TEST(SpecGenTest, ConfigCornersStayValid) {
  testing::GeneratorConfig corners[4];
  corners[0].max_pages = 2;
  corners[0].max_constants = 2;
  corners[0].allow_second_database = false;
  corners[0].allow_actions = false;
  corners[1].max_pages = 4;
  corners[1].max_constants = 4;
  corners[1].max_property_depth = 5;
  corners[2].max_forall_vars = 0;
  corners[3].max_property_depth = 1;
  for (const testing::GeneratorConfig& config : corners) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      ExpectValid(testing::GenerateCase(seed, config), "corner");
    }
  }
}

TEST(SpecGenTest, GenerationIsDeterministic) {
  for (uint64_t seed : {1ull, 17ull, 999ull}) {
    EXPECT_EQ(testing::GenerateCase(seed).Text(),
              testing::GenerateCase(seed).Text());
  }
}

TEST(SpecGenTest, SpecLineCountMatchesText) {
  testing::FuzzCase c = testing::GenerateCase(3);
  int newlines = 0;
  for (char ch : c.SpecText()) newlines += ch == '\n';
  EXPECT_EQ(c.SpecLineCount(), newlines);
  EXPECT_GT(c.SpecLineCount(), 5);
}

TEST(SpecGenTest, RenameChangesIdentifiersButNotStructure) {
  testing::FuzzCase c = testing::GenerateCase(4);
  testing::FuzzCase renamed = testing::RenameCase(c);
  EXPECT_NE(renamed.Text(), c.Text());
  EXPECT_EQ(renamed.pages.size(), c.pages.size());
  EXPECT_EQ(renamed.SpecLineCount(), c.SpecLineCount());
  // The rename map never touches quoted data constants.
  EXPECT_NE(renamed.Text().find("\"go\""), std::string::npos);
}

TEST(SpecGenTest, RenameLeavesLtlOperatorsAlone) {
  // Page `B` and the LTL "before" operator `B` share a letter; the
  // property rename is bracket-aware so only the `[...]` FO components
  // (and the property name) are rewritten. Sweep until a property using
  // the B operator at depth 0 shows up and check it survives.
  bool checked = false;
  for (uint64_t seed = 1; seed <= 100 && !checked; ++seed) {
    testing::FuzzCase c = testing::GenerateCase(seed);
    if (c.property.find(") B (") == std::string::npos) continue;
    testing::FuzzCase renamed = testing::RenameCase(c);
    EXPECT_NE(renamed.property.find(") B ("), std::string::npos)
        << renamed.property;
    checked = true;
  }
  EXPECT_TRUE(checked) << "no seed in 1..100 used the B operator";
}

TEST(SpecGenTest, ReorderPermutesButKeepsLineMultiset) {
  testing::FuzzCase c = testing::GenerateCase(6);
  testing::FuzzCase reordered = testing::ReorderCase(c, 1);
  EXPECT_EQ(reordered.SpecLineCount(), c.SpecLineCount());
  EXPECT_EQ(reordered.property, c.property);
  // `app` must stay the first declaration.
  ASSERT_FALSE(reordered.decls.empty());
  EXPECT_EQ(reordered.decls[0], c.decls[0]);
  std::vector<std::string> a = c.decls, b = reordered.decls;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// --- shrinker ---------------------------------------------------------------

TEST(ShrinkTest, MinimizesToThePredicateCore) {
  testing::FuzzCase c = testing::GenerateCase(8);
  ASSERT_GT(c.pages.size(), 1u);
  // Synthetic failure: "some page still has a rule mentioning s0". The
  // minimizer should strip everything else down to near the core.
  testing::FailurePredicate has_s0 = [](const testing::FuzzCase& candidate) {
    for (const testing::FuzzPage& page : candidate.pages) {
      for (const std::string& rule : page.rules) {
        if (rule.find("s0") != std::string::npos) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(has_s0(c)) << "seed 8 changed shape; pick another seed";
  testing::ShrinkResult shrunk = testing::Minimize(c, has_s0);
  EXPECT_TRUE(has_s0(shrunk.minimized));
  EXPECT_LT(shrunk.stats.final_lines, shrunk.stats.initial_lines);
  EXPECT_EQ(shrunk.minimized.pages.size(), 1u);
  // Exactly one rule line (the witness) should survive in that page.
  int rules_left = 0;
  for (const testing::FuzzPage& page : shrunk.minimized.pages) {
    rules_left += static_cast<int>(page.rules.size());
  }
  EXPECT_EQ(rules_left, 1);
  EXPECT_GT(shrunk.stats.probes, 0);
  EXPECT_GT(shrunk.stats.accepted, 0);
}

TEST(ShrinkTest, NonFailingInputIsReturnedUntouched) {
  testing::FuzzCase c = testing::GenerateCase(9);
  testing::ShrinkResult shrunk = testing::Minimize(
      c, [](const testing::FuzzCase&) { return false; });
  EXPECT_EQ(shrunk.minimized.Text(), c.Text());
  EXPECT_EQ(shrunk.stats.probes, 1);
  EXPECT_EQ(shrunk.stats.accepted, 0);
  EXPECT_EQ(shrunk.stats.initial_lines, shrunk.stats.final_lines);
}

TEST(ShrinkTest, OraclePredicateRequiresValidity) {
  // A predicate built from the oracle must reject a case that no longer
  // validates, so deletions that break references roll back. Hand the
  // predicate a case with a dangling target page and watch it refuse.
  testing::FuzzCase c = testing::GenerateCase(10);
  testing::FailurePredicate pred = testing::OracleDisagreementPredicate(
      testing::OracleOptions{}, testing::OracleAxis::kBaseline);
  testing::FuzzCase broken = c;
  broken.decls.clear();  // no app/database/state declarations at all
  EXPECT_FALSE(pred(broken));
  // And a valid, agreeing case is not "failing" either.
  EXPECT_FALSE(pred(c));
}

}  // namespace
}  // namespace wave
