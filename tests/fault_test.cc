// Deterministic fault injection (ISSUE 7).
//
// Three layers under test:
//  - the framework itself (common/fault.h): disarmed sites are no-ops,
//    fail-Nth and pinned-probability schedules are deterministic,
//    wildcard matching, fire caps, the WAVE_FAULT_SPEC plan grammar
//    round-trips, tallies export as fault.hits.* / fault.injected.*
//    metrics, and the curated site inventory stays in sync with the
//    source tree;
//  - the backoff/CRC plumbing the crash-safe cache stands on
//    (common/backoff.h, common/crc32.h): pinned jitter schedules,
//    attempt/budget exhaustion, and the CRC-32 known-answer vector;
//  - the acceptance sweep: EVERY registered site is reachable from a
//    real end-to-end verification and fires for every applicable
//    non-crash kind, with decided verdicts unchanged and the cache
//    directory still consistent afterwards — an injected fault may cost
//    a cache hit, never a wrong verdict or a crash. (Crash kinds are
//    exercised out-of-process by tools/wave_crash, driven from
//    tests/cache_concurrency_test.cc; the flip kind is oracle-level and
//    covered by tests/random_differential_test.cc.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "common/backoff.h"
#include "common/crc32.h"
#include "common/fault.h"
#include "obs/metrics.h"
#include "verifier/cache.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

namespace fs = std::filesystem;

fault::Plan OneRule(fault::Rule rule) {
  fault::Plan plan;
  plan.rules.push_back(std::move(rule));
  return plan;
}

// --- framework ---------------------------------------------------------------

TEST(FaultTest, DisarmedSiteIsNoop) {
  fault::Disarm();
  ASSERT_FALSE(fault::Armed());
  fault::Action a = WAVE_FAULT("some.site");
  EXPECT_FALSE(a.fire);
  EXPECT_FALSE(fault::IsError(a));
}

TEST(FaultTest, FailNthFiresExactlyOnThatHit) {
  fault::Rule rule;
  rule.site = "t.fail_nth";
  rule.kind = fault::Kind::kEio;
  rule.fail_nth = 3;
  fault::ScopedPlan armed(OneRule(rule));

  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(WAVE_FAULT("t.fail_nth").fire);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));

  std::vector<fault::SiteCount> counts = fault::Counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].site, "t.fail_nth");
  EXPECT_EQ(counts[0].hits, 6);
  EXPECT_EQ(counts[0].fires, 1);
  EXPECT_EQ(fault::TotalFires(), 1);
}

TEST(FaultTest, ProbabilityScheduleIsPinnedToTheSeed) {
  fault::Rule rule;
  rule.site = "t.prob";
  rule.kind = fault::Kind::kEio;
  rule.probability = 0.5;

  auto pattern = [&rule]() {
    fault::Plan plan = OneRule(rule);
    plan.seed = 1234;
    fault::ScopedPlan armed(std::move(plan));
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(WAVE_FAULT("t.prob").fire);
    return fires;
  };

  std::vector<bool> first = pattern();
  std::vector<bool> second = pattern();
  EXPECT_EQ(first, second) << "pinned-RNG schedule must replay identically";
  int fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  // p=0.5 over 64 draws: anything near half; the exact count is pinned
  // by the seed, the bounds just catch a broken RNG mapping.
  EXPECT_GT(fires, 16);
  EXPECT_LT(fires, 48);
}

TEST(FaultTest, WildcardMatchAndMaxFiresCap) {
  fault::Rule rule;
  rule.site = "cache.store.*";
  rule.kind = fault::Kind::kEio;
  rule.max_fires = 2;
  fault::ScopedPlan armed(OneRule(rule));

  EXPECT_TRUE(WAVE_FAULT("cache.store.entry").fire);
  EXPECT_FALSE(WAVE_FAULT("cache.lookup.manifest").fire) << "prefix mismatch";
  EXPECT_TRUE(WAVE_FAULT("cache.store.manifest").fire);
  EXPECT_FALSE(WAVE_FAULT("cache.store.publish").fire) << "max_fires=2 spent";
  EXPECT_EQ(fault::TotalFires(), 2);
}

TEST(FaultTest, ErrorStatusIsTaggedAndUnavailable) {
  fault::Action a;
  a.fire = true;
  a.kind = fault::Kind::kEnospc;
  Status s = fault::ToStatus(a, "write 'x'");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("fault-injected enospc"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("write 'x'"), std::string::npos) << s.message();
}

TEST(FaultTest, PlanSpecRoundTripsThroughParseAndFormat) {
  StatusOr<fault::Plan> plan = fault::ParsePlan(
      "io.read.data=eio@3;"
      "cache.lock.acquire=delay:p=0.25:max=2:delay=0.01;"
      "io.write.data=shortwrite:keep=0.75;"
      "seed=99");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->rules.size(), 3u);
  EXPECT_EQ(plan->seed, 99u);

  EXPECT_EQ(plan->rules[0].site, "io.read.data");
  EXPECT_EQ(plan->rules[0].kind, fault::Kind::kEio);
  EXPECT_EQ(plan->rules[0].fail_nth, 3);

  EXPECT_EQ(plan->rules[1].site, "cache.lock.acquire");
  EXPECT_EQ(plan->rules[1].kind, fault::Kind::kDelay);
  EXPECT_DOUBLE_EQ(plan->rules[1].probability, 0.25);
  EXPECT_EQ(plan->rules[1].max_fires, 2);
  EXPECT_DOUBLE_EQ(plan->rules[1].delay_seconds, 0.01);

  EXPECT_EQ(plan->rules[2].kind, fault::Kind::kShortWrite);
  EXPECT_DOUBLE_EQ(plan->rules[2].short_write_keep, 0.75);

  // Format -> parse must reproduce the same schedule.
  StatusOr<fault::Plan> again = fault::ParsePlan(fault::FormatPlan(*plan));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->rules.size(), plan->rules.size());
  EXPECT_EQ(again->seed, plan->seed);
  for (size_t i = 0; i < plan->rules.size(); ++i) {
    EXPECT_EQ(again->rules[i].site, plan->rules[i].site) << i;
    EXPECT_EQ(again->rules[i].kind, plan->rules[i].kind) << i;
    EXPECT_EQ(again->rules[i].fail_nth, plan->rules[i].fail_nth) << i;
    EXPECT_DOUBLE_EQ(again->rules[i].probability, plan->rules[i].probability)
        << i;
    EXPECT_EQ(again->rules[i].max_fires, plan->rules[i].max_fires) << i;
  }
}

TEST(FaultTest, MalformedPlanSpecsAreRejected) {
  EXPECT_FALSE(fault::ParsePlan("garbage").ok());
  EXPECT_FALSE(fault::ParsePlan("site=notakind").ok());
  EXPECT_FALSE(fault::ParsePlan("=eio").ok());
  EXPECT_FALSE(fault::ParsePlan("a=eio:wat=1").ok());
}

TEST(FaultTest, ArmFromEnvHonorsTheSpecVariable) {
  ::setenv("WAVE_FAULT_SPEC", "t.env=eio@1", 1);
  ASSERT_TRUE(fault::ArmFromEnv().ok());
  EXPECT_TRUE(fault::Armed());
  EXPECT_TRUE(WAVE_FAULT("t.env").fire);
  fault::Disarm();

  ::setenv("WAVE_FAULT_SPEC", "not a spec", 1);
  EXPECT_FALSE(fault::ArmFromEnv().ok());
  EXPECT_FALSE(fault::Armed());

  ::unsetenv("WAVE_FAULT_SPEC");
  EXPECT_TRUE(fault::ArmFromEnv().ok());
  EXPECT_FALSE(fault::Armed()) << "unset variable must stay disarmed";
}

TEST(FaultTest, TalliesExportAsMetrics) {
  fault::Rule rule;
  rule.site = "t.metrics";
  rule.kind = fault::Kind::kEio;
  rule.fail_nth = 2;
  fault::ScopedPlan armed(OneRule(rule));
  for (int i = 0; i < 3; ++i) WAVE_FAULT("t.metrics");

  obs::MetricsRegistry metrics;
  fault::ExportMetrics(&metrics);
  EXPECT_EQ(metrics.counter("fault.hits.t.metrics")->value(), 3);
  EXPECT_EQ(metrics.counter("fault.injected.t.metrics")->value(), 1);
}

TEST(FaultTest, InventoryIsWellFormedAndInSyncWithSources) {
  const std::vector<fault::SiteInfo>& sites = fault::KnownSites();
  ASSERT_FALSE(sites.empty());
  std::set<std::string> names;
  for (const fault::SiteInfo& info : sites) {
    ASSERT_NE(info.site, nullptr);
    ASSERT_NE(info.file, nullptr);
    EXPECT_TRUE(names.insert(info.site).second)
        << "duplicate inventory entry: " << info.site;
    EXPECT_NE(info.kinds_mask, 0u) << info.site;

    // The named source file must exist and actually contain the site
    // string — a renamed or deleted WAVE_FAULT() call must update the
    // inventory (and through it, docs/ROBUSTNESS.md).
    const std::string path = std::string(WAVE_REPO_ROOT) + "/" + info.file;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << info.site << ": missing file " << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find(std::string("\"") + info.site + "\""),
              std::string::npos)
        << info.site << " not found in " << path;
  }
}

// --- backoff + crc -----------------------------------------------------------

TEST(BackoffTest, ScheduleIsDeterministicPerSeed) {
  BackoffPolicy policy;
  auto schedule = [&policy](uint64_t seed) {
    Backoff b(policy, seed);
    std::vector<double> delays;
    while (std::optional<double> d = b.NextDelaySeconds()) {
      delays.push_back(*d);
    }
    return delays;
  };
  EXPECT_EQ(schedule(7), schedule(7));
  EXPECT_NE(schedule(7), schedule(8)) << "different seeds must jitter apart";
}

TEST(BackoffTest, UnjitteredGrowthSaturatesAndStops) {
  BackoffPolicy policy;
  policy.initial_seconds = 0.001;
  policy.multiplier = 2.0;
  policy.max_delay_seconds = 0.004;
  policy.jitter = 0;
  policy.max_attempts = 5;
  policy.total_budget_seconds = 0;  // unlimited

  Backoff b(policy, 42);
  std::vector<double> delays;
  while (std::optional<double> d = b.NextDelaySeconds()) delays.push_back(*d);
  ASSERT_EQ(delays.size(), 5u);
  EXPECT_DOUBLE_EQ(delays[0], 0.001);
  EXPECT_DOUBLE_EQ(delays[1], 0.002);
  EXPECT_DOUBLE_EQ(delays[2], 0.004);
  EXPECT_DOUBLE_EQ(delays[3], 0.004) << "growth saturates at max_delay";
  EXPECT_DOUBLE_EQ(delays[4], 0.004);
  EXPECT_EQ(b.attempts(), 5);
  EXPECT_FALSE(b.NextDelaySeconds().has_value()) << "attempts exhausted";
}

TEST(BackoffTest, BudgetClipsTheLastDelay) {
  BackoffPolicy policy;
  policy.initial_seconds = 1.0;
  policy.multiplier = 2.0;
  policy.max_delay_seconds = 10.0;
  policy.jitter = 0;
  policy.max_attempts = 0;  // unlimited
  policy.total_budget_seconds = 2.5;

  Backoff b(policy, 0);
  std::optional<double> d1 = b.NextDelaySeconds();
  std::optional<double> d2 = b.NextDelaySeconds();
  ASSERT_TRUE(d1.has_value());
  ASSERT_TRUE(d2.has_value());
  EXPECT_DOUBLE_EQ(*d1, 1.0);
  EXPECT_DOUBLE_EQ(*d2, 1.5) << "clipped so the total never exceeds 2.5";
  EXPECT_FALSE(b.NextDelaySeconds().has_value()) << "budget exhausted";
  EXPECT_DOUBLE_EQ(b.total_slept_seconds(), 2.5);
}

TEST(Crc32Test, KnownAnswerAndIncrementalUpdate) {
  // The CRC-32/ISO-HDLC check vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);

  uint32_t crc = 0;
  crc = Crc32Update(crc, "1234", 4);
  crc = Crc32Update(crc, "56789", 5);
  EXPECT_EQ(crc, 0xCBF43926u) << "chunked update must equal one-shot";
}

// --- end-to-end sweep --------------------------------------------------------

/// A unique empty temp directory per sweep run.
std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "wave_fault_test_" + tag + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

struct SweepOutcome {
  Verdict cold = Verdict::kUnknown;
  Verdict warm = Verdict::kUnknown;
  int64_t fires = 0;
  CacheAudit audit;
};

/// One cold-store + warm-lookup verification of E1/P1 under whatever
/// plan is armed: the flow that touches the io.*, cache.* and session.*
/// sites. Fresh Verifier per phase so the cold artifact builds run.
SweepOutcome RunCachedVerification(const std::string& dir, int jobs,
                                   bool starved_retry) {
  SweepOutcome out;
  AppBundle e1 = BuildE1();
  const Property* p1 = nullptr;
  for (const ParsedProperty& p : e1.properties) {
    if (p.property.name == "P1") p1 = &p.property;
  }
  WAVE_CHECK(p1 != nullptr);

  auto run_once = [&](Verdict* verdict) {
    StatusOr<std::unique_ptr<ResultCache>> cache = ResultCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    Verifier verifier(e1.spec.get());
    VerifyRequest request;
    request.property = p1;
    request.jobs = jobs;
    request.cache = cache->get();
    if (starved_retry) {
      // The tight and base rungs starve on candidates (E1/P1 needs 10),
      // the exhaustive rung (2x base = 10) decides — so the retry.*
      // sites run AND the ladder still ends on the reference verdict.
      request.options.max_candidates = 5;
      request.retry.enabled = true;
    }
    StatusOr<VerifyResponse> response = verifier.Run(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    *verdict = response->verdict;
  };

  run_once(&out.cold);
  run_once(&out.warm);
  out.fires = fault::TotalFires();
  out.audit = AuditCacheDir(dir);
  return out;
}

TEST(FaultSweepTest, EverySiteFiresEveryApplicableKindWithoutWrongVerdicts) {
  // Reference verdict from a clean, disarmed run.
  fault::Disarm();
  const std::string ref_dir = FreshDir("ref");
  SweepOutcome reference = RunCachedVerification(ref_dir, 1, false);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_NE(reference.cold, Verdict::kUnknown);
  ASSERT_EQ(reference.cold, reference.warm);

  const fault::Kind sweep_kinds[] = {fault::Kind::kEio, fault::Kind::kEnospc,
                                     fault::Kind::kShortWrite,
                                     fault::Kind::kDelay};
  int combinations = 0;
  for (const fault::SiteInfo& info : fault::KnownSites()) {
    const std::string site = info.site;
    if (site == "oracle.flip_verdict") continue;  // flip-only, oracle-level
    // Socket-surface sites need a live daemon + client; their
    // fire-and-degrade coverage lives in tests/serve_test.cc.
    if (site.rfind("serve.", 0) == 0) continue;
    for (fault::Kind kind : sweep_kinds) {
      if (!info.Supports(kind)) continue;
      ++combinations;
      SCOPED_TRACE(site + "=" + fault::KindName(kind));

      fault::Rule rule;
      rule.site = site;
      rule.kind = kind;
      rule.fail_nth = 1;
      rule.delay_seconds = 0.001;
      fault::ScopedPlan armed(OneRule(rule));

      const std::string dir = FreshDir("sweep");
      const bool starved = site.rfind("retry.", 0) == 0;
      const int jobs = site.rfind("worker.", 0) == 0 ? 2 : 1;
      if (site == "cache.quarantine.move") {
        // The quarantine path only runs against a corrupt entry: store
        // cleanly first, then flip bytes in the stored entry file.
        {
          fault::Disarm();
          SweepOutcome seed_run = RunCachedVerification(dir, 1, false);
          if (::testing::Test::HasFatalFailure()) return;
          ASSERT_EQ(seed_run.cold, reference.cold);
        }
        bool corrupted = false;
        for (const auto& f : fs::directory_iterator(dir + "/entries")) {
          std::ofstream out(f.path(), std::ios::trunc);
          out << "deadbeef, not a cache entry";
          corrupted = true;
        }
        ASSERT_TRUE(corrupted);
        fault::Arm(OneRule(rule));
      }

      SweepOutcome outcome = RunCachedVerification(dir, jobs, starved);
      if (::testing::Test::HasFatalFailure()) return;

      // Reachability: the armed rule must actually have fired.
      EXPECT_GE(outcome.fires, 1) << "site never reached";
      // Verdict safety: a fault may cost a cache hit or a retry, NEVER
      // a flipped verdict.
      EXPECT_EQ(outcome.cold, reference.cold);
      EXPECT_EQ(outcome.warm, reference.cold);
      // The directory survives every injection in a consistent state.
      EXPECT_TRUE(outcome.audit.consistent())
          << "problems: " << outcome.audit.problems.size() << " e.g. "
          << (outcome.audit.problems.empty() ? ""
                                             : outcome.audit.problems[0]);
    }
  }
  // The sweep must cover the whole inventory (crash kinds are proven by
  // wave_crash out-of-process; flip by the differential suite).
  EXPECT_GE(combinations, 30);
}

}  // namespace
}  // namespace wave
