// Keeps the on-disk `.spec` sources (specs/*.spec, the ones users run
// through examples/spec_doctor) byte-identical to the embedded app
// sources so the two can never drift apart.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "apps/apps.h"

namespace wave {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "<unreadable: " + path + ">";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct SpecFile {
  const char* path;
  const char* (*text)();
};

class SpecFilesTest : public ::testing::TestWithParam<SpecFile> {};

TEST_P(SpecFilesTest, FileMatchesEmbeddedSource) {
  // The test runs from the build tree; the sources live at the repo root.
  std::string repo_root = std::string(WAVE_REPO_ROOT);
  EXPECT_EQ(ReadFile(repo_root + "/" + GetParam().path), GetParam().text());
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, SpecFilesTest,
    ::testing::Values(SpecFile{"specs/e1_shopping.spec", E1SpecText},
                      SpecFile{"specs/e2_motogp.spec", E2SpecText},
                      SpecFile{"specs/e3_airline.spec", E3SpecText},
                      SpecFile{"specs/e4_bookstore.spec", E4SpecText}),
    [](const ::testing::TestParamInfo<SpecFile>& info) {
      std::string name = info.param.path;
      return name.substr(6, name.find('.') - 6);  // "e1_shopping"
    });

}  // namespace
}  // namespace wave
