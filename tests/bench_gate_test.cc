// The wave_bench regression gate, tested hermetically (ISSUE 6).
//
// Unit half: CompareRecords' threshold semantics on synthetic records —
// relative time gating, the sub-noise-floor exemption, exact counter
// matching, verdict flips, suite filtering and missing records.
//
// End-to-end half (ctest label: bench): RunBenchSuite("e1") against a
// self-recorded baseline must pass clean, and the same measurement under
// a synthetic `slowdown = 2` must trip the gate — the acceptance
// criterion `wave_bench --suite e1 --compare baseline` exits 0 on an
// unchanged tree and non-zero under a 2x slowdown, minus the process
// boundary.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wave_bench_lib.h"
#include "gtest/gtest.h"
#include "obs/json.h"

namespace wave::bench {
namespace {

obs::Json MakeRecord(const std::string& suite, const std::string& name,
                     double min_s, int64_t expansions,
                     const std::string& verdict = "holds") {
  obs::Json r = obs::Json::Object();
  r.Set("schema_version", obs::Json::Int(kBenchSchemaVersion));
  r.Set("suite", obs::Json::Str(suite));
  r.Set("name", obs::Json::Str(name));
  r.Set("min_s", obs::Json::Number(min_s));
  r.Set("median_s", obs::Json::Number(min_s * 1.05));
  r.Set("verdict", obs::Json::Str(verdict));
  obs::Json counters = obs::Json::Object();
  counters.Set("num_expansions", obs::Json::Int(expansions));
  r.Set("counters", std::move(counters));
  return r;
}

TEST(CompareRecordsTest, IdenticalRecordsPass) {
  std::vector<obs::Json> records = {MakeRecord("e1", "e1/P4", 0.5, 1000)};
  CompareResult result = CompareRecords(records, records, {});
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.compared_records, 1);
  EXPECT_FALSE(result.deltas.empty());
}

TEST(CompareRecordsTest, TimeRegressionAboveThresholdGates) {
  std::vector<obs::Json> baseline = {MakeRecord("e1", "e1/P4", 0.5, 1000)};
  // +50% stays under the default +75% limit; 2x trips it.
  std::vector<obs::Json> mild = {MakeRecord("e1", "e1/P4", 0.75, 1000)};
  EXPECT_TRUE(CompareRecords(baseline, mild, {}).ok());
  std::vector<obs::Json> bad = {MakeRecord("e1", "e1/P4", 1.0, 1000)};
  CompareResult result = CompareRecords(baseline, bad, {});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.Summary().find("e1/P4 min_s"), std::string::npos);
}

TEST(CompareRecordsTest, ThresholdIsConfigurable) {
  std::vector<obs::Json> baseline = {MakeRecord("e1", "e1/P4", 0.5, 1000)};
  std::vector<obs::Json> current = {MakeRecord("e1", "e1/P4", 0.75, 1000)};
  CompareThresholds tight;
  tight.time_frac = 0.25;  // +50% now regresses
  EXPECT_FALSE(CompareRecords(baseline, current, tight).ok());
  CompareThresholds loose;
  loose.time_frac = 3.0;
  std::vector<obs::Json> slow = {MakeRecord("e1", "e1/P4", 1.9, 1000)};
  EXPECT_TRUE(CompareRecords(baseline, slow, loose).ok());
}

TEST(CompareRecordsTest, SubNoiseFloorTimesAreNotGated) {
  // 1ms baseline is below the 5ms default floor: even a 100x time blowup
  // passes (counters still guard correctness).
  std::vector<obs::Json> baseline = {MakeRecord("e2", "e2/Q1", 0.001, 50)};
  std::vector<obs::Json> current = {MakeRecord("e2", "e2/Q1", 0.1, 50)};
  EXPECT_TRUE(CompareRecords(baseline, current, {}).ok());
  // ...unless the floor is lowered.
  CompareThresholds micro;
  micro.min_time_s = 0.0001;
  EXPECT_FALSE(CompareRecords(baseline, current, micro).ok());
}

TEST(CompareRecordsTest, CounterDriftIsExactByDefault) {
  std::vector<obs::Json> baseline = {MakeRecord("e1", "e1/P4", 0.5, 1000)};
  std::vector<obs::Json> drifted = {MakeRecord("e1", "e1/P4", 0.5, 1001)};
  CompareResult result = CompareRecords(baseline, drifted, {});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.Summary().find("counters.num_expansions"),
            std::string::npos);
  // A relaxed counter_frac admits the drift.
  CompareThresholds relaxed;
  relaxed.counter_frac = 0.01;
  EXPECT_TRUE(CompareRecords(baseline, drifted, relaxed).ok());
}

TEST(CompareRecordsTest, VerdictFlipAlwaysGates) {
  std::vector<obs::Json> baseline = {
      MakeRecord("e1", "e1/P2", 0.001, 50, "violated")};
  std::vector<obs::Json> flipped = {
      MakeRecord("e1", "e1/P2", 0.001, 50, "holds")};
  CompareResult result = CompareRecords(baseline, flipped, {});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.Summary().find("verdict"), std::string::npos);
}

TEST(CompareRecordsTest, OtherSuitesInBaselineAreIgnored) {
  // Gate an e1-only run against the committed all-suite baseline shape:
  // e2 records must neither compare nor count as missing.
  std::vector<obs::Json> baseline = {MakeRecord("e1", "e1/P4", 0.5, 1000),
                                     MakeRecord("e2", "e2/Q1", 0.001, 50)};
  std::vector<obs::Json> current = {MakeRecord("e1", "e1/P4", 0.5, 1000)};
  CompareResult result = CompareRecords(baseline, current, {});
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.compared_records, 1);
  EXPECT_TRUE(result.missing.empty());
}

TEST(CompareRecordsTest, DroppedRecordOfARunSuiteIsReportedMissing) {
  std::vector<obs::Json> baseline = {MakeRecord("e1", "e1/P4", 0.5, 1000),
                                     MakeRecord("e1", "e1/P5", 0.03, 200)};
  std::vector<obs::Json> current = {MakeRecord("e1", "e1/P4", 0.5, 1000)};
  CompareResult result = CompareRecords(baseline, current, {});
  EXPECT_TRUE(result.ok());  // missing is reported, not gated
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "e1/P5");
}

TEST(JsonLinesTest, RoundTripsThroughAFile) {
  std::string path = ::testing::TempDir() + "/bench_gate_lines.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%s\n\n%s\n",
                 MakeRecord("e1", "e1/P1", 0.1, 10).Dump().c_str(),
                 MakeRecord("e1", "e1/P2", 0.2, 20).Dump().c_str());
    std::fclose(f);
  }
  std::vector<obs::Json> records;
  std::string error;
  ASSERT_TRUE(LoadJsonLines(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);  // the blank line is tolerated
  EXPECT_EQ(records[1].Find("name")->AsString(), "e1/P2");
  EXPECT_EQ(records[0].Find("schema_version")->AsInt(), kBenchSchemaVersion);

  std::vector<obs::Json> bad;
  EXPECT_FALSE(LoadJsonLines(path + ".absent", &bad, &error));
  std::remove(path.c_str());
}

TEST(BenchSuiteTest, RegistryListsTheFourAppsPlusUnion) {
  std::vector<std::string> names = BenchSuiteNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_TRUE(IsBenchSuite("e1"));
  EXPECT_TRUE(IsBenchSuite("verify"));
  EXPECT_FALSE(IsBenchSuite("e9"));
  std::vector<obs::Json> records;
  std::string error;
  EXPECT_EQ(RunBenchSuite("e9", {}, &records, &error), -1);
  EXPECT_NE(error.find("e9"), std::string::npos);
}

TEST(BenchSuiteTest, EnvCaptureHasTheSchemaFields) {
  obs::Json env = BenchEnvJson();
  EXPECT_TRUE(env.Has("git_sha"));
  EXPECT_TRUE(env.Has("cpus"));
  EXPECT_TRUE(env.Has("os"));
  EXPECT_TRUE(env.Has("compiler"));
  EXPECT_GE(env.Find("cpus")->AsInt(), 1);
}

// The end-to-end gate: a self-recorded E1 baseline passes clean, and a
// synthetic 2x slowdown of the very same measurement trips it. Runs
// real verifications (seconds), hence the `bench` ctest label.
TEST(BenchGateE2eTest, SelfBaselinePassesAndSyntheticSlowdownGates) {
  BenchConfig config;
  config.warmup = 1;
  config.repeat = 2;
  std::vector<obs::Json> baseline;
  std::string error;
  ASSERT_EQ(RunBenchSuite("e1", config, &baseline, &error), 0) << error;
  ASSERT_FALSE(baseline.empty());
  for (const obs::Json& r : baseline) {
    EXPECT_EQ(r.Find("schema_version")->AsInt(), kBenchSchemaVersion);
    EXPECT_TRUE(r.Find("expected_ok")->AsBool());
  }

  // Unchanged tree: a fresh measurement passes against the baseline.
  // time_frac is widened to 1.5 here because both sides are live
  // single-machine measurements; the CLI default (0.75) gates committed
  // baselines where the reference is a min-of-3.
  CompareThresholds thresholds;
  thresholds.time_frac = 1.5;
  std::vector<obs::Json> rerun;
  ASSERT_EQ(RunBenchSuite("e1", config, &rerun, &error), 0) << error;
  CompareResult self_check = CompareRecords(baseline, rerun, thresholds);
  EXPECT_TRUE(self_check.ok()) << self_check.Summary();
  EXPECT_EQ(self_check.compared_records,
            static_cast<int>(baseline.size()));

  // Synthetic 2x slowdown vs the CLI-default thresholds (+75% limit):
  // at least the heavyweight properties (E1/P4 runs hundreds of ms)
  // clear the noise floor, and 2x > 1.75x must regress. Derived from
  // `baseline` itself (a pure data transform), so this half is
  // deterministic — exactly what the acceptance criterion pins.
  std::vector<obs::Json> slowed = baseline;
  for (obs::Json& r : slowed) {
    for (const char* metric : {"min_s", "median_s"}) {
      r.Set(metric, obs::Json::Number(r.Find(metric)->AsDouble() * 2));
    }
  }
  CompareResult gate = CompareRecords(baseline, slowed, CompareThresholds{});
  EXPECT_FALSE(gate.ok())
      << "a 2x slowdown must regress: " << gate.Summary();

  // And the BenchConfig::slowdown hook (what `wave_bench --slowdown=F`
  // uses) produces the same verdict on a live run: 4x dominates any
  // plausible run-to-run speedup against the default +75% limit.
  BenchConfig slow_config = config;
  slow_config.warmup = 0;
  slow_config.repeat = 1;
  slow_config.slowdown = 4.0;
  std::vector<obs::Json> slow_run;
  ASSERT_EQ(RunBenchSuite("e1", slow_config, &slow_run, &error), 0) << error;
  CompareResult live_gate =
      CompareRecords(baseline, slow_run, CompareThresholds{});
  EXPECT_FALSE(live_gate.ok())
      << "--slowdown must trip the gate: " << live_gate.Summary();
}

}  // namespace
}  // namespace wave::bench
