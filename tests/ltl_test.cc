// LTL-FO module tests: component extraction (maximal FO subformulas),
// propositional abstraction, and the property-pattern constructors of the
// paper's taxonomy.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "ltl/abstraction.h"
#include "ltl/ltl_formula.h"
#include "ltl/patterns.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

FormulaPtr Atom1(const char* relation, const char* var) {
  return Formula::Atom(relation, {Term::Var(var)});
}

TEST(AbstractionTest, MaximalFoComponentsAreSingleProps) {
  // A boolean combination with no temporal operator inside is ONE
  // component ("maximal FO subformulas ... not nested within any FO
  // subexpression").
  SymbolTable symbols;
  LtlPtr f = LtlFormula::G(LtlFormula::And(
      LtlFormula::Fo(Atom1("a", "x")),
      LtlFormula::Not(LtlFormula::Fo(Atom1("b", "x")))));
  Abstraction abs = AbstractLtl(f, symbols);
  EXPECT_EQ(abs.components.size(), 1u);
  // With a temporal operator between them, two components emerge.
  LtlPtr g = LtlFormula::U(LtlFormula::Fo(Atom1("a", "x")),
                           LtlFormula::Fo(Atom1("b", "x")));
  Abstraction abs2 = AbstractLtl(g, symbols);
  EXPECT_EQ(abs2.components.size(), 2u);
}

TEST(AbstractionTest, StructurallyEqualComponentsShareAProposition) {
  SymbolTable symbols;
  LtlPtr p = LtlFormula::Fo(Atom1("a", "x"));
  LtlPtr f = LtlFormula::U(p, LtlFormula::X(p));
  Abstraction abs = AbstractLtl(f, symbols);
  EXPECT_EQ(abs.components.size(), 1u);
}

TEST(AbstractionTest, LtlToFoRejectsTemporal) {
  LtlPtr temporal = LtlFormula::F(LtlFormula::Fo(Atom1("a", "x")));
  EXPECT_FALSE(temporal->ContainsTemporal() == false);
  LtlPtr boolean = LtlFormula::Or(LtlFormula::Fo(Atom1("a", "x")),
                                  LtlFormula::Fo(Atom1("b", "y")));
  FormulaPtr fo = LtlToFo(boolean);
  EXPECT_EQ(fo->kind(), Formula::Kind::kOr);
}

TEST(AbstractionTest, FreeVariablesAggregateAcrossComponents) {
  LtlPtr f = LtlFormula::U(LtlFormula::Fo(Atom1("a", "x")),
                           LtlFormula::Fo(Atom1("b", "y")));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"x", "y"}));
}

// --- pattern constructors ---------------------------------------------------

TEST(PatternsTest, ShapesMatchTheTaxonomy) {
  FormulaPtr p = Atom1("a", "x");
  FormulaPtr q = Atom1("b", "x");
  Property seq = Sequence({"s", "", {"x"}}, p, q);
  EXPECT_EQ(seq.type_code, "T1");
  EXPECT_EQ(seq.body->kind(), LtlFormula::Kind::kB);

  Property resp = Response({"r", "", {"x"}}, p, q);
  EXPECT_EQ(resp.type_code, "T4");
  ASSERT_EQ(resp.body->kind(), LtlFormula::Kind::kG);
  EXPECT_EQ(resp.body->body()->kind(), LtlFormula::Kind::kImplies);

  Property rec = Recurrence({"rec", "", {"x"}}, p);
  EXPECT_EQ(rec.type_code, "T6");
  ASSERT_EQ(rec.body->kind(), LtlFormula::Kind::kG);
  EXPECT_EQ(rec.body->body()->kind(), LtlFormula::Kind::kF);

  Property weak = WeakNonProgress({"w", "", {"x"}}, p);
  EXPECT_EQ(weak.type_code, "T8");
  ASSERT_EQ(weak.body->kind(), LtlFormula::Kind::kG);
  ASSERT_EQ(weak.body->body()->kind(), LtlFormula::Kind::kImplies);
  EXPECT_EQ(weak.body->body()->right()->kind(), LtlFormula::Kind::kX);
}

TEST(PatternsTest, BuiltPropertiesVerifyLikeDslOnes) {
  // Rebuild E1's P10 (correlation: paid -> cart) with the pattern API and
  // check the verifier agrees with the DSL-parsed version.
  AppBundle e1 = BuildE1();
  std::vector<std::string> errors;
  FormulaPtr paid = ParseFormula("paid(p, pr)", e1.spec.get(), &errors);
  FormulaPtr cart = ParseFormula("cart(p, pr)", e1.spec.get(), &errors);
  ASSERT_TRUE(errors.empty());
  Property built = Correlation({"P10_api", "", {"p", "pr"}}, paid, cart);
  Verifier verifier(e1.spec.get());
  VerifyResult r = RunVerify(verifier, built);
  EXPECT_EQ(r.verdict, Verdict::kHolds) << r.failure_reason;

  // And the falsified direction, via Guarantee.
  FormulaPtr logged =
      ParseFormula("loggedin()", e1.spec.get(), &errors);
  Property never = Guarantee({"always_login", "", {}}, logged);
  VerifyResult r2 = RunVerify(verifier, never);
  EXPECT_EQ(r2.verdict, Verdict::kViolated);
}

TEST(LtlFormulaTest, SubstituteConstantsHitsAllComponents) {
  SymbolTable symbols;
  SymbolId c = symbols.Intern("c");
  LtlPtr f = LtlFormula::U(LtlFormula::Fo(Atom1("a", "x")),
                           LtlFormula::G(LtlFormula::Fo(Atom1("b", "x"))));
  LtlPtr g = f->SubstituteConstants({{"x", c}});
  EXPECT_TRUE(g->FreeVariables().empty());
}

TEST(LtlFormulaTest, ToStringRoundTripsOperators) {
  SymbolTable symbols;
  LtlPtr f = LtlFormula::B(
      LtlFormula::Fo(Atom1("a", "x")),
      LtlFormula::X(LtlFormula::Fo(Formula::True())));
  std::string s = f->ToString(symbols);
  EXPECT_NE(s.find(" B "), std::string::npos);
  EXPECT_NE(s.find("X("), std::string::npos);
}

}  // namespace
}  // namespace wave
