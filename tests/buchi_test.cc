// Büchi construction tests: Figure 1's automaton shape, hand-picked
// formulas, and a randomized differential test of the GPVW translation
// against the reference lasso-word LTL evaluator.
#include <gtest/gtest.h>

#include <random>

#include "buchi/gpvw.h"
#include "buchi/lasso.h"
#include "buchi/prop_ltl.h"

namespace wave {
namespace {

LassoWord MakeLasso(const std::vector<std::vector<bool>>& prefix,
                    const std::vector<std::vector<bool>>& cycle) {
  LassoWord w;
  w.prefix = prefix;
  w.cycle = cycle;
  return w;
}

TEST(GpvwTest, Figure1UntilAutomatonShape) {
  // Figure 1 of the paper: the automaton for P1 U P2 has two states — a
  // start state with a P1 self-loop and a P2 edge to an accepting state
  // with a true self-loop.
  PropArena arena;
  PropId f = arena.U(arena.Prop(0), arena.Prop(1));
  BuchiAutomaton a = LtlToBuchi(&arena, f, 2);
  EXPECT_EQ(a.NumStates(), 2);
  int accepting_count = 0;
  for (int s = 0; s < a.NumStates(); ++s) {
    if (a.accepting[s]) ++accepting_count;
  }
  EXPECT_EQ(accepting_count, 1);
  EXPECT_FALSE(a.accepting[a.start]);
  // Start: P1 self-loop + P2 edge to the accepting state.
  ASSERT_EQ(a.adj[a.start].size(), 2u);
  // Accepting: unguarded self-loop.
  int acc = a.accepting[0] ? 0 : 1;
  ASSERT_EQ(a.adj[acc].size(), 1u);
  EXPECT_EQ(a.adj[acc][0].to, acc);
  EXPECT_TRUE(a.adj[acc][0].guard.empty());
}

TEST(GpvwTest, UntilAcceptsOnlyMatchingWords) {
  PropArena arena;
  PropId f = arena.U(arena.Prop(0), arena.Prop(1));
  BuchiAutomaton a = LtlToBuchi(&arena, f, 2);
  // P1 P1 P2 then anything: accepted.
  EXPECT_TRUE(AcceptsLasso(
      a, MakeLasso({{true, false}, {true, false}, {false, true}},
                   {{false, false}})));
  // P1 forever, P2 never: rejected.
  EXPECT_FALSE(AcceptsLasso(a, MakeLasso({}, {{true, false}})));
  // P1 gap before P2: rejected.
  EXPECT_FALSE(AcceptsLasso(
      a, MakeLasso({{false, false}}, {{false, true}})));
}

TEST(GpvwTest, GloballyAutomaton) {
  PropArena arena;
  PropId f = arena.G(arena.Prop(0));
  BuchiAutomaton a = LtlToBuchi(&arena, f, 1);
  EXPECT_TRUE(AcceptsLasso(a, MakeLasso({}, {{true}})));
  EXPECT_FALSE(AcceptsLasso(a, MakeLasso({{true}}, {{false}})));
  EXPECT_FALSE(AcceptsLasso(a, MakeLasso({{false}}, {{true}})));
}

TEST(GpvwTest, FalseHasEmptyLanguage) {
  PropArena arena;
  BuchiAutomaton a = LtlToBuchi(&arena, arena.False(), 1);
  EXPECT_TRUE(a.IsEmptyLanguage());
  // G p & F !p is also unsatisfiable.
  PropId f = arena.And(arena.G(arena.Prop(0)),
                       arena.F(arena.Not(arena.Prop(0))));
  BuchiAutomaton b = LtlToBuchi(&arena, f, 1);
  EXPECT_TRUE(b.IsEmptyLanguage());
}

TEST(GpvwTest, BeforeOperatorSemantics) {
  // p B q: q never holds, or p holds strictly before the first q.
  PropArena arena;
  PropId f = arena.B(arena.Prop(0), arena.Prop(1));
  BuchiAutomaton a = LtlToBuchi(&arena, f, 2);
  // q never: accepted.
  EXPECT_TRUE(AcceptsLasso(a, MakeLasso({}, {{false, false}})));
  // p at 0, q at 1: accepted.
  EXPECT_TRUE(AcceptsLasso(
      a, MakeLasso({{true, false}, {false, true}}, {{false, false}})));
  // q at 0 with no earlier p: rejected.
  EXPECT_FALSE(AcceptsLasso(
      a, MakeLasso({{false, true}}, {{false, false}})));
  // p and q simultaneously at 0 (p not strictly before): rejected.
  EXPECT_FALSE(AcceptsLasso(a, MakeLasso({{true, true}}, {{false, false}})));
}

// --- randomized differential test -------------------------------------------

/// Builds a random LTL formula over `num_props` propositions.
PropId RandomFormula(PropArena* arena, std::mt19937* rng, int depth,
                     int num_props) {
  std::uniform_int_distribution<int> kind_dist(0, depth <= 0 ? 2 : 10);
  std::uniform_int_distribution<int> prop_dist(0, num_props - 1);
  switch (kind_dist(*rng)) {
    case 0:
      return arena->Prop(prop_dist(*rng));
    case 1:
      return arena->True();
    case 2:
      return arena->Not(arena->Prop(prop_dist(*rng)));
    case 3:
      return arena->Not(RandomFormula(arena, rng, depth - 1, num_props));
    case 4:
      return arena->And(RandomFormula(arena, rng, depth - 1, num_props),
                        RandomFormula(arena, rng, depth - 1, num_props));
    case 5:
      return arena->Or(RandomFormula(arena, rng, depth - 1, num_props),
                       RandomFormula(arena, rng, depth - 1, num_props));
    case 6:
      return arena->X(RandomFormula(arena, rng, depth - 1, num_props));
    case 7:
      return arena->U(RandomFormula(arena, rng, depth - 1, num_props),
                      RandomFormula(arena, rng, depth - 1, num_props));
    case 8:
      return arena->G(RandomFormula(arena, rng, depth - 1, num_props));
    case 9:
      return arena->F(RandomFormula(arena, rng, depth - 1, num_props));
    default:
      return arena->B(RandomFormula(arena, rng, depth - 1, num_props),
                      RandomFormula(arena, rng, depth - 1, num_props));
  }
}

std::vector<bool> RandomLetter(std::mt19937* rng, int num_props) {
  std::vector<bool> letter(num_props);
  for (int p = 0; p < num_props; ++p) letter[p] = (*rng)() & 1;
  return letter;
}

class GpvwDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(GpvwDifferentialTest, MatchesReferenceSemanticsOnRandomLassos) {
  std::mt19937 rng(GetParam());
  constexpr int kNumProps = 2;
  PropArena arena;
  PropId f = RandomFormula(&arena, &rng, 3, kNumProps);
  BuchiAutomaton a = LtlToBuchi(&arena, f, kNumProps);
  std::uniform_int_distribution<int> len_dist(0, 3);
  std::uniform_int_distribution<int> cycle_dist(1, 3);
  for (int w = 0; w < 40; ++w) {
    LassoWord word;
    int prefix_len = len_dist(rng), cycle_len = cycle_dist(rng);
    for (int i = 0; i < prefix_len; ++i) {
      word.prefix.push_back(RandomLetter(&rng, kNumProps));
    }
    for (int i = 0; i < cycle_len; ++i) {
      word.cycle.push_back(RandomLetter(&rng, kNumProps));
    }
    bool semantic = EvalLtlOnLasso(&arena, f, word);
    bool automaton = AcceptsLasso(a, word);
    ASSERT_EQ(semantic, automaton)
        << "formula: " << arena.ToString(f, nullptr) << " word prefix "
        << prefix_len << " cycle " << cycle_len << " trial " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpvwDifferentialTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace wave
