// Counterexample-validation tests (the incomplete-verifier mode of paper
// Section 7): every violation WAVE reports on the example apps must replay
// as a genuine run over a concrete database.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "parser/parser.h"
#include "verifier/validate.h"  // IWYU pragma: keep
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

void ValidateAllViolations(AppBundle* bundle, const char* app) {
  Verifier verifier(bundle->spec.get());
  int violations = 0;
  for (const ParsedProperty& p : bundle->properties) {
    VerifyOptions options;
    options.timeout_seconds = 120;
    VerifyResult r = RunVerify(verifier, p.property, options);
    if (r.verdict != Verdict::kViolated) continue;
    ++violations;
    ValidationResult v =
        ValidateCounterexample(bundle->spec.get(), p.property, r);
    EXPECT_TRUE(v.genuine)
        << app << "/" << p.property.name << ": " << v.reason;
    EXPECT_GE(v.database.TupleCount(), 0);
  }
  EXPECT_GT(violations, 0) << app << " suite has no violated properties?";
}

TEST(ValidateTest, E1ViolationsAreGenuine) {
  AppBundle e1 = BuildE1();
  ValidateAllViolations(&e1, "E1");
}

TEST(ValidateTest, E2ViolationsAreGenuine) {
  AppBundle e2 = BuildE2();
  ValidateAllViolations(&e2, "E2");
}

TEST(ValidateTest, E3ViolationsAreGenuine) {
  AppBundle e3 = BuildE3();
  ValidateAllViolations(&e3, "E3");
}

TEST(ValidateTest, E4ViolationsAreGenuine) {
  AppBundle e4 = BuildE4();
  ValidateAllViolations(&e4, "E4");
}

TEST(ValidateTest, RejectsNonViolations) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  VerifyResult r = RunVerify(verifier, e1.properties[0].property);  // P1, holds
  ASSERT_EQ(r.verdict, Verdict::kHolds);
  ValidationResult v =
      ValidateCounterexample(e1.spec.get(), e1.properties[0].property, r);
  EXPECT_FALSE(v.genuine);
}

TEST(ValidateTest, WitnessBindingIsRecorded) {
  AppBundle e1 = BuildE1();
  Verifier verifier(e1.spec.get());
  const Property* p6 = nullptr;
  for (const ParsedProperty& p : e1.properties) {
    if (p.property.name == "P6") p6 = &p.property;
  }
  ASSERT_NE(p6, nullptr);
  VerifyResult r = RunVerify(verifier, *p6);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  // P6 quantifies over one variable (the registered-but-never-logged-in
  // user); its witness must be bound.
  EXPECT_EQ(r.witness_binding.size(), 1u);
  EXPECT_TRUE(r.witness_binding.count("n") > 0);
}

// The non-input-bounded promo site from examples/incomplete_mode.cpp.
constexpr char kPromoSite[] = R"(
app promo_site
database promo(code)
state unlocked()
input button(x)
home HP
page HP {
  input button
  rule button(x) <- x = "enter" | x = "reload"
  state +unlocked() <- (exists c: promo(c)) & button("enter")
  target VP <- (exists c: promo(c)) & button("enter")
  target HP <- button("reload")
}
page VP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}
property opens expect false { F [at VP] }
property shut expect false { G [!(at VP)] }
)";

TEST(IncompleteModeTest, GenuineCandidatesAreAccepted) {
  ParseResult parsed = ParseSpec(kPromoSite);
  ASSERT_TRUE(parsed.ok()) << parsed.ErrorText();
  EXPECT_FALSE(parsed.spec->CheckInputBoundedness().empty());
  Verifier verifier(parsed.spec.get());
  VerifyResult r = VerifyValidated(&verifier, parsed.spec.get(),
                                   parsed.properties[0].property);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.stats.num_rejected_candidates, 0);
  ValidationResult v = ValidateCounterexample(
      parsed.spec.get(), parsed.properties[0].property, r);
  EXPECT_TRUE(v.genuine) << v.reason;
}

TEST(IncompleteModeTest, SpuriousCandidatesAreRejectedNotReported) {
  ParseResult parsed = ParseSpec(kPromoSite);
  ASSERT_TRUE(parsed.ok()) << parsed.ErrorText();
  Verifier verifier(parsed.spec.get());
  // Raw search: the first candidate mixes inconsistent promo assumptions.
  VerifyResult raw = RunVerify(verifier, parsed.properties[1].property);
  ASSERT_EQ(raw.verdict, Verdict::kViolated);
  ValidationResult v = ValidateCounterexample(
      parsed.spec.get(), parsed.properties[1].property, raw);
  EXPECT_FALSE(v.genuine);
  // The validated loop must not report that spurious candidate: either it
  // finds a genuine one, or it honestly returns kUnknown with a rejection
  // count — never a spurious kViolated.
  VerifyResult checked = VerifyValidated(&verifier, parsed.spec.get(),
                                         parsed.properties[1].property);
  if (checked.verdict == Verdict::kViolated) {
    ValidationResult confirm = ValidateCounterexample(
        parsed.spec.get(), parsed.properties[1].property, checked);
    EXPECT_TRUE(confirm.genuine) << confirm.reason;
  } else {
    EXPECT_EQ(checked.verdict, Verdict::kUnknown);
    EXPECT_GT(checked.stats.num_rejected_candidates, 0);
  }
}

TEST(IncompleteModeTest, CandidateFilterCanRejectEverything) {
  ParseResult parsed = ParseSpec(kPromoSite);
  ASSERT_TRUE(parsed.ok()) << parsed.ErrorText();
  Verifier verifier(parsed.spec.get());
  VerifyOptions options;
  int64_t seen = 0;
  options.candidate_filter = [&seen](const auto&, const auto&,
                                     const auto&) {
    ++seen;
    return false;  // reject all candidates
  };
  VerifyResult r =
      RunVerify(verifier, parsed.properties[0].property, options);
  EXPECT_EQ(r.verdict, Verdict::kHolds)
      << "with everything rejected the raw search reports no violation";
  EXPECT_GT(seen, 0);
  EXPECT_EQ(r.stats.num_rejected_candidates, seen);
}

}  // namespace
}  // namespace wave
