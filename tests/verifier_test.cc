// Verifier-core tests: the visited trie, the encodings, heuristic on/off
// agreement, counterexample sanity, and a differential test of the
// pseudorun verifier against the explicit first-cut baseline on small
// specs.
#include <gtest/gtest.h>

#include <random>

#include "apps/apps.h"
#include "baseline/firstcut.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "parser/parser.h"
#include "verifier/encode.h"
#include "verifier/trie.h"
#include "verifier/verifier.h"

#include "verify_helpers.h"

namespace wave {
namespace {

// --- trie -------------------------------------------------------------------

TEST(TrieTest, InsertAndContains) {
  VisitedTrie trie;
  EXPECT_TRUE(trie.Insert({1, 2, 3}));
  EXPECT_FALSE(trie.Insert({1, 2, 3}));
  EXPECT_TRUE(trie.Contains({1, 2, 3}));
  EXPECT_FALSE(trie.Contains({1, 2}));
  EXPECT_TRUE(trie.Insert({1, 2}));  // prefix of an existing key
  EXPECT_TRUE(trie.Contains({1, 2}));
  EXPECT_EQ(trie.size(), 2);
  trie.Clear();
  EXPECT_EQ(trie.size(), 0);
  EXPECT_FALSE(trie.Contains({1, 2, 3}));
}

TEST(TrieTest, EmptyKeyIsAKey) {
  VisitedTrie trie;
  EXPECT_FALSE(trie.Contains({}));
  EXPECT_TRUE(trie.Insert({}));
  EXPECT_FALSE(trie.Insert({}));
  EXPECT_EQ(trie.size(), 1);
}

TEST(TrieTest, CountsHitsAndMisses) {
  VisitedTrie trie;
  trie.Insert({1, 2, 3});       // miss (new)
  trie.Insert({1, 2, 3});       // hit (already stored)
  trie.Contains({1, 2, 3});     // hit
  trie.Contains({9});           // miss
  trie.Contains({1, 2});        // miss (prefix, not terminal)
  EXPECT_EQ(trie.stats().hits, 2);
  EXPECT_EQ(trie.stats().misses, 3);
  EXPECT_EQ(trie.stats().lookups(), 5);
  trie.Clear();
  EXPECT_EQ(trie.stats().lookups(), 0);
}

TEST(TrieTest, AgreesWithStdSetOnRandomKeys) {
  std::mt19937 rng(7);
  VisitedTrie trie;
  std::set<std::vector<uint8_t>> reference;
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> key(rng() % 12);
    for (uint8_t& b : key) b = static_cast<uint8_t>(rng() % 4);
    bool inserted_ref = reference.insert(key).second;
    if (rng() % 2 == 0) {
      EXPECT_EQ(trie.Insert(key), inserted_ref);
    } else {
      EXPECT_EQ(trie.Contains(key), !inserted_ref);
      if (inserted_ref) trie.Insert(key);
    }
    EXPECT_EQ(trie.size(), static_cast<int>(reference.size()));
  }
}

// --- rank-based tuple indexing (paper Section 4) --------------------------------

TEST(TupleIndexerTest, RoundTripsAllTuples) {
  TupleIndexer indexer({{10, 20}, {30, 40, 50}, {60}});
  EXPECT_EQ(indexer.NumTuples(), 6);
  std::set<int64_t> seen;
  for (SymbolId a : {10, 20}) {
    for (SymbolId b : {30, 40, 50}) {
      Tuple t = {a, b, 60};
      int64_t index = indexer.Index(t);
      ASSERT_GE(index, 0);
      ASSERT_LT(index, 6);
      EXPECT_TRUE(seen.insert(index).second) << "index collision";
      EXPECT_EQ(indexer.Decode(index), t);
    }
  }
}

TEST(TupleIndexerTest, FollowsPaperFormula) {
  // j = r_k + n_k * (r_{k-1} + n_{k-1} * (... n_2 * r_1))
  TupleIndexer indexer({{0, 1}, {10, 11, 12}});
  // tuple (1, 12): r1 = 1, r2 = 2, n2 = 3 -> j = 2 + 3*1 = 5.
  EXPECT_EQ(indexer.Index({1, 12}), 5);
}

TEST(TupleIndexerTest, UnknownValueYieldsMinusOne) {
  TupleIndexer indexer({{1, 2}});
  EXPECT_EQ(indexer.Index({3}), -1);
}

// --- visited-key encoding ----------------------------------------------------

TEST(EncodeTest, DistinctConfigurationsGetDistinctKeys) {
  Catalog catalog;
  catalog.Declare({"R", 1, RelationKind::kDatabase, {}});
  catalog.Declare({"I", 1, RelationKind::kInput, {}});
  Configuration a;
  a.page = 0;
  a.data = Instance(&catalog);
  a.previous = Instance(&catalog);
  Configuration b = a;
  EXPECT_EQ(EncodeVisitedKey(0, 0, a), EncodeVisitedKey(0, 0, b));
  EXPECT_NE(EncodeVisitedKey(1, 0, a), EncodeVisitedKey(0, 0, a));
  EXPECT_NE(EncodeVisitedKey(0, 1, a), EncodeVisitedKey(0, 0, a));
  b.page = 1;
  EXPECT_NE(EncodeVisitedKey(0, 0, a), EncodeVisitedKey(0, 0, b));
  b = a;
  b.data.relation("R").Insert({5});
  EXPECT_NE(EncodeVisitedKey(0, 0, a), EncodeVisitedKey(0, 0, b));
  // Current vs previous input must be distinguished.
  Configuration c = a, d = a;
  c.data.relation("I").Insert({5});
  d.previous.relation("I").Insert({5});
  EXPECT_NE(EncodeVisitedKey(0, 0, c), EncodeVisitedKey(0, 0, d));
}

// --- heuristics preserve verdicts ----------------------------------------------

constexpr char kSmallSpec[] = R"(
app small

database item(id, price)
database member(name)
state basket(id, price)
state active()
input pickitem(id, price)
input button(x)
inputconst who

home HP

page HP {
  input button
  input who
  rule button(x) <- x = "enter" | x = "stay"
  state +active() <- exists n: who(n) & member(n) & button("enter")
  target SHOP <- exists n: who(n) & member(n) & button("enter")
  target HP <- button("stay")
}

page SHOP {
  input button
  input pickitem
  rule button(x) <- x = "add" | x = "leave" | x = "drop"
  rule pickitem(i, p) <- item(i, p)
  state +basket(i, p) <- pickitem(i, p) & button("add")
  state -basket(i, p) <- pickitem(i, p) & button("drop")
  target HP <- button("leave")
}

property holds_reach type T9 expect true { F [at HP] }
property holds_basket type T3 expect true {
  forall i, p: F [basket(i, p)] -> F [pickitem(i, p)]
}
property fails_shop type T10 expect false { G [!(at SHOP)] }
property fails_active type T9 expect false { F [active()] }
property holds_active type T1 expect true {
  [at HP & button("enter")] B [active()]
}
property fails_drop type T4 expect false {
  forall i, p: G ([basket(i, p)] -> F [!basket(i, p)])
}
)";

// A micro spec whose unpruned search spaces stay enumerable: one unary
// database relation and three constants, so the first-cut baseline faces
// only 2^(domain) representative databases.
constexpr char kMicroSpec[] = R"(
app micro
database reg(x)
state flag()
state seen(x)
input pick(x)
input button(b)
home A
page A {
  input button
  input pick
  rule button(b) <- b = "go" | b = "stay"
  rule pick(x) <- reg(x)
  state +seen(x) <- pick(x) & button("go")
  state +flag() <- exists x: pick(x) & button("go")
  target B <- (exists x: pick(x)) & button("go")
}
page B {
  input button
  rule button(b) <- b = "back"
  state -flag() <- button("back")
  target A <- button("back")
}
property m1 type T9 expect true { F [at A] }
property m2 type T10 expect false { G [!(at B)] }
property m3 type T3 expect true { forall x: F [seen(x)] -> F [pick(x)] }
property m4 type T9 expect false { F [flag()] }
property m5 type T1 expect true { [at A & button("go")] B [at B] }
property m6 type T8 expect false { G ([flag()] -> X [flag()]) }
)";

class MicroSpecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    result_ = ParseSpec(kMicroSpec);
    ASSERT_TRUE(result_.ok()) << result_.ErrorText();
    ASSERT_TRUE(result_.spec->CheckInputBoundedness().empty());
  }
  ParseResult result_;
};

class SmallSpecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    result_ = ParseSpec(kSmallSpec);
    ASSERT_TRUE(result_.ok()) << result_.ErrorText();
    ASSERT_TRUE(result_.spec->CheckInputBoundedness().empty());
  }
  ParseResult result_;
};

TEST_F(SmallSpecTest, AllVerdictsMatch) {
  Verifier verifier(result_.spec.get());
  for (const ParsedProperty& p : result_.properties) {
    VerifyResult r = RunVerify(verifier, p.property);
    EXPECT_NE(r.verdict, Verdict::kUnknown)
        << p.property.name << ": " << r.failure_reason;
    EXPECT_EQ(r.verdict == Verdict::kHolds, p.expected) << p.property.name;
  }
}

TEST_F(MicroSpecTest, HeuristicsPreserveVerdicts) {
  // Theorem 3.8: pruning with Heuristics 1 and 2 keeps the algorithm sound
  // and complete. Cross-check verdicts with core pruning disabled (the
  // micro spec keeps the unpruned core space enumerable).
  Verifier verifier(result_.spec.get());
  for (const ParsedProperty& p : result_.properties) {
    VerifyOptions with;
    VerifyResult expected = RunVerify(verifier, p.property, with);
    VerifyOptions without;
    without.heuristic1 = false;
    without.max_candidates = 16;
    without.timeout_seconds = 300;
    VerifyResult actual = RunVerify(verifier, p.property, without);
    ASSERT_NE(actual.verdict, Verdict::kUnknown)
        << p.property.name << ": " << actual.failure_reason;
    EXPECT_EQ(actual.verdict, expected.verdict) << p.property.name;
  }
}

TEST_F(SmallSpecTest, CounterexampleEndsInACycleAndReachesShop) {
  Verifier verifier(result_.spec.get());
  const ParsedProperty* shop = nullptr;
  for (const ParsedProperty& p : result_.properties) {
    if (p.property.name == "fails_shop") shop = &p;
  }
  ASSERT_NE(shop, nullptr);
  VerifyResult r = RunVerify(verifier, shop->property);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_FALSE(r.candy.empty()) << "lollipop must have a cycle";
  int shop_page = result_.spec->PageIndex("SHOP");
  bool visits_shop = false;
  for (const CounterexampleStep& s : r.stick) {
    if (s.config.page == shop_page) visits_shop = true;
  }
  for (const CounterexampleStep& s : r.candy) {
    if (s.config.page == shop_page) visits_shop = true;
  }
  EXPECT_TRUE(visits_shop) << r.CounterexampleString(*result_.spec);
}

TEST_F(SmallSpecTest, StatsArePopulated) {
  Verifier verifier(result_.spec.get());
  VerifyResult r = RunVerify(verifier, result_.properties[0].property);
  EXPECT_GT(r.stats.buchi_states, 0);
  EXPECT_GT(r.stats.num_expansions, 0);
  EXPECT_GT(r.stats.max_trie_size, 0);
  EXPECT_GE(r.stats.seconds, 0);
}

// --- observability (ISSUE 1) -------------------------------------------------

TEST_F(SmallSpecTest, PhaseTimingsAndTrieCountersArePopulated) {
  Verifier verifier(result_.spec.get());
  VerifyResult r = RunVerify(verifier, result_.properties[0].property);
  // Phase wall-times are filled in from the metrics layer and bounded by
  // the total.
  EXPECT_GT(r.stats.prepare_seconds, 0);
  EXPECT_GT(r.stats.search_seconds, 0);
  EXPECT_GE(r.stats.dataflow_seconds, 0);
  EXPECT_GE(r.stats.validate_seconds, 0);
  double phase_sum = r.stats.prepare_seconds + r.stats.dataflow_seconds +
                     r.stats.search_seconds + r.stats.validate_seconds;
  EXPECT_LE(phase_sum, r.stats.seconds + 0.05);
  // Every expansion inserts into the trie, so lookups happened.
  EXPECT_GT(r.stats.trie_hits + r.stats.trie_misses, 0);
  EXPECT_GE(r.stats.trie_misses, static_cast<int64_t>(r.stats.max_trie_size));
}

TEST_F(SmallSpecTest, MetricsRegistryReceivesVerifierCounters) {
  Verifier verifier(result_.spec.get());
  obs::MetricsRegistry metrics;
  VerifyOptions options;
  options.metrics = &metrics;
  VerifyResult r = RunVerify(verifier, result_.properties[0].property, options);
  EXPECT_EQ(metrics.counter("verify.expansions")->value(),
            r.stats.num_expansions);
  EXPECT_EQ(metrics.counter("trie.hits")->value(), r.stats.trie_hits);
  EXPECT_EQ(metrics.counter("trie.misses")->value(), r.stats.trie_misses);
  EXPECT_GT(metrics.counter("verify.prepare_us")->value(), 0);
  EXPECT_GT(metrics.counter("prepared.rule_evaluations")->value(), 0);
  EXPECT_GT(metrics.counter("gpvw.tableau_nodes")->value(), 0);
  EXPECT_EQ(metrics.histogram("verify.assignment_us")->count(),
            r.stats.num_assignments);

  // A shared registry accumulates across Verify calls; per-call stats
  // must not (regression test for double counting).
  VerifyResult r2 = RunVerify(verifier, result_.properties[0].property, options);
  EXPECT_EQ(metrics.counter("verify.expansions")->value(),
            r.stats.num_expansions + r2.stats.num_expansions);
  double r2_phase_sum = r2.stats.prepare_seconds + r2.stats.dataflow_seconds +
                        r2.stats.search_seconds + r2.stats.validate_seconds;
  EXPECT_LE(r2_phase_sum, r2.stats.seconds + 0.05);
  EXPECT_EQ(r2.stats.trie_hits, r.stats.trie_hits);
}

TEST_F(SmallSpecTest, TracerEmitsNestedPhaseSpans) {
  Verifier verifier(result_.spec.get());
  obs::Tracer tracer;
  VerifyOptions options;
  options.tracer = &tracer;
  RunVerify(verifier, result_.properties[0].property, options);

  // The trace must contain verify > {prepare, search, validate}, with the
  // children inside the root span's interval.
  const obs::TraceEvent* root = nullptr;
  bool saw_prepare = false, saw_search = false, saw_validate = false;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.name == "verify") root = &e;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->depth, 0);
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.phase != obs::TraceEvent::Phase::kSpan || e.name == "verify") {
      continue;
    }
    EXPECT_GE(e.ts_us, root->ts_us - 1e-6) << e.name;
    EXPECT_LE(e.ts_us + e.dur_us, root->ts_us + root->dur_us + 1e-6)
        << e.name;
    if (e.name == "prepare") saw_prepare = e.depth >= 1;
    if (e.name == "search") saw_search = e.depth >= 1;
    if (e.name == "validate") saw_validate = e.depth >= 1;
  }
  EXPECT_TRUE(saw_prepare);
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_validate);

  // The exported document is valid JSON.
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(tracer.ToChromeTraceJson(), &error).has_value())
      << error;
}

TEST_F(SmallSpecTest, DisabledTracerProducesNoEventsAndSameVerdict) {
  Verifier verifier(result_.spec.get());
  // Null tracer (the default) is the fast path: no events anywhere.
  VerifyResult plain = RunVerify(verifier, result_.properties[0].property);
  obs::Tracer tracer;
  VerifyOptions traced;
  traced.tracer = &tracer;
  VerifyResult with = RunVerify(verifier, result_.properties[0].property, traced);
  EXPECT_EQ(plain.verdict, with.verdict);
  EXPECT_EQ(plain.stats.num_expansions, with.stats.num_expansions);
  EXPECT_GT(tracer.events().size(), 0u);
  EXPECT_EQ(plain.stats.heartbeats, 0);  // no tracer, no heartbeat sink
}

TEST_F(SmallSpecTest, StatsJsonCarriesEveryField) {
  Verifier verifier(result_.spec.get());
  VerifyResult r = RunVerify(verifier, result_.properties[0].property);
  obs::Json j = r.stats.ToJson();
  for (const char* key :
       {"seconds", "prepare_seconds", "dataflow_seconds", "search_seconds",
        "validate_seconds", "max_pseudorun_length", "max_trie_size",
        "buchi_states", "num_assignments", "num_cores", "num_expansions",
        "num_successors", "num_rejected_candidates", "trie_hits",
        "trie_misses", "heartbeats"}) {
    EXPECT_TRUE(j.Has(key)) << key;
  }
  EXPECT_EQ(j.Find("num_expansions")->AsInt(), r.stats.num_expansions);
}

TEST(HeartbeatTest, FiresOnLongE1Property) {
  // E1's full search is long enough that with a zero interval (fire on
  // every budget check) heartbeats must arrive, monotonically.
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());
  VerifyOptions options;
  options.heartbeat_interval_seconds = 0;  // every budget check
  options.max_expansions = 400;            // keep the test fast
  std::vector<HeartbeatSnapshot> beats;
  options.heartbeat = [&](const HeartbeatSnapshot& hb) {
    beats.push_back(hb);
  };
  VerifyResult r = RunVerify(verifier, bundle.properties[0].property, options);
  ASSERT_FALSE(beats.empty());
  EXPECT_EQ(r.stats.heartbeats, static_cast<int64_t>(beats.size()));
  for (size_t i = 1; i < beats.size(); ++i) {
    EXPECT_GE(beats[i].num_expansions, beats[i - 1].num_expansions);
    EXPECT_GE(beats[i].elapsed_seconds, beats[i - 1].elapsed_seconds);
  }
  EXPECT_GT(beats.back().num_expansions, 0);
  EXPECT_GT(beats.back().buchi_states, 0);
  EXPECT_GE(beats.back().max_trie_size, beats.back().trie_size);
}

TEST_F(SmallSpecTest, TimeoutYieldsUnknown) {
  Verifier verifier(result_.spec.get());
  VerifyOptions options;
  options.timeout_seconds = 0.0;
  VerifyResult r = RunVerify(verifier, result_.properties[0].property, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_NE(r.failure_reason.find("timeout"), std::string::npos);
}

// --- differential test: pseudorun verifier vs explicit baseline ------------------

TEST_F(MicroSpecTest, AgreesWithFirstCutBaseline) {
  // On a small spec the explicit first-cut verifier can enumerate all
  // databases over its bounded domain. Its verdicts must agree with the
  // pseudorun search: a violation it finds is genuine (soundness), and a
  // violation WAVE finds within the bounded domain must exist there too.
  Verifier wave_verifier(result_.spec.get());
  FirstCutVerifier baseline(result_.spec.get());
  for (const ParsedProperty& p : result_.properties) {
    VerifyResult wave_result = RunVerify(wave_verifier, p.property);
    FirstCutOptions options;
    options.extra_domain_values = 1;
    options.timeout_seconds = 120;
    FirstCutResult baseline_result = baseline.Verify(p.property, options);
    ASSERT_NE(baseline_result.verdict, Verdict::kUnknown)
        << p.property.name << ": " << baseline_result.failure_reason;
    EXPECT_EQ(baseline_result.verdict, wave_result.verdict)
        << p.property.name;
  }
}

TEST_F(MicroSpecTest, ExhaustiveExistentialAgrees) {
  // The default C∃ enumeration uses pairwise-distinct fresh values; the
  // exhaustive mode adds equality patterns among them. On input-bounded
  // specs both must yield identical verdicts (the paper's completeness
  // needs only representative assignments).
  Verifier verifier(result_.spec.get());
  for (const ParsedProperty& p : result_.properties) {
    VerifyResult fast = RunVerify(verifier, p.property);
    VerifyOptions options;
    options.exhaustive_existential = true;
    VerifyResult slow = RunVerify(verifier, p.property, options);
    EXPECT_EQ(fast.verdict, slow.verdict) << p.property.name;
    EXPECT_GE(slow.stats.num_assignments, fast.stats.num_assignments);
  }
}

TEST_F(MicroSpecTest, ExpansionBudgetYieldsUnknown) {
  Verifier verifier(result_.spec.get());
  VerifyOptions options;
  options.max_expansions = 1;
  VerifyResult r = RunVerify(verifier, result_.properties[0].property, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_NE(r.failure_reason.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace wave
