// Direct unit tests of the explicit first-cut baseline (ISSUE 5
// satellite): tiny specs whose verdicts are computed BY HAND below, so
// the differential oracle's reference axis is itself anchored to
// something human-checked, not just to "the two engines agree".
//
// Hand model (see src/baseline/firstcut.h): the bounded domain is the
// spec/property constants plus `extra_domain_values` fresh values; the
// baseline enumerates every database over that domain (2^candidates,
// candidates = relations × |dom| for unary relations) and model-checks
// each one explicitly. State relations start EMPTY in the initial
// configuration.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baseline/firstcut.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

namespace wave {
namespace {

// One unary database relation, no data constants anywhere: the bounded
// domain is exactly the 1 fresh value, so there are 2^1 = 2 databases
// ({} and {fresh}).
constexpr char kTinySpec[] = R"(app tiny
database r1(a)
state s0()
input pick(x)
home A
page A {
  input pick
  rule pick(x) <- r1(x)
  state +s0() <- exists x: pick(x)
}
)";

// Two unary relations and the constant "go": domain {go, fresh} (2
// values), 2 × 2 = 4 candidate tuples, 2^4 = 16 databases.
constexpr char kMarkedSpec[] = R"(app tiny
database r1(a)
database marked(a)
state s0()
input pick(x)
home A
page A {
  input pick
  rule pick(x) <- r1(x) & marked(x)
  state +s0() <- pick("go")
}
)";

FirstCutResult RunFirstCut(const std::string& text,
                           const FirstCutOptions& options = {}) {
  ParseResult parsed = ParseSpec(text);
  EXPECT_TRUE(parsed.ok()) << parsed.ErrorText();
  FirstCutVerifier baseline(parsed.spec.get());
  return baseline.Verify(parsed.properties[0].property, options);
}

Verdict RunWave(const std::string& text) {
  ParseResult parsed = ParseSpec(text);
  EXPECT_TRUE(parsed.ok()) << parsed.ErrorText();
  StatusOr<std::unique_ptr<Verifier>> verifier =
      Verifier::Create(parsed.spec.get());
  EXPECT_TRUE(verifier.ok());
  VerifyRequest request;
  request.property = &parsed.properties[0].property;
  StatusOr<VerifyResponse> response = (*verifier)->Run(request);
  EXPECT_TRUE(response.ok());
  return response->verdict;
}

TEST(FirstCutTest, TautologyHoldsOverBothDatabases) {
  // G(¬s0 ∨ s0) is true in every configuration of every run, whatever
  // the database contents.
  std::string text =
      std::string(kTinySpec) + "property p { G ((!([s0()])) | ([s0()])) }";
  FirstCutResult r = RunFirstCut(text);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.domain_size, 1);           // no constants + 1 fresh
  EXPECT_EQ(r.stats.db_tuple_candidates, 1.0);  // 1 relation × 1 value
  EXPECT_EQ(r.stats.num_databases, 2);          // both of 2^1 explored
  EXPECT_EQ(RunWave(text), Verdict::kHolds);
}

TEST(FirstCutTest, GloballyS0FailsAtTheEmptyInitialState) {
  // State relations start empty, so s0 is false in the very first
  // configuration: G s0 is violated on every run — the search stops at
  // its first database.
  std::string text = std::string(kTinySpec) + "property p { G ([s0()]) }";
  FirstCutResult r = RunFirstCut(text);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.stats.num_databases, 1);  // early exit on the counterexample
  EXPECT_EQ(RunWave(text), Verdict::kViolated);
}

TEST(FirstCutTest, EventuallyS0FailsOnTheEmptyDatabase) {
  // With r1 = {}, no pick option is ever available, +s0() never fires,
  // and F s0 fails on that run. (With r1 = {fresh} the user may still
  // decline to pick — either way a violating run exists.)
  std::string text = std::string(kTinySpec) + "property p { F ([s0()]) }";
  FirstCutResult r = RunFirstCut(text);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(RunWave(text), Verdict::kViolated);
}

TEST(FirstCutTest, PickImpliesNextS0Holds) {
  // The rule `+s0() <- exists x: pick(x)` fires into the NEXT
  // configuration, which is exactly G(pick → X s0).
  std::string text =
      std::string(kTinySpec) +
      "property p { G (([exists x: pick(x)]) -> (X ([s0()]))) }";
  FirstCutResult r = RunFirstCut(text);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.num_databases, 2);  // a holds verdict explores all
  EXPECT_EQ(RunWave(text), Verdict::kHolds);
}

TEST(FirstCutTest, ConstantGrowsTheDomainAndTheDatabaseSpace) {
  std::string text = std::string(kMarkedSpec) + "property p { F ([s0()]) }";
  FirstCutResult r = RunFirstCut(text);
  // Violated already on the first (empty) database: nothing is marked,
  // so pick never fires and s0 stays false forever.
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.stats.domain_size, 2);            // "go" + 1 fresh
  EXPECT_EQ(r.stats.db_tuple_candidates, 4.0);  // 2 relations × 2 values
  EXPECT_EQ(RunWave(text), Verdict::kViolated);
}

TEST(FirstCutTest, ExtraDomainValuesWidenTheDomain) {
  FirstCutOptions options;
  options.extra_domain_values = 2;
  std::string text = std::string(kTinySpec) + "property p { G ([s0()]) }";
  FirstCutResult r = RunFirstCut(text, options);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.stats.domain_size, 2);  // 0 constants + 2 fresh
}

TEST(FirstCutTest, TupleBitBudgetDegradesToUnknownUpfront) {
  FirstCutOptions options;
  options.max_db_tuple_bits = 1;  // kMarkedSpec needs 4 bits
  std::string text = std::string(kMarkedSpec) + "property p { F ([s0()]) }";
  FirstCutResult r = RunFirstCut(text, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.stats.num_databases, 0);  // refused before exploring any
  EXPECT_NE(r.failure_reason.find("database space too large"),
            std::string::npos)
      << r.failure_reason;
}

TEST(FirstCutTest, TimeoutDegradesToUnknown) {
  FirstCutOptions options;
  options.timeout_seconds = 0;
  std::string text = std::string(kTinySpec) + "property p { G ([s0()]) }";
  FirstCutResult r = RunFirstCut(text, options);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.failure_reason.empty());
}

}  // namespace
}  // namespace wave
