// Zero-overhead guard for disabled telemetry (ISSUE 6 satellite).
//
// The PR-6 search histograms and the counting-allocator hook must cost
// nothing when observability is off (`VerifyOptions::metrics` and
// `tracer` both null): the recording sites reduce to a predicted branch
// and the alloc hook to a TLS load. This binary replaces global
// `operator new` with a counting shim to prove the disabled paths
// allocate nothing, asserts a disabled end-to-end run leaves every
// telemetry field empty, and pins wall-time parity between disabled and
// enabled runs with a deliberately loose (4x + constant) bound that
// survives noisy single-core CI hosts.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "apps/apps.h"
#include "common/stopwatch.h"
#include "gtest/gtest.h"
#include "obs/alloc.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "verifier/verifier.h"

namespace {

// Binary-local replacement allocator: every operator-new in the process
// bumps g_news. Counting only (no behavior change), so coexists with
// sanitizer malloc interceptors.
std::atomic<uint64_t> g_news{0};

}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wave {
namespace {

VerifyResult RunE2Property(Verifier& verifier, const Property& property,
                           obs::MetricsRegistry* metrics) {
  VerifyRequest request;
  request.property = &property;
  request.options.metrics = metrics;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return *response;
}

TEST(ObsOverheadTest, DisabledAllocHookAllocatesNothing) {
  // No sink installed: CountAlloc must be a TLS load + branch, zero
  // allocations. (The loop is volatile-ish enough via the atomic read.)
  ASSERT_EQ(obs::CurrentAllocSink(), nullptr);
  uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    obs::CountAlloc(64);
    obs::CountAlloc(128, 2);
  }
  uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);

  // With a sink: still zero allocations (plain field adds).
  obs::AllocStats sink;
  {
    obs::ScopedAllocTracking tracking(&sink);
    before = g_news.load(std::memory_order_relaxed);
    for (int i = 0; i < 100000; ++i) obs::CountAlloc(64);
    after = g_news.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(after, before);
  EXPECT_EQ(sink.bytes, 64 * 100000);
  EXPECT_EQ(sink.count, 100000);
  ASSERT_EQ(obs::CurrentAllocSink(), nullptr);
}

TEST(ObsOverheadTest, DisabledHistogramRecordSitesStayDark) {
  AppBundle bundle = BuildE2();
  Verifier verifier(bundle.spec.get());
  // Telemetry off: every ISSUE-6 stats field must stay all-zero — the
  // recording sites are gated, not merely discarded downstream.
  for (const ParsedProperty& p : bundle.properties) {
    VerifyResult result =
        RunE2Property(verifier, p.property, /*metrics=*/nullptr);
    EXPECT_EQ(result.stats.trie_depth.count, 0) << p.property.name;
    EXPECT_EQ(result.stats.frontier_size.count, 0) << p.property.name;
    EXPECT_EQ(result.stats.search_depth.count, 0) << p.property.name;
    EXPECT_EQ(result.stats.trie_lookup_us.count, 0) << p.property.name;
    EXPECT_EQ(result.stats.shard_expansions.count, 0) << p.property.name;
    EXPECT_EQ(result.stats.shard_alloc_bytes.count, 0) << p.property.name;
    EXPECT_EQ(result.stats.trie_nodes, 0) << p.property.name;
    EXPECT_EQ(result.stats.alloc_bytes, 0) << p.property.name;
    EXPECT_EQ(result.stats.alloc_count, 0) << p.property.name;
  }
}

TEST(ObsOverheadTest, TelemetryWallTimeParityWithinNoise) {
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());
  // A mid-weight property (~tens of ms): long enough to measure, short
  // enough to run min-of-3 both ways. Index 4 is E1/P5.
  const Property& property = bundle.properties.at(4).property;
  // Warm the session so both measurements see the memoized pre-pass.
  RunE2Property(verifier, property, nullptr);

  auto min_of = [&](obs::MetricsRegistry* metrics) {
    double best = 1e9;
    for (int i = 0; i < 3; ++i) {
      Stopwatch watch;
      VerifyResult r = RunE2Property(verifier, property, metrics);
      double t = watch.ElapsedSeconds();
      EXPECT_NE(r.verdict, Verdict::kUnknown);
      if (t < best) best = t;
    }
    return best;
  };

  double off = min_of(nullptr);
  obs::MetricsRegistry metrics;
  double on = min_of(&metrics);
  // Loose parity: telemetry may not blow up the search. 4x + 10ms
  // absorbs scheduler noise on 1-cpu hosts while still catching a
  // pathological always-on cost (e.g. timing every trie op).
  EXPECT_LT(on, off * 4 + 0.010)
      << "telemetry-on=" << on << "s telemetry-off=" << off << "s";
}

}  // namespace
}  // namespace wave
