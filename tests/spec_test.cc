// Spec-model tests: validation diagnostics and the fine points of the step
// semantics (Section 2.1) — insert/delete conflicts are no-ops, ambiguous
// targets mean no transition, previous inputs shift by one step.
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "spec/graph.h"
#include "spec/prepared_spec.h"

namespace wave {
namespace {

// --- validation diagnostics --------------------------------------------------

TEST(SpecValidationTest, RejectsReadingActions) {
  ParseResult r = ParseSpec(R"(
app x
action fired(a)
input i(x)
home P
page P {
  input i
  rule i(x) <- x = "a"
  target P <- exists x: i(x) & fired(x)
}
)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.ErrorText().find("reads action relation"), std::string::npos);
}

TEST(SpecValidationTest, RejectsWrongHeadKind) {
  ParseResult r = ParseSpec(R"(
app x
database d(a)
input i(x)
home P
page P {
  input i
  rule i(x) <- d(x)
  state +d(x) <- i(x)
}
)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.ErrorText().find("kind"), std::string::npos);
}

TEST(SpecValidationTest, RejectsInputWithoutOptionsRule) {
  ParseResult r = ParseSpec(R"(
app x
input i(x)
home P
page P {
  input i
  target P <- exists x: i(x)
}
)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.ErrorText().find("options rule"), std::string::npos);
}

TEST(SpecValidationTest, RejectsOptionsRuleForInputConstant) {
  ParseResult r = ParseSpec(R"(
app x
inputconst t
home P
page P {
  input t
  rule t(x) <- x = "a"
}
)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.ErrorText().find("input constant"), std::string::npos);
}

TEST(SpecValidationTest, RejectsFreeVariableInTargetCondition) {
  ParseResult r = ParseSpec(R"(
app x
database d(a)
input i(x)
home P
page P {
  input i
  rule i(x) <- d(x)
  target P <- d(y)
}
)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.ErrorText().find("sentence"), std::string::npos);
}

// --- step semantics ---------------------------------------------------------

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    result_ = ParseSpec(R"(
app semantics
database d(a)
state s(a)
state both(a)
input i(x)
input go(x)
home P

page P {
  input i
  input go
  rule i(x) <- d(x)
  rule go(x) <- x = "flip" | x = "two" | x = "none"
  state +s(x) <- i(x)
  # Insert and delete the same tuple when 'flip' is pressed: the paper
  # says conflicts are no-ops.
  state +both(x) <- i(x) & go("flip")
  state -both(x) <- i(x) & go("flip")
  # Two distinct targets true simultaneously on 'two': no transition.
  target Q <- go("two")
  target R <- go("two")
  target Q <- go("go")
}

page Q {
  input go
  rule go(x) <- x = "back"
  target P <- go("back")
}

page R {
  input go
  rule go(x) <- x = "back"
  target P <- go("back")
}
)");
    ASSERT_TRUE(result_.ok()) << result_.ErrorText();
    spec_ = result_.spec.get();
    prepared_ = std::make_unique<PreparedSpec>(spec_);
    database_ = Instance(&spec_->catalog());
    v1_ = spec_->symbols().Intern("v1");
    database_.relation("d").Insert({v1_});
  }

  Configuration StepWith(const Configuration& from, const InputChoice& choice) {
    Configuration config = from;
    std::vector<SymbolId> domain = prepared_->EvaluationDomain(config);
    prepared_->ApplyInput(choice, domain, &config);
    return prepared_->Advance(config, domain);
  }

  InputChoice Pick(const char* go_value, bool with_i) {
    InputChoice choice;
    choice[spec_->catalog().Find("go")] = {spec_->symbols().Intern(go_value)};
    if (with_i) choice[spec_->catalog().Find("i")] = {v1_};
    return choice;
  }

  ParseResult result_;
  WebAppSpec* spec_ = nullptr;
  std::unique_ptr<PreparedSpec> prepared_;
  Instance database_;
  SymbolId v1_ = kInvalidSymbol;
};

TEST_F(SemanticsTest, InsertDeleteConflictIsNoOp) {
  Configuration c0 = prepared_->MakeInitial(database_);
  // `both` starts absent; flipping (insert+delete simultaneously) must
  // leave it absent.
  Configuration c1 = StepWith(c0, Pick("flip", /*with_i=*/true));
  EXPECT_FALSE(c1.data.relation("both").Contains({v1_}));
  // But the plain insert rule fired.
  EXPECT_TRUE(c1.data.relation("s").Contains({v1_}));
  // Seed `both` via direct state surgery, then flip again: still present.
  c1.data.relation("both").Insert({v1_});
  Configuration c2 = StepWith(c1, Pick("flip", /*with_i=*/true));
  EXPECT_TRUE(c2.data.relation("both").Contains({v1_}))
      << "conflicting insert+delete must not remove the tuple";
}

TEST_F(SemanticsTest, AmbiguousTargetsMeanNoTransition) {
  Configuration c0 = prepared_->MakeInitial(database_);
  Configuration c1 = StepWith(c0, Pick("two", /*with_i=*/false));
  EXPECT_EQ(c1.page, spec_->PageIndex("P"))
      << "two true target conditions: stay on the page";
}

TEST_F(SemanticsTest, NoSatisfiedTargetMeansNoTransition) {
  Configuration c0 = prepared_->MakeInitial(database_);
  Configuration c1 = StepWith(c0, Pick("none", /*with_i=*/false));
  EXPECT_EQ(c1.page, spec_->PageIndex("P"));
}

TEST_F(SemanticsTest, PreviousInputsShiftByOneStep) {
  Configuration c0 = prepared_->MakeInitial(database_);
  EXPECT_TRUE(c0.previous.relation("i").empty());
  Configuration c1 = StepWith(c0, Pick("flip", /*with_i=*/true));
  EXPECT_TRUE(c1.previous.relation("i").Contains({v1_}));
  EXPECT_TRUE(c1.data.relation("i").empty())
      << "the new step starts with no current input";
  Configuration c2 = StepWith(c1, Pick("none", /*with_i=*/false));
  EXPECT_TRUE(c2.previous.relation("i").empty())
      << "previous inputs reflect only the immediately preceding step";
}

TEST_F(SemanticsTest, OptionsComeFromTheDatabase) {
  Configuration c0 = prepared_->MakeInitial(database_);
  std::vector<SymbolId> domain = prepared_->EvaluationDomain(c0);
  InputOptions options = prepared_->ComputeOptions(c0, domain);
  RelationId i = spec_->catalog().Find("i");
  ASSERT_EQ(options[i].size(), 1u);
  EXPECT_EQ(options[i][0], Tuple{v1_});
  RelationId go = spec_->catalog().Find("go");
  EXPECT_EQ(options[go].size(), 3u);
}

TEST_F(SemanticsTest, MakeInitialCopiesOnlyDatabaseRelations) {
  Instance seeded = database_;
  seeded.relation("s").Insert({v1_});  // must be ignored
  Configuration c0 = prepared_->MakeInitial(seeded);
  EXPECT_TRUE(c0.data.relation("s").empty());
  EXPECT_TRUE(c0.data.relation("d").Contains({v1_}));
  EXPECT_EQ(c0.page, spec_->home_page());
}

TEST(SiteGraphTest, ExportsNodesAndEdges) {
  ParseResult r = ParseSpec(R"(
app g
input i(x)
home A
page A {
  input i
  rule i(x) <- x = "go"
  target B <- i("go")
}
page B {
  input i
  rule i(x) <- x = "back"
  target A <- i("back")
}
page C { }
)");
  ASSERT_TRUE(r.ok()) << r.ErrorText();
  std::string dot = SiteGraphDot(*r.spec);
  EXPECT_NE(dot.find("A -> B"), std::string::npos);
  EXPECT_NE(dot.find("B -> A"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  std::vector<std::string> unreachable = UnreachablePages(*r.spec);
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0], "C");
}

}  // namespace
}  // namespace wave
