// VerifyStats::ToJson round-trip coverage (ISSUE 6 satellite): every
// stats field grown across PR 1–6 must surface in the JSON payload with
// its stable snake_case key, parse back with obs::Json::Parse, and — in
// a telemetry-on end-to-end run — the ISSUE-6 search histograms must be
// populated. A field silently dropped from ToJson breaks the
// `wave_verify --stats-json` contract external tooling diffs against.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "verifier/verifier.h"

namespace wave {
namespace {

VerifyResult RunWithMetrics(Verifier& verifier, const Property& property,
                            obs::MetricsRegistry* metrics) {
  VerifyRequest request;
  request.property = &property;
  request.options.metrics = metrics;
  StatusOr<VerifyResponse> response = verifier.Run(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return *response;
}

// The full key inventory, PR by PR. Kept explicit (not derived from the
// struct) so removing a field from ToJson fails this test by name.
const char* const kScalarKeys[] = {
    // PR 1 (paper columns + phase times + trie/heartbeat telemetry):
    "seconds", "prepare_seconds", "dataflow_seconds", "search_seconds",
    "validate_seconds", "max_pseudorun_length", "max_trie_size",
    "buchi_states", "num_assignments", "num_cores", "num_expansions",
    "num_successors", "num_rejected_candidates", "trie_hits", "trie_misses",
    "heartbeats",
    // PR 2 (resource governor):
    "peak_memory_bytes", "governor_polls",
    // PR 4 (sessions + persistent cache):
    "cache_hits", "prepass_reuses",
    // PR 6 (allocation profiling):
    "trie_nodes", "alloc_bytes", "alloc_count",
};

const char* const kHistogramKeys[] = {
    "trie_depth",      "frontier_size",    "search_depth",
    "trie_lookup_us",  "shard_expansions", "shard_alloc_bytes",
};

const char* const kHistogramSummaryKeys[] = {
    "count", "sum", "min", "max", "mean", "p50", "p90", "p99",
};

TEST(StatsJsonTest, EveryFieldPresentAndRoundTrips) {
  AppBundle bundle = BuildE2();
  Verifier verifier(bundle.spec.get());
  obs::MetricsRegistry metrics;
  VerifyResult result =
      RunWithMetrics(verifier, bundle.properties.front().property, &metrics);

  obs::Json j = result.stats.ToJson();
  ASSERT_TRUE(j.is_object());
  for (const char* key : kScalarKeys) {
    const obs::Json* v = j.Find(key);
    ASSERT_NE(v, nullptr) << "missing scalar key: " << key;
    EXPECT_TRUE(v->is_number()) << key;
  }
  for (const char* key : kHistogramKeys) {
    const obs::Json* h = j.Find(key);
    ASSERT_NE(h, nullptr) << "missing histogram key: " << key;
    ASSERT_TRUE(h->is_object()) << key;
    for (const char* summary : kHistogramSummaryKeys) {
      EXPECT_TRUE(h->Has(summary)) << key << "." << summary;
    }
  }

  // Round trip: the compact dump parses back and numeric fields agree.
  std::string error;
  std::optional<obs::Json> parsed = obs::Json::Parse(j.Dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("num_expansions")->AsInt(),
            result.stats.num_expansions);
  EXPECT_EQ(parsed->Find("max_trie_size")->AsInt(),
            result.stats.max_trie_size);
  EXPECT_EQ(parsed->Find("peak_memory_bytes")->AsInt(),
            result.stats.peak_memory_bytes);
  EXPECT_EQ(parsed->Find("cache_hits")->AsInt(), result.stats.cache_hits);
  EXPECT_EQ(parsed->Find("prepass_reuses")->AsInt(),
            result.stats.prepass_reuses);
  EXPECT_DOUBLE_EQ(parsed->Find("trie_depth")->Find("count")->AsDouble(),
                   static_cast<double>(result.stats.trie_depth.count));
}

TEST(StatsJsonTest, TelemetryOnRunPopulatesSearchHistograms) {
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());
  obs::MetricsRegistry metrics;
  // P1 is tiny; any property with a real search populates the telemetry.
  VerifyResult result =
      RunWithMetrics(verifier, bundle.properties.front().property, &metrics);

  EXPECT_GT(result.stats.trie_depth.count, 0);
  EXPECT_GT(result.stats.frontier_size.count, 0);
  EXPECT_GT(result.stats.search_depth.count, 0);
  EXPECT_GT(result.stats.shard_expansions.count, 0);
  EXPECT_GT(result.stats.trie_nodes, 0);
  EXPECT_GT(result.stats.alloc_bytes, 0);
  EXPECT_GT(result.stats.alloc_count, 0);

  // The same telemetry lands in the shared registry under the ISSUE-6
  // metric names.
  EXPECT_GT(metrics.histogram("trie.depth")->count(), 0);
  EXPECT_GT(metrics.histogram("search.frontier_size")->count(), 0);
  EXPECT_GT(metrics.histogram("search.depth")->count(), 0);
  EXPECT_GT(metrics.histogram("search.shard_expansions")->count(), 0);
  EXPECT_GT(metrics.counter("trie.nodes")->value(), 0);
  EXPECT_GT(metrics.counter("alloc.search.bytes")->value(), 0);
  EXPECT_GT(metrics.counter("alloc.search.count")->value(), 0);

  // And the JSON summaries reflect the recorded data.
  obs::Json j = result.stats.ToJson();
  EXPECT_GT(j.Find("trie_depth")->Find("count")->AsInt(), 0);
  EXPECT_GT(j.Find("frontier_size")->Find("max")->AsDouble(), 0);
  EXPECT_GE(j.Find("search_depth")->Find("p99")->AsDouble(),
            j.Find("search_depth")->Find("p50")->AsDouble());
}

TEST(StatsJsonTest, BatchMergedStatsCarryTelemetry) {
  AppBundle bundle = BuildE2();
  Verifier verifier(bundle.spec.get());
  obs::MetricsRegistry metrics;
  BatchRequest request;
  std::vector<Property> properties;
  for (const ParsedProperty& p : bundle.properties) {
    properties.push_back(p.property);
  }
  request.properties = &properties;
  request.options.metrics = &metrics;
  StatusOr<BatchResponse> response = verifier.RunBatch(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // Merged histograms are the exact bucket-sum of the per-property ones.
  int64_t per_property_expansion_records = 0;
  for (const VerifyResponse& r : response->responses) {
    per_property_expansion_records += r.stats.shard_expansions.count;
  }
  EXPECT_EQ(response->merged.shard_expansions.count,
            per_property_expansion_records);
  EXPECT_GT(response->merged.search_depth.count, 0);
  EXPECT_GT(response->merged.trie_nodes, 0);
  EXPECT_TRUE(response->merged.ToJson().Has("shard_alloc_bytes"));
}

}  // namespace
}  // namespace wave
