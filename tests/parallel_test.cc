// PR 3 — the parallel core-sharded search engine and the unified
// VerifyRequest API.
//
// The headline contract is *determinism*: for every bundled application
// and every property, the verdict at --jobs=N is identical to --jobs=1,
// and any counterexample produced (which MAY differ between job counts —
// the first worker to claim wins) replays as a genuine violating run.
// The suite also covers prompt cooperative cancellation of a worker
// fleet, the ShardQueue / BudgetLedger / WorkerPool building blocks, and
// the request-selector surface of the API.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "apps/apps.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "parser/parser.h"
#include "verifier/governor.h"
#include "verifier/shard.h"
#include "verifier/validate.h"
#include "verifier/verifier.h"
#include "verifier/worker_pool.h"

#include "verify_helpers.h"

namespace wave {
namespace {

// --- determinism across job counts -------------------------------------------

struct ParallelCase {
  const char* name;
  AppBundle (*build)();
  int jobs;
};

class DeterminismTest : public ::testing::TestWithParam<ParallelCase> {};

// Every property of the bundled app: verdict at `jobs` workers equals the
// sequential verdict (the parser bundles the expected one), and violated
// properties must come back with a *genuine* counterexample regardless of
// which worker won the race to claim it.
TEST_P(DeterminismTest, VerdictsMatchSequentialAndWitnessesAreGenuine) {
  AppBundle bundle = GetParam().build();
  Verifier verifier(bundle.spec.get());
  for (const ParsedProperty& p : bundle.properties) {
    ASSERT_TRUE(p.has_expected) << p.property.name;
    VerifyOptions options;
    options.timeout_seconds = 120;
    VerifyResult r =
        RunVerify(verifier, p.property, options, GetParam().jobs);
    ASSERT_NE(r.verdict, Verdict::kUnknown)
        << GetParam().name << "/" << p.property.name << " jobs="
        << GetParam().jobs << ": " << r.failure_reason;
    EXPECT_EQ(r.verdict == Verdict::kHolds, p.expected)
        << GetParam().name << "/" << p.property.name
        << " jobs=" << GetParam().jobs;
    if (r.verdict == Verdict::kViolated) {
      ValidationResult validation =
          ValidateCounterexample(bundle.spec.get(), p.property, r);
      EXPECT_TRUE(validation.genuine)
          << GetParam().name << "/" << p.property.name << " jobs="
          << GetParam().jobs << ": " << validation.reason;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, DeterminismTest,
    ::testing::Values(ParallelCase{"E1", BuildE1, 2},
                      ParallelCase{"E1", BuildE1, 8},
                      ParallelCase{"E2", BuildE2, 2},
                      ParallelCase{"E2", BuildE2, 8},
                      ParallelCase{"E3", BuildE3, 2},
                      ParallelCase{"E3", BuildE3, 8},
                      ParallelCase{"E4", BuildE4, 2},
                      ParallelCase{"E4", BuildE4, 8}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return std::string(info.param.name) + "_jobs" +
             std::to_string(info.param.jobs);
    });

// Aggregate statistics that do not depend on worker scheduling must be
// bit-identical across job counts: assignments enumerated, cores searched,
// and the verdict. (Expansions MAY differ on violated properties — workers
// that lose the race still count partial work — so they are only compared
// on a property that holds.)
TEST(DeterminismTest, HoldingPropertyStatsAreJobCountInvariant) {
  AppBundle bundle = BuildE1();
  const ParsedProperty* holds = nullptr;
  for (const ParsedProperty& p : bundle.properties) {
    if (p.has_expected && p.expected) {
      holds = &p;
      break;
    }
  }
  ASSERT_NE(holds, nullptr);
  Verifier verifier(bundle.spec.get());
  VerifyResult sequential = RunVerify(verifier, holds->property, {}, 1);
  ASSERT_EQ(sequential.verdict, Verdict::kHolds);
  for (int jobs : {2, 4, 8}) {
    VerifyResult parallel = RunVerify(verifier, holds->property, {}, jobs);
    EXPECT_EQ(parallel.verdict, Verdict::kHolds) << "jobs=" << jobs;
    EXPECT_EQ(parallel.stats.num_assignments, sequential.stats.num_assignments)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.stats.num_cores, sequential.stats.num_cores)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.stats.num_expansions, sequential.stats.num_expansions)
        << "jobs=" << jobs;
  }
}

// --- cooperative cancellation of a worker fleet -------------------------------

// A pre-cancelled token trips the ledger on the first poll: every worker
// must exit promptly and the merged verdict is kUnknown/kCancelled.
TEST(ParallelCancellationTest, PreCancelledTokenStopsAllWorkers) {
  AppBundle bundle = BuildE3();
  Verifier verifier(bundle.spec.get());
  CancellationToken token;
  token.Cancel();
  VerifyOptions options;
  options.cancellation = &token;
  Stopwatch watch;
  VerifyResult r = RunVerify(verifier, bundle.properties[0].property, options,
                             /*jobs=*/4);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kCancelled);
  EXPECT_LT(watch.ElapsedSeconds(), 30.0);
}

// Mid-search cancellation: the candidate filter fires inside a worker's
// NDFS (serialized under the engine mutex), cancels the shared token and
// rejects the candidate. The search must then stop at the next budget
// poll instead of running the remaining shards, and the trip must beat
// the would-be kHolds verdict in the merge.
TEST(ParallelCancellationTest, MidSearchCancellationIsPrompt) {
  AppBundle bundle = BuildE1();
  const ParsedProperty* violated = nullptr;
  for (const ParsedProperty& p : bundle.properties) {
    if (p.has_expected && !p.expected) {
      violated = &p;
      break;
    }
  }
  ASSERT_NE(violated, nullptr);
  Verifier verifier(bundle.spec.get());
  CancellationToken token;
  std::atomic<int> candidates_seen{0};
  VerifyOptions options;
  options.cancellation = &token;
  options.candidate_filter =
      [&](const std::vector<CounterexampleStep>&,
          const std::vector<CounterexampleStep>&,
          const std::map<std::string, SymbolId>&) {
        candidates_seen.fetch_add(1);
        token.Cancel();
        return false;  // reject: without the cancel the search would go on
      };
  VerifyResult r =
      RunVerify(verifier, violated->property, options, /*jobs=*/4);
  ASSERT_GE(candidates_seen.load(), 1);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.unknown_reason, UnknownReason::kCancelled);
}

// --- ShardQueue ---------------------------------------------------------------

std::vector<ShardBlock> MakeBlocks(std::vector<std::pair<int, int64_t>> sizes) {
  std::vector<ShardBlock> blocks;
  for (auto [assignment, cores] : sizes) {
    blocks.push_back(ShardBlock{assignment, 0, cores});
  }
  return blocks;
}

TEST(ShardQueueTest, SingleWorkerDrainsInEnumerationOrder) {
  ShardQueue queue(MakeBlocks({{0, 3}, {1, 2}}), 1);
  EXPECT_EQ(queue.total_shards(), 5);
  std::vector<std::pair<int, int64_t>> popped;
  Shard shard;
  while (queue.Pop(0, &shard)) popped.emplace_back(shard.assignment, shard.core);
  std::vector<std::pair<int, int64_t>> expected = {
      {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}};
  EXPECT_EQ(popped, expected);
  EXPECT_EQ(queue.steals(), 0);
}

TEST(ShardQueueTest, EveryShardDeliveredExactlyOnceAcrossWorkers) {
  const int kWorkers = 4;
  ShardQueue queue(MakeBlocks({{0, 64}, {1, 1}, {2, 17}, {3, 32}}), kWorkers);
  std::mutex mu;
  std::set<std::pair<int, int64_t>> seen;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      Shard shard;
      while (queue.Pop(w, &shard)) {
        std::lock_guard<std::mutex> lock(mu);
        bool inserted = seen.insert({shard.assignment, shard.core}).second;
        EXPECT_TRUE(inserted) << shard.assignment << "/" << shard.core;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(static_cast<int64_t>(seen.size()), queue.total_shards());
}

TEST(ShardQueueTest, IdleWorkerStealsFromBusyVictim) {
  // Two workers, one big block: round-robin gives it to worker 0, so the
  // only way worker 1 gets anything is a steal of the range's upper half.
  ShardQueue queue(MakeBlocks({{0, 100}}), 2);
  Shard shard;
  ASSERT_TRUE(queue.Pop(1, &shard));
  EXPECT_EQ(queue.steals(), 1);
  EXPECT_GE(shard.core, 50);  // the thief takes the upper half
  // The owner still drains its (shrunk) share from the front.
  ASSERT_TRUE(queue.Pop(0, &shard));
  EXPECT_EQ(shard.core, 0);
}

// --- BudgetLedger -------------------------------------------------------------

TEST(BudgetLedgerTest, FirstTripWinsAndStopsEveryWorker) {
  GovernorLimits limits;
  BudgetLedger ledger(limits, 4);
  EXPECT_FALSE(ledger.stop_requested());
  ledger.Trip(UnknownReason::kExpansionBudget, "first");
  ledger.Trip(UnknownReason::kTimeout, "second");
  EXPECT_EQ(ledger.trip_reason(), UnknownReason::kExpansionBudget);
  EXPECT_EQ(ledger.trip_message(), "first");
  EXPECT_TRUE(ledger.stop_requested());
}

TEST(BudgetLedgerTest, SharedExpansionBudgetTripsAcrossWorkers) {
  GovernorLimits limits;
  limits.max_expansions = 100;
  BudgetLedger ledger(limits, 2);
  ledger.AddExpansions(60);  // worker 0's batch
  ledger.AddExpansions(60);  // worker 1's batch — joint total crosses 100
  EXPECT_EQ(ledger.Check(), UnknownReason::kExpansionBudget);
}

TEST(BudgetLedgerTest, SyncMemoryReadingsFoldsWorkerSlotsIntoPeak) {
  GovernorLimits limits;
  BudgetLedger ledger(limits, 2);
  ledger.ReportWorkerMemory(0, 1000);
  ledger.ReportWorkerMemory(1, 500);
  ledger.SyncMemoryReadings();
  ledger.ReportWorkerMemory(0, 100);  // shrink: peak must not regress
  ledger.SyncMemoryReadings();
  EXPECT_EQ(ledger.readings().memory_bytes, 600);
  EXPECT_EQ(ledger.readings().peak_memory_bytes, 1500);
}

TEST(BudgetLedgerTest, CancellationTokenTripsOnCheck) {
  CancellationToken token;
  GovernorLimits limits;
  limits.cancellation = &token;
  BudgetLedger ledger(limits, 1);
  EXPECT_EQ(ledger.Check(), UnknownReason::kNone);
  token.Cancel();
  EXPECT_EQ(ledger.Check(), UnknownReason::kCancelled);
  EXPECT_TRUE(ledger.stop_requested());
}

// --- WorkerPool ---------------------------------------------------------------

TEST(WorkerPoolTest, ResolveJobsSemantics) {
  EXPECT_EQ(WorkerPool::ResolveJobs(1), 1);
  EXPECT_EQ(WorkerPool::ResolveJobs(7), 7);
  EXPECT_GE(WorkerPool::ResolveJobs(0), 1);   // auto: one per hardware thread
  EXPECT_GE(WorkerPool::ResolveJobs(-3), 1);  // negative behaves like auto
}

TEST(WorkerPoolTest, RunsEveryWorkerAndWaitDoneBlocks) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  pool.Start([&](int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 3);
    ran.fetch_add(1);
  });
  EXPECT_TRUE(pool.WaitDone(-1));
  pool.Join();
  EXPECT_EQ(ran.load(), 3);
}

// --- the unified request API --------------------------------------------------

TEST(VerifyRequestTest, SelectsByNameAndIndex) {
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());
  std::vector<Property> catalog;
  for (const ParsedProperty& p : bundle.properties) {
    catalog.push_back(p.property);
  }

  VerifyRequest by_name;
  by_name.properties = &catalog;
  by_name.property_name = catalog[1].name;
  StatusOr<VerifyResponse> named = verifier.Run(by_name);
  ASSERT_TRUE(named.ok()) << named.status().message();

  VerifyRequest by_index;
  by_index.properties = &catalog;
  by_index.property_index = 1;
  StatusOr<VerifyResponse> indexed = verifier.Run(by_index);
  ASSERT_TRUE(indexed.ok()) << indexed.status().message();
  EXPECT_EQ(named->verdict, indexed->verdict);
}

TEST(VerifyRequestTest, BadSelectorsAreInvalidArgument) {
  AppBundle bundle = BuildE1();
  Verifier verifier(bundle.spec.get());
  std::vector<Property> catalog = {bundle.properties[0].property};

  VerifyRequest empty;  // no property, no catalog
  EXPECT_EQ(verifier.Run(empty).status().code(), StatusCode::kInvalidArgument);

  VerifyRequest bad_name;
  bad_name.properties = &catalog;
  bad_name.property_name = "no_such_property";
  EXPECT_EQ(verifier.Run(bad_name).status().code(),
            StatusCode::kInvalidArgument);

  VerifyRequest bad_index;
  bad_index.properties = &catalog;
  bad_index.property_index = 99;
  EXPECT_EQ(verifier.Run(bad_index).status().code(),
            StatusCode::kInvalidArgument);
}

// Parallel runs surface their shape in the metrics registry and merge
// worker trace spans (tid >= 2) into the caller's tracer.
TEST(VerifyRequestTest, ParallelObservabilitySurfaces) {
  AppBundle bundle = BuildE3();
  Verifier verifier(bundle.spec.get());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  VerifyOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  VerifyResult r =
      RunVerify(verifier, bundle.properties[0].property, options, /*jobs=*/4);
  ASSERT_NE(r.verdict, Verdict::kUnknown) << r.failure_reason;
  EXPECT_EQ(metrics.gauge("verify.jobs")->value(), 4);
  bool worker_span_seen = false;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.tid >= 2) worker_span_seen = true;
  }
  EXPECT_TRUE(worker_span_seen);
}

}  // namespace
}  // namespace wave
