// Observability layer tests (ISSUE 1): JSON round-trips, metric
// aggregation, span nesting/ordering, and the disabled-tracer fast path.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wave::obs {
namespace {

// --- Json --------------------------------------------------------------------

TEST(JsonTest, DumpsScalars) {
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Int(42).Dump(), "42");
  EXPECT_EQ(Json::Int(-7).Dump(), "-7");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(Json::Str("a\"b\\c\n\t").Dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(Json::Str(std::string("\x01", 1)).Dump(), "\"\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplaces) {
  Json obj = Json::Object();
  obj.Set("z", Json::Int(1));
  obj.Set("a", Json::Int(2));
  obj.Set("z", Json::Int(3));  // replace, not append
  EXPECT_EQ(obj.Dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(obj.Find("z"), nullptr);
  EXPECT_EQ(obj.Find("z")->AsInt(), 3);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, RoundTripsNestedDocument) {
  Json doc = Json::Object();
  doc.Set("name", Json::Str("wave"));
  doc.Set("pi", Json::Number(3.25));
  doc.Set("big", Json::Int(1234567890123456789LL));
  doc.Set("flag", Json::Bool(true));
  doc.Set("nothing", Json::Null());
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  Json inner = Json::Object();
  inner.Set("k", Json::Str("v\nwith\tescapes\""));
  arr.Append(std::move(inner));
  doc.Set("items", std::move(arr));

  for (int indent : {-1, 2}) {
    std::string text = doc.Dump(indent);
    std::string error;
    std::optional<Json> parsed = Json::Parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error << " in: " << text;
    EXPECT_EQ(parsed->Dump(), doc.Dump());
    EXPECT_EQ(parsed->Find("big")->AsInt(), 1234567890123456789LL);
    EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsDouble(), 3.25);
    EXPECT_TRUE(parsed->Find("nothing")->is_null());
    EXPECT_EQ(parsed->Find("items")->items()[1].Find("k")->AsString(),
              "v\nwith\tescapes\"");
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "[1 2]", "nul"}) {
    std::string error;
    EXPECT_FALSE(Json::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, ParseHandlesWhitespaceAndUnicodeEscapes) {
  std::optional<Json> v = Json::Parse("  { \"a\" : [ 1 , \"\\u0041\" ] } ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("a")->items()[1].AsString(), "A");
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsTest, CountersAggregate) {
  MetricsRegistry registry;
  Counter* c = registry.counter("verify.expansions");
  c->Add();
  c->Add(41);
  registry.Add("verify.expansions");  // same instrument by name
  EXPECT_EQ(registry.counter("verify.expansions")->value(), 43);
  EXPECT_EQ(registry.counter("untouched")->value(), 0);
}

TEST(MetricsTest, GaugeTracksMax) {
  MetricsRegistry registry;
  registry.Set("trie.size", 10);
  registry.Set("trie.size", 4);
  EXPECT_EQ(registry.gauge("trie.size")->value(), 4);
  EXPECT_EQ(registry.gauge("trie.size")->max(), 10);
}

TEST(MetricsTest, HistogramQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (int i = 1; i <= 100; ++i) h->Record(i);
  EXPECT_EQ(h->count(), 100);
  EXPECT_DOUBLE_EQ(h->sum(), 5050);
  EXPECT_DOUBLE_EQ(h->min(), 1);
  EXPECT_DOUBLE_EQ(h->max(), 100);
  // Log-bucketed estimates: relative error is bounded by the sub-bucket
  // width (1/kSubBuckets of an octave); endpoints are exact.
  EXPECT_NEAR(h->Quantile(0.5), 50.5, 50.5 / HistogramData::kSubBuckets);
  EXPECT_NEAR(h->Quantile(0.9), 90.1, 90.1 / HistogramData::kSubBuckets);
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 1);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 100);
  // Quantiles are monotone in q.
  double prev = h->Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    double cur = h->Quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(MetricsTest, HistogramDataBucketsAndExactMerge) {
  // Bucket boundaries: each value maps into a bucket whose range
  // contains it; the underflow bucket takes non-positive values.
  EXPECT_EQ(HistogramData::BucketIndex(0), 0);
  EXPECT_EQ(HistogramData::BucketIndex(-3.5), 0);
  for (double v : {0.01, 1.0, 1.1, 7.0, 1024.0, 1e9}) {
    int b = HistogramData::BucketIndex(v);
    ASSERT_GT(b, 0) << v;
    ASSERT_LT(b, HistogramData::kNumBuckets - 1) << v;
    EXPECT_LE(HistogramData::BucketLow(b), v) << v;
    EXPECT_GT(HistogramData::BucketLow(b + 1), v) << v;
  }
  EXPECT_EQ(HistogramData::BucketIndex(1e18), HistogramData::kNumBuckets - 1);

  // Merging adds bucket counts: two halves merged == everything recorded
  // into one histogram, bit-for-bit (the per-shard merge invariant).
  HistogramData all, lo, hi;
  for (int i = 1; i <= 1000; ++i) {
    all.Record(i);
    (i <= 500 ? lo : hi).Record(i);
  }
  lo.MergeFrom(hi);
  EXPECT_EQ(lo.count, all.count);
  EXPECT_DOUBLE_EQ(lo.sum, all.sum);
  EXPECT_DOUBLE_EQ(lo.min, all.min);
  EXPECT_DOUBLE_EQ(lo.max, all.max);
  EXPECT_EQ(lo.buckets, all.buckets);
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(lo.Quantile(q), all.Quantile(q)) << q;
  }
  // Merging an empty histogram is the identity.
  HistogramData empty;
  all.MergeFrom(empty);
  EXPECT_EQ(all.count, 1000);
  // ToJson carries the standard summary keys.
  Json j = all.ToJson();
  for (const char* key :
       {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}) {
    EXPECT_NE(j.Find(key), nullptr) << key;
  }
}

TEST(MetricsTest, MergeFromFoldsAllInstruments) {
  MetricsRegistry a, b;
  a.Add("c", 1);
  b.Add("c", 2);
  b.Add("only_b", 5);
  a.Set("g", 10);
  b.Set("g", 3);
  a.Record("h", 1);
  b.Record("h", 3);
  a.MergeFrom(b);
  EXPECT_EQ(a.counter("c")->value(), 3);
  EXPECT_EQ(a.counter("only_b")->value(), 5);
  EXPECT_EQ(a.gauge("g")->value(), 3);
  EXPECT_EQ(a.gauge("g")->max(), 10);
  EXPECT_EQ(a.histogram("h")->count(), 2);
  EXPECT_DOUBLE_EQ(a.histogram("h")->sum(), 4);
}

TEST(MetricsTest, ToJsonSnapshotsEverything) {
  MetricsRegistry registry;
  registry.Add("n", 7);
  registry.Set("g", 2.5);
  registry.Record("h", 1.5);
  Json snapshot = registry.ToJson();
  std::optional<Json> reparsed = Json::Parse(snapshot.Dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->Find("counters")->Find("n")->AsInt(), 7);
  EXPECT_DOUBLE_EQ(reparsed->Find("gauges")->Find("g")->Find("value")->AsDouble(),
                   2.5);
  EXPECT_EQ(reparsed->Find("histograms")->Find("h")->Find("count")->AsInt(), 1);
  EXPECT_FALSE(registry.Summary().empty());
}

// --- Tracer ------------------------------------------------------------------

TEST(TracerTest, RecordsNestedSpansWithContainment) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    { ScopedSpan inner(&tracer, "inner"); }
    { ScopedSpan inner2(&tracer, "inner2"); }
  }
  ASSERT_EQ(tracer.events().size(), 3u);
  // Children complete (and are recorded) before their parent.
  const TraceEvent& inner = tracer.events()[0];
  const TraceEvent& inner2 = tracer.events()[1];
  const TraceEvent& outer = tracer.events()[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner2.name, "inner2");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner2.depth, 1);
  // Temporal containment and ordering.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  EXPECT_LE(inner.ts_us + inner.dur_us, inner2.ts_us + 1e-6);
}

TEST(TracerTest, NullTracerSpansAreNoOps) {
  // The disabled fast path: instrumented code holds a null Tracer*.
  ScopedSpan span(nullptr, "ignored");
  span.End();  // idempotent, still fine
}

TEST(TracerTest, EarlyEndIsIdempotent) {
  Tracer tracer;
  ScopedSpan span(&tracer, "s");
  span.End();
  span.End();  // second End must not pop anything else
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(TracerTest, EventCapDropsButStaysBalanced) {
  Tracer tracer(/*max_events=*/1);
  {
    ScopedSpan a(&tracer, "a");
    { ScopedSpan b(&tracer, "b"); }  // recorded (1 slot)
  }                                  // dropped
  tracer.Instant("also dropped");
  EXPECT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.dropped_events(), 2);
  std::optional<Json> doc = Json::Parse(tracer.ToChromeTraceJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("droppedEvents")->AsInt(), 2);
}

TEST(TracerTest, ChromeTraceJsonRoundTripsWithRequiredFields) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "verify");
    { ScopedSpan inner(&tracer, "prepare"); }
    tracer.Instant("marker");
    tracer.Counter("expansions", 17);
  }
  std::string text = tracer.ToChromeTraceJson();
  std::string error;
  std::optional<Json> doc = Json::Parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const Json* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 4u);
  bool saw_span = false, saw_instant = false, saw_counter = false;
  for (const Json& e : events->items()) {
    ASSERT_TRUE(e.Find("name") && e.Find("ph") && e.Find("ts") &&
                e.Find("pid") && e.Find("tid"));
    const std::string& ph = e.Find("ph")->AsString();
    if (ph == "X") {
      saw_span = true;
      EXPECT_NE(e.Find("dur"), nullptr);
    } else if (ph == "i") {
      saw_instant = true;
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(e.Find("args")->Find("value")->AsDouble(), 17);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST(TracerTest, CounterHistogramEmitsSummaryTracks) {
  Tracer tracer;
  HistogramData h;
  for (int i = 1; i <= 10; ++i) h.Record(i);
  tracer.CounterHistogram("trie.depth", h);
  ASSERT_EQ(tracer.events().size(), 5u);
  for (const TraceEvent& e : tracer.events()) {
    EXPECT_EQ(e.phase, TraceEvent::Phase::kCounter);
  }
  EXPECT_EQ(tracer.events()[0].name, "trie.depth.p50");
  EXPECT_EQ(tracer.events()[4].name, "trie.depth.count");
  EXPECT_DOUBLE_EQ(tracer.events()[4].value, 10);
  // Empty histograms emit nothing.
  tracer.CounterHistogram("empty", HistogramData{});
  EXPECT_EQ(tracer.events().size(), 5u);
}

TEST(TracerTest, PhaseSummaryAggregatesByName) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) ScopedSpan span(&tracer, "phase_a");
  { ScopedSpan span(&tracer, "phase_b"); }
  std::string summary = tracer.PhaseSummary();
  EXPECT_NE(summary.find("phase_a"), std::string::npos);
  EXPECT_NE(summary.find("phase_b"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);  // phase_a count
}

}  // namespace
}  // namespace wave::obs
