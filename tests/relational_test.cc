// Unit tests for the relational substrate: schemas, relations, instances
// and the two table-store backends.
#include <gtest/gtest.h>

#include <cstdio>

#include "relational/instance.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/table_store.h"

namespace wave {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  catalog.Declare({"user", 2, RelationKind::kDatabase, {}});
  catalog.Declare({"cart", 2, RelationKind::kState, {}});
  catalog.Declare({"button", 1, RelationKind::kInput, {}});
  catalog.Declare({"uname", 1, RelationKind::kInputConstant, {}});
  catalog.Declare({"conf", 3, RelationKind::kAction, {}});
  catalog.Declare({"flag", 0, RelationKind::kState, {}});
  return catalog;
}

TEST(CatalogTest, DeclareAndFind) {
  Catalog catalog = MakeCatalog();
  EXPECT_EQ(catalog.size(), 6);
  RelationId user = catalog.Find("user");
  ASSERT_NE(user, kInvalidRelation);
  EXPECT_EQ(catalog.schema(user).arity, 2);
  EXPECT_EQ(catalog.Find("nosuch"), kInvalidRelation);
  EXPECT_EQ(catalog.IdsOfKind(RelationKind::kState).size(), 2u);
}

TEST(RelationTest, SetSemantics) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2})) << "duplicate insert must be a no-op";
  EXPECT_TRUE(r.Insert({0, 9}));
  EXPECT_EQ(r.size(), 2);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({2, 1}));
  EXPECT_TRUE(r.Erase({1, 2}));
  EXPECT_FALSE(r.Erase({1, 2}));
  EXPECT_EQ(r.size(), 1);
}

TEST(RelationTest, TuplesAreSortedDeterministically) {
  Relation r(1);
  r.Insert({5});
  r.Insert({1});
  r.Insert({3});
  ASSERT_EQ(r.size(), 3);
  EXPECT_EQ(r.tuples()[0][0], 1);
  EXPECT_EQ(r.tuples()[2][0], 5);
}

TEST(RelationTest, UnionAndDifference) {
  Relation a(1), b(1);
  a.Insert({1});
  a.Insert({2});
  b.Insert({2});
  b.Insert({3});
  Relation u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.size(), 3);
  Relation d = a;
  d.DifferenceWith(b);
  EXPECT_EQ(d.size(), 1);
  EXPECT_TRUE(d.Contains({1}));
}

TEST(RelationTest, NullaryRelation) {
  Relation r(0);
  EXPECT_FALSE(r.Contains({}));
  EXPECT_TRUE(r.Insert({}));
  EXPECT_TRUE(r.Contains({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_EQ(r.size(), 1);
}

TEST(InstanceTest, ActiveDomainAndEquality) {
  Catalog catalog = MakeCatalog();
  Instance a(&catalog), b(&catalog);
  EXPECT_EQ(a, b);
  a.relation("user").Insert({7, 8});
  a.relation("cart").Insert({8, 9});
  EXPECT_NE(a, b);
  std::vector<SymbolId> domain = a.ActiveDomain();
  EXPECT_EQ(domain, (std::vector<SymbolId>{7, 8, 9}));
  EXPECT_EQ(a.TupleCount(), 2);
  a.Clear();
  EXPECT_EQ(a, b);
}

TEST(TableStoreTest, MemoryStoreRoundTrip) {
  Catalog catalog = MakeCatalog();
  MemoryTableStore store(&catalog);
  RelationId user = catalog.Find("user");
  EXPECT_TRUE(store.Insert(user, {1, 2}));
  EXPECT_FALSE(store.Insert(user, {1, 2}));
  EXPECT_EQ(store.Scan(user).size(), 1);
  EXPECT_TRUE(store.Delete(user, {1, 2}));
  EXPECT_FALSE(store.Delete(user, {1, 2}));
  store.Insert(user, {3, 4});
  store.Clear();
  EXPECT_EQ(store.Scan(user).size(), 0);
}

TEST(TableStoreTest, DurableStoreMatchesMemorySemantics) {
  Catalog catalog = MakeCatalog();
  std::string log = ::testing::TempDir() + "/wave_store_test.log";
  DurableTableStore durable(&catalog, log, /*sync_every_op=*/false);
  MemoryTableStore memory(&catalog);
  RelationId user = catalog.Find("user");
  RelationId conf = catalog.Find("conf");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(durable.Insert(user, {i, i + 1}), memory.Insert(user, {i, i + 1}));
    EXPECT_EQ(durable.Insert(conf, {i, i, i}), memory.Insert(conf, {i, i, i}));
  }
  for (int i = 0; i < 10; i += 2) {
    EXPECT_EQ(durable.Delete(user, {i, i + 1}), memory.Delete(user, {i, i + 1}));
  }
  EXPECT_EQ(durable.Scan(user), memory.Scan(user));
  EXPECT_EQ(durable.Scan(conf), memory.Scan(conf));
  std::remove(log.c_str());
}

}  // namespace
}  // namespace wave
