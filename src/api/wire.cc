#include "api/wire.h"

#include <utility>

namespace wave::api {
namespace {

// --- tolerant-but-typed field readers ---------------------------------------
// Absent fields keep the caller's default (forward compatibility); a field
// that is present with the wrong JSON type is a hard InvalidArgument — a
// schema mismatch should fail loudly, not read as zero.

Status TypeError(std::string_view field, std::string_view want) {
  return Status::InvalidArgument(
      std::string(field) + ": expected " + std::string(want), WAVE_LOC);
}

Status ReadBool(const obs::Json& j, std::string_view key, bool* out) {
  const obs::Json* v = j.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_bool()) return TypeError(key, "bool");
  *out = v->AsBool();
  return Status::Ok();
}

Status ReadInt(const obs::Json& j, std::string_view key, int64_t* out) {
  const obs::Json* v = j.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number()) return TypeError(key, "number");
  *out = v->AsInt();
  return Status::Ok();
}

Status ReadInt(const obs::Json& j, std::string_view key, int* out) {
  int64_t wide = *out;
  WAVE_RETURN_IF_ERROR(ReadInt(j, key, &wide));
  *out = static_cast<int>(wide);
  return Status::Ok();
}

Status ReadDouble(const obs::Json& j, std::string_view key, double* out) {
  const obs::Json* v = j.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number()) return TypeError(key, "number");
  *out = v->AsDouble();
  return Status::Ok();
}

Status ReadString(const obs::Json& j, std::string_view key,
                  std::string* out) {
  const obs::Json* v = j.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_string()) return TypeError(key, "string");
  *out = v->AsString();
  return Status::Ok();
}

Status RequireObject(const obs::Json& j, std::string_view what) {
  if (!j.is_object()) return TypeError(what, "object");
  return Status::Ok();
}

// --- counterexample steps (symbols by name) ---------------------------------
// Same shape as the ResultCache record payload, implemented independently:
// the cache's on-disk format is frozen, this one follows the wire schema.

obs::Json InstanceToJson(const Instance& instance, const WebAppSpec& spec) {
  obs::Json j = obs::Json::Object();
  const Catalog& catalog = spec.catalog();
  for (RelationId id = 0; id < catalog.size(); ++id) {
    const Relation& r = instance.relation(id);
    if (r.tuples().empty()) continue;
    obs::Json tuples = obs::Json::Array();
    for (const Tuple& t : r.tuples()) {
      obs::Json tuple = obs::Json::Array();
      for (SymbolId v : t) {
        tuple.Append(obs::Json::Str(spec.symbols().Name(v)));
      }
      tuples.Append(std::move(tuple));
    }
    j.Set(catalog.schema(id).name, std::move(tuples));
  }
  return j;
}

Status InstanceFromJson(const obs::Json& j, WebAppSpec* spec,
                        Instance* out) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "instance"));
  *out = Instance(&spec->catalog());
  for (const auto& [name, tuples] : j.members()) {
    RelationId id = spec->catalog().Find(name);
    if (id == kInvalidRelation) {
      return Status::InvalidArgument("instance: unknown relation '" + name +
                                         "'",
                                     WAVE_LOC);
    }
    if (!tuples.is_array()) return TypeError("instance." + name, "array");
    int arity = spec->catalog().schema(id).arity;
    for (const obs::Json& tuple : tuples.items()) {
      if (!tuple.is_array() || static_cast<int>(tuple.size()) != arity) {
        return Status::InvalidArgument(
            "instance." + name + ": tuple arity mismatch", WAVE_LOC);
      }
      Tuple t;
      for (const obs::Json& v : tuple.items()) {
        if (!v.is_string()) return TypeError("instance." + name, "string");
        t.push_back(spec->symbols().Intern(v.AsString()));
      }
      out->relation(id).Insert(t);
    }
  }
  return Status::Ok();
}

obs::Json StepsToJson(const std::vector<CounterexampleStep>& steps,
                      const WebAppSpec& spec) {
  obs::Json arr = obs::Json::Array();
  for (const CounterexampleStep& step : steps) {
    obs::Json j = obs::Json::Object();
    j.Set("buchi_state", obs::Json::Int(step.buchi_state));
    j.Set("page", obs::Json::Str(spec.page(step.config.page).name));
    j.Set("data", InstanceToJson(step.config.data, spec));
    j.Set("previous", InstanceToJson(step.config.previous, spec));
    arr.Append(std::move(j));
  }
  return arr;
}

Status StepsFromJson(const obs::Json& j, WebAppSpec* spec,
                     std::vector<CounterexampleStep>* out) {
  if (!j.is_array()) return TypeError("steps", "array");
  for (const obs::Json& step_json : j.items()) {
    WAVE_RETURN_IF_ERROR(RequireObject(step_json, "step"));
    CounterexampleStep step;
    int64_t state = 0;
    WAVE_RETURN_IF_ERROR(ReadInt(step_json, "buchi_state", &state));
    step.buchi_state = static_cast<int>(state);
    std::string page;
    WAVE_RETURN_IF_ERROR(ReadString(step_json, "page", &page));
    step.config.page = spec->PageIndex(page);
    if (step.config.page < 0) {
      return Status::InvalidArgument("step: unknown page '" + page + "'",
                                     WAVE_LOC);
    }
    const obs::Json* data = step_json.Find("data");
    const obs::Json* previous = step_json.Find("previous");
    if (data == nullptr || previous == nullptr) {
      return Status::InvalidArgument("step: missing data/previous", WAVE_LOC);
    }
    WAVE_RETURN_IF_ERROR(InstanceFromJson(*data, spec, &step.config.data));
    WAVE_RETURN_IF_ERROR(
        InstanceFromJson(*previous, spec, &step.config.previous));
    out->push_back(std::move(step));
  }
  return Status::Ok();
}

obs::Json RungToJson(const RetryRung& rung) {
  obs::Json j = obs::Json::Object();
  j.Set("name", obs::Json::Str(rung.name));
  j.Set("max_candidates", obs::Json::Int(rung.max_candidates));
  j.Set("max_expansions", obs::Json::Int(rung.max_expansions));
  j.Set("exhaustive_existential",
        obs::Json::Bool(rung.exhaustive_existential));
  return j;
}

StatusOr<RetryRung> RungFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "rung"));
  RetryRung rung;
  WAVE_RETURN_IF_ERROR(ReadString(j, "name", &rung.name));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "max_candidates", &rung.max_candidates));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "max_expansions", &rung.max_expansions));
  WAVE_RETURN_IF_ERROR(
      ReadBool(j, "exhaustive_existential", &rung.exhaustive_existential));
  return rung;
}

}  // namespace

Status CheckSchemaVersion(const obs::Json& doc) {
  WAVE_RETURN_IF_ERROR(RequireObject(doc, "document"));
  int64_t version = 1;  // unstamped documents read as version 1
  WAVE_RETURN_IF_ERROR(ReadInt(doc, "schema_version", &version));
  if (version < 1 || version > kSchemaVersion) {
    return Status::InvalidArgument(
        "schema_version " + std::to_string(version) +
            " not supported (this build speaks 1.." +
            std::to_string(kSchemaVersion) + ")",
        WAVE_LOC);
  }
  return Status::Ok();
}

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "violated";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

StatusOr<Verdict> ParseVerdict(const std::string& name) {
  if (name == "holds") return Verdict::kHolds;
  if (name == "violated") return Verdict::kViolated;
  if (name == "unknown") return Verdict::kUnknown;
  return Status::InvalidArgument("unknown verdict '" + name + "'", WAVE_LOC);
}

StatusOr<UnknownReason> ParseUnknownReason(const std::string& name) {
  static constexpr UnknownReason kAll[] = {
      UnknownReason::kNone,            UnknownReason::kTimeout,
      UnknownReason::kMemoryLimit,     UnknownReason::kCandidateBudget,
      UnknownReason::kExpansionBudget, UnknownReason::kCancelled,
      UnknownReason::kRejectedCandidates,
  };
  for (UnknownReason r : kAll) {
    if (name == UnknownReasonName(r)) return r;
  }
  return Status::InvalidArgument("unknown unknown_reason '" + name + "'",
                                 WAVE_LOC);
}

StatusOr<StatusCode> ParseStatusCode(const std::string& name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted, StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded,  StatusCode::kUnavailable,
      StatusCode::kInternal,     StatusCode::kShuttingDown,
  };
  for (StatusCode c : kAll) {
    if (name == StatusCodeName(c)) return c;
  }
  return Status::InvalidArgument("unknown status code '" + name + "'",
                                 WAVE_LOC);
}

obs::Json StatusToJson(const Status& status) {
  obs::Json j = obs::Json::Object();
  j.Set("code", obs::Json::Str(StatusCodeName(status.code())));
  j.Set("message", obs::Json::Str(status.message()));
  return j;
}

Status StatusFromJson(const obs::Json& j, Status* out) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "status"));
  std::string code_name = "OK";
  std::string message;
  WAVE_RETURN_IF_ERROR(ReadString(j, "code", &code_name));
  WAVE_RETURN_IF_ERROR(ReadString(j, "message", &message));
  WAVE_ASSIGN_OR_RETURN(StatusCode code, ParseStatusCode(code_name));
  *out = Status(code, std::move(message));
  return Status::Ok();
}

obs::Json OptionsToJson(const VerifyOptions& options) {
  obs::Json j = obs::Json::Object();
  j.Set("heuristic1", obs::Json::Bool(options.heuristic1));
  j.Set("heuristic2", obs::Json::Bool(options.heuristic2));
  j.Set("exhaustive_existential",
        obs::Json::Bool(options.exhaustive_existential));
  j.Set("max_candidates", obs::Json::Int(options.max_candidates));
  j.Set("timeout_seconds", obs::Json::Number(options.timeout_seconds));
  j.Set("max_expansions", obs::Json::Int(options.max_expansions));
  j.Set("max_memory_bytes", obs::Json::Int(options.max_memory_bytes));
  j.Set("heartbeat_interval_seconds",
        obs::Json::Number(options.heartbeat_interval_seconds));
  return j;
}

StatusOr<VerifyOptions> OptionsFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "options"));
  VerifyOptions options;
  WAVE_RETURN_IF_ERROR(ReadBool(j, "heuristic1", &options.heuristic1));
  WAVE_RETURN_IF_ERROR(ReadBool(j, "heuristic2", &options.heuristic2));
  WAVE_RETURN_IF_ERROR(ReadBool(j, "exhaustive_existential",
                                &options.exhaustive_existential));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "max_candidates", &options.max_candidates));
  WAVE_RETURN_IF_ERROR(
      ReadDouble(j, "timeout_seconds", &options.timeout_seconds));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "max_expansions", &options.max_expansions));
  WAVE_RETURN_IF_ERROR(
      ReadInt(j, "max_memory_bytes", &options.max_memory_bytes));
  WAVE_RETURN_IF_ERROR(ReadDouble(j, "heartbeat_interval_seconds",
                                  &options.heartbeat_interval_seconds));
  return options;
}

obs::Json RetryPolicyToJson(const RetryPolicy& retry) {
  obs::Json j = obs::Json::Object();
  j.Set("enabled", obs::Json::Bool(retry.enabled));
  j.Set("total_budget_seconds",
        obs::Json::Number(retry.total_budget_seconds));
  obs::Json ladder = obs::Json::Array();
  for (const RetryRung& rung : retry.ladder) ladder.Append(RungToJson(rung));
  j.Set("ladder", std::move(ladder));
  return j;
}

StatusOr<RetryPolicy> RetryPolicyFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "retry"));
  RetryPolicy retry;
  WAVE_RETURN_IF_ERROR(ReadBool(j, "enabled", &retry.enabled));
  WAVE_RETURN_IF_ERROR(
      ReadDouble(j, "total_budget_seconds", &retry.total_budget_seconds));
  const obs::Json* ladder = j.Find("ladder");
  if (ladder != nullptr) {
    if (!ladder->is_array()) return TypeError("retry.ladder", "array");
    for (const obs::Json& rung_json : ladder->items()) {
      WAVE_ASSIGN_OR_RETURN(RetryRung rung, RungFromJson(rung_json));
      retry.ladder.push_back(std::move(rung));
    }
  }
  return retry;
}

obs::Json HistogramToJson(const obs::HistogramData& h) {
  obs::Json j = obs::Json::Object();
  j.Set("count", obs::Json::Int(h.count));
  if (h.count == 0) return j;
  j.Set("sum", obs::Json::Number(h.sum));
  j.Set("min", obs::Json::Number(h.min));
  j.Set("max", obs::Json::Number(h.max));
  obs::Json buckets = obs::Json::Array();
  for (int i = 0; i < obs::HistogramData::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    obs::Json pair = obs::Json::Array();
    pair.Append(obs::Json::Int(i));
    pair.Append(obs::Json::Int(h.buckets[i]));
    buckets.Append(std::move(pair));
  }
  j.Set("buckets", std::move(buckets));
  return j;
}

StatusOr<obs::HistogramData> HistogramFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "histogram"));
  obs::HistogramData h;
  WAVE_RETURN_IF_ERROR(ReadInt(j, "count", &h.count));
  if (h.count == 0) return h;
  WAVE_RETURN_IF_ERROR(ReadDouble(j, "sum", &h.sum));
  WAVE_RETURN_IF_ERROR(ReadDouble(j, "min", &h.min));
  WAVE_RETURN_IF_ERROR(ReadDouble(j, "max", &h.max));
  const obs::Json* buckets = j.Find("buckets");
  if (buckets != nullptr) {
    if (!buckets->is_array()) return TypeError("histogram.buckets", "array");
    for (const obs::Json& pair : buckets->items()) {
      if (!pair.is_array() || pair.size() != 2 ||
          !pair.items()[0].is_number() || !pair.items()[1].is_number()) {
        return TypeError("histogram.buckets", "[index,count] pair");
      }
      int64_t index = pair.items()[0].AsInt();
      if (index < 0 || index >= obs::HistogramData::kNumBuckets) {
        return Status::InvalidArgument(
            "histogram.buckets: index " + std::to_string(index) +
                " out of range",
            WAVE_LOC);
      }
      h.buckets[index] = pair.items()[1].AsInt();
    }
  }
  return h;
}

obs::Json StatsToJson(const VerifyStats& stats) {
  obs::Json j = obs::Json::Object();
  j.Set("seconds", obs::Json::Number(stats.seconds));
  j.Set("prepare_seconds", obs::Json::Number(stats.prepare_seconds));
  j.Set("dataflow_seconds", obs::Json::Number(stats.dataflow_seconds));
  j.Set("search_seconds", obs::Json::Number(stats.search_seconds));
  j.Set("validate_seconds", obs::Json::Number(stats.validate_seconds));
  j.Set("max_pseudorun_length", obs::Json::Int(stats.max_pseudorun_length));
  j.Set("max_trie_size", obs::Json::Int(stats.max_trie_size));
  j.Set("buchi_states", obs::Json::Int(stats.buchi_states));
  j.Set("num_assignments", obs::Json::Int(stats.num_assignments));
  j.Set("num_cores", obs::Json::Int(stats.num_cores));
  j.Set("num_expansions", obs::Json::Int(stats.num_expansions));
  j.Set("num_successors", obs::Json::Int(stats.num_successors));
  j.Set("num_rejected_candidates",
        obs::Json::Int(stats.num_rejected_candidates));
  j.Set("trie_hits", obs::Json::Int(stats.trie_hits));
  j.Set("trie_misses", obs::Json::Int(stats.trie_misses));
  j.Set("heartbeats", obs::Json::Int(stats.heartbeats));
  j.Set("peak_memory_bytes", obs::Json::Int(stats.peak_memory_bytes));
  j.Set("governor_polls", obs::Json::Int(stats.governor_polls));
  j.Set("cache_hits", obs::Json::Int(stats.cache_hits));
  j.Set("prepass_reuses", obs::Json::Int(stats.prepass_reuses));
  j.Set("trie_depth", HistogramToJson(stats.trie_depth));
  j.Set("frontier_size", HistogramToJson(stats.frontier_size));
  j.Set("search_depth", HistogramToJson(stats.search_depth));
  j.Set("trie_lookup_us", HistogramToJson(stats.trie_lookup_us));
  j.Set("shard_expansions", HistogramToJson(stats.shard_expansions));
  j.Set("shard_alloc_bytes", HistogramToJson(stats.shard_alloc_bytes));
  j.Set("trie_nodes", obs::Json::Int(stats.trie_nodes));
  j.Set("alloc_bytes", obs::Json::Int(stats.alloc_bytes));
  j.Set("alloc_count", obs::Json::Int(stats.alloc_count));
  return j;
}

StatusOr<VerifyStats> StatsFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "stats"));
  VerifyStats s;
  WAVE_RETURN_IF_ERROR(ReadDouble(j, "seconds", &s.seconds));
  WAVE_RETURN_IF_ERROR(ReadDouble(j, "prepare_seconds", &s.prepare_seconds));
  WAVE_RETURN_IF_ERROR(
      ReadDouble(j, "dataflow_seconds", &s.dataflow_seconds));
  WAVE_RETURN_IF_ERROR(ReadDouble(j, "search_seconds", &s.search_seconds));
  WAVE_RETURN_IF_ERROR(
      ReadDouble(j, "validate_seconds", &s.validate_seconds));
  WAVE_RETURN_IF_ERROR(
      ReadInt(j, "max_pseudorun_length", &s.max_pseudorun_length));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "max_trie_size", &s.max_trie_size));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "buchi_states", &s.buchi_states));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "num_assignments", &s.num_assignments));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "num_cores", &s.num_cores));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "num_expansions", &s.num_expansions));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "num_successors", &s.num_successors));
  WAVE_RETURN_IF_ERROR(
      ReadInt(j, "num_rejected_candidates", &s.num_rejected_candidates));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "trie_hits", &s.trie_hits));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "trie_misses", &s.trie_misses));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "heartbeats", &s.heartbeats));
  WAVE_RETURN_IF_ERROR(
      ReadInt(j, "peak_memory_bytes", &s.peak_memory_bytes));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "governor_polls", &s.governor_polls));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "cache_hits", &s.cache_hits));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "prepass_reuses", &s.prepass_reuses));
  const struct {
    const char* key;
    obs::HistogramData* field;
  } kHistograms[] = {
      {"trie_depth", &s.trie_depth},
      {"frontier_size", &s.frontier_size},
      {"search_depth", &s.search_depth},
      {"trie_lookup_us", &s.trie_lookup_us},
      {"shard_expansions", &s.shard_expansions},
      {"shard_alloc_bytes", &s.shard_alloc_bytes},
  };
  for (const auto& entry : kHistograms) {
    const obs::Json* h = j.Find(entry.key);
    if (h == nullptr) continue;
    WAVE_ASSIGN_OR_RETURN(*entry.field, HistogramFromJson(*h));
  }
  WAVE_RETURN_IF_ERROR(ReadInt(j, "trie_nodes", &s.trie_nodes));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "alloc_bytes", &s.alloc_bytes));
  WAVE_RETURN_IF_ERROR(ReadInt(j, "alloc_count", &s.alloc_count));
  return s;
}

obs::Json RequestToJson(const VerifyRequest& request) {
  obs::Json j = obs::Json::Object();
  j.Set("schema_version", obs::Json::Int(kSchemaVersion));
  if (request.property != nullptr) {
    j.Set("property", obs::Json::Str(request.property->name));
  } else if (!request.property_name.empty()) {
    j.Set("property", obs::Json::Str(request.property_name));
  } else if (request.property_index >= 0) {
    j.Set("property_index", obs::Json::Int(request.property_index));
  }
  j.Set("options", OptionsToJson(request.options));
  j.Set("retry", RetryPolicyToJson(request.retry));
  j.Set("jobs", obs::Json::Int(request.jobs));
  return j;
}

StatusOr<VerifyRequest> RequestFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(CheckSchemaVersion(j));
  VerifyRequest request;
  WAVE_RETURN_IF_ERROR(ReadString(j, "property", &request.property_name));
  WAVE_RETURN_IF_ERROR(
      ReadInt(j, "property_index", &request.property_index));
  const obs::Json* options = j.Find("options");
  if (options != nullptr) {
    WAVE_ASSIGN_OR_RETURN(request.options, OptionsFromJson(*options));
  }
  const obs::Json* retry = j.Find("retry");
  if (retry != nullptr) {
    WAVE_ASSIGN_OR_RETURN(request.retry, RetryPolicyFromJson(*retry));
  }
  WAVE_RETURN_IF_ERROR(ReadInt(j, "jobs", &request.jobs));
  return request;
}

obs::Json BatchRequestToJson(const WireBatchRequest& batch) {
  obs::Json j = obs::Json::Object();
  j.Set("schema_version", obs::Json::Int(kSchemaVersion));
  if (!batch.property_names.empty()) {
    obs::Json names = obs::Json::Array();
    for (const std::string& name : batch.property_names) {
      names.Append(obs::Json::Str(name));
    }
    j.Set("properties", std::move(names));
  } else if (!batch.request.property_indices.empty()) {
    obs::Json indices = obs::Json::Array();
    for (int index : batch.request.property_indices) {
      indices.Append(obs::Json::Int(index));
    }
    j.Set("property_indices", std::move(indices));
  }
  j.Set("options", OptionsToJson(batch.request.options));
  j.Set("retry", RetryPolicyToJson(batch.request.retry));
  j.Set("jobs", obs::Json::Int(batch.request.jobs));
  return j;
}

StatusOr<WireBatchRequest> BatchRequestFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(CheckSchemaVersion(j));
  WireBatchRequest batch;
  const obs::Json* names = j.Find("properties");
  if (names != nullptr) {
    if (!names->is_array()) return TypeError("properties", "array");
    for (const obs::Json& name : names->items()) {
      if (!name.is_string()) return TypeError("properties", "string");
      batch.property_names.push_back(name.AsString());
    }
  }
  const obs::Json* indices = j.Find("property_indices");
  if (indices != nullptr) {
    if (!indices->is_array()) return TypeError("property_indices", "array");
    for (const obs::Json& index : indices->items()) {
      if (!index.is_number()) return TypeError("property_indices", "number");
      batch.request.property_indices.push_back(
          static_cast<int>(index.AsInt()));
    }
  }
  const obs::Json* options = j.Find("options");
  if (options != nullptr) {
    WAVE_ASSIGN_OR_RETURN(batch.request.options, OptionsFromJson(*options));
  }
  const obs::Json* retry = j.Find("retry");
  if (retry != nullptr) {
    WAVE_ASSIGN_OR_RETURN(batch.request.retry, RetryPolicyFromJson(*retry));
  }
  WAVE_RETURN_IF_ERROR(ReadInt(j, "jobs", &batch.request.jobs));
  return batch;
}

Status BindBatchRequest(WireBatchRequest* batch,
                        const std::vector<Property>& properties) {
  batch->request.properties = &properties;
  if (batch->property_names.empty()) return Status::Ok();
  if (!batch->request.property_indices.empty()) {
    return Status::InvalidArgument(
        "batch selects both 'properties' (names) and 'property_indices'",
        WAVE_LOC);
  }
  for (const std::string& name : batch->property_names) {
    int found = -1;
    for (size_t i = 0; i < properties.size(); ++i) {
      if (properties[i].name == name) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      return Status::NotFound("unknown property '" + name + "'", WAVE_LOC);
    }
    batch->request.property_indices.push_back(found);
  }
  return Status::Ok();
}

obs::Json AttemptToJson(const AttemptRecord& attempt) {
  obs::Json j = obs::Json::Object();
  j.Set("rung", obs::Json::Int(attempt.rung));
  j.Set("rung_name", obs::Json::Str(attempt.rung_name));
  j.Set("budget_seconds", obs::Json::Number(attempt.budget_seconds));
  j.Set("elapsed_seconds", obs::Json::Number(attempt.elapsed_seconds));
  j.Set("verdict", obs::Json::Str(VerdictName(attempt.verdict)));
  j.Set("unknown_reason",
        obs::Json::Str(UnknownReasonName(attempt.unknown_reason)));
  j.Set("failure_reason", obs::Json::Str(attempt.failure_reason));
  j.Set("stats", StatsToJson(attempt.stats));
  return j;
}

StatusOr<AttemptRecord> AttemptFromJson(const obs::Json& j) {
  WAVE_RETURN_IF_ERROR(RequireObject(j, "attempt"));
  AttemptRecord attempt;
  WAVE_RETURN_IF_ERROR(ReadInt(j, "rung", &attempt.rung));
  WAVE_RETURN_IF_ERROR(ReadString(j, "rung_name", &attempt.rung_name));
  WAVE_RETURN_IF_ERROR(
      ReadDouble(j, "budget_seconds", &attempt.budget_seconds));
  WAVE_RETURN_IF_ERROR(
      ReadDouble(j, "elapsed_seconds", &attempt.elapsed_seconds));
  std::string verdict = "unknown";
  WAVE_RETURN_IF_ERROR(ReadString(j, "verdict", &verdict));
  WAVE_ASSIGN_OR_RETURN(attempt.verdict, ParseVerdict(verdict));
  std::string reason = "none";
  WAVE_RETURN_IF_ERROR(ReadString(j, "unknown_reason", &reason));
  WAVE_ASSIGN_OR_RETURN(attempt.unknown_reason, ParseUnknownReason(reason));
  WAVE_RETURN_IF_ERROR(
      ReadString(j, "failure_reason", &attempt.failure_reason));
  const obs::Json* stats = j.Find("stats");
  if (stats != nullptr) {
    WAVE_ASSIGN_OR_RETURN(attempt.stats, StatsFromJson(*stats));
  }
  return attempt;
}

obs::Json ResponseToJson(const VerifyResponse& response,
                         const WebAppSpec& spec) {
  obs::Json j = obs::Json::Object();
  j.Set("schema_version", obs::Json::Int(kSchemaVersion));
  j.Set("verdict", obs::Json::Str(VerdictName(response.verdict)));
  j.Set("unknown_reason",
        obs::Json::Str(UnknownReasonName(response.unknown_reason)));
  j.Set("failure_reason", obs::Json::Str(response.failure_reason));
  if (response.verdict == Verdict::kViolated) {
    obs::Json binding = obs::Json::Object();
    for (const auto& [var, value] : response.witness_binding) {
      binding.Set(var, obs::Json::Str(spec.symbols().Name(value)));
    }
    j.Set("witness_binding", std::move(binding));
    j.Set("stick", StepsToJson(response.stick, spec));
    j.Set("candy", StepsToJson(response.candy, spec));
  }
  j.Set("stats", StatsToJson(response.stats));
  if (!response.attempts.empty()) {
    obs::Json attempts = obs::Json::Array();
    for (const AttemptRecord& attempt : response.attempts) {
      attempts.Append(AttemptToJson(attempt));
    }
    j.Set("attempts", std::move(attempts));
  }
  j.Set("decided_rung", obs::Json::Int(response.decided_rung));
  return j;
}

StatusOr<VerifyResponse> ResponseFromJson(const obs::Json& j,
                                          WebAppSpec* spec) {
  WAVE_RETURN_IF_ERROR(CheckSchemaVersion(j));
  VerifyResponse response;
  std::string verdict = "unknown";
  WAVE_RETURN_IF_ERROR(ReadString(j, "verdict", &verdict));
  WAVE_ASSIGN_OR_RETURN(response.verdict, ParseVerdict(verdict));
  std::string reason = "none";
  WAVE_RETURN_IF_ERROR(ReadString(j, "unknown_reason", &reason));
  WAVE_ASSIGN_OR_RETURN(response.unknown_reason, ParseUnknownReason(reason));
  WAVE_RETURN_IF_ERROR(
      ReadString(j, "failure_reason", &response.failure_reason));
  const obs::Json* binding = j.Find("witness_binding");
  if (binding != nullptr) {
    WAVE_RETURN_IF_ERROR(RequireObject(*binding, "witness_binding"));
    for (const auto& [var, value] : binding->members()) {
      if (!value.is_string()) return TypeError("witness_binding", "string");
      response.witness_binding[var] = spec->symbols().Intern(value.AsString());
    }
  }
  const obs::Json* stick = j.Find("stick");
  if (stick != nullptr) {
    WAVE_RETURN_IF_ERROR(StepsFromJson(*stick, spec, &response.stick));
  }
  const obs::Json* candy = j.Find("candy");
  if (candy != nullptr) {
    WAVE_RETURN_IF_ERROR(StepsFromJson(*candy, spec, &response.candy));
  }
  const obs::Json* stats = j.Find("stats");
  if (stats != nullptr) {
    WAVE_ASSIGN_OR_RETURN(response.stats, StatsFromJson(*stats));
  }
  const obs::Json* attempts = j.Find("attempts");
  if (attempts != nullptr) {
    if (!attempts->is_array()) return TypeError("attempts", "array");
    for (const obs::Json& attempt_json : attempts->items()) {
      WAVE_ASSIGN_OR_RETURN(AttemptRecord attempt,
                            AttemptFromJson(attempt_json));
      response.attempts.push_back(std::move(attempt));
    }
  }
  WAVE_RETURN_IF_ERROR(ReadInt(j, "decided_rung", &response.decided_rung));
  return response;
}

obs::Json BatchResponseToJson(const BatchResponse& batch,
                              const WebAppSpec& spec) {
  obs::Json j = obs::Json::Object();
  j.Set("schema_version", obs::Json::Int(kSchemaVersion));
  obs::Json responses = obs::Json::Array();
  for (const VerifyResponse& response : batch.responses) {
    // Nested responses carry no stamp of their own: the envelope's governs.
    obs::Json r = ResponseToJson(response, spec);
    obs::Json stripped = obs::Json::Object();
    for (const auto& [key, value] : r.members()) {
      if (key != "schema_version") stripped.Set(key, value);
    }
    responses.Append(std::move(stripped));
  }
  j.Set("responses", std::move(responses));
  j.Set("merged", StatsToJson(batch.merged));
  return j;
}

StatusOr<BatchResponse> BatchResponseFromJson(const obs::Json& j,
                                              WebAppSpec* spec) {
  WAVE_RETURN_IF_ERROR(CheckSchemaVersion(j));
  BatchResponse batch;
  const obs::Json* responses = j.Find("responses");
  if (responses != nullptr) {
    if (!responses->is_array()) return TypeError("responses", "array");
    for (const obs::Json& response_json : responses->items()) {
      WAVE_ASSIGN_OR_RETURN(VerifyResponse response,
                            ResponseFromJson(response_json, spec));
      batch.responses.push_back(std::move(response));
    }
  }
  const obs::Json* merged = j.Find("merged");
  if (merged != nullptr) {
    WAVE_ASSIGN_OR_RETURN(batch.merged, StatsFromJson(*merged));
  }
  return batch;
}

}  // namespace wave::api
