// Versioned wire schema for the verifier API (ISSUE 9).
//
// `Verifier::Run`/`RunBatch` consume in-process structs full of borrowed
// pointers; a daemon, CLI clients and future frontends need the same
// types as *values on a wire*. This layer defines the JSON encoding:
//
//   * every top-level document is stamped `"schema_version": 1`
//     (`kSchemaVersion`). A missing stamp is read as version 1; a stamp
//     newer than this build understands is a typed InvalidArgument, so
//     old servers fail loudly instead of guessing;
//   * unknown fields are ignored everywhere (forward compatibility: a
//     newer client may send fields this build does not know);
//   * symbols travel by *name* (witness bindings, counterexample tuples,
//     page names) — SymbolIds are process-local interning artifacts;
//   * options round-trip exactly: every serializable `VerifyOptions`
//     field is always emitted, so parse→serialize is canonical and
//     byte-stable. Process-local members (callbacks, tracer/metrics
//     pointers, cancellation tokens, cache handles) are NOT serialized;
//     the receiving side wires its own;
//   * histograms use a lossless sparse-bucket encoding (`HistogramData`
//     merges are exact, and so is the wire form), unlike the summary
//     shape `VerifyStats::ToJson` emits for human-facing stats files.
//
// The on-disk `ResultCache` record payload (verifier/cache.cc) is a
// *different*, frozen format with its own compatibility rules; the
// duplication is deliberate — cache records must never change shape
// because the wire schema evolved, and vice versa.
#ifndef WAVE_API_WIRE_H_
#define WAVE_API_WIRE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "verifier/verifier.h"

namespace wave::api {

/// The wire schema version this build reads and writes.
inline constexpr int kSchemaVersion = 1;

/// Verifies a document's `schema_version` stamp: absent reads as 1,
/// anything in [1, kSchemaVersion] is accepted, newer is InvalidArgument.
Status CheckSchemaVersion(const obs::Json& doc);

// --- enum <-> stable wire names ---------------------------------------------

/// "holds" / "violated" / "unknown".
const char* VerdictName(Verdict v);
/// Inverse of `VerdictName`; InvalidArgument on an unknown name.
StatusOr<Verdict> ParseVerdict(const std::string& name);

/// Inverse of `UnknownReasonName` (governor.h); InvalidArgument on an
/// unknown name.
StatusOr<UnknownReason> ParseUnknownReason(const std::string& name);

/// Inverse of `StatusCodeName` (common/status.h); InvalidArgument on an
/// unknown name.
StatusOr<StatusCode> ParseStatusCode(const std::string& name);

// --- Status -----------------------------------------------------------------

/// {"code": "INVALID_ARGUMENT", "message": "..."} — the source location is
/// process-local and does not travel.
obs::Json StatusToJson(const Status& status);
/// Out-parameter form (a `StatusOr<Status>` would be ambiguous): `*out`
/// receives the decoded status, the return value reports decode failure.
Status StatusFromJson(const obs::Json& j, Status* out);

// --- options / retry --------------------------------------------------------

/// Every serializable field, always emitted (canonical form).
obs::Json OptionsToJson(const VerifyOptions& options);
StatusOr<VerifyOptions> OptionsFromJson(const obs::Json& j);

obs::Json RetryPolicyToJson(const RetryPolicy& retry);
StatusOr<RetryPolicy> RetryPolicyFromJson(const obs::Json& j);

// --- stats (lossless, incl. histograms) -------------------------------------

/// Sparse-bucket lossless encoding: {"count":N,"sum":S,"min":m,"max":M,
/// "buckets":[[index,count],...]}; an empty histogram is {"count":0}.
obs::Json HistogramToJson(const obs::HistogramData& h);
StatusOr<obs::HistogramData> HistogramFromJson(const obs::Json& j);

obs::Json StatsToJson(const VerifyStats& stats);
StatusOr<VerifyStats> StatsFromJson(const obs::Json& j);

// --- requests ---------------------------------------------------------------

/// Serializes the property selector by NAME: a `property` pointer renders
/// as its name, `property_name` as itself, `property_index` as the index.
/// `properties`/`cache` pointers do not travel — the receiver binds its
/// own catalog and cache.
obs::Json RequestToJson(const VerifyRequest& request);

/// Parses a request; the property selector comes back as
/// `property_name`/`property_index` for the caller to bind (set
/// `request.properties` to a catalog before `Verifier::Run`).
StatusOr<VerifyRequest> RequestFromJson(const obs::Json& j);

/// A `BatchRequest` plus the wire-only by-name selector (the in-process
/// struct selects by index only; the wire also accepts names, which the
/// server resolves against its catalog).
struct WireBatchRequest {
  BatchRequest request;
  std::vector<std::string> property_names;
};

obs::Json BatchRequestToJson(const WireBatchRequest& batch);
StatusOr<WireBatchRequest> BatchRequestFromJson(const obs::Json& j);

/// Resolves `property_names` (if any) against `properties` into
/// `request.property_indices` and binds the catalog pointer.
/// NotFound for a name missing from the catalog.
Status BindBatchRequest(WireBatchRequest* batch,
                        const std::vector<Property>& properties);

// --- responses --------------------------------------------------------------

obs::Json AttemptToJson(const AttemptRecord& attempt);
StatusOr<AttemptRecord> AttemptFromJson(const obs::Json& j);

/// Counterexample steps/bindings render symbols by name via `spec`.
obs::Json ResponseToJson(const VerifyResponse& response,
                         const WebAppSpec& spec);
/// Re-interns symbol names into `spec`'s symbol table.
StatusOr<VerifyResponse> ResponseFromJson(const obs::Json& j,
                                          WebAppSpec* spec);

obs::Json BatchResponseToJson(const BatchResponse& batch,
                              const WebAppSpec& spec);
StatusOr<BatchResponse> BatchResponseFromJson(const obs::Json& j,
                                              WebAppSpec* spec);

}  // namespace wave::api

#endif  // WAVE_API_WIRE_H_
