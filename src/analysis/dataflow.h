// Dataflow analysis for potential comparisons (paper Section 3.2).
//
// For every attribute position (relation, column) the analysis
// overestimates:
//   * `constants(R,i)`   — the constants the position may ever be compared
//     to, explicitly (a constant in an atom / an equality) or implicitly
//     (through equality transitivity within a rule, or through values being
//     copied into a state/input/action attribute that is itself compared);
//   * `input_links(R,i)` — the input attribute positions the position may
//     be compared to (the ingredient of Heuristic 2's extension pruning).
//
// Comparison sets propagate *backwards* along copy edges: if a rule head
// H(..x..) copies from a body atom R(..x..), anything compared to the head
// position is potentially compared to the source position (paper
// Example 3.6: property constants on `userchoice` flow back through the
// `laptopsearch` input into `criteria`).
#ifndef WAVE_ANALYSIS_DATAFLOW_H_
#define WAVE_ANALYSIS_DATAFLOW_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "fo/formula.h"
#include "spec/web_app.h"

namespace wave {

/// An attribute position: relation id + 0-based column.
struct AttrPos {
  RelationId relation = kInvalidRelation;
  int column = 0;

  friend bool operator<(const AttrPos& a, const AttrPos& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.column < b.column;
  }
  friend bool operator==(const AttrPos& a, const AttrPos& b) {
    return a.relation == b.relation && a.column == b.column;
  }
};

/// Result of the comparison dataflow.
class ComparisonAnalysis {
 public:
  /// Runs the analysis over all rules of `spec` plus the given extra
  /// formulas (typically the property's FO components, instantiated or
  /// not). Linear in the size of spec+formulas (modulo the fixpoint, which
  /// converges in a handful of rounds on real specs).
  ComparisonAnalysis(const WebAppSpec& spec,
                     const std::vector<FormulaPtr>& extra_formulas);

  /// Constants the position may be compared to.
  const std::set<SymbolId>& constants(AttrPos pos) const;

  /// Input attribute positions the position may be compared to.
  const std::set<AttrPos>& input_links(AttrPos pos) const;

 private:
  /// Processes one formula: equality classes, explicit constants, and (when
  /// `head` is non-null) copy edges from head positions to body positions.
  void ProcessFormula(const FormulaPtr& body, RelationId head_relation,
                      const std::vector<Term>* head);

  const WebAppSpec* spec_;
  std::map<AttrPos, std::set<SymbolId>> constants_;
  std::map<AttrPos, std::set<AttrPos>> input_links_;
  // copy_edges_[target] = set of sources whose comparison sets must include
  // target's (backward flow: head -> body-source positions).
  std::map<AttrPos, std::set<AttrPos>> copy_edges_;

  std::set<SymbolId> empty_constants_;
  std::set<AttrPos> empty_links_;
};

}  // namespace wave

#endif  // WAVE_ANALYSIS_DATAFLOW_H_
