#include "analysis/candidates.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "obs/alloc.h"

namespace wave {

namespace {

/// Collects every (relation) atom of a formula into `out`.
void CollectAtoms(const FormulaPtr& f, std::vector<FormulaPtr>* out) {
  switch (f->kind()) {
    case Formula::Kind::kAtom:
      out->push_back(f);
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      CollectAtoms(f->body(), out);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
      CollectAtoms(f->left(), out);
      CollectAtoms(f->right(), out);
      return;
    default:
      return;
  }
}

/// Collects direct var=const equalities of a formula.
void CollectVarConstEqualities(const FormulaPtr& f,
                               std::map<std::string, SymbolId>* out) {
  switch (f->kind()) {
    case Formula::Kind::kEquals: {
      const Term& a = f->args()[0];
      const Term& b = f->args()[1];
      if (a.is_variable() && !b.is_variable()) {
        out->emplace(a.variable, b.constant);
      } else if (b.is_variable() && !a.is_variable()) {
        out->emplace(b.variable, a.constant);
      }
      return;
    }
    case Formula::Kind::kNot:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      CollectVarConstEqualities(f->body(), out);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
      CollectVarConstEqualities(f->left(), out);
      CollectVarConstEqualities(f->right(), out);
      return;
    default:
      return;
  }
}

}  // namespace

CandidateBuilder::CandidateBuilder(
    WebAppSpec* spec, PageDomains* domains,
    const ComparisonAnalysis* analysis,
    const std::vector<FormulaPtr>* property_components,
    const std::set<SymbolId>& constant_universe,
    const CandidateOptions& options)
    : spec_(spec),
      domains_(domains),
      analysis_(analysis),
      property_components_(property_components),
      constant_universe_(constant_universe),
      options_(options) {}

const PageDomain& PageDomains::Get(int page) {
  auto it = domains_.find(page);
  if (it != domains_.end()) return it->second;

  PageDomain domain;
  const PageSchema& schema = spec_->page(page);
  SymbolTable& symbols = spec_->symbols();
  const std::string prefix = schema.name;

  for (RelationId input : schema.inputs) {
    int arity = spec_->catalog().schema(input).arity;
    for (int j = 0; j < arity; ++j) {
      SymbolId v = symbols.MintFresh(
          prefix + "." + spec_->catalog().schema(input).name + "." +
          std::to_string(j));
      domain.input_values[{input, j}] = v;
    }
  }
  for (size_t r = 0; r < schema.input_rules.size(); ++r) {
    const InputRule& rule = schema.input_rules[r];
    std::set<std::string> head_vars;
    for (const Term& t : rule.head) {
      if (t.is_variable()) head_vars.insert(t.variable);
    }
    std::map<std::string, SymbolId> equalities;
    CollectVarConstEqualities(rule.body, &equalities);
    // Witnesses for every body variable that is neither a head variable nor
    // pinned to a constant.
    std::vector<FormulaPtr> atoms;
    CollectAtoms(rule.body, &atoms);
    for (const FormulaPtr& atom : atoms) {
      for (const Term& t : atom->args()) {
        if (!t.is_variable() || head_vars.count(t.variable) > 0 ||
            equalities.count(t.variable) > 0) {
          continue;
        }
        auto key = std::make_pair(static_cast<int>(r), t.variable);
        if (domain.witnesses.count(key) == 0) {
          domain.witnesses[key] =
              symbols.MintFresh(prefix + ".w." + t.variable);
        }
      }
    }
  }
  for (const auto& [pos, v] : domain.input_values) domain.all_values.push_back(v);
  for (const auto& [key, v] : domain.witnesses) domain.all_values.push_back(v);
  std::sort(domain.all_values.begin(), domain.all_values.end());

  return domains_.emplace(page, std::move(domain)).first->second;
}

void CandidateBuilder::AppendProduct(
    RelationId relation, const std::vector<std::vector<SymbolId>>& value_sets,
    bool require_fresh, CandidateSet* out) {
  // Count first (the product may be astronomically large).
  double product = 1;
  for (const auto& vs : value_sets) {
    if (vs.empty()) return;  // empty attribute set: no candidate tuples
    product *= static_cast<double>(vs.size());
  }
  if (product > 1e6) {
    // Too large to even enumerate for the fresh-value filter; count the
    // whole product as candidates.
    out->approx_tuple_count += product;
    out->overflow = true;
    return;
  }
  // Materialize the product.
  Tuple tuple(value_sets.size());
  std::vector<size_t> idx(value_sets.size(), 0);
  while (true) {
    bool fresh = false;
    for (size_t i = 0; i < value_sets.size(); ++i) {
      tuple[i] = value_sets[i][idx[i]];
      if (constant_universe_.count(tuple[i]) == 0) fresh = true;
    }
    if (!require_fresh || fresh) {
      out->approx_tuple_count += 1;
      if (static_cast<int>(out->tuples.size()) >= options_.max_candidates) {
        out->overflow = true;
      } else {
        out->tuples.emplace_back(relation, tuple);
        obs::CountAlloc(static_cast<int64_t>(
            sizeof(out->tuples.back()) + tuple.size() * sizeof(SymbolId)));
      }
    }
    // Advance the mixed-radix counter.
    size_t i = 0;
    while (i < idx.size() && ++idx[i] == value_sets[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
}

void CandidateBuilder::BuildCore() {
  core_built_ = true;
  std::vector<SymbolId> universe(constant_universe_.begin(),
                                 constant_universe_.end());
  for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
    const RelationSchema& schema = spec_->catalog().schema(id);
    if (schema.kind != RelationKind::kDatabase) continue;
    std::vector<std::vector<SymbolId>> value_sets(schema.arity);
    for (int i = 0; i < schema.arity; ++i) {
      if (options_.heuristic1) {
        const std::set<SymbolId>& allowed = analysis_->constants({id, i});
        for (SymbolId c : allowed) {
          if (constant_universe_.count(c) > 0) value_sets[i].push_back(c);
        }
      } else {
        value_sets[i] = universe;
      }
    }
    AppendProduct(id, value_sets, /*require_fresh=*/false, &core_);
  }
}

const CandidateSet& CandidateBuilder::CoreCandidates() {
  if (!core_built_) BuildCore();
  return core_;
}

SymbolId PageDomains::Witness(int page, const std::string& tag) {
  auto key = std::make_pair(page, tag);
  auto it = generic_witnesses_.find(key);
  if (it != generic_witnesses_.end()) return it->second;
  SymbolId v = spec_->symbols().MintFresh(spec_->page(page).name + ".w." + tag);
  return generic_witnesses_.emplace(key, v).first->second;
}

namespace {

/// Per-variable facts local to one formula, for candidate instantiation.
struct LocalVar {
  std::set<SymbolId> pinned;  // constants the variable is equated to
  // Input positions the variable occurs at: (position, is_previous).
  std::set<std::pair<AttrPos, bool>> input_positions;
  std::set<AttrPos> all_positions;
};

struct LocalFacts {
  std::map<std::string, LocalVar> vars;

  void Walk(const Catalog& catalog, const FormulaPtr& f) {
    switch (f->kind()) {
      case Formula::Kind::kAtom: {
        RelationId id = catalog.Find(f->relation());
        if (id == kInvalidRelation) return;
        RelationKind kind = catalog.schema(id).kind;
        bool is_input = kind == RelationKind::kInput ||
                        kind == RelationKind::kInputConstant;
        for (size_t i = 0; i < f->args().size(); ++i) {
          const Term& t = f->args()[i];
          if (!t.is_variable()) continue;
          LocalVar& v = vars[t.variable];
          AttrPos pos{id, static_cast<int>(i)};
          v.all_positions.insert(pos);
          if (is_input) v.input_positions.insert({pos, f->previous()});
        }
        return;
      }
      case Formula::Kind::kEquals: {
        const Term& a = f->args()[0];
        const Term& b = f->args()[1];
        if (a.is_variable() && !b.is_variable()) {
          vars[a.variable].pinned.insert(b.constant);
        } else if (b.is_variable() && !a.is_variable()) {
          vars[b.variable].pinned.insert(a.constant);
        }
        return;
      }
      case Formula::Kind::kNot:
      case Formula::Kind::kExists:
      case Formula::Kind::kForall:
        Walk(catalog, f->body());
        return;
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr:
      case Formula::Kind::kImplies:
        Walk(catalog, f->left());
        Walk(catalog, f->right());
        return;
      default:
        return;
    }
  }
};

}  // namespace

void CandidateBuilder::AddFormulaCandidates(
    const FormulaPtr& body, int page, int prev_page,
    const std::string& formula_tag, RelationId option_head_relation,
    const std::vector<Term>* option_head, CandidateSet* out) {
  const Catalog& catalog = spec_->catalog();
  LocalFacts facts;
  facts.Walk(catalog, body);
  if (option_head != nullptr) {
    // Option-rule head variables are the values of the generated input
    // tuple: treat the head columns as (current-step) input positions.
    for (size_t j = 0; j < option_head->size(); ++j) {
      const Term& t = (*option_head)[j];
      if (!t.is_variable()) continue;
      AttrPos pos{option_head_relation, static_cast<int>(j)};
      facts.vars[t.variable].all_positions.insert(pos);
      facts.vars[t.variable].input_positions.insert({pos, false});
    }
  }

  const PageDomain& current = page_domain(page);
  const PageDomain* previous =
      prev_page >= 0 ? &page_domain(prev_page) : nullptr;

  // Fresh value of a variable: a linked input position's page value, else a
  // per-variable witness; pinned variables always take their constant(s).
  auto fresh_values = [&](const std::string& var) {
    const LocalVar& info = facts.vars[var];
    std::vector<SymbolId> values(info.pinned.begin(), info.pinned.end());
    if (!values.empty()) return values;
    for (const auto& [pos, is_prev] : info.input_positions) {
      const PageDomain* domain = is_prev ? previous : &current;
      if (domain == nullptr) continue;
      auto it = domain->input_values.find(pos);
      if (it != domain->input_values.end()) values.push_back(it->second);
    }
    if (values.empty()) {
      values.push_back(domains_->Witness(page, formula_tag + "." + var));
    }
    return values;
  };
  // Constants mode: the dataflow-allowed constants of any position the
  // variable occupies (falling back to the fresh values).
  auto constant_values = [&](const std::string& var) {
    const LocalVar& info = facts.vars[var];
    std::vector<SymbolId> values(info.pinned.begin(), info.pinned.end());
    if (!values.empty()) return values;
    std::set<SymbolId> cs;
    for (const AttrPos& pos : info.all_positions) {
      for (SymbolId c : analysis_->constants(pos)) {
        if (constant_universe_.count(c) > 0) cs.insert(c);
      }
    }
    if (!cs.empty()) return std::vector<SymbolId>(cs.begin(), cs.end());
    return fresh_values(var);
  };

  std::vector<FormulaPtr> atoms;
  CollectAtoms(body, &atoms);
  for (const FormulaPtr& atom : atoms) {
    RelationId id = catalog.Find(atom->relation());
    if (id == kInvalidRelation) continue;
    if (catalog.schema(id).kind != RelationKind::kDatabase) continue;
    for (int mode = 0; mode < 2; ++mode) {
      std::vector<std::vector<SymbolId>> value_sets(atom->args().size());
      for (size_t k = 0; k < atom->args().size(); ++k) {
        const Term& t = atom->args()[k];
        if (!t.is_variable()) {
          value_sets[k] = {t.constant};
        } else {
          value_sets[k] =
              mode == 0 ? fresh_values(t.variable) : constant_values(t.variable);
        }
      }
      AppendProduct(id, value_sets, /*require_fresh=*/true, out);
    }
  }
}

CandidateSet CandidateBuilder::BuildExtension(int page, int prev_page) {
  CandidateSet out;

  if (!options_.heuristic2) {
    // Heuristic 2 disabled: every tuple over C ∪ C_{V_t} ∪ C_{V_s} with at
    // least one fresh value is a candidate — Example 3.4's regime.
    const PageDomain& current = page_domain(page);
    std::set<SymbolId> values(constant_universe_.begin(),
                              constant_universe_.end());
    values.insert(current.all_values.begin(), current.all_values.end());
    if (prev_page >= 0) {
      const PageDomain& previous = page_domain(prev_page);
      values.insert(previous.all_values.begin(), previous.all_values.end());
    }
    std::vector<SymbolId> universe(values.begin(), values.end());
    for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
      const RelationSchema& schema = spec_->catalog().schema(id);
      if (schema.kind != RelationKind::kDatabase) continue;
      std::vector<std::vector<SymbolId>> value_sets(schema.arity, universe);
      AppendProduct(id, value_sets, /*require_fresh=*/true, &out);
    }
    return out;
  }

  const PageSchema& schema = spec_->page(page);
  for (size_t r = 0; r < schema.input_rules.size(); ++r) {
    const InputRule& rule = schema.input_rules[r];
    AddFormulaCandidates(rule.body, page, prev_page,
                         "i" + std::to_string(r), rule.relation, &rule.head,
                         &out);
  }
  for (size_t r = 0; r < schema.state_rules.size(); ++r) {
    AddFormulaCandidates(schema.state_rules[r].body, page, prev_page,
                         "s" + std::to_string(r), kInvalidRelation, nullptr,
                         &out);
  }
  for (size_t r = 0; r < schema.action_rules.size(); ++r) {
    AddFormulaCandidates(schema.action_rules[r].body, page, prev_page,
                         "a" + std::to_string(r), kInvalidRelation, nullptr,
                         &out);
  }
  for (size_t r = 0; r < schema.target_rules.size(); ++r) {
    AddFormulaCandidates(schema.target_rules[r].condition, page, prev_page,
                         "t" + std::to_string(r), kInvalidRelation, nullptr,
                         &out);
  }
  if (property_components_ != nullptr) {
    for (size_t r = 0; r < property_components_->size(); ++r) {
      AddFormulaCandidates((*property_components_)[r], page, prev_page,
                           "p" + std::to_string(r), kInvalidRelation, nullptr,
                           &out);
    }
  }

  // Deduplicate (atoms across rules often coincide).
  std::sort(out.tuples.begin(), out.tuples.end());
  out.tuples.erase(std::unique(out.tuples.begin(), out.tuples.end()),
                   out.tuples.end());
  if (!out.overflow) {
    out.approx_tuple_count = static_cast<double>(out.tuples.size());
  }
  return out;
}

const CandidateSet& CandidateBuilder::ExtensionCandidates(int page,
                                                          int prev_page) {
  auto key = std::make_pair(page, prev_page);
  auto it = extensions_.find(key);
  if (it != extensions_.end()) return it->second;
  return extensions_.emplace(key, BuildExtension(page, prev_page))
      .first->second;
}

}  // namespace wave
