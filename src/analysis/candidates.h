// Candidate-tuple construction for database cores and extensions
// (Heuristics 1 and 2, paper Section 3.2), plus the per-page fresh-value
// domains C_V of Section 3.1.
//
// Core candidates: ground tuples over C = CW ∪ C∃ whose every attribute
// holds a constant the dataflow analysis says that attribute may be
// compared to. `cores(C)` is then the powerset of the candidate list,
// enumerated with a bitmap counter.
//
// Extension candidates at a transition into page V_t from page V_s: tuples
// over C ∪ C_{V_t} ∪ C_{V_s} with at least one page-domain value. They are
// constructed *per database-atom occurrence* in the formulas evaluated
// against that window — V_t's option/state/action/target rules and the
// property's FO components. Each atom contributes:
//   * a "fresh" instantiation: every variable takes the page value of an
//     input position it is compared to in this formula (current inputs map
//     to C_{V_t}, previous inputs to C_{V_s}; option-rule head variables to
//     the value of their own input position), or a fresh per-variable
//     witness, or the constant it is locally equated to;
//   * "constant" instantiations: the product over each variable's
//     dataflow-allowed constants (falling back to the fresh value where
//     none exist).
// Tuples entirely over C are excluded (they belong to the core, whose
// content must stay globally consistent). This realizes Heuristic 2 plus
// the witness tuples option rules need to generate fresh input choices;
// mixed fresh/constant instantiations beyond the two modes are not
// enumerated (see DESIGN.md).
#ifndef WAVE_ANALYSIS_CANDIDATES_H_
#define WAVE_ANALYSIS_CANDIDATES_H_

#include <map>
#include <set>
#include <vector>

#include "analysis/dataflow.h"
#include "relational/relation.h"
#include "spec/web_app.h"

namespace wave {

/// Fresh values minted for one page (the paper's C_V).
struct PageDomain {
  /// Value representing the input at position (relation, column).
  std::map<AttrPos, SymbolId> input_values;
  /// Witness values for option-rule variables that are neither head
  /// variables nor equated to constants, keyed by (rule index, var name).
  std::map<std::pair<int, std::string>, SymbolId> witnesses;
  /// Every value of this domain (sorted).
  std::vector<SymbolId> all_values;
};

/// A set of candidate tuples for a powerset enumeration.
struct CandidateSet {
  /// Materialized candidates ((relation, tuple) pairs, fixed order — bit i
  /// of an enumeration bitmap corresponds to tuples[i]).
  std::vector<std::pair<RelationId, Tuple>> tuples;
  /// True if the set was too large to materialize under the budget; then
  /// only `approx_tuple_count` is meaningful.
  bool overflow = false;
  /// Number of candidate tuples (exact when materialized; the full product
  /// count when overflowed). The number of cores/extensions to enumerate is
  /// 2^approx_tuple_count — Example 3.4's 2^17,270,412,688 shows up here.
  double approx_tuple_count = 0.0;
};

/// Options controlling candidate construction.
struct CandidateOptions {
  bool heuristic1 = true;  // core pruning
  bool heuristic2 = true;  // extension pruning
  /// Candidate tuples beyond this are reported as overflow (the powerset
  /// would be unenumerable anyway).
  int max_candidates = 24;
};

/// Lazily mints and caches the fresh-value domain C_V of each page. Owned
/// separately from `CandidateBuilder` so the (spec-dependent, property-
/// independent) domains are shared across C∃ iterations.
class PageDomains {
 public:
  /// Mints fresh symbols into the spec's symbol table; relation schemas
  /// are never modified.
  explicit PageDomains(WebAppSpec* spec) : spec_(spec) {}

  const PageDomain& Get(int page);

  /// A stable fresh witness value for `tag` at `page` (minted on first use).
  SymbolId Witness(int page, const std::string& tag);

 private:
  WebAppSpec* spec_;
  std::map<int, PageDomain> domains_;
  std::map<std::pair<int, std::string>, SymbolId> generic_witnesses_;
};

/// Builds candidate sets for cores and extensions.
class CandidateBuilder {
 public:
  /// `analysis` must be built over the same spec with the *instantiated*
  /// property components, which are also passed as `property_components`.
  /// `constant_universe` is C = CW ∪ C∃.
  CandidateBuilder(WebAppSpec* spec, PageDomains* domains,
                   const ComparisonAnalysis* analysis,
                   const std::vector<FormulaPtr>* property_components,
                   const std::set<SymbolId>& constant_universe,
                   const CandidateOptions& options);

  /// Candidate tuples for database cores.
  const CandidateSet& CoreCandidates();

  /// Candidate tuples for extensions on a transition into `page` from
  /// `prev_page` (-1 for the initial configuration, where there is no
  /// previous page). Memoized per (page, prev_page).
  const CandidateSet& ExtensionCandidates(int page, int prev_page);

 private:
  void BuildCore();
  CandidateSet BuildExtension(int page, int prev_page);

  /// Adds the per-atom instantiations of one formula's database atoms (see
  /// the file comment) to `out`. `formula_tag` namespaces witness values;
  /// option rules pass their head so head variables map to the page value
  /// of their input position.
  void AddFormulaCandidates(const FormulaPtr& body, int page, int prev_page,
                            const std::string& formula_tag,
                            RelationId option_head_relation,
                            const std::vector<Term>* option_head,
                            CandidateSet* out);

  /// Appends the product of `value_sets` as tuples of `relation` to `out`
  /// (respecting the overflow budget). `require_fresh` keeps only tuples
  /// with at least one non-constant-universe value.
  void AppendProduct(RelationId relation,
                     const std::vector<std::vector<SymbolId>>& value_sets,
                     bool require_fresh, CandidateSet* out);

  const PageDomain& page_domain(int page) { return domains_->Get(page); }

  WebAppSpec* spec_;
  PageDomains* domains_;
  const ComparisonAnalysis* analysis_;
  const std::vector<FormulaPtr>* property_components_;
  std::set<SymbolId> constant_universe_;
  CandidateOptions options_;

  bool core_built_ = false;
  CandidateSet core_;
  std::map<std::pair<int, int>, CandidateSet> extensions_;
};

}  // namespace wave

#endif  // WAVE_ANALYSIS_CANDIDATES_H_
