#include "analysis/dataflow.h"

#include <string>

#include "common/check.h"

namespace wave {

namespace {

/// Union-find over variable names with per-class payloads gathered later.
class VarClasses {
 public:
  int ClassOf(const std::string& var) {
    auto it = index_.find(var);
    if (it == index_.end()) {
      int id = static_cast<int>(parent_.size());
      parent_.push_back(id);
      index_.emplace(var, id);
      return id;
    }
    return Find(it->second);
  }

  void Union(const std::string& a, const std::string& b) {
    int ra = ClassOf(a), rb = ClassOf(b);
    if (ra != rb) parent_[ra] = rb;
  }

  int Find(int i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

 private:
  std::map<std::string, int> index_;
  std::vector<int> parent_;
};

struct FormulaFacts {
  VarClasses classes;
  // Raw facts collected during the walk; unions may still reshuffle class
  // roots, so aggregation into per-class maps happens in Finalize().
  std::vector<std::pair<std::string, AttrPos>> var_positions;
  std::vector<std::pair<std::string, SymbolId>> var_constants;
  std::vector<std::pair<AttrPos, SymbolId>> explicit_constants;
  // Populated by Finalize(), keyed by final class roots.
  std::map<int, std::set<AttrPos>> positions;
  std::map<int, std::set<SymbolId>> constants;

  void AddAtom(const Catalog& catalog, const std::string& relation,
               const std::vector<Term>& args) {
    RelationId id = catalog.Find(relation);
    if (id == kInvalidRelation) return;
    for (size_t i = 0; i < args.size(); ++i) {
      AttrPos pos{id, static_cast<int>(i)};
      if (args[i].is_variable()) {
        classes.ClassOf(args[i].variable);
        var_positions.emplace_back(args[i].variable, pos);
      } else {
        explicit_constants.emplace_back(pos, args[i].constant);
      }
    }
  }

  void AddEquality(const Term& a, const Term& b) {
    if (a.is_variable() && b.is_variable()) {
      classes.Union(a.variable, b.variable);
    } else if (a.is_variable()) {
      var_constants.emplace_back(a.variable, b.constant);
    } else if (b.is_variable()) {
      var_constants.emplace_back(b.variable, a.constant);
    }
  }

  void Walk(const Catalog& catalog, const FormulaPtr& f) {
    switch (f->kind()) {
      case Formula::Kind::kAtom:
        AddAtom(catalog, f->relation(), f->args());
        return;
      case Formula::Kind::kEquals:
        AddEquality(f->args()[0], f->args()[1]);
        return;
      case Formula::Kind::kNot:
      case Formula::Kind::kExists:
      case Formula::Kind::kForall:
        Walk(catalog, f->body());
        return;
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr:
      case Formula::Kind::kImplies:
        Walk(catalog, f->left());
        Walk(catalog, f->right());
        return;
      default:
        return;
    }
  }

  void Finalize() {
    for (const auto& [var, pos] : var_positions) {
      positions[classes.ClassOf(var)].insert(pos);
    }
    for (const auto& [var, c] : var_constants) {
      constants[classes.ClassOf(var)].insert(c);
    }
  }
};

bool IsInputKind(RelationKind kind) {
  return kind == RelationKind::kInput || kind == RelationKind::kInputConstant;
}

}  // namespace

ComparisonAnalysis::ComparisonAnalysis(
    const WebAppSpec& spec, const std::vector<FormulaPtr>& extra_formulas)
    : spec_(&spec) {
  for (int p = 0; p < spec.num_pages(); ++p) {
    const PageSchema& page = spec.page(p);
    for (const InputRule& r : page.input_rules) {
      ProcessFormula(r.body, r.relation, &r.head);
    }
    for (const StateRule& r : page.state_rules) {
      ProcessFormula(r.body, r.relation, &r.head);
    }
    for (const ActionRule& r : page.action_rules) {
      ProcessFormula(r.body, r.relation, &r.head);
    }
    for (const TargetRule& r : page.target_rules) {
      ProcessFormula(r.condition, kInvalidRelation, nullptr);
    }
  }
  for (const FormulaPtr& f : extra_formulas) {
    ProcessFormula(f, kInvalidRelation, nullptr);
  }

  // Backward fixpoint over copy edges: a source position inherits the
  // comparison sets of the (head) position its value is copied into.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [target, sources] : copy_edges_) {
      const std::set<SymbolId>& target_constants = constants_[target];
      const std::set<AttrPos>& target_links = input_links_[target];
      for (const AttrPos& src : sources) {
        std::set<SymbolId>& src_constants = constants_[src];
        for (SymbolId c : target_constants) {
          if (src_constants.insert(c).second) changed = true;
        }
        std::set<AttrPos>& src_links = input_links_[src];
        for (const AttrPos& l : target_links) {
          if (src_links.insert(l).second) changed = true;
        }
      }
    }
  }
}

void ComparisonAnalysis::ProcessFormula(const FormulaPtr& body,
                                        RelationId head_relation,
                                        const std::vector<Term>* head) {
  const Catalog& catalog = spec_->catalog();
  FormulaFacts facts;
  facts.Walk(catalog, body);
  facts.Finalize();

  // Head terms participate in the body's equality classes: a head constant
  // is an (explicit) comparison for every position of its column's class,
  // and a head variable makes its column a copy target of the class.
  if (head != nullptr && head_relation != kInvalidRelation) {
    for (size_t j = 0; j < head->size(); ++j) {
      AttrPos head_pos{head_relation, static_cast<int>(j)};
      const Term& t = (*head)[j];
      if (t.is_variable()) {
        int cls = facts.classes.ClassOf(t.variable);
        // The head column belongs to the class (it is "compared" to every
        // other position of the class by the copy), and comparisons made
        // against the head column elsewhere flow back to the class.
        for (const AttrPos& src : facts.positions[cls]) {
          copy_edges_[head_pos].insert(src);
        }
        facts.positions[cls].insert(head_pos);
      } else {
        facts.explicit_constants.emplace_back(head_pos, t.constant);
      }
    }
  }

  for (const auto& [pos, c] : facts.explicit_constants) {
    constants_[pos].insert(c);
  }
  for (auto& [cls, positions] : facts.positions) {
    const std::set<SymbolId>& cs = facts.constants[cls];
    // Input positions in the class induce input links for every member.
    std::set<AttrPos> inputs_in_class;
    for (const AttrPos& pos : positions) {
      if (IsInputKind(catalog.schema(pos.relation).kind)) {
        inputs_in_class.insert(pos);
      }
    }
    for (const AttrPos& pos : positions) {
      constants_[pos].insert(cs.begin(), cs.end());
      for (const AttrPos& in : inputs_in_class) {
        input_links_[pos].insert(in);
      }
    }
  }
}

const std::set<SymbolId>& ComparisonAnalysis::constants(AttrPos pos) const {
  auto it = constants_.find(pos);
  return it == constants_.end() ? empty_constants_ : it->second;
}

const std::set<AttrPos>& ComparisonAnalysis::input_links(AttrPos pos) const {
  auto it = input_links_.find(pos);
  return it == input_links_.end() ? empty_links_ : it->second;
}

}  // namespace wave
