#include "common/bitset.h"

#include <bit>

#include "common/check.h"

namespace wave {

int DynamicBitset::Count() const {
  int count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool DynamicBitset::Increment() {
  if (num_bits_ == 0) return false;
  for (int i = 0; i < num_bits_; ++i) {
    if (!Test(i)) {
      Set(i, true);
      return true;
    }
    Set(i, false);
  }
  return false;  // wrapped around
}

void DynamicBitset::Append(const DynamicBitset& other) {
  for (int i = 0; i < other.num_bits_; ++i) {
    AppendBits(other.Test(i) ? 1 : 0, 1);
  }
}

void DynamicBitset::AppendBits(uint64_t value, int num_bits) {
  WAVE_CHECK(num_bits >= 0 && num_bits <= 64);
  for (int i = 0; i < num_bits; ++i) {
    int bit = num_bits_++;
    if ((bit >> 6) >= static_cast<int>(words_.size())) words_.push_back(0);
    if ((value >> i) & 1) words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

std::vector<uint8_t> DynamicBitset::ToBytes() const {
  std::vector<uint8_t> bytes((num_bits_ + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>(words_[i / 8] >> ((i % 8) * 8));
  }
  return bytes;
}

std::string DynamicBitset::ToString() const {
  std::string s;
  s.reserve(num_bits_);
  for (int i = 0; i < num_bits_; ++i) s.push_back(Test(i) ? '1' : '0');
  return s;
}

uint64_t DynamicBitset::Hash() const {
  // FNV-1a over words; adequate for hash-set baselines and tests.
  uint64_t h = 14695981039346656037ull;
  h = (h ^ static_cast<uint64_t>(num_bits_)) * 1099511628211ull;
  for (uint64_t w : words_) {
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

}  // namespace wave
