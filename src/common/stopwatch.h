// Monotonic wall-clock stopwatch used by verifier statistics and benches.
#ifndef WAVE_COMMON_STOPWATCH_H_
#define WAVE_COMMON_STOPWATCH_H_

#include <chrono>

namespace wave {

/// Starts on construction; `ElapsedSeconds` can be read repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wave

#endif  // WAVE_COMMON_STOPWATCH_H_
