// Small string helpers shared across modules (no dependency on absl).
#ifndef WAVE_COMMON_STRINGS_H_
#define WAVE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wave {

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Splits `text` on `separator`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace wave

#endif  // WAVE_COMMON_STRINGS_H_
