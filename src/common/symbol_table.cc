#include "common/symbol_table.h"

#include <string>

#include "common/check.h"

namespace wave {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  WAVE_CHECK_MSG(id >= 0 && id < size(), "symbol id " << id << " out of range");
  return names_[id];
}

SymbolId SymbolTable::MintFresh(std::string_view prefix) {
  std::string name;
  do {
    name = "$" + std::string(prefix) + "." + std::to_string(fresh_counter_++);
  } while (ids_.count(name) > 0);
  return Intern(name);
}

bool SymbolTable::IsFresh(SymbolId id) const {
  const std::string& n = Name(id);
  return !n.empty() && n[0] == '$';
}

}  // namespace wave
