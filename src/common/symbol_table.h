// Symbol interning: every data value (constants from the spec, user-text
// placeholders, fresh page-domain values, fresh C-existential values) is an
// interned string represented by a dense 32-bit id. Pseudoconfigurations,
// tuples and bitmaps all operate on ids; the table is only consulted when
// printing.
#ifndef WAVE_COMMON_SYMBOL_TABLE_H_
#define WAVE_COMMON_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wave {

/// Dense identifier for an interned value. Ids are assigned consecutively
/// starting at 0; `kInvalidSymbol` marks "no value".
using SymbolId = int32_t;

inline constexpr SymbolId kInvalidSymbol = -1;

/// Interning table mapping strings to dense `SymbolId`s and back.
///
/// A single `SymbolTable` is owned by a `WebAppSpec` and shared by every
/// component that manipulates values for that spec (analysis, verifier,
/// benchmarks). The table is append-only: symbols are never removed, so ids
/// stay valid for the lifetime of the table.
class SymbolTable {
 public:
  SymbolTable() = default;

  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  /// Returns the id for `name`, interning it if new.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` or `kInvalidSymbol` if not interned.
  SymbolId Find(std::string_view name) const;

  /// Returns the string for `id`. `id` must be valid.
  const std::string& Name(SymbolId id) const;

  /// Mints a fresh symbol that cannot collide with user-provided names.
  /// The generated name is `$<prefix>.<counter>`.
  SymbolId MintFresh(std::string_view prefix);

  /// Number of interned symbols (also the smallest unused id).
  int size() const { return static_cast<int>(names_.size()); }

  /// True if `id` names a minted fresh symbol (its name starts with '$').
  bool IsFresh(SymbolId id) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
  int fresh_counter_ = 0;
};

}  // namespace wave

#endif  // WAVE_COMMON_SYMBOL_TABLE_H_
