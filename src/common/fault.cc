#include "common/fault.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wave::fault {
namespace {

// SplitMix64 — the pinned, platform-stable generator behind probabilistic
// rules (and common/backoff jitter). Chosen over std::mt19937_64 because
// the whole state is one word, trivially seedable per plan.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(SplitMix64Next(state) >> 11) * 0x1.0p-53;
}

struct RuleState {
  int64_t hits = 0;   // matched evaluations of this rule
  int64_t fires = 0;  // times it actually fired
};

struct Injector {
  std::mutex mu;
  Plan plan;
  uint64_t rng = 0;
  std::vector<RuleState> rule_states;
  std::map<std::string, SiteCount> sites;  // per-site tallies, sorted
};

Injector& injector() {
  static Injector* inj = new Injector();  // leaked: usable during shutdown
  return *inj;
}

}  // namespace

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kEio: return "eio";
    case Kind::kEnospc: return "enospc";
    case Kind::kShortWrite: return "shortwrite";
    case Kind::kDelay: return "delay";
    case Kind::kCrash: return "crash";
    case Kind::kFlip: return "flip";
  }
  return "unknown";
}

bool ParseKind(std::string_view name, Kind* out) {
  for (Kind k : {Kind::kEio, Kind::kEnospc, Kind::kShortWrite, Kind::kDelay,
                 Kind::kCrash, Kind::kFlip}) {
    if (name == KindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

Status ToStatus(const Action& a, const std::string& detail) {
  return Status::Unavailable(
      std::string("fault-injected ") + KindName(a.kind) + " (" + detail + ")",
      WAVE_LOC);
}

bool Rule::Matches(std::string_view site_name) const {
  if (!site.empty() && site.back() == '*') {
    std::string_view prefix(site.data(), site.size() - 1);
    return site_name.substr(0, prefix.size()) == prefix;
  }
  return site_name == site;
}

void Arm(Plan plan) {
  Injector& inj = injector();
  std::lock_guard<std::mutex> lock(inj.mu);
  inj.plan = std::move(plan);
  inj.rng = inj.plan.seed;
  inj.rule_states.assign(inj.plan.rules.size(), RuleState{});
  inj.sites.clear();
  internal::g_armed.store(!inj.plan.empty(), std::memory_order_relaxed);
}

void Disarm() {
  Injector& inj = injector();
  std::lock_guard<std::mutex> lock(inj.mu);
  internal::g_armed.store(false, std::memory_order_relaxed);
  inj.plan.rules.clear();
  inj.plan.metrics = nullptr;
  inj.plan.tracer = nullptr;
  inj.rule_states.clear();
  // inj.sites intentionally kept: Counts() stays readable after a test
  // disarms, until the next Arm resets it.
}

Action Evaluate(const char* site) {
  Action action;
  double sleep_seconds = 0;
  {
    Injector& inj = injector();
    std::lock_guard<std::mutex> lock(inj.mu);
    if (inj.plan.empty()) return action;
    SiteCount& sc = inj.sites[site];
    if (sc.site.empty()) sc.site = site;
    ++sc.hits;
    for (size_t i = 0; i < inj.plan.rules.size(); ++i) {
      const Rule& rule = inj.plan.rules[i];
      if (!rule.Matches(site)) continue;
      RuleState& rs = inj.rule_states[i];
      ++rs.hits;
      if (rule.max_fires >= 0 && rs.fires >= rule.max_fires) continue;
      bool fire = false;
      if (rule.fail_nth > 0) {
        fire = rs.hits == rule.fail_nth;
      } else if (rule.probability > 0) {
        fire = UnitUniform(&inj.rng) < rule.probability;
      } else {
        fire = true;  // no schedule given: always fire
      }
      if (!fire) continue;
      ++rs.fires;
      ++sc.fires;
      action.fire = true;
      action.kind = rule.kind;
      action.short_write_keep = rule.short_write_keep;
      if (rule.kind == Kind::kDelay) sleep_seconds = rule.delay_seconds;
      if (inj.plan.metrics != nullptr) {
        inj.plan.metrics->Add(std::string("fault.injected.") + site);
      }
      if (inj.plan.tracer != nullptr) {
        inj.plan.tracer->Instant(std::string("fault!") + site + "!" +
                                 KindName(rule.kind));
      }
      break;  // first matching rule that fires wins
    }
  }
  if (action.fire && action.kind == Kind::kCrash) {
    // The point of kCrash is to die with zero cleanup — no destructors, no
    // atexit, no flushing — exactly what tools/wave_crash rehearses.
    kill(getpid(), SIGKILL);
    _exit(137);  // unreachable; belt and braces
  }
  if (sleep_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  return action;
}

std::vector<SiteCount> Counts() {
  Injector& inj = injector();
  std::lock_guard<std::mutex> lock(inj.mu);
  std::vector<SiteCount> out;
  out.reserve(inj.sites.size());
  for (const auto& [_, sc] : inj.sites) out.push_back(sc);
  return out;
}

int64_t TotalFires() {
  int64_t total = 0;
  for (const SiteCount& sc : Counts()) total += sc.fires;
  return total;
}

void ExportMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  for (const SiteCount& sc : Counts()) {
    metrics->counter("fault.hits." + sc.site)->Add(sc.hits);
    if (sc.fires > 0) {
      metrics->counter("fault.injected." + sc.site)->Add(sc.fires);
    }
  }
}

const std::vector<SiteInfo>& KnownSites() {
  auto mask = [](std::initializer_list<Kind> kinds) {
    unsigned m = 0;
    for (Kind k : kinds) m |= 1u << static_cast<unsigned>(k);
    return m;
  };
  static const std::vector<SiteInfo>* sites = new std::vector<SiteInfo>{
      // common/io.cc — every file the system reads or writes funnels here.
      {"io.read.open", "src/common/io.cc",
       mask({Kind::kEio, Kind::kDelay, Kind::kCrash})},
      {"io.read.data", "src/common/io.cc",
       mask({Kind::kEio, Kind::kDelay, Kind::kCrash})},
      {"io.write.open", "src/common/io.cc",
       mask({Kind::kEio, Kind::kEnospc, Kind::kDelay, Kind::kCrash})},
      {"io.write.data", "src/common/io.cc",
       mask({Kind::kEio, Kind::kEnospc, Kind::kShortWrite, Kind::kDelay,
             Kind::kCrash})},
      {"io.write.commit", "src/common/io.cc",
       mask({Kind::kEio, Kind::kEnospc, Kind::kDelay, Kind::kCrash})},
      {"io.write.done", "src/common/io.cc",
       mask({Kind::kDelay, Kind::kCrash})},
      // verifier/cache.cc — the crash-consistency surface under test.
      {"cache.open.recover", "src/verifier/cache.cc",
       mask({Kind::kDelay, Kind::kCrash})},
      {"cache.lock.acquire", "src/verifier/cache.cc",
       mask({Kind::kEio, Kind::kDelay, Kind::kCrash})},
      {"cache.lookup.manifest", "src/verifier/cache.cc",
       mask({Kind::kEio, Kind::kDelay, Kind::kCrash})},
      {"cache.lookup.entry", "src/verifier/cache.cc",
       mask({Kind::kEio, Kind::kDelay, Kind::kCrash})},
      {"cache.quarantine.move", "src/verifier/cache.cc",
       mask({Kind::kEio, Kind::kDelay, Kind::kCrash})},
      {"cache.store.entry", "src/verifier/cache.cc",
       mask({Kind::kEio, Kind::kEnospc, Kind::kShortWrite, Kind::kDelay,
             Kind::kCrash})},
      {"cache.store.publish", "src/verifier/cache.cc",
       mask({Kind::kDelay, Kind::kCrash})},
      {"cache.store.manifest", "src/verifier/cache.cc",
       mask({Kind::kEio, Kind::kEnospc, Kind::kDelay, Kind::kCrash})},
      // verifier/session.cc — shared-artifact pre-pass construction.
      {"session.plan.build", "src/verifier/session.cc",
       mask({Kind::kDelay})},
      {"session.prepass.build", "src/verifier/session.cc",
       mask({Kind::kDelay})},
      // verifier/retry.cc + verifier.cc — the budget-escalation ladder.
      {"retry.ladder.build", "src/verifier/retry.cc",
       mask({Kind::kDelay})},
      {"retry.rung.attempt", "src/verifier/verifier.cc",
       mask({Kind::kDelay})},
      // verifier/worker_pool.cc — thread lifecycle.
      {"worker.start", "src/verifier/worker_pool.cc",
       mask({Kind::kDelay})},
      {"worker.wait_done", "src/verifier/worker_pool.cc",
       mask({Kind::kDelay})},
      // serve/server.cc — the daemon's socket surface (ISSUE 9). These
      // need a live server + client, so the generic sweep skips them;
      // tests/serve_test.cc proves each one fires and degrades cleanly.
      {"serve.accept", "src/serve/server.cc",
       mask({Kind::kEio, Kind::kDelay})},
      {"serve.read", "src/serve/server.cc",
       mask({Kind::kEio, Kind::kDelay})},
      {"serve.write", "src/serve/server.cc",
       mask({Kind::kEio, Kind::kShortWrite, Kind::kDelay})},
      {"serve.enqueue", "src/serve/server.cc",
       mask({Kind::kEio, Kind::kDelay})},
      // testing/oracle.cc — the PR-5 flip hook, now on this framework.
      {"oracle.flip_verdict", "src/testing/oracle.cc",
       mask({Kind::kFlip})},
  };
  return *sites;
}

namespace {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool ParseInt(const std::string& s, long* out) {
  char* end = nullptr;
  *out = std::strtol(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !s.empty();
}

}  // namespace

StatusOr<Plan> ParsePlan(const std::string& text) {
  Plan plan;
  for (const std::string& raw : Split(text, ';')) {
    std::string item = Trim(raw);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "fault spec item missing '=': \"" + item + "\"", WAVE_LOC);
    }
    std::string lhs = Trim(item.substr(0, eq));
    std::string rhs = Trim(item.substr(eq + 1));
    if (lhs == "seed") {
      char* end = nullptr;
      plan.seed = std::strtoull(rhs.c_str(), &end, 0);
      if (end == nullptr || *end != '\0' || rhs.empty()) {
        return Status::InvalidArgument("bad fault seed: \"" + rhs + "\"",
                                       WAVE_LOC);
      }
      continue;
    }
    Rule rule;
    rule.site = lhs;
    if (rule.site.empty()) {
      return Status::InvalidArgument("empty fault site in \"" + item + "\"",
                                     WAVE_LOC);
    }
    // rhs: KIND ['@' NTH] (':' MOD)*
    std::vector<std::string> mods = Split(rhs, ':');
    std::string head = Trim(mods[0]);
    size_t at = head.find('@');
    if (at != std::string::npos) {
      long nth = 0;
      if (!ParseInt(head.substr(at + 1), &nth) || nth < 1) {
        return Status::InvalidArgument(
            "bad fail-Nth in fault rule: \"" + head + "\"", WAVE_LOC);
      }
      rule.fail_nth = static_cast<int>(nth);
      head = Trim(head.substr(0, at));
    }
    if (!ParseKind(head, &rule.kind)) {
      return Status::InvalidArgument(
          "unknown fault kind \"" + head + "\" in \"" + item + "\"", WAVE_LOC);
    }
    for (size_t i = 1; i < mods.size(); ++i) {
      std::string mod = Trim(mods[i]);
      size_t meq = mod.find('=');
      std::string key = meq == std::string::npos ? mod : Trim(mod.substr(0, meq));
      std::string val = meq == std::string::npos ? "" : Trim(mod.substr(meq + 1));
      bool ok = true;
      if (key == "p") {
        ok = ParseDouble(val, &rule.probability) && rule.probability >= 0 &&
             rule.probability <= 1;
      } else if (key == "max") {
        long v = 0;
        ok = ParseInt(val, &v) && v >= 0;
        rule.max_fires = static_cast<int>(v);
      } else if (key == "delay") {
        ok = ParseDouble(val, &rule.delay_seconds) && rule.delay_seconds >= 0;
      } else if (key == "keep") {
        ok = ParseDouble(val, &rule.short_write_keep) &&
             rule.short_write_keep >= 0 && rule.short_write_keep <= 1;
      } else {
        ok = false;
      }
      if (!ok) {
        return Status::InvalidArgument(
            "bad fault rule modifier \"" + mod + "\" in \"" + item + "\"",
            WAVE_LOC);
      }
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

std::string FormatPlan(const Plan& plan) {
  std::ostringstream out;
  bool first = true;
  for (const Rule& rule : plan.rules) {
    if (!first) out << ";";
    first = false;
    out << rule.site << "=" << KindName(rule.kind);
    if (rule.fail_nth > 0) out << "@" << rule.fail_nth;
    if (rule.probability > 0) out << ":p=" << rule.probability;
    if (rule.max_fires >= 0) out << ":max=" << rule.max_fires;
    if (rule.kind == Kind::kDelay) out << ":delay=" << rule.delay_seconds;
    if (rule.kind == Kind::kShortWrite) out << ":keep=" << rule.short_write_keep;
  }
  if (!first) out << ";";
  out << "seed=" << plan.seed;
  return out.str();
}

Status ArmFromEnv() {
  const char* spec = std::getenv("WAVE_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') return Status::Ok();
  WAVE_ASSIGN_OR_RETURN(Plan plan, ParsePlan(spec));
  Arm(std::move(plan));
  return Status::Ok();
}

}  // namespace wave::fault
