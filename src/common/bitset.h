// Dynamically sized bitset used for pseudoconfiguration bitmaps and for the
// counter-style enumeration of database cores and extensions (Section 4 of
// the paper: "treating the bitmap as the binary representation of an integer
// counter, we increment the bitmap at each call").
#ifndef WAVE_COMMON_BITSET_H_
#define WAVE_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wave {

/// Fixed-width (after construction) bitset with word-level storage.
///
/// Supports the operations the verifier needs: bit get/set, integer-counter
/// increment (for subset enumeration), concatenation (for composing a
/// pseudoconfiguration bitmap from per-relation bitmaps), byte serialization
/// (for the visited trie), hashing and total order.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(int num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  int size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Test(int i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void Set(int i, bool value = true) {
    if (value) {
      words_[i >> 6] |= uint64_t{1} << (i & 63);
    } else {
      words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
  }
  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  int Count() const;

  /// True if no bit is set.
  bool None() const;

  /// Treats the bitset as a binary counter and increments it.
  /// Returns false on wrap-around (i.e. the bitset was all-ones), which
  /// signals the end of a subset enumeration.
  bool Increment();

  /// Appends the bits of `other` after the bits of `*this`.
  void Append(const DynamicBitset& other);

  /// Appends raw bits from an integer, lowest bit first.
  void AppendBits(uint64_t value, int num_bits);

  /// Serializes to bytes (little-endian within each word, padded with zero
  /// bits). Two bitsets of the same size compare equal iff their bytes do.
  std::vector<uint8_t> ToBytes() const;

  /// `1`/`0` rendering, bit 0 first; for debugging and tests.
  std::string ToString() const;

  uint64_t Hash() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator<(const DynamicBitset& a, const DynamicBitset& b) {
    if (a.num_bits_ != b.num_bits_) return a.num_bits_ < b.num_bits_;
    return a.words_ < b.words_;
  }

 private:
  int num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace wave

#endif  // WAVE_COMMON_BITSET_H_
