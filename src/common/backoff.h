// Bounded jittered exponential backoff (ISSUE 7).
//
// Contended locks and transient I/O failures want the same retry shape:
// start fast, slow down geometrically, randomize a little so competing
// processes de-synchronize, and give up after a bounded number of
// attempts / total sleep budget. `Backoff` computes that schedule; the
// caller owns the actual sleeping and retrying:
//
//   Backoff backoff(policy, seed);
//   while (true) {
//     if (TryAcquire()) break;
//     std::optional<double> d = backoff.NextDelaySeconds();
//     if (!d) return Status::Unavailable("lock: backoff exhausted");
//     SleepSeconds(*d);
//   }
//
// The jitter draws from a SplitMix64 stream seeded by the caller, so the
// full schedule is DETERMINISTIC for a given (policy, seed) — unit tests
// pin exact sequences, and fault-injection runs replay identically.
// Production callers seed from pid/time to de-synchronize for real.
#ifndef WAVE_COMMON_BACKOFF_H_
#define WAVE_COMMON_BACKOFF_H_

#include <cstdint>
#include <optional>

namespace wave {

struct BackoffPolicy {
  /// First delay, before multiplication.
  double initial_seconds = 0.001;
  /// Geometric growth factor per attempt (>= 1).
  double multiplier = 2.0;
  /// Per-delay ceiling; growth saturates here.
  double max_delay_seconds = 0.25;
  /// Jitter fraction in [0, 1]: each delay is drawn uniformly from
  /// [d * (1 - jitter), d]. 0 disables jitter.
  double jitter = 0.5;
  /// Max delays handed out; <= 0 means unlimited (bounded by budget).
  int max_attempts = 10;
  /// Cap on the SUM of handed-out delays; <= 0 means unlimited. The last
  /// delay is clipped so the total never exceeds the budget.
  double total_budget_seconds = 5.0;
};

class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, uint64_t seed = 0);

  /// The next sleep length, or nullopt when the schedule is exhausted
  /// (attempts or budget). Never returns a negative value.
  std::optional<double> NextDelaySeconds();

  int attempts() const { return attempts_; }
  double total_slept_seconds() const { return total_; }

 private:
  BackoffPolicy policy_;
  uint64_t rng_;
  double next_base_;   // un-jittered delay for the upcoming attempt
  int attempts_ = 0;
  double total_ = 0;
};

}  // namespace wave

#endif  // WAVE_COMMON_BACKOFF_H_
