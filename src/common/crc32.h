// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), table-driven.
//
// Used by the ResultCache v2 per-entry header to detect torn or
// bit-rotted entry files before parsing them (parse success alone cannot
// distinguish "truncated JSON" from "record some other writer is still
// renaming"). The standard check value applies:
// Crc32("123456789") == 0xCBF43926.
#ifndef WAVE_COMMON_CRC32_H_
#define WAVE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wave {

/// Incremental update: feed chunks with the previous return value.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

/// One-shot CRC of a buffer.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace wave

#endif  // WAVE_COMMON_CRC32_H_
