// Content fingerprinting for the verification-session caches (ISSUE 4).
//
// A `Fingerprint` is a 128-bit content hash used as a cache key: the
// in-session pre-pass caches key memoized artifacts by property/options
// fingerprints, and the persistent result cache names its record files by
// the hex digest of spec + property + effective options. The hash is
// *stable across processes and platforms* (no pointer values, no
// ASLR-dependent state, fixed-width little-endian mixing), which is what
// makes cross-run caching sound — but it is NOT cryptographic: collisions
// are astronomically unlikely for cache sizing purposes, not adversarially
// hard to produce.
//
// `FingerprintBuilder` is a streaming accumulator with length-prefixed,
// type-tagged appends, so distinct field sequences can never collide by
// concatenation ambiguity ("ab" + "c" vs "a" + "bc").
#ifndef WAVE_COMMON_FINGERPRINT_H_
#define WAVE_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wave {

/// A 128-bit content hash. Value type; compares by value.
struct Fingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  /// 32 lowercase hex characters (hi then lo) — safe as a file name.
  std::string ToHex() const;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.lo < b.lo;
  }
};

/// Streaming fingerprint accumulator. Every `Add*` is framed with a type
/// tag and (for strings) a length prefix; `Finish` may be called any
/// number of times and does not reset the stream.
class FingerprintBuilder {
 public:
  FingerprintBuilder();

  void AddBytes(std::string_view bytes);
  void AddString(std::string_view s);  // tagged + length-prefixed
  void AddInt(int64_t v);
  void AddBool(bool b);
  void AddDouble(double v);  // bit pattern; -0.0 and 0.0 are distinct
  /// Domain separator between record sections ("spec", "options", ...).
  void AddTag(std::string_view tag);

  Fingerprint Finish() const;

 private:
  void Mix(uint8_t byte);

  uint64_t a_;
  uint64_t b_;
};

}  // namespace wave

#endif  // WAVE_COMMON_FINGERPRINT_H_
