#include "common/strings.h"

namespace wave {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace wave
