#include "common/backoff.h"

#include <algorithm>

namespace wave {
namespace {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64Next(state) >> 11) * 0x1.0p-53;
}

}  // namespace

Backoff::Backoff(const BackoffPolicy& policy, uint64_t seed)
    : policy_(policy), rng_(seed), next_base_(policy.initial_seconds) {}

std::optional<double> Backoff::NextDelaySeconds() {
  if (policy_.max_attempts > 0 && attempts_ >= policy_.max_attempts) {
    return std::nullopt;
  }
  if (policy_.total_budget_seconds > 0 &&
      total_ >= policy_.total_budget_seconds) {
    return std::nullopt;
  }
  double base = std::min(next_base_, policy_.max_delay_seconds);
  double delay = base;
  if (policy_.jitter > 0) {
    double lo = base * (1.0 - policy_.jitter);
    delay = lo + (base - lo) * UnitUniform(&rng_);
  }
  if (policy_.total_budget_seconds > 0) {
    delay = std::min(delay, policy_.total_budget_seconds - total_);
  }
  delay = std::max(delay, 0.0);
  next_base_ = base * std::max(policy_.multiplier, 1.0);
  ++attempts_;
  total_ += delay;
  return delay;
}

}  // namespace wave
