// Internal invariant checking. WAVE is a verifier: an internal inconsistency
// means any verdict it produces is untrustworthy, so invariant violations
// abort the process rather than propagate as recoverable errors.
#ifndef WAVE_COMMON_CHECK_H_
#define WAVE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace wave::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "WAVE_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace wave::internal

// Always-on assertion (active in release builds too; the checks guard
// logical invariants on toy-sized data, not hot loops).
#define WAVE_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::wave::internal::CheckFailed(__FILE__, __LINE__, #expr, "");       \
    }                                                                     \
  } while (0)

#define WAVE_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream wave_check_stream_;                              \
      wave_check_stream_ << msg;                                          \
      ::wave::internal::CheckFailed(__FILE__, __LINE__, #expr,            \
                                    wave_check_stream_.str());            \
    }                                                                     \
  } while (0)

#endif  // WAVE_COMMON_CHECK_H_
