// Structured, recoverable error channel (ISSUE 2).
//
// WAVE distinguishes two failure families:
//   * internal invariant violations — the verifier's own state is broken,
//     any verdict would be untrustworthy, the process aborts (WAVE_CHECK,
//     see common/check.h);
//   * user-input failures — malformed spec files, unknown properties,
//     unreadable paths, invalid options. These must never abort a
//     long-running verification service; they travel as `wave::Status`
//     values the caller can inspect, log and recover from.
//
// `Status` carries an error code, a human-readable message, and the source
// location that created it. `StatusOr<T>` is a value-or-status union for
// fallible producers. The `WAVE_RETURN_IF_ERROR` / `WAVE_ASSIGN_OR_RETURN`
// macros keep call sites linear.
#ifndef WAVE_COMMON_STATUS_H_
#define WAVE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace wave {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // malformed user input (spec text, property, flag)
  kNotFound,            // missing file / unknown property name
  kFailedPrecondition,  // operation invalid in the current state
  kResourceExhausted,   // a governed budget was exceeded
  kCancelled,           // cooperative cancellation
  kDeadlineExceeded,    // wall-clock deadline passed
  kUnavailable,         // transient environment failure (I/O)
  kInternal,            // bug surfaced as a status (should be WAVE_CHECKed)
  kShuttingDown,        // service draining; resubmit elsewhere or later
};

/// Stable upper-snake name ("INVALID_ARGUMENT", ...) for logs and JSON.
const char* StatusCodeName(StatusCode code);

/// `file:line` of the factory call that produced a non-OK status, captured
/// by the WAVE_LOC macro at each factory's call site.
struct SourceLocation {
  const char* file = "";
  int line = 0;
};

#define WAVE_LOC (::wave::SourceLocation{__FILE__, __LINE__})

class [[nodiscard]] Status {
 public:
  /// OK (the default).
  Status() = default;

  Status(StatusCode code, std::string message, SourceLocation loc = {})
      : code_(code), message_(std::move(message)), loc_(loc) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kInvalidArgument, std::move(msg), loc);
  }
  static Status NotFound(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kNotFound, std::move(msg), loc);
  }
  static Status FailedPrecondition(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg), loc);
  }
  static Status ResourceExhausted(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kResourceExhausted, std::move(msg), loc);
  }
  static Status Cancelled(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kCancelled, std::move(msg), loc);
  }
  static Status DeadlineExceeded(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg), loc);
  }
  static Status Unavailable(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kUnavailable, std::move(msg), loc);
  }
  static Status Internal(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kInternal, std::move(msg), loc);
  }
  static Status ShuttingDown(std::string msg, SourceLocation loc = {}) {
    return Status(StatusCode::kShuttingDown, std::move(msg), loc);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const SourceLocation& location() const { return loc_; }

  /// "INVALID_ARGUMENT: 3:7: expected ')' [at src/parser/parser.cc:97]".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  SourceLocation loc_;
};

/// A `T` or the `Status` explaining why there is none.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    WAVE_CHECK_MSG(!status_.ok(),
                   "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access; WAVE_CHECKs ok() — test first or use value_or patterns.
  T& value() & {
    WAVE_CHECK_MSG(ok(), "StatusOr::value() on error: " << status_.ToString());
    return *value_;
  }
  const T& value() const& {
    WAVE_CHECK_MSG(ok(), "StatusOr::value() on error: " << status_.ToString());
    return *value_;
  }
  T&& value() && {
    WAVE_CHECK_MSG(ok(), "StatusOr::value() on error: " << status_.ToString());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace wave

/// Propagates a non-OK Status to the caller.
#define WAVE_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::wave::Status wave_status_ = (expr);          \
    if (!wave_status_.ok()) return wave_status_;   \
  } while (0)

/// Unwraps a StatusOr into `lhs` or propagates its error. `lhs` may be a
/// declaration ("auto x") or an existing lvalue.
#define WAVE_ASSIGN_OR_RETURN(lhs, expr)                       \
  WAVE_ASSIGN_OR_RETURN_IMPL_(                                 \
      WAVE_STATUS_CONCAT_(wave_statusor_, __LINE__), lhs, expr)
#define WAVE_STATUS_CONCAT_INNER_(a, b) a##b
#define WAVE_STATUS_CONCAT_(a, b) WAVE_STATUS_CONCAT_INNER_(a, b)
#define WAVE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // WAVE_COMMON_STATUS_H_
