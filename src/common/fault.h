// Deterministic fault injection (ISSUE 7).
//
// A long-lived verification service must treat partial failure of its
// environment — EIO mid-write, a disk running full, a competing process
// holding a lock, SIGKILL between two renames — as the normal case, and
// the only way to keep those paths honest is to execute them on demand.
// This header provides NAMED injection points that are ALWAYS compiled
// into the binary:
//
//   fault::Action a = WAVE_FAULT("cache.store.publish");
//
// When the process is not armed (the default, and the only production
// state) a site costs one relaxed atomic load and returns a no-op
// `Action`. When a test, `tools/wave_crash`, or the `WAVE_FAULT_SPEC`
// environment variable arms a `Plan`, each hit of a matching site is
// evaluated against the plan's rules:
//
//   * fail-Nth-hit   — `Rule::fail_nth` fires exactly on the Nth matched
//                      hit of that rule (deterministic kill-points);
//   * probability    — `Rule::probability` fires per hit under the plan's
//                      PINNED RNG (`Plan::seed`), so a probabilistic
//                      schedule replays identically from its seed;
//   * capped         — `Rule::max_fires` bounds the total fires.
//
// Error kinds model the environment failures worth rehearsing:
//   kEio        — the operation fails (call sites surface a tagged
//                 `Status`, message prefixed "fault-injected");
//   kEnospc     — ditto, disk-full flavor;
//   kShortWrite — only a prefix of the bytes lands before the error, and
//                 the torn temp file is deliberately LEFT on disk (the
//                 state a crashed writer leaves behind);
//   kDelay      — the site sleeps `delay_seconds`, then proceeds (lock
//                 contention, slow disks, scheduling jitter);
//   kCrash      — the process raises SIGKILL at the site: no destructors,
//                 no atexit, exactly what `tools/wave_crash` rehearses;
//   kFlip       — fires with no built-in effect; the call site decides
//                 (the differential oracle flips its reference verdict —
//                 the self-test of the disagreement machinery).
//
// Observability: every fire bumps `fault.injected.<site>` on the plan's
// optional metrics registry (and an internal per-site tally readable via
// `Counts()` / exportable via `ExportMetrics`), and emits a tracer
// instant event when `Plan::tracer` is set. Arm a tracer only for
// single-threaded runs — the fault registry serializes itself, but
// `obs::Tracer` is not synchronized against concurrent users.
//
// Thread-safety: `Armed()` is a relaxed atomic; `Evaluate` takes the
// injector mutex (sites also exist on worker threads). Sleeps happen
// outside the lock.
//
// The site inventory lives in `KnownSites()` and is documented in
// docs/ROBUSTNESS.md; tests/fault_test.cc sweeps every site × every
// applicable non-crash kind, and tools/wave_crash covers the crash kind.
#ifndef WAVE_COMMON_FAULT_H_
#define WAVE_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wave::obs {
class MetricsRegistry;
class Tracer;
}  // namespace wave::obs

namespace wave::fault {

enum class Kind {
  kEio = 0,
  kEnospc,
  kShortWrite,
  kDelay,
  kCrash,
  kFlip,
};

/// Stable lowercase name ("eio", "enospc", "shortwrite", "delay",
/// "crash", "flip") for plans, logs and the docs inventory.
const char* KindName(Kind kind);

/// Inverse of `KindName`; false on an unknown name.
bool ParseKind(std::string_view name, Kind* out);

/// What one evaluated site should do. `fire == false` (the default, and
/// the only disarmed outcome) means: proceed normally.
struct Action {
  bool fire = false;
  Kind kind = Kind::kDelay;
  /// kShortWrite: fraction of the bytes to write before failing.
  double short_write_keep = 0.5;
};

/// True when the action demands the call site fail the operation
/// (kEio / kEnospc / kShortWrite). kDelay already slept inside
/// `Evaluate`; kCrash never returns; kFlip is call-site-defined.
inline bool IsError(const Action& a) {
  return a.fire && (a.kind == Kind::kEio || a.kind == Kind::kEnospc ||
                    a.kind == Kind::kShortWrite);
}

/// The tagged Status an error action surfaces: kUnavailable, message
/// "fault-injected <kind> (<detail>)" — greppable in logs and asserted
/// by the fault sweep.
Status ToStatus(const Action& a, const std::string& detail);

/// One scheduled fault.
struct Rule {
  /// Site to match: an exact site name, or a prefix ending in '*'
  /// ("cache.store.*").
  std::string site;
  Kind kind = Kind::kEio;
  /// 1-based matched-hit index to fire at; fires exactly once. 0 uses
  /// `probability` instead.
  int fail_nth = 0;
  /// Per-hit fire probability under the plan's pinned RNG. A rule with
  /// fail_nth == 0 and probability == 0 defaults to ALWAYS firing
  /// (probability 1).
  double probability = 0;
  /// Cap on total fires of this rule; -1 = unlimited.
  int max_fires = -1;
  /// kDelay: sleep length.
  double delay_seconds = 0.002;
  /// kShortWrite: fraction of bytes written before the error.
  double short_write_keep = 0.5;

  bool Matches(std::string_view site_name) const;
};

/// A fault scenario: rules plus the pinned RNG seed that makes
/// probabilistic schedules replayable.
struct Plan {
  std::vector<Rule> rules;
  uint64_t seed = 0x5eedfa17;
  obs::MetricsRegistry* metrics = nullptr;  // fault.injected.<site> counters
  obs::Tracer* tracer = nullptr;            // instant events (single-thread only)

  bool empty() const { return rules.empty(); }
};

/// Arms `plan` process-wide (replacing any armed plan and resetting all
/// hit/fire tallies). Sites start evaluating on the next hit.
void Arm(Plan plan);

/// Disarms: every site returns to the one-atomic-load no-op path. The
/// tallies of the disarmed plan remain readable until the next `Arm`.
void Disarm();

namespace internal {
extern std::atomic<bool> g_armed;
}  // namespace internal

/// Fast path: is any plan armed? One relaxed atomic load.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// Evaluates one site hit against the armed plan. Prefer the WAVE_FAULT
/// macro, which short-circuits the disarmed case.
Action Evaluate(const char* site);

/// Per-site tallies of the current (or last disarmed) plan.
struct SiteCount {
  std::string site;
  int64_t hits = 0;
  int64_t fires = 0;
};
std::vector<SiteCount> Counts();
int64_t TotalFires();

/// Copies the tallies onto `metrics` as `fault.hits.<site>` /
/// `fault.injected.<site>` counters (wave_verify calls this before
/// writing its stats JSON).
void ExportMetrics(obs::MetricsRegistry* metrics);

/// The curated injection-point inventory: site name, defining file, and
/// the kinds that meaningfully apply there (a mask of 1 << Kind).
/// docs/ROBUSTNESS.md renders this table; tests/fault_test.cc enforces
/// that every entry is reachable and fires for every applicable kind.
struct SiteInfo {
  const char* site;
  const char* file;
  unsigned kinds_mask;

  bool Supports(Kind k) const {
    return (kinds_mask & (1u << static_cast<unsigned>(k))) != 0;
  }
};
const std::vector<SiteInfo>& KnownSites();

/// Parses a plan spec string (the `WAVE_FAULT_SPEC` format):
///
///   spec  := item (';' item)*
///   item  := 'seed=' UINT | rule
///   rule  := SITE '=' KIND ['@' NTH] (':' MOD)*
///   MOD   := 'p=' FLOAT | 'max=' INT | 'delay=' SECONDS | 'keep=' FRACTION
///
/// Examples: "cache.store.publish=crash@3",
///           "io.write.data=eio:p=0.25;seed=42",
///           "worker.start=delay:delay=0.01".
StatusOr<Plan> ParsePlan(const std::string& text);

/// Renders a plan back into the `ParsePlan` format (what wave_crash
/// exports into child environments).
std::string FormatPlan(const Plan& plan);

/// Arms from the `WAVE_FAULT_SPEC` environment variable; no-op Ok when
/// unset or empty, InvalidArgument on a malformed spec.
Status ArmFromEnv();

/// Test helper: arms on construction, disarms on destruction.
class ScopedPlan {
 public:
  explicit ScopedPlan(Plan plan) { Arm(std::move(plan)); }
  ~ScopedPlan() { Disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace wave::fault

/// A named injection point. Disarmed cost: one relaxed atomic load.
#define WAVE_FAULT(site)                                            \
  (::wave::fault::Armed() ? ::wave::fault::Evaluate(site)           \
                          : ::wave::fault::Action{})

#endif  // WAVE_COMMON_FAULT_H_
