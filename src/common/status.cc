#include "common/status.h"

namespace wave {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kShuttingDown: return "SHUTTING_DOWN";
  }
  return "?";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  if (loc_.file != nullptr && loc_.file[0] != '\0') {
    out += " [at ";
    out += loc_.file;
    out += ":";
    out += std::to_string(loc_.line);
    out += "]";
  }
  return out;
}

}  // namespace wave
