#include "common/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace wave {

namespace {

std::string ErrnoSuffix() {
  int err = errno;
  if (err == 0) return "";
  return std::string(" (") + std::strerror(err) + ")";
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'" + ErrnoSuffix(),
                            WAVE_LOC);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Unavailable("error while reading '" + path + "'" +
                                   ErrnoSuffix(),
                               WAVE_LOC);
  }
  return buffer.str();
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  errno = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot create '" + tmp + "'" +
                                     ErrnoSuffix(),
                                 WAVE_LOC);
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Unavailable("error while writing '" + tmp + "'" +
                                     ErrnoSuffix(),
                                 WAVE_LOC);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename '" + tmp + "' to '" + path +
                                   "'" + ErrnoSuffix(),
                               WAVE_LOC);
  }
  return Status::Ok();
}

}  // namespace wave
