#include "common/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault.h"

namespace wave {

namespace {

std::string ErrnoSuffix() {
  int err = errno;
  if (err == 0) return "";
  return std::string(" (") + std::strerror(err) + ")";
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  if (fault::Action a = WAVE_FAULT("io.read.open"); fault::IsError(a)) {
    return fault::ToStatus(a, "open '" + path + "'");
  }
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'" + ErrnoSuffix(),
                            WAVE_LOC);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Unavailable("error while reading '" + path + "'" +
                                   ErrnoSuffix(),
                               WAVE_LOC);
  }
  if (fault::Action a = WAVE_FAULT("io.read.data"); fault::IsError(a)) {
    return fault::ToStatus(a, "read '" + path + "'");
  }
  return buffer.str();
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  if (fault::Action a = WAVE_FAULT("io.write.open"); fault::IsError(a)) {
    return fault::ToStatus(a, "create '" + tmp + "'");
  }
  errno = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot create '" + tmp + "'" +
                                     ErrnoSuffix(),
                                 WAVE_LOC);
    }
    if (fault::Action a = WAVE_FAULT("io.write.data"); fault::IsError(a)) {
      if (a.kind == fault::Kind::kShortWrite) {
        // A torn write: a prefix lands, the error hits, and the partial
        // temp file is deliberately LEFT behind — the on-disk state a
        // crashed or out-of-space writer produces. Recovery/audit paths
        // must cope with (and clean up) exactly this.
        size_t keep = static_cast<size_t>(
            static_cast<double>(content.size()) * a.short_write_keep);
        out.write(content.data(), static_cast<std::streamsize>(keep));
        out.flush();
        return fault::ToStatus(
            a, "short write '" + tmp + "' (" + std::to_string(keep) + "/" +
                   std::to_string(content.size()) + " bytes)");
      }
      out.close();
      std::remove(tmp.c_str());
      return fault::ToStatus(a, "write '" + tmp + "'");
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Unavailable("error while writing '" + tmp + "'" +
                                     ErrnoSuffix(),
                                 WAVE_LOC);
    }
  }
  if (fault::Action a = WAVE_FAULT("io.write.commit"); fault::IsError(a)) {
    // Failed before the rename: the destination is untouched, the temp
    // file stays (as it would after a real pre-rename crash).
    return fault::ToStatus(a, "commit '" + tmp + "' -> '" + path + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename '" + tmp + "' to '" + path +
                                   "'" + ErrnoSuffix(),
                               WAVE_LOC);
  }
  WAVE_FAULT("io.write.done");  // crash-after-commit kill-point
  return Status::Ok();
}

}  // namespace wave
