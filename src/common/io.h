// File I/O with Status-based error reporting (ISSUE 2). All user-facing
// file operations (spec loading, stats/trace export) go through these so
// an unreadable path or a full disk surfaces as a recoverable Status, and
// output files are never observed half-written.
#ifndef WAVE_COMMON_IO_H_
#define WAVE_COMMON_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace wave {

/// Reads the whole file at `path`. kNotFound when the file cannot be
/// opened, kUnavailable on a mid-read failure.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` atomically: the bytes go to `<path>.tmp`
/// first and the temp file is renamed over `path` only after a successful
/// close, so a crash or SIGKILL mid-write leaves either the old file or
/// the complete new one — never a truncated mix. The temp file is removed
/// on failure.
Status AtomicWriteFile(const std::string& path, std::string_view content);

}  // namespace wave

#endif  // WAVE_COMMON_IO_H_
