#include "common/fingerprint.h"

#include <cstring>

namespace wave {

namespace {

// Two independent FNV-1a 64 lanes with distinct offset bases, each
// finalized through a splitmix64-style avalanche. FNV alone has weak
// high-bit diffusion; the finalizer fixes that without giving up the
// simple byte-at-a-time streaming interface.
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
constexpr uint64_t kOffsetA = 0xcbf29ce484222325ull;   // standard FNV basis
constexpr uint64_t kOffsetB = 0x6c62272e07bb0142ull;   // FNV-0 of a pangram

uint64_t Avalanche(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string Fingerprint::ToHex() const {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  uint64_t words[2] = {hi, lo};
  int pos = 0;
  for (uint64_t w : words) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out[pos++] = kDigits[(w >> shift) & 0xf];
    }
  }
  return out;
}

FingerprintBuilder::FingerprintBuilder() : a_(kOffsetA), b_(kOffsetB) {}

void FingerprintBuilder::Mix(uint8_t byte) {
  a_ = (a_ ^ byte) * kFnvPrime;
  b_ = (b_ ^ byte) * kFnvPrime;
  // Cross-pollinate the lanes so they do not stay a pair of plain FNV
  // streams (which would collide together whenever FNV collides).
  b_ ^= a_ >> 47;
}

void FingerprintBuilder::AddBytes(std::string_view bytes) {
  for (unsigned char c : bytes) Mix(c);
}

void FingerprintBuilder::AddInt(int64_t v) {
  Mix('i');
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) Mix(static_cast<uint8_t>(u >> (8 * i)));
}

void FingerprintBuilder::AddBool(bool b) {
  Mix('b');
  Mix(b ? 1 : 0);
}

void FingerprintBuilder::AddDouble(double v) {
  Mix('d');
  uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  for (int i = 0; i < 8; ++i) Mix(static_cast<uint8_t>(u >> (8 * i)));
}

void FingerprintBuilder::AddString(std::string_view s) {
  Mix('s');
  AddInt(static_cast<int64_t>(s.size()));
  AddBytes(s);
}

void FingerprintBuilder::AddTag(std::string_view tag) {
  Mix('t');
  AddInt(static_cast<int64_t>(tag.size()));
  AddBytes(tag);
}

Fingerprint FingerprintBuilder::Finish() const {
  Fingerprint fp;
  fp.lo = Avalanche(a_);
  fp.hi = Avalanche(b_ + 0x9e3779b97f4a7c15ull);
  return fp;
}

}  // namespace wave
