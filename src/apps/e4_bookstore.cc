// E4 — the online bookstore (Barnes&Noble-like; in the paper this spec was
// provided by the WebML project members, Section 5): 35 pages, 22 database
// relations (arities up to 14), 7 state relations.
//
// The bulk of the site is catalog browsing (genre/author/series/award/...
// list and detail pages over dedicated database relations); the commerce
// core is the usual search → detail → cart → checkout → payment →
// confirmation flow.
#include "apps/app_util.h"
#include "apps/apps.h"

namespace wave {

namespace {

constexpr char kE4[] = R"WAVE(
app E4_bookstore

database bookfull(bid, title, author, genre, publisher, year, isbn, pages, lang, format, price, rating, stock, cover)
database users(name, password)
database authors(aid, aname)
database genres(gid, gname)
database publishers(pubid, pubname)
database reviews(bid, rid, rrating)
database pricing(bid, pprice)
database bestsellers(bsid)
database newreleases(nrid)
database awards(awbid, award)
database series(sid, sname)
database seriesbooks(sbsid, sbbid)
database similar(sbid, sbid2)
database editors(eid, ename)
database giftcards(gcid, gcvalue)
database coupons(ccode, cdiscount)
database shippingdb(smethod, sprice)
database taxes(region, rate)
database storesdb(stid, stcity)
database eventsdb(evid, evcity, evdate)
database magazines(mid, mtitle)
database staffpicks(spbid)

state loggedin()
state userid(name)
state cartb(bid, price)
state paidb(bid, price)
state wish(bid)
state couponused(code)
state orderedb(bid, price)

action receipt(bid, price)
action mailed(code)

input button(x)
input bpick(bid, price)
input gpick(gid)
input apick(aid)
input spick(sid)
input cpick(code)
inputconst uname
inputconst upass
inputconst query

home HP

page HP {
  input button
  input uname
  input upass
  rule button(x) <- x = "login" | x = "register" | x = "browse" | x = "search"
      | x = "bestsellers" | x = "newreleases" | x = "stores" | x = "help"
  state +loggedin() <- exists n: uname(n) & (exists p: upass(p) & users(n, p)) & button("login")
  state +userid(n) <- uname(n) & (exists p: upass(p) & users(n, p)) & button("login")
  target ACC <- exists n: uname(n) & (exists p: upass(p) & users(n, p)) & button("login")
  target EP  <- button("login") & !(exists n: uname(n) & exists p: upass(p) & users(n, p))
  target REG <- button("register")
  target BRP <- button("browse")
  target SRP <- button("search")
  target BSP <- button("bestsellers")
  target NRP <- button("newreleases")
  target STP <- button("stores")
  target HLP <- button("help")
}

page REG {
  input button
  input uname
  input upass
  rule button(x) <- x = "create" | x = "cancel"
  target HP <- button("create") | button("cancel")
}

page ACC {
  input button
  rule button(x) <- x = "orders" | x = "wishlist" | x = "giftcards"
      | x = "coupons" | x = "logout" | x = "home"
  state -loggedin() <- button("logout")
  state -userid(n) <- userid(n) & button("logout")
  target ORD <- button("orders")
  target WLP <- button("wishlist")
  target GCP <- button("giftcards")
  target CPP <- button("coupons")
  target LOP <- button("logout")
  target HP  <- button("home")
}

page BRP {
  input button
  rule button(x) <- x = "genres" | x = "byauthor" | x = "byseries" | x = "awards"
      | x = "editors" | x = "staffpicks" | x = "magazines" | x = "events" | x = "home"
  target GLP <- button("genres")
  target ALP <- button("byauthor")
  target SEP <- button("byseries")
  target AWP <- button("awards")
  target EDP <- button("editors")
  target SPP <- button("staffpicks")
  target MGP <- button("magazines")
  target EVP <- button("events")
  target HP  <- button("home")
}

page GLP {
  input button
  input gpick
  rule button(x) <- x = "back"
  rule gpick(g) <- exists n: genres(g, n)
  target GBP <- exists g: gpick(g)
  target BRP <- button("back")
}

page GBP {
  input button
  input bpick
  rule button(x) <- x = "back"
  rule bpick(b, p) <- exists t, a, g, pu, y, i, pg, l, f, r, s, c:
      bookfull(b, t, a, g, pu, y, i, pg, l, f, p, r, s, c)
  target BDP <- exists b, p: bpick(b, p)
  target GLP <- button("back")
}

page ALP {
  input button
  input apick
  rule button(x) <- x = "back"
  rule apick(a) <- exists n: authors(a, n)
  target ABKP <- exists a: apick(a)
  target BRP <- button("back")
}

page ABKP {
  input button
  input bpick
  rule button(x) <- x = "back"
  rule bpick(b, p) <- exists t, a, g, pu, y, i, pg, l, f, r, s, c:
      bookfull(b, t, a, g, pu, y, i, pg, l, f, p, r, s, c)
  target BDP <- exists b, p: bpick(b, p)
  target ALP <- button("back")
}

page SRP {
  input button
  input query
  rule button(x) <- x = "go" | x = "home"
  target SRRP <- button("go")
  target HP   <- button("home")
}

page SRRP {
  input button
  input bpick
  rule button(x) <- x = "back"
  rule bpick(b, p) <- exists t, a, g, pu, y, i, pg, l, f, r, s, c:
      bookfull(b, t, a, g, pu, y, i, pg, l, f, p, r, s, c)
  target BDP <- exists b, p: bpick(b, p)
  target SRP <- button("back")
}

page BDP {
  input button
  rule button(x) <- x = "addtocart" | x = "addtowish" | x = "reviews"
      | x = "similar" | x = "back"
  state +cartb(b, p) <- prev bpick(b, p) & button("addtocart")
  state +wish(b) <- (exists p: prev bpick(b, p)) & button("addtowish")
  target RVP <- button("reviews")
  target SIM <- button("similar")
  target CRT <- button("addtocart")
  target HP  <- button("back")
}

page RVP {
  input button
  rule button(x) <- x = "back"
  target HP <- button("back")
}

page SIM {
  input button
  input bpick
  rule button(x) <- x = "back"
  rule bpick(b, p) <- exists t, a, g, pu, y, i, pg, l, f, r, s, c:
      bookfull(b, t, a, g, pu, y, i, pg, l, f, p, r, s, c)
  target BDP <- exists b, p: bpick(b, p)
  target HP  <- button("back")
}

page CRT {
  input button
  input bpick
  rule button(x) <- x = "checkout" | x = "remove" | x = "home"
  rule bpick(b, p) <- exists t, a, g, pu, y, i, pg, l, f, r, s, c:
      bookfull(b, t, a, g, pu, y, i, pg, l, f, p, r, s, c)
  state -cartb(b, p) <- bpick(b, p) & button("remove")
  target CKP <- button("checkout")
  target HP  <- button("home")
}

page CKP {
  input button
  rule button(x) <- x = "topayment" | x = "back" | x = "shipping"
  target PYP <- button("topayment")
  target SHP <- button("shipping")
  target CRT <- button("back")
}

page SHP {
  input button
  rule button(x) <- x = "back"
  target CKP <- button("back")
}

page PYP {
  input button
  input bpick
  rule button(x) <- x = "pay" | x = "back"
  rule bpick(b, p) <- exists t, a, g, pu, y, i, pg, l, f, r, s, c:
      bookfull(b, t, a, g, pu, y, i, pg, l, f, p, r, s, c)
  state +paidb(b, p) <- bpick(b, p) & cartb(b, p) & button("pay")
  state -cartb(b, p) <- bpick(b, p) & cartb(b, p) & button("pay")
  target CFP <- (exists b, p: bpick(b, p)) & button("pay")
  target CKP <- button("back")
}

page CFP {
  input button
  rule button(x) <- x = "confirm" | x = "home"
  state +orderedb(b, p) <- paidb(b, p) & button("confirm")
  action receipt(b, p) <- paidb(b, p) & button("confirm")
  target ACC <- button("confirm")
  target HP  <- button("home")
}

page ORD {
  input button
  rule button(x) <- x = "back"
  target ACC <- button("back")
}

page WLP {
  input button
  rule button(x) <- x = "back"
  target ACC <- button("back")
}

page GCP {
  input button
  rule button(x) <- x = "back"
  target ACC <- button("back")
}

page CPP {
  input button
  input cpick
  rule button(x) <- x = "apply" | x = "back"
  rule cpick(c) <- exists d: coupons(c, d)
  state +couponused(c) <- cpick(c) & button("apply")
  action mailed(c) <- cpick(c) & button("apply")
  target ACC <- button("apply") | button("back")
}

page BSP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page NRP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page AWP {
  input button
  rule button(x) <- x = "back"
  target BRP <- button("back")
}

page SEP {
  input button
  input spick
  rule button(x) <- x = "back"
  rule spick(s) <- exists n: series(s, n)
  target SEBP <- exists s: spick(s)
  target BRP <- button("back")
}

page SEBP {
  input button
  rule button(x) <- x = "back"
  target SEP <- button("back")
}

page EDP {
  input button
  rule button(x) <- x = "back"
  target BRP <- button("back")
}

page SPP {
  input button
  rule button(x) <- x = "back"
  target BRP <- button("back")
}

page MGP {
  input button
  rule button(x) <- x = "back"
  target BRP <- button("back")
}

page EVP {
  input button
  rule button(x) <- x = "back"
  target BRP <- button("back")
}

page STP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page HLP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page EP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page LOP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

# ---- properties -----------------------------------------------------------

property S1 type T9 expect true desc "home reached" {
  F [at HP]
}

property S2 type T9 expect false desc "every run logs in" {
  F [loggedin()]
}

property S3 type T1 expect true desc "books are paid in-cart before the receipt" {
  forall b, p:
  [at PYP & button("pay") & cartb(b, p)] B [receipt(b, p)]
}

property S4 type T3 expect true desc "paid books were in the cart" {
  forall b, p:
  F [paidb(b, p)] -> F [cartb(b, p)]
}

property S5 type T3 expect false desc "every cart book is paid" {
  forall b, p:
  F [cartb(b, p)] -> F [paidb(b, p)]
}

property S6 type T1 expect true desc "coupons are picked before taking effect" {
  forall c:
  [at CPP & cpick(c)] B [couponused(c)]
}

property S7 type T4 expect false desc "checkout always completes" {
  G ([at CKP] -> F [at CFP])
}

property S8 type T10 expect true desc "payment page successors" {
  G ([at PYP] -> X ([at CFP] | [at CKP] | [at PYP]))
}

property S9 type T8 expect false desc "once browsing, always browsing" {
  G ([at BRP] -> X [at BRP])
}

property S10 type T6 expect false desc "home recurs forever" {
  G (F [at HP])
}

property S11 type T7 expect false desc "every run settles at the error page" {
  F (G [at EP])
}

property S12 type T5 expect true desc "an ordered book implies confirmation was visited" {
  G [!(exists b, p: orderedb(b, p))] | F [at CFP]
}
)WAVE";

}  // namespace

const char* E4SpecText() { return kE4; }

AppBundle BuildE4() { return internal::BuildFromText(kE4); }

}  // namespace wave
