// E1 — the online computer shopping application (the paper's running
// example, Section 2.1 / Example 2.1, functionality in the spirit of the
// Dell site). 19 pages, 4 database relations (arities 2,3,5,7), 10 state
// relations (arities 0..5), 6 input relations (arities 1..5) plus 3 text
// input constants, 5 action relations.
//
// Page map:
//   HP   home / login          RP   new-user registration
//   CP   customer home         LSP  laptop search (paper Example 2.1)
//   DSP  desktop search        PIP  product list (search results)
//   PDP  product detail        CC   cart contents
//   UPP  user payment page     OCP  order confirmation page
//   MOP  my-orders page        CCP  customer cancel page
//   ODP  order detail          AP   account page
//   CPW  change password       EP   error page (single link home)
//   HLP  help                  ABP  about
//   LOP  logged-out page
#include "apps/app_util.h"
#include "apps/apps.h"

namespace wave {

namespace {

constexpr char kE1[] = R"WAVE(
app E1_computer_shopping

# ---- database schema (fixed, unknown content) -------------------------------
database user(name, password)
database criteria(category, attr, value)
database ordersdb(oid, uname, pid, price, status)
database products(pid, category, name, ram, hdd, display, price)

# ---- state schema ------------------------------------------------------------
state loggedin()
state userid(name)
state regname(name)
state searchcat(cat)
state cart(pid, price)
state paid(pid, price)
state userchoice(ram, hdd, display)
state orderplaced(pid, price, speed)
state userorderpick(oid, pid, price, status)
state shiplog(oid, uname, pid, price, status)

# ---- input schema --------------------------------------------------------------
input button(x)
input clicklink(x)
input pick(pid, price)
input laptopsearch(ram, hdd, display)
input orderpick(oid, pid, price, status)
input payfields(pid, price, method, addr, speed)
inputconst uname
inputconst upass
inputconst ccno

# ---- action schema --------------------------------------------------------------
action welcome()
action registered(name)
action invoice(pid, price, speed)
action ship(pid, price, method, addr, speed)
action conf(pid, category, name, ram, hdd, display, price)

home HP

# ================================ pages =======================================

page HP {
  input button
  input uname
  input upass
  rule button(x) <- x = "login" | x = "toregister" | x = "help" | x = "about"
  state +loggedin() <- exists n: uname(n) & (exists p: upass(p) & user(n, p)) & button("login")
  state +userid(n) <- uname(n) & (exists p: upass(p) & user(n, p)) & button("login")
  action welcome() <- exists n: uname(n) & (exists p: upass(p) & user(n, p)) & button("login")
  target CP <- exists n: uname(n) & (exists p: upass(p) & user(n, p)) & button("login")
  target EP <- button("login") & !(exists n: uname(n) & exists p: upass(p) & user(n, p))
  target RP <- button("toregister")
  target HLP <- button("help")
  target ABP <- button("about")
}

page RP {
  input button
  input uname
  input upass
  rule button(x) <- x = "register" | x = "cancel"
  state +regname(n) <- uname(n) & button("register")
  action registered(n) <- uname(n) & button("register")
  target HP <- button("register") | button("cancel")
}

page CP {
  input button
  rule button(x) <- x = "laptops" | x = "desktops" | x = "viewcart"
               | x = "myorders" | x = "account" | x = "logout" | x = "help"
  state +searchcat("laptop") <- button("laptops")
  state +searchcat("desktop") <- button("desktops")
  state -loggedin() <- button("logout")
  state -userid(n) <- userid(n) & button("logout")
  target LSP <- button("laptops")
  target DSP <- button("desktops")
  target CC  <- button("viewcart")
  target MOP <- button("myorders")
  target AP  <- button("account")
  target LOP <- button("logout")
  target HLP <- button("help")
}

# The laptop search page, verbatim from Example 2.1 of the paper.
page LSP {
  input button
  input laptopsearch
  rule button(x) <- x = "search" | x = "viewcart" | x = "logout"
  rule laptopsearch(r, h, d) <- criteria("laptop", "ram", r)
      & criteria("laptop", "hdd", h) & criteria("laptop", "display", d)
  state +userchoice(r, h, d) <- laptopsearch(r, h, d) & button("search")
  target HP  <- button("logout")
  target PIP <- (exists r, h, d: laptopsearch(r, h, d)) & button("search")
  target CC  <- button("viewcart")
}

page DSP {
  input button
  input laptopsearch
  rule button(x) <- x = "search" | x = "viewcart" | x = "logout"
  rule laptopsearch(r, h, d) <- criteria("desktop", "ram", r)
      & criteria("desktop", "hdd", h) & criteria("desktop", "display", d)
  state +userchoice(r, h, d) <- laptopsearch(r, h, d) & button("search")
  target HP  <- button("logout")
  target PIP <- (exists r, h, d: laptopsearch(r, h, d)) & button("search")
  target CC  <- button("viewcart")
}

page PIP {
  input button
  input pick
  rule button(x) <- x = "addtocart" | x = "details" | x = "back" | x = "viewcart"
  rule pick(p, pr) <- exists c, n, r, h, d: products(p, c, n, r, h, d, pr)
  state +cart(p, pr) <- pick(p, pr) & button("addtocart")
  target PDP <- (exists p, pr: pick(p, pr)) & button("details")
  target CC  <- button("viewcart")
  target LSP <- button("back")
  target PIP <- button("addtocart")
}

page PDP {
  input button
  rule button(x) <- x = "addtocart" | x = "back"
  state +cart(p, pr) <- prev pick(p, pr) & button("addtocart")
  target PIP <- button("addtocart") | button("back")
}

page CC {
  input button
  input pick
  rule button(x) <- x = "remove" | x = "checkout" | x = "back"
  rule pick(p, pr) <- exists c, n, r, h, d: products(p, c, n, r, h, d, pr)
  state -cart(p, pr) <- pick(p, pr) & button("remove")
  target UPP <- button("checkout")
  target CP  <- button("back")
}

page UPP {
  input button
  input payfields
  input ccno
  rule button(x) <- x = "submit" | x = "cancel"
  rule payfields(p, pr, m, a, s) <-
      (exists c, n, r, h, d: products(p, c, n, r, h, d, pr))
      & (m = "visa" | m = "mastercard") & a = "homeaddr"
      & (s = "standard" | s = "express")
  state +paid(p, pr) <- exists m, a, s: payfields(p, pr, m, a, s)
      & cart(p, pr) & button("submit")
  state -cart(p, pr) <- exists m, a, s: payfields(p, pr, m, a, s)
      & cart(p, pr) & button("submit")
  target OCP <- (exists p, pr, m, a, s: payfields(p, pr, m, a, s)) & button("submit")
  target CC  <- button("cancel")
}

page OCP {
  input button
  rule button(x) <- x = "confirm" | x = "back"
  state +orderplaced(p, pr, s) <- (exists m, a: prev payfields(p, pr, m, a, s))
      & paid(p, pr) & button("confirm")
  action conf(p, c, n, r, h, d, pr) <- paid(p, pr)
      & products(p, c, n, r, h, d, pr) & button("confirm")
  action invoice(p, pr, s) <- (exists m, a: prev payfields(p, pr, m, a, s))
      & paid(p, pr) & button("confirm")
  action ship(p, pr, m, a, s) <- prev payfields(p, pr, m, a, s)
      & paid(p, pr) & button("confirm")
  target CP <- button("confirm") | button("back")
}

page MOP {
  input button
  input orderpick
  rule button(x) <- x = "cancelreq" | x = "detail" | x = "back"
  rule orderpick(o, p, pr, st) <- exists un: ordersdb(o, un, p, pr, st)
  state +userorderpick(o, p, pr, st) <- orderpick(o, p, pr, st)
      & (button("cancelreq") | button("detail"))
  target CCP <- (exists o, p, pr: orderpick(o, p, pr, "ordered")) & button("cancelreq")
  target ODP <- (exists o, p, pr, st: orderpick(o, p, pr, st)) & button("detail")
  target CP  <- button("back")
}

page CCP {
  input button
  rule button(x) <- x = "confirmcancel" | x = "back"
  state -userorderpick(o, p, pr, st) <- userorderpick(o, p, pr, st)
      & button("confirmcancel")
  target MOP <- button("confirmcancel") | button("back")
}

page ODP {
  input button
  rule button(x) <- x = "back"
  target MOP <- button("back")
}

page AP {
  input button
  rule button(x) <- x = "changepass" | x = "back"
  target CPW <- button("changepass")
  target CP  <- button("back")
}

page CPW {
  input button
  input upass
  rule button(x) <- x = "save" | x = "back"
  target AP <- button("save") | button("back")
}

page EP {
  input clicklink
  rule clicklink(x) <- x = "home"
  target HP <- clicklink("home")
}

page HLP {
  input clicklink
  rule clicklink(x) <- x = "home" | x = "customer"
  target HP <- clicklink("home")
  target CP <- clicklink("customer") & loggedin()
  target EP <- clicklink("customer") & !loggedin()
}

page ABP {
  input clicklink
  rule clicklink(x) <- x = "home"
  target HP <- clicklink("home")
}

page LOP {
  input clicklink
  rule clicklink(x) <- x = "home"
  target HP <- clicklink("home")
}

# ================================ properties ====================================

# T9 guarantee — the minimum yardstick (paper P1): the home page is reached.
property P1 type T9 expect true desc "page HP is eventually reached in all runs" {
  F [at HP]
}

# T5 reachability (Gp | Fq).
property P2 type T5 expect true desc "a run that ever logs in reaches the customer page" {
  G [!loggedin()] | F [at CP]
}

property P3 type T5 expect false desc "either the error page is never seen or a welcome is issued" {
  G [!(at EP)] | F [welcome()]
}

# T10 invariance: the successor page is always among the declared targets
# (the paper's 'no two distinct successor pages', 12+ G and X operators).
property P4 type T10 expect true desc "successor pages are uniquely determined" {
  G ([at HP] -> X ([at CP] | [at EP] | [at RP] | [at HLP] | [at ABP] | [at HP]))
  & G ([at RP] -> X ([at HP] | [at RP]))
  & G ([at CP] -> X ([at LSP] | [at DSP] | [at CC] | [at MOP] | [at AP] | [at LOP] | [at HLP] | [at CP]))
  & G ([at LSP] -> X ([at HP] | [at PIP] | [at CC] | [at LSP]))
  & G ([at DSP] -> X ([at HP] | [at PIP] | [at CC] | [at DSP]))
  & G ([at PIP] -> X ([at PDP] | [at CC] | [at LSP] | [at PIP]))
  & G ([at PDP] -> X ([at PIP] | [at PDP]))
  & G ([at CC] -> X ([at UPP] | [at CP] | [at CC]))
  & G ([at UPP] -> X ([at OCP] | [at CC] | [at UPP]))
  & G ([at OCP] -> X ([at CP] | [at OCP]))
  & G ([at MOP] -> X ([at CCP] | [at ODP] | [at CP] | [at MOP]))
  & G ([at EP] -> X ([at HP] | [at EP]))
}

# T1 sequence (paper Example 3.1 / Property (1)): any confirmed product was
# previously paid for, at the right catalog price.
property P5 type T1 expect true desc "confirmed products were paid at the catalog price" {
  forall p, c, n, r, h, d, pr:
  [at UPP & button("submit") & cart(p, pr) & products(p, c, n, r, h, d, pr)]
  B [conf(p, c, n, r, h, d, pr)]
}

# T3 correlation — registering does not force ever logging in.
property P6 type T3 expect false desc "every registered user eventually logs in" {
  forall n:
  F [registered(n)] -> F [userid(n)]
}

# T1 sequence (paper P7): an order is picked on the my-orders page before
# it can be up for cancellation.
property P7 type T1 expect true desc "orders are picked before they can be cancelled" {
  forall o, p, pr, st:
  [at MOP & orderpick(o, p, pr, st)] B [at CCP & userorderpick(o, p, pr, st)]
}

# T9 guarantee — not every run logs in.
property P8 type T9 expect false desc "every run eventually logs in" {
  F [loggedin()]
}

# T2 session (paper P9): if the user always clicks a link at EP, every
# visit to EP eventually leads back home.
property P9 type T2 expect true desc "EP always escapes to HP if links are clicked" {
  G [at EP -> exists x: clicklink(x)]
  -> G ( G [!(at EP)] | F ([at EP] & F [at HP]) )
}

# T3 correlation — payment implies the item was in the cart.
property P10 type T3 expect true desc "paying for an item requires it in the cart" {
  forall p, pr:
  F [paid(p, pr)] -> F [cart(p, pr)]
}

property P11 type T3 expect false desc "every cart item is eventually paid" {
  forall p, pr:
  F [cart(p, pr)] -> F [paid(p, pr)]
}

# T3 correlation (paper P12): items reach the cart only via a pick.
property P12 type T3 expect true desc "cart items were picked by the user" {
  forall p, pr:
  F [cart(p, pr)] -> F [pick(p, pr)]
}

# T4 response — false: the user may abandon the cart.
property P13 type T4 expect false desc "cart items are always eventually paid for" {
  forall p, pr:
  G ([cart(p, pr)] -> F [paid(p, pr)])
}

property P14 type T4 expect false desc "clicking login always eventually reaches CP" {
  G ([at HP & button("login")] -> F [at CP])
}

# T7 strong non-progress (paper P15): every run is trapped at EP.
property P15 type T7 expect false desc "every run must reach EP and stay forever" {
  F (G [at EP])
}

# T6 recurrence — false: a logged-in session may never revisit HP.
property P16 type T6 expect false desc "the home page recurs forever" {
  G (F [at HP])
}

# T8 weak non-progress — false: logout clears the session.
property P17 type T8 expect false desc "once logged in, logged in at every next step" {
  G ([loggedin()] -> X [loggedin()])
}
)WAVE";

}  // namespace

const char* E1SpecText() { return kE1; }

AppBundle BuildE1() { return internal::BuildFromText(kE1); }

}  // namespace wave
