// The four experimental Web applications of the paper's evaluation
// (Section 5), re-created in the spec DSL:
//   E1 — online computer shopping (Dell-like; the running example),
//   E2 — Motorcycle Grand Prix browsing site (motogp.com-like),
//   E3 — airline reservation site (Expedia-like),
//   E4 — online bookstore (Barnes&Noble-like, WebML-provided in the paper).
//
// Each builder parses an embedded DSL source (exposed for documentation
// and tests), checks it validates and is input bounded, and returns the
// spec together with its property suite (P1…, with the expected verdicts
// the experiment harness asserts).
#ifndef WAVE_APPS_APPS_H_
#define WAVE_APPS_APPS_H_

#include <memory>
#include <vector>

#include "parser/parser.h"
#include "spec/web_app.h"

namespace wave {

/// A spec plus its property suite.
struct AppBundle {
  std::unique_ptr<WebAppSpec> spec;
  std::vector<ParsedProperty> properties;
};

/// DSL sources (embedded; also written out by `examples/quickstart`).
const char* E1SpecText();
const char* E2SpecText();
const char* E3SpecText();
const char* E4SpecText();

/// Builders (WAVE_CHECK on parse/validation failure).
AppBundle BuildE1();
AppBundle BuildE2();
AppBundle BuildE3();
AppBundle BuildE4();

}  // namespace wave

#endif  // WAVE_APPS_APPS_H_
