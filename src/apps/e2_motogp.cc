// E2 — the Motorcycle Grand Prix sports site (modeled after motogp.com,
// Section 5). Pure browsing: 15 pages, 7 database relations, no state or
// action relations — representative of applications whose functionality is
// restricted to browsing without internal state changes.
//
// Page map: HP home; NWP news list; NDP news detail; GP grand prix
// calendar; GDP grand prix detail; CLP circuit list; CDP circuit detail;
// TMP teams; TDP team detail; PLP pilots; PDP pilot detail; BKP bikes;
// BDP bike detail; RSP results/standings; ABP about.
#include "apps/app_util.h"
#include "apps/apps.h"

namespace wave {

namespace {

constexpr char kE2[] = R"WAVE(
app E2_motogp

database news(nid, title)
database gps(gpid, name, cid)
database circuits(cid, name, country)
database teams(tid, name)
database pilots(plid, name, tid, number)
database bikes(bid, maker, tid)
database results(gpid, plid, rank)

input clickbutton(x)
input pick_news(nid)
input pick_gp(gpid)
input pick_circuit(cid)
input pick_team(tid)
input pick_pilot(plid)
input pick_bike(bid)

home HP

page HP {
  input clickbutton
  rule clickbutton(x) <- x = "news" | x = "calendar" | x = "teams"
      | x = "pilots" | x = "bikes" | x = "standings" | x = "about"
  target NWP <- clickbutton("news")
  target GP  <- clickbutton("calendar")
  target TMP <- clickbutton("teams")
  target PLP <- clickbutton("pilots")
  target BKP <- clickbutton("bikes")
  target RSP <- clickbutton("standings")
  target ABP <- clickbutton("about")
}

page NWP {
  input clickbutton
  input pick_news
  rule clickbutton(x) <- x = "home"
  rule pick_news(n) <- exists t: news(n, t)
  target NDP <- exists n: pick_news(n)
  target HP  <- clickbutton("home")
}

page NDP {
  input clickbutton
  rule clickbutton(x) <- x = "back" | x = "home"
  target NWP <- clickbutton("back")
  target HP  <- clickbutton("home")
}

page GP {
  input clickbutton
  input pick_gp
  rule clickbutton(x) <- x = "home" | x = "circuits"
  rule pick_gp(g) <- exists n, c: gps(g, n, c)
  target GDP <- exists g: pick_gp(g)
  target CLP <- clickbutton("circuits")
  target HP  <- clickbutton("home")
}

page GDP {
  input clickbutton
  input pick_circuit
  rule clickbutton(x) <- x = "back" | x = "home" | x = "results"
  rule pick_circuit(c) <- exists g, n: prev pick_gp(g) & gps(g, n, c)
  target CDP <- exists c: pick_circuit(c)
  target RSP <- clickbutton("results")
  target GP  <- clickbutton("back")
  target HP  <- clickbutton("home")
}

page CLP {
  input clickbutton
  input pick_circuit
  rule clickbutton(x) <- x = "home"
  rule pick_circuit(c) <- exists n, co: circuits(c, n, co)
  target CDP <- exists c: pick_circuit(c)
  target HP  <- clickbutton("home")
}

page CDP {
  input clickbutton
  rule clickbutton(x) <- x = "back" | x = "home"
  target CLP <- clickbutton("back")
  target HP  <- clickbutton("home")
}

page TMP {
  input clickbutton
  input pick_team
  rule clickbutton(x) <- x = "home"
  rule pick_team(t) <- exists n: teams(t, n)
  target TDP <- exists t: pick_team(t)
  target HP  <- clickbutton("home")
}

page TDP {
  input clickbutton
  input pick_bike
  rule clickbutton(x) <- x = "back" | x = "home"
  rule pick_bike(b) <- exists m, t: prev pick_team(t) & bikes(b, m, t)
  target BDP <- exists b: pick_bike(b)
  target TMP <- clickbutton("back")
  target HP  <- clickbutton("home")
}

page PLP {
  input clickbutton
  input pick_pilot
  rule clickbutton(x) <- x = "home"
  rule pick_pilot(p) <- exists n, t, nu: pilots(p, n, t, nu)
  target PDP <- exists p: pick_pilot(p)
  target HP  <- clickbutton("home")
}

page PDP {
  input clickbutton
  rule clickbutton(x) <- x = "back" | x = "home" | x = "results"
  target PLP <- clickbutton("back")
  target RSP <- clickbutton("results")
  target HP  <- clickbutton("home")
}

page BKP {
  input clickbutton
  input pick_bike
  rule clickbutton(x) <- x = "home"
  rule pick_bike(b) <- exists m, t: bikes(b, m, t)
  target BDP <- exists b: pick_bike(b)
  target HP  <- clickbutton("home")
}

page BDP {
  input clickbutton
  rule clickbutton(x) <- x = "back" | x = "home"
  target BKP <- clickbutton("back")
  target HP  <- clickbutton("home")
}

page RSP {
  input clickbutton
  input pick_gp
  rule clickbutton(x) <- x = "home"
  rule pick_gp(g) <- exists p, r: results(g, p, r)
  target GDP <- exists g: pick_gp(g)
  target HP  <- clickbutton("home")
}

page ABP {
  input clickbutton
  rule clickbutton(x) <- x = "home"
  target HP <- clickbutton("home")
}

# ---- properties -----------------------------------------------------------

property Q1 type T9 expect true desc "home is reached" {
  F [at HP]
}

# The property quoted in the paper's E2 paragraph: reaching the circuit
# detail page requires having gone through GP with the circuits button or
# GDP with a circuit pick.
property Q2 type T1 expect true desc "CDP preceded by GP+circuits or GDP+pick" {
  [(at GP & clickbutton("circuits")) | (at GDP & exists c: pick_circuit(c))]
  B [at CDP]
}

property Q3 type T1 expect true desc "pilot detail only after the pilot list" {
  [at PLP] B [at PDP]
}

property Q4 type T10 expect true desc "news detail returns to news, home or stays" {
  G ([at NDP] -> X ([at NWP] | [at HP] | [at NDP]))
}

property Q5 type T9 expect false desc "every run sees a bike detail page" {
  F [at BDP]
}

property Q6 type T6 expect false desc "home recurs forever" {
  G (F [at HP])
}

property Q7 type T7 expect false desc "every run settles on the about page" {
  F (G [at ABP])
}

property Q8 type T8 expect false desc "once on the calendar, always on the calendar" {
  G ([at GP] -> X [at GP])
}

property Q9 type T2 expect true desc "arriving at news detail implies a pick" {
  G ([at NWP] -> X [at NDP -> exists n: prev pick_news(n)])
}

property Q10 type T3 expect true desc "a remembered pick was made" {
  forall n:
  F [at NDP & prev pick_news(n)] -> F [pick_news(n)]
}

property Q11 type T3 expect false desc "picking a circuit implies grand prix detail" {
  forall c:
  F [pick_circuit(c)] -> F [at GDP]
}

property Q12 type T4 expect false desc "the team list always leads to a team detail" {
  G ([at TMP] -> F [at TDP])
}

property Q13 type T5 expect false desc "team browsing implies bike browsing" {
  G [!(at TDP)] | F [at BDP]
}
)WAVE";

}  // namespace

const char* E2SpecText() { return kE2; }

AppBundle BuildE2() { return internal::BuildFromText(kE2); }

}  // namespace wave
