#include "apps/app_util.h"

#include "common/check.h"

namespace wave::internal {

AppBundle BuildFromText(const char* text) {
  ParseResult result = ParseSpec(text);
  WAVE_CHECK_MSG(result.ok(),
                 "embedded app spec failed to parse:\n" << result.ErrorText());
  AppBundle bundle;
  bundle.spec = std::move(result.spec);
  bundle.properties = std::move(result.properties);
  return bundle;
}

}  // namespace wave::internal
