// E3 — the airline reservation application (Expedia-like, Section 5):
// 22 pages, 12 database relations (arities up to 10), 11 state relations,
// one action relation of arity 1.
//
// Page map:
//   HP home/login        REG register           ACC account
//   FSP flight search    FRP flight results     FDP flight detail
//   SSP seat selection   PSP passenger details  INP insurance
//   HTP hotels           CRP cars               CTP cart
//   PYP payment          CFP confirmation       MBP my bookings
//   BDP booking detail   CXP cancel booking     PRP promotions
//   HLP help             ABP about              EP error
//   LOP logged out
#include "apps/app_util.h"
#include "apps/apps.h"

namespace wave {

namespace {

constexpr char kE3[] = R"WAVE(
app E3_airline

database user(name, password)
database airports(code)
database flights(fno, orig, dest, dep, arr, price, carrier, class, stops, meal)
database carriers(cid, cname)
database fares(fno, fclass, fprice)
database seats(fno, seat, sclass)
database hotels(hid, city, hname, hprice)
database cars(carid, ccity, maker, cprice)
database bookingsdb(bid, buname, bfno, bdate, bstatus)
database insurance(iid, iname, iprice)
database airportcity(acode, acity)
database promos(prid, prcode, discount)

state loggedin()
state userid(name)
state searchreq(orig, dest)
state flightpick(fno, price)
state passenger(pname, pdoc)
state seatpick(fno, seat)
state cartf(fno, price)
state paidf(fno, price)
state confirmedf(fno, price)
state insurancepick(iid, iprice)
state promo(prcode)

action eticket(fno)

input button(x)
input srcpick(orig, dest)
input fpick(fno, price)
input seatsel(fno, seat)
input inspick(iid, iprice)
input hpick(hid, hprice)
input promoin(prcode)
inputconst uname
inputconst upass
inputconst passname
inputconst passdoc

home HP

page HP {
  input button
  input uname
  input upass
  rule button(x) <- x = "login" | x = "register" | x = "searchflights"
      | x = "help" | x = "about"
  state +loggedin() <- exists n: uname(n) & (exists p: upass(p) & user(n, p)) & button("login")
  state +userid(n) <- uname(n) & (exists p: upass(p) & user(n, p)) & button("login")
  target ACC <- exists n: uname(n) & (exists p: upass(p) & user(n, p)) & button("login")
  target EP  <- button("login") & !(exists n: uname(n) & exists p: upass(p) & user(n, p))
  target REG <- button("register")
  target FSP <- button("searchflights")
  target HLP <- button("help")
  target ABP <- button("about")
}

page REG {
  input button
  input uname
  input upass
  rule button(x) <- x = "create" | x = "cancel"
  target HP <- button("create") | button("cancel")
}

page ACC {
  input button
  rule button(x) <- x = "searchflights" | x = "mybookings" | x = "promos"
      | x = "logout" | x = "home"
  state -loggedin() <- button("logout")
  state -userid(n) <- userid(n) & button("logout")
  target FSP <- button("searchflights")
  target MBP <- button("mybookings")
  target PRP <- button("promos")
  target LOP <- button("logout")
  target HP  <- button("home")
}

page FSP {
  input button
  input srcpick
  rule button(x) <- x = "search" | x = "home"
  rule srcpick(o, d) <- airports(o) & airports(d)
  state +searchreq(o, d) <- srcpick(o, d) & button("search")
  target FRP <- (exists o, d: srcpick(o, d)) & button("search")
  target HP  <- button("home")
}

page FRP {
  input button
  input fpick
  rule button(x) <- x = "back" | x = "home"
  rule fpick(f, p) <- exists o, d, dp, ar, ca, cl, st, me:
      prev srcpick(o, d) & flights(f, o, d, dp, ar, p, ca, cl, st, me)
  state +flightpick(f, p) <- fpick(f, p)
  target FDP <- exists f, p: fpick(f, p)
  target FSP <- button("back")
  target HP  <- button("home")
}

page FDP {
  input button
  rule button(x) <- x = "selectseat" | x = "addtocart" | x = "back"
  state +cartf(f, p) <- prev fpick(f, p) & button("addtocart")
  target SSP <- button("selectseat")
  target CTP <- button("addtocart")
  target FRP <- button("back")
}

page SSP {
  input button
  input seatsel
  rule button(x) <- x = "confirmseat" | x = "back"
  rule seatsel(f, s) <- exists c: seats(f, s, c)
  state +seatpick(f, s) <- seatsel(f, s) & button("confirmseat")
  target PSP <- (exists f, s: seatsel(f, s)) & button("confirmseat")
  target FDP <- button("back")
}

page PSP {
  input button
  input passname
  input passdoc
  rule button(x) <- x = "savepassenger" | x = "back"
  state +passenger(n, d) <- passname(n) & passdoc(d) & button("savepassenger")
  target INP <- button("savepassenger")
  target SSP <- button("back")
}

page INP {
  input button
  input inspick
  rule button(x) <- x = "addinsurance" | x = "skip"
  rule inspick(i, p) <- exists n: insurance(i, n, p)
  state +insurancepick(i, p) <- inspick(i, p) & button("addinsurance")
  target CTP <- button("addinsurance") | button("skip")
}

page HTP {
  input button
  input hpick
  rule button(x) <- x = "back" | x = "home"
  rule hpick(h, p) <- exists c, n: hotels(h, c, n, p)
  target CTP <- (exists h, p: hpick(h, p)) | button("back")
  target HP  <- button("home")
}

page CRP {
  input button
  rule button(x) <- x = "back"
  target CTP <- button("back")
}

page CTP {
  input button
  rule button(x) <- x = "checkout" | x = "hotels" | x = "cars"
      | x = "addflight" | x = "home"
  state +cartf(f, p) <- flightpick(f, p) & button("addflight")
  target PYP <- button("checkout")
  target HTP <- button("hotels")
  target CRP <- button("cars")
  target HP  <- button("home")
}

page PYP {
  input button
  input fpick
  rule button(x) <- x = "pay" | x = "back"
  rule fpick(f, p) <- exists o, d, dp, ar, ca, cl, st, me:
      flights(f, o, d, dp, ar, p, ca, cl, st, me)
  state +paidf(f, p) <- fpick(f, p) & cartf(f, p) & button("pay")
  state -cartf(f, p) <- fpick(f, p) & cartf(f, p) & button("pay")
  target CFP <- (exists f, p: fpick(f, p)) & button("pay")
  target CTP <- button("back")
}

page CFP {
  input button
  rule button(x) <- x = "confirm" | x = "home"
  state +confirmedf(f, p) <- paidf(f, p) & button("confirm")
  # CFP is only reachable through a successful payment, so the previous
  # fpick here is the paid flight.
  action eticket(f) <- (exists p: prev fpick(f, p)) & button("confirm")
  target ACC <- button("confirm")
  target HP  <- button("home")
}

page MBP {
  input button
  input fpick
  rule button(x) <- x = "cancelbooking" | x = "detail" | x = "back"
  rule fpick(f, p) <- exists b, u, d, s: bookingsdb(b, u, f, d, s) & fares(f, s, p)
  target CXP <- (exists f, p: fpick(f, p)) & button("cancelbooking")
  target BDP <- (exists f, p: fpick(f, p)) & button("detail")
  target ACC <- button("back")
}

page BDP {
  input button
  rule button(x) <- x = "back"
  target MBP <- button("back")
}

page CXP {
  input button
  rule button(x) <- x = "confirmcancel" | x = "back"
  state -confirmedf(f, p) <- confirmedf(f, p) & button("confirmcancel")
  target MBP <- button("confirmcancel") | button("back")
}

page PRP {
  input button
  input promoin
  rule button(x) <- x = "apply" | x = "back"
  rule promoin(c) <- exists i, d: promos(i, c, d)
  state +promo(c) <- promoin(c) & button("apply")
  target ACC <- button("apply") | button("back")
}

page HLP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page ABP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page EP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

page LOP {
  input button
  rule button(x) <- x = "home"
  target HP <- button("home")
}

# ---- properties -----------------------------------------------------------

property R1 type T9 expect true desc "home reached" {
  F [at HP]
}

property R2 type T9 expect false desc "every run logs in" {
  F [loggedin()]
}

property R3 type T1 expect true desc "an in-cart payment step precedes confirmation" {
  forall f, p:
  [at PYP & button("pay") & cartf(f, p)] B [confirmedf(f, p)]
}

property R4 type T1 expect true desc "a flight is picked before its eticket is issued" {
  forall f:
  [exists p: fpick(f, p)] B [eticket(f)]
}

property R5 type T3 expect true desc "paid flights were in the cart" {
  forall f, p:
  F [paidf(f, p)] -> F [cartf(f, p)]
}

property R6 type T3 expect false desc "every cart flight is paid" {
  forall f, p:
  F [cartf(f, p)] -> F [paidf(f, p)]
}

property R7 type T4 expect false desc "searches always yield a booking" {
  G ([at FSP & button("search")] -> F [at CFP])
}

property R8 type T5 expect true desc "a run that pays reaches the confirmation page" {
  G [!(exists f, p: fpick(f, p) & cartf(f, p) & button("pay") & at PYP)] | F [at CFP]
}

property R9 type T10 expect true desc "payment page only transitions to CFP or CTP" {
  G ([at PYP] -> X ([at CFP] | [at CTP] | [at PYP]))
}

property R10 type T8 expect false desc "once searching, always searching" {
  G ([at FSP] -> X [at FSP])
}

property R11 type T6 expect false desc "the account page recurs forever" {
  G (F [at ACC])
}

property R12 type T7 expect false desc "every run settles on the error page" {
  F (G [at EP])
}

property R13 type T2 expect true desc "seat confirmation leads to the passenger page" {
  G ([at SSP & (exists f, s: seatsel(f, s)) & button("confirmseat")]
     -> X [at PSP])
}

property R14 type T3 expect false desc "insurance price always matches a picked flight" {
  forall i, p:
  F [insurancepick(i, p)] -> F [exists f: fpick(f, p)]
}
)WAVE";

}  // namespace

const char* E3SpecText() { return kE3; }

AppBundle BuildE3() { return internal::BuildFromText(kE3); }

}  // namespace wave
