// Shared helper for the app builders.
#ifndef WAVE_APPS_APP_UTIL_H_
#define WAVE_APPS_APP_UTIL_H_

#include "apps/apps.h"

namespace wave::internal {

/// Parses `text`, CHECK-failing with the parse/validation errors if the
/// embedded spec is broken (a bug in this repo, not user error).
AppBundle BuildFromText(const char* text);

}  // namespace wave::internal

#endif  // WAVE_APPS_APP_UTIL_H_
