// Wire protocol of the `wave_serve` daemon (ISSUE 9): line-delimited JSON
// over a TCP or Unix-domain socket.
//
// Each request is ONE line — a JSON envelope around an api/wire.h
// document:
//
//   {"schema_version":1, "id":"r1", "verb":"verify",
//    "spec":"<inline spec text>",            // or "spec_path":"E1.wave"
//    "request":{...api::RequestToJson...}}
//
// Verbs: "verify" (api VerifyRequest), "batch" (api WireBatchRequest),
// "metrics" (dumps the server's MetricsRegistry), "ping" (liveness).
// Each response is one line back, matched to the request by `id`:
//
//   {"schema_version":1, "id":"r1", "ok":true,  "response":{...}}
//   {"schema_version":1, "id":"r1", "ok":false, "status":{"code":...}}
//
// A malformed line yields an `ok:false` envelope (id "" when the line did
// not parse far enough to recover one) and the connection stays open —
// clients pipeline requests, one bad frame must not poison the rest.
// Version policy is the api/wire.h one: unstamped envelopes read as
// version 1; newer stamps are rejected with INVALID_ARGUMENT.
#ifndef WAVE_SERVE_PROTOCOL_H_
#define WAVE_SERVE_PROTOCOL_H_

#include <string>

#include "api/wire.h"
#include "common/status.h"
#include "obs/json.h"

namespace wave::serve {

enum class Verb {
  kVerify = 0,
  kBatch,
  kMetrics,
  kPing,
};

/// "verify" / "batch" / "metrics" / "ping".
const char* VerbName(Verb verb);
/// Inverse of `VerbName`; InvalidArgument on an unknown verb.
StatusOr<Verb> ParseVerb(const std::string& name);

/// One parsed request line.
struct RequestEnvelope {
  std::string id;         // client-chosen correlation token (echoed back)
  Verb verb = Verb::kPing;
  std::string spec_text;  // inline spec source ("spec")
  std::string spec_path;  // server-side spec file ("spec_path")
  obs::Json request;      // verb-specific payload (null for metrics/ping)
};

/// Parses one request line. Typed InvalidArgument on malformed JSON, an
/// unknown verb, an unsupported schema_version, or a verify/batch envelope
/// with neither/both of spec and spec_path.
StatusOr<RequestEnvelope> ParseRequestLine(const std::string& line);

/// Serializes a request envelope (the client side of `ParseRequestLine`).
obs::Json RequestEnvelopeToJson(const RequestEnvelope& envelope);

/// Success / failure response envelopes.
obs::Json OkEnvelope(const std::string& id, obs::Json response);
obs::Json ErrorEnvelope(const std::string& id, const Status& status);

/// One parsed response line (the client side).
struct ResponseEnvelope {
  std::string id;
  bool ok = false;
  obs::Json response;  // set when ok
  Status status;       // set when !ok
};
StatusOr<ResponseEnvelope> ParseResponseLine(const std::string& line);

/// The protocol frame: `doc` serialized compactly plus the terminating
/// newline. Compact form contains no raw newlines (obs::Json escapes
/// them inside strings), so one frame is exactly one line.
std::string FrameLine(const obs::Json& doc);

}  // namespace wave::serve

#endif  // WAVE_SERVE_PROTOCOL_H_
