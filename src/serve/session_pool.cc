#include "serve/session_pool.h"

#include <utility>

namespace wave::serve {

struct SessionPool::Entry {
  std::mutex mu;  // held by the lease for its whole lifetime
  std::unique_ptr<WebAppSpec> spec;
  std::vector<Property> properties;
  std::unique_ptr<Verifier> verifier;
  std::unique_ptr<ResultCache> cache;  // may be null
  uint64_t last_use = 0;               // under the pool mutex
};

WebAppSpec& SessionPool::Lease::spec() { return *entry_->spec; }
std::vector<Property>& SessionPool::Lease::properties() {
  return entry_->properties;
}
Verifier& SessionPool::Lease::verifier() { return *entry_->verifier; }
ResultCache* SessionPool::Lease::cache() { return entry_->cache.get(); }

SessionPool::SessionPool(int capacity, std::string cache_dir)
    : capacity_(capacity < 1 ? 1 : capacity),
      cache_dir_(std::move(cache_dir)) {}

SessionPool::~SessionPool() = default;

StatusOr<SessionPool::Lease> SessionPool::Acquire(
    const std::string& spec_text) {
  FingerprintBuilder fp;
  fp.AddTag("serve.spec_text");
  fp.AddString(spec_text);
  const Fingerprint key = fp.Finish();

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
      entry->last_use = ++use_clock_;
      ++stats_.hits;
    }
  }
  if (entry == nullptr) {
    // Build outside the pool lock: parsing and verifier construction are
    // per-spec work that must not serialize unrelated clients. A racing
    // build of the same spec is benign — last insert wins, the loser's
    // entry dies with its lease.
    ParseResult parsed = ParseSpec(spec_text);
    if (!parsed.ok()) return parsed.status();
    auto fresh = std::make_shared<Entry>();
    fresh->spec = std::move(parsed.spec);
    fresh->properties.reserve(parsed.properties.size());
    for (const ParsedProperty& p : parsed.properties) {
      fresh->properties.push_back(p.property);
    }
    WAVE_ASSIGN_OR_RETURN(fresh->verifier,
                          Verifier::Create(fresh->spec.get()));
    if (!cache_dir_.empty()) {
      StatusOr<std::unique_ptr<ResultCache>> cache =
          ResultCache::Open(cache_dir_);
      // An unopenable cache degrades the entry to uncached — a warm
      // start lost, never a failed request.
      if (cache.ok()) fresh->cache = std::move(*cache);
    }

    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.emplace(key, fresh);
    if (!inserted) {
      ++stats_.hits;  // raced: another executor built it first
    } else {
      ++stats_.misses;
      while (static_cast<int>(entries_.size()) > capacity_) {
        auto victim = entries_.end();
        for (auto e = entries_.begin(); e != entries_.end(); ++e) {
          if (e->first == key) continue;  // never evict what we serve now
          if (victim == entries_.end() ||
              e->second->last_use < victim->second->last_use) {
            victim = e;
          }
        }
        if (victim == entries_.end()) break;
        entries_.erase(victim);
        ++stats_.evictions;
      }
    }
    entry = it->second;
    entry->last_use = ++use_clock_;
  }

  std::unique_lock<std::mutex> entry_lock(entry->mu);
  return Lease(std::move(entry), std::move(entry_lock));
}

SessionPoolStats SessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wave::serve
