#include "serve/protocol.h"

#include <utility>

namespace wave::serve {

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kVerify: return "verify";
    case Verb::kBatch: return "batch";
    case Verb::kMetrics: return "metrics";
    case Verb::kPing: return "ping";
  }
  return "?";
}

StatusOr<Verb> ParseVerb(const std::string& name) {
  if (name == "verify") return Verb::kVerify;
  if (name == "batch") return Verb::kBatch;
  if (name == "metrics") return Verb::kMetrics;
  if (name == "ping") return Verb::kPing;
  return Status::InvalidArgument("unknown verb '" + name + "'", WAVE_LOC);
}

StatusOr<RequestEnvelope> ParseRequestLine(const std::string& line) {
  std::string error;
  std::optional<obs::Json> doc = obs::Json::Parse(line, &error);
  if (!doc.has_value()) {
    return Status::InvalidArgument("malformed request line: " + error,
                                   WAVE_LOC);
  }
  WAVE_RETURN_IF_ERROR(api::CheckSchemaVersion(*doc));

  RequestEnvelope envelope;
  const obs::Json* id = doc->Find("id");
  if (id != nullptr) {
    if (!id->is_string()) {
      return Status::InvalidArgument("id: expected string", WAVE_LOC);
    }
    envelope.id = id->AsString();
  }
  const obs::Json* verb = doc->Find("verb");
  if (verb == nullptr || !verb->is_string()) {
    return Status::InvalidArgument("missing verb", WAVE_LOC);
  }
  WAVE_ASSIGN_OR_RETURN(envelope.verb, ParseVerb(verb->AsString()));

  const obs::Json* spec = doc->Find("spec");
  if (spec != nullptr) {
    if (!spec->is_string()) {
      return Status::InvalidArgument("spec: expected string", WAVE_LOC);
    }
    envelope.spec_text = spec->AsString();
  }
  const obs::Json* spec_path = doc->Find("spec_path");
  if (spec_path != nullptr) {
    if (!spec_path->is_string()) {
      return Status::InvalidArgument("spec_path: expected string", WAVE_LOC);
    }
    envelope.spec_path = spec_path->AsString();
  }
  if (envelope.verb == Verb::kVerify || envelope.verb == Verb::kBatch) {
    bool has_text = !envelope.spec_text.empty();
    bool has_path = !envelope.spec_path.empty();
    if (has_text == has_path) {
      return Status::InvalidArgument(
          std::string(VerbName(envelope.verb)) +
              " needs exactly one of 'spec' and 'spec_path'",
          WAVE_LOC);
    }
    const obs::Json* request = doc->Find("request");
    if (request == nullptr || !request->is_object()) {
      return Status::InvalidArgument("missing request object", WAVE_LOC);
    }
    envelope.request = *request;
  }
  return envelope;
}

obs::Json RequestEnvelopeToJson(const RequestEnvelope& envelope) {
  obs::Json j = obs::Json::Object();
  j.Set("schema_version", obs::Json::Int(api::kSchemaVersion));
  j.Set("id", obs::Json::Str(envelope.id));
  j.Set("verb", obs::Json::Str(VerbName(envelope.verb)));
  if (!envelope.spec_text.empty()) {
    j.Set("spec", obs::Json::Str(envelope.spec_text));
  }
  if (!envelope.spec_path.empty()) {
    j.Set("spec_path", obs::Json::Str(envelope.spec_path));
  }
  if (envelope.verb == Verb::kVerify || envelope.verb == Verb::kBatch) {
    j.Set("request", envelope.request);
  }
  return j;
}

obs::Json OkEnvelope(const std::string& id, obs::Json response) {
  obs::Json j = obs::Json::Object();
  j.Set("schema_version", obs::Json::Int(api::kSchemaVersion));
  j.Set("id", obs::Json::Str(id));
  j.Set("ok", obs::Json::Bool(true));
  j.Set("response", std::move(response));
  return j;
}

obs::Json ErrorEnvelope(const std::string& id, const Status& status) {
  obs::Json j = obs::Json::Object();
  j.Set("schema_version", obs::Json::Int(api::kSchemaVersion));
  j.Set("id", obs::Json::Str(id));
  j.Set("ok", obs::Json::Bool(false));
  j.Set("status", api::StatusToJson(status));
  return j;
}

StatusOr<ResponseEnvelope> ParseResponseLine(const std::string& line) {
  std::string error;
  std::optional<obs::Json> doc = obs::Json::Parse(line, &error);
  if (!doc.has_value()) {
    return Status::InvalidArgument("malformed response line: " + error,
                                   WAVE_LOC);
  }
  WAVE_RETURN_IF_ERROR(api::CheckSchemaVersion(*doc));

  ResponseEnvelope envelope;
  const obs::Json* id = doc->Find("id");
  if (id != nullptr && id->is_string()) envelope.id = id->AsString();
  const obs::Json* ok = doc->Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::InvalidArgument("missing ok flag", WAVE_LOC);
  }
  envelope.ok = ok->AsBool();
  if (envelope.ok) {
    const obs::Json* response = doc->Find("response");
    if (response == nullptr) {
      return Status::InvalidArgument("ok envelope missing response",
                                     WAVE_LOC);
    }
    envelope.response = *response;
  } else {
    const obs::Json* status = doc->Find("status");
    if (status == nullptr) {
      return Status::InvalidArgument("error envelope missing status",
                                     WAVE_LOC);
    }
    WAVE_RETURN_IF_ERROR(api::StatusFromJson(*status, &envelope.status));
  }
  return envelope;
}

std::string FrameLine(const obs::Json& doc) { return doc.Dump() + "\n"; }

}  // namespace wave::serve
