// LRU pool of hot per-spec verifier sessions for the daemon (ISSUE 9).
//
// Every `Verifier` owns a `VerifierSession` — the 3-layer pre-pass memo
// (ISSUE 4) — but a Verifier is NOT thread-safe, and parsing a spec per
// request would throw the memo away. The pool keeps up to `capacity`
// parsed specs hot, keyed by the content fingerprint of their source
// text: a repeat client leases the same `Verifier` and lands on the warm
// pre-pass layers (`VerifyStats::prepass_reuses` > 0 on repeats).
//
// Concurrency model: a `Lease` holds the entry's mutex for its whole
// lifetime, so requests against ONE spec serialize (the engine's own
// contract) while requests against different specs run in parallel on
// the server's executor threads. Eviction never invalidates a live
// lease — entries are shared_ptr-owned, an evicted-but-leased entry
// simply dies with its last lease.
//
// Each entry opens its own `ResultCache` handle on the pool's shared
// cache directory: the v2 on-disk format is multi-process safe, and two
// handles in one process behave exactly like two processes (separate
// flock fds, lock-free manifest-snapshot reads).
#ifndef WAVE_SERVE_SESSION_POOL_H_
#define WAVE_SERVE_SESSION_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/status.h"
#include "parser/parser.h"
#include "verifier/cache.h"
#include "verifier/verifier.h"

namespace wave::serve {

struct SessionPoolStats {
  int64_t hits = 0;       // Acquire served from a hot entry
  int64_t misses = 0;     // Acquire parsed + built a fresh entry
  int64_t evictions = 0;  // LRU entries dropped to respect capacity
};

class SessionPool {
 public:
  /// `capacity` >= 1 hot specs; `cache_dir` empty disables the shared
  /// persistent result cache.
  SessionPool(int capacity, std::string cache_dir);
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  struct Entry;

  /// Exclusive access to one hot spec; the entry stays locked until the
  /// lease is destroyed. Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(std::shared_ptr<Entry> entry, std::unique_lock<std::mutex> lock)
        : entry_(std::move(entry)), lock_(std::move(lock)) {}

    WebAppSpec& spec();
    std::vector<Property>& properties();
    Verifier& verifier();
    /// Null when the pool has no cache directory or opening it failed
    /// (the cache is an optimization; a request must not fail over it).
    ResultCache* cache();

   private:
    std::shared_ptr<Entry> entry_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Parses/builds on a miss, then locks and leases the entry. Blocks
  /// while another lease holds the same spec. InvalidArgument on a spec
  /// that fails to parse; FailedPrecondition on one that fails
  /// validation.
  StatusOr<Lease> Acquire(const std::string& spec_text);

  SessionPoolStats stats() const;

 private:
  mutable std::mutex mu_;  // guards the map, LRU clock and stats
  int capacity_;
  std::string cache_dir_;
  uint64_t use_clock_ = 0;
  std::map<Fingerprint, std::shared_ptr<Entry>> entries_;
  SessionPoolStats stats_;
};

}  // namespace wave::serve

#endif  // WAVE_SERVE_SESSION_POOL_H_
