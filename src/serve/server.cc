#include "serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "common/stopwatch.h"
#include "obs/tracer.h"
#include "serve/protocol.h"

namespace wave::serve {
namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + ::strerror(errno), WAVE_LOC);
}

/// Buffered newline framing over a socket fd. Lines beyond `kMaxLine`
/// abort the connection — a runaway frame must not eat the heap.
class LineReader {
 public:
  static constexpr size_t kMaxLine = 64u << 20;  // 64 MiB

  explicit LineReader(int fd) : fd_(fd) {}

  /// 1 = a line is in `*line` (without the '\n'), 0 = clean EOF,
  /// -1 = read error or oversized frame.
  int ReadLine(std::string* line) {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return 1;
      }
      if (buffer_.size() > kMaxLine) return -1;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return buffer_.empty() ? 0 : -1;  // mid-line EOF = error
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// One client connection. The fd closes with the LAST reference — queued
/// jobs hold the connection alive, so an fd number is never recycled
/// under a response still destined for it.
struct Connection {
  int fd = -1;
  int64_t id = 0;
  std::string name;  // "c<id>", the per-client metrics label
  std::mutex write_mu;
  std::thread reader;
  std::atomic<bool> done{false};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

struct Job {
  std::shared_ptr<Connection> conn;
  RequestEnvelope envelope;
  Stopwatch queued;  // started at admission; yields wait + total latency
};

/// Bounded job queue with per-client round-robin fairness: one deque per
/// connection, served in rotation, so a flooding client holds exactly one
/// turn per cycle regardless of how many jobs it has parked.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(int capacity) : capacity_(capacity) {}

  Status Push(Job job) {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      return Status::ShuttingDown("server draining; request not admitted",
                                  WAVE_LOC);
    }
    if (size_ >= capacity_) {
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(capacity_) + " queued)",
          WAVE_LOC);
    }
    int64_t client = job.conn->id;
    std::deque<Job>& lane = per_client_[client];
    if (lane.empty()) rotation_.push_back(client);
    lane.push_back(std::move(job));
    ++size_;
    cv_.notify_one();
    return Status::Ok();
  }

  /// Blocks for the next job (round-robin across clients); false once the
  /// queue is draining — the executor's signal to exit.
  bool Pop(Job* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return draining_ || size_ > 0; });
    if (draining_) return false;
    int64_t client = rotation_.front();
    rotation_.pop_front();
    std::deque<Job>& lane = per_client_[client];
    *out = std::move(lane.front());
    lane.pop_front();
    if (lane.empty()) {
      per_client_.erase(client);
    } else {
      rotation_.push_back(client);  // one job per turn: fairness
    }
    --size_;
    return true;
  }

  /// Flips to draining and returns every queued job (for SHUTTING_DOWN
  /// responses); wakes all blocked `Pop`s.
  std::vector<Job> Drain() {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    std::vector<Job> leftover;
    for (int64_t client : rotation_) {
      std::deque<Job>& lane = per_client_[client];
      for (Job& job : lane) leftover.push_back(std::move(job));
    }
    per_client_.clear();
    rotation_.clear();
    size_ = 0;
    cv_.notify_all();
    return leftover;
  }

  int depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int capacity_;
  int size_ = 0;
  bool draining_ = false;
  std::map<int64_t, std::deque<Job>> per_client_;
  std::deque<int64_t> rotation_;  // clients with queued jobs, in turn order
};

}  // namespace

class Server::Impl {
 public:
  explicit Impl(const ServerOptions& options)
      : options_(options),
        metrics_(options.metrics != nullptr ? options.metrics
                                            : &owned_metrics_),
        sessions_(options.session_capacity, options.cache_dir),
        queue_(options.queue_capacity) {}

  ~Impl() { Shutdown(); }

  Status Listen() {
    if (!options_.socket_path.empty()) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
        return Status::InvalidArgument(
            "socket path too long: " + options_.socket_path, WAVE_LOC);
      }
      ::strncpy(addr.sun_path, options_.socket_path.c_str(),
                sizeof(addr.sun_path) - 1);
      listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (listen_fd_ < 0) return Errno("socket");
      ::unlink(options_.socket_path.c_str());  // replace a stale socket file
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        return Errno("bind " + options_.socket_path);
      }
      socket_path_ = options_.socket_path;
    } else {
      listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (listen_fd_ < 0) return Errno("socket");
      int one = 1;
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
      addr.sin_port = ::htons(static_cast<uint16_t>(options_.port));
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        return Errno("bind 127.0.0.1:" + std::to_string(options_.port));
      }
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                        &len) != 0) {
        return Errno("getsockname");
      }
      resolved_port_ = ::ntohs(bound.sin_port);
    }
    if (::listen(listen_fd_, 64) != 0) return Errno("listen");
    return Status::Ok();
  }

  void StartThreads() {
    accept_thread_ = std::thread(&Impl::AcceptLoop, this);
    executors_.reserve(static_cast<size_t>(options_.executors));
    for (int i = 0; i < options_.executors; ++i) {
      executors_.emplace_back(&Impl::ExecutorLoop, this);
    }
  }

  int port() const { return resolved_port_; }
  const std::string& socket_path() const { return socket_path_; }
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const SessionPool& sessions() const { return sessions_; }

  void RequestShutdown() {
    shutdown_requested_.store(true, std::memory_order_relaxed);
  }
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  void Shutdown() {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (stopped_) return;
    draining_.store(true, std::memory_order_relaxed);

    // 1. Stop accepting (the poll loop observes `draining_`).
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());

    // 2. Queued-but-unstarted jobs get a typed SHUTTING_DOWN; executors
    //    finish whatever they are mid-way through, then exit.
    std::vector<Job> leftover = queue_.Drain();
    for (Job& job : leftover) {
      metrics_->Add("serve.shutdown_rejected");
      WriteFrame(*job.conn,
                 ErrorEnvelope(job.envelope.id,
                               Status::ShuttingDown(
                                   "server draining; request not started",
                                   WAVE_LOC)));
    }
    for (std::thread& t : executors_) {
      if (t.joinable()) t.join();
    }

    // 3. In-flight responses are written; now hang up and join readers.
    std::vector<std::shared_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      conns.swap(conns_);
    }
    for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
    for (auto& conn : conns) {
      if (conn->reader.joinable()) conn->reader.join();
    }
    stopped_ = true;
  }

 private:
  void AcceptLoop() {
    for (;;) {
      if (draining_.load(std::memory_order_relaxed)) return;
      pollfd pfd{listen_fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (ready == 0) continue;
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;
      }
      fault::Action fa = WAVE_FAULT("serve.accept");
      if (fault::IsError(fa)) {
        metrics_->Add("serve.accept_errors");
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn->id = ++next_conn_id_;
        conn->name = "c" + std::to_string(conn->id);
        conns_.push_back(conn);
      }
      metrics_->Add("serve.connections");
      conn->reader = std::thread(&Impl::ReaderLoop, this, conn);
      ReapDoneConnections();
    }
  }

  /// Joins reader threads of connections that hung up, so a long-lived
  /// daemon does not accumulate finished-thread handles. The Connection
  /// object itself (and its fd) lives on with any queued jobs.
  void ReapDoneConnections() {
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      auto alive = conns_.begin();
      for (auto& conn : conns_) {
        if (conn->done.load(std::memory_order_acquire)) {
          dead.push_back(std::move(conn));
        } else {
          *alive++ = std::move(conn);
        }
      }
      conns_.erase(alive, conns_.end());
    }
    for (auto& conn : dead) {
      if (conn->reader.joinable()) conn->reader.join();
    }
  }

  void ReaderLoop(std::shared_ptr<Connection> conn) {
    LineReader reader(conn->fd);
    std::string line;
    for (;;) {
      int got = reader.ReadLine(&line);
      if (got <= 0) break;
      fault::Action fa = WAVE_FAULT("serve.read");
      if (fault::IsError(fa)) {
        metrics_->Add("serve.read_errors");
        break;
      }
      if (line.empty()) continue;
      HandleLine(conn, line);
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->done.store(true, std::memory_order_release);
  }

  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line) {
    metrics_->Add("serve.requests");
    metrics_->Add("serve.client." + conn->name + ".requests");

    StatusOr<RequestEnvelope> envelope = ParseRequestLine(line);
    if (!envelope.ok()) {
      metrics_->Add("serve.malformed");
      WriteFrame(*conn, ErrorEnvelope("", envelope.status()));
      return;
    }

    // Cheap verbs are answered on the reader thread — they must work even
    // when every executor is busy (that is the point of `metrics`).
    if (envelope->verb == Verb::kPing) {
      obs::Json pong = obs::Json::Object();
      pong.Set("pong", obs::Json::Bool(true));
      WriteFrame(*conn, OkEnvelope(envelope->id, std::move(pong)));
      return;
    }
    if (envelope->verb == Verb::kMetrics) {
      obs::Json body = obs::Json::Object();
      body.Set("metrics", metrics_->ToJson());
      SessionPoolStats pool = sessions_.stats();
      obs::Json sessions = obs::Json::Object();
      sessions.Set("hits", obs::Json::Int(pool.hits));
      sessions.Set("misses", obs::Json::Int(pool.misses));
      sessions.Set("evictions", obs::Json::Int(pool.evictions));
      body.Set("sessions", std::move(sessions));
      body.Set("queue_depth", obs::Json::Int(queue_.depth()));
      WriteFrame(*conn, OkEnvelope(envelope->id, std::move(body)));
      return;
    }

    Job job;
    job.conn = conn;
    job.envelope = std::move(*envelope);
    std::string id = job.envelope.id;
    fault::Action fa = WAVE_FAULT("serve.enqueue");
    if (fault::IsError(fa)) {
      metrics_->Add("serve.enqueue_errors");
      WriteFrame(*conn, ErrorEnvelope(id, fault::ToStatus(fa, "serve.enqueue")));
      return;
    }
    Status admitted = queue_.Push(std::move(job));
    if (!admitted.ok()) {
      metrics_->Add(admitted.code() == StatusCode::kShuttingDown
                        ? "serve.shutdown_rejected"
                        : "serve.rejected");
      WriteFrame(*conn, ErrorEnvelope(id, admitted));
      return;
    }
    int depth = queue_.depth();
    metrics_->Record("serve.queue_depth", depth);
    metrics_->Record("serve.client." + conn->name + ".queue_depth", depth);
  }

  void ExecutorLoop() {
    Job job;
    while (queue_.Pop(&job)) {
      metrics_->Record("serve.queue_wait_seconds", job.queued.ElapsedSeconds());
      obs::Tracer tracer;
      obs::Json reply;
      {
        obs::ScopedSpan span(
            &tracer, std::string("serve.") + VerbName(job.envelope.verb));
        reply = Execute(job.envelope, &tracer);
      }
      double latency = job.queued.ElapsedSeconds();
      metrics_->Record("serve.latency_seconds", latency);
      metrics_->Record("serve.client." + job.conn->name + ".latency_seconds",
                       latency);
      WriteFrame(*job.conn, reply);
      {
        // One Perfetto lane per connection (modulo a small palette).
        std::lock_guard<std::mutex> lock(tracer_mu_);
        tracer_.MergeFrom(tracer, static_cast<int>(job.conn->id % 61) + 2);
      }
    }
  }

  int ClampJobs(int jobs) const {
    if (jobs < 1 || jobs > options_.max_jobs) return options_.max_jobs;
    return jobs;
  }

  obs::Json Execute(const RequestEnvelope& envelope, obs::Tracer* tracer) {
    std::string spec_text = envelope.spec_text;
    if (!envelope.spec_path.empty()) {
      StatusOr<std::string> text = ReadFileToString(envelope.spec_path);
      if (!text.ok()) return ErrorEnvelope(envelope.id, text.status());
      spec_text = std::move(*text);
    }
    StatusOr<SessionPool::Lease> lease = sessions_.Acquire(spec_text);
    if (!lease.ok()) return ErrorEnvelope(envelope.id, lease.status());

    if (envelope.verb == Verb::kVerify) {
      StatusOr<VerifyRequest> request = api::RequestFromJson(envelope.request);
      if (!request.ok()) return ErrorEnvelope(envelope.id, request.status());
      request->properties = &lease->properties();
      request->cache = lease->cache();
      request->jobs = ClampJobs(request->jobs);
      request->options.metrics = metrics_;
      request->options.tracer = tracer;
      StatusOr<VerifyResponse> response = lease->verifier().Run(*request);
      if (!response.ok()) return ErrorEnvelope(envelope.id, response.status());
      return OkEnvelope(envelope.id,
                        api::ResponseToJson(*response, lease->spec()));
    }

    StatusOr<api::WireBatchRequest> batch =
        api::BatchRequestFromJson(envelope.request);
    if (!batch.ok()) return ErrorEnvelope(envelope.id, batch.status());
    Status bound = api::BindBatchRequest(&*batch, lease->properties());
    if (!bound.ok()) return ErrorEnvelope(envelope.id, bound);
    batch->request.cache = lease->cache();
    batch->request.jobs = ClampJobs(batch->request.jobs);
    batch->request.options.metrics = metrics_;
    batch->request.options.tracer = tracer;
    StatusOr<BatchResponse> response =
        lease->verifier().RunBatch(batch->request);
    if (!response.ok()) return ErrorEnvelope(envelope.id, response.status());
    return OkEnvelope(envelope.id,
                      api::BatchResponseToJson(*response, lease->spec()));
  }

  void WriteFrame(Connection& conn, const obs::Json& doc) {
    std::string frame = FrameLine(doc);
    std::lock_guard<std::mutex> lock(conn.write_mu);
    fault::Action fa = WAVE_FAULT("serve.write");
    if (fault::IsError(fa)) {
      // A failed response write is a dead client: hang up so the reader
      // unblocks; the client sees EOF, never a torn frame.
      metrics_->Add("serve.write_errors");
      ::shutdown(conn.fd, SHUT_RDWR);
      return;
    }
    size_t off = 0;
    while (off < frame.size()) {
      ssize_t n = ::send(conn.fd, frame.data() + off, frame.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        metrics_->Add("serve.write_errors");
        ::shutdown(conn.fd, SHUT_RDWR);
        return;
      }
      off += static_cast<size_t>(n);
    }
    metrics_->Add("serve.responses");
  }

  ServerOptions options_;
  int listen_fd_ = -1;
  int resolved_port_ = -1;
  std::string socket_path_;

  obs::MetricsRegistry owned_metrics_;
  obs::MetricsRegistry* metrics_;
  std::mutex tracer_mu_;
  obs::Tracer tracer_;  // per-request tracers merge here, one lane per client

  SessionPool sessions_;
  AdmissionQueue queue_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> draining_{false};
  std::mutex shutdown_mu_;
  bool stopped_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> executors_;

  std::mutex conns_mu_;
  int64_t next_conn_id_ = 0;
  std::vector<std::shared_ptr<Connection>> conns_;
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::~Server() = default;

StatusOr<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  if (options.executors < 1) {
    return Status::InvalidArgument("executors must be >= 1", WAVE_LOC);
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1", WAVE_LOC);
  }
  if (options.max_jobs < 1) {
    return Status::InvalidArgument("max_jobs must be >= 1", WAVE_LOC);
  }
  auto impl = std::make_unique<Impl>(options);
  WAVE_RETURN_IF_ERROR(impl->Listen());
  impl->StartThreads();
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

int Server::port() const { return impl_->port(); }
const std::string& Server::socket_path() const { return impl_->socket_path(); }
void Server::RequestShutdown() { impl_->RequestShutdown(); }
bool Server::shutdown_requested() const { return impl_->shutdown_requested(); }
void Server::Shutdown() { impl_->Shutdown(); }
obs::MetricsRegistry& Server::metrics() { return impl_->metrics(); }
const SessionPool& Server::sessions() const { return impl_->sessions(); }

}  // namespace wave::serve
