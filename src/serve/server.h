// The `wave_serve` daemon core (ISSUE 9): a concurrent multi-tenant
// verification server speaking the serve/protocol.h line protocol.
//
// Thread model:
//   * one accept thread — accepts connections, spawns a reader each;
//   * one reader thread per connection — frames lines, parses envelopes,
//     answers ping/metrics inline, enqueues verify/batch jobs;
//   * `executors` executor threads — drain the admission queue and run
//     requests through the shared `SessionPool`.
//
// Admission control & fairness: the queue holds at most `queue_capacity`
// jobs (beyond that a typed RESOURCE_EXHAUSTED goes straight back), and
// executors pick jobs ROUND-ROBIN ACROSS CONNECTIONS — a client flooding
// thousands of requests gets one slot per turn, so a light client's
// requests never queue behind the flood.
//
// Graceful drain (`Shutdown`, typically on SIGTERM via
// `RequestShutdown`): the listener closes, in-flight requests finish and
// their responses are written, every still-queued job is answered with a
// typed SHUTTING_DOWN status, then connections close and threads join.
//
// Observability: the server owns (or borrows) a thread-safe
// `MetricsRegistry` — serve.requests / serve.responses / serve.rejected /
// serve.queue_depth / serve.latency_seconds plus per-client
// serve.client.<id>.* instruments — and each request runs under its own
// `obs::Tracer` span tree, merged into one server-wide tracer lane per
// connection (the `metrics` verb dumps the registry over the wire).
//
// Fault sites (curated in fault::KnownSites, swept by tests/serve_test):
// serve.accept, serve.read, serve.write, serve.enqueue.
#ifndef WAVE_SERVE_SERVER_H_
#define WAVE_SERVE_SERVER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/session_pool.h"

namespace wave::serve {

struct ServerOptions {
  /// Unix-domain socket path; empty switches to TCP on 127.0.0.1.
  std::string socket_path;
  /// TCP port when `socket_path` is empty (0 = ephemeral, see `port()`).
  int port = 0;

  int executors = 2;        // request-executor threads
  int session_capacity = 8; // hot specs kept by the LRU session pool
  int queue_capacity = 64;  // admission bound on queued jobs
  /// Per-request `jobs` values are clamped into [1, max_jobs]; 0 in a
  /// request (one worker per hardware thread) also clamps here — the
  /// daemon, not the client, owns machine-level parallelism.
  int max_jobs = 4;
  /// Shared persistent `ResultCache` directory; empty disables it.
  std::string cache_dir;
  /// Borrowed registry (thread-safe); null = the server owns one.
  obs::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  /// Binds, listens and starts the thread fleet. InvalidArgument for a
  /// bad configuration, Unavailable when the socket cannot be bound.
  static StatusOr<std::unique_ptr<Server>> Start(const ServerOptions& options);
  ~Server();  // graceful Shutdown if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Resolved TCP port (useful with port 0); -1 for a Unix socket.
  int port() const;
  const std::string& socket_path() const;

  /// Async-signal-safe shutdown request (one relaxed atomic store); the
  /// thread that owns the server observes it via `shutdown_requested()`
  /// and calls `Shutdown()`.
  void RequestShutdown();
  bool shutdown_requested() const;

  /// Graceful drain, idempotent: stop accepting, finish in-flight work,
  /// answer queued jobs with SHUTTING_DOWN, join every thread.
  void Shutdown();

  obs::MetricsRegistry& metrics();
  const SessionPool& sessions() const;

 private:
  class Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace wave::serve

#endif  // WAVE_SERVE_SERVER_H_
