#include "baseline/firstcut.h"

#include <algorithm>
#include <map>
#include <set>

#include "buchi/gpvw.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "ltl/abstraction.h"
#include "verifier/encode.h"

namespace wave {

namespace {

enum class SearchStatus { kContinue, kFound, kAbort };

class ExplicitSearch {
 public:
  ExplicitSearch(WebAppSpec* spec, const PreparedSpec* prepared,
                 const Property& property, const FirstCutOptions& options,
                 FirstCutResult* result)
      : spec_(spec),
        prepared_(prepared),
        property_(property),
        options_(options),
        result_(result) {}

  void Run() {
    LtlPtr negated = LtlFormula::Not(property_.body);
    Abstraction abstraction = AbstractLtl(negated, spec_->symbols());
    raw_components_ = abstraction.components;
    automaton_ =
        LtlToBuchi(&abstraction.arena, abstraction.root,
                   static_cast<int>(abstraction.components.size()));
    if (automaton_.IsEmptyLanguage()) {
      result_->verdict = Verdict::kHolds;
      return;
    }

    // The fixed domain: every constant of the spec and property plus a few
    // fresh values.
    std::set<SymbolId> domain_set = spec_->SpecConstants();
    for (const FormulaPtr& c : raw_components_) {
      std::set<SymbolId> cs = c->Constants();
      domain_set.insert(cs.begin(), cs.end());
    }
    for (int i = 0; i < options_.extra_domain_values; ++i) {
      domain_set.insert(spec_->symbols().MintFresh("dom"));
    }
    domain_.assign(domain_set.begin(), domain_set.end());
    result_->stats.domain_size = static_cast<int>(domain_.size());

    // Candidate database tuples: every tuple over the domain, for every
    // database relation. The set of representative databases is the
    // powerset — this is where the doubly exponential blow-up lives.
    double num_candidates = 0;
    for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
      const RelationSchema& schema = spec_->catalog().schema(id);
      if (schema.kind != RelationKind::kDatabase) continue;
      double product = 1;
      for (int i = 0; i < schema.arity; ++i) {
        product *= static_cast<double>(domain_.size());
      }
      num_candidates += product;
    }
    result_->stats.db_tuple_candidates = num_candidates;
    if (num_candidates > options_.max_db_tuple_bits) {
      result_->verdict = Verdict::kUnknown;
      result_->failure_reason =
          "database space too large: 2^" +
          std::to_string(static_cast<int64_t>(num_candidates)) +
          " representative databases over a domain of " +
          std::to_string(domain_.size()) + " values";
      return;
    }

    // Materialize candidates and iterate the powerset with a bitmap
    // counter.
    std::vector<std::pair<RelationId, Tuple>> candidates;
    for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
      const RelationSchema& schema = spec_->catalog().schema(id);
      if (schema.kind != RelationKind::kDatabase) continue;
      Tuple tuple(schema.arity);
      std::vector<size_t> idx(schema.arity, 0);
      if (schema.arity == 0) {
        candidates.emplace_back(id, Tuple{});
        continue;
      }
      while (true) {
        for (int i = 0; i < schema.arity; ++i) tuple[i] = domain_[idx[i]];
        candidates.emplace_back(id, tuple);
        size_t i = 0;
        while (i < idx.size() && ++idx[i] == domain_.size()) {
          idx[i] = 0;
          ++i;
        }
        if (i == idx.size()) break;
      }
    }

    SearchStatus status = SearchStatus::kContinue;
    DynamicBitset bitmap(static_cast<int>(candidates.size()));
    while (status == SearchStatus::kContinue) {
      ++result_->stats.num_databases;
      Instance database(&spec_->catalog());
      for (int b = 0; b < bitmap.size(); ++b) {
        if (bitmap.Test(b)) {
          database.relation(candidates[b].first).Insert(candidates[b].second);
        }
      }
      status = RunDatabase(database);
      if (status == SearchStatus::kContinue && !bitmap.Increment()) break;
    }
    if (status == SearchStatus::kFound) {
      result_->verdict = Verdict::kViolated;
    } else if (status == SearchStatus::kAbort) {
      result_->verdict = Verdict::kUnknown;
      result_->failure_reason = abort_reason_;
    } else {
      result_->verdict = Verdict::kHolds;
    }
  }

 private:
  SearchStatus RunDatabase(const Instance& database) {
    // All assignments of the property's free variables over the domain.
    std::map<std::string, SymbolId> binding;
    return EnumerateAssignments(database, 0, &binding);
  }

  SearchStatus EnumerateAssignments(const Instance& database, size_t i,
                                    std::map<std::string, SymbolId>* binding) {
    if (i == property_.forall_vars.size()) {
      return RunAssignment(database, *binding);
    }
    for (SymbolId v : domain_) {
      (*binding)[property_.forall_vars[i]] = v;
      SearchStatus status = EnumerateAssignments(database, i + 1, binding);
      if (status != SearchStatus::kContinue) return status;
    }
    return SearchStatus::kContinue;
  }

  SearchStatus RunAssignment(const Instance& database,
                             const std::map<std::string, SymbolId>& binding) {
    components_.clear();
    PageResolver resolver = [this](const std::string& name) {
      return spec_->PageIndex(name);
    };
    for (const FormulaPtr& c : raw_components_) {
      components_.push_back(PreparedFormula::Prepare(
          c->SubstituteConstants(binding), spec_->catalog(), {}, resolver));
    }
    visited_.clear();
    Configuration initial = prepared_->MakeInitial(database);
    // Initial input choices at the home page.
    return ForEachInputChoice(initial, [&](const Configuration& c0) {
      return Stick(automaton_.start, c0);
    });
  }

  template <typename Fn>
  SearchStatus ForEachInputChoice(const Configuration& skeleton,
                                  const Fn& fn) {
    std::vector<SymbolId> eval_domain =
        prepared_->EvaluationDomain(skeleton, domain_);
    InputOptions options = prepared_->ComputeOptions(skeleton, eval_domain);
    const PageSchema& page = spec_->page(skeleton.page);
    std::vector<std::pair<RelationId, std::vector<Tuple>>> alternatives;
    for (RelationId input : page.inputs) {
      std::vector<Tuple> tuples;
      if (spec_->catalog().schema(input).kind ==
          RelationKind::kInputConstant) {
        // Text inputs range over the whole domain.
        for (SymbolId v : domain_) tuples.push_back({v});
      } else {
        auto it = options.find(input);
        if (it != options.end()) tuples = it->second;
      }
      alternatives.emplace_back(input, std::move(tuples));
    }
    std::vector<InputChoice> choices = {{}};
    for (const auto& [input, tuples] : alternatives) {
      std::vector<InputChoice> expanded;
      for (const InputChoice& base : choices) {
        expanded.push_back(base);
        for (const Tuple& t : tuples) {
          InputChoice with = base;
          with[input] = t;
          expanded.push_back(std::move(with));
        }
      }
      choices = std::move(expanded);
    }
    for (const InputChoice& choice : choices) {
      Configuration complete = skeleton;
      prepared_->ApplyInput(choice, eval_domain, &complete);
      SearchStatus status = fn(complete);
      if (status != SearchStatus::kContinue) return status;
    }
    return SearchStatus::kContinue;
  }

  template <typename Fn>
  SearchStatus ForEachSuccessor(const Configuration& config, const Fn& fn) {
    std::vector<SymbolId> eval_domain =
        prepared_->EvaluationDomain(config, domain_);
    Configuration skeleton = prepared_->Advance(config, eval_domain);
    return ForEachInputChoice(skeleton, fn);
  }

  std::vector<bool> EvalComponents(const Configuration& config) {
    ConfigurationAdapter view(&config);
    std::vector<SymbolId> eval_domain =
        prepared_->EvaluationDomain(config, domain_);
    std::vector<bool> assignment(components_.size());
    for (size_t i = 0; i < components_.size(); ++i) {
      std::vector<SymbolId> regs = components_[i].MakeRegisters();
      assignment[i] = components_[i].EvalClosed(view, eval_domain, &regs);
    }
    return assignment;
  }

  SearchStatus CheckBudgets() {
    if (watch_.ElapsedSeconds() > options_.timeout_seconds) {
      abort_reason_ = "timeout after " +
                      std::to_string(options_.timeout_seconds) + "s (after " +
                      std::to_string(result_->stats.num_databases) +
                      " of the representative databases)";
      return SearchStatus::kAbort;
    }
    if (options_.max_expansions >= 0 &&
        result_->stats.num_expansions >= options_.max_expansions) {
      abort_reason_ = "expansion budget exhausted";
      return SearchStatus::kAbort;
    }
    return SearchStatus::kContinue;
  }

  bool MarkVisited(int flag, int state, const Configuration& config) {
    bool inserted =
        visited_.insert(EncodeVisitedKey(flag, state, config)).second;
    result_->stats.max_visited = std::max(
        result_->stats.max_visited, static_cast<int>(visited_.size()));
    return inserted;
  }

  SearchStatus Stick(int state, const Configuration& config) {
    if (SearchStatus s = CheckBudgets(); s != SearchStatus::kContinue) {
      return s;
    }
    if (!MarkVisited(0, state, config)) return SearchStatus::kContinue;
    ++result_->stats.num_expansions;
    std::vector<bool> assignment = EvalComponents(config);
    for (const BuchiTransition& t : automaton_.adj[state]) {
      if (!GuardSatisfied(t.guard, assignment)) continue;
      SearchStatus status = ForEachSuccessor(
          config, [&](const Configuration& next) -> SearchStatus {
            if (!visited_.count(EncodeVisitedKey(0, t.to, next))) {
              SearchStatus s = Stick(t.to, next);
              if (s != SearchStatus::kContinue) return s;
            }
            if (automaton_.accepting[t.to]) {
              base_state_ = t.to;
              base_config_ = next;
              SearchStatus s = Candy(t.to, next);
              if (s != SearchStatus::kContinue) return s;
            }
            return SearchStatus::kContinue;
          });
      if (status != SearchStatus::kContinue) return status;
    }
    return SearchStatus::kContinue;
  }

  SearchStatus Candy(int state, const Configuration& config) {
    if (SearchStatus s = CheckBudgets(); s != SearchStatus::kContinue) {
      return s;
    }
    if (!MarkVisited(1, state, config)) return SearchStatus::kContinue;
    ++result_->stats.num_expansions;
    std::vector<bool> assignment = EvalComponents(config);
    for (const BuchiTransition& t : automaton_.adj[state]) {
      if (!GuardSatisfied(t.guard, assignment)) continue;
      SearchStatus status = ForEachSuccessor(
          config, [&](const Configuration& next) -> SearchStatus {
            if (t.to == base_state_ && next == base_config_) {
              return SearchStatus::kFound;
            }
            if (!visited_.count(EncodeVisitedKey(1, t.to, next))) {
              return Candy(t.to, next);
            }
            return SearchStatus::kContinue;
          });
      if (status != SearchStatus::kContinue) return status;
    }
    return SearchStatus::kContinue;
  }

  WebAppSpec* spec_;
  const PreparedSpec* prepared_;
  const Property& property_;
  FirstCutOptions options_;
  FirstCutResult* result_;

  Stopwatch watch_;
  BuchiAutomaton automaton_;
  std::vector<FormulaPtr> raw_components_;
  std::vector<SymbolId> domain_;
  std::vector<PreparedFormula> components_;
  std::set<std::vector<uint8_t>> visited_;
  int base_state_ = -1;
  Configuration base_config_;
  std::string abort_reason_;
};

}  // namespace

FirstCutVerifier::FirstCutVerifier(WebAppSpec* spec)
    : spec_(spec), prepared_(spec) {}

FirstCutResult FirstCutVerifier::Verify(const Property& property,
                                        const FirstCutOptions& options) {
  FirstCutResult result;
  Stopwatch watch;
  ExplicitSearch search(spec_, &prepared_, property, options, &result);
  search.Run();
  result.stats.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace wave
