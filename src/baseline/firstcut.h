// The "first cut" verifier sketched in Section 3 of the paper — and shown
// there to be hopeless: materialize every representative database over a
// fixed domain, then run a nested depth-first search over *genuine* runs.
// This is the algorithm the paper encoded in Promela to test whether SPIN
// could handle the problem ("We observed no pruning of the search space,
// whose explosion lead to a timeout of the experiment even for the simplest
// properties").
//
// Two uses in this repo:
//   * `bench_firstcut_explosion` reproduces the blow-up against WAVE;
//   * differential tests cross-check WAVE's verdicts on tiny specs, where
//     exhaustive database enumeration is actually feasible.
#ifndef WAVE_BASELINE_FIRSTCUT_H_
#define WAVE_BASELINE_FIRSTCUT_H_

#include <cstdint>
#include <string>

#include "ltl/ltl_formula.h"
#include "spec/prepared_spec.h"
#include "spec/web_app.h"
#include "verifier/verifier.h"

namespace wave {

/// Budgets for the explicit search.
struct FirstCutOptions {
  /// Fresh domain values added beyond the spec/property constants (the
  /// paper's `dom` is exponential in |W| + |ϕ|; any fixed number here is a
  /// *bounded* approximation — the baseline is only complete up to it).
  int extra_domain_values = 1;
  double timeout_seconds = 30.0;
  int64_t max_expansions = -1;
  /// Abort upfront if the number of candidate database tuples exceeds this
  /// (the powerset 2^n is the database count).
  int max_db_tuple_bits = 24;
};

/// Statistics of one explicit run.
struct FirstCutStats {
  double seconds = 0;
  int domain_size = 0;
  double db_tuple_candidates = 0;  // n: #databases = 2^n
  int64_t num_databases = 0;       // databases actually explored
  int64_t num_expansions = 0;
  int max_visited = 0;  // peak visited-set size over per-database searches
};

struct FirstCutResult {
  Verdict verdict = Verdict::kUnknown;
  std::string failure_reason;
  FirstCutStats stats;
};

/// Explicit-database verifier over a bounded domain.
class FirstCutVerifier {
 public:
  explicit FirstCutVerifier(WebAppSpec* spec);

  FirstCutResult Verify(const Property& property,
                        const FirstCutOptions& options = {});

 private:
  WebAppSpec* spec_;
  PreparedSpec prepared_;
};

}  // namespace wave

#endif  // WAVE_BASELINE_FIRSTCUT_H_
