#include "ltl/ltl_formula.h"

#include <map>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace wave {

LtlPtr LtlFormula::Fo(FormulaPtr f0) {
  LtlFormula f;
  f.kind_ = Kind::kFo;
  f.fo_ = std::move(f0);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::Not(LtlPtr body) {
  LtlFormula f;
  f.kind_ = Kind::kNot;
  f.left_ = std::move(body);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::And(LtlPtr l, LtlPtr r) {
  LtlFormula f;
  f.kind_ = Kind::kAnd;
  f.left_ = std::move(l);
  f.right_ = std::move(r);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::Or(LtlPtr l, LtlPtr r) {
  LtlFormula f;
  f.kind_ = Kind::kOr;
  f.left_ = std::move(l);
  f.right_ = std::move(r);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::Implies(LtlPtr l, LtlPtr r) {
  LtlFormula f;
  f.kind_ = Kind::kImplies;
  f.left_ = std::move(l);
  f.right_ = std::move(r);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::G(LtlPtr body) {
  LtlFormula f;
  f.kind_ = Kind::kG;
  f.left_ = std::move(body);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::F(LtlPtr body) {
  LtlFormula f;
  f.kind_ = Kind::kF;
  f.left_ = std::move(body);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::X(LtlPtr body) {
  LtlFormula f;
  f.kind_ = Kind::kX;
  f.left_ = std::move(body);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::U(LtlPtr l, LtlPtr r) {
  LtlFormula f;
  f.kind_ = Kind::kU;
  f.left_ = std::move(l);
  f.right_ = std::move(r);
  return LtlPtr(new LtlFormula(std::move(f)));
}

LtlPtr LtlFormula::B(LtlPtr l, LtlPtr r) {
  LtlFormula f;
  f.kind_ = Kind::kB;
  f.left_ = std::move(l);
  f.right_ = std::move(r);
  return LtlPtr(new LtlFormula(std::move(f)));
}

std::vector<std::string> LtlFormula::FreeVariables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::vector<const LtlFormula*> stack = {this};
  // Left-to-right DFS preserving first-occurrence order.
  while (!stack.empty()) {
    const LtlFormula* f = stack.back();
    stack.pop_back();
    if (f->kind_ == Kind::kFo) {
      for (const std::string& v : f->fo_->FreeVariables()) {
        if (seen.insert(v).second) out.push_back(v);
      }
      continue;
    }
    // Push right first so the left child pops (and is visited) first.
    if (f->right_ != nullptr) stack.push_back(f->right_.get());
    if (f->left_ != nullptr) stack.push_back(f->left_.get());
  }
  return out;
}

bool LtlFormula::ContainsTemporal() const {
  switch (kind_) {
    case Kind::kFo:
      return false;
    case Kind::kNot:
      return left_->ContainsTemporal();
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kImplies:
      return left_->ContainsTemporal() || right_->ContainsTemporal();
    case Kind::kG:
    case Kind::kF:
    case Kind::kX:
    case Kind::kU:
    case Kind::kB:
      return true;
  }
  WAVE_CHECK(false);
  return false;
}

LtlPtr LtlFormula::SubstituteConstants(
    const std::map<std::string, SymbolId>& binding) const {
  switch (kind_) {
    case Kind::kFo:
      return Fo(fo_->SubstituteConstants(binding));
    case Kind::kNot:
      return Not(left_->SubstituteConstants(binding));
    case Kind::kAnd:
      return And(left_->SubstituteConstants(binding),
                 right_->SubstituteConstants(binding));
    case Kind::kOr:
      return Or(left_->SubstituteConstants(binding),
                right_->SubstituteConstants(binding));
    case Kind::kImplies:
      return Implies(left_->SubstituteConstants(binding),
                     right_->SubstituteConstants(binding));
    case Kind::kG:
      return G(left_->SubstituteConstants(binding));
    case Kind::kF:
      return F(left_->SubstituteConstants(binding));
    case Kind::kX:
      return X(left_->SubstituteConstants(binding));
    case Kind::kU:
      return U(left_->SubstituteConstants(binding),
               right_->SubstituteConstants(binding));
    case Kind::kB:
      return B(left_->SubstituteConstants(binding),
               right_->SubstituteConstants(binding));
  }
  WAVE_CHECK(false);
  return nullptr;
}

std::string LtlFormula::ToString(const SymbolTable& symbols) const {
  switch (kind_) {
    case Kind::kFo:
      return "[" + fo_->ToString(symbols) + "]";
    case Kind::kNot:
      return "!(" + left_->ToString(symbols) + ")";
    case Kind::kAnd:
      return "(" + left_->ToString(symbols) + " & " +
             right_->ToString(symbols) + ")";
    case Kind::kOr:
      return "(" + left_->ToString(symbols) + " | " +
             right_->ToString(symbols) + ")";
    case Kind::kImplies:
      return "(" + left_->ToString(symbols) + " -> " +
             right_->ToString(symbols) + ")";
    case Kind::kG:
      return "G(" + left_->ToString(symbols) + ")";
    case Kind::kF:
      return "F(" + left_->ToString(symbols) + ")";
    case Kind::kX:
      return "X(" + left_->ToString(symbols) + ")";
    case Kind::kU:
      return "(" + left_->ToString(symbols) + " U " +
             right_->ToString(symbols) + ")";
    case Kind::kB:
      return "(" + left_->ToString(symbols) + " B " +
             right_->ToString(symbols) + ")";
  }
  WAVE_CHECK(false);
  return "";
}

std::string Property::ToString(const SymbolTable& symbols) const {
  std::string out;
  if (!forall_vars.empty()) {
    out = "forall " + Join(forall_vars, ",") + ": ";
  }
  return out + body->ToString(symbols);
}

}  // namespace wave
