#include "ltl/patterns.h"

namespace wave {

namespace {

Property Make(PatternInfo info, const char* type_code, LtlPtr body) {
  Property out;
  out.name = std::move(info.name);
  out.description = std::move(info.description);
  out.forall_vars = std::move(info.forall_vars);
  out.type_code = type_code;
  out.body = std::move(body);
  return out;
}

}  // namespace

Property Sequence(PatternInfo info, FormulaPtr p, FormulaPtr q) {
  return Make(std::move(info), "T1",
              LtlFormula::B(LtlFormula::Fo(std::move(p)),
                            LtlFormula::Fo(std::move(q))));
}

Property Session(PatternInfo info, FormulaPtr p, FormulaPtr q) {
  return Make(std::move(info), "T2",
              LtlFormula::Implies(
                  LtlFormula::G(LtlFormula::Fo(std::move(p))),
                  LtlFormula::G(LtlFormula::Fo(std::move(q)))));
}

Property Correlation(PatternInfo info, FormulaPtr p, FormulaPtr q) {
  return Make(std::move(info), "T3",
              LtlFormula::Implies(
                  LtlFormula::F(LtlFormula::Fo(std::move(p))),
                  LtlFormula::F(LtlFormula::Fo(std::move(q)))));
}

Property Response(PatternInfo info, FormulaPtr p, FormulaPtr q) {
  return Make(std::move(info), "T4",
              LtlFormula::G(LtlFormula::Implies(
                  LtlFormula::Fo(std::move(p)),
                  LtlFormula::F(LtlFormula::Fo(std::move(q))))));
}

Property Reachability(PatternInfo info, FormulaPtr p, FormulaPtr q) {
  return Make(std::move(info), "T5",
              LtlFormula::Or(LtlFormula::G(LtlFormula::Fo(std::move(p))),
                             LtlFormula::F(LtlFormula::Fo(std::move(q)))));
}

Property Recurrence(PatternInfo info, FormulaPtr p) {
  return Make(std::move(info), "T6",
              LtlFormula::G(LtlFormula::F(LtlFormula::Fo(std::move(p)))));
}

Property StrongNonProgress(PatternInfo info, FormulaPtr p) {
  return Make(std::move(info), "T7",
              LtlFormula::F(LtlFormula::G(LtlFormula::Fo(std::move(p)))));
}

Property WeakNonProgress(PatternInfo info, FormulaPtr p) {
  LtlPtr component = LtlFormula::Fo(std::move(p));
  return Make(std::move(info), "T8",
              LtlFormula::G(LtlFormula::Implies(component,
                                                LtlFormula::X(component))));
}

Property Guarantee(PatternInfo info, FormulaPtr p) {
  return Make(std::move(info), "T9",
              LtlFormula::F(LtlFormula::Fo(std::move(p))));
}

Property Invariance(PatternInfo info, FormulaPtr p) {
  return Make(std::move(info), "T10",
              LtlFormula::G(LtlFormula::Fo(std::move(p))));
}

}  // namespace wave
