// Programmatic constructors for the paper's property taxonomy (Section 5,
// "Classes of Properties"): the ten syntactic shapes whose frequent
// occurrence in verification tasks earned them standard names. Each
// builder takes FO components (typically parsed with `ParseFormula`) and
// returns a `Property` ready for `Verifier::Verify`.
//
//   type  name                 shape
//   T1    sequence             p B q
//   T2    session              G p -> G q
//   T3    correlation          F p -> F q
//   T4    response             G (p -> F q)
//   T5    reachability         G p | F q
//   T6    progress/recurrence  G (F p)
//   T7    strong non-progress  F (G p)
//   T8    weak non-progress    G (p -> X p)
//   T9    guarantee            F p
//   T10   invariance           G p
#ifndef WAVE_LTL_PATTERNS_H_
#define WAVE_LTL_PATTERNS_H_

#include <string>
#include <vector>

#include "ltl/ltl_formula.h"

namespace wave {

/// Shared metadata for the builders below. `forall_vars` is the outermost
/// universal block (pass the union of the components' free variables).
struct PatternInfo {
  std::string name;
  std::string description;
  std::vector<std::string> forall_vars;
};

Property Sequence(PatternInfo info, FormulaPtr p, FormulaPtr q);       // T1
Property Session(PatternInfo info, FormulaPtr p, FormulaPtr q);        // T2
Property Correlation(PatternInfo info, FormulaPtr p, FormulaPtr q);    // T3
Property Response(PatternInfo info, FormulaPtr p, FormulaPtr q);       // T4
Property Reachability(PatternInfo info, FormulaPtr p, FormulaPtr q);   // T5
Property Recurrence(PatternInfo info, FormulaPtr p);                   // T6
Property StrongNonProgress(PatternInfo info, FormulaPtr p);            // T7
Property WeakNonProgress(PatternInfo info, FormulaPtr p);              // T8
Property Guarantee(PatternInfo info, FormulaPtr p);                    // T9
Property Invariance(PatternInfo info, FormulaPtr p);                   // T10

}  // namespace wave

#endif  // WAVE_LTL_PATTERNS_H_
