#include "ltl/abstraction.h"

#include <map>

#include "common/check.h"

namespace wave {

FormulaPtr LtlToFo(const LtlPtr& f) {
  switch (f->kind()) {
    case LtlFormula::Kind::kFo:
      return f->fo();
    case LtlFormula::Kind::kNot:
      return Formula::Not(LtlToFo(f->body()));
    case LtlFormula::Kind::kAnd:
      return Formula::And(LtlToFo(f->left()), LtlToFo(f->right()));
    case LtlFormula::Kind::kOr:
      return Formula::Or(LtlToFo(f->left()), LtlToFo(f->right()));
    case LtlFormula::Kind::kImplies:
      return Formula::Implies(LtlToFo(f->left()), LtlToFo(f->right()));
    default:
      WAVE_CHECK_MSG(false, "temporal operator inside an FO component");
  }
  return nullptr;
}

namespace {

struct Abstractor {
  const SymbolTable* symbols;
  Abstraction* out;
  std::map<std::string, int> prop_by_key;

  PropId Walk(const LtlPtr& f) {
    if (!f->ContainsTemporal()) {
      FormulaPtr fo = LtlToFo(f);
      std::string key = fo->ToString(*symbols);
      auto it = prop_by_key.find(key);
      int prop;
      if (it != prop_by_key.end()) {
        prop = it->second;
      } else {
        prop = static_cast<int>(out->components.size());
        out->components.push_back(fo);
        prop_by_key.emplace(std::move(key), prop);
      }
      return out->arena.Prop(prop);
    }
    switch (f->kind()) {
      case LtlFormula::Kind::kFo:
        WAVE_CHECK(false);  // handled by the temporal-free branch
        return -1;
      case LtlFormula::Kind::kNot:
        return out->arena.Not(Walk(f->body()));
      case LtlFormula::Kind::kAnd:
        return out->arena.And(Walk(f->left()), Walk(f->right()));
      case LtlFormula::Kind::kOr:
        return out->arena.Or(Walk(f->left()), Walk(f->right()));
      case LtlFormula::Kind::kImplies:
        return out->arena.Implies(Walk(f->left()), Walk(f->right()));
      case LtlFormula::Kind::kG:
        return out->arena.G(Walk(f->body()));
      case LtlFormula::Kind::kF:
        return out->arena.F(Walk(f->body()));
      case LtlFormula::Kind::kX:
        return out->arena.X(Walk(f->body()));
      case LtlFormula::Kind::kU:
        return out->arena.U(Walk(f->left()), Walk(f->right()));
      case LtlFormula::Kind::kB:
        return out->arena.B(Walk(f->left()), Walk(f->right()));
    }
    WAVE_CHECK(false);
    return -1;
  }
};

}  // namespace

Abstraction AbstractLtl(const LtlPtr& f, const SymbolTable& symbols) {
  Abstraction out;
  Abstractor abstractor{&symbols, &out, {}};
  out.root = abstractor.Walk(f);
  return out;
}

}  // namespace wave
