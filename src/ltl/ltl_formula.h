// LTL-FO: linear-time temporal logic whose atoms are FO formulas over a
// configuration (Section 2.1 of the paper). An LTL-FO *property* is an
// LTL-FO formula with its remaining free variables universally quantified
// at the very end:   ∀x̄ φ1(x̄).
//
// Temporal operators: G (always), F (eventually), X (next), U (until),
// B (before: `p B q` — either q never holds, or p holds strictly before
// the first time q holds; the paper's footnote 1 semantics).
#ifndef WAVE_LTL_LTL_FORMULA_H_
#define WAVE_LTL_LTL_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "fo/formula.h"

namespace wave {

class LtlFormula;
using LtlPtr = std::shared_ptr<const LtlFormula>;

/// Immutable LTL-FO formula node.
class LtlFormula {
 public:
  enum class Kind {
    kFo,       // embedded FO formula (an eventual "FO component")
    kNot,
    kAnd,
    kOr,
    kImplies,
    kG,
    kF,
    kX,
    kU,
    kB,
  };

  Kind kind() const { return kind_; }
  const FormulaPtr& fo() const { return fo_; }
  const LtlPtr& left() const { return left_; }
  const LtlPtr& right() const { return right_; }
  const LtlPtr& body() const { return left_; }

  static LtlPtr Fo(FormulaPtr f);
  static LtlPtr Not(LtlPtr f);
  static LtlPtr And(LtlPtr l, LtlPtr r);
  static LtlPtr Or(LtlPtr l, LtlPtr r);
  static LtlPtr Implies(LtlPtr l, LtlPtr r);
  static LtlPtr G(LtlPtr f);
  static LtlPtr F(LtlPtr f);
  static LtlPtr X(LtlPtr f);
  static LtlPtr U(LtlPtr l, LtlPtr r);
  static LtlPtr B(LtlPtr l, LtlPtr r);

  /// Free variables of all embedded FO formulas, first-occurrence order.
  std::vector<std::string> FreeVariables() const;

  /// True if the subtree contains any temporal operator.
  bool ContainsTemporal() const;

  /// Substitutes constants for free variables in every FO component.
  LtlPtr SubstituteConstants(
      const std::map<std::string, SymbolId>& binding) const;

  std::string ToString(const SymbolTable& symbols) const;

 private:
  LtlFormula() = default;

  Kind kind_ = Kind::kFo;
  FormulaPtr fo_;
  LtlPtr left_;
  LtlPtr right_;
};

/// A named property: ∀ forall_vars. body, plus the expected verdict used by
/// experiment harnesses.
struct Property {
  std::string name;                      // e.g. "P5"
  std::string type_code;                 // e.g. "T1" (paper's taxonomy)
  std::string description;
  std::vector<std::string> forall_vars;  // outermost universal block
  LtlPtr body;

  std::string ToString(const SymbolTable& symbols) const;
};

}  // namespace wave

#endif  // WAVE_LTL_LTL_FORMULA_H_
