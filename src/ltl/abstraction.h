// Propositional abstraction of LTL-FO (Section 3, Steps 1-2): the maximal
// FO components — subexpressions containing no temporal operator and not
// nested inside a larger temporal-free subexpression — are replaced by
// fresh propositions, yielding `phi_aux`, which `LtlToBuchi` then turns
// into the property automaton. At search time the verifier evaluates each
// component on the current pseudoconfiguration to obtain the truth values
// of the propositions.
#ifndef WAVE_LTL_ABSTRACTION_H_
#define WAVE_LTL_ABSTRACTION_H_

#include <string>
#include <vector>

#include "buchi/prop_ltl.h"
#include "fo/formula.h"
#include "ltl/ltl_formula.h"

namespace wave {

/// Result of abstracting an LTL-FO formula.
struct Abstraction {
  PropArena arena;
  PropId root = -1;  // phi_aux
  /// Proposition i stands for components[i] (structurally distinct
  /// components get distinct propositions; repeats are shared).
  std::vector<FormulaPtr> components;
};

/// Abstracts `f`. `symbols` is used only to canonicalize components for
/// sharing (printing equality).
Abstraction AbstractLtl(const LtlPtr& f, const SymbolTable& symbols);

/// Converts a temporal-operator-free LTL-FO subtree into a plain FO
/// formula (boolean connectives map one-to-one).
FormulaPtr LtlToFo(const LtlPtr& f);

}  // namespace wave

#endif  // WAVE_LTL_ABSTRACTION_H_
