// Pluggable tuple storage backends.
//
// The paper (Section 4) picked the main-memory HSQLDB engine over a
// disk-based DBMS after measuring a two-orders-of-magnitude gap on the
// verifier's workload (inserting and deleting database cores). We keep the
// same seam: the verifier uses `MemoryTableStore`; `DurableTableStore`
// write-ahead-logs every mutation with a synchronous flush, reproducing the
// cost profile of a disk-based engine for `bench_dbms_storage`.
#ifndef WAVE_RELATIONAL_TABLE_STORE_H_
#define WAVE_RELATIONAL_TABLE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/instance.h"
#include "relational/schema.h"

namespace wave {

/// Abstract store of relation contents, addressed by `RelationId`.
class TableStore {
 public:
  virtual ~TableStore() = default;

  /// Inserts `t` into relation `id`; returns true if newly added.
  virtual bool Insert(RelationId id, const Tuple& t) = 0;

  /// Deletes `t` from relation `id`; returns true if it was present.
  virtual bool Delete(RelationId id, const Tuple& t) = 0;

  /// Empties every relation.
  virtual void Clear() = 0;

  /// Read access to the current contents.
  virtual const Relation& Scan(RelationId id) const = 0;
};

/// Purely in-memory store (what the verifier uses).
class MemoryTableStore : public TableStore {
 public:
  explicit MemoryTableStore(const Catalog* catalog);

  bool Insert(RelationId id, const Tuple& t) override;
  bool Delete(RelationId id, const Tuple& t) override;
  void Clear() override;
  const Relation& Scan(RelationId id) const override;

 private:
  Instance instance_;
};

/// Store that synchronously persists a redo log entry per mutation, like a
/// disk-based DBMS with autocommit. Used only by the storage benchmark.
class DurableTableStore : public TableStore {
 public:
  /// `log_path` is truncated on construction. `sync_every_op` controls
  /// whether each mutation is fsync'ed (true models per-statement commits).
  DurableTableStore(const Catalog* catalog, std::string log_path,
                    bool sync_every_op = true);
  ~DurableTableStore() override;

  DurableTableStore(const DurableTableStore&) = delete;
  DurableTableStore& operator=(const DurableTableStore&) = delete;

  bool Insert(RelationId id, const Tuple& t) override;
  bool Delete(RelationId id, const Tuple& t) override;
  void Clear() override;
  const Relation& Scan(RelationId id) const override;

 private:
  void AppendLog(char op, RelationId id, const Tuple& t);

  Instance instance_;
  std::string log_path_;
  int fd_ = -1;
  bool sync_every_op_;
};

}  // namespace wave

#endif  // WAVE_RELATIONAL_TABLE_STORE_H_
