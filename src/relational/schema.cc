#include "relational/schema.h"

#include "common/check.h"

namespace wave {

const char* RelationKindName(RelationKind kind) {
  switch (kind) {
    case RelationKind::kDatabase:
      return "database";
    case RelationKind::kState:
      return "state";
    case RelationKind::kInput:
      return "input";
    case RelationKind::kInputConstant:
      return "input-constant";
    case RelationKind::kAction:
      return "action";
  }
  return "unknown";
}

RelationId Catalog::Declare(RelationSchema schema) {
  WAVE_CHECK_MSG(by_name_.find(schema.name) == by_name_.end(),
                 "relation '" << schema.name << "' declared twice");
  WAVE_CHECK_MSG(schema.arity >= 0, "negative arity for " << schema.name);
  WAVE_CHECK_MSG(
      schema.attributes.empty() ||
          static_cast<int>(schema.attributes.size()) == schema.arity,
      "attribute list of '" << schema.name << "' does not match arity");
  if (schema.kind == RelationKind::kInputConstant) {
    WAVE_CHECK_MSG(schema.arity == 1,
                   "input constant '" << schema.name << "' must have arity 1");
  }
  RelationId id = static_cast<RelationId>(schemas_.size());
  by_name_.emplace(schema.name, id);
  schemas_.push_back(std::move(schema));
  return id;
}

RelationId Catalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidRelation : it->second;
}

std::vector<RelationId> Catalog::IdsOfKind(RelationKind kind) const {
  std::vector<RelationId> out;
  for (RelationId id = 0; id < size(); ++id) {
    if (schemas_[id].kind == kind) out.push_back(id);
  }
  return out;
}

}  // namespace wave
