// Set-semantics relation over interned symbol tuples.
#ifndef WAVE_RELATIONAL_RELATION_H_
#define WAVE_RELATIONAL_RELATION_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/symbol_table.h"

namespace wave {

/// A row: one interned value per attribute.
using Tuple = std::vector<SymbolId>;

/// A relation instance: an ordered (lexicographic) duplicate-free set of
/// equal-arity tuples. The configurations the verifier manipulates contain
/// at most a handful of tuples per relation, so a sorted vector beats a hash
/// structure and gives deterministic iteration order — which the bitmap
/// codec and counterexample printing rely on.
class Relation {
 public:
  Relation() = default;
  explicit Relation(int arity) : arity_(arity) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  int arity() const { return arity_; }
  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t`; returns true if newly added.
  bool Insert(const Tuple& t);

  /// Erases `t`; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;

  void Clear() { tuples_.clear(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Set-union with `other` (same arity).
  void UnionWith(const Relation& other);

  /// Set-difference: removes all tuples of `other`.
  void DifferenceWith(const Relation& other);

  /// Renders as `{(a,b),(c,d)}` using `symbols` for value names.
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }

 private:
  int arity_ = 0;
  std::vector<Tuple> tuples_;  // sorted, unique
};

}  // namespace wave

#endif  // WAVE_RELATIONAL_RELATION_H_
