#include "relational/instance.h"

#include <algorithm>

#include "common/check.h"

namespace wave {

Instance::Instance(const Catalog* catalog) : catalog_(catalog) {
  relations_.reserve(catalog->size());
  for (RelationId id = 0; id < catalog->size(); ++id) {
    relations_.emplace_back(catalog->schema(id).arity);
  }
}

Relation& Instance::relation(const std::string& name) {
  RelationId id = catalog_->Find(name);
  WAVE_CHECK_MSG(id != kInvalidRelation, "unknown relation '" << name << "'");
  return relations_[id];
}

const Relation& Instance::relation(const std::string& name) const {
  RelationId id = catalog_->Find(name);
  WAVE_CHECK_MSG(id != kInvalidRelation, "unknown relation '" << name << "'");
  return relations_[id];
}

int Instance::TupleCount() const {
  int n = 0;
  for (const Relation& r : relations_) n += r.size();
  return n;
}

std::vector<SymbolId> Instance::ActiveDomain() const {
  std::vector<SymbolId> domain;
  for (const Relation& r : relations_) {
    for (const Tuple& t : r.tuples()) {
      domain.insert(domain.end(), t.begin(), t.end());
    }
  }
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

void Instance::Clear() {
  for (Relation& r : relations_) r.Clear();
}

std::string Instance::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (RelationId id = 0; id < catalog_->size(); ++id) {
    if (relations_[id].empty()) continue;
    out += catalog_->schema(id).name;
    out += " = ";
    out += relations_[id].ToString(symbols);
    out += "\n";
  }
  return out;
}

}  // namespace wave
