// An instance assigns a `Relation` to every relation of a `Catalog`.
#ifndef WAVE_RELATIONAL_INSTANCE_H_
#define WAVE_RELATIONAL_INSTANCE_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"

namespace wave {

/// A total instance over a catalog: every relation id has a (possibly empty)
/// relation of the declared arity. Copying an `Instance` is cheap at the
/// sizes the verifier manipulates (a handful of tuples in total).
class Instance {
 public:
  Instance() = default;
  /// Creates an all-empty instance over `catalog`. The catalog must outlive
  /// the instance.
  explicit Instance(const Catalog* catalog);

  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  const Catalog& catalog() const { return *catalog_; }

  Relation& relation(RelationId id) { return relations_[id]; }
  const Relation& relation(RelationId id) const { return relations_[id]; }

  /// Convenience lookup by name; the relation must exist.
  Relation& relation(const std::string& name);
  const Relation& relation(const std::string& name) const;

  /// Total number of tuples across all relations.
  int TupleCount() const;

  /// Collects every symbol occurring in any tuple (the active domain).
  std::vector<SymbolId> ActiveDomain() const;

  /// Empties every relation.
  void Clear();

  /// Renders non-empty relations, one per line.
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.relations_ == b.relations_;
  }

 private:
  const Catalog* catalog_ = nullptr;
  std::vector<Relation> relations_;
};

}  // namespace wave

#endif  // WAVE_RELATIONAL_INSTANCE_H_
