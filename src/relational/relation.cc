#include "relational/relation.h"

#include "common/check.h"
#include "common/strings.h"

namespace wave {

bool Relation::Insert(const Tuple& t) {
  WAVE_CHECK_MSG(static_cast<int>(t.size()) == arity_,
                 "tuple arity " << t.size() << " != relation arity " << arity_);
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, t);
  return true;
}

bool Relation::Erase(const Tuple& t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || *it != t) return false;
  tuples_.erase(it);
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

void Relation::UnionWith(const Relation& other) {
  WAVE_CHECK(arity_ == other.arity_);
  for (const Tuple& t : other.tuples_) Insert(t);
}

void Relation::DifferenceWith(const Relation& other) {
  WAVE_CHECK(arity_ == other.arity_);
  for (const Tuple& t : other.tuples_) Erase(t);
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::vector<std::string> rows;
  rows.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    std::vector<std::string> cells;
    cells.reserve(t.size());
    for (SymbolId v : t) cells.push_back(symbols.Name(v));
    rows.push_back("(" + Join(cells, ",") + ")");
  }
  return "{" + Join(rows, ",") + "}";
}

}  // namespace wave
