#include "relational/table_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "common/check.h"

namespace wave {

MemoryTableStore::MemoryTableStore(const Catalog* catalog)
    : instance_(catalog) {}

bool MemoryTableStore::Insert(RelationId id, const Tuple& t) {
  return instance_.relation(id).Insert(t);
}

bool MemoryTableStore::Delete(RelationId id, const Tuple& t) {
  return instance_.relation(id).Erase(t);
}

void MemoryTableStore::Clear() { instance_.Clear(); }

const Relation& MemoryTableStore::Scan(RelationId id) const {
  return instance_.relation(id);
}

DurableTableStore::DurableTableStore(const Catalog* catalog,
                                     std::string log_path, bool sync_every_op)
    : instance_(catalog),
      log_path_(std::move(log_path)),
      sync_every_op_(sync_every_op) {
  fd_ = ::open(log_path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  WAVE_CHECK_MSG(fd_ >= 0, "cannot open redo log " << log_path_);
}

DurableTableStore::~DurableTableStore() {
  if (fd_ >= 0) ::close(fd_);
}

void DurableTableStore::AppendLog(char op, RelationId id, const Tuple& t) {
  // Record format: op byte, relation id, arity, values. Binary, fixed width.
  char buf[256];
  size_t n = 0;
  buf[n++] = op;
  std::memcpy(buf + n, &id, sizeof(id));
  n += sizeof(id);
  int32_t arity = static_cast<int32_t>(t.size());
  std::memcpy(buf + n, &arity, sizeof(arity));
  n += sizeof(arity);
  for (SymbolId v : t) {
    WAVE_CHECK(n + sizeof(v) <= sizeof(buf));
    std::memcpy(buf + n, &v, sizeof(v));
    n += sizeof(v);
  }
  ssize_t written = ::write(fd_, buf, n);
  WAVE_CHECK(written == static_cast<ssize_t>(n));
  if (sync_every_op_) {
    // Per-statement durability, the autocommit behaviour of a disk DBMS.
    ::fdatasync(fd_);
  }
}

bool DurableTableStore::Insert(RelationId id, const Tuple& t) {
  bool added = instance_.relation(id).Insert(t);
  if (added) AppendLog('i', id, t);
  return added;
}

bool DurableTableStore::Delete(RelationId id, const Tuple& t) {
  bool removed = instance_.relation(id).Erase(t);
  if (removed) AppendLog('d', id, t);
  return removed;
}

void DurableTableStore::Clear() {
  instance_.Clear();
  AppendLog('c', 0, {});
}

const Relation& DurableTableStore::Scan(RelationId id) const {
  return instance_.relation(id);
}

}  // namespace wave
