// Relational schema catalog for a Web application specification.
//
// The paper's model (Section 2.1) partitions relations into kinds:
//   - database relations  (fixed but unknown content; never updated in a run)
//   - state relations     (updated by state rules; persist across steps)
//   - input relations     (option lists; hold at most one user-chosen tuple)
//   - input constants     (text inputs; modeled here as arity-1 relations
//                          holding at most one value)
//   - action relations    (write-only outputs computed at each step)
// Previous inputs (`prev R`) are the same input relations read one step late;
// they are not separate catalog entries.
#ifndef WAVE_RELATIONAL_SCHEMA_H_
#define WAVE_RELATIONAL_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/symbol_table.h"

namespace wave {

/// Which part of a configuration a relation belongs to.
enum class RelationKind {
  kDatabase,
  kState,
  kInput,
  kInputConstant,  // text input; arity 1, at most one tuple
  kAction,
};

/// Human-readable kind name ("database", "state", ...).
const char* RelationKindName(RelationKind kind);

/// Dense id of a relation within a `Catalog`.
using RelationId = int32_t;

inline constexpr RelationId kInvalidRelation = -1;

/// Declaration of a single relation.
struct RelationSchema {
  std::string name;
  int arity = 0;
  RelationKind kind = RelationKind::kDatabase;
  /// Optional attribute names (size == arity when present; used only for
  /// printing and error messages).
  std::vector<std::string> attributes;
};

/// Catalog of all relations of a spec, with by-name lookup.
///
/// Relation ids are dense indices in declaration order, so per-relation data
/// elsewhere (bitmap layouts, candidate-tuple sets) can be plain vectors.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = default;
  Catalog& operator=(const Catalog&) = default;

  /// Declares a relation; the name must be unused. Returns its id.
  RelationId Declare(RelationSchema schema);

  /// Returns the id for `name` or `kInvalidRelation`.
  RelationId Find(const std::string& name) const;

  const RelationSchema& schema(RelationId id) const { return schemas_[id]; }
  int size() const { return static_cast<int>(schemas_.size()); }

  /// Ids of all relations of `kind`, in declaration order.
  std::vector<RelationId> IdsOfKind(RelationKind kind) const;

 private:
  std::vector<RelationSchema> schemas_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace wave

#endif  // WAVE_RELATIONAL_SCHEMA_H_
