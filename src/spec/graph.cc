#include "spec/graph.h"

#include <vector>

namespace wave {

std::string SiteGraphDot(const WebAppSpec& spec, int max_label) {
  std::string out = "digraph site {\n  rankdir=LR;\n";
  for (int p = 0; p < spec.num_pages(); ++p) {
    out += "  " + spec.page(p).name;
    if (p == spec.home_page()) out += " [shape=doublecircle]";
    out += ";\n";
  }
  for (int p = 0; p < spec.num_pages(); ++p) {
    for (const TargetRule& rule : spec.page(p).target_rules) {
      out += "  " + spec.page(p).name + " -> " +
             spec.page(rule.target_page).name;
      if (max_label > 0) {
        std::string label = rule.condition->ToString(spec.symbols());
        if (static_cast<int>(label.size()) > max_label) {
          label = label.substr(0, max_label - 3) + "...";
        }
        // Escape quotes for DOT.
        std::string escaped;
        for (char c : label) {
          if (c == '"') escaped += '\\';
          escaped += c;
        }
        out += " [label=\"" + escaped + "\"]";
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::vector<std::string> UnreachablePages(const WebAppSpec& spec) {
  std::vector<bool> seen(spec.num_pages(), false);
  std::vector<int> stack = {spec.home_page()};
  seen[spec.home_page()] = true;
  while (!stack.empty()) {
    int page = stack.back();
    stack.pop_back();
    for (const TargetRule& rule : spec.page(page).target_rules) {
      if (!seen[rule.target_page]) {
        seen[rule.target_page] = true;
        stack.push_back(rule.target_page);
      }
    }
  }
  std::vector<std::string> out;
  for (int p = 0; p < spec.num_pages(); ++p) {
    if (!seen[p]) out.push_back(spec.page(p).name);
  }
  return out;
}

}  // namespace wave
