// A `WebAppSpec` with every rule compiled to a `PreparedFormula` — the
// analogue of the paper's prepared SQL statements (Section 4): resolve and
// "optimize" each rule once, re-execute it with fresh parameters at every
// step of the search.
#ifndef WAVE_SPEC_PREPARED_SPEC_H_
#define WAVE_SPEC_PREPARED_SPEC_H_

#include <string>
#include <vector>

#include "fo/prepared.h"
#include "spec/runtime.h"
#include "spec/web_app.h"

namespace wave {

/// A compiled head ← body rule.
struct PreparedRule {
  RelationId relation = kInvalidRelation;
  std::vector<Term> head;
  std::vector<std::string> head_vars;  // free-variable order of `prepared`
  PreparedFormula prepared;

  /// Builds the head tuple from an assignment of `head_vars` (one value per
  /// name, same order).
  Tuple InstantiateHead(const std::vector<SymbolId>& assignment) const;

  /// Evaluates the rule body over `view` and appends the resulting head
  /// tuples to `out` (deduplicated by the caller's relation insert).
  void Derive(const ConfigurationView& view,
              const std::vector<SymbolId>& domain,
              std::vector<Tuple>* out) const;
};

struct PreparedTarget {
  int target_page = -1;
  PreparedFormula condition;
};

/// One page with compiled rules.
struct PreparedPage {
  std::vector<RelationId> inputs;
  std::vector<PreparedRule> input_rules;       // one per input relation
  std::vector<PreparedRule> state_inserts;
  std::vector<PreparedRule> state_deletes;
  std::vector<PreparedRule> action_rules;
  std::vector<PreparedTarget> targets;
};

/// Cumulative execution counters for one `PreparedSpec` (ISSUE 1
/// observability) — the prepared-query analogue of a DBMS's statement
/// counters. Monotone; snapshot before/after a region and subtract to
/// attribute work to it.
struct PreparedExecStats {
  int64_t compute_options_calls = 0;
  int64_t apply_input_calls = 0;
  int64_t advance_calls = 0;
  int64_t rule_evaluations = 0;  // prepared rule bodies executed
  int64_t derived_tuples = 0;    // head tuples produced by those bodies
};

/// Compiled spec + the step semantics used by runs and pseudoruns.
class PreparedSpec {
 public:
  /// `spec` must outlive this object and must already validate cleanly.
  explicit PreparedSpec(const WebAppSpec* spec);

  PreparedSpec(PreparedSpec&&) = default;

  const WebAppSpec& spec() const { return *spec_; }
  const PreparedPage& page(int index) const { return pages_[index]; }

  /// Options the page of `config` generates, evaluated over the database,
  /// state and previous inputs of `config`.
  InputOptions ComputeOptions(const Configuration& config,
                              const std::vector<SymbolId>& domain) const;

  /// Writes the input choice and the induced actions into `config` (whose
  /// page, state and previous inputs are already in place).
  void ApplyInput(const InputChoice& choice,
                  const std::vector<SymbolId>& domain,
                  Configuration* config) const;

  /// Computes the successor skeleton of `config`: next page (per target
  /// rules; stays on the same page unless exactly one condition holds),
  /// updated state, previous inputs = current inputs. Input and action
  /// relations of the result are empty — fill them with `ApplyInput` after
  /// choosing inputs from `ComputeOptions`.
  Configuration Advance(const Configuration& config,
                        const std::vector<SymbolId>& domain) const;

  /// Fresh initial configuration: home page, given database contents (only
  /// database relations of `database` are consulted), empty state/inputs.
  Configuration MakeInitial(const Instance& database) const;

  /// The evaluation domain: spec constants ∪ active domain of `config` ∪
  /// `extra` values.
  std::vector<SymbolId> EvaluationDomain(
      const Configuration& config,
      const std::vector<SymbolId>& extra = {}) const;

  /// Cumulative counters since construction (or the last `ResetExecStats`).
  const PreparedExecStats& exec_stats() const { return exec_stats_; }
  void ResetExecStats() const { exec_stats_ = {}; }

 private:
  const WebAppSpec* spec_;
  std::vector<PreparedPage> pages_;
  std::vector<SymbolId> spec_constants_;
  // Mutable: ComputeOptions/ApplyInput/Advance are logically const queries.
  mutable PreparedExecStats exec_stats_;
};

}  // namespace wave

#endif  // WAVE_SPEC_PREPARED_SPEC_H_
