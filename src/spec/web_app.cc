#include "spec/web_app.h"

#include <algorithm>

#include "common/check.h"
#include "fo/input_bounded.h"

namespace wave {

namespace {

/// True if `f` contains a current-step (non-`prev`) atom over an input
/// relation or input constant.
bool HasCurrentInputAtom(const FormulaPtr& f, const Catalog& catalog) {
  switch (f->kind()) {
    case Formula::Kind::kAtom: {
      if (f->previous()) return false;
      RelationId id = catalog.Find(f->relation());
      if (id == kInvalidRelation) return false;
      RelationKind kind = catalog.schema(id).kind;
      return kind == RelationKind::kInput ||
             kind == RelationKind::kInputConstant;
    }
    case Formula::Kind::kNot:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return HasCurrentInputAtom(f->body(), catalog);
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
      return HasCurrentInputAtom(f->left(), catalog) ||
             HasCurrentInputAtom(f->right(), catalog);
    default:
      return false;
  }
}

/// Reports atoms whose argument count disagrees with the declared arity
/// and page atoms naming unknown pages (ISSUE 2: these used to surface as
/// WAVE_CHECK aborts inside `PreparedFormula::Prepare` at verify time;
/// catching them here keeps those checks genuine internal invariants).
void CheckBodyAtoms(const WebAppSpec& spec, const FormulaPtr& f,
                    const std::string& where,
                    std::vector<std::string>* issues) {
  switch (f->kind()) {
    case Formula::Kind::kAtom: {
      RelationId id = spec.catalog().Find(f->relation());
      if (id == kInvalidRelation) return;  // reported separately
      int arity = spec.catalog().schema(id).arity;
      if (static_cast<int>(f->args().size()) != arity) {
        issues->push_back(where + ": atom " + f->relation() + "/" +
                          std::to_string(f->args().size()) +
                          " does not match declared arity " +
                          std::to_string(arity));
      }
      return;
    }
    case Formula::Kind::kPage:
      if (spec.PageIndex(f->page()) < 0) {
        issues->push_back(where + ": page atom 'at " + f->page() +
                          "' references an unknown page");
      }
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      CheckBodyAtoms(spec, f->body(), where, issues);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
      CheckBodyAtoms(spec, f->left(), where, issues);
      CheckBodyAtoms(spec, f->right(), where, issues);
      return;
    default:
      return;
  }
}

/// Variables of a head tuple, first-occurrence order.
std::vector<std::string> HeadVariables(const std::vector<Term>& head) {
  std::vector<std::string> vars;
  for (const Term& t : head) {
    if (t.is_variable() &&
        std::find(vars.begin(), vars.end(), t.variable) == vars.end()) {
      vars.push_back(t.variable);
    }
  }
  return vars;
}

}  // namespace

int WebAppSpec::AddPage(PageSchema page) {
  WAVE_CHECK_MSG(page_index_.find(page.name) == page_index_.end(),
                 "page '" << page.name << "' declared twice");
  int index = static_cast<int>(pages_.size());
  page_index_.emplace(page.name, index);
  pages_.push_back(std::move(page));
  return index;
}

int WebAppSpec::PageIndex(const std::string& name) const {
  auto it = page_index_.find(name);
  return it == page_index_.end() ? -1 : it->second;
}

std::set<SymbolId> WebAppSpec::SpecConstants() const {
  std::set<SymbolId> out;
  auto add_formula = [&out](const FormulaPtr& f) {
    std::set<SymbolId> cs = f->Constants();
    out.insert(cs.begin(), cs.end());
  };
  auto add_head = [&out](const std::vector<Term>& head) {
    for (const Term& t : head) {
      if (!t.is_variable()) out.insert(t.constant);
    }
  };
  for (const PageSchema& page : pages_) {
    for (const InputRule& r : page.input_rules) {
      add_head(r.head);
      add_formula(r.body);
    }
    for (const StateRule& r : page.state_rules) {
      add_head(r.head);
      add_formula(r.body);
    }
    for (const ActionRule& r : page.action_rules) {
      add_head(r.head);
      add_formula(r.body);
    }
    for (const TargetRule& r : page.target_rules) add_formula(r.condition);
  }
  return out;
}

std::vector<std::string> WebAppSpec::Validate() const {
  std::vector<std::string> issues;
  auto report = [&issues](const std::string& where, const std::string& what) {
    issues.push_back(where + ": " + what);
  };

  if (pages_.empty()) {
    issues.push_back("spec has no pages");
    return issues;
  }
  if (home_page_ < 0 || home_page_ >= num_pages()) {
    issues.push_back("home page index out of range");
  }

  // Shared checks for a rule head + body.
  auto check_rule = [&](const std::string& where, RelationId relation,
                        RelationKind expected_kind,
                        const std::vector<Term>& head, const FormulaPtr& body,
                        bool body_may_use_current_input) {
    if (relation == kInvalidRelation) {
      report(where, "head relation is undeclared");
      return;
    }
    const RelationSchema& schema = catalog_.schema(relation);
    if (schema.kind != expected_kind &&
        !(expected_kind == RelationKind::kInput &&
          schema.kind == RelationKind::kInputConstant)) {
      report(where, "head relation " + schema.name + " has kind " +
                        RelationKindName(schema.kind) + ", expected " +
                        RelationKindName(expected_kind));
    }
    if (static_cast<int>(head.size()) != schema.arity) {
      report(where, "head arity " + std::to_string(head.size()) +
                        " does not match " + schema.name + "/" +
                        std::to_string(schema.arity));
    }
    // Safety: head variables == free variables of the body.
    std::vector<std::string> head_vars = HeadVariables(head);
    std::vector<std::string> body_vars = body->FreeVariables();
    for (const std::string& v : body_vars) {
      if (std::find(head_vars.begin(), head_vars.end(), v) ==
          head_vars.end()) {
        report(where, "body free variable '" + v + "' not in rule head");
      }
    }
    for (const std::string& v : head_vars) {
      if (std::find(body_vars.begin(), body_vars.end(), v) ==
          body_vars.end()) {
        report(where, "head variable '" + v +
                          "' is unconstrained by the rule body");
      }
    }
    // Relation references: must exist, match arity; action relations are
    // write-only; input rules may not read the current input.
    for (const std::string& rel_name : body->Relations()) {
      RelationId id = catalog_.Find(rel_name);
      if (id == kInvalidRelation) {
        report(where, "body references undeclared relation '" + rel_name +
                          "'");
        continue;
      }
      if (catalog_.schema(id).kind == RelationKind::kAction) {
        report(where, "body reads action relation '" + rel_name +
                          "' (actions are write-only)");
      }
    }
    CheckBodyAtoms(*this, body, where, &issues);
    (void)body_may_use_current_input;
  };

  for (const PageSchema& page : pages_) {
    const std::string prefix = "page " + page.name;
    // Input declarations.
    std::set<RelationId> declared_inputs(page.inputs.begin(),
                                         page.inputs.end());
    for (RelationId id : page.inputs) {
      RelationKind kind = catalog_.schema(id).kind;
      if (kind != RelationKind::kInput &&
          kind != RelationKind::kInputConstant) {
        report(prefix, "declared input " + catalog_.schema(id).name +
                           " is not an input relation");
      }
    }
    // Every input relation (not constant) needs exactly one options rule.
    std::set<RelationId> with_rule;
    for (const InputRule& r : page.input_rules) {
      check_rule(prefix + ", input rule " +
                     (r.relation == kInvalidRelation
                          ? "?"
                          : catalog_.schema(r.relation).name),
                 r.relation, RelationKind::kInput, r.head, r.body,
                 /*body_may_use_current_input=*/false);
      if (r.relation != kInvalidRelation) {
        if (!with_rule.insert(r.relation).second) {
          report(prefix, "multiple options rules for input " +
                             catalog_.schema(r.relation).name);
        }
        if (declared_inputs.count(r.relation) == 0) {
          report(prefix, "options rule for undeclared input " +
                             catalog_.schema(r.relation).name);
        }
        if (catalog_.schema(r.relation).kind ==
            RelationKind::kInputConstant) {
          report(prefix, "input constant " +
                             catalog_.schema(r.relation).name +
                             " cannot have an options rule");
        }
      }
    }
    for (RelationId id : page.inputs) {
      if (catalog_.schema(id).kind == RelationKind::kInput &&
          with_rule.count(id) == 0) {
        report(prefix, "input " + catalog_.schema(id).name +
                           " lacks an options rule");
      }
    }
    // Input rules may not read the *current* step's input (the model: they
    // see database, state and previous input only).
    for (const InputRule& r : page.input_rules) {
      if (r.relation != kInvalidRelation &&
          HasCurrentInputAtom(r.body, catalog_)) {
        report(prefix, "input rule " + catalog_.schema(r.relation).name +
                           " reads a current-step input (only `prev` input "
                           "atoms are allowed in option rules)");
      }
    }
    for (const StateRule& r : page.state_rules) {
      check_rule(prefix + ", state rule " +
                     (r.relation == kInvalidRelation
                          ? "?"
                          : catalog_.schema(r.relation).name),
                 r.relation, RelationKind::kState, r.head, r.body, true);
    }
    for (const ActionRule& r : page.action_rules) {
      check_rule(prefix + ", action rule " +
                     (r.relation == kInvalidRelation
                          ? "?"
                          : catalog_.schema(r.relation).name),
                 r.relation, RelationKind::kAction, r.head, r.body, true);
    }
    for (const TargetRule& r : page.target_rules) {
      if (r.target_page < 0 || r.target_page >= num_pages()) {
        report(prefix, "target rule points to an unknown page");
        continue;
      }
      if (!r.condition->FreeVariables().empty()) {
        report(prefix, "target condition for " +
                           pages_[r.target_page].name +
                           " has free variables (must be a sentence)");
      }
      for (const std::string& rel_name : r.condition->Relations()) {
        RelationId id = catalog_.Find(rel_name);
        if (id == kInvalidRelation) {
          report(prefix, "target condition references undeclared relation '" +
                             rel_name + "'");
        } else if (catalog_.schema(id).kind == RelationKind::kAction) {
          report(prefix, "target condition reads action relation '" +
                             rel_name + "'");
        }
      }
      CheckBodyAtoms(*this, r.condition,
                     prefix + ", target condition for " +
                         pages_[r.target_page].name,
                     &issues);
    }
  }
  return issues;
}

Status WebAppSpec::ValidateStatus() const {
  std::vector<std::string> issues = Validate();
  if (issues.empty()) return Status::Ok();
  std::string joined;
  for (const std::string& issue : issues) {
    if (!joined.empty()) joined += "; ";
    joined += issue;
  }
  return Status::FailedPrecondition("spec does not validate: " + joined,
                                    WAVE_LOC);
}

std::vector<std::string> WebAppSpec::CheckInputBoundedness() const {
  std::vector<std::string> issues;
  for (const PageSchema& page : pages_) {
    const std::string prefix = "page " + page.name;
    for (const InputRule& r : page.input_rules) {
      auto found = CheckInputBounded(
          r.body, catalog_, FormulaRole::kInputOptionRule,
          prefix + ", input rule " + catalog_.schema(r.relation).name);
      issues.insert(issues.end(), found.begin(), found.end());
    }
    for (const StateRule& r : page.state_rules) {
      auto found = CheckInputBounded(
          r.body, catalog_, FormulaRole::kRule,
          prefix + ", state rule " + catalog_.schema(r.relation).name);
      issues.insert(issues.end(), found.begin(), found.end());
    }
    for (const ActionRule& r : page.action_rules) {
      auto found = CheckInputBounded(
          r.body, catalog_, FormulaRole::kRule,
          prefix + ", action rule " + catalog_.schema(r.relation).name);
      issues.insert(issues.end(), found.begin(), found.end());
    }
    for (const TargetRule& r : page.target_rules) {
      auto found = CheckInputBounded(
          r.condition, catalog_, FormulaRole::kRule,
          prefix + ", target rule -> " + pages_[r.target_page].name);
      issues.insert(issues.end(), found.begin(), found.end());
    }
  }
  return issues;
}

std::string WebAppSpec::StatsString() const {
  int num_db = 0, num_state = 0, num_input = 0, num_action = 0,
      num_const_inputs = 0;
  int max_db_arity = 0;
  for (RelationId id = 0; id < catalog_.size(); ++id) {
    const RelationSchema& s = catalog_.schema(id);
    switch (s.kind) {
      case RelationKind::kDatabase:
        ++num_db;
        max_db_arity = std::max(max_db_arity, s.arity);
        break;
      case RelationKind::kState:
        ++num_state;
        break;
      case RelationKind::kInput:
        ++num_input;
        break;
      case RelationKind::kInputConstant:
        ++num_const_inputs;
        break;
      case RelationKind::kAction:
        ++num_action;
        break;
    }
  }
  return std::to_string(num_pages()) + " pages, " + std::to_string(num_db) +
         " database relations (max arity " + std::to_string(max_db_arity) +
         "), " + std::to_string(num_state) + " state relations, " +
         std::to_string(num_input) + " input relations, " +
         std::to_string(num_const_inputs) + " input constants, " +
         std::to_string(num_action) + " action relations, " +
         std::to_string(SpecConstants().size()) + " constants";
}

}  // namespace wave
