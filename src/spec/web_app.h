// Web application specifications — the paper's model (Section 2.1).
//
// A spec is a set of page schemas over a shared relational catalog. Each
// page schema declares which inputs it requests and carries four families
// of FO rules:
//   input rules    Options_R(x̄) ← φ     options offered for input R
//   state rules    [¬]S(x̄)      ← φ     insertions/deletions into states
//   action rules   A(x̄)         ← φ     output tuples emitted this step
//   target rules   P             ← φ     next-page conditions
#ifndef WAVE_SPEC_WEB_APP_H_
#define WAVE_SPEC_WEB_APP_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "fo/formula.h"
#include "relational/schema.h"

namespace wave {

/// Options_R(head) ← body. `head` is typically a tuple of distinct
/// variables; the body's free variables must be exactly the head's
/// variables.
struct InputRule {
  RelationId relation = kInvalidRelation;
  std::vector<Term> head;
  FormulaPtr body;
};

/// S(head) ← body (insert) or ¬S(head) ← body (delete).
struct StateRule {
  RelationId relation = kInvalidRelation;
  bool insert = true;
  std::vector<Term> head;
  FormulaPtr body;
};

/// A(head) ← body.
struct ActionRule {
  RelationId relation = kInvalidRelation;
  std::vector<Term> head;
  FormulaPtr body;
};

/// TARGET ← condition (condition is a sentence).
struct TargetRule {
  int target_page = -1;
  FormulaPtr condition;
};

/// One Web page schema.
struct PageSchema {
  std::string name;
  /// Inputs requested by this page: input relations (with an options rule
  /// each) and input constants (free text; no options rule).
  std::vector<RelationId> inputs;
  std::vector<InputRule> input_rules;
  std::vector<StateRule> state_rules;
  std::vector<ActionRule> action_rules;
  std::vector<TargetRule> target_rules;
};

/// A complete Web application specification.
///
/// Owns the symbol table (interned data constants) and the relation
/// catalog. Pages are added with `AddPage` and then frozen by `Validate`.
class WebAppSpec {
 public:
  WebAppSpec() = default;

  WebAppSpec(const WebAppSpec&) = default;
  WebAppSpec& operator=(const WebAppSpec&) = default;
  WebAppSpec(WebAppSpec&&) = default;
  WebAppSpec& operator=(WebAppSpec&&) = default;

  std::string name;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Adds a page; names must be unique. Returns its index.
  int AddPage(PageSchema page);

  int PageIndex(const std::string& name) const;  // -1 if unknown
  const PageSchema& page(int index) const { return pages_[index]; }
  /// Mutable access for construction-time rule insertion (parser/builders).
  PageSchema* mutable_page(int index) { return &pages_[index]; }
  int num_pages() const { return static_cast<int>(pages_.size()); }

  void set_home_page(int index) { home_page_ = index; }
  int home_page() const { return home_page_; }

  /// All constants (symbol ids) mentioned in any rule — the paper's CW.
  std::set<SymbolId> SpecConstants() const;

  /// Structural validation: arities, relation kinds, rule safety (head
  /// variables == body free variables), body atom arities, page atoms in
  /// rule bodies, sentence-ness of target rules, home page set. Returns
  /// hard errors.
  std::vector<std::string> Validate() const;

  /// `Validate()` as a structured error: OK when clean, otherwise
  /// FailedPrecondition listing every issue. The Status-returning
  /// construction paths (`Verifier::Create`, CLI loading) use this.
  Status ValidateStatus() const;

  /// Input-boundedness check of every rule (the completeness precondition;
  /// violations downgrade WAVE to a sound-but-incomplete verifier).
  std::vector<std::string> CheckInputBoundedness() const;

  /// Summary line used by benches ("19 pages, 4 database relations, ...").
  std::string StatsString() const;

 private:
  SymbolTable symbols_;
  Catalog catalog_;
  std::vector<PageSchema> pages_;
  std::map<std::string, int> page_index_;
  int home_page_ = 0;
};

}  // namespace wave

#endif  // WAVE_SPEC_WEB_APP_H_
