// Site-graph export: pages as nodes, target rules as edges. Useful for
// documenting a spec and for eyeballing reachability before verifying.
#ifndef WAVE_SPEC_GRAPH_H_
#define WAVE_SPEC_GRAPH_H_

#include <string>

#include "spec/web_app.h"

namespace wave {

/// Graphviz rendering of the page/transition graph. Edge labels show the
/// target conditions (truncated to `max_label` characters; 0 = no labels).
std::string SiteGraphDot(const WebAppSpec& spec, int max_label = 40);

/// Pages unreachable from the home page following target rules (an
/// over-approximation of reachability: conditions are ignored). Useful as
/// a lint: such pages are dead weight in every run.
std::vector<std::string> UnreachablePages(const WebAppSpec& spec);

}  // namespace wave

#endif  // WAVE_SPEC_GRAPH_H_
