#include "spec/prepared_spec.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace wave {

namespace {

std::vector<std::string> HeadVariables(const std::vector<Term>& head) {
  std::vector<std::string> vars;
  for (const Term& t : head) {
    if (t.is_variable() &&
        std::find(vars.begin(), vars.end(), t.variable) == vars.end()) {
      vars.push_back(t.variable);
    }
  }
  return vars;
}

PreparedRule PrepareRule(RelationId relation, const std::vector<Term>& head,
                         const FormulaPtr& body, const WebAppSpec& spec,
                         const PageResolver& pages) {
  PreparedRule rule;
  rule.relation = relation;
  rule.head = head;
  rule.head_vars = HeadVariables(head);
  rule.prepared =
      PreparedFormula::Prepare(body, spec.catalog(), rule.head_vars, pages);
  return rule;
}

}  // namespace

Tuple PreparedRule::InstantiateHead(
    const std::vector<SymbolId>& assignment) const {
  Tuple out(head.size());
  for (size_t i = 0; i < head.size(); ++i) {
    if (head[i].is_variable()) {
      auto it = std::find(head_vars.begin(), head_vars.end(),
                          head[i].variable);
      WAVE_CHECK(it != head_vars.end());
      out[i] = assignment[it - head_vars.begin()];
    } else {
      out[i] = head[i].constant;
    }
  }
  return out;
}

void PreparedRule::Derive(const ConfigurationView& view,
                          const std::vector<SymbolId>& domain,
                          std::vector<Tuple>* out) const {
  std::vector<Tuple> assignments;
  prepared.EnumerateSatisfying(view, domain, &assignments);
  for (const Tuple& a : assignments) out->push_back(InstantiateHead(a));
}

PreparedSpec::PreparedSpec(const WebAppSpec* spec) : spec_(spec) {
  PageResolver resolver = [spec](const std::string& name) {
    return spec->PageIndex(name);
  };
  for (int p = 0; p < spec->num_pages(); ++p) {
    const PageSchema& page = spec->page(p);
    PreparedPage out;
    out.inputs = page.inputs;
    for (const InputRule& r : page.input_rules) {
      out.input_rules.push_back(
          PrepareRule(r.relation, r.head, r.body, *spec, resolver));
    }
    for (const StateRule& r : page.state_rules) {
      (r.insert ? out.state_inserts : out.state_deletes)
          .push_back(PrepareRule(r.relation, r.head, r.body, *spec,
                                 resolver));
    }
    for (const ActionRule& r : page.action_rules) {
      out.action_rules.push_back(
          PrepareRule(r.relation, r.head, r.body, *spec, resolver));
    }
    for (const TargetRule& r : page.target_rules) {
      PreparedTarget t;
      t.target_page = r.target_page;
      t.condition = PreparedFormula::Prepare(r.condition, spec->catalog(),
                                             {}, resolver);
      out.targets.push_back(std::move(t));
    }
    pages_.push_back(std::move(out));
  }
  for (SymbolId c : spec->SpecConstants()) spec_constants_.push_back(c);
}

InputOptions PreparedSpec::ComputeOptions(
    const Configuration& config, const std::vector<SymbolId>& domain) const {
  ++exec_stats_.compute_options_calls;
  ConfigurationAdapter view(&config);
  InputOptions options;
  const PreparedPage& page = pages_[config.page];
  for (const PreparedRule& rule : page.input_rules) {
    std::vector<Tuple> tuples;
    rule.Derive(view, domain, &tuples);
    ++exec_stats_.rule_evaluations;
    exec_stats_.derived_tuples += static_cast<int64_t>(tuples.size());
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
    options[rule.relation] = std::move(tuples);
  }
  return options;
}

void PreparedSpec::ApplyInput(const InputChoice& choice,
                              const std::vector<SymbolId>& domain,
                              Configuration* config) const {
  ++exec_stats_.apply_input_calls;
  // Clear all input and action relations, then install the choice.
  const Catalog& catalog = spec_->catalog();
  for (RelationId id = 0; id < catalog.size(); ++id) {
    RelationKind kind = catalog.schema(id).kind;
    if (kind == RelationKind::kInput ||
        kind == RelationKind::kInputConstant ||
        kind == RelationKind::kAction) {
      config->data.relation(id).Clear();
    }
  }
  for (const auto& [relation, tuple] : choice) {
    config->data.relation(relation).Insert(tuple);
  }
  // Actions see the chosen input, previous input and current state.
  ConfigurationAdapter view(config);
  const PreparedPage& page = pages_[config->page];
  std::vector<std::pair<RelationId, Tuple>> derived;
  for (const PreparedRule& rule : page.action_rules) {
    std::vector<Tuple> tuples;
    rule.Derive(view, domain, &tuples);
    ++exec_stats_.rule_evaluations;
    exec_stats_.derived_tuples += static_cast<int64_t>(tuples.size());
    for (Tuple& t : tuples) derived.emplace_back(rule.relation, std::move(t));
  }
  for (const auto& [relation, tuple] : derived) {
    config->data.relation(relation).Insert(tuple);
  }
}

Configuration PreparedSpec::Advance(const Configuration& config,
                                    const std::vector<SymbolId>& domain) const {
  ++exec_stats_.advance_calls;
  ConfigurationAdapter view(&config);
  const PreparedPage& page = pages_[config.page];
  const Catalog& catalog = spec_->catalog();

  Configuration next;
  next.data = config.data;
  next.previous = Instance(&catalog);

  // Target page: exactly one satisfied condition moves; otherwise stay
  // ("if several conditions are true, no transition occurs").
  int target = -1;
  bool unique = true;
  std::vector<SymbolId> regs;
  for (const PreparedTarget& t : page.targets) {
    regs.assign(t.condition.num_slots(), kInvalidSymbol);
    if (t.condition.EvalClosed(view, domain, &regs)) {
      if (target == -1) {
        target = t.target_page;
      } else if (target != t.target_page) {
        unique = false;
      }
    }
  }
  next.page = (target != -1 && unique) ? target : config.page;

  // State update: evaluate all rules against the *current* configuration,
  // then apply insert/delete sets with insert∧delete conflicts as no-ops.
  std::set<std::pair<RelationId, Tuple>> inserts, deletes;
  for (const PreparedRule& rule : page.state_inserts) {
    std::vector<Tuple> tuples;
    rule.Derive(view, domain, &tuples);
    ++exec_stats_.rule_evaluations;
    exec_stats_.derived_tuples += static_cast<int64_t>(tuples.size());
    for (Tuple& t : tuples) inserts.emplace(rule.relation, std::move(t));
  }
  for (const PreparedRule& rule : page.state_deletes) {
    std::vector<Tuple> tuples;
    rule.Derive(view, domain, &tuples);
    ++exec_stats_.rule_evaluations;
    exec_stats_.derived_tuples += static_cast<int64_t>(tuples.size());
    for (Tuple& t : tuples) deletes.emplace(rule.relation, std::move(t));
  }
  for (const auto& entry : deletes) {
    if (inserts.count(entry) > 0) continue;  // conflict: no-op
    next.data.relation(entry.first).Erase(entry.second);
  }
  for (const auto& entry : inserts) {
    if (deletes.count(entry) > 0) continue;  // conflict: no-op
    next.data.relation(entry.first).Insert(entry.second);
  }

  // Previous inputs of the successor are the current inputs; clear the
  // current input and action relations (they belong to the new step).
  for (RelationId id = 0; id < catalog.size(); ++id) {
    RelationKind kind = catalog.schema(id).kind;
    if (kind == RelationKind::kInput ||
        kind == RelationKind::kInputConstant) {
      next.previous.relation(id) = config.data.relation(id);
      next.data.relation(id).Clear();
    } else if (kind == RelationKind::kAction) {
      next.data.relation(id).Clear();
    }
  }
  return next;
}

Configuration PreparedSpec::MakeInitial(const Instance& database) const {
  const Catalog& catalog = spec_->catalog();
  Configuration config;
  config.page = spec_->home_page();
  config.data = Instance(&catalog);
  config.previous = Instance(&catalog);
  for (RelationId id = 0; id < catalog.size(); ++id) {
    if (catalog.schema(id).kind == RelationKind::kDatabase) {
      config.data.relation(id) = database.relation(id);
    }
  }
  return config;
}

std::vector<SymbolId> PreparedSpec::EvaluationDomain(
    const Configuration& config, const std::vector<SymbolId>& extra) const {
  std::vector<SymbolId> domain = config.data.ActiveDomain();
  std::vector<SymbolId> prev = config.previous.ActiveDomain();
  domain.insert(domain.end(), prev.begin(), prev.end());
  domain.insert(domain.end(), spec_constants_.begin(), spec_constants_.end());
  domain.insert(domain.end(), extra.begin(), extra.end());
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

}  // namespace wave
