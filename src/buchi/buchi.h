// Büchi automata with transitions guarded by conjunctions of propositional
// literals (the flavour used by SPIN and by the paper's ndfs search:
// "(s, δ, t) states that A may transition from s1 to s2 if the current
// input is a satisfying assignment for δ").
#ifndef WAVE_BUCHI_BUCHI_H_
#define WAVE_BUCHI_BUCHI_H_

#include <functional>
#include <string>
#include <vector>

namespace wave {

/// One propositional literal of a transition guard.
struct Literal {
  int prop = 0;
  bool positive = true;

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.prop == b.prop && a.positive == b.positive;
  }
  friend bool operator<(const Literal& a, const Literal& b) {
    if (a.prop != b.prop) return a.prop < b.prop;
    return a.positive < b.positive;
  }
};

/// Conjunction of literals; empty guard == true. Kept sorted and
/// duplicate-free (see `NormalizeGuard`).
using Guard = std::vector<Literal>;

/// Sorts and dedups; returns false if the guard is contradictory (contains
/// both a literal and its negation), in which case the transition should be
/// dropped.
bool NormalizeGuard(Guard* guard);

/// True if `assignment` (one bool per proposition) satisfies the guard.
bool GuardSatisfied(const Guard& guard, const std::vector<bool>& assignment);

struct BuchiTransition {
  int to = 0;
  Guard guard;

  friend bool operator==(const BuchiTransition& a, const BuchiTransition& b) {
    return a.to == b.to && a.guard == b.guard;
  }
  friend bool operator<(const BuchiTransition& a, const BuchiTransition& b) {
    if (a.to != b.to) return a.to < b.to;
    return a.guard < b.guard;
  }
};

/// Nondeterministic Büchi automaton over truth assignments of `num_props`
/// propositions. A run is accepting iff it visits an accepting state
/// infinitely often.
struct BuchiAutomaton {
  int num_props = 0;
  int start = 0;
  std::vector<std::vector<BuchiTransition>> adj;  // by source state
  std::vector<bool> accepting;

  int NumStates() const { return static_cast<int>(adj.size()); }
  int NumTransitions() const;

  /// Drops states unreachable from `start` (renumbering the rest).
  void RemoveUnreachable();

  /// Canonicalizes acceptance: a state that cannot reach itself lies on no
  /// cycle, so its acceptance flag is irrelevant; clear it. Enables merges.
  void ClearAcceptanceOffCycles();

  /// Drops transitions whose guard is subsumed by a weaker guard to the
  /// same target (g1 ⊆ g2 with equal targets makes g2 redundant).
  void RemoveSubsumedTransitions();

  /// Merges states that are equivalent under repeated partition refinement
  /// over (accepting, labelled successor partitions).
  void MergeEquivalentStates();

  /// Removes states from which no accepting cycle is reachable. May remove
  /// the start state's successors; if the start itself dies the automaton
  /// becomes empty (one non-accepting state with no transitions).
  void PruneDeadStates();

  /// All of the above, to fixpoint.
  void Simplify();

  /// True if no accepting lasso exists at all (empty language), assuming
  /// guards are satisfiable (they are normalized).
  bool IsEmptyLanguage() const;

  /// Graphviz rendering; `prop_name` may be null (then "P<i>").
  std::string ToDot(const std::function<std::string(int)>& prop_name) const;
};

}  // namespace wave

#endif  // WAVE_BUCHI_BUCHI_H_
