#include "buchi/prop_ltl.h"

#include "common/check.h"

namespace wave {

PropId PropArena::Intern(Node n) {
  auto key = std::make_tuple(static_cast<uint8_t>(n.kind), n.prop, n.left,
                             n.right);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  PropId id = static_cast<PropId>(nodes_.size());
  nodes_.push_back(n);
  index_.emplace(key, id);
  return id;
}

PropId PropArena::True() { return Intern({Kind::kTrue}); }
PropId PropArena::False() { return Intern({Kind::kFalse}); }
PropId PropArena::Prop(int prop) {
  Node n{Kind::kProp};
  n.prop = prop;
  return Intern(n);
}
PropId PropArena::Not(PropId f) {
  Node n{Kind::kNot};
  n.left = f;
  return Intern(n);
}
PropId PropArena::And(PropId l, PropId r) {
  Node n{Kind::kAnd};
  n.left = l;
  n.right = r;
  return Intern(n);
}
PropId PropArena::Or(PropId l, PropId r) {
  Node n{Kind::kOr};
  n.left = l;
  n.right = r;
  return Intern(n);
}
PropId PropArena::Implies(PropId l, PropId r) {
  Node n{Kind::kImplies};
  n.left = l;
  n.right = r;
  return Intern(n);
}
PropId PropArena::X(PropId f) {
  Node n{Kind::kX};
  n.left = f;
  return Intern(n);
}
PropId PropArena::U(PropId l, PropId r) {
  Node n{Kind::kU};
  n.left = l;
  n.right = r;
  return Intern(n);
}
PropId PropArena::R(PropId l, PropId r) {
  Node n{Kind::kR};
  n.left = l;
  n.right = r;
  return Intern(n);
}
PropId PropArena::G(PropId f) {
  Node n{Kind::kG};
  n.left = f;
  return Intern(n);
}
PropId PropArena::F(PropId f) {
  Node n{Kind::kF};
  n.left = f;
  return Intern(n);
}
PropId PropArena::B(PropId l, PropId r) {
  Node n{Kind::kB};
  n.left = l;
  n.right = r;
  return Intern(n);
}

PropId PropArena::Nnf(PropId f, bool negate) {
  Node n = nodes_[f];  // copy: interning below may reallocate nodes_
  switch (n.kind) {
    case Kind::kTrue:
      return negate ? False() : True();
    case Kind::kFalse:
      return negate ? True() : False();
    case Kind::kProp:
      return negate ? Not(f) : f;
    case Kind::kNot:
      return Nnf(n.left, !negate);
    case Kind::kAnd: {
      PropId l = Nnf(n.left, negate);
      PropId r = Nnf(n.right, negate);
      return negate ? Or(l, r) : And(l, r);
    }
    case Kind::kOr: {
      PropId l = Nnf(n.left, negate);
      PropId r = Nnf(n.right, negate);
      return negate ? And(l, r) : Or(l, r);
    }
    case Kind::kImplies: {
      // a -> b == !a | b
      PropId l = Nnf(n.left, !negate);
      PropId r = Nnf(n.right, negate);
      return negate ? And(Nnf(n.left, false), r) : Or(l, r);
    }
    case Kind::kX:
      return X(Nnf(n.left, negate));
    case Kind::kU: {
      PropId l = Nnf(n.left, negate);
      PropId r = Nnf(n.right, negate);
      return negate ? R(l, r) : U(l, r);
    }
    case Kind::kR: {
      PropId l = Nnf(n.left, negate);
      PropId r = Nnf(n.right, negate);
      return negate ? U(l, r) : R(l, r);
    }
    case Kind::kG:
      // G p = false R p ; !G p = true U !p
      return negate ? U(True(), Nnf(n.left, true))
                    : R(False(), Nnf(n.left, false));
    case Kind::kF:
      // F p = true U p ; !F p = false R !p
      return negate ? R(False(), Nnf(n.left, true))
                    : U(True(), Nnf(n.left, false));
    case Kind::kB:
      // p B q == !(!p U q):  NNF = p R !q ; negation = !p U q.
      return negate ? U(Nnf(n.left, true), Nnf(n.right, false))
                    : R(Nnf(n.left, false), Nnf(n.right, true));
  }
  WAVE_CHECK(false);
  return -1;
}

std::string PropArena::ToString(
    PropId f, const std::function<std::string(int)>& prop_name) const {
  const Node& n = nodes_[f];
  switch (n.kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kProp:
      return prop_name ? prop_name(n.prop) : "P" + std::to_string(n.prop);
    case Kind::kNot:
      return "!" + ToString(n.left, prop_name);
    case Kind::kAnd:
      return "(" + ToString(n.left, prop_name) + " & " +
             ToString(n.right, prop_name) + ")";
    case Kind::kOr:
      return "(" + ToString(n.left, prop_name) + " | " +
             ToString(n.right, prop_name) + ")";
    case Kind::kImplies:
      return "(" + ToString(n.left, prop_name) + " -> " +
             ToString(n.right, prop_name) + ")";
    case Kind::kX:
      return "X" + ToString(n.left, prop_name);
    case Kind::kU:
      return "(" + ToString(n.left, prop_name) + " U " +
             ToString(n.right, prop_name) + ")";
    case Kind::kR:
      return "(" + ToString(n.left, prop_name) + " R " +
             ToString(n.right, prop_name) + ")";
    case Kind::kG:
      return "G" + ToString(n.left, prop_name);
    case Kind::kF:
      return "F" + ToString(n.left, prop_name);
    case Kind::kB:
      return "(" + ToString(n.left, prop_name) + " B " +
             ToString(n.right, prop_name) + ")";
  }
  WAVE_CHECK(false);
  return "";
}

}  // namespace wave
