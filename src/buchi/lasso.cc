#include "buchi/lasso.h"

#include <map>

#include "common/check.h"

namespace wave {

namespace {

/// Flattened lasso positions: 0..n-1 prefix, n..n+k-1 cycle; the successor
/// of the last position wraps to n.
struct Positions {
  explicit Positions(const LassoWord& word)
      : n(static_cast<int>(word.prefix.size())),
        k(static_cast<int>(word.cycle.size())) {
    WAVE_CHECK_MSG(k > 0, "lasso cycle must be non-empty");
  }
  int n, k;
  int total() const { return n + k; }
  int Next(int i) const { return i + 1 < total() ? i + 1 : n; }
  const std::vector<bool>& Letter(const LassoWord& word, int i) const {
    return i < n ? word.prefix[i] : word.cycle[i - n];
  }
};

class LassoEvaluator {
 public:
  LassoEvaluator(PropArena* arena, const LassoWord& word)
      : arena_(arena), word_(word), pos_(word) {}

  /// Truth vector of `f` over all positions.
  const std::vector<bool>& Eval(PropId f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    std::vector<bool> val(pos_.total(), false);
    // By value: recursive Eval calls below (kG/kF/kB rewrite through the
    // arena) can Intern new nodes and reallocate the arena's node vector,
    // which would invalidate a reference taken here.
    const PropArena::Node n = arena_->node(f);
    switch (n.kind) {
      case PropArena::Kind::kTrue:
        val.assign(pos_.total(), true);
        break;
      case PropArena::Kind::kFalse:
        break;
      case PropArena::Kind::kProp:
        for (int i = 0; i < pos_.total(); ++i) {
          const std::vector<bool>& letter = pos_.Letter(word_, i);
          WAVE_CHECK(n.prop < static_cast<int>(letter.size()));
          val[i] = letter[n.prop];
        }
        break;
      case PropArena::Kind::kNot: {
        const std::vector<bool>& c = Eval(n.left);
        for (int i = 0; i < pos_.total(); ++i) val[i] = !c[i];
        break;
      }
      case PropArena::Kind::kAnd: {
        const std::vector<bool> l = Eval(n.left);
        const std::vector<bool>& r = Eval(n.right);
        for (int i = 0; i < pos_.total(); ++i) val[i] = l[i] && r[i];
        break;
      }
      case PropArena::Kind::kOr: {
        const std::vector<bool> l = Eval(n.left);
        const std::vector<bool>& r = Eval(n.right);
        for (int i = 0; i < pos_.total(); ++i) val[i] = l[i] || r[i];
        break;
      }
      case PropArena::Kind::kImplies: {
        const std::vector<bool> l = Eval(n.left);
        const std::vector<bool>& r = Eval(n.right);
        for (int i = 0; i < pos_.total(); ++i) val[i] = !l[i] || r[i];
        break;
      }
      case PropArena::Kind::kX: {
        const std::vector<bool>& c = Eval(n.left);
        for (int i = 0; i < pos_.total(); ++i) val[i] = c[pos_.Next(i)];
        break;
      }
      case PropArena::Kind::kU: {
        // Least fixpoint of val[i] = r[i] | (l[i] & val[next]).
        const std::vector<bool> l = Eval(n.left);
        const std::vector<bool> r = Eval(n.right);
        val = Fixpoint(l, r, /*is_until=*/true);
        break;
      }
      case PropArena::Kind::kR: {
        // Greatest fixpoint of val[i] = r[i] & (l[i] | val[next]).
        const std::vector<bool> l = Eval(n.left);
        const std::vector<bool> r = Eval(n.right);
        val = Fixpoint(l, r, /*is_until=*/false);
        break;
      }
      case PropArena::Kind::kG:
        return Eval(arena_->R(arena_->False(), n.left));
      case PropArena::Kind::kF:
        return Eval(arena_->U(arena_->True(), n.left));
      case PropArena::Kind::kB:
        // p B q == !(!p U q)
        return Eval(arena_->Not(arena_->U(arena_->Not(n.left), n.right)));
    }
    return memo_.emplace(f, std::move(val)).first->second;
  }

 private:
  std::vector<bool> Fixpoint(const std::vector<bool>& l,
                             const std::vector<bool>& r, bool is_until) {
    std::vector<bool> val(pos_.total(), !is_until);
    bool changed = true;
    while (changed) {
      changed = false;
      for (int i = pos_.total() - 1; i >= 0; --i) {
        bool next = val[pos_.Next(i)];
        bool v = is_until ? (r[i] || (l[i] && next))
                          : (r[i] && (l[i] || next));
        if (v != val[i]) {
          val[i] = v;
          changed = true;
        }
      }
    }
    return val;
  }

  PropArena* arena_;
  const LassoWord& word_;
  Positions pos_;
  std::map<PropId, std::vector<bool>> memo_;
};

}  // namespace

bool EvalLtlOnLasso(PropArena* arena, PropId f, const LassoWord& word) {
  LassoEvaluator evaluator(arena, word);
  return evaluator.Eval(f)[0];
}

bool AcceptsLasso(const BuchiAutomaton& automaton, const LassoWord& word) {
  Positions pos(word);
  int total = pos.total();
  int num_product = automaton.NumStates() * total;
  auto id = [&](int state, int i) { return state * total + i; };

  // Forward reachability from (start, 0).
  std::vector<bool> reachable(num_product, false);
  std::vector<int> stack = {id(automaton.start, 0)};
  reachable[stack[0]] = true;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    int state = node / total, i = node % total;
    const std::vector<bool>& letter = pos.Letter(word, i);
    for (const BuchiTransition& t : automaton.adj[state]) {
      if (!GuardSatisfied(t.guard, letter)) continue;
      int next = id(t.to, pos.Next(i));
      if (!reachable[next]) {
        reachable[next] = true;
        stack.push_back(next);
      }
    }
  }

  // A lasso is accepted iff some reachable product node with an accepting
  // automaton state (in the cycle region) can reach itself.
  for (int state = 0; state < automaton.NumStates(); ++state) {
    if (!automaton.accepting[state]) continue;
    for (int i = pos.n; i < total; ++i) {
      int seed = id(state, i);
      if (!reachable[seed]) continue;
      // BFS from seed looking for a return to seed.
      std::vector<bool> seen(num_product, false);
      std::vector<int> frontier = {seed};
      bool found = false;
      while (!frontier.empty() && !found) {
        int node = frontier.back();
        frontier.pop_back();
        int s = node / total, j = node % total;
        const std::vector<bool>& letter = pos.Letter(word, j);
        for (const BuchiTransition& t : automaton.adj[s]) {
          if (!GuardSatisfied(t.guard, letter)) continue;
          int next = id(t.to, pos.Next(j));
          if (next == seed) {
            found = true;
            break;
          }
          if (!seen[next]) {
            seen[next] = true;
            frontier.push_back(next);
          }
        }
      }
      if (found) return true;
    }
  }
  return false;
}

}  // namespace wave
