#include "buchi/buchi.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace wave {

bool NormalizeGuard(Guard* guard) {
  std::sort(guard->begin(), guard->end());
  guard->erase(std::unique(guard->begin(), guard->end()), guard->end());
  for (size_t i = 0; i + 1 < guard->size(); ++i) {
    if ((*guard)[i].prop == (*guard)[i + 1].prop &&
        (*guard)[i].positive != (*guard)[i + 1].positive) {
      return false;  // contradictory
    }
  }
  return true;
}

bool GuardSatisfied(const Guard& guard, const std::vector<bool>& assignment) {
  for (const Literal& lit : guard) {
    WAVE_CHECK(lit.prop >= 0 &&
               lit.prop < static_cast<int>(assignment.size()));
    if (assignment[lit.prop] != lit.positive) return false;
  }
  return true;
}

int BuchiAutomaton::NumTransitions() const {
  int n = 0;
  for (const auto& ts : adj) n += static_cast<int>(ts.size());
  return n;
}

namespace {

/// Applies a state renumbering: `keep[s]` is the new id of s or -1 to drop.
void Renumber(BuchiAutomaton* a, const std::vector<int>& keep,
              int new_count) {
  std::vector<std::vector<BuchiTransition>> adj(new_count);
  std::vector<bool> accepting(new_count, false);
  for (int s = 0; s < a->NumStates(); ++s) {
    if (keep[s] < 0) continue;
    accepting[keep[s]] = a->accepting[s];
    for (const BuchiTransition& t : a->adj[s]) {
      if (keep[t.to] < 0) continue;
      adj[keep[s]].push_back({keep[t.to], t.guard});
    }
  }
  for (auto& ts : adj) {
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  }
  a->adj = std::move(adj);
  a->accepting = std::move(accepting);
  a->start = keep[a->start];
  WAVE_CHECK(a->start >= 0);
}

/// Ensures the automaton has at least a start state.
void EnsureNonDegenerate(BuchiAutomaton* a) {
  if (a->NumStates() == 0) {
    a->adj.resize(1);
    a->accepting.assign(1, false);
    a->start = 0;
  }
}

std::vector<bool> ReachableFromStart(const BuchiAutomaton& a) {
  std::vector<bool> seen(a.NumStates(), false);
  std::vector<int> stack = {a.start};
  seen[a.start] = true;
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const BuchiTransition& t : a.adj[s]) {
      if (!seen[t.to]) {
        seen[t.to] = true;
        stack.push_back(t.to);
      }
    }
  }
  return seen;
}

/// Tarjan SCC; returns component index per state and component count.
int StronglyConnectedComponents(const BuchiAutomaton& a,
                                std::vector<int>* comp) {
  int n = a.NumStates();
  comp->assign(n, -1);
  std::vector<int> index(n, -1), low(n, 0), on_stack(n, 0);
  std::vector<int> stack;
  int next_index = 0, num_comp = 0;

  // Iterative Tarjan (explicit call stack) to avoid deep recursion.
  struct Frame {
    int v;
    size_t edge;
  };
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames = {{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < a.adj[f.v].size()) {
        int w = a.adj[f.v][f.edge++].to;
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          int w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            (*comp)[w] = num_comp;
          } while (w != f.v);
          ++num_comp;
        }
        int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return num_comp;
}

/// True if state `s` lies on some cycle (nontrivial SCC or a self-loop).
std::vector<bool> OnCycle(const BuchiAutomaton& a) {
  std::vector<int> comp;
  StronglyConnectedComponents(a, &comp);
  std::vector<int> comp_size(a.NumStates(), 0);
  for (int c : comp) comp_size[c]++;
  std::vector<bool> on_cycle(a.NumStates(), false);
  for (int s = 0; s < a.NumStates(); ++s) {
    if (comp_size[comp[s]] > 1) {
      on_cycle[s] = true;
    } else {
      for (const BuchiTransition& t : a.adj[s]) {
        if (t.to == s) on_cycle[s] = true;
      }
    }
  }
  return on_cycle;
}

}  // namespace

void BuchiAutomaton::RemoveUnreachable() {
  std::vector<bool> seen = ReachableFromStart(*this);
  std::vector<int> keep(NumStates(), -1);
  int next = 0;
  for (int s = 0; s < NumStates(); ++s) {
    if (seen[s]) keep[s] = next++;
  }
  Renumber(this, keep, next);
  EnsureNonDegenerate(this);
}

void BuchiAutomaton::ClearAcceptanceOffCycles() {
  std::vector<bool> on_cycle = OnCycle(*this);
  for (int s = 0; s < NumStates(); ++s) {
    if (!on_cycle[s]) accepting[s] = false;
  }
}

void BuchiAutomaton::RemoveSubsumedTransitions() {
  for (auto& ts : adj) {
    std::vector<BuchiTransition> kept;
    for (const BuchiTransition& t : ts) {
      bool subsumed = false;
      for (const BuchiTransition& other : ts) {
        if (&other == &t || other.to != t.to) continue;
        // `other` subsumes `t` if other's guard is a subset of t's guard
        // (weaker condition, fires whenever t does). Break guard-equality
        // ties by address to keep exactly one copy.
        bool subset = std::includes(t.guard.begin(), t.guard.end(),
                                    other.guard.begin(), other.guard.end());
        if (subset && (other.guard != t.guard || &other < &t)) {
          subsumed = true;
          break;
        }
      }
      if (!subsumed) kept.push_back(t);
    }
    ts = std::move(kept);
  }
}

void BuchiAutomaton::MergeEquivalentStates() {
  int n = NumStates();
  std::vector<int> part(n);
  for (int s = 0; s < n; ++s) part[s] = accepting[s] ? 1 : 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current class, sorted set of (guard, successor class)).
    std::map<std::pair<int, std::set<std::pair<Guard, int>>>, int> classes;
    std::vector<int> next_part(n);
    for (int s = 0; s < n; ++s) {
      std::set<std::pair<Guard, int>> succs;
      for (const BuchiTransition& t : adj[s]) {
        succs.emplace(t.guard, part[t.to]);
      }
      auto key = std::make_pair(part[s], std::move(succs));
      auto it =
          classes.emplace(std::move(key), static_cast<int>(classes.size()))
              .first;
      next_part[s] = it->second;
    }
    if (next_part != part) {
      part = std::move(next_part);
      changed = true;
    }
  }
  // Acceptance folding: a state not on any cycle is visited finitely often
  // by every run, so its acceptance flag is irrelevant; fold it into any
  // class with the same successor signature even if acceptance differs.
  {
    std::vector<bool> on_cycle = OnCycle(*this);
    // Normalize first so folding can never manufacture acceptance.
    for (int s = 0; s < n; ++s) {
      if (!on_cycle[s]) accepting[s] = false;
    }
    bool folded = true;
    while (folded) {
      folded = false;
      std::map<std::set<std::pair<Guard, int>>, int> by_signature;
      std::vector<std::set<std::pair<Guard, int>>> signature(n);
      for (int s = 0; s < n; ++s) {
        for (const BuchiTransition& t : adj[s]) {
          signature[s].emplace(t.guard, part[t.to]);
        }
        if (on_cycle[s]) by_signature.emplace(signature[s], part[s]);
      }
      for (int s = 0; s < n; ++s) {
        if (on_cycle[s]) continue;
        auto it = by_signature.find(signature[s]);
        if (it != by_signature.end() && part[s] != it->second) {
          part[s] = it->second;
          folded = true;
        }
      }
    }
  }
  // Keep one representative per class.
  int num_classes = 0;
  for (int p : part) num_classes = std::max(num_classes, p + 1);
  std::vector<int> rep(num_classes, -1);
  std::vector<int> keep(n, -1);
  int next = 0;
  for (int s = 0; s < n; ++s) {
    if (rep[part[s]] == -1) {
      rep[part[s]] = next;
      keep[s] = next++;
    }
  }
  std::vector<std::vector<BuchiTransition>> new_adj(next);
  std::vector<bool> new_acc(next, false);
  for (int s = 0; s < n; ++s) {
    int cls = rep[part[s]];
    // OR: folded off-cycle members must not clear an accepting class.
    new_acc[cls] = new_acc[cls] || accepting[s];
    for (const BuchiTransition& t : adj[s]) {
      new_adj[cls].push_back({rep[part[t.to]], t.guard});
    }
  }
  for (auto& ts : new_adj) {
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  }
  adj = std::move(new_adj);
  accepting = std::move(new_acc);
  start = rep[part[start]];
}

void BuchiAutomaton::PruneDeadStates() {
  // States on an accepting cycle.
  std::vector<int> comp;
  StronglyConnectedComponents(*this, &comp);
  std::vector<int> comp_size(NumStates(), 0);
  for (int c : comp) comp_size[c]++;
  std::vector<bool> live(NumStates(), false);
  for (int s = 0; s < NumStates(); ++s) {
    if (!accepting[s]) continue;
    bool on_cycle = comp_size[comp[s]] > 1;
    if (!on_cycle) {
      for (const BuchiTransition& t : adj[s]) {
        if (t.to == s) on_cycle = true;
      }
    }
    if (on_cycle) live[s] = true;
  }
  // Backward closure: a state is live if it reaches a live state. Iterate
  // to fixpoint (automata are small).
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < NumStates(); ++s) {
      if (live[s]) continue;
      for (const BuchiTransition& t : adj[s]) {
        if (live[t.to]) {
          live[s] = true;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<int> keep(NumStates(), -1);
  int next = 0;
  // Always keep the start state so the automaton stays well-formed.
  for (int s = 0; s < NumStates(); ++s) {
    if (live[s] || s == start) keep[s] = next++;
  }
  Renumber(this, keep, next);
  EnsureNonDegenerate(this);
}

void BuchiAutomaton::Simplify() {
  // Cheap fixpoint: each pass only shrinks the automaton.
  int prev_states = -1, prev_transitions = -1;
  while (prev_states != NumStates() || prev_transitions != NumTransitions()) {
    prev_states = NumStates();
    prev_transitions = NumTransitions();
    RemoveUnreachable();
    RemoveSubsumedTransitions();
    ClearAcceptanceOffCycles();
    MergeEquivalentStates();
    PruneDeadStates();
  }
}

bool BuchiAutomaton::IsEmptyLanguage() const {
  BuchiAutomaton copy = *this;
  copy.RemoveUnreachable();
  std::vector<int> comp;
  StronglyConnectedComponents(copy, &comp);
  std::vector<int> comp_size(copy.NumStates(), 0);
  for (int c : comp) comp_size[c]++;
  for (int s = 0; s < copy.NumStates(); ++s) {
    if (!copy.accepting[s]) continue;
    if (comp_size[comp[s]] > 1) return false;
    for (const BuchiTransition& t : copy.adj[s]) {
      if (t.to == s) return false;
    }
  }
  return true;
}

std::string BuchiAutomaton::ToDot(
    const std::function<std::string(int)>& prop_name) const {
  std::string out = "digraph buchi {\n  rankdir=LR;\n";
  out += "  init [shape=point];\n";
  for (int s = 0; s < NumStates(); ++s) {
    out += "  s" + std::to_string(s) + " [shape=" +
           (accepting[s] ? "doublecircle" : "circle") + "];\n";
  }
  out += "  init -> s" + std::to_string(start) + ";\n";
  for (int s = 0; s < NumStates(); ++s) {
    for (const BuchiTransition& t : adj[s]) {
      std::string label;
      if (t.guard.empty()) {
        label = "true";
      } else {
        for (size_t i = 0; i < t.guard.size(); ++i) {
          if (i > 0) label += " & ";
          if (!t.guard[i].positive) label += "!";
          label += prop_name ? prop_name(t.guard[i].prop)
                             : "P" + std::to_string(t.guard[i].prop);
        }
      }
      out += "  s" + std::to_string(s) + " -> s" + std::to_string(t.to) +
             " [label=\"" + label + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace wave
