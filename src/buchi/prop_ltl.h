// Propositional LTL with hash-consed nodes.
//
// `phi_aux` — the propositional abstraction of an LTL-FO property where
// each maximal FO component becomes a proposition (paper Section 3, Step 1)
// — is represented here. Hash-consing makes structural equality pointer
// (id) equality, which the GPVW tableau construction relies on for its
// formula sets.
#ifndef WAVE_BUCHI_PROP_LTL_H_
#define WAVE_BUCHI_PROP_LTL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace wave {

/// Node id within a `PropArena`; ids are stable for the arena's lifetime.
using PropId = int32_t;

/// Arena of hash-consed propositional LTL nodes.
///
/// `Nnf` rewrites to negation normal form over the core connectives
/// {true, false, literal, and, or, X, U, R}; the derived operators
/// G, F, B and implication are expanded there:
///   G p = false R p,  F p = true U p,  p B q = p R !q  (== !(!p U q)).
class PropArena {
 public:
  enum class Kind : uint8_t {
    kTrue,
    kFalse,
    kProp,   // proposition `prop`
    kNot,
    kAnd,
    kOr,
    kImplies,
    kX,
    kU,
    kR,   // release (dual of U)
    kG,
    kF,
    kB,   // before (paper footnote 1): p B q == !( !p U q )
  };

  struct Node {
    Kind kind;
    int prop = -1;      // kProp
    PropId left = -1;   // unary body / binary lhs
    PropId right = -1;  // binary rhs
  };

  PropArena() = default;

  PropId True();
  PropId False();
  PropId Prop(int prop);
  PropId Not(PropId f);
  PropId And(PropId l, PropId r);
  PropId Or(PropId l, PropId r);
  PropId Implies(PropId l, PropId r);
  PropId X(PropId f);
  PropId U(PropId l, PropId r);
  PropId R(PropId l, PropId r);
  PropId G(PropId f);
  PropId F(PropId f);
  PropId B(PropId l, PropId r);

  const Node& node(PropId id) const { return nodes_[id]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Negation normal form (negating first when `negate`). The result uses
  /// only kTrue/kFalse/kProp/kNot-over-kProp/kAnd/kOr/kX/kU/kR.
  PropId Nnf(PropId f, bool negate = false);

  /// Renders using `prop_name` for propositions.
  std::string ToString(PropId f,
                       const std::function<std::string(int)>& prop_name) const;

 private:
  PropId Intern(Node n);

  std::vector<Node> nodes_;
  std::map<std::tuple<uint8_t, int, PropId, PropId>, PropId> index_;
};

}  // namespace wave

#endif  // WAVE_BUCHI_PROP_LTL_H_
