#include "buchi/gpvw.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/check.h"
#include "obs/alloc.h"

namespace wave {

namespace {

using NodeSet = std::set<PropId>;

/// A tableau node in the GPVW expansion. `name` is assigned only when the
/// node completes (New empty) and is registered — split copies of a node in
/// progress must not share an identity.
struct GNode {
  int name = -2;  // unassigned until completion
  std::set<int> incoming;  // node names; kInitName denotes the initial edge
  NodeSet nnew;            // obligations still to process
  NodeSet old;             // processed obligations (define the state label)
  NodeSet next;            // obligations for the successor state
};

constexpr int kInitName = -1;

class Expander {
 public:
  Expander(PropArena* arena, PropId root) : arena_(arena) {
    GNode init;
    init.incoming.insert(kInitName);
    init.nnew.insert(root);
    // Worklist instead of recursion across nodes: successor nodes are
    // queued, only the obligation-processing within one node recurses
    // (depth bounded by the formula's closure size).
    pending_.push_back(std::move(init));
    while (!pending_.empty()) {
      GNode node = std::move(pending_.front());
      pending_.pop_front();
      Expand(std::move(node));
    }
  }

  const std::vector<GNode>& nodes() const { return done_; }

 private:
  const PropArena::Node& N(PropId id) const { return arena_->node(id); }

  /// Negation of an NNF leaf/literal, for the contradiction check.
  PropId NegLiteral(PropId f) {
    const PropArena::Node& n = N(f);
    if (n.kind == PropArena::Kind::kNot) return n.left;
    WAVE_CHECK(n.kind == PropArena::Kind::kProp);
    return arena_->Not(f);
  }

  bool IsLiteral(PropId f) {
    switch (N(f).kind) {
      case PropArena::Kind::kProp:
      case PropArena::Kind::kNot:
      case PropArena::Kind::kTrue:
      case PropArena::Kind::kFalse:
        return true;
      default:
        return false;
    }
  }

  void Expand(GNode node) {
    if (node.nnew.empty()) {
      // A fully processed node: merge with an existing node having the same
      // Old and Next sets, else register it and start its successor.
      for (GNode& nd : done_) {
        if (nd.old == node.old && nd.next == node.next) {
          nd.incoming.insert(node.incoming.begin(), node.incoming.end());
          return;
        }
      }
      node.name = next_name_++;
      GNode succ;
      succ.incoming.insert(node.name);
      succ.nnew = node.next;
      obs::CountAlloc(static_cast<int64_t>(sizeof(GNode)));
      done_.push_back(std::move(node));
      pending_.push_back(std::move(succ));
      return;
    }
    PropId f = *node.nnew.begin();
    node.nnew.erase(node.nnew.begin());
    const PropArena::Node& n = N(f);
    if (IsLiteral(f)) {
      if (n.kind == PropArena::Kind::kFalse) return;  // contradiction
      if (n.kind != PropArena::Kind::kTrue) {
        if (node.old.count(NegLiteral(f)) > 0) return;  // p & !p
        node.old.insert(f);
      }
      Expand(std::move(node));
      return;
    }
    switch (n.kind) {
      case PropArena::Kind::kAnd: {
        if (node.old.count(n.left) == 0) node.nnew.insert(n.left);
        if (node.old.count(n.right) == 0) node.nnew.insert(n.right);
        node.old.insert(f);
        Expand(std::move(node));
        return;
      }
      case PropArena::Kind::kOr: {
        GNode n1 = node, n2 = node;
        if (n1.old.count(n.left) == 0) n1.nnew.insert(n.left);
        n1.old.insert(f);
        if (n2.old.count(n.right) == 0) n2.nnew.insert(n.right);
        n2.old.insert(f);
        Expand(std::move(n1));
        Expand(std::move(n2));
        return;
      }
      case PropArena::Kind::kU: {
        // f = l U r:  (l ∧ X f)  ∨  r
        GNode n1 = node, n2 = node;
        if (n1.old.count(n.left) == 0) n1.nnew.insert(n.left);
        n1.next.insert(f);
        n1.old.insert(f);
        if (n2.old.count(n.right) == 0) n2.nnew.insert(n.right);
        n2.old.insert(f);
        Expand(std::move(n1));
        Expand(std::move(n2));
        return;
      }
      case PropArena::Kind::kR: {
        // f = l R r:  (r ∧ X f)  ∨  (l ∧ r)
        GNode n1 = node, n2 = node;
        if (n1.old.count(n.right) == 0) n1.nnew.insert(n.right);
        n1.next.insert(f);
        n1.old.insert(f);
        if (n2.old.count(n.left) == 0) n2.nnew.insert(n.left);
        if (n2.old.count(n.right) == 0) n2.nnew.insert(n.right);
        n2.old.insert(f);
        Expand(std::move(n1));
        Expand(std::move(n2));
        return;
      }
      case PropArena::Kind::kX: {
        node.next.insert(n.left);
        node.old.insert(f);
        Expand(std::move(node));
        return;
      }
      default:
        WAVE_CHECK_MSG(false, "non-NNF node in GPVW expansion");
    }
  }

  PropArena* arena_;
  int next_name_ = 0;
  std::vector<GNode> done_;
  std::deque<GNode> pending_;
};

}  // namespace

BuchiAutomaton LtlToBuchi(PropArena* arena, PropId f, int num_props,
                          const GpvwOptions& options) {
  PropId nnf = arena->Nnf(f);

  Expander expander(arena, nnf);
  const std::vector<GNode>& nodes = expander.nodes();

  // Collect all U-subformulas appearing in any node — these induce the
  // generalized acceptance sets F_{lUr} = { q : lUr ∉ Old(q) or r ∈ Old(q) }.
  std::set<PropId> until_formulas;
  for (const GNode& nd : nodes) {
    for (PropId g : nd.old) {
      if (arena->node(g).kind == PropArena::Kind::kU) {
        until_formulas.insert(g);
      }
    }
    for (PropId g : nd.next) {
      if (arena->node(g).kind == PropArena::Kind::kU) {
        until_formulas.insert(g);
      }
    }
  }
  std::vector<PropId> untils(until_formulas.begin(), until_formulas.end());
  int k = static_cast<int>(untils.size());

  // Map tableau node names to dense ids; state 0 is a fresh initial state
  // (the paper's automata also carry an explicit start).
  std::map<int, int> state_of_name;
  state_of_name[kInitName] = 0;
  for (const GNode& nd : nodes) {
    state_of_name[nd.name] = static_cast<int>(state_of_name.size());
  }
  int num_gba_states = static_cast<int>(state_of_name.size());

  // Guard of every transition *into* node q: conjunction of literals in
  // Old(q).
  auto guard_of = [&](const GNode& q) -> Guard {
    Guard g;
    for (PropId h : q.old) {
      const PropArena::Node& n = arena->node(h);
      if (n.kind == PropArena::Kind::kProp) {
        g.push_back({n.prop, true});
      } else if (n.kind == PropArena::Kind::kNot) {
        g.push_back({arena->node(n.left).prop, false});
      }
    }
    bool ok = NormalizeGuard(&g);
    WAVE_CHECK(ok);  // expansion already rejects contradictions
    return g;
  };

  // Membership in acceptance set i.
  auto in_accept_set = [&](const GNode& q, int i) {
    PropId u = untils[i];
    if (q.old.count(u) == 0) return true;
    return q.old.count(arena->node(u).right) > 0;
  };

  BuchiAutomaton out;
  out.num_props = num_props;

  if (k == 0) {
    // No Until subformulas: the generalized condition is vacuous; every
    // state is accepting.
    out.adj.assign(num_gba_states, {});
    out.accepting.assign(num_gba_states, true);
    out.start = 0;
    for (const GNode& q : nodes) {
      Guard g = guard_of(q);
      for (int p_name : q.incoming) {
        out.adj[state_of_name[p_name]].push_back(
            {state_of_name[q.name], g});
      }
    }
  } else {
    // Degeneralize with a counter: state (q, i) waits to see acceptance
    // set i. From (q, i) an edge q->q' goes to (q', i') where i' advances
    // when q belongs to F_i. Accepting: (q, 0) with q ∈ F_0.
    auto id_of = [&](int state, int counter) {
      return state * k + counter;
    };
    out.adj.assign(num_gba_states * k, {});
    out.accepting.assign(num_gba_states * k, false);
    out.start = id_of(0, 0);
    // Initial virtual state: belongs to every F_i vacuously (it has no Old
    // set), so its counter advances; keep it simple and treat it as in all
    // acceptance sets.
    std::vector<std::vector<bool>> in_f(num_gba_states,
                                        std::vector<bool>(k, true));
    for (const GNode& q : nodes) {
      for (int i = 0; i < k; ++i) {
        in_f[state_of_name[q.name]][i] = in_accept_set(q, i);
      }
    }
    for (int s = 0; s < num_gba_states; ++s) {
      if (in_f[s][0]) out.accepting[id_of(s, 0)] = true;
    }
    for (const GNode& q : nodes) {
      Guard g = guard_of(q);
      int to_state = state_of_name[q.name];
      for (int p_name : q.incoming) {
        int from_state = state_of_name[p_name];
        for (int i = 0; i < k; ++i) {
          int next_i = in_f[from_state][i] ? (i + 1) % k : i;
          out.adj[id_of(from_state, i)].push_back(
              {id_of(to_state, next_i), g});
        }
      }
    }
  }

  if (options.stats != nullptr) {
    options.stats->tableau_nodes = static_cast<int>(nodes.size());
    options.stats->until_subformulas = k;
    options.stats->states_before_simplify = out.NumStates();
  }
  if (options.simplify) out.Simplify();
  if (options.stats != nullptr) {
    options.stats->states_after_simplify = out.NumStates();
  }
  return out;
}

}  // namespace wave
