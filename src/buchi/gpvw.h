// LTL → Büchi translation, replacing the paper's use of the external
// `ltl2ba` tool. Implements the tableau construction of Gerth, Peled,
// Vardi, Wolper, "Simple On-the-Fly Automatic Verification of Linear
// Temporal Logic" (PSTV 1995) — the algorithm the paper cites [20] —
// followed by degeneralization of the generalized acceptance condition and
// the simplification passes of `BuchiAutomaton::Simplify`.
#ifndef WAVE_BUCHI_GPVW_H_
#define WAVE_BUCHI_GPVW_H_

#include "buchi/buchi.h"
#include "buchi/prop_ltl.h"

namespace wave {

/// Translation statistics (ISSUE 1 observability): how big the tableau
/// grew and how much degeneralization/simplification changed the automaton.
struct GpvwStats {
  int tableau_nodes = 0;          // registered GPVW tableau nodes
  int until_subformulas = 0;      // generalized acceptance sets (k)
  int states_before_simplify = 0; // after degeneralization
  int states_after_simplify = 0;  // final automaton size
};

/// Options for `LtlToBuchi`.
struct GpvwOptions {
  /// Run the post-translation simplification passes (default on; turn off
  /// to inspect the raw tableau, e.g. in ablation benchmarks).
  bool simplify = true;
  /// When non-null, filled with translation statistics.
  GpvwStats* stats = nullptr;
};

/// Translates the propositional LTL formula `f` (any connectives; NNF is
/// applied internally) into a Büchi automaton accepting exactly the infinite
/// words satisfying it. `num_props` is the number of propositions (atoms
/// are `0 .. num_props-1`).
BuchiAutomaton LtlToBuchi(PropArena* arena, PropId f, int num_props,
                          const GpvwOptions& options = {});

}  // namespace wave

#endif  // WAVE_BUCHI_GPVW_H_
