// Ultimately-periodic ("lasso") words u·v^ω over truth assignments, with
//   * a reference semantic evaluator for propositional LTL on lassos, and
//   * a Büchi acceptance check for lassos.
// Used to differential-test the GPVW translation and to validate
// counterexamples.
#ifndef WAVE_BUCHI_LASSO_H_
#define WAVE_BUCHI_LASSO_H_

#include <vector>

#include "buchi/buchi.h"
#include "buchi/prop_ltl.h"

namespace wave {

/// One truth assignment per position; `prefix` then `cycle` repeated
/// forever. `cycle` must be non-empty.
struct LassoWord {
  std::vector<std::vector<bool>> prefix;
  std::vector<std::vector<bool>> cycle;
};

/// Semantic truth value of the LTL formula `f` (any connectives) on the
/// lasso word, at position 0.
bool EvalLtlOnLasso(PropArena* arena, PropId f, const LassoWord& word);

/// True iff the automaton accepts the lasso word (has a run visiting an
/// accepting state infinitely often).
bool AcceptsLasso(const BuchiAutomaton& automaton, const LassoWord& word);

}  // namespace wave

#endif  // WAVE_BUCHI_LASSO_H_
