// Budget-escalation retry ladder (ISSUE 2).
//
// The paper's verifier is a semi-decision procedure tuned by budgets: a
// tight candidate budget or expansion cap may return "unknown" on a
// property a slightly larger budget decides. `VerifyWithRetry` runs a
// *ladder* of attempts — tight budgets first, then the caller's own
// settings, then a widened configuration with `exhaustive_existential` —
// and escalates only while the previous attempt failed for a
// budget-limited reason (`IsBudgetLimited`): a timeout, memory trip or
// cancellation ends the ladder, because more candidate budget will not
// cure those. The total wall-clock budget is split across the remaining
// rungs (remaining / rungs-left), so early cheap rungs cannot starve the
// expensive final one.
//
// PR 3: the ladder loop itself lives in `Verifier::Run` (enable it with
// `VerifyRequest::retry`); `RetryRung` and `AttemptRecord` moved to
// verifier/verifier.h. `VerifyWithRetry` survives as a thin deprecated
// wrapper over `Run` for source compatibility.
#ifndef WAVE_VERIFIER_RETRY_H_
#define WAVE_VERIFIER_RETRY_H_

#include <string>
#include <vector>

#include "obs/json.h"
#include "verifier/governor.h"
#include "verifier/verifier.h"

namespace wave {

struct RetryOptions {
  /// Ladder to climb; empty uses `DefaultLadder(base)`.
  std::vector<RetryRung> ladder;
  /// Total wall-clock budget across every attempt; <= 0 uses the base
  /// options' `timeout_seconds`.
  double total_budget_seconds = -1;
};

/// Outcome of the ladder: the final (or first decided) attempt's result
/// plus the per-attempt history.
struct RetryResult {
  VerifyResult result;
  std::vector<AttemptRecord> attempts;
  /// Index of the rung that decided (kHolds/kViolated); -1 if none did.
  int decided_rung = -1;

  /// JSON array of `AttemptRecord::ToJson` values.
  obs::Json AttemptsJson() const;
};

/// The standard three-rung ladder derived from the caller's options:
///   0 "tight"      — half the candidate budget, capped expansions: fails
///                    fast on easy instances, cheap to discard on hard ones;
///   1 "base"       — the caller's own budgets;
///   2 "exhaustive" — double candidate budget, unlimited expansions,
///                    exhaustive_existential on.
/// Rungs whose budgets do not exceed the previous rung's are dropped.
std::vector<RetryRung> DefaultLadder(const VerifyOptions& base);

/// DEPRECATED — thin wrapper over `Verifier::Run` with
/// `VerifyRequest::retry.enabled`, kept for source compatibility. Climbs
/// the ladder: escalates past rung k only when attempt k returned kUnknown
/// for a budget-limited reason; any decision, timeout, memory trip or
/// cancellation returns immediately with the history so far.
[[deprecated("set VerifyRequest::retry and call Verifier::Run")]]
RetryResult VerifyWithRetry(Verifier* verifier, const Property& property,
                            const VerifyOptions& base,
                            const RetryOptions& retry = {});

}  // namespace wave

#endif  // WAVE_VERIFIER_RETRY_H_
