// Budget-escalation retry ladder (ISSUE 2).
//
// The paper's verifier is a semi-decision procedure tuned by budgets: a
// tight candidate budget or expansion cap may return "unknown" on a
// property a slightly larger budget decides. The ladder runs attempts —
// tight budgets first, then the caller's own settings, then a widened
// configuration with `exhaustive_existential` — and escalates only while
// the previous attempt failed for a budget-limited reason
// (`IsBudgetLimited`): a timeout, memory trip or cancellation ends the
// ladder, because more candidate budget will not cure those. The total
// wall-clock budget is split across the remaining rungs
// (remaining / rungs-left), so early cheap rungs cannot starve the
// expensive final one.
//
// PR 3: the ladder loop itself lives in `Verifier::Run` (enable it with
// `VerifyRequest::retry`); `RetryRung` and `AttemptRecord` moved to
// verifier/verifier.h. This header keeps only `DefaultLadder`, the
// standard rung derivation.
#ifndef WAVE_VERIFIER_RETRY_H_
#define WAVE_VERIFIER_RETRY_H_

#include <string>
#include <vector>

#include "obs/json.h"
#include "verifier/governor.h"
#include "verifier/verifier.h"

namespace wave {

/// The standard three-rung ladder derived from the caller's options:
///   0 "tight"      — half the candidate budget, capped expansions: fails
///                    fast on easy instances, cheap to discard on hard ones;
///   1 "base"       — the caller's own budgets;
///   2 "exhaustive" — double candidate budget, unlimited expansions,
///                    exhaustive_existential on.
/// Rungs whose budgets do not exceed the previous rung's are dropped.
std::vector<RetryRung> DefaultLadder(const VerifyOptions& base);

}  // namespace wave

#endif  // WAVE_VERIFIER_RETRY_H_
