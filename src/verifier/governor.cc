#include "verifier/governor.h"

namespace wave {

const char* UnknownReasonName(UnknownReason reason) {
  switch (reason) {
    case UnknownReason::kNone: return "none";
    case UnknownReason::kTimeout: return "timeout";
    case UnknownReason::kMemoryLimit: return "memory_limit";
    case UnknownReason::kCandidateBudget: return "candidate_budget";
    case UnknownReason::kExpansionBudget: return "expansion_budget";
    case UnknownReason::kCancelled: return "cancelled";
    case UnknownReason::kRejectedCandidates: return "rejected_candidates";
  }
  return "?";
}

bool IsBudgetLimited(UnknownReason reason) {
  return reason == UnknownReason::kCandidateBudget ||
         reason == UnknownReason::kExpansionBudget;
}

Status UnknownReasonToStatus(UnknownReason reason,
                             const std::string& detail) {
  switch (reason) {
    case UnknownReason::kNone:
      return Status::Ok();
    case UnknownReason::kTimeout:
      return Status::DeadlineExceeded(detail);
    case UnknownReason::kCancelled:
      return Status::Cancelled(detail);
    case UnknownReason::kMemoryLimit:
    case UnknownReason::kCandidateBudget:
    case UnknownReason::kExpansionBudget:
    case UnknownReason::kRejectedCandidates:
      return Status::ResourceExhausted(detail);
  }
  return Status::Internal(detail);
}

ResourceGovernor::ResourceGovernor(const GovernorLimits& limits)
    : limits_(limits) {}

double ResourceGovernor::RemainingSeconds() const {
  double remaining = limits_.deadline_seconds - watch_.ElapsedSeconds();
  return remaining > 0 ? remaining : 0;
}

void ResourceGovernor::Trip(UnknownReason reason, std::string message) {
  if (tripped_ != UnknownReason::kNone) return;  // first trip wins
  tripped_ = reason;
  trip_message_ = std::move(message);
}

void BudgetLedger::Trip(UnknownReason reason, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tripped_.load(std::memory_order_relaxed) != UnknownReason::kNone) {
    return;  // first trip wins
  }
  trip_message_ = message;
  // Release: a worker that observes the reason also observes the message
  // (readers of the message take the lock anyway; this orders the flag).
  tripped_.store(reason, std::memory_order_release);
}

void BudgetLedger::SyncMemoryReadings() {
  int64_t total_memory = 0;
  for (const std::atomic<int64_t>& slot : worker_memory_) {
    total_memory += slot.load(std::memory_order_relaxed);
  }
  last_memory_.store(total_memory, std::memory_order_relaxed);
  int64_t peak = peak_memory_.load(std::memory_order_relaxed);
  while (total_memory > peak &&
         !peak_memory_.compare_exchange_weak(peak, total_memory,
                                             std::memory_order_relaxed)) {
  }
}

UnknownReason BudgetLedger::Check() {
  UnknownReason tripped = trip_reason();
  if (tripped != UnknownReason::kNone) return tripped;
  polls_.fetch_add(1, std::memory_order_relaxed);
  if (limits_.cancellation != nullptr && limits_.cancellation->cancelled()) {
    Trip(UnknownReason::kCancelled,
         "cancelled after " + std::to_string(watch_.ElapsedSeconds()) + "s");
    return trip_reason();
  }
  double elapsed = watch_.ElapsedSeconds();
  if (elapsed > limits_.deadline_seconds) {
    Trip(UnknownReason::kTimeout,
         "timeout after " + std::to_string(limits_.deadline_seconds) + "s");
    return trip_reason();
  }
  int64_t total_memory = 0;
  for (const std::atomic<int64_t>& slot : worker_memory_) {
    total_memory += slot.load(std::memory_order_relaxed);
  }
  last_memory_.store(total_memory, std::memory_order_relaxed);
  int64_t peak = peak_memory_.load(std::memory_order_relaxed);
  while (total_memory > peak &&
         !peak_memory_.compare_exchange_weak(peak, total_memory,
                                             std::memory_order_relaxed)) {
  }
  if (limits_.max_memory_bytes >= 0 &&
      total_memory > limits_.max_memory_bytes) {
    Trip(UnknownReason::kMemoryLimit,
         "memory limit exceeded (~" + std::to_string(total_memory) +
             " bytes used, ceiling " +
             std::to_string(limits_.max_memory_bytes) + ")");
    return trip_reason();
  }
  if (limits_.max_expansions >= 0 &&
      expansions_.load(std::memory_order_relaxed) >= limits_.max_expansions) {
    Trip(UnknownReason::kExpansionBudget,
         "expansion budget exhausted (" +
             std::to_string(limits_.max_expansions) + ")");
    return trip_reason();
  }
  return UnknownReason::kNone;
}

UnknownReason ResourceGovernor::Poll() {
  if (tripped_ != UnknownReason::kNone) return tripped_;
  ++polls_;
  if (limits_.cancellation != nullptr && limits_.cancellation->cancelled()) {
    Trip(UnknownReason::kCancelled,
         "cancelled after " + std::to_string(watch_.ElapsedSeconds()) + "s");
    return tripped_;
  }
  double elapsed = watch_.ElapsedSeconds();
  if (elapsed > limits_.deadline_seconds) {
    Trip(UnknownReason::kTimeout,
         "timeout after " + std::to_string(limits_.deadline_seconds) + "s");
    return tripped_;
  }
  if (limits_.max_memory_bytes >= 0 &&
      memory_bytes_ > limits_.max_memory_bytes) {
    Trip(UnknownReason::kMemoryLimit,
         "memory limit exceeded (~" + std::to_string(memory_bytes_) +
             " bytes used, ceiling " +
             std::to_string(limits_.max_memory_bytes) + ")");
    return tripped_;
  }
  if (expansions_ != nullptr && limits_.max_expansions >= 0 &&
      *expansions_ >= limits_.max_expansions) {
    Trip(UnknownReason::kExpansionBudget,
         "expansion budget exhausted (" +
             std::to_string(limits_.max_expansions) + ")");
    return tripped_;
  }
  return UnknownReason::kNone;
}

}  // namespace wave
