#include "verifier/worker_pool.h"

#include <chrono>

#include "common/fault.h"

namespace wave {

int WorkerPool::ResolveJobs(int jobs) {
  if (jobs >= 1) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void WorkerPool::Start(std::function<void(int)> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_ = num_workers_;
  }
  threads_.reserve(num_workers_);
  for (int w = 0; w < num_workers_; ++w) {
    threads_.emplace_back([this, fn, w] {
      // delay: stagger worker startup (scheduling-jitter rehearsal)
      WAVE_FAULT("worker.start");
      fn(w);
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    });
  }
}

bool WorkerPool::WaitDone(double seconds) {
  WAVE_FAULT("worker.wait_done");
  std::unique_lock<std::mutex> lock(mu_);
  if (seconds < 0) {
    done_cv_.wait(lock, [this] { return active_ == 0; });
    return true;
  }
  return done_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                           [this] { return active_ == 0; });
}

void WorkerPool::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace wave
