// Encodings of pseudoconfigurations and tuple sets.
//
// Two encodings coexist, as in the paper's implementation (Section 4):
//   * `TupleIndexer` — the paper's rank-based mixed-radix bitmap layout for
//     a relation whose attributes draw from fixed candidate value lists
//     (bit index j = r_k + n_k × (r_{k-1} + n_{k-1} × (…))); used by the
//     storage benchmark and as the core/extension subset representation.
//   * `EncodeConfiguration` — a canonical byte serialization of a whole
//     pseudoconfiguration, used as the visited-trie key. (The paper extends
//     the bitmap scheme to full configurations; a canonical serialization
//     is an equivalent injective key and avoids a second dataflow pass for
//     derived-relation value sets — see DESIGN.md.)
#ifndef WAVE_VERIFIER_ENCODE_H_
#define WAVE_VERIFIER_ENCODE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bitset.h"
#include "common/symbol_table.h"
#include "relational/relation.h"
#include "spec/runtime.h"

namespace wave {

/// Rank-based tuple <-> bit-index codec for one relation (paper Section 4,
/// "Translation between representations").
class TupleIndexer {
 public:
  /// `attribute_values[i]` lists the candidate constants of attribute i
  /// (order defines ranks). The number of encodable tuples is the product
  /// of the list sizes.
  explicit TupleIndexer(std::vector<std::vector<SymbolId>> attribute_values);

  /// Product of attribute list sizes (0 if any list is empty).
  int64_t NumTuples() const { return num_tuples_; }

  /// Bit index of `tuple`; -1 if some attribute value is not a candidate.
  int64_t Index(const Tuple& tuple) const;

  /// Inverse of `Index`.
  Tuple Decode(int64_t index) const;

 private:
  std::vector<std::vector<SymbolId>> attribute_values_;
  std::vector<std::map<SymbolId, int>> ranks_;  // per-attribute value -> rank
  int64_t num_tuples_ = 0;
};

/// Canonical byte key of (flag, Büchi state, configuration) for the
/// visited trie. Injective for configurations over one spec.
std::vector<uint8_t> EncodeVisitedKey(int flag, int buchi_state,
                                      const Configuration& config);

/// Buffer-reusing variant for the search hot loop: clears `out` and fills
/// it with the key, avoiding a fresh allocation per expansion. The filled
/// size also feeds the resource governor's memory estimate (the key length
/// approximates the configuration's share of trie/stack memory).
void EncodeVisitedKeyInto(int flag, int buchi_state,
                          const Configuration& config,
                          std::vector<uint8_t>* out);

}  // namespace wave

#endif  // WAVE_VERIFIER_ENCODE_H_
