// Trie of visited pseudoconfigurations (paper Section 4: "The visited
// configurations are then stored in a trie data structure which allows
// updates and membership tests in time linear in the size of the bitmap").
//
// Keys are byte strings (the canonical encoding of (flag, Büchi state,
// pseudoconfiguration)). The trie is a path-compressed radix tree with
// children kept in sorted arrays; `size()` reports the number of stored
// keys, the statistic the paper's "max trie size" column tracks.
#ifndef WAVE_VERIFIER_TRIE_H_
#define WAVE_VERIFIER_TRIE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace wave {

/// Lookup counters (ISSUE 1 observability): every `Insert`/`Contains` is
/// one lookup; a *hit* found the key already stored, a *miss* did not.
/// The hit rate is the fraction of search revisits pruned by the trie.
struct TrieStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t lookups() const { return hits + misses; }
};

/// Set of byte-string keys backed by a trie.
class VisitedTrie {
 public:
  VisitedTrie() { nodes_.emplace_back(); }

  /// Inserts `key`; returns true if it was newly added.
  bool Insert(const std::vector<uint8_t>& key);

  /// Membership test.
  bool Contains(const std::vector<uint8_t>& key) const;

  /// Number of stored keys.
  int size() const { return num_keys_; }

  /// Number of trie nodes (memory footprint proxy).
  int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Approximate heap footprint in bytes, maintained incrementally (node
  /// structs + stored edge bytes + child arrays) so the resource governor
  /// can poll it per expansion at O(1) cost. An estimate, not an exact
  /// allocator measurement: vector capacity slack is not counted.
  int64_t approx_bytes() const { return approx_bytes_; }

  /// Cumulative lookup counters (reset by `Clear`).
  const TrieStats& stats() const { return stats_; }

  /// Calls `fn(depth)` once per stored key with its depth in trie nodes
  /// (root = 0) — the key-depth distribution, i.e. how much path
  /// compression shortens the encoded bitmaps. O(nodes); telemetry only,
  /// never on the search hot path.
  void VisitKeyDepths(const std::function<void(int)>& fn) const;

  void Clear() {
    nodes_.clear();
    nodes_.emplace_back();
    num_keys_ = 0;
    stats_ = {};
    approx_bytes_ = static_cast<int64_t>(sizeof(Node));
  }

 private:
  struct Node {
    // Compressed edge into this node (first byte doubles as its label in
    // the parent's arrays; empty for the root).
    std::vector<uint8_t> edge;
    // Sorted parallel arrays of child first-bytes and child indices.
    std::vector<uint8_t> labels;
    std::vector<int32_t> children;
    bool terminal = false;

    int FindChild(uint8_t label) const;
  };

  bool InsertImpl(const std::vector<uint8_t>& key);
  int NewNode();
  void AddChild(int parent, uint8_t label, int child);

  std::vector<Node> nodes_;
  int num_keys_ = 0;
  int64_t approx_bytes_ = static_cast<int64_t>(sizeof(Node));
  mutable TrieStats stats_;  // mutable: `Contains` is logically const
};

}  // namespace wave

#endif  // WAVE_VERIFIER_TRIE_H_
