#include "verifier/shard.h"

namespace wave {

ShardQueue::ShardQueue(const std::vector<ShardBlock>& blocks,
                       int num_workers) {
  if (num_workers < 1) num_workers = 1;
  deques_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  // Round-robin distribution keeps the initial layout deterministic;
  // stealing corrects any imbalance (blocks are ranges of wildly varying
  // cost — the layout only needs to be a reasonable starting point).
  int next = 0;
  for (const ShardBlock& block : blocks) {
    if (block.size() <= 0) continue;
    WorkerDeque& d = *deques_[next];
    d.blocks.push_back(block);
    d.remaining.store(d.remaining.load(std::memory_order_relaxed) +
                          block.size(),
                      std::memory_order_relaxed);
    total_ += block.size();
    next = (next + 1) % num_workers;
  }
}

bool ShardQueue::PopOwn(WorkerDeque* d, Shard* out) {
  std::lock_guard<std::mutex> lock(d->mu);
  if (d->blocks.empty()) return false;
  ShardBlock& front = d->blocks.front();
  out->assignment = front.assignment;
  out->core = front.core_begin++;
  d->remaining.fetch_sub(1, std::memory_order_relaxed);
  if (front.core_begin >= front.core_end) d->blocks.pop_front();
  return true;
}

bool ShardQueue::Steal(int thief, Shard* out) {
  const int n = num_workers();
  // Scan for the victim with the most remaining work (unlocked reads; a
  // stale pick only costs an extra iteration).
  while (true) {
    int victim = -1;
    int64_t best = 0;
    for (int i = 0; i < n; ++i) {
      if (i == thief) continue;
      int64_t remaining =
          deques_[i]->remaining.load(std::memory_order_relaxed);
      if (remaining > best) {
        best = remaining;
        victim = i;
      }
    }
    if (victim < 0) return false;  // everyone is empty

    WorkerDeque& v = *deques_[victim];
    ShardBlock stolen{};
    {
      std::lock_guard<std::mutex> lock(v.mu);
      if (v.blocks.empty()) continue;  // raced with the owner; rescan
      ShardBlock& back = v.blocks.back();
      if (back.size() > 1) {
        // Split: the victim keeps the lower half, the thief takes the
        // upper — both stay contiguous, so further splits stay cheap.
        int64_t mid = back.core_begin + back.size() / 2;
        stolen = {back.assignment, mid, back.core_end};
        back.core_end = mid;
      } else {
        stolen = back;
        v.blocks.pop_back();
      }
      v.remaining.fetch_sub(stolen.size(), std::memory_order_relaxed);
    }
    steals_.fetch_add(1, std::memory_order_relaxed);

    // First shard of the loot is the answer; the rest goes into the
    // thief's own deque.
    out->assignment = stolen.assignment;
    out->core = stolen.core_begin++;
    if (stolen.size() > 0) {
      WorkerDeque& own = *deques_[thief];
      std::lock_guard<std::mutex> lock(own.mu);
      own.blocks.push_back(stolen);
      own.remaining.fetch_add(stolen.size(), std::memory_order_relaxed);
    }
    return true;
  }
}

bool ShardQueue::Pop(int worker, Shard* out) {
  if (PopOwn(deques_[worker].get(), out)) return true;
  return Steal(worker, out);
}

}  // namespace wave
