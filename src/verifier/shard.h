// Shards of the parallel search (PR 3).
//
// The verifier's two outer loops — C∃ assignments and database cores per
// assignment (Section 3.1's `ndfs-pseudo` driver) — are independent NDFS
// problems: each (assignment, core) pair searches its own visited set and
// shares nothing with its siblings beyond the read-only prepared plan.
// That pair is the unit of parallelism, the *shard*.
//
// Cores of one assignment are the 2^n subsets of its candidate-tuple list
// (paper Section 4's bitmap counter), so a shard is addressed by the
// assignment index plus the core's bitmap value, and a whole assignment
// is one contiguous *range block* [0, 2^n). `ShardQueue` distributes the
// blocks across per-worker deques and load-balances by work stealing:
// owners pop single shards off the front of their own deque; a worker
// that runs dry steals the back block of the busiest victim and takes the
// upper half of its range. Ranges stay coarse until contention splits
// them, so the queue never materializes the (possibly astronomical) shard
// list, and the mutex per deque is touched once per shard — noise next to
// an NDFS over even a handful of configurations.
#ifndef WAVE_VERIFIER_SHARD_H_
#define WAVE_VERIFIER_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace wave {

/// One unit of parallel work: core `core` (a candidate-subset bitmap
/// value) of assignment `assignment`.
struct Shard {
  int assignment = 0;
  int64_t core = 0;
};

/// A contiguous range of cores [core_begin, core_end) of one assignment.
struct ShardBlock {
  int assignment = 0;
  int64_t core_begin = 0;
  int64_t core_end = 0;

  int64_t size() const { return core_end - core_begin; }
};

/// Work-stealing queue of (assignment, core) shards.
///
/// All blocks are enqueued at construction (the enumeration is a fixed,
/// deterministic set — see verifier.cc's sequential pre-pass), distributed
/// round-robin across `num_workers` deques. Thread-safe for one owner per
/// worker id plus arbitrary stealing; `Pop` returns false only when every
/// deque is empty, so a false return is a global termination signal.
class ShardQueue {
 public:
  ShardQueue(const std::vector<ShardBlock>& blocks, int num_workers);

  /// Takes the next shard for `worker`: front of its own deque, else a
  /// steal. Returns false when no work is left anywhere.
  bool Pop(int worker, Shard* out);

  /// Total shards enqueued at construction.
  int64_t total_shards() const { return total_; }

  /// Successful steals so far (observability).
  int64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  int num_workers() const { return static_cast<int>(deques_.size()); }

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<ShardBlock> blocks;
    /// Shards remaining in `blocks` — read without the lock by thieves
    /// scanning for a victim, updated under it.
    std::atomic<int64_t> remaining{0};
  };

  bool PopOwn(WorkerDeque* d, Shard* out);
  bool Steal(int thief, Shard* out);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::atomic<int64_t> steals_{0};
  int64_t total_ = 0;
};

}  // namespace wave

#endif  // WAVE_VERIFIER_SHARD_H_
