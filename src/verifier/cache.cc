#include "verifier/cache.h"

#include <filesystem>
#include <optional>
#include <utility>
#include <vector>

#include "common/io.h"
#include "obs/json.h"
#include "verifier/session.h"

namespace wave {

namespace {

constexpr int kFormatVersion = 1;

obs::Json InstanceToJson(const Instance& instance, const WebAppSpec& spec) {
  obs::Json j = obs::Json::Object();
  const Catalog& catalog = spec.catalog();
  for (RelationId id = 0; id < catalog.size(); ++id) {
    const Relation& r = instance.relation(id);
    if (r.tuples().empty()) continue;
    obs::Json tuples = obs::Json::Array();
    for (const Tuple& t : r.tuples()) {
      obs::Json tuple = obs::Json::Array();
      for (SymbolId v : t) {
        tuple.Append(obs::Json::Str(spec.symbols().Name(v)));
      }
      tuples.Append(std::move(tuple));
    }
    j.Set(catalog.schema(id).name, std::move(tuples));
  }
  return j;
}

obs::Json StepsToJson(const std::vector<CounterexampleStep>& steps,
                      const WebAppSpec& spec) {
  obs::Json arr = obs::Json::Array();
  for (const CounterexampleStep& step : steps) {
    obs::Json j = obs::Json::Object();
    j.Set("buchi_state", obs::Json::Int(step.buchi_state));
    j.Set("page", obs::Json::Str(spec.page(step.config.page).name));
    j.Set("data", InstanceToJson(step.config.data, spec));
    j.Set("previous", InstanceToJson(step.config.previous, spec));
    arr.Append(std::move(j));
  }
  return arr;
}

// --- parse-or-miss readers (every failure returns false, never throws) ---

bool ParseInstance(const obs::Json& j, WebAppSpec* spec, Instance* out) {
  if (!j.is_object()) return false;
  *out = Instance(&spec->catalog());
  for (const auto& [name, tuples] : j.members()) {
    RelationId id = spec->catalog().Find(name);
    if (id == kInvalidRelation || !tuples.is_array()) return false;
    int arity = spec->catalog().schema(id).arity;
    for (const obs::Json& tuple : tuples.items()) {
      if (!tuple.is_array() ||
          static_cast<int>(tuple.size()) != arity) {
        return false;
      }
      Tuple t;
      for (const obs::Json& v : tuple.items()) {
        if (!v.is_string()) return false;
        t.push_back(spec->symbols().Intern(v.AsString()));
      }
      out->relation(id).Insert(t);
    }
  }
  return true;
}

bool ParseSteps(const obs::Json& j, WebAppSpec* spec,
                std::vector<CounterexampleStep>* out) {
  if (!j.is_array()) return false;
  for (const obs::Json& step_json : j.items()) {
    if (!step_json.is_object()) return false;
    const obs::Json* state = step_json.Find("buchi_state");
    const obs::Json* page = step_json.Find("page");
    const obs::Json* data = step_json.Find("data");
    const obs::Json* previous = step_json.Find("previous");
    if (state == nullptr || !state->is_number() || page == nullptr ||
        !page->is_string() || data == nullptr || previous == nullptr) {
      return false;
    }
    CounterexampleStep step;
    step.buchi_state = static_cast<int>(state->AsInt());
    step.config.page = spec->PageIndex(page->AsString());
    if (step.config.page < 0) return false;
    if (!ParseInstance(*data, spec, &step.config.data)) return false;
    if (!ParseInstance(*previous, spec, &step.config.previous)) return false;
    out->push_back(std::move(step));
  }
  return true;
}

int64_t JsonInt(const obs::Json& j, std::string_view key) {
  const obs::Json* v = j.Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : 0;
}

double JsonDouble(const obs::Json& j, std::string_view key) {
  const obs::Json* v = j.Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : 0;
}

/// Inverse of `VerifyStats::ToJson`, lenient: absent fields stay zero.
VerifyStats ParseStats(const obs::Json& j) {
  VerifyStats s;
  s.seconds = JsonDouble(j, "seconds");
  s.prepare_seconds = JsonDouble(j, "prepare_seconds");
  s.dataflow_seconds = JsonDouble(j, "dataflow_seconds");
  s.search_seconds = JsonDouble(j, "search_seconds");
  s.validate_seconds = JsonDouble(j, "validate_seconds");
  s.max_pseudorun_length = static_cast<int>(JsonInt(j, "max_pseudorun_length"));
  s.max_trie_size = static_cast<int>(JsonInt(j, "max_trie_size"));
  s.buchi_states = static_cast<int>(JsonInt(j, "buchi_states"));
  s.num_assignments = JsonInt(j, "num_assignments");
  s.num_cores = JsonInt(j, "num_cores");
  s.num_expansions = JsonInt(j, "num_expansions");
  s.num_successors = JsonInt(j, "num_successors");
  s.num_rejected_candidates = JsonInt(j, "num_rejected_candidates");
  s.trie_hits = JsonInt(j, "trie_hits");
  s.trie_misses = JsonInt(j, "trie_misses");
  s.heartbeats = JsonInt(j, "heartbeats");
  s.peak_memory_bytes = JsonInt(j, "peak_memory_bytes");
  s.governor_polls = JsonInt(j, "governor_polls");
  s.cache_hits = JsonInt(j, "cache_hits");
  s.prepass_reuses = JsonInt(j, "prepass_reuses");
  return s;
}

}  // namespace

Fingerprint ResultCacheKey(const Fingerprint& spec_fingerprint,
                           const Property& property,
                           const SymbolTable& symbols,
                           const VerifyOptions& options) {
  FingerprintBuilder fp;
  fp.AddTag("result_v1");
  fp.AddInt(static_cast<int64_t>(spec_fingerprint.hi));
  fp.AddInt(static_cast<int64_t>(spec_fingerprint.lo));
  Fingerprint prop = FingerprintProperty(property, symbols);
  fp.AddInt(static_cast<int64_t>(prop.hi));
  fp.AddInt(static_cast<int64_t>(prop.lo));
  fp.AddTag("options");
  fp.AddBool(options.heuristic1);
  fp.AddBool(options.heuristic2);
  fp.AddBool(options.exhaustive_existential);
  fp.AddInt(options.max_candidates);
  fp.AddInt(options.max_expansions);
  return fp.Finish();
}

StatusOr<std::unique_ptr<ResultCache>> ResultCache::Open(
    const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("cache directory path is empty", WAVE_LOC);
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable(
        "cannot create cache directory '" + dir + "': " + ec.message(),
        WAVE_LOC);
  }
  return std::unique_ptr<ResultCache>(new ResultCache(dir));
}

std::string ResultCache::PathFor(const Fingerprint& key) const {
  return dir_ + "/" + key.ToHex() + ".json";
}

bool ResultCache::Lookup(const Fingerprint& key, WebAppSpec* spec,
                         VerifyResponse* response) {
  StatusOr<std::string> text = ReadFileToString(PathFor(key));
  if (!text.ok()) {
    ++misses_;
    return false;
  }
  std::optional<obs::Json> parsed = obs::Json::Parse(*text);
  if (!parsed.has_value() || !parsed->is_object() ||
      JsonInt(*parsed, "format") != kFormatVersion) {
    ++misses_;
    return false;
  }
  const obs::Json& record = *parsed;

  VerifyResponse out;
  const obs::Json* verdict = record.Find("verdict");
  if (verdict == nullptr || !verdict->is_string()) {
    ++misses_;
    return false;
  }
  if (verdict->AsString() == "holds") {
    out.verdict = Verdict::kHolds;
  } else if (verdict->AsString() == "violated") {
    out.verdict = Verdict::kViolated;
  } else {
    ++misses_;  // undecided records are never written; treat as corrupt
    return false;
  }

  if (out.verdict == Verdict::kViolated) {
    const obs::Json* binding = record.Find("witness_binding");
    const obs::Json* stick = record.Find("stick");
    const obs::Json* candy = record.Find("candy");
    if (binding == nullptr || !binding->is_object() || stick == nullptr ||
        candy == nullptr) {
      ++misses_;
      return false;
    }
    for (const auto& [var, value] : binding->members()) {
      if (!value.is_string()) {
        ++misses_;
        return false;
      }
      out.witness_binding[var] = spec->symbols().Intern(value.AsString());
    }
    if (!ParseSteps(*stick, spec, &out.stick) ||
        !ParseSteps(*candy, spec, &out.candy)) {
      ++misses_;
      return false;
    }
  }

  const obs::Json* stats = record.Find("stats");
  if (stats != nullptr && stats->is_object()) {
    out.stats = ParseStats(*stats);
  }
  out.stats.cache_hits = 1;
  *response = std::move(out);
  ++hits_;
  return true;
}

Status ResultCache::Store(const Fingerprint& key, const WebAppSpec& spec,
                          const VerifyResponse& response) {
  if (response.verdict == Verdict::kUnknown) {
    return Status::InvalidArgument(
        "only decided verdicts are cached (kUnknown reflects budgets, not "
        "the problem instance)",
        WAVE_LOC);
  }
  obs::Json record = obs::Json::Object();
  record.Set("format", obs::Json::Int(kFormatVersion));
  record.Set("key", obs::Json::Str(key.ToHex()));
  record.Set("verdict",
             obs::Json::Str(response.verdict == Verdict::kHolds
                                ? "holds"
                                : "violated"));
  if (response.verdict == Verdict::kViolated) {
    obs::Json binding = obs::Json::Object();
    for (const auto& [var, value] : response.witness_binding) {
      binding.Set(var, obs::Json::Str(spec.symbols().Name(value)));
    }
    record.Set("witness_binding", std::move(binding));
    record.Set("stick", StepsToJson(response.stick, spec));
    record.Set("candy", StepsToJson(response.candy, spec));
  }
  record.Set("stats", response.stats.ToJson());

  Status status = AtomicWriteFile(PathFor(key), record.Dump(2) + "\n");
  if (status.ok()) ++stores_;
  return status;
}

}  // namespace wave
