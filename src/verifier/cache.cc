#include "verifier/cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/io.h"
#include "obs/json.h"
#include "verifier/session.h"

namespace wave {

namespace {

namespace fs = std::filesystem;

constexpr int kFormatVersion = 2;
constexpr char kMagic[] = "WAVECACHE2";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kLockName[] = ".lock";
constexpr char kEntriesDirName[] = "entries";
constexpr char kQuarantineDirName[] = "quarantine";

// ---------------------------------------------------------------------------
// Record payload (unchanged shape since v1, now tagged "format":2)
// ---------------------------------------------------------------------------

obs::Json InstanceToJson(const Instance& instance, const WebAppSpec& spec) {
  obs::Json j = obs::Json::Object();
  const Catalog& catalog = spec.catalog();
  for (RelationId id = 0; id < catalog.size(); ++id) {
    const Relation& r = instance.relation(id);
    if (r.tuples().empty()) continue;
    obs::Json tuples = obs::Json::Array();
    for (const Tuple& t : r.tuples()) {
      obs::Json tuple = obs::Json::Array();
      for (SymbolId v : t) {
        tuple.Append(obs::Json::Str(spec.symbols().Name(v)));
      }
      tuples.Append(std::move(tuple));
    }
    j.Set(catalog.schema(id).name, std::move(tuples));
  }
  return j;
}

obs::Json StepsToJson(const std::vector<CounterexampleStep>& steps,
                      const WebAppSpec& spec) {
  obs::Json arr = obs::Json::Array();
  for (const CounterexampleStep& step : steps) {
    obs::Json j = obs::Json::Object();
    j.Set("buchi_state", obs::Json::Int(step.buchi_state));
    j.Set("page", obs::Json::Str(spec.page(step.config.page).name));
    j.Set("data", InstanceToJson(step.config.data, spec));
    j.Set("previous", InstanceToJson(step.config.previous, spec));
    arr.Append(std::move(j));
  }
  return arr;
}

// --- parse-or-miss readers (every failure returns false, never throws) ---

bool ParseInstance(const obs::Json& j, WebAppSpec* spec, Instance* out) {
  if (!j.is_object()) return false;
  *out = Instance(&spec->catalog());
  for (const auto& [name, tuples] : j.members()) {
    RelationId id = spec->catalog().Find(name);
    if (id == kInvalidRelation || !tuples.is_array()) return false;
    int arity = spec->catalog().schema(id).arity;
    for (const obs::Json& tuple : tuples.items()) {
      if (!tuple.is_array() ||
          static_cast<int>(tuple.size()) != arity) {
        return false;
      }
      Tuple t;
      for (const obs::Json& v : tuple.items()) {
        if (!v.is_string()) return false;
        t.push_back(spec->symbols().Intern(v.AsString()));
      }
      out->relation(id).Insert(t);
    }
  }
  return true;
}

bool ParseSteps(const obs::Json& j, WebAppSpec* spec,
                std::vector<CounterexampleStep>* out) {
  if (!j.is_array()) return false;
  for (const obs::Json& step_json : j.items()) {
    if (!step_json.is_object()) return false;
    const obs::Json* state = step_json.Find("buchi_state");
    const obs::Json* page = step_json.Find("page");
    const obs::Json* data = step_json.Find("data");
    const obs::Json* previous = step_json.Find("previous");
    if (state == nullptr || !state->is_number() || page == nullptr ||
        !page->is_string() || data == nullptr || previous == nullptr) {
      return false;
    }
    CounterexampleStep step;
    step.buchi_state = static_cast<int>(state->AsInt());
    step.config.page = spec->PageIndex(page->AsString());
    if (step.config.page < 0) return false;
    if (!ParseInstance(*data, spec, &step.config.data)) return false;
    if (!ParseInstance(*previous, spec, &step.config.previous)) return false;
    out->push_back(std::move(step));
  }
  return true;
}

int64_t JsonInt(const obs::Json& j, std::string_view key) {
  const obs::Json* v = j.Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : 0;
}

double JsonDouble(const obs::Json& j, std::string_view key) {
  const obs::Json* v = j.Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : 0;
}

/// Inverse of `VerifyStats::ToJson`, lenient: absent fields stay zero.
VerifyStats ParseStats(const obs::Json& j) {
  VerifyStats s;
  s.seconds = JsonDouble(j, "seconds");
  s.prepare_seconds = JsonDouble(j, "prepare_seconds");
  s.dataflow_seconds = JsonDouble(j, "dataflow_seconds");
  s.search_seconds = JsonDouble(j, "search_seconds");
  s.validate_seconds = JsonDouble(j, "validate_seconds");
  s.max_pseudorun_length = static_cast<int>(JsonInt(j, "max_pseudorun_length"));
  s.max_trie_size = static_cast<int>(JsonInt(j, "max_trie_size"));
  s.buchi_states = static_cast<int>(JsonInt(j, "buchi_states"));
  s.num_assignments = JsonInt(j, "num_assignments");
  s.num_cores = JsonInt(j, "num_cores");
  s.num_expansions = JsonInt(j, "num_expansions");
  s.num_successors = JsonInt(j, "num_successors");
  s.num_rejected_candidates = JsonInt(j, "num_rejected_candidates");
  s.trie_hits = JsonInt(j, "trie_hits");
  s.trie_misses = JsonInt(j, "trie_misses");
  s.heartbeats = JsonInt(j, "heartbeats");
  s.peak_memory_bytes = JsonInt(j, "peak_memory_bytes");
  s.governor_polls = JsonInt(j, "governor_polls");
  s.cache_hits = JsonInt(j, "cache_hits");
  s.prepass_reuses = JsonInt(j, "prepass_reuses");
  return s;
}

/// Serializes a decided response into the (header-less) payload JSON.
std::string RecordPayload(const Fingerprint& key, const WebAppSpec& spec,
                          const VerifyResponse& response) {
  obs::Json record = obs::Json::Object();
  record.Set("format", obs::Json::Int(kFormatVersion));
  record.Set("key", obs::Json::Str(key.ToHex()));
  record.Set("verdict",
             obs::Json::Str(response.verdict == Verdict::kHolds
                                ? "holds"
                                : "violated"));
  if (response.verdict == Verdict::kViolated) {
    obs::Json binding = obs::Json::Object();
    for (const auto& [var, value] : response.witness_binding) {
      binding.Set(var, obs::Json::Str(spec.symbols().Name(value)));
    }
    record.Set("witness_binding", std::move(binding));
    record.Set("stick", StepsToJson(response.stick, spec));
    record.Set("candy", StepsToJson(response.candy, spec));
  }
  record.Set("stats", response.stats.ToJson());
  return record.Dump(2) + "\n";
}

/// Parses a payload back into a response; false = corrupt/incompatible.
bool ParseRecordPayload(const std::string& payload, WebAppSpec* spec,
                        VerifyResponse* response) {
  std::optional<obs::Json> parsed = obs::Json::Parse(payload);
  if (!parsed.has_value() || !parsed->is_object() ||
      JsonInt(*parsed, "format") != kFormatVersion) {
    return false;
  }
  const obs::Json& record = *parsed;

  VerifyResponse out;
  const obs::Json* verdict = record.Find("verdict");
  if (verdict == nullptr || !verdict->is_string()) return false;
  if (verdict->AsString() == "holds") {
    out.verdict = Verdict::kHolds;
  } else if (verdict->AsString() == "violated") {
    out.verdict = Verdict::kViolated;
  } else {
    return false;  // undecided records are never written; treat as corrupt
  }

  if (out.verdict == Verdict::kViolated) {
    const obs::Json* binding = record.Find("witness_binding");
    const obs::Json* stick = record.Find("stick");
    const obs::Json* candy = record.Find("candy");
    if (binding == nullptr || !binding->is_object() || stick == nullptr ||
        candy == nullptr) {
      return false;
    }
    for (const auto& [var, value] : binding->members()) {
      if (!value.is_string()) return false;
      out.witness_binding[var] = spec->symbols().Intern(value.AsString());
    }
    if (!ParseSteps(*stick, spec, &out.stick) ||
        !ParseSteps(*candy, spec, &out.candy)) {
      return false;
    }
  }

  const obs::Json* stats = record.Find("stats");
  if (stats != nullptr && stats->is_object()) {
    out.stats = ParseStats(*stats);
  }
  out.stats.cache_hits = 1;
  *response = std::move(out);
  return true;
}

// ---------------------------------------------------------------------------
// Entry framing: "WAVECACHE2 crc32=XXXXXXXX len=N\n" + payload
// ---------------------------------------------------------------------------

std::string FrameEntry(const std::string& payload) {
  char header[64];
  std::snprintf(header, sizeof(header), "%s crc32=%08x len=%zu\n", kMagic,
                Crc32(payload), payload.size());
  return std::string(header) + payload;
}

/// Splits + validates a framed entry; false on any header/CRC mismatch.
bool UnframeEntry(const std::string& content, std::string* payload,
                  uint32_t* crc) {
  size_t nl = content.find('\n');
  if (nl == std::string::npos) return false;
  unsigned parsed_crc = 0;
  size_t parsed_len = 0;
  char magic[32] = {0};
  if (std::sscanf(content.substr(0, nl).c_str(), "%31s crc32=%x len=%zu",
                  magic, &parsed_crc, &parsed_len) != 3 ||
      std::string_view(magic) != kMagic) {
    return false;
  }
  std::string body = content.substr(nl + 1);
  if (body.size() != parsed_len) return false;
  if (Crc32(body) != parsed_crc) return false;
  *payload = std::move(body);
  *crc = parsed_crc;
  return true;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

struct EntryRef {
  std::string file;  // name under entries/
  uint32_t crc = 0;
  int64_t gen = 0;
};

struct Manifest {
  int64_t generation = 0;
  std::map<std::string, EntryRef> entries;  // key hex -> ref
};

std::string ManifestToText(const Manifest& m) {
  obs::Json j = obs::Json::Object();
  j.Set("format", obs::Json::Int(kFormatVersion));
  j.Set("generation", obs::Json::Int(m.generation));
  obs::Json entries = obs::Json::Object();
  for (const auto& [hex, ref] : m.entries) {
    obs::Json e = obs::Json::Object();
    e.Set("file", obs::Json::Str(ref.file));
    e.Set("crc", obs::Json::Int(static_cast<int64_t>(ref.crc)));
    e.Set("gen", obs::Json::Int(ref.gen));
    entries.Set(hex, std::move(e));
  }
  j.Set("entries", std::move(entries));
  return j.Dump(2) + "\n";
}

std::optional<Manifest> ParseManifest(const std::string& text) {
  std::optional<obs::Json> parsed = obs::Json::Parse(text);
  if (!parsed.has_value() || !parsed->is_object() ||
      JsonInt(*parsed, "format") != kFormatVersion) {
    return std::nullopt;
  }
  Manifest m;
  m.generation = JsonInt(*parsed, "generation");
  const obs::Json* entries = parsed->Find("entries");
  if (entries == nullptr || !entries->is_object()) return std::nullopt;
  for (const auto& [hex, e] : entries->members()) {
    if (!e.is_object()) return std::nullopt;
    const obs::Json* file = e.Find("file");
    if (file == nullptr || !file->is_string()) return std::nullopt;
    EntryRef ref;
    ref.file = file->AsString();
    ref.crc = static_cast<uint32_t>(JsonInt(e, "crc"));
    ref.gen = JsonInt(e, "gen");
    m.entries[hex] = ref;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Filenames and paths
// ---------------------------------------------------------------------------

bool IsHex(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

std::string EntryFileName(const std::string& hex, int64_t gen) {
  return hex + ".g" + std::to_string(gen) + ".json";
}

/// Inverse of EntryFileName: "<hex>.g<gen>.json" -> (hex, gen).
bool ParseEntryFileName(const std::string& name, std::string* hex,
                        int64_t* gen) {
  size_t dot = name.find(".g");
  if (dot == std::string::npos || !name.ends_with(".json")) return false;
  *hex = name.substr(0, dot);
  if (!IsHex(*hex)) return false;
  std::string gen_str = name.substr(dot + 2, name.size() - dot - 2 - 5);
  if (gen_str.empty()) return false;
  char* end = nullptr;
  *gen = std::strtoll(gen_str.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && *gen >= 0;
}

bool IsLegacyRecordName(const std::string& name) {
  // v1 flat records: "<hex>.json" with no generation infix.
  return name.ends_with(".json") && IsHex(name.substr(0, name.size() - 5));
}

uint64_t DefaultSeed() {
  return static_cast<uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ull + 1;
}

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void SleepSeconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

// ---------------------------------------------------------------------------
// The writer lock: a permanent flock fixture. Advisory — every WAVE
// process cooperates; a SIGKILLed holder is released by the kernel.
// ---------------------------------------------------------------------------

class LockGuard {
 public:
  LockGuard() = default;
  ~LockGuard() { Release(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  Status Acquire(const std::string& lock_path, const BackoffPolicy& policy,
                 uint64_t seed, int64_t* lock_waits) {
    if (fault::Action a = WAVE_FAULT("cache.lock.acquire");
        fault::IsError(a)) {
      return fault::ToStatus(a, "flock '" + lock_path + "'");
    }
    fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      return Status::Unavailable("cannot open lock file '" + lock_path + "'",
                                 WAVE_LOC);
    }
    Backoff backoff(policy, seed);
    while (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      std::optional<double> delay = backoff.NextDelaySeconds();
      if (!delay.has_value()) {
        Release();
        return Status::Unavailable(
            "cache writer lock '" + lock_path + "' still held after " +
                std::to_string(backoff.attempts()) + " attempts",
            WAVE_LOC);
      }
      if (lock_waits != nullptr) ++*lock_waits;
      SleepSeconds(*delay);
    }
    held_ = true;
    return Status::Ok();
  }

  bool held() const { return held_; }

  void Release() {
    if (fd_ >= 0) {
      if (held_) ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
    fd_ = -1;
    held_ = false;
  }

 private:
  int fd_ = -1;
  bool held_ = false;
};

}  // namespace

Fingerprint ResultCacheKey(const Fingerprint& spec_fingerprint,
                           const Property& property,
                           const SymbolTable& symbols,
                           const VerifyOptions& options) {
  FingerprintBuilder fp;
  fp.AddTag("result_v1");
  fp.AddInt(static_cast<int64_t>(spec_fingerprint.hi));
  fp.AddInt(static_cast<int64_t>(spec_fingerprint.lo));
  Fingerprint prop = FingerprintProperty(property, symbols);
  fp.AddInt(static_cast<int64_t>(prop.hi));
  fp.AddInt(static_cast<int64_t>(prop.lo));
  fp.AddTag("options");
  fp.AddBool(options.heuristic1);
  fp.AddBool(options.heuristic2);
  fp.AddBool(options.exhaustive_existential);
  fp.AddInt(options.max_candidates);
  fp.AddInt(options.max_expansions);
  return fp.Finish();
}

// ---------------------------------------------------------------------------
// ResultCache::Impl — all the path/lock/manifest plumbing, friended so the
// public class keeps a flat surface.
// ---------------------------------------------------------------------------

class ResultCache::Impl {
 public:
  static std::string ManifestPath(const ResultCache& c) {
    return c.dir_ + "/" + kManifestName;
  }
  static std::string LockPath(const ResultCache& c) {
    return c.dir_ + "/" + kLockName;
  }
  static std::string EntriesDir(const ResultCache& c) {
    return c.dir_ + "/" + kEntriesDirName;
  }
  static std::string QuarantineDir(const ResultCache& c) {
    return c.dir_ + "/" + kQuarantineDirName;
  }

  static uint64_t NextSeed(ResultCache* c) { return SplitMix64Next(&c->rng_); }

  /// AtomicWriteFile with the tight transient-I/O retry schedule.
  static Status WriteWithRetry(ResultCache* c, const std::string& path,
                               const std::string& content) {
    Backoff backoff(c->options_.io_retry, NextSeed(c));
    while (true) {
      Status status = AtomicWriteFile(path, content);
      if (status.ok() || status.code() != StatusCode::kUnavailable) {
        return status;
      }
      std::optional<double> delay = backoff.NextDelaySeconds();
      if (!delay.has_value()) return status;
      SleepSeconds(*delay);
    }
  }

  /// Moves a corrupt file into quarantine/ (never deletes it) and counts.
  /// Returns the destination, or empty when the move could not happen.
  static std::string Quarantine(ResultCache* c, const fs::path& victim) {
    ++c->health_.corrupt;
    if (fault::Action a = WAVE_FAULT("cache.quarantine.move");
        fault::IsError(a)) {
      return "";  // counted as corrupt; the file stays put this time
    }
    std::error_code ec;
    fs::create_directories(QuarantineDir(*c), ec);
    if (ec) return "";
    fs::path dest = fs::path(QuarantineDir(*c)) / victim.filename();
    for (int i = 1; fs::exists(dest, ec) && i < 100; ++i) {
      dest = fs::path(QuarantineDir(*c)) /
             (victim.filename().string() + "." + std::to_string(i));
    }
    fs::rename(victim, dest, ec);
    if (ec) return "";
    ++c->health_.quarantined;
    return dest.string();
  }

  /// Quarantines a corrupt manifested entry and (best-effort, under the
  /// writer lock) scrubs its manifest reference so peers stop chasing it.
  static void QuarantineEntry(ResultCache* c, const std::string& hex,
                              const std::string& file) {
    Quarantine(c, fs::path(EntriesDir(*c)) / file);
    LockGuard lock;
    if (!lock.Acquire(LockPath(*c), c->options_.lock_backoff, NextSeed(c),
                      &c->health_.lock_waits)
             .ok()) {
      return;  // a peer is busy; recovery on its next Open will scrub
    }
    StatusOr<std::string> text = ReadFileToString(ManifestPath(*c));
    if (!text.ok()) return;
    std::optional<Manifest> manifest = ParseManifest(*text);
    if (!manifest.has_value()) return;
    auto it = manifest->entries.find(hex);
    if (it == manifest->entries.end() || it->second.file != file) return;
    manifest->entries.erase(it);
    WriteWithRetry(c, ManifestPath(*c), ManifestToText(*manifest));
  }

  /// Validates one entry file on disk; true = framed + CRC-clean.
  static bool ValidateEntryFile(const fs::path& path, std::string* payload,
                                uint32_t* crc) {
    StatusOr<std::string> content = ReadFileToString(path.string());
    if (!content.ok()) return false;
    return UnframeEntry(*content, payload, crc);
  }

  /// Heals the directory under the (held) writer lock: removes stray
  /// temp files, rebuilds a missing/corrupt manifest from the
  /// self-validating entry files, adopts fully-written orphans, retires
  /// superseded generations and migrates legacy v1 flat records.
  static void RecoverLocked(ResultCache* c) {
    std::error_code ec;
    bool dirty = false;
    int64_t healed = 0;

    // 1. Crash debris: *.tmp anywhere in the tree is an interrupted
    // atomic write whose rename never happened — always safe to drop.
    for (const std::string& scan_dir : {c->dir_, EntriesDir(*c)}) {
      if (!fs::is_directory(scan_dir, ec)) continue;
      for (const auto& de : fs::directory_iterator(scan_dir, ec)) {
        if (de.is_regular_file(ec) &&
            de.path().filename().string().ends_with(".tmp")) {
          fs::remove(de.path(), ec);
          ++healed;
        }
      }
    }

    // 2. The manifest: absent -> start empty; corrupt -> preserve the
    // evidence in quarantine and rebuild from the entries.
    Manifest manifest;
    StatusOr<std::string> text = ReadFileToString(ManifestPath(*c));
    if (text.ok()) {
      std::optional<Manifest> parsed = ParseManifest(*text);
      if (parsed.has_value()) {
        manifest = std::move(*parsed);
      } else {
        Quarantine(c, ManifestPath(*c));
        dirty = true;
        ++healed;
      }
    }

    // 3. Legacy v1 flat records migrate into framed v2 entries.
    if (fs::is_directory(c->dir_, ec)) {
      for (const auto& de : fs::directory_iterator(c->dir_, ec)) {
        if (!de.is_regular_file(ec)) continue;
        std::string name = de.path().filename().string();
        if (!IsLegacyRecordName(name)) continue;
        std::string hex = name.substr(0, name.size() - 5);
        StatusOr<std::string> old = ReadFileToString(de.path().string());
        std::optional<obs::Json> record =
            old.ok() ? obs::Json::Parse(*old) : std::nullopt;
        if (!record.has_value() || !record->is_object() ||
            JsonInt(*record, "format") != 1) {
          Quarantine(c, de.path());
          dirty = true;
          continue;
        }
        record->Set("format", obs::Json::Int(kFormatVersion));
        std::string payload = record->Dump(2) + "\n";
        int64_t gen = ++manifest.generation;
        std::string file = EntryFileName(hex, gen);
        fs::create_directories(EntriesDir(*c), ec);
        if (!WriteWithRetry(c, EntriesDir(*c) + "/" + file,
                            FrameEntry(payload))
                 .ok()) {
          --manifest.generation;
          continue;  // keep the legacy record; migrate on a later open
        }
        manifest.entries[hex] = EntryRef{file, Crc32(payload), gen};
        fs::remove(de.path(), ec);
        dirty = true;
        ++healed;
      }
    }

    // 4. Reconcile manifest against the entry files on disk.
    struct OnDisk {
      int64_t gen = 0;
      std::string file;
      uint32_t crc = 0;
      std::string key;  // payload's self-declared key
    };
    std::map<std::string, OnDisk> best;  // hex -> highest valid generation
    if (fs::is_directory(EntriesDir(*c), ec)) {
      for (const auto& de : fs::directory_iterator(EntriesDir(*c), ec)) {
        if (!de.is_regular_file(ec)) continue;
        std::string name = de.path().filename().string();
        if (name.ends_with(".tmp")) continue;  // removed above; belt+braces
        std::string hex;
        int64_t gen = 0;
        std::string payload;
        uint32_t crc = 0;
        if (!ParseEntryFileName(name, &hex, &gen) ||
            !ValidateEntryFile(de.path(), &payload, &crc)) {
          Quarantine(c, de.path());
          dirty = true;
          continue;
        }
        std::optional<obs::Json> record = obs::Json::Parse(payload);
        std::string self_key;
        if (record.has_value() && record->is_object()) {
          const obs::Json* k = record->Find("key");
          if (k != nullptr && k->is_string()) self_key = k->AsString();
        }
        if (self_key != hex) {
          // A well-formed file under the wrong name cannot be trusted as
          // a cache hit for that key.
          Quarantine(c, de.path());
          dirty = true;
          continue;
        }
        auto it = best.find(hex);
        if (it == best.end() || gen > it->second.gen) {
          if (it != best.end()) {
            // Superseded debris from an interrupted store.
            fs::remove(fs::path(EntriesDir(*c)) / it->second.file, ec);
            ++healed;
            dirty = true;
          }
          best[hex] = OnDisk{gen, name, crc, self_key};
        } else {
          fs::remove(de.path(), ec);
          ++healed;
          dirty = true;
        }
      }
    }
    // Manifest refs must point at existing valid files; on-disk files
    // newer than the ref win (a store that crashed after publish-write
    // but... the manifest rename IS publish, so a newer valid file means
    // the crash hit between entry write and manifest write — adopting it
    // is safe because entry files are complete-by-construction).
    for (auto it = manifest.entries.begin(); it != manifest.entries.end();) {
      auto disk = best.find(it->first);
      if (disk == best.end()) {
        it = manifest.entries.erase(it);
        dirty = true;
        ++healed;
        continue;
      }
      if (disk->second.gen != it->second.gen ||
          disk->second.crc != it->second.crc) {
        it->second = EntryRef{disk->second.file, disk->second.crc,
                              disk->second.gen};
        dirty = true;
        ++healed;
      }
      ++it;
    }
    for (const auto& [hex, disk] : best) {
      if (manifest.entries.count(hex) != 0) continue;
      manifest.entries[hex] = EntryRef{disk.file, disk.crc, disk.gen};
      dirty = true;
      ++healed;  // adopted orphan
    }
    for (const auto& [hex, ref] : manifest.entries) {
      manifest.generation = std::max(manifest.generation, ref.gen);
    }

    if (dirty) {
      WriteWithRetry(c, ManifestPath(*c), ManifestToText(manifest));
    }
    c->health_.recovered += healed;
  }

  /// True when the directory holds anything a recovery pass would care
  /// about (so a freshly created empty cache stays byte-empty on disk —
  /// `Open` must not invent files before the first store).
  static bool NeedsRecovery(const std::string& dir) {
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) return false;
    for (const auto& de : fs::directory_iterator(dir, ec)) {
      std::string name = de.path().filename().string();
      if (name == kLockName || name == kQuarantineDirName) continue;
      return true;
    }
    return false;
  }
};

ResultCache::ResultCache(std::string dir, const CacheOptions& options)
    : dir_(std::move(dir)), options_(options) {
  rng_ = options_.backoff_seed != 0 ? options_.backoff_seed : DefaultSeed();
}

StatusOr<std::unique_ptr<ResultCache>> ResultCache::Open(
    const std::string& dir, const CacheOptions& options) {
  if (dir.empty()) {
    return Status::InvalidArgument("cache directory path is empty", WAVE_LOC);
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable(
        "cannot create cache directory '" + dir + "': " + ec.message(),
        WAVE_LOC);
  }
  std::unique_ptr<ResultCache> cache(new ResultCache(dir, options));
  if (Impl::NeedsRecovery(dir)) {
    WAVE_FAULT("cache.open.recover");  // kill-point before healing starts
    LockGuard lock;
    if (lock.Acquire(Impl::LockPath(*cache), options.lock_backoff,
                     Impl::NextSeed(cache.get()),
                     &cache->health_.lock_waits)
            .ok()) {
      Impl::RecoverLocked(cache.get());
    }
    // Lock not acquired: a live peer owns the directory; it (or the next
    // uncontended Open) heals. Reads remain safe meanwhile.
  }
  return cache;
}

bool ResultCache::Lookup(const Fingerprint& key, WebAppSpec* spec,
                         VerifyResponse* response) {
  const std::string hex = key.ToHex();
  // Two passes: an entry file vanishing between the manifest snapshot and
  // the read is a benign race with a writer retiring that generation —
  // retry once against a fresh manifest before declaring a miss.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fault::Action a = WAVE_FAULT("cache.lookup.manifest");
        fault::IsError(a)) {
      break;
    }
    StatusOr<std::string> text = ReadFileToString(Impl::ManifestPath(*this));
    if (!text.ok()) break;  // no manifest yet -> cold cache
    std::optional<Manifest> manifest = ParseManifest(*text);
    if (!manifest.has_value()) {
      // The manifest is renamed into place atomically, so this is real
      // corruption, not a torn read. Count it; recovery (under lock, on
      // the next Open/Store) preserves it in quarantine and rebuilds.
      ++health_.corrupt;
      break;
    }
    auto it = manifest->entries.find(hex);
    if (it == manifest->entries.end()) break;
    if (fault::Action a = WAVE_FAULT("cache.lookup.entry");
        fault::IsError(a)) {
      break;
    }
    const std::string entry_path =
        Impl::EntriesDir(*this) + "/" + it->second.file;
    StatusOr<std::string> content = ReadFileToString(entry_path);
    if (!content.ok()) {
      if (content.status().code() == StatusCode::kNotFound) continue;
      break;
    }
    std::string payload;
    uint32_t crc = 0;
    if (!UnframeEntry(*content, &payload, &crc) || crc != it->second.crc) {
      Impl::QuarantineEntry(this, hex, it->second.file);
      break;
    }
    VerifyResponse out;
    if (!ParseRecordPayload(payload, spec, &out)) {
      Impl::QuarantineEntry(this, hex, it->second.file);
      break;
    }
    *response = std::move(out);
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

Status ResultCache::Store(const Fingerprint& key, const WebAppSpec& spec,
                          const VerifyResponse& response) {
  if (response.verdict == Verdict::kUnknown) {
    return Status::InvalidArgument(
        "only decided verdicts are cached (kUnknown reflects budgets, not "
        "the problem instance)",
        WAVE_LOC);
  }
  const std::string hex = key.ToHex();
  std::error_code ec;
  fs::create_directories(Impl::EntriesDir(*this), ec);
  if (ec) {
    return Status::Unavailable(
        "cannot create '" + Impl::EntriesDir(*this) + "': " + ec.message(),
        WAVE_LOC);
  }

  LockGuard lock;
  WAVE_RETURN_IF_ERROR(lock.Acquire(Impl::LockPath(*this),
                                    options_.lock_backoff,
                                    Impl::NextSeed(this),
                                    &health_.lock_waits));

  if (fault::Action a = WAVE_FAULT("cache.store.entry"); fault::IsError(a)) {
    return fault::ToStatus(a, "store " + hex);
  }

  // Manifest under the lock; a corrupt one triggers full recovery here
  // (we already hold the lock recovery needs).
  Manifest manifest;
  StatusOr<std::string> text = ReadFileToString(Impl::ManifestPath(*this));
  if (text.ok()) {
    std::optional<Manifest> parsed = ParseManifest(*text);
    if (parsed.has_value()) {
      manifest = std::move(*parsed);
    } else {
      ++health_.corrupt;
      Impl::RecoverLocked(this);
      text = ReadFileToString(Impl::ManifestPath(*this));
      std::optional<Manifest> healed =
          text.ok() ? ParseManifest(*text) : std::nullopt;
      if (healed.has_value()) manifest = std::move(*healed);
    }
  }

  const int64_t gen = manifest.generation + 1;
  const std::string payload = RecordPayload(key, spec, response);
  const std::string file = EntryFileName(hex, gen);
  WAVE_RETURN_IF_ERROR(Impl::WriteWithRetry(
      this, Impl::EntriesDir(*this) + "/" + file, FrameEntry(payload)));

  // Kill-point: the new-generation entry exists but is unpublished. A
  // crash here leaves a valid orphan that recovery adopts (or a reader
  // simply never sees).
  WAVE_FAULT("cache.store.publish");

  std::string old_file;
  if (auto it = manifest.entries.find(hex); it != manifest.entries.end()) {
    old_file = it->second.file;
  }
  manifest.generation = gen;
  manifest.entries[hex] = EntryRef{file, Crc32(payload), gen};

  Status publish = Status::Ok();
  if (fault::Action a = WAVE_FAULT("cache.store.manifest");
      fault::IsError(a)) {
    publish = fault::ToStatus(a, "publish manifest for " + hex);
  } else {
    publish = Impl::WriteWithRetry(this, Impl::ManifestPath(*this),
                                   ManifestToText(manifest));
  }
  if (!publish.ok()) {
    // Unpublished new generation: remove it so the failed store leaves no
    // trace (the old generation, if any, remains the live record).
    fs::remove(fs::path(Impl::EntriesDir(*this)) / file, ec);
    return publish;
  }

  // Retire the replaced generation. Failure is harmless: it becomes
  // superseded debris the next recovery sweep removes.
  if (!old_file.empty() && old_file != file) {
    fs::remove(fs::path(Impl::EntriesDir(*this)) / old_file, ec);
  }
  ++stores_;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// AuditCacheDir — the read-only invariant check behind tools/wave_crash.
// ---------------------------------------------------------------------------

CacheAudit AuditCacheDir(const std::string& dir) {
  CacheAudit audit;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return audit;  // no cache: consistent

  const fs::path entries_dir = fs::path(dir) / kEntriesDirName;
  const fs::path quarantine_dir = fs::path(dir) / kQuarantineDirName;

  for (const auto& de : fs::directory_iterator(dir, ec)) {
    std::string name = de.path().filename().string();
    if (de.is_regular_file(ec)) {
      if (name.ends_with(".tmp")) {
        ++audit.tmp_files;
        audit.problems.push_back("stray temp file: " + name);
      } else if (IsLegacyRecordName(name)) {
        ++audit.legacy_files;  // acceptable pre-migration state
      }
    }
  }
  if (fs::is_directory(quarantine_dir, ec)) {
    for (const auto& de : fs::directory_iterator(quarantine_dir, ec)) {
      if (de.is_regular_file(ec)) ++audit.quarantined_files;
    }
  }

  Manifest manifest;
  StatusOr<std::string> text =
      ReadFileToString((fs::path(dir) / kManifestName).string());
  if (text.ok()) {
    audit.manifest_present = true;
    std::optional<Manifest> parsed = ParseManifest(*text);
    if (parsed.has_value()) {
      audit.manifest_ok = true;
      manifest = std::move(*parsed);
    } else {
      audit.problems.push_back("MANIFEST unparseable or wrong format");
    }
  }

  std::map<std::string, bool> on_disk;  // entry file name -> referenced?
  if (fs::is_directory(entries_dir, ec)) {
    for (const auto& de : fs::directory_iterator(entries_dir, ec)) {
      if (!de.is_regular_file(ec)) continue;
      std::string name = de.path().filename().string();
      if (name.ends_with(".tmp")) {
        ++audit.tmp_files;
        audit.problems.push_back("stray temp file: entries/" + name);
        continue;
      }
      on_disk[name] = false;
    }
  }

  for (const auto& [hex, ref] : manifest.entries) {
    ++audit.manifested_entries;
    auto it = on_disk.find(ref.file);
    if (it == on_disk.end()) {
      ++audit.missing_entries;
      audit.problems.push_back("manifest references missing entry " +
                               ref.file);
      continue;
    }
    it->second = true;
    StatusOr<std::string> content =
        ReadFileToString((entries_dir / ref.file).string());
    std::string payload;
    uint32_t crc = 0;
    if (!content.ok() || !UnframeEntry(*content, &payload, &crc) ||
        crc != ref.crc) {
      ++audit.torn_entries;
      audit.problems.push_back("manifested entry fails CRC/frame check: " +
                               ref.file);
    }
  }
  for (const auto& [name, referenced] : on_disk) {
    if (!referenced) ++audit.orphan_files;  // crash debris, healed by Open
  }
  if (!audit.manifest_present && !on_disk.empty()) {
    audit.orphan_files = static_cast<int64_t>(on_disk.size());
  }
  return audit;
}

}  // namespace wave
