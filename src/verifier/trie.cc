#include "verifier/trie.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/alloc.h"

namespace wave {

int VisitedTrie::Node::FindChild(uint8_t label) const {
  auto it = std::lower_bound(labels.begin(), labels.end(), label);
  if (it == labels.end() || *it != label) return -1;
  return children[it - labels.begin()];
}

// The trie is path-compressed: every edge into a node carries the node's
// `edge` byte string (whose first byte is the child's label in the parent's
// sorted arrays). Keys walk edges with memcmp-style span matching; a
// mismatch in the middle of an edge splits the node.

bool VisitedTrie::Insert(const std::vector<uint8_t>& key) {
  bool added = InsertImpl(key);
  ++(added ? stats_.misses : stats_.hits);
  return added;
}

bool VisitedTrie::InsertImpl(const std::vector<uint8_t>& key) {
  int node = 0;
  size_t pos = 0;
  while (true) {
    Node& n = nodes_[node];
    // Match the remainder of this node's edge (the first byte was matched
    // while selecting the child).
    // Invariant: for the root, edge is empty.
    if (pos == key.size()) break;
    int child = n.FindChild(key[pos]);
    if (child == -1) {
      // New leaf holding the whole remaining suffix.
      int leaf = NewNode();
      nodes_[leaf].edge.assign(key.begin() + pos, key.end());
      approx_bytes_ += static_cast<int64_t>(key.size() - pos);
      obs::CountAlloc(static_cast<int64_t>(key.size() - pos));
      nodes_[leaf].terminal = true;
      AddChild(node, key[pos], leaf);
      ++num_keys_;
      return true;
    }
    Node& c = nodes_[child];
    size_t match = 0;
    while (match < c.edge.size() && pos + match < key.size() &&
           c.edge[match] == key[pos + match]) {
      ++match;
    }
    if (match == c.edge.size()) {
      pos += match;
      node = child;
      continue;
    }
    // Split the child's edge at `match`.
    int lower = NewNode();
    Node& child_node = nodes_[child];  // re-fetch (NewNode may reallocate)
    Node& lower_node = nodes_[lower];
    lower_node.edge.assign(child_node.edge.begin() + match,
                           child_node.edge.end());
    lower_node.labels = std::move(child_node.labels);
    lower_node.children = std::move(child_node.children);
    lower_node.terminal = child_node.terminal;
    child_node.edge.resize(match);
    child_node.labels.clear();
    child_node.children.clear();
    child_node.terminal = false;
    AddChild(child, lower_node.edge[0], lower);
    if (pos + match == key.size()) {
      // The key ends exactly at the split point.
      nodes_[child].terminal = true;
      ++num_keys_;
      return true;
    }
    int leaf = NewNode();
    nodes_[leaf].edge.assign(key.begin() + pos + match, key.end());
    approx_bytes_ += static_cast<int64_t>(key.size() - pos - match);
    obs::CountAlloc(static_cast<int64_t>(key.size() - pos - match));
    nodes_[leaf].terminal = true;
    AddChild(child, key[pos + match], leaf);
    ++num_keys_;
    return true;
  }
  if (nodes_[node].terminal) return false;
  nodes_[node].terminal = true;
  ++num_keys_;
  return true;
}

bool VisitedTrie::Contains(const std::vector<uint8_t>& key) const {
  int node = 0;
  size_t pos = 0;
  while (pos < key.size()) {
    int child = nodes_[node].FindChild(key[pos]);
    if (child == -1) {
      ++stats_.misses;
      return false;
    }
    const Node& c = nodes_[child];
    if (pos + c.edge.size() > key.size() ||
        !std::equal(c.edge.begin(), c.edge.end(), key.begin() + pos)) {
      ++stats_.misses;
      return false;
    }
    pos += c.edge.size();
    node = child;
  }
  ++(nodes_[node].terminal ? stats_.hits : stats_.misses);
  return nodes_[node].terminal;
}

int VisitedTrie::NewNode() {
  int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  approx_bytes_ += static_cast<int64_t>(sizeof(Node));
  obs::CountAlloc(static_cast<int64_t>(sizeof(Node)));
  return id;
}

void VisitedTrie::AddChild(int parent, uint8_t label, int child) {
  Node& p = nodes_[parent];
  auto it = std::lower_bound(p.labels.begin(), p.labels.end(), label);
  size_t pos = it - p.labels.begin();
  WAVE_CHECK(it == p.labels.end() || *it != label);
  p.labels.insert(p.labels.begin() + pos, label);
  p.children.insert(p.children.begin() + pos, child);
  approx_bytes_ +=
      static_cast<int64_t>(sizeof(uint8_t) + sizeof(int32_t));
  obs::CountAlloc(static_cast<int64_t>(sizeof(uint8_t) + sizeof(int32_t)));
}

void VisitedTrie::VisitKeyDepths(const std::function<void(int)>& fn) const {
  // Iterative DFS; depth counts nodes below the root, so a fully
  // path-compressed key (root -> one leaf) reports depth 1.
  std::vector<std::pair<int32_t, int>> stack;  // (node, depth)
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[node];
    if (n.terminal) fn(depth);
    for (int32_t child : n.children) {
      stack.emplace_back(child, depth + 1);
    }
  }
}

}  // namespace wave
