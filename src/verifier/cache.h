// Persistent cross-run result cache (ISSUE 4; on-disk format v2 and
// multi-process hardening in ISSUE 7 — see docs/ROBUSTNESS.md).
//
// A `ResultCache` is a directory of JSON records keyed by the content
// hash of (spec structure, property content, semantics-affecting
// options) produced by `ResultCacheKey`. A warm cache turns
// re-verification of an unchanged (spec, property, options) triple into
// one file read — the search is skipped entirely
// (`wave_verify --cache-dir`).
//
// What is stored: only DECIDED verdicts (kHolds / kViolated), with the
// witness binding, the counterexample pseudorun and the original run's
// stats. kUnknown is never stored — it reflects the budgets and machine of
// the run that produced it, not the problem instance.
//
// What keys the record: `heuristic1`, `heuristic2`,
// `exhaustive_existential`, `max_candidates` and `max_expansions` — the
// options that shape which verdict the engine can reach. Budgets that only
// decide *whether* the engine finishes (timeout, memory ceiling), `jobs`
// (verdicts are jobs-invariant — docs/PARALLELISM.md) and observability
// hooks are deliberately excluded: a decided verdict is sound regardless
// of them.
//
// On-disk format v2 — built for concurrent multi-process use:
//
//   <dir>/MANIFEST            atomically-renamed JSON index:
//                             {"format":2, "generation":N,
//                              "entries":{<hex>:{"file","crc","gen"}}}
//   <dir>/.lock               permanent advisory-flock fixture; writers
//                             hold it across store/recovery (the kernel
//                             releases it when a process dies, so a
//                             SIGKILLed writer can never deadlock peers)
//   <dir>/entries/<hex>.g<gen>.json
//                             immutable entry files: one header line
//                             "WAVECACHE2 crc32=XXXXXXXX len=N" + payload
//                             JSON. A new store writes a NEW generation
//                             file and retires the old one only after the
//                             manifest rename publishes it.
//   <dir>/quarantine/         corrupt files moved aside (never silently
//                             discarded), counted in `health().corrupt` /
//                             `.quarantined` and the `verify.cache.*`
//                             metrics.
//
// Readers take NO lock: they snapshot the manifest (atomic rename makes
// that a consistent point-in-time view) and read immutable entry files.
// An entry missing underfoot is a benign lost race with a concurrent
// writer retiring an old generation: the reader retries once against a
// fresh manifest, then degrades to a miss. A CRC or parse failure, by
// contrast, is real corruption: the file is quarantined and counted.
//
// `Open` heals a directory that a crashed process left mid-store:
// stray `*.tmp` files are removed, a missing/corrupt manifest is rebuilt
// from the (self-validating) entry files, fully-written orphan entries
// are adopted, superseded generations retired, and legacy v1 flat
// `<hex>.json` records migrated in place. `AuditCacheDir` checks the
// same invariants without mutating anything — `tools/wave_crash` calls
// it after every SIGKILL.
//
// Portability: records never contain process-local `SymbolId`s — symbols
// cross the file boundary by NAME and are re-interned on load (fresh
// witness values keep their minted `$...` names). A record that fails to
// parse degrades to a MISS, never to an error: a corrupted cache costs a
// re-verification (plus a quarantine entry), nothing else.
#ifndef WAVE_VERIFIER_CACHE_H_
#define WAVE_VERIFIER_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/fingerprint.h"
#include "common/status.h"
#include "spec/web_app.h"
#include "verifier/verifier.h"

namespace wave {

/// Key of one persistent record: spec fingerprint × property content ×
/// the semantics-affecting options (see the file comment for the list).
Fingerprint ResultCacheKey(const Fingerprint& spec_fingerprint,
                           const Property& property,
                           const SymbolTable& symbols,
                           const VerifyOptions& options);

/// Tuning knobs for the multi-process machinery. The defaults suit both
/// tests and production; only the backoff seeds matter for determinism
/// (0 = derive from the pid, so real processes de-synchronize).
struct CacheOptions {
  /// Writer-lock acquisition: patient (a peer may be mid-store).
  BackoffPolicy lock_backoff{/*initial_seconds=*/0.002, /*multiplier=*/2.0,
                             /*max_delay_seconds=*/0.25, /*jitter=*/0.5,
                             /*max_attempts=*/0,
                             /*total_budget_seconds=*/5.0};
  /// Transient-I/O retry inside load/store: tight (fail fast, the cache
  /// is an optimization).
  BackoffPolicy io_retry{/*initial_seconds=*/0.001, /*multiplier=*/4.0,
                         /*max_delay_seconds=*/0.05, /*jitter=*/0.5,
                         /*max_attempts=*/3,
                         /*total_budget_seconds=*/0.5};
  uint64_t backoff_seed = 0;
};

/// The on-disk cache. Open once, share across calls. Safe for concurrent
/// *processes* on one directory (advisory flock for writers, lock-free
/// manifest-snapshot readers, crash recovery on open); like the rest of
/// the verifier, one `ResultCache` object is not for concurrent threads.
class ResultCache {
 public:
  /// Opens the cache directory (creating it if needed) and heals any
  /// crash debris left by a previous process. Recovery runs under the
  /// writer lock; if a peer holds it past the backoff budget, healing is
  /// skipped (the peer is alive and responsible) rather than blocking.
  static StatusOr<std::unique_ptr<ResultCache>> Open(
      const std::string& dir, const CacheOptions& options = {});

  /// Fills `response` from the record for `key` and returns true on a hit.
  /// Returns false — a miss — when the record is absent, quarantined as
  /// corrupt, of an unknown format version, or inconsistent with `spec`
  /// (needed to re-intern counterexample symbols; mutated only through its
  /// symbol table). Lock-free.
  bool Lookup(const Fingerprint& key, WebAppSpec* spec,
              VerifyResponse* response);

  /// Stores a DECIDED response under `key`: takes the writer lock, writes
  /// an immutable new-generation entry file, publishes it with an atomic
  /// manifest rename, then retires the old generation. Undecided
  /// responses are rejected with InvalidArgument; lock/I-O trouble
  /// surfaces as kUnavailable (the caller loses a warm start, nothing
  /// else).
  Status Store(const Fingerprint& key, const WebAppSpec& spec,
               const VerifyResponse& response);

  const std::string& dir() const { return dir_; }

  // Lifetime counters (lookups resolve to exactly one of hit/miss).
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t stores() const { return stores_; }

  /// Robustness counters, surfaced as `verify.cache.*` metric deltas by
  /// the verify driver and as a warning line by `wave_verify`.
  struct HealthCounters {
    int64_t corrupt = 0;      // entries that failed CRC/parse validation
    int64_t quarantined = 0;  // files moved into <dir>/quarantine/
    int64_t lock_waits = 0;   // backoff sleeps while acquiring the lock
    int64_t recovered = 0;    // healing actions taken by Open/recovery
  };
  const HealthCounters& health() const { return health_; }

 private:
  ResultCache(std::string dir, const CacheOptions& options);

  class Impl;
  friend class Impl;

  std::string dir_;
  CacheOptions options_;
  uint64_t rng_ = 0;  // seeds per-acquisition backoff jitter
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t stores_ = 0;
  HealthCounters health_;
};

/// Read-only consistency check of a cache directory — what
/// `tools/wave_crash` asserts after every SIGKILL and recovery cycle.
struct CacheAudit {
  bool manifest_present = false;
  bool manifest_ok = false;      // parsed, format 2, all refs accounted for
  int64_t manifested_entries = 0;
  int64_t torn_entries = 0;      // manifested but failing CRC/header checks
  int64_t missing_entries = 0;   // manifested but no file on disk
  int64_t orphan_files = 0;      // entry files the manifest doesn't know
  int64_t tmp_files = 0;         // stray *.tmp anywhere in the tree
  int64_t legacy_files = 0;      // un-migrated v1 flat records
  int64_t quarantined_files = 0; // informational (not an inconsistency)
  std::vector<std::string> problems;  // human-readable, one per defect

  /// True when the directory is safe to serve reads from as-is. A healed
  /// directory (post-`Open`) must additionally have no orphans/tmps —
  /// `clean()` checks that stricter bar.
  bool consistent() const { return problems.empty(); }
  bool clean() const {
    return consistent() && orphan_files == 0 && tmp_files == 0 &&
           legacy_files == 0;
  }
};
CacheAudit AuditCacheDir(const std::string& dir);

}  // namespace wave

#endif  // WAVE_VERIFIER_CACHE_H_
