// Persistent cross-run result cache (ISSUE 4).
//
// A `ResultCache` is a directory of JSON records, one per decided
// verification: `<fingerprint>.json` where the fingerprint is the content
// hash of (spec structure, property content, semantics-affecting options)
// produced by `ResultCacheKey`. A warm cache turns re-verification of an
// unchanged (spec, property, options) triple into one file read — the
// search is skipped entirely (`wave_verify --cache-dir`).
//
// What is stored: only DECIDED verdicts (kHolds / kViolated), with the
// witness binding, the counterexample pseudorun and the original run's
// stats. kUnknown is never stored — it reflects the budgets and machine of
// the run that produced it, not the problem instance.
//
// What keys the record: `heuristic1`, `heuristic2`,
// `exhaustive_existential`, `max_candidates` and `max_expansions` — the
// options that shape which verdict the engine can reach. Budgets that only
// decide *whether* the engine finishes (timeout, memory ceiling), `jobs`
// (verdicts are jobs-invariant — docs/PARALLELISM.md) and observability
// hooks are deliberately excluded: a decided verdict is sound regardless
// of them.
//
// Portability: records never contain process-local `SymbolId`s — symbols
// cross the file boundary by NAME and are re-interned on load (fresh
// witness values keep their minted `$...` names). A record that fails to
// parse, has the wrong format version, or references unknown relations or
// pages degrades to a MISS, never to an error: a corrupted cache costs a
// re-verification, nothing else. Writes go through `AtomicWriteFile`, so
// records are never observed half-written.
#ifndef WAVE_VERIFIER_CACHE_H_
#define WAVE_VERIFIER_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/fingerprint.h"
#include "common/status.h"
#include "spec/web_app.h"
#include "verifier/verifier.h"

namespace wave {

/// Key of one persistent record: spec fingerprint × property content ×
/// the semantics-affecting options (see the file comment for the list).
Fingerprint ResultCacheKey(const Fingerprint& spec_fingerprint,
                           const Property& property,
                           const SymbolTable& symbols,
                           const VerifyOptions& options);

/// The on-disk cache. Open once, share across calls; safe for concurrent
/// *processes* (atomic writes, parse-or-miss reads) but, like the rest of
/// the verifier, not for concurrent threads.
class ResultCache {
 public:
  /// Opens (creating it if needed) the cache directory.
  static StatusOr<std::unique_ptr<ResultCache>> Open(const std::string& dir);

  /// Fills `response` from the record for `key` and returns true on a hit.
  /// Returns false — a miss — when the record is absent, unparseable,
  /// truncated, of an unknown format version, or inconsistent with `spec`
  /// (needed to re-intern counterexample symbols; mutated only through its
  /// symbol table).
  bool Lookup(const Fingerprint& key, WebAppSpec* spec,
              VerifyResponse* response);

  /// Stores a DECIDED response under `key` (atomic write). Undecided
  /// responses are rejected with InvalidArgument.
  Status Store(const Fingerprint& key, const WebAppSpec& spec,
               const VerifyResponse& response);

  const std::string& dir() const { return dir_; }
  std::string PathFor(const Fingerprint& key) const;

  // Lifetime counters (lookups resolve to exactly one of hit/miss).
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t stores() const { return stores_; }

 private:
  explicit ResultCache(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t stores_ = 0;
};

}  // namespace wave

#endif  // WAVE_VERIFIER_CACHE_H_
