#include "verifier/verifier.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "obs/alloc.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "verifier/cache.h"
#include "verifier/encode.h"
#include "verifier/retry.h"
#include "verifier/session.h"
#include "verifier/shard.h"
#include "verifier/trie.h"
#include "verifier/worker_pool.h"

namespace wave {

namespace {

enum class SearchStatus { kContinue, kFound, kAbort };

/// Why a runner's shard returned kAbort: a shard-local candidate overflow
/// (recorded, siblings continue), a lost claim race on a property another
/// worker already decided (that job's remaining shards are skipped, the
/// rest of the batch continues), or a global stop (ledger trip / every
/// property decided — the runner drains no further shards).
enum class AbortKind { kNone, kLocal, kJobSettled, kGlobal };

GovernorLimits GovernorLimitsFromOptions(const VerifyOptions& options) {
  GovernorLimits limits;
  limits.deadline_seconds = options.timeout_seconds;
  limits.max_expansions = options.max_expansions;
  limits.max_memory_bytes = options.max_memory_bytes;
  limits.cancellation = options.cancellation;
  return limits;
}

const char* VerdictString(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "violated";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

/// Heartbeat counters a worker publishes for the coordinator's aggregated
/// progress snapshots (jobs > 1 only; all relaxed — monitoring data).
struct WorkerProgress {
  std::atomic<int64_t> expansions{0};
  std::atomic<int64_t> successors{0};
  std::atomic<int64_t> cores{0};
  std::atomic<int> trie_size{0};
  std::atomic<int> max_trie{0};
};

/// State shared by every worker searching ONE property of the attempt,
/// guarded by one mutex: the first-counterexample claim (plus the
/// serialized candidate_filter) and the minimum-(assignment, core)
/// shard-local unknown.
struct EngineShared {
  std::mutex mu;

  bool winner_claimed = false;
  std::vector<CounterexampleStep> stick;
  std::vector<CounterexampleStep> candy;
  std::map<std::string, SymbolId> witness_binding;

  int64_t rejected = 0;    // counterexamples discarded by candidate_filter
  double validate_us = 0;  // wall time inside candidate_filter

  bool has_local_unknown = false;
  int local_assignment = 0;
  int64_t local_core = 0;
  UnknownReason local_reason = UnknownReason::kNone;
  std::string local_message;

  /// Keeps the lexicographically smallest (assignment, core) unknown —
  /// the one the sequential search would have hit (and stopped at) first.
  void RecordLocalUnknown(int assignment, int64_t core,
                          UnknownReason reason, std::string message) {
    std::lock_guard<std::mutex> lock(mu);
    if (has_local_unknown &&
        std::pair<int, int64_t>(local_assignment, local_core) <=
            std::pair<int, int64_t>(assignment, core)) {
      return;
    }
    has_local_unknown = true;
    local_assignment = assignment;
    local_core = core;
    local_reason = reason;
    local_message = std::move(message);
  }
};

/// One entry of the fused batch shard stream: the shard queue addresses
/// assignments by GLOBAL slot index, and the slot says which property
/// ("job") the assignment belongs to and which plan/context to search
/// under. For a single-property run there is one job and the slot index
/// equals the assignment index — byte-for-byte the PR-3 engine.
struct BatchSlot {
  int job = 0;
  const PropertyPlan* plan = nullptr;
  const AssignmentContext* ctx = nullptr;
};

/// Cross-property shared state of one batch attempt: one EngineShared per
/// job, a settled flag per job (set when its counterexample is claimed, so
/// workers skip the job's remaining shards without taking its mutex), and
/// the count of jobs still worth searching — when it hits zero the whole
/// pool stops, even though no global budget tripped.
struct BatchShared {
  explicit BatchShared(int num_jobs)
      : settled(new std::atomic<bool>[num_jobs]) {
    for (int j = 0; j < num_jobs; ++j) {
      jobs.push_back(std::make_unique<EngineShared>());
      settled[j].store(false, std::memory_order_relaxed);
    }
  }

  std::vector<std::unique_ptr<EngineShared>> jobs;
  std::unique_ptr<std::atomic<bool>[]> settled;
  std::atomic<int> unsettled{0};
};

/// One worker's NDFS machinery: its own visited trie, search stacks,
/// governor front end and stats. Pops shards off the queue until it runs
/// dry or a stop fans out. Reads the plans/contexts only; everything it
/// writes is thread-local except the mutex-guarded EngineShared claims.
/// Stats are double-entry: `stats_` aggregates across the whole drain (the
/// governor's expansion watch target), `job_stats_[j]` slices the same
/// counters per property for the per-property merge.
class ShardRunner {
 public:
  ShardRunner(const std::vector<BatchSlot>* slots, int num_jobs,
              const PreparedSpec* prepared, const VerifyOptions* options,
              BatchShared* batch, BudgetLedger* ledger, int worker,
              obs::Tracer* tracer, bool heartbeat_enabled,
              WorkerProgress* progress, bool telemetry)
      : slots_(slots),
        prepared_(prepared),
        options_(options),
        batch_(batch),
        ledger_(ledger),
        worker_(worker),
        tracer_(tracer),
        heartbeat_enabled_(heartbeat_enabled),
        progress_(progress),
        telemetry_(telemetry),
        gov_(ledger, worker),
        job_stats_(num_jobs) {
    gov_.WatchExpansions(&stats_.num_expansions);
    assignment_us_.assign(slots->size(), 0.0);
  }

  void Drain(ShardQueue* queue) {
    // Route the search structures' counting-allocator reports (trie
    // nodes/edges, key-scratch growth, stack frames) to this worker while
    // telemetry is on; with telemetry off no sink is installed and every
    // CountAlloc site is a predicted-not-taken branch.
    std::optional<obs::ScopedAllocTracking> alloc_scope;
    if (telemetry_) alloc_scope.emplace(&alloc_);
    Shard shard;
    while (!ledger_->stop_requested() && queue->Pop(worker_, &shard)) {
      Stopwatch shard_watch;
      SearchStatus status = RunShard(shard);
      assignment_us_[shard.assignment] += shard_watch.ElapsedMicros();
      if (status == SearchStatus::kFound) {
        // This property is decided, but siblings in the batch may not be:
        // keep draining (their shards are skipped cheaply if settled).
        continue;
      }
      if (status == SearchStatus::kAbort) {
        if (abort_kind_ == AbortKind::kLocal) {
          shared_->RecordLocalUnknown(ctx_->index, shard.core,
                                      local_reason_,
                                      std::move(local_message_));
          abort_kind_ = AbortKind::kNone;
          continue;  // siblings are still worth searching
        }
        if (abort_kind_ == AbortKind::kJobSettled) {
          abort_kind_ = AbortKind::kNone;
          continue;  // lost the claim race on an already-decided property
        }
        break;  // global trip or stop fan-out
      }
    }
    // Publish the tail deltas (no limit check: a deadline that lapses
    // after the last shard finished must not flip a completed search).
    gov_.Flush();
  }

  const VerifyStats& stats() const { return stats_; }
  const std::vector<VerifyStats>& job_stats() const { return job_stats_; }
  const std::vector<double>& assignment_us() const { return assignment_us_; }
  int64_t heartbeats() const { return heartbeats_; }

 private:
  SearchStatus RunShard(const Shard& shard) {
    const BatchSlot& slot = (*slots_)[shard.assignment];
    job_ = slot.job;
    if (batch_->settled[job_].load(std::memory_order_acquire)) {
      // The property already has its counterexample; skipped shards count
      // toward no stats (they were never searched).
      return SearchStatus::kContinue;
    }
    plan_ = slot.plan;
    ctx_ = slot.ctx;
    spec_ = plan_->spec;
    shared_ = batch_->jobs[job_].get();
    job_cur_ = &job_stats_[job_];
    const int64_t expansions_before = job_cur_->num_expansions;
    const obs::AllocStats alloc_before = alloc_;

    obs::ScopedSpan span(tracer_, "core");
    ++stats_.num_cores;
    ++job_cur_->num_cores;
    core_.clear();
    const auto& tuples = ctx_->core_candidates->tuples;
    for (size_t b = 0; b < tuples.size(); ++b) {
      if ((shard.core >> b) & 1) core_.push_back(tuples[b]);
    }
    trie_ = std::make_unique<VisitedTrie>();
    stick_stack_.clear();
    candy_stack_.clear();
    stack_bytes_ = 0;

    // Start pseudoconfigurations: home page, database = core ∪ extension.
    Configuration skeleton;
    skeleton.page = spec_->home_page();
    skeleton.data = Instance(&spec_->catalog());
    skeleton.previous = Instance(&spec_->catalog());
    for (const auto& [relation, tuple] : core_) {
      skeleton.data.relation(relation).Insert(tuple);
    }
    SearchStatus status = ForEachCompletion(
        skeleton, /*prev_page=*/-1, [this](const Configuration& c0) {
          return Stick(plan_->automaton.start, c0, 1);
        });
    stats_.max_trie_size = std::max(stats_.max_trie_size, trie_->size());
    job_cur_->max_trie_size =
        std::max(job_cur_->max_trie_size, trie_->size());
    stats_.trie_hits += trie_->stats().hits;
    stats_.trie_misses += trie_->stats().misses;
    job_cur_->trie_hits += trie_->stats().hits;
    job_cur_->trie_misses += trie_->stats().misses;
    if (telemetry_) {
      // Per-shard search telemetry (ISSUE 6): key-depth distribution of
      // this shard's trie, expansion count, and tracked allocation bytes.
      trie_->VisitKeyDepths(
          [this](int depth) { job_cur_->trie_depth.Record(depth); });
      job_cur_->trie_nodes += trie_->node_count();
      job_cur_->shard_expansions.Record(
          static_cast<double>(job_cur_->num_expansions - expansions_before));
      job_cur_->shard_alloc_bytes.Record(
          static_cast<double>(alloc_.bytes - alloc_before.bytes));
      job_cur_->alloc_bytes += alloc_.bytes - alloc_before.bytes;
      job_cur_->alloc_count += alloc_.count - alloc_before.count;
    }
    return status;
  }

  /// Trie ops with sampled latency: every 64th visited-set operation is
  /// timed (telemetry on only), so `trie_lookup_us` reflects hit/miss
  /// latency without putting a clock read on every expansion.
  bool TimedInsert(const std::vector<uint8_t>& key) {
    if (telemetry_ && (++lookup_tick_ & 63) == 0) {
      Stopwatch watch;
      bool added = trie_->Insert(key);
      job_cur_->trie_lookup_us.Record(watch.ElapsedMicros());
      return added;
    }
    return trie_->Insert(key);
  }
  bool TimedContains(const std::vector<uint8_t>& key) {
    if (telemetry_ && (++lookup_tick_ & 63) == 0) {
      Stopwatch watch;
      bool found = trie_->Contains(key);
      job_cur_->trie_lookup_us.Record(watch.ElapsedMicros());
      return found;
    }
    return trie_->Contains(key);
  }

  /// Enumerates extensions and input choices completing `skeleton` (whose
  /// page/state/previous are set and whose database holds exactly the
  /// core), invoking `fn` for each completed configuration.
  template <typename Fn>
  SearchStatus ForEachCompletion(const Configuration& skeleton,
                                 int prev_page, const Fn& fn) {
    const CandidateSet* ext = ctx_->extension(skeleton.page, prev_page);
    WAVE_CHECK_MSG(ext != nullptr,
                   "unwarmed extension pair (page "
                       << skeleton.page << ", prev " << prev_page << ")");
    if (ext->overflow) {
      local_message_ = "extension candidate overflow at page " +
                       spec_->page(skeleton.page).name + " (" +
                       std::to_string(ext->approx_tuple_count) +
                       " candidate tuples); Heuristic 2 " +
                       (options_->heuristic2 ? "insufficient" : "disabled");
      local_reason_ = UnknownReason::kCandidateBudget;
      abort_kind_ = AbortKind::kLocal;
      return SearchStatus::kAbort;
    }
    DynamicBitset ext_bitmap(static_cast<int>(ext->tuples.size()));
    while (true) {
      Configuration with_ext = skeleton;
      for (int b = 0; b < ext_bitmap.size(); ++b) {
        if (ext_bitmap.Test(b)) {
          const auto& [relation, tuple] = ext->tuples[b];
          with_ext.data.relation(relation).Insert(tuple);
        }
      }
      std::vector<SymbolId> domain = WindowDomain(with_ext);
      InputOptions input_options = prepared_->ComputeOptions(with_ext, domain);
      std::vector<InputChoice> choices =
          EnumerateChoices(with_ext.page, input_options);
      for (const InputChoice& choice : choices) {
        Configuration complete = with_ext;
        prepared_->ApplyInput(choice, domain, &complete);
        FilterToUniverse(&complete.data, RelationKind::kAction);
        ++stats_.num_successors;
        ++job_cur_->num_successors;
        SearchStatus status = fn(complete);
        if (status != SearchStatus::kContinue) return status;
      }
      if (!ext_bitmap.Increment()) break;
    }
    return SearchStatus::kContinue;
  }

  /// succP (Section 3.1): keep the core, recompute page/state/previous,
  /// re-choose the extension and input.
  template <typename Fn>
  SearchStatus ForEachSuccessor(const Configuration& config, const Fn& fn) {
    std::vector<SymbolId> domain = WindowDomain(config);
    Configuration skeleton = prepared_->Advance(config, domain);
    // States are kept only over C (other tuples cannot affect the
    // input-bounded property or rules).
    FilterToUniverse(&skeleton.data, RelationKind::kState);
    PruneIrrelevant(&skeleton);
    // The previous extension is discarded: reset the database to the core.
    for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
      if (spec_->catalog().schema(id).kind == RelationKind::kDatabase) {
        skeleton.data.relation(id).Clear();
      }
    }
    for (const auto& [relation, tuple] : core_) {
      skeleton.data.relation(relation).Insert(tuple);
    }
    return ForEachCompletion(skeleton, config.page, fn);
  }

  // --- the nested depth-first search ----------------------------------------
  SearchStatus Stick(int state, const Configuration& config, int depth) {
    if (SearchStatus status = CheckBudgets();
        status != SearchStatus::kContinue) {
      return status;
    }
    EncodeVisitedKeyInto(0, state, config, &key_scratch_);
    if (!TimedInsert(key_scratch_)) {
      return SearchStatus::kContinue;
    }
    // The encoded key length doubles as this frame's share of the memory
    // estimate (the stacks hold one Configuration per frame). Early aborts
    // skip the matching subtraction deliberately: the search is over.
    const int64_t frame_bytes = static_cast<int64_t>(key_scratch_.size());
    stack_bytes_ += frame_bytes;
    obs::CountAlloc(frame_bytes);
    gov_.ReportMemory(trie_->approx_bytes() + stack_bytes_);
    ++stats_.num_expansions;
    ++job_cur_->num_expansions;
    stats_.max_pseudorun_length =
        std::max(stats_.max_pseudorun_length, depth);
    job_cur_->max_pseudorun_length =
        std::max(job_cur_->max_pseudorun_length, depth);
    stick_stack_.push_back({state, config});
    if (telemetry_) {
      job_cur_->search_depth.Record(depth);
      job_cur_->frontier_size.Record(
          static_cast<double>(stick_stack_.size() + candy_stack_.size()));
    }

    std::vector<bool> assignment = EvalComponents(config);
    for (const BuchiTransition& t : plan_->automaton.adj[state]) {
      if (!GuardSatisfied(t.guard, assignment)) continue;
      SearchStatus status = ForEachSuccessor(
          config, [&](const Configuration& next) -> SearchStatus {
            EncodeVisitedKeyInto(0, t.to, next, &key_scratch_);
            if (!TimedContains(key_scratch_)) {
              SearchStatus s = Stick(t.to, next, depth + 1);
              if (s != SearchStatus::kContinue) return s;
            }
            if (plan_->automaton.accepting[t.to]) {
              base_state_ = t.to;
              base_config_ = next;
              candy_stack_.clear();
              SearchStatus s = Candy(t.to, next, depth + 1);
              if (s != SearchStatus::kContinue) return s;
            }
            return SearchStatus::kContinue;
          });
      if (status != SearchStatus::kContinue) return status;
    }
    stick_stack_.pop_back();
    stack_bytes_ -= frame_bytes;
    return SearchStatus::kContinue;
  }

  SearchStatus Candy(int state, const Configuration& config, int depth) {
    if (SearchStatus status = CheckBudgets();
        status != SearchStatus::kContinue) {
      return status;
    }
    EncodeVisitedKeyInto(1, state, config, &key_scratch_);
    if (!TimedInsert(key_scratch_)) {
      return SearchStatus::kContinue;
    }
    const int64_t frame_bytes = static_cast<int64_t>(key_scratch_.size());
    stack_bytes_ += frame_bytes;
    obs::CountAlloc(frame_bytes);
    gov_.ReportMemory(trie_->approx_bytes() + stack_bytes_);
    ++stats_.num_expansions;
    ++job_cur_->num_expansions;
    stats_.max_pseudorun_length =
        std::max(stats_.max_pseudorun_length, depth);
    job_cur_->max_pseudorun_length =
        std::max(job_cur_->max_pseudorun_length, depth);
    candy_stack_.push_back({state, config});
    if (telemetry_) {
      job_cur_->search_depth.Record(depth);
      job_cur_->frontier_size.Record(
          static_cast<double>(stick_stack_.size() + candy_stack_.size()));
    }

    std::vector<bool> assignment = EvalComponents(config);
    for (const BuchiTransition& t : plan_->automaton.adj[state]) {
      if (!GuardSatisfied(t.guard, assignment)) continue;
      SearchStatus status = ForEachSuccessor(
          config, [&](const Configuration& next) -> SearchStatus {
            if (t.to == base_state_ && next == base_config_) {
              return ClaimCounterexample();
            }
            EncodeVisitedKeyInto(1, t.to, next, &key_scratch_);
            if (!TimedContains(key_scratch_)) {
              return Candy(t.to, next, depth + 1);
            }
            return SearchStatus::kContinue;
          });
      if (status != SearchStatus::kContinue) return status;
    }
    candy_stack_.pop_back();
    stack_bytes_ -= frame_bytes;
    return SearchStatus::kContinue;
  }

  /// Lollipop closed: candidate counterexample. First worker to claim the
  /// PROPERTY under its engine mutex wins; the candidate_filter (if any)
  /// runs serialized under the same mutex — paper Section 7: "If it does
  /// not [correspond to a genuine run], the ndfs search is reactivated".
  /// Deciding one property only stops the pool when it was the last
  /// undecided one; otherwise its remaining shards are skipped and the
  /// batch keeps searching.
  SearchStatus ClaimCounterexample() {
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (shared_->winner_claimed) {
      // Another worker already reported this property.
      abort_kind_ = AbortKind::kJobSettled;
      return SearchStatus::kAbort;
    }
    if (options_->candidate_filter != nullptr) {
      obs::ScopedSpan validate_span(tracer_, "validate");
      Stopwatch validate_watch;
      bool accepted = options_->candidate_filter(stick_stack_, candy_stack_,
                                                 ctx_->binding);
      shared_->validate_us += validate_watch.ElapsedMicros();
      if (!accepted) {
        ++shared_->rejected;
        return SearchStatus::kContinue;
      }
    }
    shared_->winner_claimed = true;
    shared_->stick = stick_stack_;
    shared_->candy = candy_stack_;
    shared_->witness_binding = ctx_->binding;
    lock.unlock();
    batch_->settled[job_].store(true, std::memory_order_release);
    if (batch_->unsettled.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Every property with shards is now decided: stop the whole pool.
      ledger_->RequestStop();
    }
    return SearchStatus::kFound;
  }

  // --- evaluation helpers ---------------------------------------------------
  std::vector<bool> EvalComponents(const Configuration& config) {
    ConfigurationAdapter view(&config);
    std::vector<SymbolId> domain = WindowDomain(config);
    std::vector<bool> assignment(ctx_->components.size());
    for (size_t i = 0; i < ctx_->components.size(); ++i) {
      std::vector<SymbolId> regs = ctx_->components[i].MakeRegisters();
      assignment[i] = ctx_->components[i].EvalClosed(view, domain, &regs);
    }
    return assignment;
  }

  std::vector<SymbolId> WindowDomain(const Configuration& config) const {
    std::vector<SymbolId> domain = ctx_->constant_vector;
    std::vector<SymbolId> active = config.data.ActiveDomain();
    domain.insert(domain.end(), active.begin(), active.end());
    std::vector<SymbolId> prev = config.previous.ActiveDomain();
    domain.insert(domain.end(), prev.begin(), prev.end());
    const PageDomain& pd = *plan_->page_domain_table[config.page];
    domain.insert(domain.end(), pd.all_values.begin(), pd.all_values.end());
    std::sort(domain.begin(), domain.end());
    domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
    return domain;
  }

  /// Removes tuples with any value outside C from relations of `kind`.
  void FilterToUniverse(Instance* instance, RelationKind kind) {
    for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
      if (spec_->catalog().schema(id).kind != kind) continue;
      Relation& r = instance->relation(id);
      Relation filtered(r.arity());
      for (const Tuple& t : r.tuples()) {
        bool in_universe = true;
        for (SymbolId v : t) {
          if (ctx_->constant_universe.count(v) == 0) {
            in_universe = false;
            break;
          }
        }
        if (in_universe) filtered.Insert(t);
      }
      r = std::move(filtered);
    }
  }

  /// Clears irrelevant state/action tuples and previous inputs the current
  /// page (and property) cannot read.
  void PruneIrrelevant(Configuration* config) {
    const Catalog& catalog = spec_->catalog();
    const std::set<RelationId>& page_prev =
        plan_->prev_read_by_page[config->page];
    for (RelationId id = 0; id < catalog.size(); ++id) {
      RelationKind kind = catalog.schema(id).kind;
      if (kind == RelationKind::kState || kind == RelationKind::kAction) {
        if (!plan_->relevant[id]) config->data.relation(id).Clear();
      } else if (kind == RelationKind::kInput ||
                 kind == RelationKind::kInputConstant) {
        if (page_prev.count(id) == 0 &&
            plan_->property_prev_reads.count(id) == 0) {
          config->previous.relation(id).Clear();
        }
      }
    }
  }

  std::vector<InputChoice> EnumerateChoices(int page,
                                            const InputOptions& options) {
    const PageSchema& schema = spec_->page(page);
    const PageDomain& pd = *plan_->page_domain_table[page];
    // Alternatives per input: "no choice" plus each offered tuple; input
    // constants take a fresh page value or a constant they are compared to.
    std::vector<std::pair<RelationId, std::vector<Tuple>>> alternatives;
    for (RelationId input : schema.inputs) {
      std::vector<Tuple> tuples;
      if (!plan_->relevant[input]) {
        // Nothing reads this input anywhere: the choice cannot matter.
        alternatives.emplace_back(input, std::move(tuples));
        continue;
      }
      if (spec_->catalog().schema(input).kind ==
          RelationKind::kInputConstant) {
        auto it = pd.input_values.find({input, 0});
        if (it != pd.input_values.end()) tuples.push_back({it->second});
        for (SymbolId c : ctx_->analysis->constants({input, 0})) {
          if (ctx_->constant_universe.count(c) > 0) tuples.push_back({c});
        }
      } else {
        auto it = options.find(input);
        if (it != options.end()) tuples = it->second;
      }
      alternatives.emplace_back(input, std::move(tuples));
    }
    std::vector<InputChoice> out = {{}};
    for (const auto& [input, tuples] : alternatives) {
      std::vector<InputChoice> expanded;
      for (const InputChoice& base : out) {
        expanded.push_back(base);  // "no choice" for this input
        for (const Tuple& t : tuples) {
          InputChoice with = base;
          with[input] = t;
          expanded.push_back(std::move(with));
        }
      }
      out = std::move(expanded);
    }
    return out;
  }

  /// Hot-loop governance probe: one `WorkerGovernor::Tick` (a counter
  /// compare and a relaxed trip load on most calls; a flush + ledger check
  /// every kPollStride-th) plus one relaxed stop-flag load, so a sibling's
  /// counterexample stops this worker within one poll stride.
  SearchStatus CheckBudgets() {
    UnknownReason reason = gov_.Tick();
    if (reason != UnknownReason::kNone) {
      abort_kind_ = AbortKind::kGlobal;
      return SearchStatus::kAbort;
    }
    if (ledger_->stop_requested()) {
      abort_kind_ = AbortKind::kGlobal;
      return SearchStatus::kAbort;
    }
    if (batch_->settled[job_].load(std::memory_order_relaxed)) {
      // This property was decided by a sibling mid-shard: the rest of this
      // shard's search can no longer change any verdict.
      abort_kind_ = AbortKind::kJobSettled;
      return SearchStatus::kAbort;
    }
    if (progress_ != nullptr) PublishProgress();
    if (heartbeat_enabled_) MaybeHeartbeat(ledger_->ElapsedSeconds());
    return SearchStatus::kContinue;
  }

  void PublishProgress() {
    progress_->expansions.store(stats_.num_expansions,
                                std::memory_order_relaxed);
    progress_->successors.store(stats_.num_successors,
                                std::memory_order_relaxed);
    progress_->cores.store(stats_.num_cores, std::memory_order_relaxed);
    int trie_size = trie_ != nullptr ? trie_->size() : 0;
    progress_->trie_size.store(trie_size, std::memory_order_relaxed);
    progress_->max_trie.store(std::max(stats_.max_trie_size, trie_size),
                              std::memory_order_relaxed);
  }

  /// Fires the progress heartbeat (and trace counter tracks) when the
  /// configured interval has elapsed. Only used on the jobs == 1 inline
  /// path (with a pool the coordinating thread aggregates instead).
  void MaybeHeartbeat(double elapsed) {
    if (elapsed - last_heartbeat_seconds_ <
        options_->heartbeat_interval_seconds) {
      return;
    }
    last_heartbeat_seconds_ = elapsed;
    ++heartbeats_;
    int trie_size = trie_ != nullptr ? trie_->size() : 0;
    if (options_->heartbeat != nullptr) {
      HeartbeatSnapshot snapshot;
      snapshot.elapsed_seconds = elapsed;
      snapshot.num_assignments =
          static_cast<int64_t>(assignment_us_.size());
      snapshot.num_cores = stats_.num_cores;
      snapshot.num_expansions = stats_.num_expansions;
      snapshot.num_successors = stats_.num_successors;
      snapshot.trie_size = trie_size;
      snapshot.max_trie_size = std::max(stats_.max_trie_size, trie_size);
      snapshot.buchi_states =
          plan_ != nullptr ? plan_->automaton.NumStates() : 0;
      options_->heartbeat(snapshot);
    }
    if (tracer_ != nullptr) {
      tracer_->Counter("expansions",
                       static_cast<double>(stats_.num_expansions));
      tracer_->Counter("successors",
                       static_cast<double>(stats_.num_successors));
      tracer_->Counter("trie_size", static_cast<double>(trie_size));
      tracer_->Counter("cores", static_cast<double>(stats_.num_cores));
    }
  }

  const std::vector<BatchSlot>* slots_;
  const PreparedSpec* prepared_;
  const VerifyOptions* options_;
  BatchShared* batch_;
  BudgetLedger* ledger_;
  int worker_;
  obs::Tracer* tracer_;
  bool heartbeat_enabled_;
  WorkerProgress* progress_;
  bool telemetry_;

  WorkerGovernor gov_;
  VerifyStats stats_;                   // aggregate across the whole drain
  std::vector<VerifyStats> job_stats_;  // per-property slices of the same
  std::vector<double> assignment_us_;   // summed shard time per SLOT
  obs::AllocStats alloc_;               // tracked allocs across the drain
  int lookup_tick_ = 0;                 // 1/64 trie-latency sampling phase
  int64_t heartbeats_ = 0;
  double last_heartbeat_seconds_ = 0;

  AbortKind abort_kind_ = AbortKind::kNone;
  UnknownReason local_reason_ = UnknownReason::kNone;
  std::string local_message_;

  // Per-shard state, resolved from the slot at RunShard entry.
  int job_ = 0;
  const PropertyPlan* plan_ = nullptr;
  const WebAppSpec* spec_ = nullptr;
  EngineShared* shared_ = nullptr;
  VerifyStats* job_cur_ = nullptr;
  const AssignmentContext* ctx_ = nullptr;
  std::vector<std::pair<RelationId, Tuple>> core_;
  std::unique_ptr<VisitedTrie> trie_;
  std::vector<CounterexampleStep> stick_stack_;
  std::vector<CounterexampleStep> candy_stack_;
  std::vector<uint8_t> key_scratch_;
  int64_t stack_bytes_ = 0;
  int base_state_ = -1;
  Configuration base_config_;
};


/// Per-attempt totals that belong to the batch rather than any single
/// property: the attempt's wall time and (for n > 1) the heartbeats the
/// coordinator fired while the fused search ran.
struct AttemptTotals {
  double wall_seconds = 0;
  int64_t heartbeats = 0;
};

/// One batch verification attempt over `props`: session-cached plans and
/// pre-pass, one fused sharded search across every property, per-property
/// deterministic merge, metrics finalization. With one property this is
/// exactly the PR-3 single-property attempt; see docs/PARALLELISM.md for
/// the shard model and docs/API.md for the batch semantics.
std::vector<VerifyResult> RunBatchAttempt(
    VerifierSession* session, WebAppSpec* spec, PreparedSpec* prepared,
    const std::vector<const Property*>& props, const VerifyOptions& options,
    int jobs, AttemptTotals* totals) {
  const int n = static_cast<int>(props.size());
  std::vector<VerifyResult> results(n);
  Stopwatch watch;
  PreparedExecStats exec_before = prepared->exec_stats();
  obs::ScopedSpan verify_span(options.tracer, "verify");

  // Search telemetry (ISSUE 6) is tied to the observability surfaces:
  // with neither a registry nor a tracer installed, no histogram is
  // recorded and no allocation sink is installed anywhere.
  const bool telemetry =
      options.metrics != nullptr || options.tracer != nullptr;
  obs::AllocStats prepare_alloc;   // tracked allocs: plan/Büchi building
  obs::AllocStats dataflow_alloc;  // tracked allocs: pre-pass/candidates

  // The ledger's deadline clock starts here, covering prepare/dataflow;
  // every property of the batch shares the one budget envelope.
  BudgetLedger ledger(GovernorLimitsFromOptions(options), jobs);
  const SessionStats session_before = session->stats();

  /// Per-property bookkeeping across the attempt's phases.
  struct PropertyWork {
    const PropertyPlan* plan = nullptr;
    PrepassResult prepass;
    const PrepassArtifacts* artifacts = nullptr;  // prepass.get()
    double prepare_us = 0;
    double dataflow_us = 0;      // 0 when the contexts were session-cached
    int64_t prepass_reuses = 0;  // session layers served instead of rebuilt
    size_t slot_begin = 0, slot_end = 0;
  };
  std::vector<PropertyWork> work(n);

  // --- property plans (session layer 2) -------------------------------------
  bool any_undecided = false;
  {
    std::optional<obs::ScopedAllocTracking> alloc_scope;
    if (telemetry) alloc_scope.emplace(&prepare_alloc);
    for (int i = 0; i < n; ++i) {
      obs::ScopedSpan span(options.tracer, "prepare");
      Stopwatch prepare_watch;
      int64_t reuses_before = session->stats().reuses();
      work[i].plan = session->GetPlan(*props[i], options.tracer);
      work[i].prepass_reuses = session->stats().reuses() - reuses_before;
      work[i].prepare_us = prepare_watch.ElapsedMicros();
      results[i].stats.buchi_states = work[i].plan->automaton.NumStates();
      if (work[i].plan->decided_holds) {
        // The negation is unsatisfiable: ϕ0 holds on all runs of any
        // system.
        results[i].verdict = Verdict::kHolds;
      } else {
        any_undecided = true;
      }
    }
  }
  int max_buchi = 0;
  for (int i = 0; i < n; ++i) {
    max_buchi = std::max(max_buchi, results[i].stats.buchi_states);
  }

  BatchShared shared(n);
  const bool heartbeat_enabled =
      options.heartbeat != nullptr || options.tracer != nullptr;
  int64_t coordinator_heartbeats = 0;
  int64_t steals = 0;
  std::vector<BatchSlot> slots;
  std::vector<std::unique_ptr<ShardRunner>> runners;
  double search_us = 0;

  // Phase boundary: a cancellation or deadline that landed during the
  // (untickled) prepare phase must not start the search. `Check` latches
  // the trip, which the merge below turns into the kUnknown verdicts.
  if (any_undecided && ledger.Check() == UnknownReason::kNone) {
    obs::ScopedSpan search_span(options.tracer, "search");
    Stopwatch search_watch;

    // --- sequential pre-pass (session layer 3) ------------------------------
    // Everything that mints symbols or touches a memoizing cache happens
    // here, on one thread, in a deterministic order — or happened on an
    // earlier attempt and is served from the session. The workers then
    // only read. A core-candidate overflow truncates a property's context
    // list at the offending assignment — exactly where the sequential
    // search would have stopped — and is reported unless an earlier shard
    // of that property decides otherwise.
    std::vector<ShardBlock> blocks;
    bool prepass_tripped = false;
    std::optional<obs::ScopedAllocTracking> dataflow_alloc_scope;
    if (telemetry) dataflow_alloc_scope.emplace(&dataflow_alloc);
    for (int i = 0; i < n; ++i) {
      PropertyWork& w = work[i];
      if (w.plan->decided_holds) continue;
      if (prepass_tripped || ledger.Check() != UnknownReason::kNone) {
        prepass_tripped = true;  // remaining pre-passes are pointless
        continue;
      }
      int64_t reuses_before = session->stats().reuses();
      w.prepass =
          session->GetPrepass(*props[i], options, &ledger, options.tracer);
      w.prepass_reuses += session->stats().reuses() - reuses_before;
      w.artifacts = w.prepass.get();
      if (w.prepass.tripped) prepass_tripped = true;
      if (w.artifacts == nullptr) continue;
      if (!w.prepass.reused) w.dataflow_us = w.artifacts->dataflow_us;

      w.slot_begin = slots.size();
      for (const std::unique_ptr<AssignmentContext>& ctx :
           w.artifacts->ctxs) {
        int slot = static_cast<int>(slots.size());
        slots.push_back({i, w.plan, ctx.get()});
        if (!ctx->core_overflow && ctx->num_cores > 0) {
          blocks.push_back({slot, 0, ctx->num_cores});
        }
      }
      w.slot_end = slots.size();
      results[i].stats.num_assignments =
          static_cast<int64_t>(w.artifacts->ctxs.size());
      if (w.artifacts->truncated()) {
        const AssignmentContext& last = *w.artifacts->ctxs.back();
        shared.jobs[i]->RecordLocalUnknown(last.index, /*core=*/-1,
                                           UnknownReason::kCandidateBudget,
                                           last.overflow_message);
      }
    }
    dataflow_alloc_scope.reset();

    // Only properties with searchable shards participate in the "last one
    // decided stops the pool" count.
    {
      std::vector<bool> has_block(n, false);
      for (const ShardBlock& b : blocks) {
        has_block[slots[b.assignment].job] = true;
      }
      int unsettled = 0;
      for (int i = 0; i < n; ++i) {
        if (has_block[i]) ++unsettled;
      }
      shared.unsettled.store(unsettled, std::memory_order_relaxed);
    }

    // --- fused sharded search -----------------------------------------------
    if (!blocks.empty() && !prepass_tripped &&
        ledger.trip_reason() == UnknownReason::kNone) {
      ShardQueue queue(blocks, jobs);
      if (jobs == 1) {
        // Inline on the calling thread: the caller's tracer, inline
        // heartbeats, the verifier's own prepared runtime — byte-for-byte
        // the sequential engine.
        runners.push_back(std::make_unique<ShardRunner>(
            &slots, n, prepared, &options, &shared, &ledger,
            /*worker=*/0, options.tracer, heartbeat_enabled,
            /*progress=*/nullptr, telemetry));
        runners[0]->Drain(&queue);
      } else {
        // Per-worker prepared runtimes (the exec-stats counters are
        // mutable) and tracers, all constructed sequentially here.
        std::vector<std::unique_ptr<PreparedSpec>> worker_prepared;
        std::vector<std::unique_ptr<obs::Tracer>> worker_tracers;
        std::vector<double> tracer_offsets(jobs, 0.0);
        std::vector<std::unique_ptr<WorkerProgress>> progress;
        for (int w = 0; w < jobs; ++w) {
          worker_prepared.push_back(std::make_unique<PreparedSpec>(spec));
          if (options.tracer != nullptr) {
            tracer_offsets[w] = options.tracer->NowMicros();
            worker_tracers.push_back(std::make_unique<obs::Tracer>());
          }
          if (heartbeat_enabled) {
            progress.push_back(std::make_unique<WorkerProgress>());
          }
          runners.push_back(std::make_unique<ShardRunner>(
              &slots, n, worker_prepared[w].get(), &options, &shared,
              &ledger, w,
              options.tracer != nullptr ? worker_tracers[w].get() : nullptr,
              /*heartbeat_enabled=*/false,
              heartbeat_enabled ? progress[w].get() : nullptr, telemetry));
        }

        WorkerPool pool(jobs);
        pool.Start([&](int w) { runners[w]->Drain(&queue); });
        if (heartbeat_enabled) {
          // The coordinating thread aggregates per-worker progress into
          // periodic heartbeats while the pool runs.
          double interval = options.heartbeat_interval_seconds > 0.01
                                ? options.heartbeat_interval_seconds
                                : 0.01;
          while (!pool.WaitDone(interval)) {
            ++coordinator_heartbeats;
            int64_t expansions = 0, successors = 0, cores = 0;
            int trie_size = 0, max_trie = 0;
            for (const std::unique_ptr<WorkerProgress>& p : progress) {
              expansions += p->expansions.load(std::memory_order_relaxed);
              successors += p->successors.load(std::memory_order_relaxed);
              cores += p->cores.load(std::memory_order_relaxed);
              trie_size += p->trie_size.load(std::memory_order_relaxed);
              max_trie = std::max(
                  max_trie, p->max_trie.load(std::memory_order_relaxed));
            }
            if (options.heartbeat != nullptr) {
              HeartbeatSnapshot snapshot;
              snapshot.elapsed_seconds = ledger.ElapsedSeconds();
              snapshot.num_assignments =
                  static_cast<int64_t>(slots.size());
              snapshot.num_cores = cores;
              snapshot.num_expansions = expansions;
              snapshot.num_successors = successors;
              snapshot.trie_size = trie_size;
              snapshot.max_trie_size = max_trie;
              snapshot.buchi_states = max_buchi;
              options.heartbeat(snapshot);
            }
            if (options.tracer != nullptr) {
              options.tracer->Counter("expansions",
                                      static_cast<double>(expansions));
              options.tracer->Counter("successors",
                                      static_cast<double>(successors));
              options.tracer->Counter("trie_size",
                                      static_cast<double>(trie_size));
              options.tracer->Counter("cores",
                                      static_cast<double>(cores));
            }
          }
        }
        pool.WaitDone(-1);
        pool.Join();

        // Fold the per-worker span streams into the caller's trace, one
        // lane (tid) per worker.
        if (options.tracer != nullptr) {
          for (int w = 0; w < jobs; ++w) {
            options.tracer->MergeFrom(*worker_tracers[w], /*tid=*/2 + w,
                                      tracer_offsets[w]);
          }
        }
        // The prepared.* deltas of the worker copies (fresh instances, so
        // the absolute stats are the deltas) accumulate into the
        // verifier's own runtime stats via the exec delta below.
        for (const std::unique_ptr<PreparedSpec>& wp : worker_prepared) {
          const PreparedExecStats& e = wp->exec_stats();
          exec_before.compute_options_calls -= e.compute_options_calls;
          exec_before.apply_input_calls -= e.apply_input_calls;
          exec_before.advance_calls -= e.advance_calls;
          exec_before.rule_evaluations -= e.rule_evaluations;
          exec_before.derived_tuples -= e.derived_tuples;
        }
      }
      steals = queue.steals();
    }
    ledger.SyncMemoryReadings();
    search_us = search_watch.ElapsedMicros();
  }

  // --- deterministic per-property merge --------------------------------------
  // Worker-id order; precedence per property: counterexample > shard-local
  // unknown (minimum (assignment, core) key — the one the sequential
  // search would have hit first) > global budget trip > holds.
  GovernorReadings readings = ledger.readings();
  for (int i = 0; i < n; ++i) {
    VerifyResult& r = results[i];
    const PropertyWork& w = work[i];
    r.stats.prepass_reuses = w.prepass_reuses;
    r.stats.prepare_seconds = w.prepare_us / 1e6;
    if (w.plan->decided_holds) {
      r.stats.seconds = r.stats.prepare_seconds;
      continue;
    }
    EngineShared& es = *shared.jobs[i];

    double slot_us = 0;
    for (const std::unique_ptr<ShardRunner>& runner : runners) {
      const VerifyStats& s = runner->job_stats()[i];
      r.stats.num_cores += s.num_cores;
      r.stats.num_expansions += s.num_expansions;
      r.stats.num_successors += s.num_successors;
      r.stats.trie_hits += s.trie_hits;
      r.stats.trie_misses += s.trie_misses;
      r.stats.max_trie_size =
          std::max(r.stats.max_trie_size, s.max_trie_size);
      r.stats.max_pseudorun_length =
          std::max(r.stats.max_pseudorun_length, s.max_pseudorun_length);
      // Search telemetry histograms merge bucket-exactly across workers
      // (all empty when telemetry was off).
      r.stats.trie_depth.MergeFrom(s.trie_depth);
      r.stats.frontier_size.MergeFrom(s.frontier_size);
      r.stats.search_depth.MergeFrom(s.search_depth);
      r.stats.trie_lookup_us.MergeFrom(s.trie_lookup_us);
      r.stats.shard_expansions.MergeFrom(s.shard_expansions);
      r.stats.shard_alloc_bytes.MergeFrom(s.shard_alloc_bytes);
      r.stats.trie_nodes += s.trie_nodes;
      r.stats.alloc_bytes += s.alloc_bytes;
      r.stats.alloc_count += s.alloc_count;
      for (size_t slot = w.slot_begin; slot < w.slot_end; ++slot) {
        slot_us += runner->assignment_us()[slot];
      }
    }
    r.stats.num_rejected_candidates = es.rejected;

    if (es.winner_claimed) {
      r.verdict = Verdict::kViolated;
      r.stick = std::move(es.stick);
      r.candy = std::move(es.candy);
      r.witness_binding = std::move(es.witness_binding);
    } else if (es.has_local_unknown) {
      r.verdict = Verdict::kUnknown;
      r.failure_reason = es.local_message;
      r.unknown_reason = es.local_reason;
    } else if (ledger.trip_reason() != UnknownReason::kNone) {
      r.verdict = Verdict::kUnknown;
      r.failure_reason = ledger.trip_message();
      r.unknown_reason = ledger.trip_reason();
    } else {
      r.verdict = Verdict::kHolds;
    }

    // Per-property phase wall-times. The search share is the property's
    // own shard time (summed across workers), so N batched properties
    // don't all report the whole batch's search wall.
    r.stats.dataflow_seconds = w.dataflow_us / 1e6;
    r.stats.validate_seconds = es.validate_us / 1e6;
    r.stats.search_seconds =
        std::max(0.0, slot_us - es.validate_us) / 1e6;
    r.stats.peak_memory_bytes = readings.peak_memory_bytes;
    r.stats.governor_polls = readings.polls;
    r.stats.seconds = r.stats.prepare_seconds + r.stats.dataflow_seconds +
                      r.stats.search_seconds + r.stats.validate_seconds;
  }

  int64_t heartbeats = coordinator_heartbeats;
  for (const std::unique_ptr<ShardRunner>& runner : runners) {
    heartbeats += runner->heartbeats();
  }
  double net_search_us = 0;

  {
    // Result validation/finalization; with a candidate_filter installed
    // the per-candidate "validate" spans inside the search carry the bulk
    // of this phase. Per-call registry: stats come from it, then it merges
    // into the caller's (possibly shared, accumulating) registry.
    obs::ScopedSpan validate_span(options.tracer, "validate");
    obs::MetricsRegistry call_metrics;

    double prepare_us = 0, dataflow_us = 0, validate_us = 0;
    int64_t assignments = 0, cores = 0, expansions = 0, successors = 0;
    int64_t rejected = 0, trie_hits = 0, trie_misses = 0;
    int max_trie = 0;
    for (int i = 0; i < n; ++i) {
      prepare_us += work[i].prepare_us;
      dataflow_us += work[i].dataflow_us;
      validate_us += shared.jobs[i]->validate_us;
      const VerifyStats& s = results[i].stats;
      assignments += s.num_assignments;
      cores += s.num_cores;
      expansions += s.num_expansions;
      successors += s.num_successors;
      rejected += s.num_rejected_candidates;
      trie_hits += s.trie_hits;
      trie_misses += s.trie_misses;
      max_trie = std::max(max_trie, s.max_trie_size);
    }
    net_search_us = std::max(0.0, search_us - dataflow_us - validate_us);

    call_metrics.Add("verify.prepare_us", static_cast<int64_t>(prepare_us));
    call_metrics.Add("verify.dataflow_us",
                     static_cast<int64_t>(dataflow_us));
    call_metrics.Add("verify.search_us", static_cast<int64_t>(net_search_us));
    call_metrics.Add("verify.validate_us",
                     static_cast<int64_t>(validate_us));
    call_metrics.Add("verify.assignments", assignments);
    call_metrics.Add("verify.cores", cores);
    call_metrics.Add("verify.expansions", expansions);
    call_metrics.Add("verify.successors", successors);
    call_metrics.Add("verify.rejected_candidates", rejected);
    call_metrics.Add("verify.heartbeats", heartbeats);
    call_metrics.Add("verify.steals", steals);
    call_metrics.Set("verify.jobs", jobs);
    call_metrics.Add("trie.hits", trie_hits);
    call_metrics.Add("trie.misses", trie_misses);
    call_metrics.Set("trie.max_size", max_trie);
    call_metrics.Set("buchi.states", max_buchi);
    int64_t gpvw_states_before = 0;
    for (int i = 0; i < n; ++i) {
      const GpvwStats& g = work[i].plan->gpvw_stats;
      call_metrics.Add("gpvw.tableau_nodes", g.tableau_nodes);
      call_metrics.Add("gpvw.until_subformulas", g.until_subformulas);
      gpvw_states_before =
          std::max<int64_t>(gpvw_states_before, g.states_before_simplify);
    }
    call_metrics.Set("gpvw.states_before_simplify", gpvw_states_before);
    call_metrics.Set("governor.peak_memory_bytes",
                     readings.peak_memory_bytes);
    call_metrics.Add("governor.polls", readings.polls);

    if (telemetry) {
      // Batch-wide search telemetry: per-property histograms merged, the
      // per-phase counting-allocator tallies, and (jobs > 1) the steal
      // balance across workers.
      obs::HistogramData trie_depth, frontier_size, search_depth;
      obs::HistogramData trie_lookup_us, shard_expansions, shard_alloc;
      int64_t trie_nodes = 0, search_alloc_bytes = 0, search_alloc_count = 0;
      for (int i = 0; i < n; ++i) {
        const VerifyStats& s = results[i].stats;
        trie_depth.MergeFrom(s.trie_depth);
        frontier_size.MergeFrom(s.frontier_size);
        search_depth.MergeFrom(s.search_depth);
        trie_lookup_us.MergeFrom(s.trie_lookup_us);
        shard_expansions.MergeFrom(s.shard_expansions);
        shard_alloc.MergeFrom(s.shard_alloc_bytes);
        trie_nodes += s.trie_nodes;
        search_alloc_bytes += s.alloc_bytes;
        search_alloc_count += s.alloc_count;
      }
      call_metrics.histogram("trie.depth")->MergeData(trie_depth);
      call_metrics.histogram("trie.lookup_us")->MergeData(trie_lookup_us);
      call_metrics.histogram("search.frontier_size")
          ->MergeData(frontier_size);
      call_metrics.histogram("search.depth")->MergeData(search_depth);
      call_metrics.histogram("search.shard_expansions")
          ->MergeData(shard_expansions);
      call_metrics.histogram("alloc.search.shard_bytes")
          ->MergeData(shard_alloc);
      call_metrics.Add("trie.nodes", trie_nodes);
      call_metrics.Add("alloc.prepare.bytes", prepare_alloc.bytes);
      call_metrics.Add("alloc.prepare.count", prepare_alloc.count);
      call_metrics.Add("alloc.dataflow.bytes", dataflow_alloc.bytes);
      call_metrics.Add("alloc.dataflow.count", dataflow_alloc.count);
      call_metrics.Add("alloc.search.bytes", search_alloc_bytes);
      call_metrics.Add("alloc.search.count", search_alloc_count);
      if (options.tracer != nullptr) {
        options.tracer->CounterHistogram("trie.depth", trie_depth);
        options.tracer->CounterHistogram("trie.lookup_us", trie_lookup_us);
        options.tracer->CounterHistogram("search.frontier_size",
                                         frontier_size);
        options.tracer->CounterHistogram("search.depth", search_depth);
        options.tracer->CounterHistogram("alloc.search.shard_bytes",
                                         shard_alloc);
      }
      if (runners.size() > 1) {
        // Work-stealing balance: max worker expansion share over the
        // mean (1.0 = perfectly balanced).
        int64_t total = 0, worker_max = 0;
        for (const std::unique_ptr<ShardRunner>& runner : runners) {
          int64_t e = runner->stats().num_expansions;
          total += e;
          worker_max = std::max(worker_max, e);
          call_metrics.Record("verify.worker_expansions",
                              static_cast<double>(e));
        }
        double mean =
            static_cast<double>(total) / static_cast<double>(runners.size());
        call_metrics.Set("verify.steal_imbalance",
                         mean > 0 ? static_cast<double>(worker_max) / mean
                                  : 1.0);
      }
    }

    // Session-cache deltas of this attempt (verify.prepass.* proves the
    // spec pre-pass ran exactly once across a batch: spec_builds is 1 on
    // the session's first attempt and 0 afterwards).
    const SessionStats& sa = session->stats();
    call_metrics.Add("verify.prepass.spec_builds",
                     sa.spec_builds - session_before.spec_builds);
    call_metrics.Add("verify.prepass.spec_reuses",
                     sa.spec_reuses - session_before.spec_reuses);
    call_metrics.Add("verify.prepass.plan_builds",
                     sa.plan_builds - session_before.plan_builds);
    call_metrics.Add("verify.prepass.plan_reuses",
                     sa.plan_reuses - session_before.plan_reuses);
    call_metrics.Add("verify.prepass.context_builds",
                     sa.context_builds - session_before.context_builds);
    call_metrics.Add("verify.prepass.context_reuses",
                     sa.context_reuses - session_before.context_reuses);
    call_metrics.Add("verify.prepass.evictions",
                     sa.context_evictions - session_before.context_evictions);
    call_metrics.Add("verify.gpvw_cache.hits",
                     sa.gpvw_hits - session_before.gpvw_hits);
    call_metrics.Add("verify.gpvw_cache.misses",
                     sa.gpvw_misses - session_before.gpvw_misses);

    // Per-assignment wall time, recorded in slot order (so the histogram
    // count always equals the attempt's summed num_assignments): the
    // context build time — when this attempt actually built it — plus the
    // shard time summed across workers.
    obs::Histogram assignment_hist;
    for (size_t slot = 0; slot < slots.size(); ++slot) {
      double total = work[slots[slot].job].prepass.reused
                         ? 0.0
                         : slots[slot].ctx->build_us;
      for (const std::unique_ptr<ShardRunner>& runner : runners) {
        total += runner->assignment_us()[slot];
      }
      assignment_hist.Record(total);
    }
    call_metrics.histogram("verify.assignment_us")
        ->MergeFrom(assignment_hist);

    const PreparedExecStats& exec = prepared->exec_stats();
    call_metrics.Add(
        "prepared.compute_options_calls",
        exec.compute_options_calls - exec_before.compute_options_calls);
    call_metrics.Add("prepared.apply_input_calls",
                     exec.apply_input_calls - exec_before.apply_input_calls);
    call_metrics.Add("prepared.advance_calls",
                     exec.advance_calls - exec_before.advance_calls);
    call_metrics.Add("prepared.rule_evaluations",
                     exec.rule_evaluations - exec_before.rule_evaluations);
    call_metrics.Add("prepared.derived_tuples",
                     exec.derived_tuples - exec_before.derived_tuples);
    if (options.metrics != nullptr) options.metrics->MergeFrom(call_metrics);
  }

  // Release the session pins now that the merge no longer reads the
  // cached contexts (partial artifacts are caller-owned; Unpin ignores
  // them).
  for (int i = 0; i < n; ++i) {
    if (work[i].prepass.artifacts != nullptr) {
      session->UnpinPrepass(work[i].prepass.artifacts);
    }
  }

  double wall = watch.ElapsedSeconds();
  if (totals != nullptr) {
    totals->wall_seconds += wall;
    if (n > 1) totals->heartbeats += heartbeats;
  }
  if (n == 1) {
    // Single-property attempts keep the historical stats contract:
    // `seconds` is the attempt wall time and the search phase is the
    // attempt's whole search wall, net of the other phases.
    results[0].stats.seconds = wall;
    if (!work[0].plan->decided_holds) {
      results[0].stats.search_seconds = net_search_us / 1e6;
    }
    results[0].stats.heartbeats = heartbeats;
  }
  return results;
}

/// The shared single/batch driver: persistent-cache lookups, then one
/// fused attempt (or a batch-wide retry ladder, each rung re-running only
/// the properties still undecided for a budget-limited reason), then
/// persistent-cache stores of the newly decided results.
std::vector<VerifyResponse> VerifyProperties(
    VerifierSession* session, WebAppSpec* spec, PreparedSpec* prepared,
    const std::vector<const Property*>& props, const VerifyOptions& base,
    const RetryPolicy& retry, int jobs, ResultCache* cache,
    AttemptTotals* totals) {
  const int n = static_cast<int>(props.size());
  std::vector<VerifyResponse> responses(n);
  std::vector<bool> decided(n, false);
  std::vector<bool> from_cache(n, false);
  std::vector<Fingerprint> keys(n);

  // Health-counter snapshot: the deltas across this call become metrics,
  // so a driver sharing one cache across calls reports per-call numbers.
  const ResultCache::HealthCounters health_before =
      cache != nullptr ? cache->health() : ResultCache::HealthCounters{};

  if (cache != nullptr) {
    int64_t hits = 0, misses = 0;
    for (int i = 0; i < n; ++i) {
      keys[i] = ResultCacheKey(session->SpecFingerprint(), *props[i],
                               spec->symbols(), base);
      obs::ScopedSpan span(base.tracer, "cache.lookup");
      VerifyResponse stored;
      if (cache->Lookup(keys[i], spec, &stored)) {
        responses[i] = std::move(stored);
        decided[i] = true;
        from_cache[i] = true;
        ++hits;
      } else {
        ++misses;
      }
    }
    if (base.metrics != nullptr) {
      base.metrics->Add("verify.cache.hits", hits);
      base.metrics->Add("verify.cache.misses", misses);
    }
  }

  std::vector<int> pending;
  for (int i = 0; i < n; ++i) {
    if (!decided[i]) pending.push_back(i);
  }

  if (!pending.empty() && !retry.enabled) {
    std::vector<const Property*> subset;
    for (int j : pending) subset.push_back(props[j]);
    std::vector<VerifyResult> rs = RunBatchAttempt(
        session, spec, prepared, subset, base, jobs, totals);
    for (size_t m = 0; m < pending.size(); ++m) {
      static_cast<VerifyResult&>(responses[pending[m]]) = std::move(rs[m]);
    }
  } else if (!pending.empty()) {
    // The retry ladder, batch-wide: climb while any property failed for a
    // budget-limited reason; each rung re-runs ONLY the still-undecided
    // budget-limited properties. Decisions, non-budget unknowns (overflow
    // no rung can cure would still be budget-limited — but timeouts,
    // memory trips and cancellation are final) drop out of the climb.
    std::vector<RetryRung> ladder =
        retry.ladder.empty() ? DefaultLadder(base) : retry.ladder;
    double total_budget = retry.total_budget_seconds > 0
                              ? retry.total_budget_seconds
                              : base.timeout_seconds;
    Stopwatch ladder_watch;
    for (size_t k = 0; k < ladder.size() && !pending.empty(); ++k) {
      const RetryRung& rung = ladder[k];
      double remaining = total_budget - ladder_watch.ElapsedSeconds();
      if (remaining <= 0 && k > 0) {
        // Budget spent on earlier rungs; surface the last attempts' results.
        break;
      }
      // Backoff split: each rung gets an even share of what is left, so a
      // cheap early rung that returns quickly donates its unused share to
      // the rungs after it.
      double rung_budget =
          std::max(0.0, remaining) / static_cast<double>(ladder.size() - k);

      VerifyOptions options = base;
      options.max_candidates = rung.max_candidates;
      options.max_expansions = rung.max_expansions;
      options.exhaustive_existential = rung.exhaustive_existential;
      options.timeout_seconds = rung_budget;

      obs::ScopedSpan span(base.tracer, "retry_rung");
      WAVE_FAULT("retry.rung.attempt");  // delay: a stalled ladder rung
      Stopwatch attempt_watch;
      std::vector<const Property*> subset;
      for (int j : pending) subset.push_back(props[j]);
      std::vector<VerifyResult> rs = RunBatchAttempt(
          session, spec, prepared, subset, options, jobs, totals);
      double elapsed = attempt_watch.ElapsedSeconds();

      std::vector<int> still;
      for (size_t m = 0; m < pending.size(); ++m) {
        int j = pending[m];
        AttemptRecord record;
        record.rung = static_cast<int>(k);
        record.rung_name = rung.name;
        record.budget_seconds = rung_budget;
        record.elapsed_seconds = elapsed;
        record.verdict = rs[m].verdict;
        record.unknown_reason = rs[m].unknown_reason;
        record.failure_reason = rs[m].failure_reason;
        record.stats = rs[m].stats;
        responses[j].attempts.push_back(std::move(record));
        static_cast<VerifyResult&>(responses[j]) = std::move(rs[m]);
        if (responses[j].verdict != Verdict::kUnknown) {
          responses[j].decided_rung = static_cast<int>(k);
        } else if (IsBudgetLimited(responses[j].unknown_reason)) {
          still.push_back(j);
        }
        // A non-budget-limited unknown (timeout/memory/cancel) is final:
        // more candidate budget will not cure it.
      }
      pending = std::move(still);
    }
  }

  if (cache != nullptr) {
    int64_t stores = 0;
    for (int i = 0; i < n; ++i) {
      if (from_cache[i] || responses[i].verdict == Verdict::kUnknown) {
        continue;
      }
      obs::ScopedSpan span(base.tracer, "cache.store");
      // A failed store costs the next run its warm start, nothing else.
      if (cache->Store(keys[i], *spec, responses[i]).ok()) ++stores;
    }
    if (base.metrics != nullptr) {
      base.metrics->Add("verify.cache.stores", stores);
      const ResultCache::HealthCounters after = cache->health();
      base.metrics->Add("verify.cache.corrupt",
                        after.corrupt - health_before.corrupt);
      base.metrics->Add("verify.cache.quarantined",
                        after.quarantined - health_before.quarantined);
      base.metrics->Add("verify.cache.lock_waits",
                        after.lock_waits - health_before.lock_waits);
      base.metrics->Add("verify.cache.recovered",
                        after.recovered - health_before.recovered);
    }
  }
  return responses;
}

/// Collects the embedded FO formulas (the eventual "FO components") of an
/// LTL property body, in syntactic order.
void CollectFoComponents(const LtlPtr& f, std::vector<FormulaPtr>* out) {
  if (f == nullptr) return;
  if (f->kind() == LtlFormula::Kind::kFo) {
    out->push_back(f->fo());
    return;
  }
  CollectFoComponents(f->left(), out);
  CollectFoComponents(f->right(), out);
}

/// Structural check of one FO component: page atoms name known pages,
/// relation atoms resolve with the declared arity. Mirrors exactly the
/// invariants `PreparedFormula::Prepare` WAVE_CHECKs at verify time, so a
/// property passing here cannot abort the search.
Status ValidateFoComponent(const WebAppSpec& spec,
                           const std::string& property_name,
                           const FormulaPtr& f) {
  switch (f->kind()) {
    case Formula::Kind::kPage:
      if (spec.PageIndex(f->page()) < 0) {
        return Status::InvalidArgument(
            "property '" + property_name + "': unknown page '" + f->page() +
                "' in page atom 'at " + f->page() + "'",
            WAVE_LOC);
      }
      return Status::Ok();
    case Formula::Kind::kAtom: {
      RelationId id = spec.catalog().Find(f->relation());
      if (id == kInvalidRelation) {
        return Status::InvalidArgument(
            "property '" + property_name + "': unknown relation '" +
                f->relation() + "'",
            WAVE_LOC);
      }
      int arity = spec.catalog().schema(id).arity;
      if (static_cast<int>(f->args().size()) != arity) {
        return Status::InvalidArgument(
            "property '" + property_name + "': atom " + f->relation() + "/" +
                std::to_string(f->args().size()) +
                " does not match declared arity " + std::to_string(arity),
            WAVE_LOC);
      }
      return Status::Ok();
    }
    case Formula::Kind::kNot:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return ValidateFoComponent(spec, property_name, f->body());
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
      WAVE_RETURN_IF_ERROR(
          ValidateFoComponent(spec, property_name, f->left()));
      return ValidateFoComponent(spec, property_name, f->right());
    default:
      return Status::Ok();
  }
}

}  // namespace

Status ValidatePropertyForSpec(const WebAppSpec& spec,
                               const Property& property) {
  if (property.body == nullptr) {
    return Status::InvalidArgument(
        "property '" + property.name + "' has no body", WAVE_LOC);
  }
  std::vector<FormulaPtr> components;
  CollectFoComponents(property.body, &components);
  std::set<std::string> declared(property.forall_vars.begin(),
                                 property.forall_vars.end());
  for (const FormulaPtr& c : components) {
    WAVE_RETURN_IF_ERROR(ValidateFoComponent(spec, property.name, c));
    for (const std::string& v : c->FreeVariables()) {
      if (declared.count(v) == 0) {
        return Status::InvalidArgument(
            "property '" + property.name + "': free variable '" + v +
                "' not bound by the forall block",
            WAVE_LOC);
      }
    }
  }
  return Status::Ok();
}

Verifier::Verifier(WebAppSpec* spec)
    : spec_(spec), prepared_(spec), page_domains_(spec) {
  std::vector<std::string> issues = spec->Validate();
  WAVE_CHECK_MSG(issues.empty(),
                 "spec does not validate: " << issues.front() << " (and "
                                            << issues.size() - 1 << " more)");
  session_ = std::make_unique<VerifierSession>(spec, &page_domains_);
}

Verifier::~Verifier() = default;

StatusOr<std::unique_ptr<Verifier>> Verifier::Create(WebAppSpec* spec) {
  if (spec == nullptr) {
    return Status::InvalidArgument("spec is null", WAVE_LOC);
  }
  std::vector<std::string> issues = spec->Validate();
  if (!issues.empty()) {
    std::string joined;
    for (const std::string& issue : issues) {
      if (!joined.empty()) joined += "; ";
      joined += issue;
    }
    return Status::FailedPrecondition("spec does not validate: " + joined,
                                      WAVE_LOC);
  }
  return std::make_unique<Verifier>(spec);
}

StatusOr<VerifyResponse> Verifier::Run(const VerifyRequest& request) {
  // Resolve the property selector: direct pointer > index > name.
  const Property* property = request.property;
  if (property == nullptr) {
    if (request.properties == nullptr) {
      return Status::InvalidArgument(
          "VerifyRequest selects no property: set `property`, or "
          "`properties` plus `property_index`/`property_name`",
          WAVE_LOC);
    }
    if (request.property_index >= 0) {
      if (request.property_index >=
          static_cast<int>(request.properties->size())) {
        return Status::InvalidArgument(
            "VerifyRequest: property_index " +
                std::to_string(request.property_index) +
                " out of range (catalog has " +
                std::to_string(request.properties->size()) + " properties)",
            WAVE_LOC);
      }
      property = &(*request.properties)[request.property_index];
    } else if (!request.property_name.empty()) {
      for (const Property& p : *request.properties) {
        if (p.name == request.property_name) {
          property = &p;
          break;
        }
      }
      if (property == nullptr) {
        return Status::InvalidArgument(
            "VerifyRequest: no property named '" + request.property_name +
                "' in the catalog",
            WAVE_LOC);
      }
    } else {
      return Status::InvalidArgument(
          "VerifyRequest selects no property: set `property`, or "
          "`properties` plus `property_index`/`property_name`",
          WAVE_LOC);
    }
  }
  WAVE_RETURN_IF_ERROR(ValidatePropertyForSpec(*spec_, *property));

  const int jobs = WorkerPool::ResolveJobs(request.jobs);
  std::vector<VerifyResponse> rs = VerifyProperties(
      session_.get(), spec_, &prepared_, {property}, request.options,
      request.retry, jobs, request.cache, /*totals=*/nullptr);
  return std::move(rs[0]);
}

StatusOr<BatchResponse> Verifier::RunBatch(const BatchRequest& request) {
  if (request.properties == nullptr) {
    return Status::InvalidArgument(
        "BatchRequest::properties is null: point it at the property catalog",
        WAVE_LOC);
  }
  const std::vector<Property>& catalog = *request.properties;
  std::vector<int> indices = request.property_indices;
  if (indices.empty()) {
    indices.resize(catalog.size());
    for (size_t i = 0; i < catalog.size(); ++i) {
      indices[i] = static_cast<int>(i);
    }
  }
  std::vector<const Property*> props;
  props.reserve(indices.size());
  for (int index : indices) {
    if (index < 0 || index >= static_cast<int>(catalog.size())) {
      return Status::InvalidArgument(
          "BatchRequest: property index " + std::to_string(index) +
              " out of range (catalog has " + std::to_string(catalog.size()) +
              " properties)",
          WAVE_LOC);
    }
    props.push_back(&catalog[index]);
  }
  // Validate every property up front: a bad property fails the whole
  // batch before any search runs, never halfway through.
  for (const Property* p : props) {
    WAVE_RETURN_IF_ERROR(ValidatePropertyForSpec(*spec_, *p));
  }

  const int jobs = WorkerPool::ResolveJobs(request.jobs);
  Stopwatch watch;
  AttemptTotals totals;
  BatchResponse batch;
  batch.responses = VerifyProperties(session_.get(), spec_, &prepared_, props,
                                     request.options, request.retry, jobs,
                                     request.cache, &totals);

  VerifyStats& merged = batch.merged;
  for (const VerifyResponse& r : batch.responses) {
    const VerifyStats& s = r.stats;
    merged.prepare_seconds += s.prepare_seconds;
    merged.dataflow_seconds += s.dataflow_seconds;
    merged.search_seconds += s.search_seconds;
    merged.validate_seconds += s.validate_seconds;
    merged.num_assignments += s.num_assignments;
    merged.num_cores += s.num_cores;
    merged.num_expansions += s.num_expansions;
    merged.num_successors += s.num_successors;
    merged.num_rejected_candidates += s.num_rejected_candidates;
    merged.trie_hits += s.trie_hits;
    merged.trie_misses += s.trie_misses;
    merged.heartbeats += s.heartbeats;
    merged.cache_hits += s.cache_hits;
    merged.prepass_reuses += s.prepass_reuses;
    merged.governor_polls = std::max(merged.governor_polls, s.governor_polls);
    merged.max_trie_size = std::max(merged.max_trie_size, s.max_trie_size);
    merged.max_pseudorun_length =
        std::max(merged.max_pseudorun_length, s.max_pseudorun_length);
    merged.buchi_states = std::max(merged.buchi_states, s.buchi_states);
    merged.peak_memory_bytes =
        std::max(merged.peak_memory_bytes, s.peak_memory_bytes);
    merged.trie_depth.MergeFrom(s.trie_depth);
    merged.frontier_size.MergeFrom(s.frontier_size);
    merged.search_depth.MergeFrom(s.search_depth);
    merged.trie_lookup_us.MergeFrom(s.trie_lookup_us);
    merged.shard_expansions.MergeFrom(s.shard_expansions);
    merged.shard_alloc_bytes.MergeFrom(s.shard_alloc_bytes);
    merged.trie_nodes += s.trie_nodes;
    merged.alloc_bytes += s.alloc_bytes;
    merged.alloc_count += s.alloc_count;
  }
  // Batch-level heartbeats fired by the fused searches' coordinators (the
  // per-response stats carry none when n > 1: a heartbeat spans every
  // property at once and cannot be attributed to one of them).
  merged.heartbeats += totals.heartbeats;
  merged.seconds = watch.ElapsedSeconds();
  return batch;
}

obs::Json AttemptRecord::ToJson() const {
  obs::Json j = obs::Json::Object();
  j.Set("rung", obs::Json::Int(rung));
  j.Set("rung_name", obs::Json::Str(rung_name));
  j.Set("budget_seconds", obs::Json::Number(budget_seconds));
  j.Set("elapsed_seconds", obs::Json::Number(elapsed_seconds));
  j.Set("verdict", obs::Json::Str(VerdictString(verdict)));
  j.Set("unknown_reason",
        obs::Json::Str(UnknownReasonName(unknown_reason)));
  j.Set("failure_reason", obs::Json::Str(failure_reason));
  j.Set("stats", stats.ToJson());
  return j;
}

obs::Json VerifyResponse::AttemptsJson() const {
  obs::Json arr = obs::Json::Array();
  for (const AttemptRecord& a : attempts) arr.Append(a.ToJson());
  return arr;
}

obs::Json VerifyStats::ToJson() const {
  obs::Json j = obs::Json::Object();
  j.Set("seconds", obs::Json::Number(seconds));
  j.Set("prepare_seconds", obs::Json::Number(prepare_seconds));
  j.Set("dataflow_seconds", obs::Json::Number(dataflow_seconds));
  j.Set("search_seconds", obs::Json::Number(search_seconds));
  j.Set("validate_seconds", obs::Json::Number(validate_seconds));
  j.Set("max_pseudorun_length", obs::Json::Int(max_pseudorun_length));
  j.Set("max_trie_size", obs::Json::Int(max_trie_size));
  j.Set("buchi_states", obs::Json::Int(buchi_states));
  j.Set("num_assignments", obs::Json::Int(num_assignments));
  j.Set("num_cores", obs::Json::Int(num_cores));
  j.Set("num_expansions", obs::Json::Int(num_expansions));
  j.Set("num_successors", obs::Json::Int(num_successors));
  j.Set("num_rejected_candidates", obs::Json::Int(num_rejected_candidates));
  j.Set("trie_hits", obs::Json::Int(trie_hits));
  j.Set("trie_misses", obs::Json::Int(trie_misses));
  j.Set("heartbeats", obs::Json::Int(heartbeats));
  j.Set("peak_memory_bytes", obs::Json::Int(peak_memory_bytes));
  j.Set("governor_polls", obs::Json::Int(governor_polls));
  j.Set("cache_hits", obs::Json::Int(cache_hits));
  j.Set("prepass_reuses", obs::Json::Int(prepass_reuses));
  // Search telemetry (ISSUE 6): histogram summaries + allocation tallies.
  // All-zero objects when the run had telemetry off.
  j.Set("trie_depth", trie_depth.ToJson());
  j.Set("frontier_size", frontier_size.ToJson());
  j.Set("search_depth", search_depth.ToJson());
  j.Set("trie_lookup_us", trie_lookup_us.ToJson());
  j.Set("shard_expansions", shard_expansions.ToJson());
  j.Set("shard_alloc_bytes", shard_alloc_bytes.ToJson());
  j.Set("trie_nodes", obs::Json::Int(trie_nodes));
  j.Set("alloc_bytes", obs::Json::Int(alloc_bytes));
  j.Set("alloc_count", obs::Json::Int(alloc_count));
  return j;
}

std::string VerifyResult::CounterexampleString(const WebAppSpec& spec) const {
  if (verdict != Verdict::kViolated) return "(no counterexample)";
  std::string out;
  auto render = [&](const CounterexampleStep& step, const char* phase,
                    int index) {
    out += std::string(phase) + "[" + std::to_string(index) + "] page " +
           spec.page(step.config.page).name + ", automaton state " +
           std::to_string(step.buchi_state) + "\n";
    std::string data = step.config.data.ToString(spec.symbols());
    out += data;
    std::string prev = step.config.previous.ToString(spec.symbols());
    if (!prev.empty()) out += "previous inputs:\n" + prev;
  };
  for (size_t i = 0; i < stick.size(); ++i) {
    render(stick[i], "stick", static_cast<int>(i));
  }
  for (size_t i = 0; i < candy.size(); ++i) {
    render(candy[i], "candy", static_cast<int>(i));
  }
  out += "(cycle loops back to candy[0])\n";
  return out;
}

}  // namespace wave
