#include "verifier/verifier.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "buchi/gpvw.h"
#include "ltl/abstraction.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "verifier/encode.h"
#include "verifier/retry.h"
#include "verifier/shard.h"
#include "verifier/trie.h"
#include "verifier/worker_pool.h"

namespace wave {

namespace {

enum class SearchStatus { kContinue, kFound, kAbort };

/// Why a runner's shard returned kAbort: a shard-local candidate overflow
/// (recorded, siblings continue) or a global stop (ledger trip / another
/// worker's counterexample — the runner drains no further shards).
enum class AbortKind { kNone, kLocal, kGlobal };

GovernorLimits GovernorLimitsFromOptions(const VerifyOptions& options) {
  GovernorLimits limits;
  limits.deadline_seconds = options.timeout_seconds;
  limits.max_expansions = options.max_expansions;
  limits.max_memory_bytes = options.max_memory_bytes;
  limits.cancellation = options.cancellation;
  return limits;
}

const char* VerdictString(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "violated";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

/// Gathers, per free variable of the property, the attribute positions it
/// occurs at and the constants it is directly equated to.
struct VarOccurrences {
  std::map<std::string, std::set<AttrPos>> positions;
  std::map<std::string, std::set<SymbolId>> equated_constants;

  void Walk(const Catalog& catalog, const FormulaPtr& f) {
    switch (f->kind()) {
      case Formula::Kind::kAtom: {
        RelationId id = catalog.Find(f->relation());
        if (id == kInvalidRelation) return;
        for (size_t i = 0; i < f->args().size(); ++i) {
          if (f->args()[i].is_variable()) {
            positions[f->args()[i].variable].insert(
                {id, static_cast<int>(i)});
          }
        }
        return;
      }
      case Formula::Kind::kEquals: {
        const Term& a = f->args()[0];
        const Term& b = f->args()[1];
        if (a.is_variable() && !b.is_variable()) {
          equated_constants[a.variable].insert(b.constant);
        } else if (b.is_variable() && !a.is_variable()) {
          equated_constants[b.variable].insert(a.constant);
        }
        return;
      }
      case Formula::Kind::kNot:
      case Formula::Kind::kExists:
      case Formula::Kind::kForall:
        Walk(catalog, f->body());
        return;
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr:
      case Formula::Kind::kImplies:
        Walk(catalog, f->left());
        Walk(catalog, f->right());
        return;
      default:
        return;
    }
  }
};

/// Property-level immutable plan: everything the search needs that does
/// not depend on the C∃ assignment. Built once, sequentially, before any
/// worker starts; workers only read it.
struct PropertyPlan {
  const WebAppSpec* spec = nullptr;
  BuchiAutomaton automaton;
  std::vector<FormulaPtr> raw_components;
  std::vector<std::string> free_vars;
  std::vector<SymbolId> fresh_values;
  std::vector<std::vector<SymbolId>> var_candidates;

  // Relevance sets (the paper's "prune the partial configurations with
  // tuples that are irrelevant to the rules and property").
  std::vector<bool> relevant;
  std::vector<std::set<RelationId>> prev_read_by_page;
  std::set<RelationId> property_prev_reads;
  bool property_reads_prev = false;

  /// Page-domain lookup table: `page_domain_table[p]` points into the
  /// PageDomains cache, fully warmed before the workers start so the hot
  /// loops never touch the (lazily minting, mutex-free) cache itself.
  std::vector<const PageDomain*> page_domain_table;

  GpvwStats gpvw_stats;
};

void CollectAtomUses(const Catalog& catalog, const FormulaPtr& f,
                     bool* has_prev, std::set<RelationId>* current,
                     std::set<RelationId>* prev) {
  switch (f->kind()) {
    case Formula::Kind::kAtom: {
      RelationId id = catalog.Find(f->relation());
      if (id == kInvalidRelation) return;
      if (f->previous()) {
        prev->insert(id);
        *has_prev = true;
      } else {
        current->insert(id);
      }
      return;
    }
    case Formula::Kind::kNot:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      CollectAtomUses(catalog, f->body(), has_prev, current, prev);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
      CollectAtomUses(catalog, f->left(), has_prev, current, prev);
      CollectAtomUses(catalog, f->right(), has_prev, current, prev);
      return;
    default:
      return;
  }
}

void ComputeRelevance(const WebAppSpec& spec, PropertyPlan* plan) {
  const Catalog& catalog = spec.catalog();
  plan->relevant.assign(catalog.size(), false);
  plan->prev_read_by_page.assign(spec.num_pages(), {});
  plan->property_reads_prev = false;

  std::set<RelationId> property_current, property_prev;
  for (const FormulaPtr& c : plan->raw_components) {
    CollectAtomUses(catalog, c, &plan->property_reads_prev,
                    &property_current, &property_prev);
  }
  for (RelationId id : property_current) plan->relevant[id] = true;
  for (RelationId id : property_prev) plan->relevant[id] = true;
  plan->property_prev_reads = property_prev;

  bool dummy = false;
  for (int p = 0; p < spec.num_pages(); ++p) {
    const PageSchema& page = spec.page(p);
    std::set<RelationId> current, prev;
    auto walk = [&](const FormulaPtr& body) {
      CollectAtomUses(catalog, body, &dummy, &current, &prev);
    };
    for (const InputRule& r : page.input_rules) walk(r.body);
    for (const StateRule& r : page.state_rules) walk(r.body);
    for (const ActionRule& r : page.action_rules) walk(r.body);
    for (const TargetRule& r : page.target_rules) walk(r.condition);
    for (RelationId id : current) plan->relevant[id] = true;
    for (RelationId id : prev) plan->relevant[id] = true;
    plan->prev_read_by_page[p] = prev;
  }
}

/// Builds automaton, per-variable candidate constants and relevance info.
/// Returns false when the verdict is already decided (negation
/// unsatisfiable): `result` then carries kHolds.
bool PreparePlan(WebAppSpec* spec, const Property& property,
                 obs::Tracer* tracer, PropertyPlan* plan,
                 VerifyResult* result) {
  plan->spec = spec;
  // ϕ := ¬ϕ0 — search for a pseudorun satisfying the negation.
  LtlPtr negated = LtlFormula::Not(property.body);
  Abstraction abstraction = AbstractLtl(negated, spec->symbols());
  plan->raw_components = abstraction.components;
  {
    obs::ScopedSpan span(tracer, "gpvw");
    GpvwOptions gpvw_options;
    gpvw_options.stats = &plan->gpvw_stats;
    plan->automaton =
        LtlToBuchi(&abstraction.arena, abstraction.root,
                   static_cast<int>(abstraction.components.size()),
                   gpvw_options);
  }
  result->stats.buchi_states = plan->automaton.NumStates();
  if (plan->automaton.IsEmptyLanguage()) {
    // The negation is unsatisfiable over infinite words: ϕ0 holds on all
    // runs of any system.
    result->verdict = Verdict::kHolds;
    return false;
  }

  // Free variables: the property's outermost universal block. Every free
  // variable of the body must be declared there.
  plan->free_vars = property.forall_vars;
  {
    std::set<std::string> declared(plan->free_vars.begin(),
                                   plan->free_vars.end());
    for (const FormulaPtr& c : plan->raw_components) {
      for (const std::string& v : c->FreeVariables()) {
        WAVE_CHECK_MSG(declared.count(v) > 0,
                       "property " << property.name << ": free variable '"
                                   << v
                                   << "' not bound by the forall block");
      }
    }
  }

  // Candidate constants per free variable (dataflow-guided C∃): the
  // constants any of the variable's attribute positions may be compared
  // to, its directly equated constants, and one fresh value.
  ComparisonAnalysis uninstantiated(*spec, plan->raw_components);
  VarOccurrences occurrences;
  for (const FormulaPtr& c : plan->raw_components) {
    occurrences.Walk(spec->catalog(), c);
  }
  for (const std::string& v : plan->free_vars) {
    std::set<SymbolId> candidates;
    for (const AttrPos& pos : occurrences.positions[v]) {
      const std::set<SymbolId>& cs = uninstantiated.constants(pos);
      candidates.insert(cs.begin(), cs.end());
    }
    const std::set<SymbolId>& eq = occurrences.equated_constants[v];
    candidates.insert(eq.begin(), eq.end());
    plan->fresh_values.push_back(spec->symbols().MintFresh("free." + v));
    plan->var_candidates.push_back(
        std::vector<SymbolId>(candidates.begin(), candidates.end()));
  }

  ComputeRelevance(*spec, plan);
  return true;
}

/// Enumerates the C∃ bindings in exactly the order the sequential search
/// visited them, so shard index order reproduces the old chronology.
void EnumerateBindings(const PropertyPlan& plan, bool exhaustive, size_t i,
                       std::map<std::string, SymbolId>* binding,
                       std::vector<std::map<std::string, SymbolId>>* out) {
  if (i == plan.free_vars.size()) {
    out->push_back(*binding);
    return;
  }
  std::vector<SymbolId> values = plan.var_candidates[i];
  values.push_back(plan.fresh_values[i]);
  if (exhaustive) {
    // Equality patterns among fresh values: variable i may reuse the
    // fresh value of any earlier variable (canonical partition labels).
    for (size_t j = 0; j < i; ++j) values.push_back(plan.fresh_values[j]);
  }
  for (SymbolId v : values) {
    (*binding)[plan.free_vars[i]] = v;
    EnumerateBindings(plan, exhaustive, i + 1, binding, out);
  }
  binding->erase(plan.free_vars[i]);
}

/// Everything one C∃ assignment contributes to the search, frozen before
/// the workers start: instantiated/prepared components, the constant
/// universe, the dataflow analysis, and — crucially — every candidate set
/// the search can reach, pre-built into lock-free lookup tables. Lives
/// behind a unique_ptr because the CandidateBuilder keeps a pointer to
/// `instantiated`.
struct AssignmentContext {
  int index = 0;
  std::map<std::string, SymbolId> binding;
  std::vector<FormulaPtr> instantiated;
  std::vector<PreparedFormula> components;
  std::set<SymbolId> constant_universe;
  std::vector<SymbolId> constant_vector;
  std::unique_ptr<ComparisonAnalysis> analysis;
  std::unique_ptr<CandidateBuilder> builder;

  const CandidateSet* core_candidates = nullptr;
  /// Cores of this assignment: 2^|core_candidates| (0 when overflowed).
  int64_t num_cores = 0;
  bool core_overflow = false;
  std::string overflow_message;

  /// Extension candidate sets, indexed `page * ext_stride + (prev + 1)`
  /// for every (page, prev) pair reachable by `Advance` (prev = -1 is the
  /// initial configuration). Overflowed sets are stored too — the search
  /// reports them at use time, like the sequential code did.
  std::vector<const CandidateSet*> ext_table;
  int ext_stride = 0;

  double build_us = 0;  // wall time to build this context (pre-pass)

  const CandidateSet* extension(int page, int prev_page) const {
    return ext_table[page * ext_stride + (prev_page + 1)];
  }
};

std::unique_ptr<AssignmentContext> BuildAssignmentContext(
    WebAppSpec* spec, PageDomains* page_domains, const PropertyPlan& plan,
    const VerifyOptions& options,
    const std::map<std::string, SymbolId>& binding, int index,
    obs::Tracer* tracer, double* dataflow_us) {
  auto ctx = std::make_unique<AssignmentContext>();
  ctx->index = index;
  ctx->binding = binding;
  Stopwatch build_watch;

  // Instantiate and prepare ϕ's FO components as sentences.
  PageResolver resolver = [spec](const std::string& name) {
    return spec->PageIndex(name);
  };
  for (const FormulaPtr& c : plan.raw_components) {
    FormulaPtr inst = c->SubstituteConstants(binding);
    ctx->instantiated.push_back(inst);
    ctx->components.push_back(
        PreparedFormula::Prepare(inst, spec->catalog(), {}, resolver));
  }

  // C = CW ∪ (property constants) ∪ C∃.
  ctx->constant_universe = spec->SpecConstants();
  for (const FormulaPtr& c : ctx->instantiated) {
    std::set<SymbolId> cs = c->Constants();
    ctx->constant_universe.insert(cs.begin(), cs.end());
  }
  for (const auto& [var, value] : binding) {
    ctx->constant_universe.insert(value);
  }
  ctx->constant_vector.assign(ctx->constant_universe.begin(),
                              ctx->constant_universe.end());

  // Dataflow analysis over the instantiated property + spec, and the
  // candidate sets it prunes.
  obs::ScopedSpan dataflow_span(tracer, "dataflow");
  Stopwatch dataflow_watch;
  ctx->analysis =
      std::make_unique<ComparisonAnalysis>(*spec, ctx->instantiated);
  CandidateOptions candidate_options;
  candidate_options.heuristic1 = options.heuristic1;
  candidate_options.heuristic2 = options.heuristic2;
  candidate_options.max_candidates = options.max_candidates;
  ctx->builder = std::make_unique<CandidateBuilder>(
      spec, page_domains, ctx->analysis.get(), &ctx->instantiated,
      ctx->constant_universe, candidate_options);

  const CandidateSet& core = ctx->builder->CoreCandidates();
  ctx->core_candidates = &core;
  // The shard address encodes the core as an int64 bitmap, so ≥ 63
  // candidate tuples is treated as overflow too (the 2^63-core powerset
  // could never be enumerated anyway).
  if (core.overflow || core.tuples.size() > 62) {
    ctx->core_overflow = true;
    ctx->overflow_message =
        "core candidate set overflow (" +
        std::to_string(core.approx_tuple_count) + " candidate tuples); " +
        "Heuristic 1 " +
        (options.heuristic1 ? "insufficient" : "disabled");
  } else {
    ctx->num_cores = int64_t{1} << core.tuples.size();
    // Warm every (page, prev_page) extension pair `Advance` can produce —
    // the initial (home, -1), same-page stays, and every target edge — so
    // the workers never call the memoizing builder concurrently.
    const int stride = spec->num_pages() + 1;
    ctx->ext_stride = stride;
    ctx->ext_table.assign(
        static_cast<size_t>(spec->num_pages()) * stride, nullptr);
    auto warm = [&](int page, int prev) {
      if (page < 0 || page >= spec->num_pages()) return;
      const CandidateSet*& slot = ctx->ext_table[page * stride + (prev + 1)];
      if (slot == nullptr) {
        slot = &ctx->builder->ExtensionCandidates(page, prev);
      }
    };
    warm(spec->home_page(), -1);
    for (int q = 0; q < spec->num_pages(); ++q) {
      warm(q, q);
      for (const TargetRule& t : spec->page(q).target_rules) {
        warm(t.target_page, q);
      }
    }
  }
  dataflow_span.End();
  *dataflow_us += dataflow_watch.ElapsedMicros();
  ctx->build_us = build_watch.ElapsedMicros();
  return ctx;
}

/// Heartbeat counters a worker publishes for the coordinator's aggregated
/// progress snapshots (jobs > 1 only; all relaxed — monitoring data).
struct WorkerProgress {
  std::atomic<int64_t> expansions{0};
  std::atomic<int64_t> successors{0};
  std::atomic<int64_t> cores{0};
  std::atomic<int> trie_size{0};
  std::atomic<int> max_trie{0};
};

/// State shared by every worker of one attempt, guarded by one mutex: the
/// first-counterexample claim (plus the serialized candidate_filter) and
/// the minimum-(assignment, core) shard-local unknown.
struct EngineShared {
  std::mutex mu;

  bool winner_claimed = false;
  std::vector<CounterexampleStep> stick;
  std::vector<CounterexampleStep> candy;
  std::map<std::string, SymbolId> witness_binding;

  int64_t rejected = 0;    // counterexamples discarded by candidate_filter
  double validate_us = 0;  // wall time inside candidate_filter

  bool has_local_unknown = false;
  int local_assignment = 0;
  int64_t local_core = 0;
  UnknownReason local_reason = UnknownReason::kNone;
  std::string local_message;

  /// Keeps the lexicographically smallest (assignment, core) unknown —
  /// the one the sequential search would have hit (and stopped at) first.
  void RecordLocalUnknown(int assignment, int64_t core,
                          UnknownReason reason, std::string message) {
    std::lock_guard<std::mutex> lock(mu);
    if (has_local_unknown &&
        std::pair<int, int64_t>(local_assignment, local_core) <=
            std::pair<int, int64_t>(assignment, core)) {
      return;
    }
    has_local_unknown = true;
    local_assignment = assignment;
    local_core = core;
    local_reason = reason;
    local_message = std::move(message);
  }
};

/// One worker's NDFS machinery: its own visited trie, search stacks,
/// governor front end and stats. Pops shards off the queue until it runs
/// dry or a stop fans out. Reads the plan/contexts only; everything it
/// writes is thread-local except the mutex-guarded EngineShared claims.
class ShardRunner {
 public:
  ShardRunner(const PropertyPlan* plan,
              const std::vector<std::unique_ptr<AssignmentContext>>* ctxs,
              const PreparedSpec* prepared, const VerifyOptions* options,
              EngineShared* shared, BudgetLedger* ledger, int worker,
              obs::Tracer* tracer, bool heartbeat_enabled,
              WorkerProgress* progress)
      : plan_(plan),
        ctxs_(ctxs),
        spec_(plan->spec),
        prepared_(prepared),
        options_(options),
        shared_(shared),
        ledger_(ledger),
        worker_(worker),
        tracer_(tracer),
        heartbeat_enabled_(heartbeat_enabled),
        progress_(progress),
        gov_(ledger, worker) {
    gov_.WatchExpansions(&stats_.num_expansions);
    assignment_us_.assign(ctxs->size(), 0.0);
  }

  void Drain(ShardQueue* queue) {
    Shard shard;
    while (!ledger_->stop_requested() && queue->Pop(worker_, &shard)) {
      Stopwatch shard_watch;
      SearchStatus status = RunShard(shard);
      assignment_us_[shard.assignment] += shard_watch.ElapsedMicros();
      if (status == SearchStatus::kFound) {
        found_ = true;
        break;
      }
      if (status == SearchStatus::kAbort) {
        if (abort_kind_ == AbortKind::kLocal) {
          shared_->RecordLocalUnknown(shard.assignment, shard.core,
                                      local_reason_,
                                      std::move(local_message_));
          abort_kind_ = AbortKind::kNone;
          continue;  // siblings are still worth searching
        }
        break;  // global trip or stop fan-out
      }
    }
    // Publish the tail deltas (no limit check: a deadline that lapses
    // after the last shard finished must not flip a completed search).
    gov_.Flush();
  }

  const VerifyStats& stats() const { return stats_; }
  const std::vector<double>& assignment_us() const { return assignment_us_; }
  int64_t heartbeats() const { return heartbeats_; }
  bool found() const { return found_; }

 private:
  SearchStatus RunShard(const Shard& shard) {
    ctx_ = (*ctxs_)[shard.assignment].get();
    obs::ScopedSpan span(tracer_, "core");
    ++stats_.num_cores;
    core_.clear();
    const auto& tuples = ctx_->core_candidates->tuples;
    for (size_t b = 0; b < tuples.size(); ++b) {
      if ((shard.core >> b) & 1) core_.push_back(tuples[b]);
    }
    trie_ = std::make_unique<VisitedTrie>();
    stick_stack_.clear();
    candy_stack_.clear();
    stack_bytes_ = 0;

    // Start pseudoconfigurations: home page, database = core ∪ extension.
    Configuration skeleton;
    skeleton.page = spec_->home_page();
    skeleton.data = Instance(&spec_->catalog());
    skeleton.previous = Instance(&spec_->catalog());
    for (const auto& [relation, tuple] : core_) {
      skeleton.data.relation(relation).Insert(tuple);
    }
    SearchStatus status = ForEachCompletion(
        skeleton, /*prev_page=*/-1, [this](const Configuration& c0) {
          return Stick(plan_->automaton.start, c0, 1);
        });
    stats_.max_trie_size = std::max(stats_.max_trie_size, trie_->size());
    stats_.trie_hits += trie_->stats().hits;
    stats_.trie_misses += trie_->stats().misses;
    return status;
  }

  /// Enumerates extensions and input choices completing `skeleton` (whose
  /// page/state/previous are set and whose database holds exactly the
  /// core), invoking `fn` for each completed configuration.
  template <typename Fn>
  SearchStatus ForEachCompletion(const Configuration& skeleton,
                                 int prev_page, const Fn& fn) {
    const CandidateSet* ext = ctx_->extension(skeleton.page, prev_page);
    WAVE_CHECK_MSG(ext != nullptr,
                   "unwarmed extension pair (page "
                       << skeleton.page << ", prev " << prev_page << ")");
    if (ext->overflow) {
      local_message_ = "extension candidate overflow at page " +
                       spec_->page(skeleton.page).name + " (" +
                       std::to_string(ext->approx_tuple_count) +
                       " candidate tuples); Heuristic 2 " +
                       (options_->heuristic2 ? "insufficient" : "disabled");
      local_reason_ = UnknownReason::kCandidateBudget;
      abort_kind_ = AbortKind::kLocal;
      return SearchStatus::kAbort;
    }
    DynamicBitset ext_bitmap(static_cast<int>(ext->tuples.size()));
    while (true) {
      Configuration with_ext = skeleton;
      for (int b = 0; b < ext_bitmap.size(); ++b) {
        if (ext_bitmap.Test(b)) {
          const auto& [relation, tuple] = ext->tuples[b];
          with_ext.data.relation(relation).Insert(tuple);
        }
      }
      std::vector<SymbolId> domain = WindowDomain(with_ext);
      InputOptions input_options = prepared_->ComputeOptions(with_ext, domain);
      std::vector<InputChoice> choices =
          EnumerateChoices(with_ext.page, input_options);
      for (const InputChoice& choice : choices) {
        Configuration complete = with_ext;
        prepared_->ApplyInput(choice, domain, &complete);
        FilterToUniverse(&complete.data, RelationKind::kAction);
        ++stats_.num_successors;
        SearchStatus status = fn(complete);
        if (status != SearchStatus::kContinue) return status;
      }
      if (!ext_bitmap.Increment()) break;
    }
    return SearchStatus::kContinue;
  }

  /// succP (Section 3.1): keep the core, recompute page/state/previous,
  /// re-choose the extension and input.
  template <typename Fn>
  SearchStatus ForEachSuccessor(const Configuration& config, const Fn& fn) {
    std::vector<SymbolId> domain = WindowDomain(config);
    Configuration skeleton = prepared_->Advance(config, domain);
    // States are kept only over C (other tuples cannot affect the
    // input-bounded property or rules).
    FilterToUniverse(&skeleton.data, RelationKind::kState);
    PruneIrrelevant(&skeleton);
    // The previous extension is discarded: reset the database to the core.
    for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
      if (spec_->catalog().schema(id).kind == RelationKind::kDatabase) {
        skeleton.data.relation(id).Clear();
      }
    }
    for (const auto& [relation, tuple] : core_) {
      skeleton.data.relation(relation).Insert(tuple);
    }
    return ForEachCompletion(skeleton, config.page, fn);
  }

  // --- the nested depth-first search ----------------------------------------
  SearchStatus Stick(int state, const Configuration& config, int depth) {
    if (SearchStatus status = CheckBudgets();
        status != SearchStatus::kContinue) {
      return status;
    }
    EncodeVisitedKeyInto(0, state, config, &key_scratch_);
    if (!trie_->Insert(key_scratch_)) {
      return SearchStatus::kContinue;
    }
    // The encoded key length doubles as this frame's share of the memory
    // estimate (the stacks hold one Configuration per frame). Early aborts
    // skip the matching subtraction deliberately: the search is over.
    const int64_t frame_bytes = static_cast<int64_t>(key_scratch_.size());
    stack_bytes_ += frame_bytes;
    gov_.ReportMemory(trie_->approx_bytes() + stack_bytes_);
    ++stats_.num_expansions;
    stats_.max_pseudorun_length =
        std::max(stats_.max_pseudorun_length, depth);
    stick_stack_.push_back({state, config});

    std::vector<bool> assignment = EvalComponents(config);
    for (const BuchiTransition& t : plan_->automaton.adj[state]) {
      if (!GuardSatisfied(t.guard, assignment)) continue;
      SearchStatus status = ForEachSuccessor(
          config, [&](const Configuration& next) -> SearchStatus {
            EncodeVisitedKeyInto(0, t.to, next, &key_scratch_);
            if (!trie_->Contains(key_scratch_)) {
              SearchStatus s = Stick(t.to, next, depth + 1);
              if (s != SearchStatus::kContinue) return s;
            }
            if (plan_->automaton.accepting[t.to]) {
              base_state_ = t.to;
              base_config_ = next;
              candy_stack_.clear();
              SearchStatus s = Candy(t.to, next, depth + 1);
              if (s != SearchStatus::kContinue) return s;
            }
            return SearchStatus::kContinue;
          });
      if (status != SearchStatus::kContinue) return status;
    }
    stick_stack_.pop_back();
    stack_bytes_ -= frame_bytes;
    return SearchStatus::kContinue;
  }

  SearchStatus Candy(int state, const Configuration& config, int depth) {
    if (SearchStatus status = CheckBudgets();
        status != SearchStatus::kContinue) {
      return status;
    }
    EncodeVisitedKeyInto(1, state, config, &key_scratch_);
    if (!trie_->Insert(key_scratch_)) {
      return SearchStatus::kContinue;
    }
    const int64_t frame_bytes = static_cast<int64_t>(key_scratch_.size());
    stack_bytes_ += frame_bytes;
    gov_.ReportMemory(trie_->approx_bytes() + stack_bytes_);
    ++stats_.num_expansions;
    stats_.max_pseudorun_length =
        std::max(stats_.max_pseudorun_length, depth);
    candy_stack_.push_back({state, config});

    std::vector<bool> assignment = EvalComponents(config);
    for (const BuchiTransition& t : plan_->automaton.adj[state]) {
      if (!GuardSatisfied(t.guard, assignment)) continue;
      SearchStatus status = ForEachSuccessor(
          config, [&](const Configuration& next) -> SearchStatus {
            if (t.to == base_state_ && next == base_config_) {
              return ClaimCounterexample();
            }
            EncodeVisitedKeyInto(1, t.to, next, &key_scratch_);
            if (!trie_->Contains(key_scratch_)) {
              return Candy(t.to, next, depth + 1);
            }
            return SearchStatus::kContinue;
          });
      if (status != SearchStatus::kContinue) return status;
    }
    candy_stack_.pop_back();
    stack_bytes_ -= frame_bytes;
    return SearchStatus::kContinue;
  }

  /// Lollipop closed: candidate counterexample. First worker to claim it
  /// under the engine mutex wins; the candidate_filter (if any) runs
  /// serialized under the same mutex — paper Section 7: "If it does not
  /// [correspond to a genuine run], the ndfs search is reactivated".
  SearchStatus ClaimCounterexample() {
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (shared_->winner_claimed) {
      // Another worker already reported; treat as a stop.
      abort_kind_ = AbortKind::kGlobal;
      return SearchStatus::kAbort;
    }
    if (options_->candidate_filter != nullptr) {
      obs::ScopedSpan validate_span(tracer_, "validate");
      Stopwatch validate_watch;
      bool accepted = options_->candidate_filter(stick_stack_, candy_stack_,
                                                 ctx_->binding);
      shared_->validate_us += validate_watch.ElapsedMicros();
      if (!accepted) {
        ++shared_->rejected;
        return SearchStatus::kContinue;
      }
    }
    shared_->winner_claimed = true;
    shared_->stick = stick_stack_;
    shared_->candy = candy_stack_;
    shared_->witness_binding = ctx_->binding;
    lock.unlock();
    ledger_->RequestStop();
    return SearchStatus::kFound;
  }

  // --- evaluation helpers ---------------------------------------------------
  std::vector<bool> EvalComponents(const Configuration& config) {
    ConfigurationAdapter view(&config);
    std::vector<SymbolId> domain = WindowDomain(config);
    std::vector<bool> assignment(ctx_->components.size());
    for (size_t i = 0; i < ctx_->components.size(); ++i) {
      std::vector<SymbolId> regs = ctx_->components[i].MakeRegisters();
      assignment[i] = ctx_->components[i].EvalClosed(view, domain, &regs);
    }
    return assignment;
  }

  std::vector<SymbolId> WindowDomain(const Configuration& config) const {
    std::vector<SymbolId> domain = ctx_->constant_vector;
    std::vector<SymbolId> active = config.data.ActiveDomain();
    domain.insert(domain.end(), active.begin(), active.end());
    std::vector<SymbolId> prev = config.previous.ActiveDomain();
    domain.insert(domain.end(), prev.begin(), prev.end());
    const PageDomain& pd = *plan_->page_domain_table[config.page];
    domain.insert(domain.end(), pd.all_values.begin(), pd.all_values.end());
    std::sort(domain.begin(), domain.end());
    domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
    return domain;
  }

  /// Removes tuples with any value outside C from relations of `kind`.
  void FilterToUniverse(Instance* instance, RelationKind kind) {
    for (RelationId id = 0; id < spec_->catalog().size(); ++id) {
      if (spec_->catalog().schema(id).kind != kind) continue;
      Relation& r = instance->relation(id);
      Relation filtered(r.arity());
      for (const Tuple& t : r.tuples()) {
        bool in_universe = true;
        for (SymbolId v : t) {
          if (ctx_->constant_universe.count(v) == 0) {
            in_universe = false;
            break;
          }
        }
        if (in_universe) filtered.Insert(t);
      }
      r = std::move(filtered);
    }
  }

  /// Clears irrelevant state/action tuples and previous inputs the current
  /// page (and property) cannot read.
  void PruneIrrelevant(Configuration* config) {
    const Catalog& catalog = spec_->catalog();
    const std::set<RelationId>& page_prev =
        plan_->prev_read_by_page[config->page];
    for (RelationId id = 0; id < catalog.size(); ++id) {
      RelationKind kind = catalog.schema(id).kind;
      if (kind == RelationKind::kState || kind == RelationKind::kAction) {
        if (!plan_->relevant[id]) config->data.relation(id).Clear();
      } else if (kind == RelationKind::kInput ||
                 kind == RelationKind::kInputConstant) {
        if (page_prev.count(id) == 0 &&
            plan_->property_prev_reads.count(id) == 0) {
          config->previous.relation(id).Clear();
        }
      }
    }
  }

  std::vector<InputChoice> EnumerateChoices(int page,
                                            const InputOptions& options) {
    const PageSchema& schema = spec_->page(page);
    const PageDomain& pd = *plan_->page_domain_table[page];
    // Alternatives per input: "no choice" plus each offered tuple; input
    // constants take a fresh page value or a constant they are compared to.
    std::vector<std::pair<RelationId, std::vector<Tuple>>> alternatives;
    for (RelationId input : schema.inputs) {
      std::vector<Tuple> tuples;
      if (!plan_->relevant[input]) {
        // Nothing reads this input anywhere: the choice cannot matter.
        alternatives.emplace_back(input, std::move(tuples));
        continue;
      }
      if (spec_->catalog().schema(input).kind ==
          RelationKind::kInputConstant) {
        auto it = pd.input_values.find({input, 0});
        if (it != pd.input_values.end()) tuples.push_back({it->second});
        for (SymbolId c : ctx_->analysis->constants({input, 0})) {
          if (ctx_->constant_universe.count(c) > 0) tuples.push_back({c});
        }
      } else {
        auto it = options.find(input);
        if (it != options.end()) tuples = it->second;
      }
      alternatives.emplace_back(input, std::move(tuples));
    }
    std::vector<InputChoice> out = {{}};
    for (const auto& [input, tuples] : alternatives) {
      std::vector<InputChoice> expanded;
      for (const InputChoice& base : out) {
        expanded.push_back(base);  // "no choice" for this input
        for (const Tuple& t : tuples) {
          InputChoice with = base;
          with[input] = t;
          expanded.push_back(std::move(with));
        }
      }
      out = std::move(expanded);
    }
    return out;
  }

  /// Hot-loop governance probe: one `WorkerGovernor::Tick` (a counter
  /// compare and a relaxed trip load on most calls; a flush + ledger check
  /// every kPollStride-th) plus one relaxed stop-flag load, so a sibling's
  /// counterexample stops this worker within one poll stride.
  SearchStatus CheckBudgets() {
    UnknownReason reason = gov_.Tick();
    if (reason != UnknownReason::kNone) {
      abort_kind_ = AbortKind::kGlobal;
      return SearchStatus::kAbort;
    }
    if (ledger_->stop_requested()) {
      abort_kind_ = AbortKind::kGlobal;
      return SearchStatus::kAbort;
    }
    if (progress_ != nullptr) PublishProgress();
    if (heartbeat_enabled_) MaybeHeartbeat(ledger_->ElapsedSeconds());
    return SearchStatus::kContinue;
  }

  void PublishProgress() {
    progress_->expansions.store(stats_.num_expansions,
                                std::memory_order_relaxed);
    progress_->successors.store(stats_.num_successors,
                                std::memory_order_relaxed);
    progress_->cores.store(stats_.num_cores, std::memory_order_relaxed);
    int trie_size = trie_ != nullptr ? trie_->size() : 0;
    progress_->trie_size.store(trie_size, std::memory_order_relaxed);
    progress_->max_trie.store(std::max(stats_.max_trie_size, trie_size),
                              std::memory_order_relaxed);
  }

  /// Fires the progress heartbeat (and trace counter tracks) when the
  /// configured interval has elapsed. Only used on the jobs == 1 inline
  /// path (with a pool the coordinating thread aggregates instead).
  void MaybeHeartbeat(double elapsed) {
    if (elapsed - last_heartbeat_seconds_ <
        options_->heartbeat_interval_seconds) {
      return;
    }
    last_heartbeat_seconds_ = elapsed;
    ++heartbeats_;
    int trie_size = trie_ != nullptr ? trie_->size() : 0;
    if (options_->heartbeat != nullptr) {
      HeartbeatSnapshot snapshot;
      snapshot.elapsed_seconds = elapsed;
      snapshot.num_assignments =
          static_cast<int64_t>(assignment_us_.size());
      snapshot.num_cores = stats_.num_cores;
      snapshot.num_expansions = stats_.num_expansions;
      snapshot.num_successors = stats_.num_successors;
      snapshot.trie_size = trie_size;
      snapshot.max_trie_size = std::max(stats_.max_trie_size, trie_size);
      snapshot.buchi_states = plan_->automaton.NumStates();
      options_->heartbeat(snapshot);
    }
    if (tracer_ != nullptr) {
      tracer_->Counter("expansions",
                       static_cast<double>(stats_.num_expansions));
      tracer_->Counter("successors",
                       static_cast<double>(stats_.num_successors));
      tracer_->Counter("trie_size", static_cast<double>(trie_size));
      tracer_->Counter("cores", static_cast<double>(stats_.num_cores));
    }
  }

  const PropertyPlan* plan_;
  const std::vector<std::unique_ptr<AssignmentContext>>* ctxs_;
  const WebAppSpec* spec_;
  const PreparedSpec* prepared_;
  const VerifyOptions* options_;
  EngineShared* shared_;
  BudgetLedger* ledger_;
  int worker_;
  obs::Tracer* tracer_;
  bool heartbeat_enabled_;
  WorkerProgress* progress_;

  WorkerGovernor gov_;
  VerifyStats stats_;
  std::vector<double> assignment_us_;  // summed shard time per assignment
  int64_t heartbeats_ = 0;
  double last_heartbeat_seconds_ = 0;
  bool found_ = false;

  AbortKind abort_kind_ = AbortKind::kNone;
  UnknownReason local_reason_ = UnknownReason::kNone;
  std::string local_message_;

  // Per-shard state. `key_scratch_` is the reused encode buffer of the
  // search hot loop; `stack_bytes_` tracks the encoded size of every frame
  // currently on the stick/candy stacks.
  const AssignmentContext* ctx_ = nullptr;
  std::vector<std::pair<RelationId, Tuple>> core_;
  std::unique_ptr<VisitedTrie> trie_;
  std::vector<CounterexampleStep> stick_stack_;
  std::vector<CounterexampleStep> candy_stack_;
  std::vector<uint8_t> key_scratch_;
  int64_t stack_bytes_ = 0;
  int base_state_ = -1;
  Configuration base_config_;
};

/// Phase-boundary poll; fills in the kUnknown result when a limit tripped
/// outside the search hot loop.
bool AbortIfTripped(BudgetLedger* ledger, VerifyResult* result) {
  if (ledger->Check() == UnknownReason::kNone) return false;
  result->verdict = Verdict::kUnknown;
  result->failure_reason = ledger->trip_message();
  result->unknown_reason = ledger->trip_reason();
  return true;
}

}  // namespace

namespace {

/// One verification attempt: plan, sequential pre-pass, sharded search,
/// deterministic merge, metrics finalization. The heart of PR 3 — see
/// docs/PARALLELISM.md for the shard model and the determinism contract.
VerifyResult RunAttempt(WebAppSpec* spec, PreparedSpec* prepared,
                        PageDomains* page_domains, const Property& property,
                        const VerifyOptions& options, int jobs) {
  VerifyResult result;
  Stopwatch watch;
  PreparedExecStats exec_before = prepared->exec_stats();
  obs::ScopedSpan verify_span(options.tracer, "verify");

  // The ledger's deadline clock starts here, covering prepare/dataflow.
  BudgetLedger ledger(GovernorLimitsFromOptions(options), jobs);

  PropertyPlan plan;
  double prepare_us = 0;
  double dataflow_us = 0;
  double search_us = 0;
  bool undecided;
  {
    obs::ScopedSpan span(options.tracer, "prepare");
    Stopwatch prepare_watch;
    undecided = PreparePlan(spec, property, options.tracer, &plan, &result);
    prepare_us = prepare_watch.ElapsedMicros();
  }

  std::vector<std::unique_ptr<AssignmentContext>> ctxs;
  std::vector<std::unique_ptr<ShardRunner>> runners;
  EngineShared shared;
  const bool heartbeat_enabled =
      options.heartbeat != nullptr || options.tracer != nullptr;
  int64_t coordinator_heartbeats = 0;
  int64_t steals = 0;

  // Phase boundary: a cancellation or deadline that landed during the
  // (untickled) prepare phase must not start the search.
  if (undecided && !AbortIfTripped(&ledger, &result)) {
    obs::ScopedSpan search_span(options.tracer, "search");
    Stopwatch search_watch;

    // --- sequential pre-pass ------------------------------------------------
    // Everything that mints symbols or touches a memoizing cache happens
    // here, on one thread, in a deterministic order: page domains, C∃
    // contexts (dataflow + candidate sets), extension tables. The workers
    // then only read. A core-candidate overflow truncates the pre-pass at
    // that assignment — exactly where the sequential search would have
    // stopped — and is reported unless an earlier shard decides otherwise.
    plan.page_domain_table.resize(spec->num_pages());
    for (int p = 0; p < spec->num_pages(); ++p) {
      plan.page_domain_table[p] = &page_domains->Get(p);
    }

    std::vector<std::map<std::string, SymbolId>> bindings;
    {
      std::map<std::string, SymbolId> binding;
      EnumerateBindings(plan, options.exhaustive_existential, 0, &binding,
                       &bindings);
    }

    bool prepass_tripped = false;
    for (size_t i = 0; i < bindings.size(); ++i) {
      if (ledger.Check() != UnknownReason::kNone) {
        prepass_tripped = true;
        break;
      }
      obs::ScopedSpan assignment_span(options.tracer, "assignment");
      ctxs.push_back(BuildAssignmentContext(
          spec, page_domains, plan, options, bindings[i],
          static_cast<int>(i), options.tracer, &dataflow_us));
      if (ctxs.back()->core_overflow) {
        shared.RecordLocalUnknown(ctxs.back()->index, /*core=*/-1,
                                  UnknownReason::kCandidateBudget,
                                  ctxs.back()->overflow_message);
        break;
      }
    }
    result.stats.num_assignments = static_cast<int64_t>(ctxs.size());

    // --- sharded search -----------------------------------------------------
    std::vector<ShardBlock> blocks;
    for (const std::unique_ptr<AssignmentContext>& ctx : ctxs) {
      if (!ctx->core_overflow && ctx->num_cores > 0) {
        blocks.push_back({ctx->index, 0, ctx->num_cores});
      }
    }

    if (!blocks.empty() && !prepass_tripped &&
        ledger.trip_reason() == UnknownReason::kNone) {
      ShardQueue queue(blocks, jobs);
      if (jobs == 1) {
        // Inline on the calling thread: the caller's tracer, inline
        // heartbeats, the verifier's own prepared runtime — byte-for-byte
        // the sequential engine.
        runners.push_back(std::make_unique<ShardRunner>(
            &plan, &ctxs, prepared, &options, &shared, &ledger,
            /*worker=*/0, options.tracer, heartbeat_enabled,
            /*progress=*/nullptr));
        runners[0]->Drain(&queue);
      } else {
        // Per-worker prepared runtimes (the exec-stats counters are
        // mutable) and tracers, all constructed sequentially here.
        std::vector<std::unique_ptr<PreparedSpec>> worker_prepared;
        std::vector<std::unique_ptr<obs::Tracer>> worker_tracers;
        std::vector<double> tracer_offsets(jobs, 0.0);
        std::vector<std::unique_ptr<WorkerProgress>> progress;
        for (int w = 0; w < jobs; ++w) {
          worker_prepared.push_back(std::make_unique<PreparedSpec>(spec));
          if (options.tracer != nullptr) {
            tracer_offsets[w] = options.tracer->NowMicros();
            worker_tracers.push_back(std::make_unique<obs::Tracer>());
          }
          if (heartbeat_enabled) {
            progress.push_back(std::make_unique<WorkerProgress>());
          }
          runners.push_back(std::make_unique<ShardRunner>(
              &plan, &ctxs, worker_prepared[w].get(), &options, &shared,
              &ledger, w,
              options.tracer != nullptr ? worker_tracers[w].get() : nullptr,
              /*heartbeat_enabled=*/false,
              heartbeat_enabled ? progress[w].get() : nullptr));
        }

        WorkerPool pool(jobs);
        pool.Start([&](int w) { runners[w]->Drain(&queue); });
        if (heartbeat_enabled) {
          // The coordinating thread aggregates per-worker progress into
          // periodic heartbeats while the pool runs.
          double interval = options.heartbeat_interval_seconds > 0.01
                                ? options.heartbeat_interval_seconds
                                : 0.01;
          while (!pool.WaitDone(interval)) {
            ++coordinator_heartbeats;
            int64_t expansions = 0, successors = 0, cores = 0;
            int trie_size = 0, max_trie = 0;
            for (const std::unique_ptr<WorkerProgress>& p : progress) {
              expansions += p->expansions.load(std::memory_order_relaxed);
              successors += p->successors.load(std::memory_order_relaxed);
              cores += p->cores.load(std::memory_order_relaxed);
              trie_size += p->trie_size.load(std::memory_order_relaxed);
              max_trie = std::max(
                  max_trie, p->max_trie.load(std::memory_order_relaxed));
            }
            if (options.heartbeat != nullptr) {
              HeartbeatSnapshot snapshot;
              snapshot.elapsed_seconds = ledger.ElapsedSeconds();
              snapshot.num_assignments =
                  static_cast<int64_t>(ctxs.size());
              snapshot.num_cores = cores;
              snapshot.num_expansions = expansions;
              snapshot.num_successors = successors;
              snapshot.trie_size = trie_size;
              snapshot.max_trie_size = max_trie;
              snapshot.buchi_states = plan.automaton.NumStates();
              options.heartbeat(snapshot);
            }
            if (options.tracer != nullptr) {
              options.tracer->Counter("expansions",
                                      static_cast<double>(expansions));
              options.tracer->Counter("successors",
                                      static_cast<double>(successors));
              options.tracer->Counter("trie_size",
                                      static_cast<double>(trie_size));
              options.tracer->Counter("cores",
                                      static_cast<double>(cores));
            }
          }
        }
        pool.WaitDone(-1);
        pool.Join();

        // Fold the per-worker span streams into the caller's trace, one
        // lane (tid) per worker.
        if (options.tracer != nullptr) {
          for (int w = 0; w < jobs; ++w) {
            options.tracer->MergeFrom(*worker_tracers[w], /*tid=*/2 + w,
                                      tracer_offsets[w]);
          }
        }
        // The prepared.* deltas of the worker copies (fresh instances, so
        // the absolute stats are the deltas) accumulate into the
        // verifier's own runtime stats via the exec delta below.
        for (const std::unique_ptr<PreparedSpec>& wp : worker_prepared) {
          const PreparedExecStats& e = wp->exec_stats();
          exec_before.compute_options_calls -= e.compute_options_calls;
          exec_before.apply_input_calls -= e.apply_input_calls;
          exec_before.advance_calls -= e.advance_calls;
          exec_before.rule_evaluations -= e.rule_evaluations;
          exec_before.derived_tuples -= e.derived_tuples;
        }
      }
      steals = queue.steals();
    }
    ledger.SyncMemoryReadings();
    search_us = search_watch.ElapsedMicros();

    // --- deterministic merge ------------------------------------------------
    // Worker-id order; precedence: counterexample > shard-local unknown
    // (minimum (assignment, core) key — the one the sequential search
    // would have hit first) > global budget trip > holds.
    for (const std::unique_ptr<ShardRunner>& r : runners) {
      const VerifyStats& s = r->stats();
      result.stats.num_cores += s.num_cores;
      result.stats.num_expansions += s.num_expansions;
      result.stats.num_successors += s.num_successors;
      result.stats.trie_hits += s.trie_hits;
      result.stats.trie_misses += s.trie_misses;
      result.stats.max_trie_size =
          std::max(result.stats.max_trie_size, s.max_trie_size);
      result.stats.max_pseudorun_length =
          std::max(result.stats.max_pseudorun_length,
                   s.max_pseudorun_length);
    }
    result.stats.num_rejected_candidates = shared.rejected;

    if (shared.winner_claimed) {
      result.verdict = Verdict::kViolated;
      result.stick = std::move(shared.stick);
      result.candy = std::move(shared.candy);
      result.witness_binding = std::move(shared.witness_binding);
    } else if (shared.has_local_unknown) {
      result.verdict = Verdict::kUnknown;
      result.failure_reason = shared.local_message;
      result.unknown_reason = shared.local_reason;
    } else if (ledger.trip_reason() != UnknownReason::kNone) {
      result.verdict = Verdict::kUnknown;
      result.failure_reason = ledger.trip_message();
      result.unknown_reason = ledger.trip_reason();
    } else {
      result.verdict = Verdict::kHolds;
    }
  }

  {
    // Result validation/finalization; with a candidate_filter installed
    // the per-candidate "validate" spans inside the search carry the bulk
    // of this phase. Per-call registry: stats come from it, then it merges
    // into the caller's (possibly shared, accumulating) registry.
    obs::ScopedSpan validate_span(options.tracer, "validate");
    obs::MetricsRegistry call_metrics;
    VerifyStats& stats = result.stats;
    call_metrics.Add("verify.prepare_us", static_cast<int64_t>(prepare_us));
    call_metrics.Add("verify.dataflow_us",
                     static_cast<int64_t>(dataflow_us));
    double net_search_us =
        std::max(0.0, search_us - dataflow_us - shared.validate_us);
    call_metrics.Add("verify.search_us", static_cast<int64_t>(net_search_us));
    call_metrics.Add("verify.validate_us",
                     static_cast<int64_t>(shared.validate_us));
    call_metrics.Add("verify.assignments", stats.num_assignments);
    call_metrics.Add("verify.cores", stats.num_cores);
    call_metrics.Add("verify.expansions", stats.num_expansions);
    call_metrics.Add("verify.successors", stats.num_successors);
    call_metrics.Add("verify.rejected_candidates",
                     stats.num_rejected_candidates);
    int64_t heartbeats = coordinator_heartbeats;
    for (const std::unique_ptr<ShardRunner>& r : runners) {
      heartbeats += r->heartbeats();
    }
    call_metrics.Add("verify.heartbeats", heartbeats);
    call_metrics.Add("verify.steals", steals);
    call_metrics.Set("verify.jobs", jobs);
    call_metrics.Add("trie.hits", stats.trie_hits);
    call_metrics.Add("trie.misses", stats.trie_misses);
    call_metrics.Set("trie.max_size", stats.max_trie_size);
    call_metrics.Set("buchi.states", stats.buchi_states);
    call_metrics.Add("gpvw.tableau_nodes", plan.gpvw_stats.tableau_nodes);
    call_metrics.Add("gpvw.until_subformulas",
                     plan.gpvw_stats.until_subformulas);
    call_metrics.Set("gpvw.states_before_simplify",
                     plan.gpvw_stats.states_before_simplify);
    GovernorReadings readings = ledger.readings();
    stats.peak_memory_bytes = readings.peak_memory_bytes;
    stats.governor_polls = readings.polls;
    call_metrics.Set("governor.peak_memory_bytes",
                     readings.peak_memory_bytes);
    call_metrics.Add("governor.polls", readings.polls);

    // Per-assignment wall time, recorded in assignment-index order (so the
    // histogram count always equals num_assignments): the pre-pass build
    // time plus the shard time summed across workers.
    obs::Histogram assignment_us;
    for (size_t a = 0; a < ctxs.size(); ++a) {
      double total = ctxs[a]->build_us;
      for (const std::unique_ptr<ShardRunner>& r : runners) {
        total += r->assignment_us()[a];
      }
      assignment_us.Record(total);
    }
    call_metrics.histogram("verify.assignment_us")->MergeFrom(assignment_us);

    const PreparedExecStats& exec = prepared->exec_stats();
    call_metrics.Add(
        "prepared.compute_options_calls",
        exec.compute_options_calls - exec_before.compute_options_calls);
    call_metrics.Add("prepared.apply_input_calls",
                     exec.apply_input_calls - exec_before.apply_input_calls);
    call_metrics.Add("prepared.advance_calls",
                     exec.advance_calls - exec_before.advance_calls);
    call_metrics.Add("prepared.rule_evaluations",
                     exec.rule_evaluations - exec_before.rule_evaluations);
    call_metrics.Add("prepared.derived_tuples",
                     exec.derived_tuples - exec_before.derived_tuples);
    if (options.metrics != nullptr) options.metrics->MergeFrom(call_metrics);

    stats.prepare_seconds =
        call_metrics.counter("verify.prepare_us")->value() / 1e6;
    stats.dataflow_seconds =
        call_metrics.counter("verify.dataflow_us")->value() / 1e6;
    stats.search_seconds =
        call_metrics.counter("verify.search_us")->value() / 1e6;
    stats.validate_seconds =
        call_metrics.counter("verify.validate_us")->value() / 1e6;
    stats.heartbeats = call_metrics.counter("verify.heartbeats")->value();
  }
  result.stats.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace

namespace {

/// Collects the embedded FO formulas (the eventual "FO components") of an
/// LTL property body, in syntactic order.
void CollectFoComponents(const LtlPtr& f, std::vector<FormulaPtr>* out) {
  if (f == nullptr) return;
  if (f->kind() == LtlFormula::Kind::kFo) {
    out->push_back(f->fo());
    return;
  }
  CollectFoComponents(f->left(), out);
  CollectFoComponents(f->right(), out);
}

/// Structural check of one FO component: page atoms name known pages,
/// relation atoms resolve with the declared arity. Mirrors exactly the
/// invariants `PreparedFormula::Prepare` WAVE_CHECKs at verify time, so a
/// property passing here cannot abort the search.
Status ValidateFoComponent(const WebAppSpec& spec,
                           const std::string& property_name,
                           const FormulaPtr& f) {
  switch (f->kind()) {
    case Formula::Kind::kPage:
      if (spec.PageIndex(f->page()) < 0) {
        return Status::InvalidArgument(
            "property '" + property_name + "': unknown page '" + f->page() +
                "' in page atom 'at " + f->page() + "'",
            WAVE_LOC);
      }
      return Status::Ok();
    case Formula::Kind::kAtom: {
      RelationId id = spec.catalog().Find(f->relation());
      if (id == kInvalidRelation) {
        return Status::InvalidArgument(
            "property '" + property_name + "': unknown relation '" +
                f->relation() + "'",
            WAVE_LOC);
      }
      int arity = spec.catalog().schema(id).arity;
      if (static_cast<int>(f->args().size()) != arity) {
        return Status::InvalidArgument(
            "property '" + property_name + "': atom " + f->relation() + "/" +
                std::to_string(f->args().size()) +
                " does not match declared arity " + std::to_string(arity),
            WAVE_LOC);
      }
      return Status::Ok();
    }
    case Formula::Kind::kNot:
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return ValidateFoComponent(spec, property_name, f->body());
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
      WAVE_RETURN_IF_ERROR(
          ValidateFoComponent(spec, property_name, f->left()));
      return ValidateFoComponent(spec, property_name, f->right());
    default:
      return Status::Ok();
  }
}

}  // namespace

Status ValidatePropertyForSpec(const WebAppSpec& spec,
                               const Property& property) {
  if (property.body == nullptr) {
    return Status::InvalidArgument(
        "property '" + property.name + "' has no body", WAVE_LOC);
  }
  std::vector<FormulaPtr> components;
  CollectFoComponents(property.body, &components);
  std::set<std::string> declared(property.forall_vars.begin(),
                                 property.forall_vars.end());
  for (const FormulaPtr& c : components) {
    WAVE_RETURN_IF_ERROR(ValidateFoComponent(spec, property.name, c));
    for (const std::string& v : c->FreeVariables()) {
      if (declared.count(v) == 0) {
        return Status::InvalidArgument(
            "property '" + property.name + "': free variable '" + v +
                "' not bound by the forall block",
            WAVE_LOC);
      }
    }
  }
  return Status::Ok();
}

Verifier::Verifier(WebAppSpec* spec)
    : spec_(spec), prepared_(spec), page_domains_(spec) {
  std::vector<std::string> issues = spec->Validate();
  WAVE_CHECK_MSG(issues.empty(),
                 "spec does not validate: " << issues.front() << " (and "
                                            << issues.size() - 1 << " more)");
}

StatusOr<std::unique_ptr<Verifier>> Verifier::Create(WebAppSpec* spec) {
  if (spec == nullptr) {
    return Status::InvalidArgument("spec is null", WAVE_LOC);
  }
  std::vector<std::string> issues = spec->Validate();
  if (!issues.empty()) {
    std::string joined;
    for (const std::string& issue : issues) {
      if (!joined.empty()) joined += "; ";
      joined += issue;
    }
    return Status::FailedPrecondition("spec does not validate: " + joined,
                                      WAVE_LOC);
  }
  return std::make_unique<Verifier>(spec);
}

StatusOr<VerifyResponse> Verifier::Run(const VerifyRequest& request) {
  // Resolve the property selector: direct pointer > index > name.
  const Property* property = request.property;
  if (property == nullptr) {
    if (request.properties == nullptr) {
      return Status::InvalidArgument(
          "VerifyRequest selects no property: set `property`, or "
          "`properties` plus `property_index`/`property_name`",
          WAVE_LOC);
    }
    if (request.property_index >= 0) {
      if (request.property_index >=
          static_cast<int>(request.properties->size())) {
        return Status::InvalidArgument(
            "VerifyRequest: property_index " +
                std::to_string(request.property_index) +
                " out of range (catalog has " +
                std::to_string(request.properties->size()) + " properties)",
            WAVE_LOC);
      }
      property = &(*request.properties)[request.property_index];
    } else if (!request.property_name.empty()) {
      for (const Property& p : *request.properties) {
        if (p.name == request.property_name) {
          property = &p;
          break;
        }
      }
      if (property == nullptr) {
        return Status::InvalidArgument(
            "VerifyRequest: no property named '" + request.property_name +
                "' in the catalog",
            WAVE_LOC);
      }
    } else {
      return Status::InvalidArgument(
          "VerifyRequest selects no property: set `property`, or "
          "`properties` plus `property_index`/`property_name`",
          WAVE_LOC);
    }
  }
  WAVE_RETURN_IF_ERROR(ValidatePropertyForSpec(*spec_, *property));

  const int jobs = WorkerPool::ResolveJobs(request.jobs);
  VerifyResponse response;
  if (!request.retry.enabled) {
    static_cast<VerifyResult&>(response) = RunAttempt(
        spec_, &prepared_, &page_domains_, *property, request.options, jobs);
    return response;
  }

  // The retry ladder: climb while the attempt failed for a budget-limited
  // reason; any decision, timeout, memory trip or cancellation returns
  // immediately with the history so far.
  const VerifyOptions& base = request.options;
  std::vector<RetryRung> ladder = request.retry.ladder.empty()
                                      ? DefaultLadder(base)
                                      : request.retry.ladder;
  double total_budget = request.retry.total_budget_seconds > 0
                            ? request.retry.total_budget_seconds
                            : base.timeout_seconds;
  Stopwatch ladder_watch;
  for (size_t k = 0; k < ladder.size(); ++k) {
    const RetryRung& rung = ladder[k];
    double remaining = total_budget - ladder_watch.ElapsedSeconds();
    if (remaining <= 0 && k > 0) {
      // Budget spent on earlier rungs; surface the last attempt's result.
      break;
    }
    // Backoff split: each rung gets an even share of what is left, so a
    // cheap early rung that returns quickly donates its unused share to
    // the rungs after it.
    double rung_budget =
        std::max(0.0, remaining) / static_cast<double>(ladder.size() - k);

    VerifyOptions options = base;
    options.max_candidates = rung.max_candidates;
    options.max_expansions = rung.max_expansions;
    options.exhaustive_existential = rung.exhaustive_existential;
    options.timeout_seconds = rung_budget;

    obs::ScopedSpan span(base.tracer, "retry_rung");
    Stopwatch attempt_watch;
    VerifyResult result =
        RunAttempt(spec_, &prepared_, &page_domains_, *property, options,
                   jobs);

    AttemptRecord record;
    record.rung = static_cast<int>(k);
    record.rung_name = rung.name;
    record.budget_seconds = rung_budget;
    record.elapsed_seconds = attempt_watch.ElapsedSeconds();
    record.verdict = result.verdict;
    record.unknown_reason = result.unknown_reason;
    record.failure_reason = result.failure_reason;
    record.stats = result.stats;
    response.attempts.push_back(std::move(record));
    static_cast<VerifyResult&>(response) = std::move(result);

    if (response.verdict != Verdict::kUnknown) {
      response.decided_rung = static_cast<int>(k);
      break;
    }
    // Escalation is only worth it when a larger budget could change the
    // answer; timeouts, memory trips and cancellation end the ladder. A
    // timeout on the *final* deadline share also means the total budget is
    // gone, so the two stop conditions agree.
    if (!IsBudgetLimited(response.unknown_reason)) break;
  }
  return response;
}

VerifyResult Verifier::Verify(const Property& property,
                              const VerifyOptions& options) {
  VerifyRequest request;
  request.property = &property;
  request.options = options;
  StatusOr<VerifyResponse> response = Run(request);
  WAVE_CHECK_MSG(response.ok(), "Verify(" << property.name << "): "
                                          << response.status().message());
  return std::move(*response);
}

StatusOr<VerifyResult> Verifier::TryVerify(const Property& property,
                                           const VerifyOptions& options) {
  VerifyRequest request;
  request.property = &property;
  request.options = options;
  StatusOr<VerifyResponse> response = Run(request);
  if (!response.ok()) return response.status();
  return VerifyResult(std::move(*response));
}

obs::Json AttemptRecord::ToJson() const {
  obs::Json j = obs::Json::Object();
  j.Set("rung", obs::Json::Int(rung));
  j.Set("rung_name", obs::Json::Str(rung_name));
  j.Set("budget_seconds", obs::Json::Number(budget_seconds));
  j.Set("elapsed_seconds", obs::Json::Number(elapsed_seconds));
  j.Set("verdict", obs::Json::Str(VerdictString(verdict)));
  j.Set("unknown_reason",
        obs::Json::Str(UnknownReasonName(unknown_reason)));
  j.Set("failure_reason", obs::Json::Str(failure_reason));
  j.Set("stats", stats.ToJson());
  return j;
}

obs::Json VerifyResponse::AttemptsJson() const {
  obs::Json arr = obs::Json::Array();
  for (const AttemptRecord& a : attempts) arr.Append(a.ToJson());
  return arr;
}

obs::Json VerifyStats::ToJson() const {
  obs::Json j = obs::Json::Object();
  j.Set("seconds", obs::Json::Number(seconds));
  j.Set("prepare_seconds", obs::Json::Number(prepare_seconds));
  j.Set("dataflow_seconds", obs::Json::Number(dataflow_seconds));
  j.Set("search_seconds", obs::Json::Number(search_seconds));
  j.Set("validate_seconds", obs::Json::Number(validate_seconds));
  j.Set("max_pseudorun_length", obs::Json::Int(max_pseudorun_length));
  j.Set("max_trie_size", obs::Json::Int(max_trie_size));
  j.Set("buchi_states", obs::Json::Int(buchi_states));
  j.Set("num_assignments", obs::Json::Int(num_assignments));
  j.Set("num_cores", obs::Json::Int(num_cores));
  j.Set("num_expansions", obs::Json::Int(num_expansions));
  j.Set("num_successors", obs::Json::Int(num_successors));
  j.Set("num_rejected_candidates", obs::Json::Int(num_rejected_candidates));
  j.Set("trie_hits", obs::Json::Int(trie_hits));
  j.Set("trie_misses", obs::Json::Int(trie_misses));
  j.Set("heartbeats", obs::Json::Int(heartbeats));
  j.Set("peak_memory_bytes", obs::Json::Int(peak_memory_bytes));
  j.Set("governor_polls", obs::Json::Int(governor_polls));
  return j;
}

std::string VerifyResult::CounterexampleString(const WebAppSpec& spec) const {
  if (verdict != Verdict::kViolated) return "(no counterexample)";
  std::string out;
  auto render = [&](const CounterexampleStep& step, const char* phase,
                    int index) {
    out += std::string(phase) + "[" + std::to_string(index) + "] page " +
           spec.page(step.config.page).name + ", automaton state " +
           std::to_string(step.buchi_state) + "\n";
    std::string data = step.config.data.ToString(spec.symbols());
    out += data;
    std::string prev = step.config.previous.ToString(spec.symbols());
    if (!prev.empty()) out += "previous inputs:\n" + prev;
  };
  for (size_t i = 0; i < stick.size(); ++i) {
    render(stick[i], "stick", static_cast<int>(i));
  }
  for (size_t i = 0; i < candy.size(); ++i) {
    render(candy[i], "candy", static_cast<int>(i));
  }
  out += "(cycle loops back to candy[0])\n";
  return out;
}

}  // namespace wave
